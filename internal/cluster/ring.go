// Package cluster is the distributed serving tier over internal/serve
// (DESIGN.md section 14): a consistent-hash router that places queries on a
// fleet of replicas, a peer cache-fill client that lets one computation warm
// every replica, and the rolling-reload protocol that moves a fleet to a
// new view generation one replica at a time.
//
// Everything in this package is a routing and placement optimization, never
// a correctness mechanism: each replica alone answers any query correctly,
// because every result is a pure function of (view generation, Query.Key)
// and bitwise worker-count independent. That determinism is what makes the
// tier sound — a retried hop, an adopted peer cache entry, and a locally
// computed result are the same bytes, so no cross-replica coordination
// (locks, leases, versions) is needed beyond the generation tag that rides
// in every response.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
)

// Ring is a consistent-hash ring over an ordered replica list. Each replica
// owns VNodes points (virtual nodes) so the key space splits evenly even
// for small fleets; a key belongs to the replica owning the first point at
// or after the key's hash, wrapping around. Removing one replica moves only
// that replica's arcs to their successors — the property that keeps the
// rest of a fleet's caches warm across a membership change.
//
// The ring is a pure function of the ordered replica name list and the
// vnode count: the router and every replica's peer-fill client build it
// from the same list, so they agree on every key's home without talking to
// each other.
type Ring struct {
	names  []string
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash    uint64
	replica int
}

// DefaultVNodes balances a handful of replicas to within a few percent.
const DefaultVNodes = 64

// NewRing builds the ring. vnodes <= 0 means DefaultVNodes.
func NewRing(names []string, vnodes int) (*Ring, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("cluster: empty replica list")
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{
		names:  append([]string(nil), names...),
		points: make([]ringPoint, 0, len(names)*vnodes),
	}
	for i, name := range names {
		for j := 0; j < vnodes; j++ {
			r.points = append(r.points, ringPoint{
				hash:    Hash64(name, "#", strconv.Itoa(j)),
				replica: i,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Hash ties (astronomically rare) break by replica index so the
		// ring stays a deterministic function of the list.
		return r.points[a].replica < r.points[b].replica
	})
	return r, nil
}

// Size returns the replica count.
func (r *Ring) Size() int { return len(r.names) }

// Owner returns the replica index owning hash h.
func (r *Ring) Owner(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap
	}
	return r.points[i].replica
}

// Owners returns up to n distinct replica indices in ring order starting at
// hash h: the key's home first, then the successors a router hops to when
// the home fails. n > Size() is clamped.
func (r *Ring) Owners(h uint64, n int) []int {
	if n > len(r.names) {
		n = len(r.names)
	}
	out := make([]int, 0, n)
	seen := make([]bool, len(r.names))
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	for k := 0; k < len(r.points) && len(out) < n; k++ {
		p := r.points[(start+k)%len(r.points)]
		if !seen[p.replica] {
			seen[p.replica] = true
			out = append(out, p.replica)
		}
	}
	return out
}

// Hash64 is the ring's hash: FNV-1a over the concatenated parts. Stable
// across processes and architectures (unlike hash/maphash), which the
// router/replica ring agreement depends on.
func Hash64(parts ...string) uint64 {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
	}
	return h.Sum64()
}

// KeyHash places a canonical query key (query.Query.Key) on the ring: the
// digest's first eight bytes are already uniform, no rehash needed.
func KeyHash(key [sha256.Size]byte) uint64 {
	return binary.BigEndian.Uint64(key[:8])
}
