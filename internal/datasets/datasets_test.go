package datasets

import (
	"testing"

	"saphyra/internal/exact"
	"saphyra/internal/graph"
)

func TestAllNetworksBuildSmall(t *testing.T) {
	for _, net := range All {
		g := net.Build(0.05)
		if g.NumNodes() == 0 || g.NumEdges() == 0 {
			t.Errorf("%s: empty graph", net.Name)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", net.Name, err)
		}
	}
}

func TestNetworksDeterministic(t *testing.T) {
	a := Flickr.Build(0.05)
	b := Flickr.Build(0.05)
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		t.Fatal("same scale produced different graph sizes")
	}
	for _, e := range a.Edges() {
		if !b.HasEdge(e.U, e.V) {
			t.Fatalf("edge sets differ at %v", e)
		}
	}
}

func TestScaleGrowsNetworks(t *testing.T) {
	small := Orkut.Build(0.05)
	large := Orkut.Build(0.1)
	if large.NumNodes() <= small.NumNodes() {
		t.Errorf("scale 0.1 (%d nodes) not larger than 0.05 (%d nodes)",
			large.NumNodes(), small.NumNodes())
	}
}

func TestSocialStandInsHaveLeaves(t *testing.T) {
	// The leaf fractions drive the Fig 6 true-zero ordering:
	// flickr > livejournal > orkut.
	frac := func(n Network) float64 {
		g := n.Build(0.1)
		leaves := 0
		for v := 0; v < g.NumNodes(); v++ {
			if g.Degree(graph.Node(v)) == 1 {
				leaves++
			}
		}
		return float64(leaves) / float64(g.NumNodes())
	}
	f, l, o := frac(Flickr), frac(LiveJournal), frac(Orkut)
	if !(f > l && l > o) {
		t.Errorf("leaf fractions: flickr %g, livejournal %g, orkut %g; want decreasing", f, l, o)
	}
	if f < 0.3 {
		t.Errorf("flickr-sim leaf fraction %g too low to reproduce true-zero dominance", f)
	}
}

func TestLeavesAreTrueZeros(t *testing.T) {
	g := Flickr.Build(0.03)
	bc := exact.BC(g)
	for v := 0; v < g.NumNodes(); v++ {
		if g.Degree(graph.Node(v)) == 1 && bc[v] != 0 {
			t.Fatalf("leaf %d has bc %g, want 0", v, bc[v])
		}
	}
}

func TestRoadStandInDiameter(t *testing.T) {
	g := USARoad.Build(0.05)
	side := RoadSide(0.05)
	if g.NumNodes() != side*side+side*side/6 {
		t.Fatalf("nodes = %d, want %d grid + %d spurs", g.NumNodes(), side*side, side*side/6)
	}
	if d := graph.ApproxDiameter(g, 3, 1); d < int32(side)-1 {
		t.Errorf("road diameter %d too small for a road-like graph (side %d)", d, side)
	}
	// the spur roads are the road graph's true-zero nodes (Fig 6c)
	leaves := 0
	for v := 0; v < g.NumNodes(); v++ {
		if g.Degree(graph.Node(v)) == 1 {
			leaves++
		}
	}
	if frac := float64(leaves) / float64(g.NumNodes()); frac < 0.1 {
		t.Errorf("leaf fraction %g too low for Fig 6c true zeros", frac)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"flickr-sim", "flickr", "usaroad", "orkut-sim"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name should error")
	}
}

func TestAreasInsideGridAndDisjoint(t *testing.T) {
	side := RoadSide(0.2)
	areas := Areas(side)
	if len(areas) != 4 {
		t.Fatalf("areas = %d, want 4", len(areas))
	}
	seen := map[graph.Node]string{}
	for _, a := range areas {
		if len(a.Nodes) == 0 {
			t.Errorf("area %s empty", a.Name)
		}
		for _, v := range a.Nodes {
			if int(v) < 0 || int(v) >= side*side {
				t.Fatalf("area %s node %d outside grid", a.Name, v)
			}
			if other, dup := seen[v]; dup {
				t.Fatalf("areas %s and %s overlap at node %d", a.Name, other, v)
			}
			seen[v] = a.Name
		}
	}
	// FL must be the largest, NYC the smallest (Table III ordering)
	sizes := map[string]int{}
	for _, a := range areas {
		sizes[a.Name] = len(a.Nodes)
	}
	if !(sizes["FL"] > sizes["CO"] && sizes["CO"] > sizes["BAY"] && sizes["BAY"] >= sizes["NYC"]) {
		t.Errorf("area sizes %v do not follow Table III ordering", sizes)
	}
}

func TestRandomSubsets(t *testing.T) {
	subs := RandomSubsets(50, 10, 5, 3)
	if len(subs) != 5 {
		t.Fatalf("count = %d", len(subs))
	}
	for _, s := range subs {
		if len(s) != 10 {
			t.Fatalf("size = %d", len(s))
		}
		for i := 1; i < len(s); i++ {
			if s[i-1] >= s[i] {
				t.Fatal("subset not sorted/distinct")
			}
		}
	}
	again := RandomSubsets(50, 10, 5, 3)
	for i := range subs {
		for j := range subs[i] {
			if subs[i][j] != again[i][j] {
				t.Fatal("subsets not deterministic")
			}
		}
	}
}

func TestRandomSubsetsClampsSize(t *testing.T) {
	subs := RandomSubsets(5, 10, 1, 1)
	if len(subs[0]) != 5 {
		t.Errorf("size = %d, want clamped to 5", len(subs[0]))
	}
}

func TestLHopSubset(t *testing.T) {
	g := graph.Path(9)
	sub := LHopSubset(g, 4, 2)
	if len(sub) != 5 { // nodes 2..6
		t.Fatalf("len = %d, want 5", len(sub))
	}
	for _, v := range sub {
		if v < 2 || v > 6 {
			t.Errorf("node %d outside 2-hop ball of 4", v)
		}
	}
}
