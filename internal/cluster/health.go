package cluster

import (
	"context"
	"math"
	"net/http"
	"sync/atomic"
	"time"
)

// healthState is one replica's passive health estimate: an EWMA of request
// outcomes (1 = success, 0 = connect failure or 5xx) starting optimistic at
// 1.0. Forwarded traffic feeds it on every hop and the router's active
// /readyz probe loop feeds it between requests, so a dead replica decays
// below the routing threshold within a few observations even on an idle
// router, and a recovered one climbs back as probes succeed — no explicit
// membership change either way.
type healthState struct {
	bits atomic.Uint64 // float64 EWMA of success (init 1.0)
}

// healthAlpha is the EWMA step: two consecutive failures take a replica
// from 1.0 to 0.49, just below the routing threshold.
const healthAlpha = 0.3

// healthyThreshold is the score at or above which the router prefers a
// replica. Below it the replica is only tried after every healthy owner.
const healthyThreshold = 0.5

func newHealthState() *healthState {
	h := &healthState{}
	h.bits.Store(math.Float64bits(1.0))
	return h
}

func (h *healthState) observe(ok bool) {
	x := 0.0
	if ok {
		x = 1.0
	}
	for {
		old := h.bits.Load()
		next := math.Float64frombits(old)*(1-healthAlpha) + x*healthAlpha
		if h.bits.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

func (h *healthState) score() float64 { return math.Float64frombits(h.bits.Load()) }
func (h *healthState) healthy() bool  { return h.score() >= healthyThreshold }

// probe issues one active readiness check against base and folds the result
// into the EWMA. Any 200 /readyz counts as healthy; a connect failure or
// non-200 (including 503 "loading") counts against.
func (h *healthState) probe(ctx context.Context, client *http.Client, base string, timeout time.Duration) {
	pctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, base+"/readyz", nil)
	if err != nil {
		h.observe(false)
		return
	}
	resp, err := client.Do(req)
	if err != nil {
		h.observe(false)
		return
	}
	drain(resp)
	h.observe(resp.StatusCode == http.StatusOK)
}
