package workload

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"saphyra/internal/serve"
)

// Client is the resilient HTTP client for the saphyrad ranking API — the
// load-generation side of the overload experiments and the reference
// implementation of how a well-behaved caller treats the service's
// backpressure signals:
//
//   - 429/503 responses are retried, honoring the server's Retry-After
//     header exactly when present (the service derives it from live queue
//     depth or the token-refill horizon, so it is worth obeying) and
//     falling back to jittered exponential backoff when absent;
//   - a retry budget caps the total time spent waiting across one call, so
//     a drained quota with a 1000-second refill horizon fails fast instead
//     of parking the caller;
//   - the Client-Id header attributes the traffic to a quota bucket, and
//     Degrade-Ms/Timeout-Ms opt each request into the service's degradation
//     ladder and deadline contract.
//
// The zero value plus Base is usable. A Client is safe for concurrent use.
type Client struct {
	// Base is the service root, e.g. "http://127.0.0.1:7171".
	Base string
	// HTTP is the transport; nil means http.DefaultClient.
	HTTP *http.Client

	// MaxAttempts bounds tries per call (first attempt included). Default 4.
	MaxAttempts int
	// BaseBackoff is the first fallback backoff step. Default 100 ms.
	BaseBackoff time.Duration
	// MaxBackoff caps one backoff step. Default 10 s.
	MaxBackoff time.Duration
	// RetryBudget caps the total wait across one call's retries; a
	// Retry-After beyond the remaining budget fails immediately rather than
	// sleeping toward a deadline it cannot meet. Default 30 s.
	RetryBudget time.Duration

	// ClientID is sent as the Client-Id header (quota identity) when set.
	ClientID string
	// DegradeMs, when positive, opts every request into the degradation
	// ladder with this budget (the Degrade-Ms header).
	DegradeMs int
	// TimeoutMs, when positive, bounds each request's compute time (the
	// Timeout-Ms header).
	TimeoutMs int
	// Seed seeds the backoff jitter stream; zero means 1. Fixed seeds make
	// a driver's retry schedule reproducible.
	Seed int64

	mu    sync.Mutex
	rng   *rand.Rand
	sleep func(time.Duration) // test hook; nil means time.Sleep

	retries  atomic.Int64
	waitedNs atomic.Int64
}

// ClientStats is a snapshot of a Client's retry behavior.
type ClientStats struct {
	Retries int64         // attempts beyond the first, across all calls
	Waited  time.Duration // total backoff slept
}

// Stats returns the accumulated retry counters.
func (c *Client) Stats() ClientStats {
	return ClientStats{Retries: c.retries.Load(), Waited: time.Duration(c.waitedNs.Load())}
}

// StatusError is a non-2xx service response that was not (or could no
// longer be) retried.
type StatusError struct {
	Code       int
	Message    string
	RetryAfter time.Duration // parsed Retry-After, 0 when absent
	// Replica is the fleet member that produced the terminal status, from
	// the router's X-Saphyra-Replica response header; empty when talking to
	// a single replica directly (or when the router itself answered, e.g. a
	// hops-exhausted 503). With it, "which box returned 500" survives into
	// the error a driver logs instead of dying at the router hop.
	Replica string
}

func (e *StatusError) Error() string {
	if e.Replica != "" {
		return fmt.Sprintf("saphyrad: status %d from %s: %s", e.Code, e.Replica, e.Message)
	}
	return fmt.Sprintf("saphyrad: status %d: %s", e.Code, e.Message)
}

// Rank posts req to /v1/rank with retries and returns the decoded response.
func (c *Client) Rank(ctx context.Context, req serve.RankRequest) (*serve.RankResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	return c.do(ctx, "POST", "/v1/rank", body)
}

// TopK fetches /v1/topk for method with retries.
func (c *Client) TopK(ctx context.Context, method string, k int) (*serve.RankResponse, error) {
	return c.do(ctx, "GET", "/v1/topk?method="+method+"&k="+strconv.Itoa(k), nil)
}

// RankOnce posts req to /v1/rank exactly once: no retries, no backoff, no
// Retry-After obedience. A non-200 comes back as *StatusError. This is the
// open-loop load-replay primitive (internal/loadgen): retrying inside the
// client would couple the offered load to response outcomes and reintroduce
// the coordinated-omission bias the open-loop schedule exists to avoid.
func (c *Client) RankOnce(ctx context.Context, req serve.RankRequest) (*serve.RankResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	return c.once(ctx, "POST", "/v1/rank", body)
}

// TopKOnce fetches /v1/topk exactly once with the full query contract
// (method, k, eps, delta, seed, and the k-path walk length). See RankOnce.
func (c *Client) TopKOnce(ctx context.Context, method string, k int, eps, delta float64, seed int64, walkK int) (*serve.RankResponse, error) {
	q := url.Values{}
	q.Set("method", method)
	q.Set("k", strconv.Itoa(k))
	if eps != 0 {
		q.Set("eps", strconv.FormatFloat(eps, 'g', -1, 64))
	}
	if delta != 0 {
		q.Set("delta", strconv.FormatFloat(delta, 'g', -1, 64))
	}
	if seed != 0 {
		q.Set("seed", strconv.FormatInt(seed, 10))
	}
	if walkK != 0 {
		q.Set("walk_k", strconv.Itoa(walkK))
	}
	return c.once(ctx, "GET", "/v1/topk?"+q.Encode(), nil)
}

func (c *Client) maxAttempts() int {
	if c.MaxAttempts > 0 {
		return c.MaxAttempts
	}
	return 4
}

func (c *Client) retryBudget() time.Duration {
	if c.RetryBudget > 0 {
		return c.RetryBudget
	}
	return 30 * time.Second
}

// backoff returns the jittered exponential fallback wait for attempt (0-based):
// uniformly drawn from [d/2, d) with d = min(BaseBackoff<<attempt, MaxBackoff),
// so synchronized clients that were shed together do not return together.
func (c *Client) backoff(attempt int) time.Duration {
	base := c.BaseBackoff
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	maxStep := c.MaxBackoff
	if maxStep <= 0 {
		maxStep = 10 * time.Second
	}
	d := base << uint(attempt)
	if d <= 0 || d > maxStep {
		d = maxStep
	}
	c.mu.Lock()
	if c.rng == nil {
		seed := c.Seed
		if seed == 0 {
			seed = 1
		}
		c.rng = rand.New(rand.NewPCG(uint64(seed), 0x9e3779b97f4a7c15))
	}
	j := c.rng.Float64()
	c.mu.Unlock()
	return d/2 + time.Duration(j*float64(d/2))
}

// retryable reports whether a status is worth another attempt: shed load and
// quota (429) and transient upstream states (502/503/504). 4xx contract
// errors are final.
func retryable(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// newRequest builds one attempt's request with the client's policy headers.
func (c *Client) newRequest(ctx context.Context, method, path string, body []byte) (*http.Request, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.ClientID != "" {
		req.Header.Set("Client-Id", c.ClientID)
	}
	if c.DegradeMs > 0 {
		req.Header.Set("Degrade-Ms", strconv.Itoa(c.DegradeMs))
	}
	if c.TimeoutMs > 0 {
		req.Header.Set("Timeout-Ms", strconv.Itoa(c.TimeoutMs))
	}
	return req, nil
}

// decodeResponse consumes resp: a 200 decodes into a RankResponse, anything
// else becomes a *StatusError with the Retry-After hint parsed.
func decodeResponse(resp *http.Response) (*serve.RankResponse, error) {
	if resp.StatusCode == http.StatusOK {
		var out serve.RankResponse
		err := json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if err != nil {
			return nil, fmt.Errorf("saphyrad: bad response body: %w", err)
		}
		return &out, nil
	}
	se := &StatusError{
		Code:    resp.StatusCode,
		Replica: resp.Header.Get("X-Saphyra-Replica"),
	}
	var e struct {
		Error string `json:"error"`
	}
	if json.NewDecoder(io.LimitReader(resp.Body, 64<<10)).Decode(&e) == nil {
		se.Message = e.Error
	}
	resp.Body.Close()
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
			se.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return nil, se
}

// once performs a single attempt with no retry machinery.
func (c *Client) once(ctx context.Context, method, path string, body []byte) (*serve.RankResponse, error) {
	httpc := c.HTTP
	if httpc == nil {
		httpc = http.DefaultClient
	}
	req, err := c.newRequest(ctx, method, path, body)
	if err != nil {
		return nil, err
	}
	resp, err := httpc.Do(req)
	if err != nil {
		return nil, err
	}
	return decodeResponse(resp)
}

func (c *Client) do(ctx context.Context, method, path string, body []byte) (*serve.RankResponse, error) {
	httpc := c.HTTP
	if httpc == nil {
		httpc = http.DefaultClient
	}
	budget := c.retryBudget()
	var waited time.Duration
	var last error
	for attempt := 0; attempt < c.maxAttempts(); attempt++ {
		req, err := c.newRequest(ctx, method, path, body)
		if err != nil {
			return nil, err
		}
		resp, err := httpc.Do(req)
		var wait time.Duration
		if err != nil {
			if ctx.Err() != nil {
				return nil, err
			}
			last = err
			wait = c.backoff(attempt)
		} else {
			out, derr := decodeResponse(resp)
			if derr == nil {
				return out, nil
			}
			se, isStatus := derr.(*StatusError)
			if !isStatus {
				return nil, derr
			}
			last = se
			if !retryable(se.Code) {
				return nil, se
			}
			// The server's hint is authoritative when present; the jittered
			// fallback covers responses without one.
			if se.RetryAfter > 0 {
				wait = se.RetryAfter
			} else {
				wait = c.backoff(attempt)
			}
		}
		if attempt == c.maxAttempts()-1 {
			break // no point computing a wait that will not happen
		}
		if waited+wait > budget {
			return nil, fmt.Errorf("saphyrad: retry budget %v exhausted (next wait %v after %v waited): %w",
				budget, wait, waited, last)
		}
		waited += wait
		c.retries.Add(1)
		c.waitedNs.Add(int64(wait))
		s := c.sleep
		if s == nil {
			s = time.Sleep
		}
		s(wait)
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
	}
	return nil, fmt.Errorf("saphyrad: %d attempts failed: %w", c.maxAttempts(), last)
}
