package loadgen

import (
	"context"
	"crypto/sha256"
	"fmt"
	"math"
	"sync"

	"saphyra"
	"saphyra/internal/serve"
)

// Verifier recomputes sampled 200 responses through the library and
// demands bitwise equality. This is sound under load because every serve
// result is a pure function of (view file, Query.Key): the response
// reports its full achieved contract — method, eps, delta, seed, K, and
// the canonical target set in Nodes — so the reference is reconstructible
// from the response alone. Degraded responses verify the same way at
// their own achieved (coarsened) eps, and reloads remap the same view
// file, so stale-generation responses verify against the same bits.
//
// Verification runs after the replay finishes, never inline, so reference
// recomputation cannot distort the measured latencies.
type Verifier struct {
	view   *saphyra.View
	ranker *saphyra.Ranker
	ids    []int64
	pos    map[int64]saphyra.Node // original id -> dense node

	mu    sync.Mutex
	cache map[[sha256.Size]byte]*saphyra.Result
}

// NewVerifier opens the same view file the server serves. Close releases
// the mapping.
func NewVerifier(viewPath string) (*Verifier, error) {
	view, err := saphyra.OpenView(viewPath)
	if err != nil {
		return nil, err
	}
	v := &Verifier{
		view:   view,
		ranker: view.Ranker(),
		ids:    view.IDs(),
		cache:  make(map[[sha256.Size]byte]*saphyra.Result),
	}
	if v.ids != nil {
		v.pos = make(map[int64]saphyra.Node, len(v.ids))
		for i, id := range v.ids {
			v.pos[id] = saphyra.Node(i)
		}
	}
	return v, nil
}

// Close releases the verifier's view mapping.
func (v *Verifier) Close() error { return v.view.Close() }

// original maps a dense node back to its original id.
func (v *Verifier) original(n saphyra.Node) int64 {
	if v.ids == nil {
		return int64(n)
	}
	return v.ids[n]
}

// dense maps an original id to the view's dense node.
func (v *Verifier) dense(id int64) (saphyra.Node, bool) {
	if v.pos == nil {
		n := saphyra.Node(id)
		return n, id >= 0 && int64(int(n)) == id
	}
	n, ok := v.pos[id]
	return n, ok
}

func measureOf(method string) (saphyra.Measure, error) {
	switch method {
	case serve.MethodSaPHyRa, "":
		return saphyra.Betweenness, nil
	case serve.MethodKPath:
		return saphyra.KPath, nil
	case serve.MethodCloseness:
		return saphyra.Closeness, nil
	}
	return 0, fmt.Errorf("loadgen: unknown method %q", method)
}

// rank computes (or returns the cached) library reference for q.
func (v *Verifier) rank(q saphyra.Query) (*saphyra.Result, error) {
	key := q.Key()
	v.mu.Lock()
	r, ok := v.cache[key]
	v.mu.Unlock()
	if ok {
		return r, nil
	}
	r, err := v.ranker.Rank(context.Background(), q)
	if err != nil {
		return nil, err
	}
	v.mu.Lock()
	v.cache[key] = r
	v.mu.Unlock()
	return r, nil
}

// Check verifies one 200 response bitwise against the library reference
// for its reported contract. kind distinguishes subset ranks from
// full-network top-k responses (which are a rank-ordered prefix of the
// full ranking).
func (v *Verifier) Check(kind EventKind, resp *serve.RankResponse) error {
	m, err := measureOf(resp.Method)
	if err != nil {
		return err
	}
	q := saphyra.Query{Measure: m, K: resp.K, Epsilon: resp.Eps, Delta: resp.Delta, Seed: resp.Seed}
	if kind == EventTopK {
		return v.checkTopK(q, resp)
	}
	// resp.Nodes is the canonical target set in original ids; the reference
	// rows come back in the same canonical order.
	targets := make([]saphyra.Node, len(resp.Nodes))
	for i, id := range resp.Nodes {
		n, ok := v.dense(id)
		if !ok {
			return fmt.Errorf("response node %d not in the view", id)
		}
		targets[i] = n
	}
	q.Targets = targets
	ref, err := v.rank(q)
	if err != nil {
		return fmt.Errorf("reference rank: %w", err)
	}
	if len(resp.Scores) != len(ref.Scores) {
		return fmt.Errorf("row count %d != reference %d", len(resp.Scores), len(ref.Scores))
	}
	for i := range ref.Scores {
		if err := v.checkRow(resp, i, ref.Nodes[i], ref.Scores[i], ref.Rank[i]); err != nil {
			return err
		}
	}
	return nil
}

// checkTopK verifies a /v1/topk response as the rank-sorted prefix of the
// full-network reference ranking.
func (v *Verifier) checkTopK(q saphyra.Query, resp *serve.RankResponse) error {
	ref, err := v.rank(q) // empty Targets = whole network
	if err != nil {
		return fmt.Errorf("reference rank: %w", err)
	}
	if len(resp.Scores) > len(ref.Scores) {
		return fmt.Errorf("topk rows %d > network size %d", len(resp.Scores), len(ref.Scores))
	}
	byRank := make([]int, len(ref.Rank)) // byRank[rank-1] = reference row
	for i, rk := range ref.Rank {
		byRank[rk-1] = i
	}
	for i := range resp.Scores {
		j := byRank[i]
		if err := v.checkRow(resp, i, ref.Nodes[j], ref.Scores[j], i+1); err != nil {
			return err
		}
	}
	return nil
}

// checkRow compares one response row against one reference row, score
// bits exactly.
func (v *Verifier) checkRow(resp *serve.RankResponse, i int, node saphyra.Node, score float64, rank int) error {
	if resp.Nodes[i] != v.original(node) {
		return fmt.Errorf("row %d: node %d != reference %d (eps %v, seed %d)",
			i, resp.Nodes[i], v.original(node), resp.Eps, resp.Seed)
	}
	if math.Float64bits(resp.Scores[i]) != math.Float64bits(score) {
		return fmt.Errorf("row %d (node %d): score bits %x != reference %x (eps %v, degraded %v)",
			i, resp.Nodes[i], math.Float64bits(resp.Scores[i]), math.Float64bits(score), resp.Eps, resp.Degraded)
	}
	if resp.Ranks[i] != rank {
		return fmt.Errorf("row %d (node %d): rank %d != reference %d", i, resp.Nodes[i], resp.Ranks[i], rank)
	}
	return nil
}
