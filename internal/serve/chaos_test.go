package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"saphyra"
	"saphyra/internal/bicomp"
	"saphyra/internal/faultinject"
)

// chaosRef is the library-computed expected answer for one (variant, eps).
type chaosRef struct {
	nodes  []int64
	scores []float64
	ranks  []int
}

func refOf(ids []int64, r *saphyra.Result) chaosRef {
	ref := chaosRef{
		nodes:  make([]int64, len(r.Nodes)),
		scores: r.Scores,
		ranks:  r.Rank,
	}
	for i, v := range r.Nodes {
		ref.nodes[i] = ids[v]
	}
	return ref
}

// topkRef reorders a full-network reference by rank, the order /v1/topk
// serves.
func topkRef(ids []int64, r *saphyra.Result, k int) chaosRef {
	byRank := make([]int, len(r.Rank)) // byRank[rank-1] = row index
	for i, rk := range r.Rank {
		byRank[rk-1] = i
	}
	ref := chaosRef{}
	for rk := 1; rk <= k; rk++ {
		i := byRank[rk-1]
		ref.nodes = append(ref.nodes, ids[r.Nodes[i]])
		ref.scores = append(ref.scores, r.Scores[i])
		ref.ranks = append(ref.ranks, rk)
	}
	return ref
}

func matchRef(resp *RankResponse, ref chaosRef) string {
	if len(resp.Scores) != len(ref.scores) {
		return "score count mismatch"
	}
	for i := range ref.scores {
		if resp.Scores[i] != ref.scores[i] {
			return "score bits differ"
		}
		if resp.Nodes[i] != ref.nodes[i] || resp.Ranks[i] != ref.ranks[i] {
			return "node/rank row differs"
		}
	}
	return ""
}

// TestServeChaosHammer is the fault-injection acceptance gate (run under
// -race by CI): with every failure point armed — slow computes, flight
// panics, failing reloads, mmap errors, acquire failures, pre-expired
// request deadlines — concurrent clients hammer the service, and every
// single response must be one of exactly three things: bitwise-identical to
// the library at the requested epsilon, explicitly flagged degraded (and
// then bitwise-correct for its own achieved contract), or a typed error
// with an allowed status. Afterwards, with the faults cleared, the process
// must be undamaged: no leaked view references, no leaked mappings, no
// poisoned cache entry, reloads and queries healthy.
func TestServeChaosHammer(t *testing.T) {
	defer faultinject.Reset()
	baselineMappings := bicomp.OpenMappings()

	g := saphyra.Generate.BarabasiAlbert(300, 3, 21)
	s, ids := newTestServer(t, g, Config{
		DisablePrecompute: true,
		MaxInFlight:       2, MaxQueue: 2,
		FastLaneSlots: 1, FastLaneCost: 300,
		DefaultEpsilon: 0.1, DefaultDelta: 0.05,
		DefaultTimeout: 2 * time.Second,
	})

	// Library references at the exact epsilon and the coarse rung's epsilon
	// (0.1 * DegradeEpsFactor capped at DegradeMaxEps = 0.25). Reloads remap
	// the same file, so a stale-rung response from ANY generation must also
	// match the exact-eps reference bit for bit.
	view, err := saphyra.OpenView(s.viewPath)
	if err != nil {
		t.Fatal(err)
	}
	const exactEps, coarseEps = 0.1, 0.25
	epses := []float64{exactEps, coarseEps}
	type variant struct {
		req  RankRequest
		want map[float64]chaosRef
	}
	var variants []variant
	prep := view.Preprocess()
	for _, dense := range [][]saphyra.Node{{2, 77, 150}, {0, 1, 2, 3, 250}} {
		raw := make([]int64, len(dense))
		for i, v := range dense {
			raw[i] = ids[v]
		}
		bc := map[float64]chaosRef{}
		kp := map[float64]chaosRef{}
		cl := map[float64]chaosRef{}
		for _, eps := range epses {
			opt := saphyra.Options{Epsilon: eps, Delta: 0.05, Seed: 4}
			r, err := prep.RankSubset(dense, opt)
			if err != nil {
				t.Fatal(err)
			}
			bc[eps] = refOf(ids, r)
			if r, err = view.RankKPath(dense, 3, opt); err != nil {
				t.Fatal(err)
			}
			kp[eps] = refOf(ids, r)
			if r, err = view.RankCloseness(dense, opt); err != nil {
				t.Fatal(err)
			}
			cl[eps] = refOf(ids, r)
		}
		variants = append(variants,
			variant{RankRequest{Method: MethodSaPHyRa, Targets: raw, Eps: exactEps, Delta: 0.05, Seed: 4}, bc},
			variant{RankRequest{Method: MethodKPath, Targets: raw, Eps: exactEps, Delta: 0.05, Seed: 4, K: 3}, kp},
			variant{RankRequest{Method: MethodCloseness, Targets: raw, Eps: exactEps, Delta: 0.05, Seed: 4}, cl},
		)
	}
	allDense := make([]saphyra.Node, g.NumNodes())
	for i := range allDense {
		allDense[i] = saphyra.Node(i)
	}
	topkWant := map[float64]chaosRef{}
	for _, eps := range epses {
		r, err := prep.RankSubset(allDense, saphyra.Options{Epsilon: eps, Delta: 0.05, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		topkWant[eps] = topkRef(ids, r, 5)
	}
	view.Close() // drop the reference mapping before counting leaks

	// Arm everything. Probabilities are moderate on purpose: most requests
	// must still reach deep layers instead of dying at the first gate.
	chaosErr := errors.New("chaos: injected failure")
	faultinject.Set("serve.compute", faultinject.Fault{Delay: 2 * time.Millisecond, Prob: 0.4, Seed: 7})
	faultinject.Set("serve.compute.full", faultinject.Fault{Panic: "chaos flight panic", Prob: 0.3, Seed: 5})
	faultinject.Set("query.rank", faultinject.Fault{Err: chaosErr, Prob: 0.1, Seed: 3})
	faultinject.Set("serve.reload.open", faultinject.Fault{Err: chaosErr, Prob: 0.5, Seed: 11})
	faultinject.Set("bicomp.openmapped", faultinject.Fault{Err: chaosErr, Prob: 0.3, Seed: 13})
	faultinject.Set("bicomp.handle.acquire", faultinject.Fault{Err: chaosErr, Prob: 0.05, Seed: 17})
	faultinject.Set("serve.request.expire", faultinject.Fault{Err: chaosErr, Prob: 0.15, Seed: 19})
	// msbfs.run fires once per MS-BFS level, and a closeness estimate runs
	// hundreds of levels — a small per-level probability still fails a
	// healthy fraction of closeness requests mid-traversal while letting the
	// rest complete (and demand bitwise-exact bits).
	faultinject.Set("msbfs.run", faultinject.Fault{Err: chaosErr, Prob: 0.002, Seed: 23})
	faultinject.Enable()

	const (
		hammers = 6
		iters   = 25
		reloads = 10
	)
	var (
		wg               sync.WaitGroup
		okExact, okDeg   atomic.Int64
		rejected, topkOK atomic.Int64
	)
	check200 := func(where string, resp *RankResponse, want map[float64]chaosRef) {
		ref, known := want[resp.Eps]
		if !known {
			t.Errorf("%s: response eps %v is neither the requested %v nor the coarse %v", where, resp.Eps, exactEps, coarseEps)
			return
		}
		if !resp.Degraded && resp.Eps != exactEps {
			t.Errorf("%s: un-degraded response at eps %v, requested %v", where, resp.Eps, exactEps)
			return
		}
		if msg := matchRef(resp, ref); msg != "" {
			t.Errorf("%s (eps %v, degraded %v, gen %d): %s — a partial or corrupted result escaped",
				where, resp.Eps, resp.Degraded, resp.Generation, msg)
			return
		}
		if resp.Degraded {
			okDeg.Add(1)
		} else {
			okExact.Add(1)
		}
	}
	checkError := func(where string, code int, body []byte) {
		switch code {
		case http.StatusTooManyRequests, http.StatusGatewayTimeout,
			http.StatusInternalServerError, StatusClientClosedRequest:
		default:
			t.Errorf("%s: status %d is not an allowed chaos outcome", where, code)
			return
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("%s: %d response without a typed error body: %q", where, code, body)
			return
		}
		rejected.Add(1)
	}
	start := make(chan struct{})
	for h := 0; h < hammers; h++ {
		wg.Add(1)
		go func(h int) {
			defer wg.Done()
			<-start
			for i := 0; i < iters; i++ {
				where := "hammer " + strconv.Itoa(h) + " iter " + strconv.Itoa(i)
				v := variants[(h+i)%len(variants)]
				var hdrs map[string]string
				if (h+i)%2 == 0 { // half the traffic opts into degradation
					hdrs = map[string]string{"Degrade-Ms": "1000"}
				}
				w := doRank(t, s.Handler(), v.req, hdrs)
				if w.Code == http.StatusOK {
					check200(where, decodeRank(t, w), v.want)
				} else {
					checkError(where, w.Code, w.Body.Bytes())
				}
				if i%8 == 7 { // sprinkle full-network reads (the panic point)
					r := httptest.NewRequest("GET", "/v1/topk?k=5&seed=4", nil)
					if hdrs != nil {
						r.Header.Set("Degrade-Ms", "1000")
					}
					w := httptest.NewRecorder()
					s.Handler().ServeHTTP(w, r)
					if w.Code == http.StatusOK {
						check200(where+" topk", decodeRank(t, w), topkWant)
						topkOK.Add(1)
					} else {
						checkError(where+" topk", w.Code, w.Body.Bytes())
					}
				}
			}
		}(h)
	}
	reloaderDone := make(chan [2]int64)
	go func() {
		<-start
		var succeeded, failed int64
		for i := 0; i < reloads; i++ {
			w := httptest.NewRecorder()
			s.Handler().ServeHTTP(w, httptest.NewRequest("POST", "/admin/reload", nil))
			switch w.Code {
			case http.StatusOK:
				succeeded++
			case http.StatusInternalServerError:
				failed++ // old generation must keep serving; verified by the hammers
			default:
				t.Errorf("chaos reload %d: status %d", i, w.Code)
			}
			time.Sleep(5 * time.Millisecond)
		}
		reloaderDone <- [2]int64{succeeded, failed}
	}()
	close(start)
	wg.Wait()
	counts := <-reloaderDone

	// The storm is over: disarm and let detached flights drain.
	faultinject.Reset()
	waitFor(t, 30*time.Second, "in-flight computations to drain", func() bool {
		return s.adm.inFlight() == 0 && s.adm.waitingNow() == 0
	})

	// Invariant: generation bookkeeping survived the failing reloads.
	if got, want := s.Generation(), uint64(1+counts[0]); got != want {
		t.Errorf("generation %d after %d successful reloads, want %d", got, counts[0], want)
	}
	if got := s.m.reloadFailures.Value(); got != counts[1] {
		t.Errorf("reloadFailures counter %d, want %d", got, counts[1])
	}

	// Invariant: balanced refcounts. Every Acquire/Share was Released, so the
	// current handle holds no references, and every retired generation has
	// unmapped — exactly one mapping (the current view) beyond the baseline.
	cur := s.cur.Load()
	waitFor(t, 30*time.Second, "view references to drain", func() bool { return cur.handle.Refs() == 0 })
	if cur.handle.Retired() {
		t.Error("current handle is retired")
	}
	waitFor(t, 30*time.Second, "retired generations to unmap", func() bool {
		return bicomp.OpenMappings() == baselineMappings+1
	})

	// Invariant: the cache was never poisoned. Whatever the chaos cached —
	// exact results, coarse results, entries that survived failed reloads —
	// every (re)request at both epsilons must produce library bits, whether
	// served from cache or recomputed.
	for vi, v := range variants {
		for _, eps := range epses {
			req := v.req
			req.Eps = eps
			w := doRank(t, s.Handler(), req, nil)
			if w.Code != http.StatusOK {
				t.Fatalf("post-chaos variant %d eps %v: status %d: %s", vi, eps, w.Code, w.Body.String())
			}
			resp := decodeRank(t, w)
			if resp.Degraded {
				t.Fatalf("post-chaos variant %d eps %v: degraded response with no faults armed", vi, eps)
			}
			if msg := matchRef(resp, v.want[eps]); msg != "" {
				t.Errorf("post-chaos variant %d eps %v (cached %v): %s — the chaos poisoned the cache",
					vi, eps, resp.Cached, msg)
			}
		}
	}

	// Invariant: the service is fully operational — a clean reload succeeds
	// and the new generation serves exact bits.
	gen, err := s.Reload()
	if err != nil {
		t.Fatalf("post-chaos reload: %v", err)
	}
	resp, code := postRank(t, s.Handler(), variants[0].req)
	if code != http.StatusOK || resp.Generation != gen {
		t.Fatalf("post-chaos request: code %d gen %d, want 200 gen %d", code, resp.Generation, gen)
	}

	t.Logf("chaos: %d exact, %d degraded, %d typed rejections, %d topk OK; %d/%d reloads succeeded",
		okExact.Load(), okDeg.Load(), rejected.Load(), topkOK.Load(), counts[0], reloads)
}
