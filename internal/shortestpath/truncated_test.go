package shortestpath

import (
	"math/rand/v2"
	"testing"

	"saphyra/internal/graph"
)

// TestRunTruncatedMatchesFull checks that within the truncation radius the
// truncated BFS produces exactly the Dist/Sigma values of a full Run, across
// many random graphs, sources, and target sets, including back-to-back
// truncated runs exercising the sparse reset.
func TestRunTruncatedMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 43))
	for trial := 0; trial < 30; trial++ {
		n := 30 + int(rng.IntN(80))
		g := graph.BarabasiAlbert(n, 2, int64(trial))
		full := NewDAG(n)
		trunc := NewDAG(n)
		for rep := 0; rep < 8; rep++ {
			src := graph.Node(rng.IntN(n))
			k := 1 + rng.IntN(5)
			targets := make([]graph.Node, 0, k)
			for len(targets) < k {
				v := graph.Node(rng.IntN(n))
				if v != src {
					targets = append(targets, v)
				}
			}
			full.Run(g, src)
			trunc.RunTruncated(g, src, targets)
			for _, tgt := range targets {
				if trunc.Dist[tgt] != full.Dist[tgt] {
					t.Fatalf("trial %d: Dist[%d] = %d, want %d", trial, tgt, trunc.Dist[tgt], full.Dist[tgt])
				}
				if full.Dist[tgt] >= 0 && trunc.Sigma[tgt] != full.Sigma[tgt] {
					t.Fatalf("trial %d: Sigma[%d] = %g, want %g", trial, tgt, trunc.Sigma[tgt], full.Sigma[tgt])
				}
			}
			// every node the truncated run settled at a level strictly below
			// the cut must agree with the full run
			for _, u := range trunc.Order {
				if trunc.Dist[u] != full.Dist[u] {
					t.Fatalf("trial %d: touched node %d Dist %d != full %d", trial, u, trunc.Dist[u], full.Dist[u])
				}
			}
		}
	}
}

// TestRunTruncatedUnreachable: targets in another component read as Dist -1.
func TestRunTruncatedUnreachable(t *testing.T) {
	// two disjoint edges: 0-1, 2-3
	g := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}})
	d := NewDAG(4)
	d.RunTruncated(g, 0, []graph.Node{3})
	if d.Dist[3] != -1 {
		t.Fatalf("Dist[3] = %d, want -1", d.Dist[3])
	}
	if d.Dist[1] != 1 {
		t.Fatalf("Dist[1] = %d, want 1", d.Dist[1])
	}
}

// TestRunTruncatedThenSamplePath: paths sampled off a truncated DAG are
// valid shortest paths.
func TestRunTruncatedThenSamplePath(t *testing.T) {
	g := graph.BarabasiAlbert(200, 3, 7)
	d := NewDAG(200)
	full := NewDAG(200)
	rng := rand.New(rand.NewPCG(9, 9))
	var buf []graph.Node
	for rep := 0; rep < 50; rep++ {
		src := graph.Node(rng.IntN(200))
		tgt := graph.Node(rng.IntN(200))
		if src == tgt {
			continue
		}
		d.RunTruncated(g, src, []graph.Node{tgt})
		full.Run(g, src)
		p := d.SamplePathAppend(g, tgt, rng, buf)
		if full.Dist[tgt] < 0 {
			if p != nil {
				t.Fatal("sampled a path to an unreachable target")
			}
			continue
		}
		buf = p
		if len(p) != int(full.Dist[tgt])+1 {
			t.Fatalf("path length %d, want %d", len(p), full.Dist[tgt]+1)
		}
		if p[0] != src || p[len(p)-1] != tgt {
			t.Fatalf("path endpoints %d..%d, want %d..%d", p[0], p[len(p)-1], src, tgt)
		}
		for i := 0; i+1 < len(p); i++ {
			if !g.HasEdge(p[i], p[i+1]) {
				t.Fatalf("path step %d-%d is not an edge", p[i], p[i+1])
			}
		}
	}
}

// TestRunTruncatedBoundedSufficientCap: a depth cap at least the true
// source->targets distance changes nothing — Dist, Sigma, Order and Scanned
// are identical to the uncapped run — while an insufficient cap bounds the
// explored radius.
func TestRunTruncatedBoundedSufficientCap(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	for trial := 0; trial < 20; trial++ {
		n := 40 + int(rng.IntN(80))
		g := graph.BarabasiAlbert(n, 2, int64(100+trial))
		free := NewDAG(n)
		capd := NewDAG(n)
		for rep := 0; rep < 6; rep++ {
			src := graph.Node(rng.IntN(n))
			targets := []graph.Node{graph.Node(rng.IntN(n)), graph.Node(rng.IntN(n))}
			free.RunTruncated(g, src, targets)
			var far int32
			for _, tgt := range targets {
				if free.Dist[tgt] > far {
					far = free.Dist[tgt]
				}
			}
			capd.RunTruncatedBounded(g, src, targets, far+int32(rng.IntN(3)))
			if len(capd.Order) != len(free.Order) || capd.Scanned() != free.Scanned() {
				t.Fatalf("trial %d: capped run did different work: %d/%d nodes, %d/%d edges",
					trial, len(capd.Order), len(free.Order), capd.Scanned(), free.Scanned())
			}
			for i, u := range free.Order {
				if capd.Order[i] != u || capd.Dist[u] != free.Dist[u] || capd.Sigma[u] != free.Sigma[u] {
					t.Fatalf("trial %d: capped run diverged at order %d", trial, i)
				}
			}
		}
	}
}

// TestRunTruncatedBoundedCapsRadius: on a long path, an unreachable target
// with a small cap stops the walk at the cap instead of draining the
// component.
func TestRunTruncatedBoundedCapsRadius(t *testing.T) {
	g := graph.Path(500)
	// Node 499 is the far end; pretend a sketch bounded the distance at 10.
	d := NewDAG(500)
	d.RunTruncatedBounded(g, 0, []graph.Node{499}, 10)
	if len(d.Order) != 11 {
		t.Fatalf("settled %d nodes, want 11 (radius 10)", len(d.Order))
	}
	for _, u := range d.Order {
		if d.Dist[u] > 10 {
			t.Fatalf("node %d settled at depth %d beyond cap", u, d.Dist[u])
		}
	}
	// Uncapped drains the whole path.
	d.RunTruncated(g, 0, []graph.Node{499})
	if d.Dist[499] != 499 {
		t.Fatalf("uncapped Dist[499] = %d, want 499", d.Dist[499])
	}
}
