// Package exactphase implements Algorithm Exact_bc (Section IV-B, Lemma 18
// of the SaPHyRa paper): the exact enumeration of all 2-hop intra-block
// shortest paths s-v-t whose middle node v lies in the target set A, which
// forms the exact subspace of the SaPHyRa_bc sample-space partition.
//
// The engine runs on the block-annotated adjacency view bicomp.BlockCSR: the
// inner s-v-t loop streams over pre-grouped per-block neighbor runs with the
// out-reach r-values inlined per edge, so the hot loop performs zero
// EdgeBlock resolutions, zero OutReach.Of lookups, and no map accesses.
//
// Parallelism is deterministic and runs on the shared internal/sched
// substrate: endpoints are split into chunks balanced by a per-endpoint cost
// model (1 + deg(s) + sum of deg(v)^2 over s's target neighbors) via
// sched.Bounds, workers pull chunks from a shared counter (sched.DoWith),
// and per-chunk partial sums are merged in chunk-index order — so a fixed
// seed and any worker count produce bitwise-identical (lambdaHat, exact)
// outputs. All scratch (per-worker epoch-stamped sigma/stamp/isNbr arrays,
// the chunk bookkeeping, and the partial-sum buffers) is pooled on the
// Engine, which is cached per graph by core.PreprocessBC: repeated target
// sets hit a zero-allocation steady state.
//
// DESIGN.md section 6 documents the engine (the run-length merge, the
// push/pull choice, and the scheduling); section 7 covers the view layer it
// runs on, including the mmap-backed serving path: the engine only touches
// view arrays and the view's embedded graph, so it runs unchanged on a view
// opened with bicomp.OpenMapped.
package exactphase

import (
	"context"
	"fmt"
	"runtime"
	"slices"
	"sync"

	"saphyra/internal/bicomp"
	"saphyra/internal/graph"
	"saphyra/internal/obs"
	"saphyra/internal/params"
	"saphyra/internal/sched"
)

// maxChunks caps the scheduling granularity: enough chunks for dynamic load
// balancing on any realistic core count while keeping the merge and the
// partial-buffer zeroing cheap.
const maxChunks = 64

// partialBudget bounds the memory held in per-chunk partial-sum buffers
// (chunks * k * 8 bytes); full-network ranking on huge graphs degrades to
// fewer, larger chunks instead of blowing up the heap.
const partialBudget = 16 << 20

// Engine evaluates the exact 2-hop phase for arbitrary target sets over one
// preprocessed graph. Safe for concurrent use.
//
// Scratch is recycled through Engine-owned free lists rather than sync.Pool:
// the GC never evicts them, so repeated ranking calls on a cached Engine
// are allocation-free in steady state (the micro-benchmark contract).
type Engine struct {
	view *bicomp.BlockCSR

	mu          sync.Mutex
	freeWorkers []*workerScratch
	freeRuns    []*runScratch

	// acquire/release are getWorker/putWorker pre-bound once, so the
	// steady-state RunInto hands them to sched.DoWith without allocating
	// method values per call (the 0 allocs/op contract).
	acquire func() *workerScratch
	release func(*workerScratch)
}

// New returns an engine over the given block-annotated view.
func New(view *bicomp.BlockCSR) *Engine {
	e := &Engine{view: view}
	e.acquire = e.getWorker
	e.release = e.putWorker
	return e
}

// middle records one qualifying s-v pair of the current endpoint: the
// target index of the middle v, the edge range of v's run in the shared
// block restricted to ids above the endpoint, and r_b(s) — everything
// phase 2 needs with no further lookups.
type middle struct {
	ai     int32
	rS     float64
	lo, hi int64
}

// workerScratch is the per-goroutine state: epoch-stamped neighbor marks,
// sigma counters, and the A-middle buffer. Epoch stamping makes per-endpoint
// reset O(deg) instead of O(n).
type workerScratch struct {
	isNbr    []int32
	sigStamp []int32
	sigma    []int32
	epochs   *sched.Epoch // over isNbr and sigStamp
	middles  []middle
}

// runScratch is the per-call bookkeeping: endpoint collection, the cost
// prefix, chunk bounds, and per-chunk partial sums.
type runScratch struct {
	endpoints []graph.Node
	epMark    []int32
	epPos     []int32
	epEpochs  *sched.Epoch // over epMark
	cost      []float64
	bounds    []int
	partials  [][]float64
	lambdas   []float64

	// chunkFn is the sched.DoWith body, created once per pooled runScratch
	// and parameterized through the aIndex/wA fields — so repeated RunInto
	// calls schedule chunks without a per-call closure allocation.
	chunkFn func(ws *workerScratch, c int)
	aIndex  []int32
	wA      float64
}

func (e *Engine) getWorker() *workerScratch {
	e.mu.Lock()
	if k := len(e.freeWorkers); k > 0 {
		ws := e.freeWorkers[k-1]
		e.freeWorkers = e.freeWorkers[:k-1]
		e.mu.Unlock()
		return ws
	}
	e.mu.Unlock()
	n := e.view.G.NumNodes()
	ws := &workerScratch{
		isNbr:    make([]int32, n),
		sigStamp: make([]int32, n),
		sigma:    make([]int32, n),
	}
	ws.epochs = sched.NewEpoch(ws.isNbr, ws.sigStamp)
	return ws
}

func (e *Engine) putWorker(ws *workerScratch) {
	e.mu.Lock()
	e.freeWorkers = append(e.freeWorkers, ws)
	e.mu.Unlock()
}

func (e *Engine) getRun() *runScratch {
	e.mu.Lock()
	if k := len(e.freeRuns); k > 0 {
		rs := e.freeRuns[k-1]
		e.freeRuns = e.freeRuns[:k-1]
		e.mu.Unlock()
		return rs
	}
	e.mu.Unlock()
	n := e.view.G.NumNodes()
	rs := &runScratch{
		epMark: make([]int32, n),
		epPos:  make([]int32, n),
	}
	rs.epEpochs = sched.NewEpoch(rs.epMark)
	rs.chunkFn = func(ws *workerScratch, c int) {
		rs.lambdas[c] = e.runChunk(rs.endpoints[rs.bounds[c]:rs.bounds[c+1]], rs.aIndex, rs.wA, rs.partials[c], ws)
	}
	return rs
}

func (e *Engine) putRun(rs *runScratch) {
	e.mu.Lock()
	e.freeRuns = append(e.freeRuns, rs)
	e.mu.Unlock()
}

// Run computes (lambdaHat, exact): the exact-subspace mass and the per-target
// exact risks lhat (Eq 29 normalization by wA). aIndex must map every node
// to its index in targets or -1; wA is the pair mass of the target blocks.
// Cancellation is checked between chunks (never inside one): on a done ctx
// the run aborts with a *params.CanceledError and no output — a nil error
// guarantees the result is bitwise-identical to an uncancelled run.
func (e *Engine) Run(ctx context.Context, targets []graph.Node, aIndex []int32, wA float64, workers int) (float64, []float64, error) {
	exact := make([]float64, len(targets))
	lambdaHat, err := e.RunInto(ctx, exact, targets, aIndex, wA, workers)
	return lambdaHat, exact, err
}

// RunInto is Run writing the exact risks into a caller-provided slice (which
// it zeroes first): the allocation-free form for repeated ranking calls.
// workers <= 0 means GOMAXPROCS, matching the BCOptions.Workers contract.
func (e *Engine) RunInto(ctx context.Context, exact []float64, targets []graph.Node, aIndex []int32, wA float64, workers int) (float64, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	g := e.view.G
	clear(exact)
	if wA == 0 || len(targets) == 0 {
		return 0, nil
	}
	rs := e.getRun()
	defer e.putRun(rs)

	// "exact.schedule" covers endpoint collection, the cost model, and the
	// chunk bounds; "exact.run" the chunk execution + merge. Both are nil
	// no-ops (one atomic load each) when no trace rides ctx.
	schedSpan := obs.StartLeaf(ctx, "exact.schedule")

	// Endpoint candidates: the distinct neighbors of A, sorted.
	ep := rs.epEpochs.Next()
	rs.endpoints = rs.endpoints[:0]
	for _, v := range targets {
		for _, s := range g.Neighbors(v) {
			if rs.epMark[s] != ep {
				rs.epMark[s] = ep
				rs.endpoints = append(rs.endpoints, s)
			}
		}
	}
	if len(rs.endpoints) == 0 {
		schedSpan.End()
		return 0, nil
	}
	slices.Sort(rs.endpoints)

	// Chunk count: a pure function of the inputs (never of the worker
	// count), so the chunk-order merge below is bitwise-identical for any
	// parallelism. Scaled down for small endpoint sets — chunk bookkeeping
	// (zeroing and merging chunks*k partial sums) must not dominate the
	// enumeration itself — and bounded so the partial buffers stay within
	// partialBudget bytes even for full-network target sets.
	chunks := (len(rs.endpoints) + 7) / 8
	if chunks > maxChunks {
		chunks = maxChunks
	}
	if byMem := partialBudget / (8 * len(exact)); chunks > byMem {
		chunks = byMem
	}
	if chunks < 1 {
		chunks = 1
	}

	if chunks == 1 {
		schedSpan.End()
		// Single chunk: no cost model, no partial buffers; accumulating
		// straight into exact is bit-identical to merging one zeroed
		// partial (0 + x == x exactly). The chunk runs whole, so the only
		// checkpoint is before it starts.
		if err := params.Interrupted(ctx); err != nil {
			clear(exact)
			return 0, err
		}
		runSpan := obs.StartLeaf(ctx, "exact.run")
		ws := e.getWorker()
		lambdaHat := e.runChunk(rs.endpoints, aIndex, wA, exact, ws)
		e.putWorker(ws)
		if runSpan != nil {
			runSpan.SetExtra(1)
			runSpan.SetNote(fmt.Sprintf("endpoints=%d", len(rs.endpoints)))
			runSpan.End()
		}
		return lambdaHat, nil
	}

	// Per-endpoint cost model for chunk balancing: 1 + deg(s) + the sum of
	// deg(v)^2 over s's neighbors v in A — the dominant phase-2 scan work
	// of Lemma 18.
	for i, s := range rs.endpoints {
		rs.epPos[s] = int32(i)
	}
	rs.cost = resize(rs.cost, len(rs.endpoints))
	for i, s := range rs.endpoints {
		rs.cost[i] = 1 + float64(g.Degree(s))
	}
	for _, v := range targets {
		d2 := float64(g.Degree(v))
		d2 *= d2
		for _, s := range g.Neighbors(v) {
			rs.cost[rs.epPos[s]] += d2
		}
	}
	rs.bounds = sched.Bounds(rs.cost, chunks, rs.bounds)
	if schedSpan != nil {
		schedSpan.SetExtra(int64(len(rs.endpoints)))
		schedSpan.End()
	}

	// Per-chunk partial sums (zeroed; buffers reused across calls).
	if len(rs.partials) < chunks {
		rs.partials = append(rs.partials, make([][]float64, chunks-len(rs.partials))...)
	}
	for c := 0; c < chunks; c++ {
		rs.partials[c] = resize(rs.partials[c], len(exact))
		clear(rs.partials[c])
	}
	rs.lambdas = resize(rs.lambdas, chunks)
	clear(rs.lambdas)

	rs.aIndex, rs.wA = aIndex, wA
	runSpan := obs.StartLeaf(ctx, "exact.run")
	err := sched.DoWithCtx(ctx, chunks, workers, e.acquire, e.release, rs.chunkFn)
	if runSpan != nil {
		runSpan.SetExtra(int64(chunks))
		runSpan.SetNote(fmt.Sprintf("endpoints=%d workers<=%d", len(rs.endpoints), workers))
		runSpan.End()
	}
	rs.aIndex = nil // do not retain the caller's index map on the free list
	if err != nil {
		// All-or-nothing: some chunks never ran, so the partials are an
		// arbitrary subset. Discard everything.
		return 0, &params.CanceledError{Cause: err}
	}

	// Deterministic merge: chunk-index order, regardless of which worker
	// computed which chunk.
	var lambdaHat float64
	for c := 0; c < chunks; c++ {
		lambdaHat += rs.lambdas[c]
		for i, x := range rs.partials[c] {
			exact[i] += x
		}
	}
	return lambdaHat, nil
}

// runChunk processes one contiguous endpoint range, accumulating lhat masses
// into out and returning the chunk's lambda contribution.
//
// Per endpoint s it (1) marks N(s), (2) collects the qualifying middles —
// target neighbors v with the run of the shared block — from s's grouped
// runs, then (3) computes sigma_st either by the classic push sweep over all
// 2-hop neighbors or, when the runs of the collected middles are small
// relative to s's whole 2-hop ball, by pulling |N(s) ∩ N(t)| for just the
// t's the merge will touch. Both orders produce identical integer sigmas and
// the phase-3 accumulation loop is shared, so the choice never affects the
// output bits.
func (e *Engine) runChunk(endpoints []graph.Node, aIndex []int32, wA float64, out []float64, ws *workerScratch) float64 {
	v := e.view
	g := v.G
	var lambda float64
	for _, s := range endpoints {
		ep := ws.epochs.Next()
		for _, w := range g.Neighbors(s) {
			ws.isNbr[w] = ep
		}
		// Collect A-middles from s's runs; estimate the pull cost as the
		// degree mass of the runs the merge will visit.
		ws.middles = ws.middles[:0]
		var pullEst, pushCost int64
		loS, hiS := v.Runs(s)
		for j := loS; j < hiS; j++ {
			pushCost += v.RunDegSum[j]
			rS := float64(v.RunR[j])
			elo, ehi := v.RunEdges(j)
			for i := elo; i < ehi; i++ {
				mv := v.Nbr[i]
				if ai := aIndex[mv]; ai >= 0 {
					jv := v.NbrRun[i]
					ws.middles = append(ws.middles, middle{
						ai: ai, rS: rS,
						lo: v.Mate[i] + 1, hi: v.RunStart[jv+1],
					})
					pullEst += v.RunDegSum[jv]
				}
			}
		}
		if len(ws.middles) == 0 {
			continue
		}
		// The pair mass is symmetric — the ordered pairs (s, t) and (t, s)
		// contribute the same amount to the same middle, and both ends of
		// every qualifying pair are endpoints — so the merge visits only
		// t > s and doubles. Pull's sigma scans therefore cost about half of
		// pullEst, which itself over-counts t's shared between middles; the
		// factor 4 folds both biases in (measured on the skewed reference
		// workload; see BenchmarkExactPhaseRange).
		pull := pullEst < 4*pushCost
		if !pull {
			// push: count common-neighbor multiplicity over the 2-hop ball.
			// Only t > s is counted — the merge below visits nothing else
			// (symmetric halving). Adjacency lists are sorted, so the
			// excluded t <= s form a prefix: walking each list backward and
			// breaking at the boundary touches exactly the needed suffix,
			// halving the densest loop of Lemma 18 on average. No other
			// validity filtering: the counts of direct neighbors above s
			// are garbage, but never read.
			for _, mv := range g.Neighbors(s) {
				nbrs := g.Neighbors(mv)
				for i := len(nbrs) - 1; i >= 0; i-- {
					t := nbrs[i]
					if t <= s {
						break
					}
					if ws.sigStamp[t] != ep {
						ws.sigStamp[t] = ep
						ws.sigma[t] = 1
					} else {
						ws.sigma[t]++
					}
				}
			}
		}
		// Merge over the pre-grouped runs of the collected middles: every
		// t in middle v's run shares v's block with the edge (s, v), so the
		// intra-block condition of Eq 29 holds by construction. The run's
		// masses accumulate locally first — one indexed store per run, not
		// per pair.
		for _, md := range ws.middles {
			rSW := 2 * md.rS / wA
			var acc float64
			for i := md.lo; i < md.hi; i++ {
				t := v.Nbr[i]
				if ws.isNbr[t] == ep {
					continue
				}
				if pull && ws.sigStamp[t] != ep {
					ws.sigStamp[t] = ep
					var c int32
					for _, w := range g.Neighbors(t) {
						if ws.isNbr[w] == ep {
							c++
						}
					}
					ws.sigma[t] = c
				}
				acc += float64(v.RNbr[i]) / float64(ws.sigma[t])
			}
			acc *= rSW
			out[md.ai] += acc
			lambda += acc
		}
	}
	return lambda
}

func resize(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}
