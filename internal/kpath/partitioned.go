package kpath

import (
	"context"

	"saphyra/internal/bicomp"
	"saphyra/internal/core"
	"saphyra/internal/graph"
	"saphyra/internal/params"
	"saphyra/internal/sched"
)

// EstimatePartitioned is a second full instantiation of the SaPHyRa
// framework (beyond SaPHyRa_bc): k-path centrality with a partitioned
// sample space.
//
// The exact subspace is the set of walks of intended length 1 — exactly a
// 1/k fraction of the sample space, whose risks have the closed form
//
//	lhat_v = (1/(n k)) * sum_{u in N(v)} 1/deg(u),
//
// computable in O(m). The approximate subspace is sampled by drawing the
// walk length uniformly from {2..k} (the conditional distribution; no
// rejection needed). Low-centrality nodes collect most of their k-path mass
// from 1-step walks, so — exactly as in SaPHyRa_bc — the partition removes
// the dominant portion of their risk from the sampling variance (Claim 8)
// and guarantees a non-zero estimate for every node with a neighbor.
func EstimatePartitioned(ctx context.Context, g *graph.Graph, a []graph.Node, opt Options) (*Result, error) {
	nodes, aIndex, err := targetIndex(g, a, &opt)
	if err != nil {
		return nil, err
	}
	space := &kpathSpace{
		g:       g,
		k:       opt.K,
		nodes:   nodes,
		aIndex:  aIndex,
		dim:     walkVCDim(opt.K, len(nodes)),
		workers: opt.Workers,
	}
	est, err := core.Run(ctx, space, core.Options{
		Epsilon: opt.Epsilon,
		Delta:   opt.Delta,
		Workers: opt.Workers,
		Seed:    opt.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &Result{Nodes: nodes, KPath: est.Risks, Est: est}, nil
}

// EstimatePartitionedView is EstimatePartitioned served from a
// block-annotated adjacency view (typically opened from a serialized file
// with bicomp.OpenMapped): the exact phase and the walk sampler run on the
// view's embedded CSR, so one persisted artifact powers the betweenness,
// k-path, and closeness engines without reloading the edge list. Results
// are bitwise-identical to EstimatePartitioned on the graph the view was
// built from.
func EstimatePartitionedView(ctx context.Context, view *bicomp.BlockCSR, a []graph.Node, opt Options) (*Result, error) {
	return EstimatePartitioned(ctx, view.G, a, opt)
}

type kpathSpace struct {
	g       *graph.Graph
	k       int
	nodes   []graph.Node
	aIndex  []int32
	dim     int
	workers int
}

// NumHypotheses implements core.Space.
func (s *kpathSpace) NumHypotheses() int { return len(s.nodes) }

// VCDim implements core.Space.
func (s *kpathSpace) VCDim() int { return s.dim }

// exactChunkTargets is the target count per exact-phase chunk: the per-target
// closed form is one adjacency scan, so chunking finer than this would spend
// more on scheduling than on summing.
const exactChunkTargets = 128

// maxExactChunks caps the exact phase's scheduling granularity, mirroring
// the exactphase engine's chunk cap.
const maxExactChunks = 64

// ExactPhase implements core.Space: the exact subspace is all intended
// 1-step walks; its mass is exactly 1/k and the per-target risks are the
// closed-form first-step visit probabilities.
//
// Targets are partitioned into degree-weighted chunks (sched.Bounds — a
// pure function of the target set) processed by up to s.workers goroutines.
// Each target's sum is accumulated sequentially over its sorted neighbor
// list and written to its own slot, so the output is bitwise-identical for
// any worker count.
func (s *kpathSpace) ExactPhase(ctx context.Context) (float64, []float64, error) {
	n := float64(s.g.NumNodes())
	exact := make([]float64, len(s.nodes))
	chunks := (len(s.nodes) + exactChunkTargets - 1) / exactChunkTargets
	if chunks > maxExactChunks {
		chunks = maxExactChunks
	}
	var bounds []int
	if chunks > 1 {
		cost := make([]float64, len(s.nodes))
		for i, v := range s.nodes {
			cost[i] = 1 + float64(s.g.Degree(v))
		}
		bounds = sched.Bounds(cost, chunks, nil)
	} else {
		bounds = []int{0, len(s.nodes)}
	}
	err := sched.DoCtx(ctx, chunks, s.workers, func(c int) {
		for i := bounds[c]; i < bounds[c+1]; i++ {
			v := s.nodes[i]
			var p float64
			for _, u := range s.g.Neighbors(v) {
				p += 1 / float64(s.g.Degree(u))
			}
			exact[i] = p / (n * float64(s.k))
		}
	})
	if err != nil {
		return 0, nil, &params.CanceledError{Cause: err}
	}
	return 1 / float64(s.k), exact, nil
}

// NewSampler implements core.Space: walks of length l uniform in {2..k}
// (the approximate-subspace conditional). For k == 1 the exact subspace is
// the whole space and core.Run never calls the sampler. The returned
// sampler implements core.BatchSampler.
func (s *kpathSpace) NewSampler(seed int64) core.Sampler {
	return newWalkSampler(s.g, s.aIndex, 2, s.k, seed)
}

var _ core.Space = (*kpathSpace)(nil)
