// Package hist is the lock-cheap latency recorder behind the telemetry
// registry (internal/obs), the load-replay harness (internal/loadgen), and
// the serving benchmarks: a log-bucketed
// histogram whose Observe is one atomic add on a statically indexed
// counter — no mutex, no allocation, no sorting — plus per-outcome request
// counters. Quantiles are read from cumulative bucket counts with a bounded
// relative error (one part in 2^subBits per observation), which replaces
// the sort-every-sample percentile idiom the serving bench used: a sorted
// slice is exact but costs O(n log n) memory traffic at read time and a
// per-observation append that cannot be shared across goroutines without a
// lock, while the histogram is wait-free to write and O(buckets) to read.
package hist

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Bucket layout: values are nanosecond durations. The first 1<<subBits
// buckets are exact (one per nanosecond); above that, each power-of-two
// octave splits into 1<<subBits log-linear sub-buckets, so a bucket's width
// is at most its lower bound / 2^subBits. With subBits = 5 the relative
// quantile error is <= 1/32 ≈ 3.2% — far below the run-to-run noise of any
// latency measurement — and the whole histogram is 64 octaves x 32 buckets
// of 8 bytes: 16 KiB of counters.
const (
	subBits    = 5
	subBuckets = 1 << subBits
	numBuckets = (64 - subBits + 1) * subBuckets
)

// Histogram is a wait-free log-bucketed histogram of time.Duration values.
// The zero value is ready to use; all methods are safe for concurrent use.
type Histogram struct {
	counts [numBuckets]atomic.Int64
	total  atomic.Int64
	sum    atomic.Int64 // nanoseconds, for Mean
}

// bucketOf maps a nanosecond value to its bucket index.
func bucketOf(ns int64) int {
	if ns < 0 {
		ns = 0
	}
	if ns < subBuckets {
		return int(ns) // exact region
	}
	// Octave = position of the top bit; sub-bucket = the next subBits bits.
	octave := 63 - bits.LeadingZeros64(uint64(ns))
	sub := (ns >> (uint(octave) - subBits)) & (subBuckets - 1)
	return (octave-subBits+1)<<subBits + int(sub)
}

// upperBound returns the inclusive upper edge of bucket i — the value
// Quantile reports, so reported quantiles never understate the truth.
func upperBound(i int) int64 {
	if i < subBuckets {
		return int64(i)
	}
	octave := i>>subBits + subBits - 1
	sub := int64(i&(subBuckets-1)) + 1
	return (1 << uint(octave)) + sub<<(uint(octave)-subBits) - 1
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.counts[bucketOf(int64(d))].Add(1)
	h.total.Add(1)
	h.sum.Add(int64(d))
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Mean returns the exact arithmetic mean of the observations.
func (h *Histogram) Mean() time.Duration {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Quantile returns the q-quantile (q in [0, 1]) as the upper bound of the
// bucket holding the ceil(q*n)-th smallest observation, so the result is
// within one bucket width above the exact order statistic. Returns 0 when
// empty. Concurrent Observes may or may not be included; the read is
// consistent enough for reporting, which is all a histogram promises.
func (h *Histogram) Quantile(q float64) time.Duration {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := range h.counts {
		seen += h.counts[i].Load()
		if seen >= rank {
			return time.Duration(upperBound(i))
		}
	}
	return time.Duration(upperBound(numBuckets - 1))
}

// Sum returns the exact sum of all observed durations in nanoseconds.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// CumulativeAt fills out[i] with the number of observations whose value is
// <= edges[i] nanoseconds, for ascending edges. A single pass over the fine
// buckets: a fine bucket counts toward edge e iff its inclusive upper bound
// is <= e, so the coarse counts never overstate (an observation can sit
// anywhere in its bucket, and the bucket's upper bound is the largest value
// it can hold). Returns the total observation count, which is the +Inf
// cumulative value. len(out) must equal len(edges).
func (h *Histogram) CumulativeAt(edges []int64, out []int64) int64 {
	var cum int64
	b := 0
	for i, e := range edges {
		for b < numBuckets && upperBound(b) <= e {
			cum += h.counts[b].Load()
			b++
		}
		out[i] = cum
	}
	for ; b < numBuckets; b++ {
		cum += h.counts[b].Load()
	}
	return cum
}

// RelativeError is the worst-case relative quantile overshoot: a reported
// quantile exceeds the exact order statistic by at most this fraction of
// its value (plus one nanosecond in the exact region).
func RelativeError() float64 { return 1.0 / subBuckets }

// Outcome classifies one load-replay response for the per-outcome counters.
type Outcome int

// The response classes the serving layer can produce, one counter each:
// 200 exact, 200 flagged degraded, 429 (shed or quota), 504 (deadline),
// 499 (client disconnect), and anything else (transport errors, 4xx/5xx).
const (
	OK Outcome = iota
	Degraded
	Shed
	Deadline
	ClientClosed
	Error
	numOutcomes
)

var outcomeNames = [numOutcomes]string{"ok", "degraded", "shed", "deadline", "client_closed", "error"}

func (o Outcome) String() string {
	if o < 0 || o >= numOutcomes {
		return "unknown"
	}
	return outcomeNames[o]
}

// Outcomes lists every outcome in declaration order, for report iteration.
func Outcomes() []Outcome {
	out := make([]Outcome, numOutcomes)
	for i := range out {
		out[i] = Outcome(i)
	}
	return out
}

// Recorder couples the latency histogram with per-outcome counters: one
// Observe per completed request, wait-free, shared by every in-flight
// request goroutine of a load run.
type Recorder struct {
	// All holds every response's latency; Served holds only 200s (exact or
	// degraded) — the latency a satisfied client saw, unpolluted by the
	// microseconds-cheap rejection fast paths.
	All    Histogram
	Served Histogram

	counts [numOutcomes]atomic.Int64
}

// Observe records one completed request.
func (r *Recorder) Observe(o Outcome, d time.Duration) {
	if o < 0 || o >= numOutcomes {
		o = Error
	}
	r.counts[o].Add(1)
	r.All.Observe(d)
	if o == OK || o == Degraded {
		r.Served.Observe(d)
	}
}

// Count returns the number of responses with outcome o.
func (r *Recorder) Count(o Outcome) int64 {
	if o < 0 || o >= numOutcomes {
		return 0
	}
	return r.counts[o].Load()
}

// Total returns the number of observed responses.
func (r *Recorder) Total() int64 { return r.All.Count() }

// Rate returns Count(o)/Total(), 0 when empty.
func (r *Recorder) Rate(o Outcome) float64 {
	n := r.Total()
	if n == 0 {
		return 0
	}
	return float64(r.Count(o)) / float64(n)
}
