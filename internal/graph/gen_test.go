package graph

import (
	"testing"
)

func isConnected(g *Graph) bool {
	if g.NumNodes() == 0 {
		return true
	}
	_, sizes, count := ConnectedComponents(g)
	return count == 1 && sizes[0] == int64(g.NumNodes())
}

func TestPath(t *testing.T) {
	g := Path(5)
	if g.NumNodes() != 5 || g.NumEdges() != 4 {
		t.Fatalf("Path(5): n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
	if g.Degree(0) != 1 || g.Degree(4) != 1 || g.Degree(2) != 2 {
		t.Error("Path degrees wrong")
	}
	if Diameter(g) != 4 {
		t.Errorf("Path(5) diameter = %d, want 4", Diameter(g))
	}
}

func TestCycle(t *testing.T) {
	g := Cycle(6)
	if g.NumNodes() != 6 || g.NumEdges() != 6 {
		t.Fatalf("Cycle(6): n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
	for u := Node(0); u < 6; u++ {
		if g.Degree(u) != 2 {
			t.Fatalf("Cycle degree(%d) = %d", u, g.Degree(u))
		}
	}
	if Diameter(g) != 3 {
		t.Errorf("Cycle(6) diameter = %d, want 3", Diameter(g))
	}
}

func TestComplete(t *testing.T) {
	g := Complete(7)
	if g.NumEdges() != 21 {
		t.Errorf("K7 edges = %d, want 21", g.NumEdges())
	}
	if Diameter(g) != 1 {
		t.Errorf("K7 diameter = %d, want 1", Diameter(g))
	}
}

func TestStar(t *testing.T) {
	g := Star(8)
	if g.NumEdges() != 7 {
		t.Errorf("Star(8) edges = %d, want 7", g.NumEdges())
	}
	if g.Degree(0) != 7 {
		t.Errorf("Star center degree = %d, want 7", g.Degree(0))
	}
	if Diameter(g) != 2 {
		t.Errorf("Star diameter = %d, want 2", Diameter(g))
	}
}

func TestBarbell(t *testing.T) {
	g := Barbell(5, 3)
	// 2 cliques of 5 (10 edges each) + path of 3 edges
	if g.NumEdges() != 23 {
		t.Errorf("Barbell(5,3) edges = %d, want 23", g.NumEdges())
	}
	if !isConnected(g) {
		t.Error("Barbell not connected")
	}
}

func TestBarbellPathLenOne(t *testing.T) {
	g := Barbell(3, 1)
	// two triangles joined by a single edge, no fresh path nodes
	if g.NumNodes() != 6 {
		t.Errorf("nodes = %d, want 6", g.NumNodes())
	}
	if g.NumEdges() != 7 {
		t.Errorf("edges = %d, want 7", g.NumEdges())
	}
	if !g.HasEdge(2, 3) {
		t.Error("bridge edge missing")
	}
}

func TestRandomTree(t *testing.T) {
	g := RandomTree(50, 7)
	if g.NumEdges() != 49 {
		t.Errorf("tree edges = %d, want 49", g.NumEdges())
	}
	if !isConnected(g) {
		t.Error("tree not connected")
	}
}

func TestErdosRenyi(t *testing.T) {
	g := ErdosRenyi(100, 250, 1)
	if g.NumNodes() != 100 {
		t.Errorf("n = %d, want 100", g.NumNodes())
	}
	if g.NumEdges() != 250 {
		t.Errorf("m = %d, want 250 (exact-m sampling)", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
}

func TestErdosRenyiClampsEdgeCount(t *testing.T) {
	g := ErdosRenyi(5, 1000, 1)
	if g.NumEdges() != 10 {
		t.Errorf("m = %d, want 10 (clamped to complete graph)", g.NumEdges())
	}
}

func TestBarabasiAlbertShape(t *testing.T) {
	g := BarabasiAlbert(500, 4, 11)
	if g.NumNodes() != 500 {
		t.Fatalf("n = %d", g.NumNodes())
	}
	if !isConnected(g) {
		t.Error("BA graph should be connected")
	}
	// m is close to n*k: seed clique contributes k(k+1)/2, others k each.
	want := int64((500-5)*4 + 10)
	if g.NumEdges() > want || g.NumEdges() < want-int64(500) {
		t.Errorf("m = %d, want close to %d", g.NumEdges(), want)
	}
	// Scale-free: max degree should be much larger than k.
	if g.MaxDegree() < 15 {
		t.Errorf("max degree = %d, expected a hub", g.MaxDegree())
	}
}

func TestBarabasiAlbertDeterministic(t *testing.T) {
	a := BarabasiAlbert(200, 3, 5)
	b := BarabasiAlbert(200, 3, 5)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed produced different graphs")
	}
	for _, e := range a.Edges() {
		if !b.HasEdge(e.U, e.V) {
			t.Fatalf("same seed produced different edge sets at %v", e)
		}
	}
	c := BarabasiAlbert(200, 3, 6)
	same := true
	for _, e := range a.Edges() {
		if !c.HasEdge(e.U, e.V) {
			same = false
			break
		}
	}
	if same && a.NumEdges() == c.NumEdges() {
		t.Error("different seeds produced identical graphs")
	}
}

func TestPowerLawCluster(t *testing.T) {
	g := PowerLawCluster(400, 4, 0.5, 3)
	if g.NumNodes() != 400 {
		t.Fatalf("n = %d", g.NumNodes())
	}
	if !isConnected(g) {
		t.Error("PLC graph should be connected")
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
}

func TestWattsStrogatz(t *testing.T) {
	g := WattsStrogatz(300, 3, 0.1, 9)
	if g.NumNodes() != 300 {
		t.Fatalf("n = %d", g.NumNodes())
	}
	// Each node initiates 3 edges; after dedup m <= 900 and >= 600.
	if g.NumEdges() > 900 || g.NumEdges() < 600 {
		t.Errorf("m = %d out of expected range", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
}

func TestGrid2D(t *testing.T) {
	g := Grid2D(4, 6)
	if g.NumNodes() != 24 {
		t.Fatalf("n = %d", g.NumNodes())
	}
	want := int64(4*5 + 3*6) // horizontal + vertical
	if g.NumEdges() != want {
		t.Errorf("m = %d, want %d", g.NumEdges(), want)
	}
	if Diameter(g) != 8 {
		t.Errorf("diameter = %d, want 8", Diameter(g))
	}
}

func TestRoadNetworkConnectedAndLargeDiameter(t *testing.T) {
	g := RoadNetwork(30, 30, 0.4, 13)
	if !isConnected(g) {
		t.Fatal("road network must stay connected")
	}
	if d := Diameter(g); d < 29 {
		t.Errorf("diameter = %d, expected road-like (>= 29)", d)
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
}

func TestGridCoord(t *testing.T) {
	r, c := GridCoord(17, 5)
	if r != 3 || c != 2 {
		t.Errorf("GridCoord(17,5) = (%d,%d), want (3,2)", r, c)
	}
}
