// Command saphyra ranks a subset of nodes of an edge-list graph by
// betweenness centrality with the SaPHyRa_bc algorithm (or a baseline, for
// comparison).
//
// Usage:
//
//	saphyra -graph net.txt -targets 17,99,1024 -eps 0.05 -delta 0.01
//	saphyra -graph net.txt -random 100 -seed 7 -method kadabra
//	saphyra -graph net.txt -all
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"

	"saphyra"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "edge-list file (required)")
		targets   = flag.String("targets", "", "comma-separated node ids to rank (original ids from the file)")
		random    = flag.Int("random", 0, "rank this many random nodes instead of -targets")
		all       = flag.Bool("all", false, "rank every node (SaPHyRa-full)")
		eps       = flag.Float64("eps", 0.05, "additive error guarantee")
		delta     = flag.Float64("delta", 0.01, "failure probability")
		seed      = flag.Int64("seed", 1, "RNG seed")
		workers   = flag.Int("workers", 0, "sampling workers (0 = all CPUs)")
		method    = flag.String("method", "saphyra", "saphyra | abra | kadabra")
		exactFlag = flag.Bool("exact", false, "also compute exact betweenness and report rank correlation")
		topK      = flag.Int("top", 0, "print only the top K rows (0 = all)")
	)
	flag.Parse()
	if *graphPath == "" {
		fmt.Fprintln(os.Stderr, "saphyra: -graph is required")
		flag.Usage()
		os.Exit(2)
	}
	g, orig, err := saphyra.LoadEdgeList(*graphPath)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "loaded %s: %d nodes, %d edges\n", *graphPath, g.NumNodes(), g.NumEdges())

	// map original id -> dense id
	back := make(map[int64]saphyra.Node, len(orig))
	for dense, raw := range orig {
		back[raw] = saphyra.Node(dense)
	}

	var subset []saphyra.Node
	switch {
	case *all:
		for v := 0; v < g.NumNodes(); v++ {
			subset = append(subset, saphyra.Node(v))
		}
	case *random > 0:
		rng := rand.New(rand.NewSource(*seed))
		seen := map[saphyra.Node]bool{}
		for len(subset) < *random && len(subset) < g.NumNodes() {
			v := saphyra.Node(rng.Intn(g.NumNodes()))
			if !seen[v] {
				seen[v] = true
				subset = append(subset, v)
			}
		}
	case *targets != "":
		for _, tok := range strings.Split(*targets, ",") {
			raw, err := strconv.ParseInt(strings.TrimSpace(tok), 10, 64)
			if err != nil {
				fatal(fmt.Errorf("bad target %q: %v", tok, err))
			}
			dense, ok := back[raw]
			if !ok {
				fatal(fmt.Errorf("node %d not present in graph", raw))
			}
			subset = append(subset, dense)
		}
	default:
		fmt.Fprintln(os.Stderr, "saphyra: one of -targets, -random, -all is required")
		os.Exit(2)
	}

	var m saphyra.Method
	switch strings.ToLower(*method) {
	case "saphyra":
		m = saphyra.MethodSaPHyRa
	case "abra":
		m = saphyra.MethodABRA
	case "kadabra":
		m = saphyra.MethodKADABRA
	default:
		fatal(fmt.Errorf("unknown method %q", *method))
	}

	res, err := saphyra.RankSubset(g, subset, saphyra.Options{
		Epsilon: *eps, Delta: *delta, Workers: *workers, Seed: *seed, Method: m,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "method=%s eps=%g delta=%g samples=%d time=%v\n",
		m, *eps, *delta, res.Samples, res.Duration)

	// print rows ordered by rank
	order := make([]int, len(res.Nodes))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return res.Rank[order[a]] < res.Rank[order[b]] })
	limit := len(order)
	if *topK > 0 && *topK < limit {
		limit = *topK
	}
	fmt.Println("rank\tnode\tbetweenness")
	for _, i := range order[:limit] {
		fmt.Printf("%d\t%d\t%.6g\n", res.Rank[i], orig[res.Nodes[i]], res.Scores[i])
	}

	if *exactFlag {
		truth := saphyra.ExactBC(g, *workers)
		truthA := make([]float64, len(res.Nodes))
		ids := make([]int32, len(res.Nodes))
		for i, v := range res.Nodes {
			truthA[i] = truth[v]
			ids[i] = int32(v)
		}
		fmt.Fprintf(os.Stderr, "spearman rank correlation vs exact: %.4f\n",
			saphyra.Spearman(truthA, res.Scores, ids))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "saphyra:", err)
	os.Exit(1)
}
