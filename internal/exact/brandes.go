// Package exact computes exact betweenness centrality with Brandes'
// algorithm [33], sequentially or in parallel. It is the ground-truth
// substrate of the evaluation: the paper's reference values were computed
// with a parallel Brandes on a Cray XC40; here the same algorithm runs on
// scaled-down networks.
//
// Returned values follow the paper's Eq 3 normalization: bc(v) is the
// average over ordered node pairs (s, t), s != v != t, of
// sigma_st(v)/sigma_st, i.e. raw Brandes dependency sums divided by n(n-1).
package exact

import (
	"runtime"
	"sync"
	"sync/atomic"

	"saphyra/internal/graph"
)

// BC computes exact normalized betweenness centrality sequentially.
func BC(g *graph.Graph) []float64 {
	n := g.NumNodes()
	bc := make([]float64, n)
	w := newWorkspace(n)
	for s := 0; s < n; s++ {
		w.accumulate(g, graph.Node(s), bc)
	}
	normalize(bc, n)
	return bc
}

// BCParallel computes exact normalized betweenness centrality using the
// given number of worker goroutines (<= 0 means GOMAXPROCS). Sources are
// distributed dynamically; each worker accumulates into a private vector
// merged at the end, so the result is deterministic and equal to BC.
func BCParallel(g *graph.Graph, workers int) []float64 {
	n := g.NumNodes()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return BC(g)
	}
	bc := make([]float64, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	nextSource := func() int { return int(next.Add(1) - 1) }
	partials := make([][]float64, workers)
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			local := make([]float64, n)
			ws := newWorkspace(n)
			for {
				s := nextSource()
				if s >= n {
					break
				}
				ws.accumulate(g, graph.Node(s), local)
			}
			partials[wi] = local
		}(wi)
	}
	wg.Wait()
	for _, local := range partials {
		for i, v := range local {
			bc[i] += v
		}
	}
	normalize(bc, n)
	return bc
}

func normalize(bc []float64, n int) {
	if n < 2 {
		return
	}
	inv := 1.0 / (float64(n) * float64(n-1))
	for i := range bc {
		bc[i] *= inv
	}
}

// workspace holds per-source Brandes state, reused across sources.
type workspace struct {
	dist  []int32
	sigma []float64
	delta []float64
	order []graph.Node
}

func newWorkspace(n int) *workspace {
	return &workspace{
		dist:  make([]int32, n),
		sigma: make([]float64, n),
		delta: make([]float64, n),
		order: make([]graph.Node, 0, n),
	}
}

// accumulate adds the source's pair dependencies delta_s(v) to acc. Summed
// over all sources this yields the ordered-pair dependency sum of Eq 3
// before normalization.
func (w *workspace) accumulate(g *graph.Graph, s graph.Node, acc []float64) {
	for i := range w.dist {
		w.dist[i] = -1
		w.sigma[i] = 0
		w.delta[i] = 0
	}
	w.order = w.order[:0]
	w.dist[s] = 0
	w.sigma[s] = 1
	w.order = append(w.order, s)
	for head := 0; head < len(w.order); head++ {
		u := w.order[head]
		du := w.dist[u]
		su := w.sigma[u]
		for _, v := range g.Neighbors(u) {
			switch {
			case w.dist[v] == -1:
				w.dist[v] = du + 1
				w.sigma[v] = su
				w.order = append(w.order, v)
			case w.dist[v] == du+1:
				w.sigma[v] += su
			}
		}
	}
	// Dependency accumulation in reverse BFS order.
	for i := len(w.order) - 1; i > 0; i-- {
		u := w.order[i]
		coeff := (1 + w.delta[u]) / w.sigma[u]
		du := w.dist[u]
		for _, v := range g.Neighbors(u) {
			if w.dist[v] == du-1 {
				w.delta[v] += w.sigma[v] * coeff
			}
		}
	}
	for _, u := range w.order[1:] {
		acc[u] += w.delta[u]
	}
}
