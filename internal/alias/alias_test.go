package alias

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestEmpty(t *testing.T) {
	tab := New(nil)
	if tab.Len() != 0 {
		t.Fatalf("Len() = %d, want 0", tab.Len())
	}
}

func TestSingleColumn(t *testing.T) {
	tab := New([]float64{3.5})
	for _, u := range []float64{0, 0.25, 0.5, 0.9999999} {
		if got := tab.Draw(u); got != 0 {
			t.Fatalf("Draw(%g) = %d, want 0", u, got)
		}
	}
}

func TestZeroWeightsUniform(t *testing.T) {
	tab := New([]float64{0, 0, 0, 0})
	counts := make([]int, 4)
	rng := rand.New(rand.NewPCG(1, 2))
	const n = 40000
	for i := 0; i < n; i++ {
		counts[tab.Draw(rng.Float64())]++
	}
	for i, c := range counts {
		if math.Abs(float64(c)/n-0.25) > 0.02 {
			t.Errorf("column %d frequency %g, want ~0.25", i, float64(c)/n)
		}
	}
}

func TestZeroWeightColumnNeverDrawn(t *testing.T) {
	tab := New([]float64{1, 0, 1, 0, 2})
	rng := rand.New(rand.NewPCG(3, 4))
	for i := 0; i < 100000; i++ {
		switch tab.Draw(rng.Float64()) {
		case 1, 3:
			t.Fatal("drew a zero-weight column")
		}
	}
}

// TestMatchesWeights checks empirical frequencies against the weight vector
// for a skewed distribution (the r(s)(S-r(s)) shape on a hub-and-spoke
// block: one huge weight, many tiny ones).
func TestMatchesWeights(t *testing.T) {
	w := []float64{100, 1, 2, 3, 0.5, 10, 1, 1, 1, 0.25}
	var total float64
	for _, x := range w {
		total += x
	}
	tab := New(w)
	counts := make([]float64, len(w))
	rng := rand.New(rand.NewPCG(5, 6))
	const n = 2_000_000
	for i := 0; i < n; i++ {
		counts[tab.Draw(rng.Float64())]++
	}
	for i := range w {
		want := w[i] / total
		got := counts[i] / n
		// 4-sigma binomial tolerance plus an absolute floor
		tol := 4*math.Sqrt(want*(1-want)/n) + 1e-4
		if math.Abs(got-want) > tol {
			t.Errorf("column %d frequency %g, want %g (tol %g)", i, got, want, tol)
		}
	}
}

func TestNegativeClampedToZero(t *testing.T) {
	tab := New([]float64{-5, 1})
	rng := rand.New(rand.NewPCG(7, 8))
	for i := 0; i < 10000; i++ {
		if got := tab.Draw(rng.Float64()); got != 1 {
			t.Fatalf("Draw = %d, want 1 (negative weight must not be drawn)", got)
		}
	}
}

func TestDeterministic(t *testing.T) {
	w := []float64{1, 2, 3, 4, 5}
	a, b := New(w), New(w)
	for u := 0.0; u < 1; u += 1e-3 {
		if a.Draw(u) != b.Draw(u) {
			t.Fatalf("tables built from identical weights disagree at u=%g", u)
		}
	}
}

func BenchmarkDraw(b *testing.B) {
	w := make([]float64, 1024)
	for i := range w {
		w[i] = float64(i%17) + 0.5
	}
	tab := New(w)
	rng := rand.New(rand.NewPCG(9, 10))
	b.ReportAllocs()
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += tab.Draw(rng.Float64())
	}
	_ = sink
}
