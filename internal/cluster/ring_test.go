package cluster

import (
	"context"
	"crypto/sha256"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestRingDeterministicAndPositional(t *testing.T) {
	names := []string{"http://a:1", "http://b:1", "http://c:1"}
	r1, err := NewRing(names, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRing(names, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		h := Hash64("key-", strconv.Itoa(i))
		if r1.Owner(h) != r2.Owner(h) {
			t.Fatalf("rings over the same list disagree at key %d", i)
		}
	}
	// Reordering the list must not move any key by NAME (the ring hashes
	// names, not positions) — but indices shift, which is why every fleet
	// member must receive the same ordered list: Peers.self is an index.
	r3, err := NewRing([]string{names[1], names[0], names[2]}, 0)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for i := 0; i < 10000; i++ {
		h := Hash64("key-", strconv.Itoa(i))
		if names[r1.Owner(h)] != []string{names[1], names[0], names[2]}[r3.Owner(h)] {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("reordering the list moved %d keys by NAME; ring should hash names, not positions", moved)
	}
}

func TestRingBalance(t *testing.T) {
	names := []string{"http://a:1", "http://b:1", "http://c:1"}
	r, err := NewRing(names, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, len(names))
	const keys = 30000
	for i := 0; i < keys; i++ {
		counts[r.Owner(Hash64("key-", strconv.Itoa(i)))]++
	}
	for i, c := range counts {
		share := float64(c) / keys
		if share < 0.15 || share > 0.55 {
			t.Fatalf("replica %d owns %.1f%% of keys; vnode balance is off (counts %v)", i, 100*share, counts)
		}
	}
}

func TestRingOwnersDistinctAndOrdered(t *testing.T) {
	r, err := NewRing([]string{"a", "b", "c", "d"}, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		h := Hash64("k", strconv.Itoa(i))
		owners := r.Owners(h, 3)
		if len(owners) != 3 {
			t.Fatalf("Owners(h, 3) = %v", owners)
		}
		if owners[0] != r.Owner(h) {
			t.Fatalf("Owners first entry %d != Owner %d", owners[0], r.Owner(h))
		}
		seen := map[int]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("duplicate owner in %v", owners)
			}
			seen[o] = true
		}
	}
	if got := r.Owners(42, 99); len(got) != 4 {
		t.Fatalf("Owners clamps to fleet size; got %v", got)
	}
}

// TestRingRemovalMovesOnlyTheRemoved pins the consistent-hashing property
// the peer-fill tier's cache warmth depends on: dropping one replica from
// the list leaves every key owned by a surviving replica exactly where it
// was, because the survivors' ring points are unchanged.
func TestRingRemovalMovesOnlyTheRemoved(t *testing.T) {
	full, err := NewRing([]string{"a", "b", "c"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := NewRing([]string{"a", "b"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20000; i++ {
		h := Hash64("key-", strconv.Itoa(i))
		if o := full.Owner(h); o != 2 && sub.Owner(h) != o {
			t.Fatalf("key %d moved from replica %d without its owner leaving", i, o)
		}
	}
}

func TestRingErrorsAndHashStability(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("NewRing(nil) should fail")
	}
	// FNV-1a is a cross-process, cross-architecture contract; pin it.
	if got := Hash64("a"); got != 0xaf63dc4c8601ec8c {
		t.Fatalf("Hash64(a) = %#x; the ring hash must never change", got)
	}
	var key [sha256.Size]byte
	key[0], key[7] = 0x01, 0xff
	if got := KeyHash(key); got != 0x01000000000000ff {
		t.Fatalf("KeyHash = %#x, want big-endian first 8 bytes", got)
	}
}

func TestHealthEWMA(t *testing.T) {
	h := newHealthState()
	if !h.healthy() {
		t.Fatal("fresh state should start optimistic")
	}
	h.observe(false)
	if !h.healthy() {
		t.Fatalf("one failure (score %.3f) should not yet cross the threshold", h.score())
	}
	h.observe(false)
	if h.healthy() {
		t.Fatalf("two consecutive failures should mark unhealthy; score %.3f", h.score())
	}
	for i := 0; i < 3; i++ {
		h.observe(true)
	}
	if !h.healthy() {
		t.Fatalf("successes should recover health; score %.3f", h.score())
	}
}

func TestHealthProbe(t *testing.T) {
	h := newHealthState()
	ok := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/readyz" {
			t.Errorf("probe hit %s", r.URL.Path)
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer ok.Close()
	h.probe(context.Background(), ok.Client(), ok.URL, time.Second)
	if !h.healthy() {
		t.Fatal("200 probe should keep health up")
	}

	down := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	downURL := down.URL
	down.Close()
	for i := 0; i < 4; i++ {
		h.probe(context.Background(), http.DefaultClient, downURL, 100*time.Millisecond)
	}
	if h.healthy() {
		t.Fatalf("probes against a dead replica should decay health; score %.3f", h.score())
	}
}

func TestPushViewAtomicReplace(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "src.sbcv")
	dst := filepath.Join(dir, "dst.sbcv")
	want := strings.Repeat("new view bytes ", 1000)
	if err := os.WriteFile(src, []byte(want), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, []byte("old view"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := PushView(src, dst); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(dst)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != want {
		t.Fatal("dst does not match src after push")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), ".push-") {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}
	if err := PushView(filepath.Join(dir, "missing"), dst); err == nil {
		t.Fatal("pushing a missing source should fail")
	}
}
