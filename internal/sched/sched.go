// Package sched is the shared worker/determinism substrate of the three
// ranking engines (internal/exactphase, internal/kpath, internal/closeness)
// and of the core sampling drive. It factors out the three mechanisms that
// make parallel runs reproducible bit for bit:
//
//   - deterministic partitioning: Bounds splits a cost-weighted item range
//     into contiguous chunks and Split divides a sample budget into quotas,
//     both as pure functions of their inputs — never of the worker count;
//   - work stealing without order effects: Do and DoWith execute the fixed
//     chunk list on up to `workers` goroutines pulling from an atomic
//     counter. Which goroutine runs which chunk varies run to run, but as
//     long as callers write per-chunk results into per-chunk slots and merge
//     them in chunk-index order (or merge values whose reduction is exact,
//     such as integer counts), the output is independent of scheduling;
//   - epoch-stamped scratch: Epoch manages the mark arrays that give
//     per-iteration O(touched) reset instead of O(n) clearing, with the
//     wrap-around clear centralized in one place.
//
// The fixed virtual-worker count VirtualWorkers decouples the sampling
// engines' random streams from Options.Workers: each virtual worker owns one
// seeded sampler, so any physical worker count replays the same streams. See
// DESIGN.md section 3 (determinism) and section 7 (the shared view layer).
package sched

import (
	"context"
	"math"
	"sync"
	"sync/atomic"

	"saphyra/internal/obs"
)

// VirtualWorkers is the fixed number of independent sampler streams driven
// by the sampling engines, regardless of the physical worker count. Results
// are a pure function of the seed: a run with 1 worker and a run with 64
// workers interleave the same VirtualWorkers streams and merge them in the
// same order. The value is part of the determinism contract — changing it
// changes every sampled estimate — so it is a constant, not an option.
const VirtualWorkers = 16

// Split divides total units across parts as evenly as possible: every part
// receives total/parts, and the first total%parts parts receive one more.
// The returned slice reuses quota when it has sufficient capacity.
func Split(total int64, parts int, quota []int64) []int64 {
	if cap(quota) < parts {
		quota = make([]int64, parts)
	}
	quota = quota[:parts]
	base := total / int64(parts)
	rem := total % int64(parts)
	for i := range quota {
		quota[i] = base
		if int64(i) < rem {
			quota[i]++
		}
	}
	return quota
}

// Bounds partitions items [0, len(cost)) into `chunks` contiguous ranges
// balanced by the per-item cost: chunk c spans [bounds[c], bounds[c+1]).
// A single item dominating the mass cannot capture a prefix of chunks
// (chunk c never starts before item c), though lumpy costs can still leave
// individual chunks empty — callers must treat an empty range as a no-op.
// The result is a pure function of (cost, chunks), so chunk-order merges
// downstream are bitwise-reproducible for any worker count. The returned
// slice (length chunks+1) reuses bounds when it has sufficient capacity.
func Bounds(cost []float64, chunks int, bounds []int) []int {
	if cap(bounds) < chunks+1 {
		bounds = make([]int, chunks+1)
	}
	bounds = bounds[:chunks+1]
	var total float64
	for _, c := range cost {
		total += c
	}
	bounds[0] = 0
	var acc float64
	at := 0
	for c := 1; c < chunks; c++ {
		target := total * float64(c) / float64(chunks)
		for at < len(cost) && (acc < target || at < c) {
			// at < c keeps every chunk non-empty even when one item
			// dominates the cost mass.
			acc += cost[at]
			at++
		}
		bounds[c] = at
	}
	bounds[chunks] = len(cost)
	return bounds
}

// Do runs fn(c) for every chunk c in [0, chunks) on up to `workers`
// goroutines pulling chunk indices from a shared atomic counter. With
// workers <= 1 the chunks run inline on the calling goroutine, in order.
// fn must be safe for concurrent invocation on distinct chunks.
func Do(chunks, workers int, fn func(c int)) {
	DoWith(chunks, workers, func() struct{} { return struct{}{} }, func(struct{}) {},
		func(_ struct{}, c int) { fn(c) })
}

// DoCtx is Do with a cancellation checkpoint between chunks: every goroutine
// polls ctx before stealing the next chunk and stops stealing once it is
// done. It returns nil when every chunk ran and the context's cause when the
// run was cut short — in that case an arbitrary subset of chunks never
// executed, so the caller MUST discard all partial output (the engines'
// all-or-nothing contract). The poll is one atomic-ish interface call per
// chunk — chunks are coarse (at most ~64 per run), so it is free relative to
// chunk work.
func DoCtx(ctx context.Context, chunks, workers int, fn func(c int)) error {
	return DoWithCtx(ctx, chunks, workers, func() struct{} { return struct{}{} }, func(struct{}) {},
		func(_ struct{}, c int) { fn(c) })
}

// DoWith is Do with a per-goroutine resource: each participating goroutine
// calls acquire once, processes its stolen chunks with fn, and calls release
// once. It is the shape the engines use for pooled per-worker scratch —
// acquire/release bracket a goroutine's lifetime, not a chunk's, so scratch
// churn is O(workers), not O(chunks).
func DoWith[W any](chunks, workers int, acquire func() W, release func(W), fn func(w W, c int)) {
	DoWithCtx(context.Background(), chunks, workers, acquire, release, fn)
}

// DoWithCtx is DoWith with the DoCtx cancellation checkpoint. Goroutines
// stop stealing chunks once ctx is done; a chunk already started always runs
// to completion (fn is never interrupted mid-chunk), so per-chunk outputs
// are whole — but the chunk *set* may be incomplete, and the caller must
// treat any non-nil return as "no output".
func DoWithCtx[W any](ctx context.Context, chunks, workers int, acquire func() W, release func(W), fn func(w W, c int)) error {
	if chunks <= 0 {
		return nil
	}
	if workers > chunks {
		workers = chunks
	}
	if workers <= 1 {
		w := acquire()
		defer release(w)
		for c := 0; c < chunks; c++ {
			if ctx.Err() != nil {
				return context.Cause(ctx)
			}
			fn(w, c)
		}
		return nil
	}
	// limit is a local copy so the closure does not capture the parameter
	// used by the sequential path above.
	limit := int64(chunks)
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := acquire()
			defer release(w)
			for ctx.Err() == nil {
				c := next.Add(1) - 1
				if c >= limit {
					break
				}
				fn(w, int(c))
			}
		}()
	}
	wg.Wait()
	if ctx.Err() != nil {
		return context.Cause(ctx)
	}
	return nil
}

// Stop is the sub-chunk cancellation flag: a single atomic bool the
// engines' innermost loops can poll far more often than the chunk-boundary
// checkpoints of DoCtx allow. The chunk checkpoints bound time-to-cancel by
// one chunk — which for the sampling engine means one whole grouping round,
// seconds at tight eps on huge budgets — while a Stop polled every few
// thousand pairs bounds it by the poll stride.
//
// The poll (Stopped) is one atomic load with no ordering obligations beyond
// the load itself — the flag only ever transitions false -> true, and a
// missed edge costs one extra stride, never correctness. A nil *Stop is
// permanently unstopped, so samplers can hold one unconditionally and skip
// the nil wiring in non-cancellable paths. Raising the flag never touches
// the RNG streams or any per-sample state: a run that completes with an
// unraised (or never-wired) Stop is bitwise-identical to one with no Stop
// at all — the poll is pure control flow.
type Stop struct {
	flag atomic.Bool
}

// Stopped reports whether the flag was raised. Safe on a nil receiver
// (always false).
func (s *Stop) Stopped() bool { return s != nil && s.flag.Load() }

// Raise raises the flag. Raising is idempotent and never reset — a Stop is
// scoped to one run.
func (s *Stop) Raise() { s.flag.Store(true) }

// Watch raises the flag when ctx is done. The returned release must be
// called when the run finishes to detach the watcher (it reports whether
// the watcher was detached before firing, mirroring context.AfterFunc).
func (s *Stop) Watch(ctx context.Context) (release func() bool) {
	return context.AfterFunc(ctx, s.Raise)
}

// noopRelease is the release returned by WatchStop for non-cancellable
// contexts, shared so the fast path allocates nothing.
func noopRelease() bool { return true }

// WatchStop wires a fresh Stop to ctx, skipping all allocation when ctx can
// never be canceled (Done() == nil, e.g. context.Background()): it then
// returns a nil *Stop — permanently unstopped, valid to poll — and a no-op
// release. Engines call this once per run so non-cancellable callers pay
// neither the Stop nor the context.AfterFunc watcher.
func WatchStop(ctx context.Context) (stop *Stop, release func() bool) {
	if ctx.Done() == nil {
		return nil, noopRelease
	}
	stop = &Stop{}
	return stop, stop.Watch(ctx)
}

// Budget is a worker-goroutine pool shared by concurrent callers — the
// serving layer's defense against one huge query starving everything else.
// It holds `total` worker slots; each call Acquires up to `perCall` of them
// (blocking only for the first, taking the rest greedily) and runs its
// engine with that many workers. Because every engine is bitwise
// worker-count independent (the virtual-worker contract, DESIGN.md
// section 3), granting a loaded caller fewer workers degrades its latency
// and nothing else — results, sample counts, and cache keys are untouched.
//
// Acquire never returns 0 and never deadlocks: a caller holding slots is
// running, and running callers finish and Release.
type Budget struct {
	slots   chan struct{}
	perCall int
}

// NewBudget returns a Budget of `total` worker slots with at most `perCall`
// granted per Acquire. Non-positive total defaults to 1; perCall is clamped
// to [1, total].
func NewBudget(total, perCall int) *Budget {
	if total < 1 {
		total = 1
	}
	if perCall < 1 || perCall > total {
		perCall = total
	}
	b := &Budget{slots: make(chan struct{}, total), perCall: perCall}
	for i := 0; i < total; i++ {
		b.slots <- struct{}{}
	}
	return b
}

// PerCall returns the per-Acquire grant cap.
func (b *Budget) PerCall() int { return b.perCall }

// Acquire blocks until at least one worker slot is free, then takes up to
// min(want, perCall) slots without further blocking and returns the number
// taken (always >= 1). want <= 0 asks for the per-call maximum. The caller
// must Release exactly the returned count when its computation finishes.
func (b *Budget) Acquire(want int) int {
	if want <= 0 || want > b.perCall {
		want = b.perCall
	}
	<-b.slots
	granted := 1
	for granted < want {
		select {
		case <-b.slots:
			granted++
		default:
			return granted
		}
	}
	return granted
}

// AcquireCtx is Acquire with a "sched.budget.wait" trace span covering the
// blocking wait, Extra = slots granted. The grant itself is byte-for-byte
// Acquire — the span only observes how long this caller queued for a
// worker slot, which is exactly the signal an operator needs when a shared
// daemon budget is the bottleneck.
func (b *Budget) AcquireCtx(ctx context.Context, want int) int {
	sp := obs.StartLeaf(ctx, "sched.budget.wait")
	granted := b.Acquire(want)
	if sp != nil {
		sp.SetExtra(int64(granted))
		sp.End()
	}
	return granted
}

// Release returns granted slots to the pool.
func (b *Budget) Release(granted int) {
	for i := 0; i < granted; i++ {
		b.slots <- struct{}{}
	}
}

// Epoch manages epoch-stamped mark arrays: a slot is "set" iff it equals the
// current epoch, so resetting all marks is a single counter increment. The
// registered arrays are cleared together when the epoch counter wraps, which
// keeps the stale-stamp collision impossible. A zeroed mark array is "all
// unset" for every epoch Next returns (epochs start at 1).
//
// An Epoch and its arrays belong to one goroutine at a time; engines pool
// them per worker.
type Epoch struct {
	cur   int32
	marks [][]int32
}

// NewEpoch returns an Epoch over the given mark arrays (typically one or two
// arrays sharing a reset lifetime).
func NewEpoch(marks ...[]int32) *Epoch {
	return &Epoch{marks: marks}
}

// Next starts a new epoch and returns its stamp. All registered arrays are
// logically unset; physical clearing happens only on int32 wrap-around.
func (e *Epoch) Next() int32 {
	if e.cur == math.MaxInt32 {
		for _, m := range e.marks {
			clear(m)
		}
		e.cur = 0
	}
	e.cur++
	return e.cur
}
