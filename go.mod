module saphyra

go 1.24
