// Landmark distance sketches: k high-degree landmarks, one MS-BFS pass,
// and per-node distance rows that turn into triangle-inequality bounds on
// any pair distance. The bc sampler uses the lower bound to pre-classify
// sampled pairs as distance>3 without touching the graph, and the upper
// bound to cap DAG truncation depth (DESIGN.md section 11).
package msbfs

import (
	"math/bits"
	"sort"

	"saphyra/internal/graph"
)

// Unreached marks a (node, landmark) entry whose landmark lies in a
// different connected component.
const Unreached uint16 = 0xFFFF

// capped marks a reachable entry whose true distance overflowed uint16;
// such lanes carry no usable bound and are skipped. Depth 0xFFFE is beyond
// any graph this repo serves, so the defensive cap costs nothing real.
const capped uint16 = 0xFFFE

// Sketch holds k landmark BFS distance labels per node, node-major:
// Dist[int(u)*K+j] is the hop distance from node u to Landmarks[j].
// uint16 rows keep the whole sketch at 2k bytes/node — for the default 16
// lanes that is 32 bytes, one cache line per node lookup.
type Sketch struct {
	K         int
	Landmarks []graph.Node
	Dist      []uint16
}

// NewSketch builds a sketch over the CSR adjacency (off length n+1) with k
// landmarks, clamped to [1, min(MaxLanes, n)]. Landmarks are the k
// highest-degree nodes, ties broken by smaller id — a pure function of the
// graph, so every process building a sketch for a view picks the same
// landmarks. One MS-BFS pass fills all rows. The error can only be the
// armed "msbfs.run" fault; callers treat a failed build as "no sketch"
// (the sketch is a pure accelerator, never a correctness input).
func NewSketch(off []int64, nbr []graph.Node, k int) (*Sketch, error) {
	n := len(off) - 1
	if n <= 0 {
		return &Sketch{K: 0}, nil
	}
	if k > MaxLanes {
		k = MaxLanes
	}
	if k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}
	landmarks := topDegree(off, k)

	s := &Sketch{
		K:         k,
		Landmarks: landmarks,
		Dist:      make([]uint16, n*k),
	}
	for i := range s.Dist {
		s.Dist[i] = Unreached
	}
	t := New(n)
	err := t.Run(off, nbr, landmarks, nil, func(u graph.Node, lanes uint64, depth int32) {
		d := capped
		if depth < int32(capped) {
			d = uint16(depth)
		}
		row := s.Dist[int(u)*k : int(u)*k+k]
		for m := lanes; m != 0; m &= m - 1 {
			row[bits.TrailingZeros64(m)] = d
		}
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// topDegree returns the k nodes with the largest CSR degree, ties broken by
// smaller id, in that (degree desc, id asc) order.
func topDegree(off []int64, k int) []graph.Node {
	n := len(off) - 1
	ids := make([]graph.Node, n)
	for i := range ids {
		ids[i] = graph.Node(i)
	}
	sort.Slice(ids, func(a, b int) bool {
		da := off[ids[a]+1] - off[ids[a]]
		db := off[ids[b]+1] - off[ids[b]]
		if da != db {
			return da > db
		}
		return ids[a] < ids[b]
	})
	return ids[:k:k]
}

// FarAtLeast reports whether the sketch proves dist(u, v) >= dmin. A lane
// reaching exactly one endpoint proves the pair disconnected (infinitely
// far); otherwise the best triangle lower bound max_j |d(u,lj) - d(v,lj)|
// decides. False means "unknown", never "near".
func (s *Sketch) FarAtLeast(u, v graph.Node, dmin int32) bool {
	ru := s.Dist[int(u)*s.K : int(u)*s.K+s.K]
	rv := s.Dist[int(v)*s.K : int(v)*s.K+s.K]
	for j := 0; j < s.K; j++ {
		du, dv := ru[j], rv[j]
		if du == Unreached || dv == Unreached {
			if du != dv {
				return true // one side reached, one not: different components
			}
			continue
		}
		if du == capped || dv == capped {
			continue
		}
		diff := int32(du) - int32(dv)
		if diff < 0 {
			diff = -diff
		}
		if diff >= dmin {
			return true
		}
	}
	return false
}

// UpperBound returns the best triangle upper bound min_j d(u,lj) + d(v,lj)
// on dist(u, v), or -1 when no landmark reaches both endpoints (which
// includes every disconnected pair).
func (s *Sketch) UpperBound(u, v graph.Node) int32 {
	ru := s.Dist[int(u)*s.K : int(u)*s.K+s.K]
	rv := s.Dist[int(v)*s.K : int(v)*s.K+s.K]
	best := int32(-1)
	for j := 0; j < s.K; j++ {
		du, dv := ru[j], rv[j]
		if du >= capped || dv >= capped {
			continue
		}
		if ub := int32(du) + int32(dv); best < 0 || ub < best {
			best = ub
		}
	}
	return best
}
