// Package obs is the dependency-free telemetry subsystem: a metrics
// Registry (counters, gauges, wait-free log-bucketed histograms — see
// registry.go) and context-threaded trace spans (this file) that follow a
// request from HTTP admission down through the Ranker, the sampling
// rounds, the exact-phase chunks, and the MS-BFS passes.
//
// The spans are strictly observational. They never touch an RNG stream,
// never reorder work, and never feed back into any computation — the only
// writes are into a per-trace span arena and the process clock reads that
// timestamp them — so instrumented runs are bitwise identical to
// uninstrumented ones (the worker-sweep and serve goldens run with this
// package compiled in). When no trace is active the entire StartSpan path
// is one atomic load and an early return: compute layers can instrument
// their hot loops unconditionally.
package obs

import (
	"context"
	"sync/atomic"
	"time"
)

// maxSpans bounds one trace's span arena. A serving request produces a few
// dozen spans (admission, cache, flight, per-round, per-stream draw, exact
// chunks, MS-BFS passes); 512 leaves an order of magnitude of headroom.
// Claims past the cap are counted in Trace.dropped and return a nil *Span,
// whose methods are no-ops — a trace can never allocate past its arena.
const maxSpans = 512

// spanState values, published with atomic stores so a concurrent Snapshot
// (slow-query logging races with a still-running detached flight) reads a
// consistent record: stateStarted publishes name/parent/start, stateEnded
// additionally publishes end/extra/note.
const (
	stateFree int32 = iota
	stateStarted
	stateEnded
)

// Span is one timed region inside a Trace. Spans live in the trace's
// fixed arena and are claimed with an atomic index bump — starting a span
// allocates nothing. A nil *Span is valid and all its methods are no-ops,
// which is what StartSpan hands out when tracing is disabled or the arena
// is full.
type Span struct {
	t      *Trace
	name   string
	note   string
	start  int64 // ns since trace start
	end    int64 // ns since trace start, valid once state == stateEnded
	extra  int64
	parent int32 // arena index of parent span, -1 for roots
	idx    int32
	state  atomic.Int32
}

// End closes the span. Idempotent: the first End wins, so a handler can
// defensively End a span an inner path already closed. The end timestamp
// (and any SetExtra/SetNote written before End) is published by the state
// store, so a concurrent Snapshot either sees the span still running or
// sees it fully closed — never a half-written record.
func (s *Span) End() {
	if s == nil || s.state.Load() != stateStarted {
		return
	}
	s.end = int64(time.Since(s.t.start))
	s.state.CompareAndSwap(stateStarted, stateEnded)
}

// SetExtra attaches one integer datum (samples drawn, chunks run, levels
// expanded) to the span. Call before End.
func (s *Span) SetExtra(v int64) {
	if s == nil {
		return
	}
	s.extra = v
}

// SetNote attaches a short free-form annotation. Call before End.
func (s *Span) SetNote(n string) {
	if s == nil {
		return
	}
	s.note = n
}

// Trace owns a span arena for one request (or one detached flight serving
// several requests). Traces are pooled and refcounted: the HTTP handler
// holds one reference; a detached cache flight that outlives a timed-out
// leader holds another, so span writes never land in a recycled arena.
type Trace struct {
	id      string
	start   time.Time
	spans   [maxSpans]Span
	n       atomic.Int32 // spans claimed (may exceed maxSpans; excess dropped)
	dropped atomic.Int32
	refs    atomic.Int32
}

// activeTraces gates the whole subsystem: StartSpan loads it once and
// returns immediately when zero, so a process serving no traced requests
// pays one atomic load per instrumented site (pinned by
// BenchmarkStartSpanDisabled).
var activeTraces atomic.Int64

// traceFree recycles span arenas (a Trace is ~40 KiB of span records). A
// plain buffered channel rather than a sync.Pool: pools are emptied by the
// garbage collector, and re-zeroing a 40 KiB arena every couple of GC
// cycles is exactly the kind of tail-latency spike the near-free-telemetry
// contract forbids. The channel's inventory survives GC; overflow beyond
// its capacity is simply garbage.
var traceFree = make(chan *Trace, 64)

// Enabled reports whether any trace is live — compute layers can use it to
// skip building span annotations that are themselves costly.
func Enabled() bool { return activeTraces.Load() != 0 }

// NewTrace starts a trace with one reference held by the caller. Release
// it with Unref; the arena returns to the pool when the last reference
// drops.
func NewTrace(id string) *Trace {
	var t *Trace
	select {
	case t = <-traceFree:
	default:
		t = new(Trace)
	}
	t.id = id
	t.start = time.Now()
	t.n.Store(0)
	t.dropped.Store(0)
	t.refs.Store(1)
	activeTraces.Add(1)
	return t
}

// Ref adds a reference — taken by anything that may outlive the creator,
// such as a detached cache flight.
func (t *Trace) Ref() { t.refs.Add(1) }

// Unref drops a reference; the last drop clears the arena and pools it.
func (t *Trace) Unref() {
	if t.refs.Add(-1) != 0 {
		return
	}
	activeTraces.Add(-1)
	n := int(t.n.Load())
	if n > maxSpans {
		n = maxSpans
	}
	for i := 0; i < n; i++ {
		sp := &t.spans[i]
		sp.state.Store(stateFree)
		sp.name = ""
		sp.note = ""
		sp.t = nil
	}
	t.id = ""
	select {
	case traceFree <- t:
	default: // freelist full; let the GC have it
	}
}

// ID returns the caller-supplied trace id ("" when none).
func (t *Trace) ID() string { return t.id }

// Age returns the time since the trace started.
func (t *Trace) Age() time.Duration { return time.Since(t.start) }

type traceKey struct{}
type spanKey struct{}

// ContextWithTrace attaches t to ctx; subsequent StartSpan calls under ctx
// record into t's arena.
func ContextWithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom returns the trace attached to ctx, or nil. The current span —
// if any — is the cheaper source of truth (one context lookup covers both
// the trace and the parent), so a bare traceKey is only consulted when no
// span has been started yet.
func TraceFrom(ctx context.Context) *Trace {
	if sp, ok := ctx.Value(spanKey{}).(*Span); ok && sp != nil && sp.t != nil {
		return sp.t
	}
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// Transplant copies src's trace (and current span, as the parent for spans
// started under dst) onto dst, and returns the trace so the caller can Ref
// it. This is how a detached cache flight — which deliberately runs under
// context.Background so a leader's deadline cannot poison shared work —
// keeps attributing its spans to the trace of the request that launched
// it. Returns (dst, nil) unchanged when src carries no trace.
func Transplant(dst, src context.Context) (context.Context, *Trace) {
	if sp, ok := src.Value(spanKey{}).(*Span); ok && sp != nil && sp.t != nil {
		// The span carries its trace, so one context value moves both.
		return context.WithValue(dst, spanKey{}, sp), sp.t
	}
	t, _ := src.Value(traceKey{}).(*Trace)
	if t == nil {
		return dst, nil
	}
	return context.WithValue(dst, traceKey{}, t), t
}

// StartSpan opens a span named name under ctx's trace and returns a
// derived context carrying it as the parent for nested spans. When no
// trace is attached (the overwhelmingly common case) it returns (ctx, nil)
// after a single atomic load; the nil span's methods are no-ops, so call
// sites need no conditionals.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if activeTraces.Load() == 0 {
		return ctx, nil
	}
	sp := claim(ctx, name)
	if sp == nil {
		return ctx, nil
	}
	return context.WithValue(ctx, spanKey{}, sp), sp
}

// StartLeaf opens a span that will never have children: same as StartSpan
// but without deriving a context, so the call allocates nothing beyond the
// arena record. For hot leaf sites — admission waits, cache probes,
// per-pass traversal timings — where a derived context would be discarded
// anyway.
func StartLeaf(ctx context.Context, name string) *Span {
	if activeTraces.Load() == 0 {
		return nil
	}
	return claim(ctx, name)
}

// StartSpanIn opens a span in an explicitly supplied trace — the request
// root, where the handler holds the trace it just created and the context
// does not carry it yet. The returned context carries the span (and,
// through it, the trace) for everything nested below; no separate
// ContextWithTrace is needed.
func StartSpanIn(ctx context.Context, t *Trace, name string) (context.Context, *Span) {
	sp := t.claimIn(nil, name)
	if sp == nil {
		return ctx, nil
	}
	return context.WithValue(ctx, spanKey{}, sp), sp
}

// claim finds ctx's trace and claims a span record parented under the
// current span. One context lookup serves both purposes: the current span
// carries its trace, so the separate traceKey is consulted only before the
// first span.
func claim(ctx context.Context, name string) *Span {
	parent, _ := ctx.Value(spanKey{}).(*Span)
	var t *Trace
	if parent != nil && parent.t != nil {
		t = parent.t
	} else {
		parent = nil
		if t, _ = ctx.Value(traceKey{}).(*Trace); t == nil {
			return nil
		}
	}
	return t.claimIn(parent, name)
}

// claimIn claims the next arena slot in t, parented under parent (nil for
// a root).
func (t *Trace) claimIn(parent *Span, name string) *Span {
	idx := t.n.Add(1) - 1
	if idx >= maxSpans {
		t.dropped.Add(1)
		return nil
	}
	sp := &t.spans[idx]
	sp.t = t
	sp.idx = idx
	sp.name = name
	sp.note = ""
	sp.extra = 0
	sp.end = 0
	sp.parent = -1
	if parent != nil {
		sp.parent = parent.idx
	}
	sp.start = int64(time.Since(t.start))
	sp.state.Store(stateStarted)
	return sp
}

// SpanJSON is one node of a rendered span tree, durations in microseconds.
type SpanJSON struct {
	Name       string      `json:"name"`
	StartUs    float64     `json:"start_us"`
	DurUs      float64     `json:"dur_us"`
	Extra      int64       `json:"extra,omitempty"`
	Note       string      `json:"note,omitempty"`
	Unfinished bool        `json:"unfinished,omitempty"`
	Children   []*SpanJSON `json:"children,omitempty"`
}

// TraceJSON is a rendered trace: the span forest in start order plus the
// count of spans dropped past the arena cap.
type TraceJSON struct {
	ID      string      `json:"id,omitempty"`
	Spans   []*SpanJSON `json:"spans"`
	Dropped int32       `json:"dropped,omitempty"`
}

// Snapshot renders the trace's current span forest. Safe to call while
// spans are still being opened and closed (a detached flight may still be
// running): only spans whose start has been published are included, and a
// started-but-unfinished span reports its duration as "so far" with
// Unfinished set.
func (t *Trace) Snapshot() *TraceJSON {
	now := int64(time.Since(t.start))
	n := int(t.n.Load())
	if n > maxSpans {
		n = maxSpans
	}
	nodes := make([]*SpanJSON, n)
	out := &TraceJSON{ID: t.id, Dropped: t.dropped.Load()}
	for i := 0; i < n; i++ {
		sp := &t.spans[i]
		st := sp.state.Load()
		if st == stateFree {
			continue
		}
		node := &SpanJSON{
			Name:    sp.name,
			StartUs: float64(sp.start) / 1e3,
		}
		if st == stateEnded {
			node.DurUs = float64(sp.end-sp.start) / 1e3
			node.Extra = sp.extra
			node.Note = sp.note
		} else {
			node.DurUs = float64(now-sp.start) / 1e3
			node.Unfinished = true
		}
		nodes[i] = node
		if p := sp.parent; p >= 0 && int(p) < n && nodes[p] != nil {
			nodes[p].Children = append(nodes[p].Children, node)
		} else {
			out.Spans = append(out.Spans, node)
		}
	}
	return out
}
