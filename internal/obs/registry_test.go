package obs

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestCounterGaugeRender pins the exact exposition shape for scalar
// families: HELP/TYPE header once per family, one line per series in
// registration order, integers rendered without an exponent or trailing
// zeros.
func TestCounterGaugeRender(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_requests_total", "Requests.", `endpoint="rank"`)
	c.Add(2)
	r.Counter("t_requests_total", "Requests.", `endpoint="topk"`).Inc()
	g := r.Gauge("t_depth", "Depth.", "")
	g.Set(3)
	r.GaugeFunc("t_uptime", "Up.", "", func() float64 { return 1.5 })
	r.CounterFunc("t_hits_total", "Hits.", `kind="hit"`, func() float64 { return 9 })

	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"# HELP t_requests_total Requests.\n# TYPE t_requests_total counter\n",
		"t_requests_total{endpoint=\"rank\"} 2\n",
		"t_requests_total{endpoint=\"topk\"} 1\n",
		"# TYPE t_depth gauge\n",
		"t_depth 3\n",
		"t_uptime 1.5\n",
		"t_hits_total{kind=\"hit\"} 9\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n---\n%s", want, out)
		}
	}
	if c.Value() != 2 {
		t.Errorf("Counter.Value = %d", c.Value())
	}
	if g.Value() != 3 {
		t.Errorf("Gauge.Value = %v", g.Value())
	}
}

// TestRegistryReusesSeries pins that registering the same (name, labels)
// twice returns the same underlying series, and that a kind clash panics
// instead of silently corrupting the family.
func TestRegistryReusesSeries(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("t_total", "h", "")
	b := r.Counter("t_total", "h", "")
	a.Inc()
	if b.Value() != 1 {
		t.Error("re-registration returned a distinct series")
	}
	defer func() {
		if recover() == nil {
			t.Error("kind mismatch did not panic")
		}
	}()
	r.Gauge("t_total", "h", "")
}

// TestHistogramRenderInvariants is the registry-level half of the
// exposition lint: bucket cumulatives are monotone, the +Inf bucket equals
// _count exactly, and _sum matches the observations (seconds families
// divide nanoseconds out).
func TestHistogramRenderInvariants(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t_seconds", "Latency.", "", UnitSeconds)
	var wantSum time.Duration
	for _, d := range []time.Duration{time.Microsecond, 30 * time.Microsecond,
		2 * time.Millisecond, 900 * time.Millisecond, time.Minute} {
		h.Observe(d)
		wantSum += d
	}
	n := r.Histogram("t_fanin", "Fan-in.", "", UnitCount)
	for i := int64(1); i <= 100; i++ {
		n.ObserveN(i)
	}

	var sb strings.Builder
	r.WritePrometheus(&sb)
	for _, fam := range []struct {
		name  string
		count int64
	}{{"t_seconds", 5}, {"t_fanin", 100}} {
		prev := int64(-1)
		var inf, cnt int64 = -1, -1
		for _, line := range strings.Split(sb.String(), "\n") {
			switch {
			case strings.HasPrefix(line, fam.name+"_bucket{le=\"+Inf\"}"):
				inf = mustInt(t, line)
			case strings.HasPrefix(line, fam.name+"_bucket"):
				v := mustInt(t, line)
				if v < prev {
					t.Errorf("%s: bucket cumulative decreased: %s", fam.name, line)
				}
				prev = v
			case strings.HasPrefix(line, fam.name+"_count"):
				cnt = mustInt(t, line)
			}
		}
		if inf != fam.count || cnt != fam.count {
			t.Errorf("%s: +Inf %d, _count %d, want both %d", fam.name, inf, cnt, fam.count)
		}
	}
	wantSumLine := "t_seconds_sum " + fmtVal(wantSum.Seconds()) + "\n"
	if !strings.Contains(sb.String(), wantSumLine) {
		t.Errorf("missing %q", wantSumLine)
	}
	// The quantile companion family is a gauge, not part of the histogram.
	if !strings.Contains(sb.String(), "# TYPE t_seconds_quantile gauge\n") {
		t.Error("quantile companion family missing or mistyped")
	}
	if !strings.Contains(sb.String(), `t_seconds_quantile{quantile="0.99"}`) {
		t.Error("p99 quantile series missing")
	}
}

// TestHistogramEdgesStrictlyIncreasing guards the two coalesced ladders
// the renderer trusts to be sorted.
func TestHistogramEdgesStrictlyIncreasing(t *testing.T) {
	for name, edges := range map[string][]int64{"seconds": secondsEdges, "count": countEdges} {
		for i := 1; i < len(edges); i++ {
			if edges[i] <= edges[i-1] {
				t.Errorf("%s edges not strictly increasing at %d: %d <= %d", name, i, edges[i], edges[i-1])
			}
		}
	}
	if got := secondsEdges[len(secondsEdges)-1]; got != int64(25*time.Second) {
		t.Errorf("last seconds edge = %v, want 25s", time.Duration(got))
	}
}

func mustInt(t *testing.T, line string) int64 {
	t.Helper()
	fields := strings.Fields(line)
	v, err := strconv.ParseInt(fields[len(fields)-1], 10, 64)
	if err != nil {
		t.Fatalf("bad value in %q: %v", line, err)
	}
	return v
}

// TestLabelEscaping pins the runtime-value label helper against the
// Prometheus text exposition escaping rules: backslash, double quote, and
// newline are escaped, everything else passes through byte-for-byte. The
// cluster router feeds replica URLs through this — an unescaped quote in a
// hostile replica name would otherwise corrupt the whole /metricsz body.
func TestLabelEscaping(t *testing.T) {
	cases := []struct{ k, v, want string }{
		{"replica", "http://127.0.0.1:8372", `replica="http://127.0.0.1:8372"`},
		{"path", `C:\views\net.sbcv`, `path="C:\\views\\net.sbcv"`},
		{"name", `say "hi"`, `name="say \"hi\""`},
		{"note", "line1\nline2", `note="line1\nline2"`},
		{"empty", "", `empty=""`},
	}
	for _, c := range cases {
		if got := Label(c.k, c.v); got != c.want {
			t.Errorf("Label(%q, %q) = %s, want %s", c.k, c.v, got, c.want)
		}
	}

	// A labeled series built with Label must render as a parseable line:
	// the lint in serve's metricsz test covers the full body; here just
	// check the rendered line carries the escaped value verbatim.
	r := NewRegistry()
	r.Counter("t_total", "test.", Label("replica", `a"b\c`)).Add(1)
	var sb strings.Builder
	r.WritePrometheus(&sb)
	want := `t_total{replica="a\"b\\c"} 1` + "\n"
	if !strings.Contains(sb.String(), want) {
		t.Errorf("rendered body missing %q:\n%s", want, sb.String())
	}
}
