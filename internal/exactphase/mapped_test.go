package exactphase

import (
	"context"

	"path/filepath"
	"testing"

	"saphyra/internal/bicomp"
	"saphyra/internal/graph"
)

// TestEngineOnMappedView: the engine must produce bitwise-identical
// (lambdaHat, exact) on a view round-tripped through the serialized mmap
// path — it only touches view arrays and the embedded graph, both of which
// round-trip bitwise.
func TestEngineOnMappedView(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"ba", graph.BarabasiAlbert(400, 3, 21)},
		{"road", graph.RoadNetwork(12, 12, 0.1, 5)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g := tc.g
			d := bicomp.Decompose(g)
			o := bicomp.NewOutReach(d)
			view := bicomp.NewBlockCSR(d, o)

			path := filepath.Join(t.TempDir(), "view.sbcv")
			if err := view.WriteFile(path, nil); err != nil {
				t.Fatal(err)
			}
			m, err := bicomp.OpenMapped(path)
			if err != nil {
				t.Fatal(err)
			}
			defer m.Close()

			targets := []graph.Node{1, 7, 33, 120, graph.Node(g.NumNodes() - 1)}
			aIndex := make([]int32, g.NumNodes())
			for i := range aIndex {
				aIndex[i] = -1
			}
			for i, v := range targets {
				aIndex[v] = int32(i)
			}
			blocks := o.BlocksOf(targets)
			wA := o.WeightOfBlocks(blocks)

			wantLambda, wantExact, _ := New(view).Run(context.Background(), targets, aIndex, wA, 4)
			gotLambda, gotExact, _ := New(m.View).Run(context.Background(), targets, aIndex, wA, 4)
			if gotLambda != wantLambda {
				t.Fatalf("lambdaHat %v != %v", gotLambda, wantLambda)
			}
			for i := range wantExact {
				if gotExact[i] != wantExact[i] {
					t.Fatalf("exact[%d] = %v, want %v", i, gotExact[i], wantExact[i])
				}
			}
		})
	}
}
