// Package msbfs implements bit-parallel multi-source BFS: up to 64
// breadth-first traversals advanced together in one level-synchronous pass,
// with one uint64 lane mask per node ("the more the merrier" MS-BFS of Then
// et al., VLDB 2015, specialized to the repo's CSR views).
//
// Lane layout. A batch assigns source i (0 <= i < 64) the lane bit 1<<i —
// the deterministic source->lane assignment the closeness engine's
// determinism contract relies on (DESIGN.md section 11). Three n-word
// arrays carry the whole state: seen[u] holds the lanes whose BFS has
// settled u, visit[u] the lanes whose frontier currently contains u, and
// visitNext[u] the lanes arriving at u in the level being expanded. One
// sequential scan of the frontier's CSR segments per level advances every
// lane at once: a node adjacency is read one time per level regardless of
// how many of the 64 traversals cross it, which is where the >=4x win over
// per-source scalar BFS comes from.
//
// The traversal streams plain CSR arrays (offsets plus a neighbor array) so
// it runs identically over a graph's sorted adjacency or a BlockCSR view's
// block-grouped Nbr array, mmap-backed or not — BFS levels depend only on
// the edge set, never on neighbor order, so every (source, node) distance is
// bitwise-identical to a scalar graph.BFSDistances run.
//
// Cancellation. Run polls a sched.Stop every pollStride scanned edges —
// strictly inside a pass, so time-to-cancel is bounded by the poll stride,
// not by a whole multi-source pass (the engines' chunk checkpoints are far
// coarser). A raised stop aborts with ErrStopped and the workspace is
// re-cleared on the next Run: the all-or-nothing contract is the caller's
// (discard everything on error), mirroring the other engines.
package msbfs

import (
	"context"
	"errors"
	"fmt"

	"saphyra/internal/faultinject"
	"saphyra/internal/graph"
	"saphyra/internal/obs"
	"saphyra/internal/sched"
)

// MaxLanes is the number of sources one pass can advance: the width of the
// per-node lane mask.
const MaxLanes = 64

// pollStride is the number of scanned directed edges between sched.Stop
// polls inside a pass. Coarse enough that the atomic load vanishes against
// the edge scans, fine enough that time-to-cancel is a small fraction of a
// pass on any graph big enough for cancellation to matter.
const pollStride = 1 << 14

// scanDiv sets the settle-mode switch: a level whose frontier holds at
// least n/scanDiv nodes settles by sweeping the visitNext array instead of
// tracking a candidate list edge by edge. Narrow-frontier graphs (road
// grids) never trip it; small-world graphs spend their two or three huge
// middle levels in scan mode, which is where almost all their edges are.
const scanDiv = 16

// ErrStopped is returned by Run when the wired sched.Stop was raised before
// the pass completed. Callers under a context map it to their typed
// cancellation error with the context's cause.
var ErrStopped = errors.New("msbfs: traversal stopped")

// Traversal is a reusable multi-source BFS workspace for graphs of a fixed
// node count. It is owned by one goroutine at a time; engines pool one per
// worker stream. The zero allocation steady state holds: Run allocates
// nothing.
type Traversal struct {
	n         int
	seen      []uint64
	visit     []uint64
	visitNext []uint64
	// frontier/next are capped at n nodes each, so the appends below never
	// grow them after New.
	frontier []graph.Node
	next     []graph.Node

	// Levels and ScanLevels describe the most recent Run for telemetry:
	// BFS levels expanded past the sources, and how many of them settled
	// in scan mode (full visitNext sweep) rather than list mode. Pure
	// observation — they feed trace spans, never the traversal itself.
	Levels     int
	ScanLevels int
}

// New returns a Traversal workspace for graphs of n nodes.
func New(n int) *Traversal {
	return &Traversal{
		n:         n,
		seen:      make([]uint64, n),
		visit:     make([]uint64, n),
		visitNext: make([]uint64, n),
		frontier:  make([]graph.Node, 0, n),
		next:      make([]graph.Node, 0, n),
	}
}

// Run advances one BFS per source, all together, over the CSR adjacency
// (off has length n+1; node u's neighbors are nbr[off[u]:off[u+1]]).
// Sources may repeat; a repeated source's lanes travel together. onSettle is
// invoked exactly once per (node, lane) pair — grouped as one call per node
// per level with the mask of lanes settling there — in deterministic order:
// level by level, discovery order within a level, which itself is a pure
// function of the adjacency arrays. depth is the BFS distance from the
// lane's source. stop may be nil (never stops).
//
// Run returns nil when every lane exhausted its component, ErrStopped when
// the stop was raised mid-pass, or the armed fault of the "msbfs.run"
// failure point. On error the settle callbacks already issued stand; the
// caller must discard the whole computation (all-or-nothing).
func (t *Traversal) Run(off []int64, nbr []graph.Node, sources []graph.Node, stop *sched.Stop, onSettle func(u graph.Node, lanes uint64, depth int32)) error {
	if len(sources) == 0 {
		return nil
	}
	if len(sources) > MaxLanes {
		return fmt.Errorf("msbfs: %d sources exceed the %d-lane mask", len(sources), MaxLanes)
	}
	if len(off) != t.n+1 {
		return fmt.Errorf("msbfs: offsets length %d, want n+1 = %d", len(off), t.n+1)
	}
	// A previous pass may have aborted mid-level: re-clear everything rather
	// than trusting clean-on-exit.
	clear(t.seen)
	clear(t.visit)
	clear(t.visitNext)
	t.Levels, t.ScanLevels = 0, 0

	fr, nx := t.frontier[:0], t.next[:0]
	for i, s := range sources {
		bit := uint64(1) << uint(i)
		if t.visit[s] == 0 {
			fr = append(fr, s)
		}
		t.visit[s] |= bit
		t.seen[s] |= bit
	}
	for _, s := range fr {
		onSettle(s, t.visit[s], 0)
	}
	if stop.Stopped() {
		return ErrStopped
	}

	edges := 0
	for depth := int32(1); len(fr) > 0; depth++ {
		// Chaos hook: one gate check per level; lets the fault harness fail
		// or delay a traversal mid-pass without reaching into the loop.
		if err := faultinject.Fire("msbfs.run"); err != nil {
			return err
		}
		// The expansion ORs each frontier mask into visitNext[w] unmasked —
		// one load-or-store per edge, no branches on seen — and the
		// already-settled lanes are subtracted once per node at settle time.
		// Two settle shapes, picked per level: narrow frontiers track the
		// candidate list explicitly (a node enters nx when its visitNext
		// word first goes nonzero); wide frontiers skip the list work in the
		// inner loop entirely and find candidates with one sequential sweep
		// of visitNext, which at >= n/scanDiv frontier nodes is cheaper than
		// the per-edge bookkeeping it replaces.
		scan := len(fr) >= t.n/scanDiv
		t.Levels++
		if scan {
			t.ScanLevels++
			for _, u := range fr {
				mu := t.visit[u]
				lo, hi := off[u], off[u+1]
				edges += int(hi - lo)
				if edges >= pollStride {
					edges = 0
					if stop.Stopped() {
						return ErrStopped
					}
				}
				for _, w := range nbr[lo:hi] {
					t.visitNext[w] |= mu
				}
			}
		} else {
			for _, u := range fr {
				mu := t.visit[u]
				lo, hi := off[u], off[u+1]
				edges += int(hi - lo)
				if edges >= pollStride {
					edges = 0
					if stop.Stopped() {
						return ErrStopped
					}
				}
				for _, w := range nbr[lo:hi] {
					if t.visitNext[w] == 0 {
						nx = append(nx, w)
					}
					t.visitNext[w] |= mu
				}
			}
		}
		// Close the level: retire the old frontier's visit masks first — a
		// node can gain further lanes at the next depth and re-enter the
		// frontier — then settle the genuinely new arrivals. A candidate
		// whose mask is fully seen (reached only by settled lanes this
		// level) just has its visitNext word cleared.
		for _, u := range fr {
			t.visit[u] = 0
		}
		nx2 := nx[:0]
		if scan {
			for w, vn := range t.visitNext {
				if vn == 0 {
					continue
				}
				t.visitNext[w] = 0
				if m := vn &^ t.seen[w]; m != 0 {
					t.seen[w] |= m
					t.visit[w] = m
					nx2 = append(nx2, graph.Node(w))
					onSettle(graph.Node(w), m, depth)
				}
			}
		} else {
			for _, w := range nx {
				vn := t.visitNext[w]
				t.visitNext[w] = 0
				if m := vn &^ t.seen[w]; m != 0 {
					t.seen[w] |= m
					t.visit[w] = m
					nx2 = append(nx2, w)
					onSettle(w, m, depth)
				}
			}
		}
		fr, nx = nx2, fr
	}
	return nil
}

// RunCtx is Run wrapped in a "msbfs.pass" trace span: Extra = levels
// expanded, note = lane count and scan-mode level split. The traversal
// itself is byte-for-byte Run — ctx is consulted only for the trace, never
// for cancellation (that remains stop's job, preserving the engines'
// all-or-nothing contract).
func (t *Traversal) RunCtx(ctx context.Context, off []int64, nbr []graph.Node, sources []graph.Node, stop *sched.Stop, onSettle func(u graph.Node, lanes uint64, depth int32)) error {
	sp := obs.StartLeaf(ctx, "msbfs.pass")
	err := t.Run(off, nbr, sources, stop, onSettle)
	if sp != nil {
		sp.SetExtra(int64(t.Levels))
		sp.SetNote(fmt.Sprintf("lanes=%d scan_levels=%d/%d", len(sources), t.ScanLevels, t.Levels))
		sp.End()
	}
	return err
}
