// Package saphyra is a Go implementation of SaPHyRa, the sample-space
// partitioning framework for ranking nodes in large networks by centrality
// (Thai, Thai, Vu, Dinh — ICDE 2022), together with everything its
// evaluation depends on: exact Brandes betweenness, the ABRA and KADABRA
// sampling baselines, k-path and closeness estimators, rank-quality
// metrics, and synthetic network generators.
//
// The headline operation is ranking a subset of nodes by betweenness
// centrality with an (epsilon, delta) additive-error guarantee:
//
//	g, _, err := saphyra.LoadEdgeList("graph.txt")
//	res, err := saphyra.RankSubset(g, []saphyra.Node{5, 17, 99}, saphyra.Options{
//		Epsilon: 0.05,
//		Delta:   0.01,
//	})
//	for i, v := range res.Nodes {
//		fmt.Println(res.Rank[i], v, res.Scores[i])
//	}
//
// SaPHyRa splits the shortest-path sample space into an exact subspace (all
// 2-hop paths through target nodes, computed exactly) and an approximate
// subspace (sampled with bi-component multistage sampling, adaptive
// empirical Bernstein stopping, and a personalized VC-dimension sample
// ceiling). The combination yields both the error guarantee and high rank
// quality for low-centrality nodes — in particular, no target with positive
// betweenness is ever estimated as zero.
package saphyra

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"saphyra/internal/baselines"
	"saphyra/internal/bicomp"
	"saphyra/internal/closeness"
	"saphyra/internal/core"
	"saphyra/internal/exact"
	"saphyra/internal/graph"
	"saphyra/internal/kpath"
	"saphyra/internal/params"
	"saphyra/internal/rank"
)

// Node is a graph vertex identifier in [0, NumNodes).
type Node = graph.Node

// Graph is an immutable undirected, unweighted graph in CSR form.
type Graph = graph.Graph

// Builder accumulates edges and produces a Graph.
type Builder = graph.Builder

// NewBuilder returns a Builder for a graph with at least n nodes.
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// LoadEdgeList reads a whitespace-separated edge-list file ('#'/'%' comments
// allowed). Sparse node ids are compacted; the returned slice maps the new
// dense id back to the original.
func LoadEdgeList(path string) (*Graph, []int64, error) { return graph.LoadEdgeList(path) }

// ReadEdgeList parses an edge list from a reader. See LoadEdgeList.
func ReadEdgeList(r io.Reader) (*Graph, []int64, error) { return graph.ReadEdgeList(r) }

// Method selects the estimation algorithm used by RankSubset/RankAll.
type Method int

// Available methods. MethodSaPHyRa is the paper's contribution; the two
// baselines are provided for comparison and always estimate the whole
// network regardless of the subset.
const (
	MethodSaPHyRa Method = iota
	MethodABRA
	MethodKADABRA
)

// String returns the method name.
func (m Method) String() string {
	switch m {
	case MethodSaPHyRa:
		return "SaPHyRa"
	case MethodABRA:
		return "ABRA"
	case MethodKADABRA:
		return "KADABRA"
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// Options configures ranking. The zero value means epsilon 0.05, delta
// 0.01, all CPUs, seed 0, SaPHyRa method.
type Options struct {
	Epsilon float64 // additive error guarantee on centrality values
	Delta   float64 // failure probability
	Workers int     // parallel sampling workers; <= 0 means GOMAXPROCS
	Seed    int64   // RNG seed; fixed seed + workers => deterministic output
	Method  Method
}

// Canonical returns the options with every default resolved and every
// result-irrelevant field cleared: a zero Epsilon/Delta becomes its
// documented default (0.05 / 0.01) and Workers is zeroed — the worker count
// multiplexes fixed virtual sampler streams and never affects output bits
// (DESIGN.md section 3). Two Options values with equal Canonical forms
// therefore produce bitwise-identical results on the same graph or view,
// which is what makes (Canonical options, target-set hash, view generation)
// a sound cache key for a serving layer; see internal/serve.
func (o Options) Canonical() Options {
	if o.Epsilon == 0 {
		o.Epsilon = 0.05
	}
	if o.Delta == 0 {
		o.Delta = 0.01
	}
	o.Workers = 0
	return o
}

// TargetSetHash returns a stable 256-bit digest of the canonicalized target
// set: the nodes are de-duplicated and sorted (exactly the normalization
// RankSubset applies), then hashed as little-endian 32-bit values. The
// digest is a pure function of the set — independent of input order,
// duplicates, machine, and process — so it identifies "the same query" in
// persistent or cross-process result caches.
func TargetSetHash(targets []Node) [sha256.Size]byte {
	nodes := graph.DedupSorted(targets)
	buf := make([]byte, 4*len(nodes))
	for i, v := range nodes {
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(v))
	}
	return sha256.Sum256(buf)
}

// Result is a centrality ranking of a target node set.
type Result struct {
	// Nodes is the sorted, de-duplicated target set.
	Nodes []Node
	// Scores[i] is the estimated centrality of Nodes[i] (betweenness, Eq 3
	// normalization: values in [0,1]).
	Scores []float64
	// Rank[i] is the rank (1 = most central) of Nodes[i] within the target
	// set, ties broken by node id as in the paper.
	Rank []int
	// Samples is the number of samples drawn; Duration the wall time of the
	// estimation (excluding graph loading).
	Samples  int64
	Duration time.Duration
}

func buildResult(nodes []Node, scores []float64, samples int64, dur time.Duration) *Result {
	ids := make([]int32, len(nodes))
	for i, v := range nodes {
		ids[i] = int32(v)
	}
	return &Result{
		Nodes:    nodes,
		Scores:   scores,
		Rank:     rank.Ranks(scores, ids),
		Samples:  samples,
		Duration: dur,
	}
}

// RankSubset estimates and ranks the betweenness centrality of the target
// nodes with the configured method.
func RankSubset(g *Graph, targets []Node, opt Options) (*Result, error) {
	start := time.Now()
	if err := params.CheckTargets(targets, g.NumNodes()); err != nil {
		return nil, fmt.Errorf("saphyra: %w", err)
	}
	switch opt.Method {
	case MethodSaPHyRa:
		res, err := core.EstimateBC(g, targets, core.BCOptions{
			Epsilon: opt.Epsilon, Delta: opt.Delta,
			Workers: opt.Workers, Seed: opt.Seed,
		})
		if err != nil {
			return nil, err
		}
		var samples int64
		if res.Est != nil {
			samples = res.Est.Samples
		}
		return buildResult(res.Nodes, res.BC, samples, time.Since(start)), nil
	case MethodABRA, MethodKADABRA:
		bopt := baselines.Options{
			Epsilon: opt.Epsilon, Delta: opt.Delta,
			Workers: opt.Workers, Seed: opt.Seed,
		}
		var res *baselines.Result
		var err error
		if opt.Method == MethodABRA {
			res, err = baselines.ABRA(g, bopt)
		} else {
			res, err = baselines.KADABRA(g, bopt)
		}
		if err != nil {
			return nil, err
		}
		nodes := graph.DedupSorted(targets)
		scores := make([]float64, len(nodes))
		for i, v := range nodes {
			scores[i] = res.BC[v]
		}
		return buildResult(nodes, scores, res.Samples, time.Since(start)), nil
	}
	return nil, fmt.Errorf("saphyra: unknown method %v", opt.Method)
}

// RankAll ranks every node of the graph (SaPHyRa_bc-full when the method is
// MethodSaPHyRa).
func RankAll(g *Graph, opt Options) (*Result, error) {
	all := make([]Node, g.NumNodes())
	for i := range all {
		all[i] = Node(i)
	}
	return RankSubset(g, all, opt)
}

// Preprocessed caches the target-independent SaPHyRa preprocessing —
// bi-component decomposition, out-reach tables, the block-annotated
// adjacency view, and the exact 2-hop engine with its pooled per-worker
// scratch — so that many subsets can be ranked on one graph cheaply: after
// the first call, the exact phase of each RankSubset runs without block or
// out-reach lookups and without allocating.
type Preprocessed struct {
	prep *core.BCPreprocessed
}

// Preprocess decomposes the graph once for repeated RankSubset calls.
func Preprocess(g *Graph) *Preprocessed {
	return &Preprocessed{prep: core.PreprocessBC(g)}
}

// RankSubset ranks a target set using the cached preprocessing (always the
// SaPHyRa method).
func (p *Preprocessed) RankSubset(targets []Node, opt Options) (*Result, error) {
	start := time.Now()
	res, err := p.prep.EstimateBC(targets, core.BCOptions{
		Epsilon: opt.Epsilon, Delta: opt.Delta,
		Workers: opt.Workers, Seed: opt.Seed,
	})
	if err != nil {
		return nil, err
	}
	var samples int64
	if res.Est != nil {
		samples = res.Est.Samples
	}
	return buildResult(res.Nodes, res.BC, samples, time.Since(start)), nil
}

// View is the shared graph-view layer (DESIGN.md section 7): the
// block-annotated adjacency arrays that power the exact 2-hop phase, the
// sampler fast paths, and the k-path and closeness estimators. A View is
// built once per graph (BuildView), can be serialized to a versioned binary
// file (WriteFile), and reopened zero-copy by any number of serving
// processes (OpenView, mmap-backed where the platform supports it — the
// kernel then shares one physical copy of the arrays across all of them).
// Every engine produces bitwise-identical results on a reopened view.
type View struct {
	v   *bicomp.BlockCSR
	ids []int64        // dense id -> original id; nil means identity
	m   *bicomp.Mapped // non-nil when opened from a file
}

// BuildView runs the target-independent preprocessing (bi-component
// decomposition, out-reach tables, block-annotated CSR) and returns the
// resulting view — the build-once half of the build-once/serve-many flow.
// ids is the optional dense-id -> original-id map (as returned by
// LoadEdgeList); it is embedded on WriteFile so serving processes can keep
// reporting the original id space. Pass nil when node ids are already
// dense.
func BuildView(g *Graph, ids []int64) *View {
	d := bicomp.Decompose(g)
	return &View{v: bicomp.NewBlockCSR(d, bicomp.NewOutReach(d)), ids: ids}
}

// WriteFile serializes the view (versioned binary format, native byte
// order; see DESIGN.md section 7), embedding the original-id map when the
// view carries one.
func (v *View) WriteFile(path string) error { return v.v.WriteFile(path, v.ids) }

// OpenView opens a view file written by WriteFile for zero-copy serving.
// The returned view (and anything ranked through it) is valid until Close.
func OpenView(path string) (*View, error) {
	m, err := bicomp.OpenMapped(path)
	if err != nil {
		return nil, err
	}
	return &View{v: m.View, ids: m.IDs, m: m}, nil
}

// IDs returns the view's dense-id -> original-id map, or nil when node ids
// are the original ids. For a mapped view the slice aliases the mapped
// file.
func (v *View) IDs() []int64 { return v.ids }

// Close releases the file mapping of a view opened with OpenView (a no-op
// for views built in memory). The view must not be used afterwards.
func (v *View) Close() error {
	v.ids = nil
	if v.m != nil {
		return v.m.Close()
	}
	return nil
}

// Graph returns the view's embedded graph. For a mapped view its CSR arrays
// alias the mapped file.
func (v *View) Graph() *Graph { return v.v.G }

// Preprocess adapts the view for repeated betweenness ranking — the
// counterpart of Preprocess(g) that shares the view's arrays instead of
// rebuilding them (see core.PreprocessBCFromView for what is recomputed).
func (v *View) Preprocess() *Preprocessed {
	return &Preprocessed{prep: core.PreprocessBCFromView(v.v)}
}

// RankKPath estimates and ranks k-path centrality from the view.
func (v *View) RankKPath(targets []Node, k int, opt Options) (*Result, error) {
	start := time.Now()
	res, err := kpath.EstimateView(v.v, targets, kpath.Options{
		K: k, Epsilon: opt.Epsilon, Delta: opt.Delta,
		Workers: opt.Workers, Seed: opt.Seed,
	})
	if err != nil {
		return nil, err
	}
	return buildResult(res.Nodes, res.KPath, res.Est.Samples, time.Since(start)), nil
}

// RankCloseness estimates and ranks harmonic closeness from the view (the
// BFS pricing streams the view's grouped adjacency arrays).
func (v *View) RankCloseness(targets []Node, opt Options) (*Result, error) {
	start := time.Now()
	res, err := closeness.EstimateView(v.v, targets, closeness.Options{
		Epsilon: opt.Epsilon, Delta: opt.Delta,
		Workers: opt.Workers, Seed: opt.Seed,
	})
	if err != nil {
		return nil, err
	}
	return buildResult(res.Nodes, res.Closeness, res.Samples, time.Since(start)), nil
}

// ExactBC computes exact betweenness centrality for every node with
// parallel Brandes (Eq 3 normalization). O(n*m): ground truth for small and
// medium graphs.
func ExactBC(g *Graph, workers int) []float64 { return exact.BCParallel(g, workers) }

// Spearman returns Spearman's rank correlation between truth and estimate
// (Eq 1), ties broken by the supplied ids as in the paper.
func Spearman(truth, estimate []float64, ids []int32) float64 {
	return rank.Spearman(truth, estimate, ids)
}

// KendallTau returns Kendall's rank correlation with the same conventions.
func KendallTau(truth, estimate []float64, ids []int32) float64 {
	return rank.KendallTau(truth, estimate, ids)
}

// RankKPath estimates k-path centrality (the paper's Section II-A example)
// for the target nodes and ranks them.
func RankKPath(g *Graph, targets []Node, k int, opt Options) (*Result, error) {
	start := time.Now()
	res, err := kpath.Estimate(g, targets, kpath.Options{
		K: k, Epsilon: opt.Epsilon, Delta: opt.Delta,
		Workers: opt.Workers, Seed: opt.Seed,
	})
	if err != nil {
		return nil, err
	}
	return buildResult(res.Nodes, res.KPath, res.Est.Samples, time.Since(start)), nil
}

// RankCloseness estimates harmonic closeness centrality (the paper's stated
// future-work extension) for the target nodes and ranks them.
func RankCloseness(g *Graph, targets []Node, opt Options) (*Result, error) {
	start := time.Now()
	res, err := closeness.Estimate(g, targets, closeness.Options{
		Epsilon: opt.Epsilon, Delta: opt.Delta,
		Workers: opt.Workers, Seed: opt.Seed,
	})
	if err != nil {
		return nil, err
	}
	return buildResult(res.Nodes, res.Closeness, res.Samples, time.Since(start)), nil
}

// Generate exposes the deterministic synthetic generators used by the
// examples and experiments.
var Generate = struct {
	BarabasiAlbert  func(n, k int, seed int64) *Graph
	PowerLawCluster func(n, k int, p float64, seed int64) *Graph
	ErdosRenyi      func(n int, m int64, seed int64) *Graph
	WattsStrogatz   func(n, k int, beta float64, seed int64) *Graph
	RoadNetwork     func(rows, cols int, drop float64, seed int64) *Graph
	Grid2D          func(rows, cols int) *Graph
	RandomTree      func(n int, seed int64) *Graph
}{
	BarabasiAlbert:  graph.BarabasiAlbert,
	PowerLawCluster: graph.PowerLawCluster,
	ErdosRenyi:      graph.ErdosRenyi,
	WattsStrogatz:   graph.WattsStrogatz,
	RoadNetwork:     graph.RoadNetwork,
	Grid2D:          graph.Grid2D,
	RandomTree:      graph.RandomTree,
}
