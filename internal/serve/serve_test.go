package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"

	"saphyra"
	"saphyra/internal/graph"
)

// writeTestView builds a view over g with a non-identity original-id space
// (original = dense*3 + 1) and persists it.
func writeTestView(t testing.TB, g *graph.Graph) (path string, ids []int64) {
	t.Helper()
	ids = make([]int64, g.NumNodes())
	for i := range ids {
		ids[i] = int64(i)*3 + 1
	}
	path = filepath.Join(t.TempDir(), "serve.sbcv")
	if err := saphyra.BuildView(g, ids).WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path, ids
}

func newTestServer(t testing.TB, g *graph.Graph, cfg Config) (*Server, []int64) {
	t.Helper()
	path, ids := writeTestView(t, g)
	s, err := New(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, ids
}

func postRank(t testing.TB, h http.Handler, req RankRequest) (*RankResponse, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("POST", "/v1/rank", bytes.NewReader(body)))
	if w.Code != http.StatusOK {
		return nil, w.Code
	}
	var resp RankResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad response body: %v", err)
	}
	return &resp, w.Code
}

// TestServeGoldenBitwise is the acceptance gate: for all three methods, the
// daemon's scores for a persisted view must be bitwise-identical to what
// `cmd/saphyra -view` computes — i.e. to the library serving path
// (OpenView + Preprocess/RankKPath/RankCloseness) on the same file. JSON
// float64 encoding is exact (shortest round-trip form), so the comparison
// is on the decoded bits.
func TestServeGoldenBitwise(t *testing.T) {
	g := saphyra.Generate.BarabasiAlbert(800, 3, 12)
	s, ids := newTestServer(t, g, Config{DisablePrecompute: true})

	// Original-id targets; the library path translates them exactly like
	// cmd/saphyra does.
	rawTargets := []int64{ids[7], ids[100], ids[500], ids[777]}
	dense := []saphyra.Node{7, 100, 500, 777}
	opt := saphyra.Options{Epsilon: 0.05, Delta: 0.05, Seed: 5, Workers: 4}

	view, err := saphyra.OpenView(s.viewPath)
	if err != nil {
		t.Fatal(err)
	}
	defer view.Close()

	want := map[string]*saphyra.Result{}
	if want[MethodSaPHyRa], err = view.Preprocess().RankSubset(dense, opt); err != nil {
		t.Fatal(err)
	}
	if want[MethodKPath], err = view.RankKPath(dense, 4, opt); err != nil {
		t.Fatal(err)
	}
	if want[MethodCloseness], err = view.RankCloseness(dense, opt); err != nil {
		t.Fatal(err)
	}

	for _, method := range methods {
		resp, code := postRank(t, s.Handler(), RankRequest{
			Method: method, Targets: rawTargets,
			Eps: opt.Epsilon, Delta: opt.Delta, Seed: opt.Seed, K: 4,
		})
		if code != http.StatusOK {
			t.Fatalf("%s: status %d", method, code)
		}
		ref := want[method]
		if resp.Samples != ref.Samples {
			t.Errorf("%s: samples %d, library %d", method, resp.Samples, ref.Samples)
		}
		if len(resp.Nodes) != len(ref.Nodes) {
			t.Fatalf("%s: %d nodes, library %d", method, len(resp.Nodes), len(ref.Nodes))
		}
		for i := range ref.Nodes {
			if resp.Nodes[i] != ids[ref.Nodes[i]] {
				t.Errorf("%s: node[%d] = %d, library %d", method, i, resp.Nodes[i], ids[ref.Nodes[i]])
			}
			if resp.Scores[i] != ref.Scores[i] {
				t.Errorf("%s: score[%d] = %v, library %v — not bitwise-identical", method, i, resp.Scores[i], ref.Scores[i])
			}
			if resp.Ranks[i] != ref.Rank[i] {
				t.Errorf("%s: rank[%d] = %d, library %d", method, i, resp.Ranks[i], ref.Rank[i])
			}
		}
	}
}

// TestServeCachedFlagAndDeterminism: the second identical request is an LRU
// hit with an identical body; a request differing only in worker-irrelevant
// ways hits the same entry.
func TestServeCachedFlagAndDeterminism(t *testing.T) {
	g := saphyra.Generate.BarabasiAlbert(300, 3, 9)
	s, ids := newTestServer(t, g, Config{DisablePrecompute: true})
	req := RankRequest{Method: MethodSaPHyRa, Targets: []int64{ids[3], ids[30], ids[200]}, Eps: 0.1, Delta: 0.05, Seed: 2}

	first, code := postRank(t, s.Handler(), req)
	if code != http.StatusOK {
		t.Fatal("first request failed")
	}
	if first.Cached {
		t.Error("first request reported cached")
	}
	second, _ := postRank(t, s.Handler(), req)
	if !second.Cached {
		t.Error("second identical request missed the cache")
	}
	// Duplicated + reordered targets canonicalize to the same set → same entry.
	shuffled := req
	shuffled.Targets = []int64{ids[200], ids[3], ids[30], ids[3]}
	third, _ := postRank(t, s.Handler(), shuffled)
	if !third.Cached {
		t.Error("reordered target set missed the cache")
	}
	for i := range first.Scores {
		if first.Scores[i] != second.Scores[i] || first.Scores[i] != third.Scores[i] {
			t.Fatal("cached responses differ from the computed one")
		}
	}
	if hits := s.cache.hits.Load(); hits != 2 {
		t.Errorf("cache hits = %d, want 2", hits)
	}
}

// TestServeTopK: ordered prefix of the full ranking, warm after precompute,
// consistent with a direct full rank-all.
func TestServeTopK(t *testing.T) {
	g := saphyra.Generate.BarabasiAlbert(250, 3, 4)
	s, ids := newTestServer(t, g, Config{})

	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest("GET", "/v1/topk?method=closeness&k=10", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("topk status %d: %s", w.Code, w.Body.String())
	}
	var resp RankResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Cached {
		t.Error("topk was not precomputed")
	}
	if len(resp.Nodes) != 10 {
		t.Fatalf("topk returned %d rows, want 10", len(resp.Nodes))
	}
	for i, r := range resp.Ranks {
		if r != i+1 {
			t.Fatalf("topk rank[%d] = %d, want %d (must be ordered)", i, r, i+1)
		}
	}

	// Cross-check the head against the library's full ranking.
	view, err := saphyra.OpenView(s.viewPath)
	if err != nil {
		t.Fatal(err)
	}
	defer view.Close()
	all := make([]saphyra.Node, g.NumNodes())
	for i := range all {
		all[i] = saphyra.Node(i)
	}
	ref, err := view.RankCloseness(all, saphyra.Options{Epsilon: 0.05, Delta: 0.01, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	byRank := make(map[int]int, len(ref.Rank))
	for i, r := range ref.Rank {
		byRank[r] = i
	}
	for i := 0; i < 10; i++ {
		j := byRank[i+1]
		if resp.Nodes[i] != ids[ref.Nodes[j]] || resp.Scores[i] != ref.Scores[j] {
			t.Fatalf("topk row %d = (%d, %v), library (%d, %v)",
				i, resp.Nodes[i], resp.Scores[i], ids[ref.Nodes[j]], ref.Scores[j])
		}
	}

	// k larger than n clamps.
	w = httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest("GET", "/v1/topk?method=closeness&k=100000", nil))
	json.Unmarshal(w.Body.Bytes(), &resp)
	if len(resp.Nodes) != g.NumNodes() {
		t.Fatalf("oversized k returned %d rows, want n = %d", len(resp.Nodes), g.NumNodes())
	}
}

// TestServeErrorClassification: caller faults are 400 with the offending
// field in the body, unknown routes 404, and the health/status endpoints
// report coherent state.
func TestServeErrorClassification(t *testing.T) {
	g := saphyra.Generate.BarabasiAlbert(200, 2, 3)
	s, ids := newTestServer(t, g, Config{DisablePrecompute: true})
	h := s.Handler()

	post := func(body string) *httptest.ResponseRecorder {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest("POST", "/v1/rank", bytes.NewReader([]byte(body))))
		return w
	}
	for name, tc := range map[string]struct {
		body string
		want string
	}{
		"bad json":       {"{", "body"},
		"unknown method": {`{"method":"pagerank","targets":[1]}`, "method"},
		"empty targets":  {`{"method":"saphyra","targets":[]}`, "targets"},
		"alien target":   {`{"method":"saphyra","targets":[2]}`, "targets"}, // ids are 3k+1: 2 not present
		"bad eps":        {`{"method":"saphyra","targets":[1],"eps":1.5}`, "epsilon"},
		"bad delta":      {`{"method":"saphyra","targets":[1],"delta":-1}`, "delta"},
		"bad k":          {`{"method":"kpath","targets":[1],"k":-2}`, "k"},
	} {
		w := post(tc.body)
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", name, w.Code, w.Body.String())
		}
		if !bytes.Contains(w.Body.Bytes(), []byte(tc.want)) {
			t.Errorf("%s: body %q does not name %q", name, w.Body.String(), tc.want)
		}
	}
	// A valid target in the original id space works (id 1 = dense 0).
	if _, code := postRank(t, h, RankRequest{Method: MethodSaPHyRa, Targets: []int64{ids[0]}, Eps: 0.3, Delta: 0.1}); code != http.StatusOK {
		t.Errorf("valid original-id target rejected: %d", code)
	}

	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/v1/rank", nil)) // wrong verb
	if w.Code != http.StatusMethodNotAllowed && w.Code != http.StatusNotFound {
		t.Errorf("GET /v1/rank = %d", w.Code)
	}

	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/healthz", nil))
	if w.Code != http.StatusOK {
		t.Errorf("healthz = %d", w.Code)
	}

	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/statusz", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("statusz = %d", w.Code)
	}
	var st Statusz
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Generation != 1 || st.Nodes != g.NumNodes() || st.Requests.BadRequest < 7 {
		t.Errorf("statusz = %+v", st)
	}
}

// TestServeReloadSwapsGeneration: a reload bumps the generation, keeps
// serving bitwise-identical results for the unchanged file, and purges
// old-generation cache entries.
func TestServeReloadSwapsGeneration(t *testing.T) {
	g := saphyra.Generate.BarabasiAlbert(300, 3, 6)
	s, ids := newTestServer(t, g, Config{DisablePrecompute: true})
	req := RankRequest{Method: MethodCloseness, Targets: []int64{ids[1], ids[99]}, Eps: 0.1, Delta: 0.05, Seed: 3}

	before, _ := postRank(t, s.Handler(), req)
	if before.Generation != 1 {
		t.Fatalf("generation = %d, want 1", before.Generation)
	}

	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest("POST", "/admin/reload", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("reload status %d: %s", w.Code, w.Body.String())
	}
	if s.Generation() != 2 {
		t.Fatalf("generation after reload = %d, want 2", s.Generation())
	}

	after, _ := postRank(t, s.Handler(), req)
	if after.Generation != 2 {
		t.Fatalf("post-reload response generation = %d, want 2", after.Generation)
	}
	if after.Cached {
		t.Error("old-generation cache entry served after reload (keys must carry the generation)")
	}
	for i := range before.Scores {
		if before.Scores[i] != after.Scores[i] {
			t.Fatal("same file, different bits across generations")
		}
	}
	if n := s.cache.len(); n != 1 {
		t.Errorf("cache holds %d entries after purge, want 1", n)
	}
}

// TestAdmissionDeterministic drives the admission state machine directly:
// one slot, one queue position, third caller shed.
func TestAdmissionDeterministic(t *testing.T) {
	a := newAdmission(1, 1, 0)
	release, _, err := a.enter(context.Background(), false)
	if err != nil {
		t.Fatal(err)
	}
	if a.inFlight() != 1 {
		t.Fatalf("inFlight = %d, want 1", a.inFlight())
	}
	waiterDone := make(chan error, 1)
	go func() {
		r, _, err := a.enter(context.Background(), false)
		if err == nil {
			defer r()
		}
		waiterDone <- err
	}()
	for a.waitingNow() != 1 {
		runtime.Gosched() // until the waiter is queued
	}
	if _, _, err := a.enter(context.Background(), false); err != errOverloaded {
		t.Fatalf("third caller got %v, want overload shed", err)
	}
	release()
	if err := <-waiterDone; err != nil {
		t.Fatalf("queued caller got %v", err)
	}
	if a.inFlight() != 0 || a.waitingNow() != 0 {
		t.Fatalf("state leaked: inflight %d waiting %d", a.inFlight(), a.waitingNow())
	}
}

// TestServeOverloadSheds: with the single compute slot held and the queue
// position taken, the next distinct (uncacheable) request is shed with 429
// — deterministically, by occupying the admission state from the test.
func TestServeOverloadSheds(t *testing.T) {
	g := saphyra.Generate.BarabasiAlbert(400, 3, 7)
	s, ids := newTestServer(t, g, Config{MaxInFlight: 1, MaxQueue: 1, FastLaneSlots: -1, DisablePrecompute: true})
	mkReq := func(seed int64) RankRequest {
		// distinct seeds defeat both the cache and singleflight
		return RankRequest{
			Method: MethodSaPHyRa, Targets: []int64{ids[5], ids[50]},
			Eps: 0.02, Delta: 0.05, Seed: seed,
		}
	}

	release, _, err := s.adm.enter(context.Background(), false) // the test holds the only compute slot
	if err != nil {
		t.Fatal(err)
	}
	type result struct {
		resp *RankResponse
		code int
	}
	waiter := make(chan result, 1)
	go func() {
		resp, code := postRank(t, s.Handler(), mkReq(100))
		waiter <- result{resp, code}
	}()
	for s.adm.waitingNow() != 1 {
		runtime.Gosched() // until the request above is queued on the slot
	}

	if _, code := postRank(t, s.Handler(), mkReq(101)); code != http.StatusTooManyRequests {
		t.Fatalf("request beyond the queue bound got %d, want 429", code)
	}
	if s.m.shed.Value() != 1 {
		t.Fatalf("shed counter = %d, want 1", s.m.shed.Value())
	}

	release() // the queued request now computes and must succeed
	got := <-waiter
	if got.code != http.StatusOK {
		t.Fatalf("queued request got %d, want 200", got.code)
	}
	if got.resp.Cached || len(got.resp.Scores) != 2 {
		t.Fatalf("queued request returned a bad payload: %+v", got.resp)
	}
}

// testKey builds a distinct cacheKey for cache unit tests.
func testKey(gen uint64, tag byte) cacheKey {
	k := cacheKey{gen: gen}
	k.key[0] = tag
	return k
}

// TestCacheSingleflightCollapses: concurrent identical misses share one
// computation.
func TestCacheSingleflightCollapses(t *testing.T) {
	c := newCache(8)
	key := testKey(1, 'x')
	var calls atomic.Int64
	release := make(chan struct{})
	ready := make(chan struct{})

	leaderDone := make(chan *payload, 1)
	go func() {
		p, led, err := c.do(context.Background(), key, func(context.Context) (*payload, error) {
			calls.Add(1)
			close(ready)
			<-release
			return &payload{samples: 42}, nil
		})
		if !led || err != nil {
			t.Errorf("leader: led=%v err=%v", led, err)
		}
		leaderDone <- p
	}()
	<-ready

	const followers = 4
	followerDone := make(chan *payload, followers)
	for i := 0; i < followers; i++ {
		go func() {
			p, led, err := c.do(context.Background(), key, func(context.Context) (*payload, error) {
				calls.Add(1)
				return nil, fmt.Errorf("follower must not compute")
			})
			if led || err != nil {
				t.Errorf("follower: led=%v err=%v", led, err)
			}
			followerDone <- p
		}()
	}
	for c.collapsed.Load() != followers {
		runtime.Gosched() // until every follower has parked on the flight
	}
	close(release)

	want := <-leaderDone
	for i := 0; i < followers; i++ {
		if got := <-followerDone; got != want {
			t.Fatal("follower received a different payload")
		}
	}
	if calls.Load() != 1 {
		t.Fatalf("fn ran %d times, want 1", calls.Load())
	}
	if p, led, _ := c.do(context.Background(), key, nil); led || p != want {
		t.Fatal("post-flight lookup missed")
	}
}

// TestCachePanickingFlightDoesNotWedgeKey: a panic inside the flight
// computation (which now runs on a detached goroutine with no net/http
// recovery above it) must be recovered and settle the flight — the leader
// and every follower get an error instead of a dead process or a key that
// parks every future request forever.
func TestCachePanickingFlightDoesNotWedgeKey(t *testing.T) {
	c := newCache(4)
	key := testKey(1, 'b')

	_, led, err := c.do(context.Background(), key, func(context.Context) (*payload, error) {
		panic("engine blew up")
	})
	if !led || err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("led=%v err=%v, want led and a panic error", led, err)
	}

	done := make(chan error, 1)
	go func() {
		_, _, err := c.do(context.Background(), key, func(context.Context) (*payload, error) { return &payload{samples: 1}, nil })
		done <- err
	}()
	if err := <-done; err != nil {
		t.Fatalf("key wedged after flight panic: %v", err)
	}
	if p, led, err := c.do(context.Background(), key, nil); led || err != nil || p.samples != 1 {
		t.Fatalf("recomputed entry not cached: led=%v err=%v", led, err)
	}
}

// TestCacheEvictionAndPurge: LRU bound holds; purge drops other gens only.
func TestCacheEvictionAndPurge(t *testing.T) {
	c := newCache(3)
	ctx := context.Background()
	for i := int64(0); i < 5; i++ {
		i := i
		c.do(ctx, testKey(1, byte(i)), func(context.Context) (*payload, error) { return &payload{samples: i}, nil })
	}
	if c.len() != 3 {
		t.Fatalf("len = %d, want 3 (capacity)", c.len())
	}
	if _, led, _ := c.do(ctx, testKey(1, 0), func(context.Context) (*payload, error) { return &payload{}, nil }); !led {
		t.Fatal("evicted entry still served")
	}
	c.do(ctx, testKey(2, 100), func(context.Context) (*payload, error) { return &payload{}, nil })
	c.purgeOtherGens(2)
	if c.len() != 1 {
		t.Fatalf("len after purge = %d, want 1", c.len())
	}
	if _, led, _ := c.do(ctx, testKey(2, 100), func(context.Context) (*payload, error) { return &payload{}, nil }); led {
		t.Fatal("current-gen entry was purged")
	}
}
