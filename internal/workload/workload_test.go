package workload

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"saphyra/internal/datasets"
	"saphyra/internal/graph"
	"saphyra/internal/testutil"
)

// tinyEnv returns a small but structurally interesting environment (leaves,
// blocks, cutpoints) that keeps driver tests fast.
func tinyEnv(t *testing.T) *Env {
	t.Helper()
	g := testutil.RandomConnectedGraph(120, 150, 7)
	return NewEnvFromGraph("tiny", g, 2)
}

func smallCfg() Config {
	return Config{Epsilon: 0.1, Delta: 0.1, Workers: 2, Seed: 5, MaxSamples: 3000}
}

func TestRunOneAllAlgorithms(t *testing.T) {
	e := tinyEnv(t)
	subset := datasets.RandomSubsets(e.G.NumNodes(), 15, 1, 3)[0]
	for _, algo := range []Algo{AlgoABRA, AlgoKADABRA, AlgoSaPHyRaFull, AlgoSaPHyRa} {
		b, err := e.RunOne(algo, subset, smallCfg())
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if len(b.Est) != len(subset) {
			t.Errorf("%s: est length %d", algo, len(b.Est))
		}
		if b.Rho < -1 || b.Rho > 1 {
			t.Errorf("%s: rho = %g", algo, b.Rho)
		}
		if b.Duration <= 0 {
			t.Errorf("%s: duration not recorded", algo)
		}
	}
}

func TestRunOneUnknownAlgo(t *testing.T) {
	e := tinyEnv(t)
	if _, err := e.RunOne(Algo("nope"), []graph.Node{1}, smallCfg()); err == nil {
		t.Error("unknown algo should error")
	}
}

func TestAggregate(t *testing.T) {
	bs := []Bench{
		{Rho: 0.5, Duration: time.Second, Samples: 100},
		{Rho: 0.9, Duration: 3 * time.Second, Samples: 300},
	}
	s := Aggregate(bs)
	if s.MeanRho != 0.7 {
		t.Errorf("mean rho = %g", s.MeanRho)
	}
	if s.LoRho != 0.5 || s.HiRho != 0.9 {
		t.Errorf("bounds = (%g, %g)", s.LoRho, s.HiRho)
	}
	if s.MeanTime != 2*time.Second {
		t.Errorf("mean time = %v", s.MeanTime)
	}
	if s.MeanSamples != 200 {
		t.Errorf("mean samples = %d", s.MeanSamples)
	}
	if z := Aggregate(nil); z.MeanRho != 0 {
		t.Error("empty aggregate should be zero")
	}
}

func TestFig3And4Driver(t *testing.T) {
	e := tinyEnv(t)
	subsets := datasets.RandomSubsets(e.G.NumNodes(), 12, 2, 9)
	rows, err := Fig3And4(e, []float64{0.2, 0.1}, subsets, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 { // 2 epsilons x 4 algorithms
		t.Fatalf("rows = %d, want 8", len(rows))
	}
	seen := map[Algo]bool{}
	for _, r := range rows {
		seen[r.Algo] = true
		if r.MeanRho < -1 || r.MeanRho > 1 {
			t.Errorf("%s/%g: rho %g", r.Algo, r.Epsilon, r.MeanRho)
		}
	}
	if len(seen) != 4 {
		t.Errorf("algorithms seen: %v", seen)
	}
}

func TestFig5Driver(t *testing.T) {
	e := tinyEnv(t)
	rows, err := Fig5(e, []int{5, 10}, 2, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 { // 2 sizes x 4 algorithms
		t.Fatalf("rows = %d, want 8", len(rows))
	}
	for _, r := range rows {
		if r.Size != 5 && r.Size != 10 {
			t.Errorf("unexpected size %d", r.Size)
		}
	}
}

func TestFig6Driver(t *testing.T) {
	e := tinyEnv(t)
	subsets := datasets.RandomSubsets(e.G.NumNodes(), 10, 2, 4)
	rows, err := Fig6(e, subsets, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	for _, r := range rows {
		if r.Summary.Total != 20 {
			t.Errorf("%s: total = %d, want 20", r.Algo, r.Summary.Total)
		}
	}
	// SaPHyRa must have zero false zeros (Lemma 19), baselines may not.
	for _, r := range rows {
		if r.Algo == AlgoSaPHyRa && r.Summary.FalseZeros != 0 {
			t.Errorf("SaPHyRa false zeros = %d, want 0", r.Summary.FalseZeros)
		}
	}
}

func TestFig7Driver(t *testing.T) {
	side := 20
	g := graph.RoadNetwork(side, side, 0.35, 3)
	e := NewEnvFromGraph("road", g, 2)
	areas := datasets.Areas(side)
	rows, err := Fig7(e, areas[:2], smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 { // 2 areas x 3 algorithms
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	for _, r := range rows {
		if r.Deviation < 0 || r.Deviation > 1 {
			t.Errorf("%s/%s: deviation %g", r.Area, r.Algo, r.Deviation)
		}
	}
}

func TestTable1Driver(t *testing.T) {
	e := tinyEnv(t)
	subset := datasets.RandomSubsets(e.G.NumNodes(), 10, 1, 2)[0]
	row := Table1(e, subset, 2)
	if row.SaPHyRaFull > row.RiondatoFull {
		t.Errorf("SaPHyRa full %d > Riondato %d", row.SaPHyRaFull, row.RiondatoFull)
	}
	if row.SaPHyRaSubset > row.SaPHyRaFull {
		t.Errorf("subset %d > full %d", row.SaPHyRaSubset, row.SaPHyRaFull)
	}
	if row.L != 2 {
		t.Errorf("l = %d", row.L)
	}
}

func TestTable2Driver(t *testing.T) {
	e := NewEnv(datasets.Flickr, 0.03, 2)
	row := Table2(e, datasets.Flickr)
	if row.Nodes != e.G.NumNodes() || row.Edges != e.G.NumEdges() {
		t.Error("size mismatch")
	}
	if row.Blocks == 0 || row.Cutpoints == 0 {
		t.Error("expected blocks and cutpoints in a leafy social graph")
	}
	if row.PaperNodes != "1.6M" {
		t.Errorf("paper nodes = %q", row.PaperNodes)
	}
}

func TestWriteTSV(t *testing.T) {
	var buf bytes.Buffer
	err := WriteTSV(&buf, []string{"a", "b"}, [][]string{{"1", "2"}, {"3", "4"}})
	if err != nil {
		t.Fatal(err)
	}
	want := "a\tb\n1\t2\n3\t4\n"
	if buf.String() != want {
		t.Errorf("got %q, want %q", buf.String(), want)
	}
	if !strings.Contains(buf.String(), "\t") {
		t.Error("no tabs in TSV output")
	}
}

// The headline qualitative claims of the paper, pinned as tests on a small
// instance: SaPHyRa's subset rank quality beats the baselines', and its
// subset runtime does not exceed the full-network variant's.
func TestHeadlineShapeSmall(t *testing.T) {
	g := datasets.Flickr.Build(0.05)
	e := NewEnvFromGraph("flickr-small", g, 4)
	subsets := datasets.RandomSubsets(e.G.NumNodes(), 50, 3, 11)
	cfg := Config{Epsilon: 0.05, Delta: 0.1, Workers: 4, Seed: 13}
	var saphyra, kadabra []Bench
	for i, sub := range subsets {
		c := cfg
		c.Seed += int64(i)
		b1, err := e.RunOne(AlgoSaPHyRa, sub, c)
		if err != nil {
			t.Fatal(err)
		}
		b2, err := e.RunOne(AlgoKADABRA, sub, c)
		if err != nil {
			t.Fatal(err)
		}
		saphyra = append(saphyra, b1)
		kadabra = append(kadabra, b2)
	}
	sa, ka := Aggregate(saphyra), Aggregate(kadabra)
	if sa.MeanRho <= ka.MeanRho {
		t.Errorf("SaPHyRa rho %g should beat KADABRA rho %g on random subsets", sa.MeanRho, ka.MeanRho)
	}
	if sa.MeanRho < 0.5 {
		t.Errorf("SaPHyRa rho %g unexpectedly low", sa.MeanRho)
	}
}
