package bicomp

import (
	"fmt"

	"saphyra/internal/graph"
)

// decompFlat is the raw decomposition section of a mapped view (persist.go
// flag bit 3). The slices alias the mapped file and must be treated as
// read-only. Together with the run arrays already in the view it determines
// the full Decomposition: NodeBlocks[u] is RunBlock over u's run range,
// Blocks inverts it, and IsCut falls out of the per-node run count.
type decompFlat struct {
	numBlocks int64
	numComps  int64
	edgeBlock []int32 // len 2m, original-CSR edge index -> block id
	compLabel []int32 // len n, node -> connected-component label
	compSize  []int64 // len numComps
}

// NewDecompositionFromView reconstructs the Decomposition of a view opened
// from a file written with the decomposition section, without rerunning the
// Decompose DFS. NodeBlocks alias the view's RunBlock array and EdgeBlock /
// CompLabel / CompSize alias the mapped section directly, so the only
// allocations are the Blocks inversion and the IsCut bitmap — O(n + runs)
// work versus the O(n + m) Hopcroft–Tarjan pass.
//
// The section is validated against the structurally-verified run arrays
// before use: every run's block id must be in range, no block may be empty,
// each node's per-block edge counts in EdgeBlock must match its run lengths,
// and the component labeling must recount to CompSize exactly. Any mismatch
// returns an error and the caller (EnsureDecomposition) falls back to the
// recomputation — a corrupt section degrades cold-start time, never answers.
func NewDecompositionFromView(v *BlockCSR) (*Decomposition, error) {
	f := v.dFlat
	if f == nil {
		return nil, fmt.Errorf("bicomp: view has no decomposition section")
	}
	g := v.G
	n := g.NumNodes()
	m2 := int64(2 * g.NumEdges())
	if int64(len(f.edgeBlock)) != m2 || int64(len(f.compLabel)) != int64(n) ||
		int64(len(f.compSize)) != f.numComps {
		return nil, fmt.Errorf("bicomp: decomposition section shape mismatch (%d edge blocks, %d labels, %d sizes)",
			len(f.edgeBlock), len(f.compLabel), len(f.compSize))
	}
	numBlocks := f.numBlocks
	if numBlocks < 0 || numBlocks > int64(len(v.RunBlock)) {
		return nil, fmt.Errorf("bicomp: implausible block count %d for %d runs", numBlocks, len(v.RunBlock))
	}

	// Invert the runs into Blocks: count, place, fill. Nodes are visited in
	// ascending order, so each member list comes out sorted exactly as
	// Decompose emits it. The same pass rejects out-of-range and empty
	// blocks.
	counts := make([]int64, numBlocks)
	for _, b := range v.RunBlock {
		if int64(b) < 0 || int64(b) >= numBlocks {
			return nil, fmt.Errorf("bicomp: run block id %d outside [0,%d)", b, numBlocks)
		}
		counts[b]++
	}
	for b, c := range counts {
		if c == 0 {
			return nil, fmt.Errorf("bicomp: serialized block %d has no members", b)
		}
	}
	members := make([]graph.Node, len(v.RunBlock))
	blocks := make([][]graph.Node, numBlocks)
	var at int64
	for b := range blocks {
		blocks[b] = members[at : at : at+counts[b]]
		at += counts[b]
	}
	d := &Decomposition{
		G:          g,
		NumBlocks:  int(numBlocks),
		EdgeBlock:  f.edgeBlock,
		Blocks:     blocks,
		NodeBlocks: make([][]int32, n),
		IsCut:      make([]bool, n),
		CompLabel:  f.compLabel,
		CompSize:   f.compSize,
	}
	for u := 0; u < n; u++ {
		lo, hi := v.RunOff[u], v.RunOff[u+1]
		d.NodeBlocks[u] = v.RunBlock[lo:hi:hi]
		d.IsCut[u] = hi-lo >= 2
		for j := lo; j < hi; j++ {
			b := v.RunBlock[j]
			blocks[b] = append(blocks[b], graph.Node(u))
		}
	}

	// Cross-check EdgeBlock against the run layout: node u's CSR segment of
	// EdgeBlock must assign exactly RunStart[j+1]-RunStart[j] edges to the
	// block of each run j, and nothing to any other block. Runs per node are
	// tiny (barely above 1 on real networks), so the inner scan is O(deg).
	for u := 0; u < n; u++ {
		lo, hi := v.RunOff[u], v.RunOff[u+1]
		base := g.AdjOffset(graph.Node(u))
		deg := int64(g.Degree(graph.Node(u)))
		remaining := int64(0)
		for j := lo; j < hi; j++ {
			counts[v.RunBlock[j]] = v.RunStart[j+1] - v.RunStart[j]
			remaining += v.RunStart[j+1] - v.RunStart[j]
		}
		if remaining != deg {
			return nil, fmt.Errorf("bicomp: node %d runs cover %d edges, degree %d", u, remaining, deg)
		}
		for i := base; i < base+deg; i++ {
			b := f.edgeBlock[i]
			if int64(b) < 0 || int64(b) >= numBlocks {
				return nil, fmt.Errorf("bicomp: edge %d assigned to block %d outside [0,%d)", i, b, numBlocks)
			}
			ok := false
			for j := lo; j < hi; j++ {
				if v.RunBlock[j] == b {
					ok = counts[b] > 0
					counts[b]--
					break
				}
			}
			if !ok {
				return nil, fmt.Errorf("bicomp: node %d edge %d assigned to block %d, disagrees with run layout", u, i-base, b)
			}
		}
	}

	// Recount the component labeling against the serialized sizes.
	recount := make([]int64, f.numComps)
	for u, c := range f.compLabel {
		if int64(c) < 0 || int64(c) >= f.numComps {
			return nil, fmt.Errorf("bicomp: node %d component label %d outside [0,%d)", u, c, f.numComps)
		}
		recount[c]++
	}
	for c, got := range recount {
		if got != f.compSize[c] {
			return nil, fmt.Errorf("bicomp: component %d recounts to %d nodes, section says %d", c, got, f.compSize[c])
		}
	}
	return d, nil
}
