package cluster

import (
	"bufio"
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"io"
	"net/http"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"saphyra"
	"saphyra/internal/loadgen"
	"saphyra/internal/serve"
)

// buildClusterView persists a view with a non-identity original-id space
// (original = dense*3 + 1), mirroring the serving-layer tests so id
// translation bugs cannot hide behind identity mappings.
func buildClusterView(t testing.TB, n int) (path string, ids []int64) {
	t.Helper()
	g := saphyra.Generate.BarabasiAlbert(n, 3, 12)
	ids = make([]int64, g.NumNodes())
	for i := range ids {
		ids[i] = int64(i)*3 + 1
	}
	path = filepath.Join(t.TempDir(), "cluster.sbcv")
	if err := saphyra.BuildView(g, ids).WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path, ids
}

// startTestFleet boots a 3-replica fleet with active probing off, so health
// transitions happen only through forwarded traffic and the tests stay
// deterministic.
func startTestFleet(t testing.TB, viewPath string) *Fleet {
	t.Helper()
	f, err := StartFleet(viewPath, FleetConfig{
		Replicas: 3,
		Serve:    serve.Config{DisablePrecompute: true, CacheEntries: 1 << 12},
		Router:   RouterConfig{ProbeInterval: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	return f
}

func postRankURL(t testing.TB, base string, req serve.RankRequest) (*serve.RankResponse, int, http.Header) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/rank", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", base, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, resp.StatusCode, resp.Header
	}
	var out serve.RankResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("bad 200 body: %v", err)
	}
	return &out, resp.StatusCode, resp.Header
}

func statuszOf(t testing.TB, base string) *serve.Statusz {
	t.Helper()
	resp, err := http.Get(base + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st serve.Statusz
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return &st
}

// promCounter reads one counter sample (by its exact name{labels} prefix)
// from a replica's /metricsz.
func promCounter(t testing.TB, base, series string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("bad sample %q: %v", line, err)
			}
			return v
		}
	}
	return 0
}

// computesOf returns the fleet-wide count of actual engine computations
// across the given replicas: cache misses start a flight, but a flight
// satisfied by peer fill never computes, so computes = misses - peer hits.
func computesOf(t testing.TB, bases []string) int64 {
	t.Helper()
	var total int64
	for _, base := range bases {
		st := statuszOf(t, base)
		hits := promCounter(t, base, `saphyra_peer_fill_total{result="hit"}`)
		total += st.Cache.Misses - int64(hits)
	}
	return total
}

// canonicalKeyOf reconstructs the serving layer's cache key from a 200
// response: the response reports its full achieved contract (method, eps,
// delta, seed, K, and the canonical target set in Nodes), which is exactly
// what the replicas key their caches — and their peer-fill ring — by.
func canonicalKeyOf(t testing.TB, resp *serve.RankResponse, pos map[int64]saphyra.Node) [sha256.Size]byte {
	t.Helper()
	var m saphyra.Measure
	switch resp.Method {
	case serve.MethodSaPHyRa:
		m = saphyra.Betweenness
	case serve.MethodKPath:
		m = saphyra.KPath
	case serve.MethodCloseness:
		m = saphyra.Closeness
	default:
		t.Fatalf("unknown method %q", resp.Method)
	}
	targets := make([]saphyra.Node, len(resp.Nodes))
	for i, id := range resp.Nodes {
		n, ok := pos[id]
		if !ok {
			t.Fatalf("response node %d not in the view", id)
		}
		targets[i] = n
	}
	q := saphyra.Query{Measure: m, Targets: targets, K: resp.K,
		Epsilon: resp.Eps, Delta: resp.Delta, Seed: resp.Seed}
	return q.Key()
}

// TestClusterBitwiseUnderReloadAndKill is the tier-1 acceptance run for the
// distributed serving tier: a 3-replica fleet behind the router, driven
// through a rolling reload with traffic in flight and then a hard replica
// kill mid-traffic. Every 200 must be bitwise-equal to the library
// reference for its reported contract (any generation maps the same view
// bytes, so one reference covers all), responses may only ever carry
// adjacent generations during the roll, and the compute accounting must
// show that neither hop retries nor duplicate in-flight requests ever
// compute one (generation, key) twice on the surviving fleet.
func TestClusterBitwiseUnderReloadAndKill(t *testing.T) {
	viewPath, ids := buildClusterView(t, 600)
	f := startTestFleet(t, viewPath)
	verifier, err := loadgen.NewVerifier(viewPath)
	if err != nil {
		t.Fatal(err)
	}
	defer verifier.Close()

	// check runs from concurrent traffic goroutines too, so it must only
	// ever Error, never FailNow.
	check := func(resp *serve.RankResponse) {
		t.Helper()
		if err := verifier.Check(loadgen.EventRank, resp); err != nil {
			t.Errorf("non-bitwise 200: %v", err)
		}
	}

	warmSet := []serve.RankRequest{
		{Method: serve.MethodSaPHyRa, Targets: []int64{ids[7], ids[99], ids[300]}, Eps: 0.1, Delta: 0.05, Seed: 1},
		{Method: serve.MethodSaPHyRa, Targets: []int64{ids[4], ids[512]}, Eps: 0.1, Delta: 0.05, Seed: 2},
		{Method: serve.MethodCloseness, Targets: []int64{ids[12], ids[34], ids[56]}, Eps: 0.1, Delta: 0.05, Seed: 3},
		{Method: serve.MethodKPath, Targets: []int64{ids[88], ids[188]}, Eps: 0.1, Delta: 0.05, K: 3, Seed: 4},
		{Method: serve.MethodSaPHyRa, Targets: []int64{ids[1], ids[2], ids[3], ids[5]}, Eps: 0.1, Delta: 0.05, Seed: 5},
		{Method: serve.MethodCloseness, Targets: []int64{ids[400], ids[401]}, Eps: 0.1, Delta: 0.05, Seed: 6},
	}

	// Phase A: warm traffic, no failures. Each distinct query twice through
	// the router: the second must be a cache hit on the same replica, and
	// the fleet as a whole must compute each exactly once.
	base := computesOf(t, f.ReplicaURLs)
	for i, req := range warmSet {
		first, code, _ := postRankURL(t, f.RouterURL, req)
		if code != http.StatusOK {
			t.Fatalf("warm %d: status %d", i, code)
		}
		check(first)
		if first.Generation != 1 {
			t.Fatalf("warm %d: generation %d, want 1", i, first.Generation)
		}
		second, code, _ := postRankURL(t, f.RouterURL, req)
		if code != http.StatusOK {
			t.Fatalf("warm %d repeat: status %d", i, code)
		}
		check(second)
		if !second.Cached {
			t.Errorf("warm %d repeat: not served from cache", i)
		}
	}
	if got := computesOf(t, f.ReplicaURLs) - base; got != int64(len(warmSet)) {
		t.Fatalf("no-failure phase computed %d times for %d distinct queries", got, len(warmSet))
	}

	// Concurrent duplicates of one cold query must collapse into a single
	// computation (router affinity lands them on one replica; its
	// singleflight does the rest).
	base = computesOf(t, f.ReplicaURLs)
	burst := serve.RankRequest{Method: serve.MethodSaPHyRa,
		Targets: []int64{ids[42], ids[43], ids[44]}, Eps: 0.1, Delta: 0.05, Seed: 999}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, code, _ := postRankURL(t, f.RouterURL, burst)
			if code != http.StatusOK {
				t.Errorf("burst: status %d", code)
				return
			}
			check(resp)
		}()
	}
	wg.Wait()
	if got := computesOf(t, f.ReplicaURLs) - base; got != 1 {
		t.Fatalf("16 concurrent duplicates computed %d times, want 1", got)
	}

	// Phase B: rolling reload with traffic in flight. Collect every 200 the
	// background load receives; during the roll the fleet may answer from
	// generation 1 or 2, never anything else, and every byte must still
	// verify.
	stop := make(chan struct{})
	var collected []*serve.RankResponse
	var cmu sync.Mutex
	var tg sync.WaitGroup
	for w := 0; w < 4; w++ {
		tg.Add(1)
		go func(w int) {
			defer tg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, code, _ := postRankURL(t, f.RouterURL, warmSet[(i+w)%len(warmSet)])
				if code != http.StatusOK {
					t.Errorf("mid-roll status %d", code)
					continue
				}
				cmu.Lock()
				collected = append(collected, resp)
				cmu.Unlock()
			}
		}(w)
	}
	time.Sleep(50 * time.Millisecond)
	gens, err := RollingReload(context.Background(), http.DefaultClient, f.ReplicaURLs)
	if err != nil {
		t.Fatalf("rolling reload: %v", err)
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	tg.Wait()
	for i, gen := range gens {
		if gen != 2 {
			t.Fatalf("replica %d rolled to generation %d, want 2", i, gen)
		}
	}
	for _, resp := range collected {
		if resp.Generation != 1 && resp.Generation != 2 {
			t.Fatalf("mid-roll response carries generation %d; only adjacent generations may coexist", resp.Generation)
		}
		check(resp)
	}
	for i, base := range f.ReplicaURLs {
		if st := statuszOf(t, base); st.Generation != 2 {
			t.Fatalf("replica %d still at generation %d after the roll", i, st.Generation)
		}
	}

	// Re-warm post-roll and record which replica owns each warm key now —
	// the X-Saphyra-Replica header is the router telling us.
	owner := make([]string, len(warmSet))
	for i, req := range warmSet {
		resp, code, hdr := postRankURL(t, f.RouterURL, req)
		if code != http.StatusOK {
			t.Fatalf("re-warm %d: status %d", i, code)
		}
		if resp.Generation != 2 {
			t.Fatalf("re-warm %d: generation %d after roll, want 2 (stale cache served across generations)", i, resp.Generation)
		}
		check(resp)
		owner[i] = hdr.Get("X-Saphyra-Replica")
		if owner[i] == "" {
			t.Fatalf("re-warm %d: no X-Saphyra-Replica header", i)
		}
	}

	// Phase C: hard-kill the replica serving warm key 0, with traffic in
	// flight. Every request must still answer 200 (the hop budget covers
	// one dead replica) and the survivors may recompute each of the
	// victim's keys at most once — a hop retry lands on one survivor and
	// singleflight collapses everything behind it.
	victim := -1
	for i, u := range f.ReplicaURLs {
		if u == owner[0] {
			victim = i
		}
	}
	if victim < 0 {
		t.Fatalf("answering replica %q not in fleet %v", owner[0], f.ReplicaURLs)
	}
	survivors := make([]string, 0, 2)
	for i, u := range f.ReplicaURLs {
		if i != victim {
			survivors = append(survivors, u)
		}
	}
	victimKeys := 0
	for _, o := range owner {
		if o == owner[0] {
			victimKeys++
		}
	}
	base = computesOf(t, survivors)

	stop = make(chan struct{})
	var kg sync.WaitGroup
	for w := 0; w < 4; w++ {
		kg.Add(1)
		go func(w int) {
			defer kg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, code, hdr := postRankURL(t, f.RouterURL, warmSet[(i+w)%len(warmSet)])
				if code != http.StatusOK {
					t.Errorf("mid-kill status %d", code)
					continue
				}
				if got := hdr.Get("X-Saphyra-Replica"); got == "" {
					t.Errorf("mid-kill response without X-Saphyra-Replica")
				}
				check(resp)
			}
		}(w)
	}
	time.Sleep(30 * time.Millisecond)
	f.KillReplica(victim)
	time.Sleep(200 * time.Millisecond)
	close(stop)
	kg.Wait()

	// One deterministic sequential pass: everything re-homed during the
	// concurrent window, so nothing may compute again — hop retries hit the
	// survivors' caches, not their engines.
	settled := computesOf(t, survivors)
	if delta := settled - base; delta > int64(victimKeys) {
		t.Fatalf("kill failover computed %d times for %d victim-owned keys (duplicate computes)", delta, victimKeys)
	}
	for i, req := range warmSet {
		resp, code, hdr := postRankURL(t, f.RouterURL, req)
		if code != http.StatusOK {
			t.Fatalf("post-kill %d: status %d", i, code)
		}
		if got := hdr.Get("X-Saphyra-Replica"); got == owner[0] {
			t.Fatalf("post-kill %d: answered by the killed replica %s", i, got)
		}
		if resp.Generation != 2 {
			t.Fatalf("post-kill %d: generation %d, want 2", i, resp.Generation)
		}
		check(resp)
	}
	if delta := computesOf(t, survivors) - settled; delta != 0 {
		t.Fatalf("settled post-kill pass computed %d times, want 0 (hop retries must not duplicate computes)", delta)
	}
}

// TestClusterPeerFillSingleCompute pins the peer cache-fill tier end to
// end: once a key's TRUE ring home has computed it, every other replica
// serves it by adopting the home's cached envelope — zero extra
// computations, bitwise-identical bytes.
func TestClusterPeerFillSingleCompute(t *testing.T) {
	viewPath, ids := buildClusterView(t, 400)
	f := startTestFleet(t, viewPath)
	pos := make(map[int64]saphyra.Node, len(ids))
	for i, id := range ids {
		pos[id] = saphyra.Node(i)
	}

	req := serve.RankRequest{Method: serve.MethodSaPHyRa,
		Targets: []int64{ids[10], ids[20], ids[30]}, Eps: 0.1, Delta: 0.05, Seed: 77}
	// Find the key's true home on the replica ring without issuing any
	// request: the canonical key is a pure function of the query contract,
	// and the ring every fleet member built is positional over ReplicaURLs.
	key := canonicalKeyOf(t, &serve.RankResponse{
		Method: req.Method, Nodes: req.Targets,
		Eps: req.Eps, Delta: req.Delta, Seed: req.Seed,
	}, pos)
	ring, err := NewRing(f.ReplicaURLs, 0)
	if err != nil {
		t.Fatal(err)
	}
	home := ring.Owner(KeyHash(key))

	// Warm the home directly — the key's ONLY computation — then hit the
	// other replicas directly: each must answer without computing.
	homeResp, code, _ := postRankURL(t, f.ReplicaURLs[home], req)
	if code != http.StatusOK {
		t.Fatalf("home warm: status %d", code)
	}
	before := computesOf(t, f.ReplicaURLs)
	for i, u := range f.ReplicaURLs {
		if i == home {
			continue
		}
		got, code, _ := postRankURL(t, u, req)
		if code != http.StatusOK {
			t.Fatalf("replica %d: status %d", i, code)
		}
		if !got.Cached {
			t.Errorf("replica %d: peer-filled response not marked cached", i)
		}
		a, _ := json.Marshal(homeResp.Scores)
		b, _ := json.Marshal(got.Scores)
		if !bytes.Equal(a, b) {
			t.Fatalf("replica %d: adopted scores differ from the home's bytes", i)
		}
	}
	if delta := computesOf(t, f.ReplicaURLs) - before; delta != 0 {
		t.Fatalf("peer fill still computed %d times; want every non-home replica to adopt", delta)
	}
	fills := 0.0
	for i, u := range f.ReplicaURLs {
		if i != home {
			fills += promCounter(t, u, `saphyra_peer_fill_total{result="hit"}`)
		}
	}
	if fills < 2 {
		t.Fatalf("peer fill hits %v, want 2 (one per non-home replica)", fills)
	}
}

// TestClusterLoadgenHitDominatedSLO replays the cluster-hit-dominated mix
// open-loop through the router and gates on its SLO plus bitwise
// verification of sampled responses — the same acceptance shape the
// single-box serving tier has, aimed at the fleet.
func TestClusterLoadgenHitDominatedSLO(t *testing.T) {
	viewPath, ids := buildClusterView(t, 600)
	f := startTestFleet(t, viewPath)
	verifier, err := loadgen.NewVerifier(viewPath)
	if err != nil {
		t.Fatal(err)
	}
	defer verifier.Close()

	m := loadgen.ClusterHitDominated().Scale(200, time.Second)
	sched, err := loadgen.Build(m, ids, 1)
	if err != nil {
		t.Fatal(err)
	}
	r, err := loadgen.Run(context.Background(), sched, loadgen.Options{
		Base: f.RouterURL, Warm: true, VerifyEvery: 4, Verifier: verifier,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Verified == 0 {
		t.Fatal("no responses verified")
	}
	if r.VerifyFailed > 0 {
		t.Fatalf("%d of %d sampled responses not bitwise-equal: %v", r.VerifyFailed, r.Verified, r.VerifyErrors)
	}
	if !r.Pass {
		t.Fatalf("cluster mix failed its SLO: %v (p99 %.2fms, shed %.2f%%, err %.2f%%)",
			r.SLOViolations, r.P99Ms, 100*r.ShedRate, 100*r.ErrorRate)
	}
	if r.HitRate < 0.9 {
		t.Fatalf("hit rate %.2f through the router; warmed hit-dominated traffic should be nearly all hits", r.HitRate)
	}
}

// TestRouterRelaysBackpressure pins the router's non-retry contract: a 4xx
// from a replica (including 429 shed) is that replica's answer and must
// come back as-is — multiplied shed would turn one overloaded replica into
// fleet-wide retry pressure.
func TestRouterRelaysBackpressure(t *testing.T) {
	viewPath, ids := buildClusterView(t, 400)
	f := startTestFleet(t, viewPath)
	_, code, _ := postRankURL(t, f.RouterURL, serve.RankRequest{
		Method: "no-such-method", Targets: []int64{ids[1]}})
	if code != http.StatusBadRequest {
		t.Fatalf("contract error relayed as %d, want 400", code)
	}

	// Kill the whole fleet: the router must exhaust its hop budget and shed
	// with 503 + Retry-After, the same backpressure shape one overloaded
	// replica presents.
	for i := range f.ReplicaURLs {
		f.KillReplica(i)
	}
	body, _ := json.Marshal(serve.RankRequest{Method: serve.MethodSaPHyRa, Targets: []int64{ids[1]}})
	resp, err := http.Post(f.RouterURL+"/v1/rank", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("dead fleet answered %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("hops-exhausted 503 must carry Retry-After")
	}
	var st RouterStatusz
	r2, err := http.Get(f.RouterURL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	if err := json.NewDecoder(r2.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Exhausted == 0 {
		t.Fatal("router statusz should count the exhausted request")
	}
}
