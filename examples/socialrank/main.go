// Socialrank: the paper's motivating scenario — rank a small set of
// "search result" nodes (mostly low-centrality) in a large social network,
// where whole-network estimators produce meaningless orderings.
//
// The example builds a Flickr-like graph (scale-free core plus many leaf
// accounts), picks 50 random nodes, and ranks them three ways: SaPHyRa
// (subset-personalized), KADABRA, and ABRA. It prints each method's rank
// correlation against the exact ranking and its running time, reproducing
// the Fig 4 phenomenon at laptop scale.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sort"

	"saphyra"
)

func main() {
	// Flickr-like: 1,500-node scale-free core + 1,500 leaf accounts.
	core := saphyra.Generate.PowerLawCluster(1500, 6, 0.3, 7)
	b := saphyra.NewBuilder(3000)
	for _, e := range core.Edges() {
		b.AddEdge(e.U, e.V)
	}
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 1500; i++ {
		b.AddEdge(saphyra.Node(1500+i), saphyra.Node(rng.Intn(1500)))
	}
	g := b.Build()
	fmt.Printf("graph: %d nodes, %d edges\n", g.NumNodes(), g.NumEdges())

	// 50 random LOW-DEGREE targets: the "less-known websites" whose ranking
	// the paper shows is noisy under whole-network estimators (hubs are easy
	// for everyone; the periphery is where methods differ).
	// Target the network's periphery: the half of the non-leaf nodes with
	// the smallest degrees. These have tiny positive centrality — the
	// "less-known websites" whose relative order sampling alone cannot
	// resolve (leaves are excluded: their betweenness is exactly 0 and every
	// method gets them right).
	var periphery []saphyra.Node
	for v := 0; v < g.NumNodes(); v++ {
		if g.Degree(saphyra.Node(v)) >= 2 {
			periphery = append(periphery, saphyra.Node(v))
		}
	}
	sort.Slice(periphery, func(i, j int) bool {
		if d1, d2 := g.Degree(periphery[i]), g.Degree(periphery[j]); d1 != d2 {
			return d1 < d2
		}
		return periphery[i] < periphery[j]
	})
	periphery = periphery[:len(periphery)/2]
	var targets []saphyra.Node
	seen := map[saphyra.Node]bool{}
	for len(targets) < 50 && len(targets) < len(periphery) {
		v := periphery[rng.Intn(len(periphery))]
		if !seen[v] {
			seen[v] = true
			targets = append(targets, v)
		}
	}

	truth := saphyra.ExactBC(g, 0)
	score := func(res *saphyra.Result) float64 {
		truthA := make([]float64, len(res.Nodes))
		ids := make([]int32, len(res.Nodes))
		for i, v := range res.Nodes {
			truthA[i] = truth[v]
			ids[i] = int32(v)
		}
		return saphyra.Spearman(truthA, res.Scores, ids)
	}

	fmt.Println("\nmethod\ttime\tsamples\tspearman-rho")
	ranker := saphyra.NewRanker(g)
	for _, alg := range []saphyra.Algorithm{saphyra.AlgSaPHyRa, saphyra.AlgKADABRA, saphyra.AlgABRA} {
		res, err := ranker.Rank(context.Background(), saphyra.Query{
			Measure: saphyra.Betweenness, Algorithm: alg,
			Targets: targets, Epsilon: 0.05, Delta: 0.01, Seed: 99,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\t%v\t%d\t%.3f\n", alg, res.Duration, res.Samples, score(res))
	}
	fmt.Println("\nSaPHyRa keeps the subset's ordering because its exact 2-hop")
	fmt.Println("subspace gives every target a non-zero estimate (Lemma 19);")
	fmt.Println("the baselines estimate most low-centrality targets as 0.")
}
