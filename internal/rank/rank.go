// Package rank implements the rank-quality metrics of the paper's
// evaluation: Spearman's rank correlation (Eq 1), Kendall's tau, average
// rank deviation (Fig 7a), and the signed relative-error summary with
// true-zero / false-zero accounting (Fig 6).
//
// All ranking follows the paper's convention: nodes are ranked by descending
// value, ties broken by ascending node id, so ranks are the distinct
// integers 1..k.
package rank

import (
	"math"
	"sort"
)

// Ranks returns the rank (1 = largest value) of every entry of values, with
// ties broken by ascending id. ids must be the per-entry tie-break keys
// (typically node ids) and have the same length as values.
func Ranks(values []float64, ids []int32) []int {
	k := len(values)
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		if values[ia] != values[ib] {
			return values[ia] > values[ib]
		}
		return ids[ia] < ids[ib]
	})
	ranks := make([]int, k)
	for r, i := range idx {
		ranks[i] = r + 1
	}
	return ranks
}

// Spearman returns Spearman's rank correlation between two value vectors
// over the same entries (Eq 1): 1 - 6 sum d_i^2 / (k(k^2-1)). Returns 1 for
// fewer than two entries. ids supplies the paper's node-id tie-break.
func Spearman(truth, estimate []float64, ids []int32) float64 {
	k := len(truth)
	if k < 2 {
		return 1
	}
	rt := Ranks(truth, ids)
	re := Ranks(estimate, ids)
	var sum float64
	for i := range rt {
		d := float64(rt[i] - re[i])
		sum += d * d
	}
	kk := float64(k)
	return 1 - 6*sum/(kk*(kk*kk-1))
}

// KendallTau returns Kendall's rank correlation tau between two value
// vectors with the same tie-break convention. With all-distinct ranks,
// tau = 1 - 4*inversions/(k(k-1)), computed in O(k log k) by counting
// inversions with merge sort.
func KendallTau(truth, estimate []float64, ids []int32) float64 {
	k := len(truth)
	if k < 2 {
		return 1
	}
	rt := Ranks(truth, ids)
	re := Ranks(estimate, ids)
	// order entries by truth rank, then count inversions of estimate ranks
	seq := make([]int, k)
	for i, r := range rt {
		seq[r-1] = re[i]
	}
	inv := countInversions(seq)
	kk := float64(k)
	return 1 - 4*float64(inv)/(kk*(kk-1))
}

func countInversions(a []int) int64 {
	buf := make([]int, len(a))
	return mergeCount(a, buf)
}

func mergeCount(a, buf []int) int64 {
	if len(a) < 2 {
		return 0
	}
	mid := len(a) / 2
	inv := mergeCount(a[:mid], buf) + mergeCount(a[mid:], buf)
	i, j, k := 0, mid, 0
	for i < mid && j < len(a) {
		if a[i] <= a[j] {
			buf[k] = a[i]
			i++
		} else {
			buf[k] = a[j]
			j++
			inv += int64(mid - i)
		}
		k++
	}
	for i < mid {
		buf[k] = a[i]
		i++
		k++
	}
	for j < len(a) {
		buf[k] = a[j]
		j++
		k++
	}
	copy(a, buf[:len(a)])
	return inv
}

// Deviation returns the average absolute rank displacement between truth and
// estimate, normalized by k (the paper reports it as a percentage in
// Fig 7a): mean_i |rank_t(i) - rank_e(i)| / k.
func Deviation(truth, estimate []float64, ids []int32) float64 {
	k := len(truth)
	if k < 2 {
		return 0
	}
	rt := Ranks(truth, ids)
	re := Ranks(estimate, ids)
	var sum float64
	for i := range rt {
		sum += math.Abs(float64(rt[i] - re[i]))
	}
	return sum / (float64(k) * float64(k))
}

// ErrorSummary aggregates the paper's Fig 6 statistics for a set of nodes:
// the signed relative error histogram plus true-zero / false-zero counts.
type ErrorSummary struct {
	// TrueZeros counts nodes with bc = 0 estimated as exactly 0 (the "easy"
	// cases: relative error defined as 0).
	TrueZeros int
	// FalseZeros counts nodes with bc > 0 estimated as 0 (relative error
	// -100%; the failure mode Lemma 19 eliminates for SaPHyRa).
	FalseZeros int
	// InfErrors counts nodes with bc = 0 but a nonzero estimate (relative
	// error undefined/infinite).
	InfErrors int
	// Buckets[i] counts finite relative errors in
	// [BucketLow + i*BucketWidth, BucketLow + (i+1)*BucketWidth), expressed
	// in percent; errors >= the top edge land in the last bucket.
	Buckets     []int
	BucketLow   float64
	BucketWidth float64
	Total       int
}

// NewErrorSummary builds the Fig 6 histogram: buckets of width `width`
// percent from -100% to +150% (errors beyond +150% are grouped into the top
// bucket, matching the paper's ">150%" bucket).
func NewErrorSummary(width float64) *ErrorSummary {
	if width <= 0 {
		width = 25
	}
	nb := int(math.Ceil(250/width)) + 1
	return &ErrorSummary{
		Buckets:     make([]int, nb),
		BucketLow:   -100,
		BucketWidth: width,
	}
}

// Add records one node's (truth, estimate) pair.
func (e *ErrorSummary) Add(truth, estimate float64) {
	e.Total++
	switch {
	case truth == 0 && estimate == 0:
		e.TrueZeros++
		e.bucket(0)
	case truth == 0:
		e.InfErrors++
	case estimate == 0:
		e.FalseZeros++
		e.bucket(-100)
	default:
		e.bucket((estimate/truth - 1) * 100)
	}
}

func (e *ErrorSummary) bucket(pct float64) {
	i := int(math.Floor((pct - e.BucketLow) / e.BucketWidth))
	if i < 0 {
		i = 0
	}
	if i >= len(e.Buckets) {
		i = len(e.Buckets) - 1
	}
	e.Buckets[i]++
}

// FractionTrueZeros returns TrueZeros/Total (0 when empty).
func (e *ErrorSummary) FractionTrueZeros() float64 {
	if e.Total == 0 {
		return 0
	}
	return float64(e.TrueZeros) / float64(e.Total)
}

// FractionFalseZeros returns FalseZeros/Total (0 when empty).
func (e *ErrorSummary) FractionFalseZeros() float64 {
	if e.Total == 0 {
		return 0
	}
	return float64(e.FalseZeros) / float64(e.Total)
}
