package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"sort"
	"testing"
	"time"

	"saphyra"
	"saphyra/internal/serve"
)

// benchFleet boots the benchmark fleet over a Fig-3-sized synthetic social
// graph — the same graph shape the single-box serving benchmarks use, so
// the route-hit row is directly comparable to BenchmarkServeRankCacheHit.
func benchFleet(b *testing.B) (*Fleet, []int64) {
	g := saphyra.Generate.BarabasiAlbert(4000, 5, 42)
	ids := make([]int64, g.NumNodes())
	for i := range ids {
		ids[i] = int64(i)*3 + 1
	}
	path := b.TempDir() + "/bench.sbcv"
	if err := saphyra.BuildView(g, ids).WriteFile(path); err != nil {
		b.Fatal(err)
	}
	f, err := StartFleet(path, FleetConfig{
		Replicas: 3,
		Serve:    serve.Config{DisablePrecompute: true, CacheEntries: 1 << 16},
		Router:   RouterConfig{ProbeInterval: -1},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(f.Close)
	return f, ids
}

func benchRankBody(b *testing.B, ids []int64) []byte {
	body, err := json.Marshal(serve.RankRequest{
		Method:  serve.MethodSaPHyRa,
		Targets: []int64{ids[17], ids[99], ids[1024], ids[2048]},
		Eps:     0.05, Delta: 0.05, Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	return body
}

func postOnce(b *testing.B, client *http.Client, url string, body []byte) {
	b.Helper()
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("status %d", resp.StatusCode)
	}
}

// BenchmarkClusterRouteHit is the steady-state cost of a cache hit through
// the whole cluster path: client HTTP hop to the router, ring placement,
// router HTTP hop to the replica, replica cache hit, two relays back. The
// single-box baseline is BenchmarkServeRankCacheHit (internal/serve);
// TestClusterRouteHitLatencyGate holds the p99 ratio.
func BenchmarkClusterRouteHit(b *testing.B) {
	f, ids := benchFleet(b)
	client := &http.Client{}
	body := benchRankBody(b, ids)
	url := f.RouterURL + "/v1/rank"
	postOnce(b, client, url, body) // warm the entry at its route home
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		postOnce(b, client, url, body)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}

// BenchmarkPeerFill is the cost of one peer cache-fill round trip: the
// GET /internal/cache probe plus envelope decode against a peer that holds
// the entry — the price a non-home replica pays to skip a recompute.
func BenchmarkPeerFill(b *testing.B) {
	f, ids := benchFleet(b)
	client := &http.Client{}
	body := benchRankBody(b, ids)
	pos := make(map[int64]saphyra.Node, len(ids))
	for i, id := range ids {
		pos[id] = saphyra.Node(i)
	}

	// Warm the entry at its TRUE ring home (direct request), then probe it
	// from outside the fleet (self = -1 probes whoever owns the key).
	var resp *serve.RankResponse
	{
		r, err := client.Post(f.RouterURL+"/v1/rank", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		defer r.Body.Close()
		if err := json.NewDecoder(r.Body).Decode(&resp); err != nil {
			b.Fatal(err)
		}
	}
	key := canonicalKeyOf(b, resp, pos)
	ring, err := NewRing(f.ReplicaURLs, 0)
	if err != nil {
		b.Fatal(err)
	}
	home := ring.Owner(KeyHash(key))
	postOnce(b, client, f.ReplicaURLs[home]+"/v1/rank", body)

	peers, err := NewPeers(f.ReplicaURLs, -1, 0, client, time.Second)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	if _, ok := peers.Fill(ctx, resp.Generation, key); !ok {
		b.Fatal("warmed entry not fillable")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := peers.Fill(ctx, resp.Generation, key); !ok {
			b.Fatal("peer fill missed")
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "fill/s")
}

// measureHitP99 issues n sequential cache-hit requests and returns the p99
// latency.
func measureHitP99(t testing.TB, client *http.Client, url string, body []byte, n int) time.Duration {
	t.Helper()
	lat := make([]time.Duration, 0, n)
	for i := 0; i < n; i++ {
		t0 := time.Now()
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		lat = append(lat, time.Since(t0))
	}
	sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
	return lat[n*99/100]
}

// TestClusterRouteHitLatencyGate is the distributed tier's latency
// acceptance bar: a cache hit through the router must stay within 5x the
// p99 of the same hit against a single replica over the same transport
// (one HTTP hop to a lone server on a loopback listener). The comparison
// is like for like — both sides pay a real HTTP round trip — so the gate
// prices exactly what the cluster adds: ring placement, the second hop,
// and the relay. A floor absorbs loopback scheduling noise when the
// single-box p99 lands in the sub-millisecond range.
func TestClusterRouteHitLatencyGate(t *testing.T) {
	g := saphyra.Generate.BarabasiAlbert(4000, 5, 42)
	ids := make([]int64, g.NumNodes())
	for i := range ids {
		ids[i] = int64(i)*3 + 1
	}
	path := t.TempDir() + "/gate.sbcv"
	if err := saphyra.BuildView(g, ids).WriteFile(path); err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(serve.RankRequest{
		Method:  serve.MethodSaPHyRa,
		Targets: []int64{ids[17], ids[99], ids[1024], ids[2048]},
		Eps:     0.05, Delta: 0.05, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{}
	const n = 1200

	// Single box over a real loopback listener.
	single, err := serve.New(path, serve.Config{DisablePrecompute: true, CacheEntries: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: single.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	singleURL := "http://" + ln.Addr().String() + "/v1/rank"
	postOnceT(t, client, singleURL, body)
	singleP99 := measureHitP99(t, client, singleURL, body, n)

	f, err := StartFleet(path, FleetConfig{
		Replicas: 3,
		Serve:    serve.Config{DisablePrecompute: true, CacheEntries: 1 << 16},
		Router:   RouterConfig{ProbeInterval: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	routerURL := f.RouterURL + "/v1/rank"
	postOnceT(t, client, routerURL, body)
	clusterP99 := measureHitP99(t, client, routerURL, body, n)

	floor := 500 * time.Microsecond
	budget := 5 * max(singleP99, floor)
	t.Logf("single-box hit p99 %v, cluster hit p99 %v, budget %v", singleP99, clusterP99, budget)
	if clusterP99 > budget {
		t.Fatalf("cluster cache-hit p99 %v exceeds 5x single-box p99 %v (budget %v)",
			clusterP99, singleP99, budget)
	}
}

func postOnceT(t testing.TB, client *http.Client, url string, body []byte) {
	t.Helper()
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}
