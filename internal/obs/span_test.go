package obs

import (
	"context"
	"testing"
	"time"
)

// TestStartSpanDisabled pins the disabled fast path: with no trace live
// anywhere in the process, StartSpan returns the context unchanged and a
// nil span whose methods are all no-ops — and allocates nothing.
func TestStartSpanDisabled(t *testing.T) {
	if Enabled() {
		t.Fatal("a trace is live at test start")
	}
	ctx := context.Background()
	got, sp := StartSpan(ctx, "x")
	if got != ctx {
		t.Error("disabled StartSpan returned a derived context")
	}
	if sp != nil {
		t.Fatal("disabled StartSpan returned a non-nil span")
	}
	// nil-span methods must be callable.
	sp.SetExtra(1)
	sp.SetNote("n")
	sp.End()

	if allocs := testing.AllocsPerRun(100, func() {
		_, s := StartSpan(ctx, "hot")
		s.End()
	}); allocs != 0 {
		t.Errorf("disabled StartSpan allocates %.1f per call, want 0", allocs)
	}
}

// TestSpanTreeSnapshot exercises the whole lifecycle: nested spans land as
// a tree, siblings under the right parent, extras and notes published at
// End, and a still-open span reports so-far duration with Unfinished set.
func TestSpanTreeSnapshot(t *testing.T) {
	tr := NewTrace("t1")
	defer tr.Unref()
	if !Enabled() {
		t.Fatal("Enabled() = false with a live trace")
	}
	ctx := ContextWithTrace(context.Background(), tr)

	ctx, root := StartSpan(ctx, "request")
	cctx, compute := StartSpan(ctx, "compute")
	_, draw := StartSpan(cctx, "draw")
	draw.SetExtra(64)
	draw.SetNote("stream=3")
	draw.End()
	compute.End()
	_, open := StartSpan(ctx, "flight") // sibling of compute, never ended
	_ = open
	root.End()

	js := tr.Snapshot()
	if js.ID != "t1" {
		t.Errorf("ID = %q", js.ID)
	}
	if len(js.Spans) != 1 || js.Spans[0].Name != "request" {
		t.Fatalf("want one root span 'request', got %+v", js.Spans)
	}
	r := js.Spans[0]
	if len(r.Children) != 2 {
		t.Fatalf("root has %d children, want compute+flight", len(r.Children))
	}
	comp, flight := r.Children[0], r.Children[1]
	if comp.Name != "compute" || flight.Name != "flight" {
		t.Fatalf("children = %q, %q", comp.Name, flight.Name)
	}
	if len(comp.Children) != 1 || comp.Children[0].Name != "draw" {
		t.Fatalf("compute children = %+v", comp.Children)
	}
	d := comp.Children[0]
	if d.Extra != 64 || d.Note != "stream=3" {
		t.Errorf("draw extra=%d note=%q", d.Extra, d.Note)
	}
	if !flight.Unfinished {
		t.Error("open span not marked Unfinished")
	}
	if flight.DurUs <= 0 {
		t.Error("open span has no so-far duration")
	}
	if r.Unfinished || r.DurUs <= 0 {
		t.Errorf("root: unfinished=%v dur=%v", r.Unfinished, r.DurUs)
	}
}

// TestSpanEndIdempotent pins the first-End-wins contract serveTimed's
// defensive root.End relies on.
func TestSpanEndIdempotent(t *testing.T) {
	tr := NewTrace("")
	defer tr.Unref()
	ctx := ContextWithTrace(context.Background(), tr)
	_, sp := StartSpan(ctx, "s")
	sp.End()
	end := sp.end
	time.Sleep(time.Millisecond)
	sp.End()
	if sp.end != end {
		t.Error("second End moved the end timestamp")
	}
}

// TestSpanArenaCap claims past maxSpans: excess claims return nil spans,
// are counted as dropped, and never corrupt the arena.
func TestSpanArenaCap(t *testing.T) {
	tr := NewTrace("")
	defer tr.Unref()
	ctx := ContextWithTrace(context.Background(), tr)
	for i := 0; i < maxSpans; i++ {
		_, sp := StartSpan(ctx, "s")
		if sp == nil {
			t.Fatalf("span %d nil before the cap", i)
		}
		sp.End()
	}
	for i := 0; i < 7; i++ {
		if _, sp := StartSpan(ctx, "over"); sp != nil {
			t.Fatal("span past the cap is non-nil")
		}
	}
	js := tr.Snapshot()
	if js.Dropped != 7 {
		t.Errorf("Dropped = %d, want 7", js.Dropped)
	}
	if len(js.Spans) != maxSpans {
		t.Errorf("rendered %d roots, want %d", len(js.Spans), maxSpans)
	}
}

// TestTransplant moves a trace onto a fresh context the way a detached
// cache flight does: spans started under the transplanted context must
// attribute to the original trace, parented under the span current at
// transplant time.
func TestTransplant(t *testing.T) {
	tr := NewTrace("")
	ctx := ContextWithTrace(context.Background(), tr)
	ctx, root := StartSpan(ctx, "request")

	fctx, ftr := Transplant(context.Background(), ctx)
	if ftr != tr {
		t.Fatal("Transplant returned a different trace")
	}
	ftr.Ref()
	_, child := StartSpan(fctx, "flight")
	child.End()
	root.End()
	tr.Unref() // handler's reference

	js := ftr.Snapshot() // flight's reference still holds the arena
	if len(js.Spans) != 1 || len(js.Spans[0].Children) != 1 || js.Spans[0].Children[0].Name != "flight" {
		t.Fatalf("flight span not parented under request: %+v", js.Spans)
	}
	ftr.Unref()

	// No trace on src: dst passes through untouched.
	bg := context.Background()
	dst, got := Transplant(bg, context.Background())
	if dst != bg || got != nil {
		t.Error("Transplant invented a trace")
	}
}

// TestTracePoolRecycle pins that Unref clears and pools the arena: a
// recycled trace starts empty regardless of what the previous request
// recorded.
func TestTracePoolRecycle(t *testing.T) {
	tr := NewTrace("old")
	ctx := ContextWithTrace(context.Background(), tr)
	_, sp := StartSpan(ctx, "stale")
	sp.End()
	tr.Unref()

	tr2 := NewTrace("new")
	defer tr2.Unref()
	js := tr2.Snapshot()
	if len(js.Spans) != 0 || js.Dropped != 0 || js.ID != "new" {
		t.Errorf("recycled trace not clean: %+v", js)
	}
}

// BenchmarkStartSpanDisabled pins the disabled-path cost the package doc
// advertises: one atomic load and a return.
func BenchmarkStartSpanDisabled(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := StartSpan(ctx, "hot")
		sp.End()
	}
}

// BenchmarkStartSpan is the enabled path: arena claim, two clock reads,
// one context allocation.
func BenchmarkStartSpan(b *testing.B) {
	tr := NewTrace("")
	defer tr.Unref()
	ctx := ContextWithTrace(context.Background(), tr)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if i%maxSpans == 0 { // stay inside the arena
			tr.n.Store(0)
		}
		_, sp := StartSpan(ctx, "hot")
		sp.End()
	}
}
