package loadgen

import "fmt"

// SLO is the pass/fail contract evaluated over one run's Report. Zero
// fields are unchecked, so a mix can gate only the dimensions it cares
// about. Latency objectives apply to served responses (200s, exact or
// degraded) — under heavy shedding the rejection fast path is
// microseconds-cheap and would otherwise mask a slow serving path.
type SLO struct {
	// P99Ms / P999Ms bound the served-latency quantiles, in milliseconds.
	P99Ms  float64 `json:"p99_ms,omitempty"`
	P999Ms float64 `json:"p999_ms,omitempty"`
	// MaxShedRate bounds the fraction of requests answered 429 (admission
	// shed or quota).
	MaxShedRate float64 `json:"max_shed_rate,omitempty"`
	// MaxErrorRate bounds the fraction answered 504, 499, or any other
	// non-contract status/transport failure.
	MaxErrorRate float64 `json:"max_error_rate,omitempty"`
}

// Check returns the list of violated objectives, empty on a clean pass.
func (s SLO) Check(r *Report) []string {
	var v []string
	if s.P99Ms > 0 && r.P99Ms > s.P99Ms {
		v = append(v, fmt.Sprintf("served p99 %.2fms > %.0fms", r.P99Ms, s.P99Ms))
	}
	if s.P999Ms > 0 && r.P999Ms > s.P999Ms {
		v = append(v, fmt.Sprintf("served p999 %.2fms > %.0fms", r.P999Ms, s.P999Ms))
	}
	if s.MaxShedRate > 0 && r.ShedRate > s.MaxShedRate {
		v = append(v, fmt.Sprintf("shed rate %.4f > %.4f", r.ShedRate, s.MaxShedRate))
	}
	if s.MaxErrorRate > 0 && r.ErrorRate > s.MaxErrorRate {
		v = append(v, fmt.Sprintf("error rate %.4f > %.4f", r.ErrorRate, s.MaxErrorRate))
	}
	return v
}
