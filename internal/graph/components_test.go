package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConnectedComponentsSingle(t *testing.T) {
	g := Cycle(5)
	labels, sizes, count := ConnectedComponents(g)
	if count != 1 {
		t.Fatalf("count = %d, want 1", count)
	}
	if sizes[0] != 5 {
		t.Errorf("size = %d, want 5", sizes[0])
	}
	for u, l := range labels {
		if l != 0 {
			t.Errorf("label[%d] = %d, want 0", u, l)
		}
	}
}

func TestConnectedComponentsMultiple(t *testing.T) {
	b := NewBuilder(7)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	// 5, 6 isolated
	g := b.Build()
	labels, sizes, count := ConnectedComponents(g)
	if count != 4 {
		t.Fatalf("count = %d, want 4", count)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Error("component {0,1,2} split")
	}
	if labels[3] != labels[4] {
		t.Error("component {3,4} split")
	}
	if labels[5] == labels[6] {
		t.Error("isolated nodes merged")
	}
	var total int64
	for _, s := range sizes {
		total += s
	}
	if total != 7 {
		t.Errorf("sizes sum = %d, want 7", total)
	}
}

func TestLargestComponent(t *testing.T) {
	b := NewBuilder(10)
	// component A: 0..5 path (6 nodes), component B: 6..9 cycle (4 nodes)
	for i := 0; i < 5; i++ {
		b.AddEdge(Node(i), Node(i+1))
	}
	b.AddEdge(6, 7)
	b.AddEdge(7, 8)
	b.AddEdge(8, 9)
	b.AddEdge(9, 6)
	g := b.Build()
	lcc, ids := LargestComponent(g)
	if lcc.NumNodes() != 6 {
		t.Fatalf("lcc n = %d, want 6", lcc.NumNodes())
	}
	if lcc.NumEdges() != 5 {
		t.Fatalf("lcc m = %d, want 5", lcc.NumEdges())
	}
	for i, old := range ids {
		if old != Node(i) {
			t.Errorf("ids[%d] = %d, want %d", i, old, i)
		}
	}
}

func TestLargestComponentAlreadyConnected(t *testing.T) {
	g := Cycle(8)
	lcc, ids := LargestComponent(g)
	if lcc != g {
		t.Error("connected graph should be returned as-is")
	}
	if len(ids) != 8 || ids[3] != 3 {
		t.Error("identity mapping expected")
	}
}

func TestSubgraphInduced(t *testing.T) {
	g := Complete(5)
	sub, ids := Subgraph(g, []Node{4, 1, 3, 1}) // unsorted, with duplicate
	if sub.NumNodes() != 3 {
		t.Fatalf("n = %d, want 3", sub.NumNodes())
	}
	if sub.NumEdges() != 3 {
		t.Fatalf("m = %d, want 3 (triangle)", sub.NumEdges())
	}
	want := []Node{1, 3, 4}
	for i, w := range want {
		if ids[i] != w {
			t.Errorf("ids[%d] = %d, want %d", i, ids[i], w)
		}
	}
}

func TestSubgraphDropsCrossEdges(t *testing.T) {
	g := Path(6)
	sub, _ := Subgraph(g, []Node{0, 1, 4, 5})
	if sub.NumEdges() != 2 {
		t.Errorf("m = %d, want 2 ({0,1} and {4,5})", sub.NumEdges())
	}
}

// Property: component sizes always sum to n, and nodes in the same component
// are mutually reachable via BFS.
func TestComponentsQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		g := ErdosRenyi(n, int64(rng.Intn(2*n)), seed)
		labels, sizes, count := ConnectedComponents(g)
		var total int64
		for _, s := range sizes {
			total += s
		}
		if total != int64(n) || count != len(sizes) {
			return false
		}
		dist := BFSDistances(g, 0, nil)
		for v := 0; v < n; v++ {
			reachable := dist[v] >= 0
			sameComp := labels[v] == labels[0]
			if reachable != sameComp {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
