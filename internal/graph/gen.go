package graph

import (
	"math/rand"
)

// Deterministic synthetic generators. Every generator takes an explicit seed
// so experiments and tests are reproducible. All generators return simple
// undirected graphs (Builder drops duplicates and self-loops).

// Path returns the path graph 0-1-...-(n-1).
func Path(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(Node(i), Node(i+1))
	}
	return b.Build()
}

// Cycle returns the cycle graph on n nodes (n >= 3 for a proper cycle).
func Cycle(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(Node(i), Node(i+1))
	}
	if n >= 3 {
		b.AddEdge(Node(n-1), 0)
	}
	return b.Build()
}

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(Node(i), Node(j))
		}
	}
	return b.Build()
}

// Star returns the star graph with center 0 and n-1 leaves.
func Star(n int) *Graph {
	b := NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(0, Node(i))
	}
	return b.Build()
}

// Barbell returns two K_k cliques joined by a path of pathLen edges. It is a
// classic high-betweenness stress shape: every inter-clique shortest path
// crosses the bridge nodes, and each clique is a separate bi-component.
func Barbell(k, pathLen int) *Graph {
	b := NewBuilder(2*k + pathLen - 1)
	addClique := func(start int) {
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				b.AddEdge(Node(start+i), Node(start+j))
			}
		}
	}
	addClique(0)
	// Path from node k-1 through fresh nodes to the second clique's node 0.
	prev := Node(k - 1)
	next := Node(2 * k) // first fresh path node
	for i := 0; i < pathLen-1; i++ {
		b.AddEdge(prev, next)
		prev = next
		next++
	}
	b.AddEdge(prev, Node(k)) // attach to second clique
	addClique(k)
	return b.Build()
}

// RandomTree returns a uniformly random labelled tree on n nodes via a random
// attachment process (each new node attaches to a uniform earlier node).
func RandomTree(n int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(Node(i), Node(rng.Intn(i)))
	}
	return b.Build()
}

// ErdosRenyi returns a G(n, m)-style random graph with approximately m
// distinct edges, sampled uniformly with rejection.
func ErdosRenyi(n int, m int64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[int64]struct{}, m)
	b := NewBuilder(n)
	maxEdges := int64(n) * int64(n-1) / 2
	if m > maxEdges {
		m = maxEdges
	}
	for int64(len(seen)) < m {
		u := Node(rng.Intn(n))
		v := Node(rng.Intn(n))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := int64(u)*int64(n) + int64(v)
		if _, ok := seen[key]; ok {
			continue
		}
		seen[key] = struct{}{}
		b.AddEdge(u, v)
	}
	b.SetNumNodes(n)
	return b.Build()
}

// BarabasiAlbert returns a preferential-attachment graph: starting from a
// small clique of k+1 nodes, each new node attaches to k existing nodes
// chosen proportionally to degree (by uniform sampling of edge endpoints).
// The result is a connected scale-free graph with roughly n*k edges.
func BarabasiAlbert(n, k int, seed int64) *Graph {
	if k < 1 {
		k = 1
	}
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	// endpoint pool: each edge contributes both endpoints, so sampling a
	// uniform pool element is degree-proportional sampling.
	pool := make([]Node, 0, 2*int(n)*k)
	seedN := k + 1
	if seedN > n {
		seedN = n
	}
	for i := 0; i < seedN; i++ {
		for j := i + 1; j < seedN; j++ {
			b.AddEdge(Node(i), Node(j))
			pool = append(pool, Node(i), Node(j))
		}
	}
	targets := make([]Node, 0, k)
	for v := seedN; v < n; v++ {
		targets = targets[:0]
		for len(targets) < k {
			cand := pool[rng.Intn(len(pool))]
			dup := false
			for _, t := range targets {
				if t == cand {
					dup = true
					break
				}
			}
			if !dup {
				targets = append(targets, cand)
			}
		}
		for _, t := range targets {
			b.AddEdge(Node(v), t)
			pool = append(pool, Node(v), t)
		}
	}
	b.SetNumNodes(n)
	return b.Build()
}

// PowerLawCluster returns a Holme–Kim style graph: preferential attachment
// with probability p of closing a triangle after each attachment, yielding a
// scale-free graph with high clustering (a closer proxy for social networks
// such as Flickr/Orkut than plain BA).
func PowerLawCluster(n, k int, p float64, seed int64) *Graph {
	if k < 1 {
		k = 1
	}
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	pool := make([]Node, 0, 2*int(n)*k)
	seen := make(map[int64]struct{})
	adj := make([][]Node, n)
	key := func(u, v Node) int64 {
		if u > v {
			u, v = v, u
		}
		return int64(u)*int64(n) + int64(v)
	}
	link := func(u, v Node) {
		if u == v {
			return
		}
		if _, dup := seen[key(u, v)]; dup {
			return
		}
		seen[key(u, v)] = struct{}{}
		adj[u] = append(adj[u], v)
		adj[v] = append(adj[v], u)
		b.AddEdge(u, v)
		pool = append(pool, u, v)
	}
	seedN := k + 1
	if seedN > n {
		seedN = n
	}
	for i := 0; i < seedN; i++ {
		for j := i + 1; j < seedN; j++ {
			link(Node(i), Node(j))
		}
	}
	for v := seedN; v < n; v++ {
		var last Node = -1
		added := 0
		for added < k {
			var t Node
			if last >= 0 && rng.Float64() < p && len(adj[last]) > 0 {
				// triad formation: pick a random neighbor of the last target
				t = adj[last][rng.Intn(len(adj[last]))]
			} else {
				t = pool[rng.Intn(len(pool))]
			}
			if t == Node(v) {
				continue
			}
			if _, dup := seen[key(Node(v), t)]; dup {
				continue
			}
			link(Node(v), t)
			last = t
			added++
		}
	}
	b.SetNumNodes(n)
	return b.Build()
}

// WattsStrogatz returns a small-world ring lattice on n nodes where each node
// connects to its k nearest ring neighbors on each side and each edge is
// rewired with probability beta.
func WattsStrogatz(n, k int, beta float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := 1; j <= k; j++ {
			v := (i + j) % n
			if rng.Float64() < beta {
				v = rng.Intn(n)
				for v == i {
					v = rng.Intn(n)
				}
			}
			b.AddEdge(Node(i), Node(v))
		}
	}
	b.SetNumNodes(n)
	return b.Build()
}

// Grid2D returns the rows x cols grid graph. Node (r, c) has id r*cols + c.
func Grid2D(rows, cols int) *Graph {
	b := NewBuilder(rows * cols)
	id := func(r, c int) Node { return Node(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return b.Build()
}

// RoadNetwork returns a perturbed grid that mimics a road network: a rows x
// cols lattice with a fraction drop of its edges removed and a few diagonal
// shortcuts added, then restricted to remain connected (removed edges whose
// deletion would disconnect the endpoints' neighborhoods are kept with high
// probability by construction of the spanning grid skeleton). The embedded
// coordinate of node id is (id/cols, id%cols); see Coordinates.
//
// Road networks have very large diameter and an abundance of low-betweenness
// nodes, the regime where the paper's USA-road experiments live.
func RoadNetwork(rows, cols int, drop float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(rows * cols)
	id := func(r, c int) Node { return Node(r*cols + c) }
	// Spanning skeleton: all horizontal edges of row 0 and all vertical
	// edges, guaranteeing connectivity regardless of drops.
	for c := 0; c+1 < cols; c++ {
		b.AddEdge(id(0, c), id(0, c+1))
	}
	for r := 0; r+1 < rows; r++ {
		for c := 0; c < cols; c++ {
			b.AddEdge(id(r, c), id(r+1, c))
		}
	}
	// Remaining horizontal edges are dropped with probability drop.
	for r := 1; r < rows; r++ {
		for c := 0; c+1 < cols; c++ {
			if rng.Float64() >= drop {
				b.AddEdge(id(r, c), id(r, c+1))
			}
		}
	}
	// Sparse diagonal shortcuts (~1% of cells) mimic highways/bridges.
	for r := 0; r+1 < rows; r++ {
		for c := 0; c+1 < cols; c++ {
			if rng.Float64() < 0.01 {
				b.AddEdge(id(r, c), id(r+1, c+1))
			}
		}
	}
	return b.Build()
}

// GridCoord returns the (row, col) coordinate of node id in a grid or road
// network generated with the given number of columns.
func GridCoord(id Node, cols int) (row, col int) {
	return int(id) / cols, int(id) % cols
}
