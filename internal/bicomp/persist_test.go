package bicomp

import (
	"bytes"
	"encoding/binary"
	"hash/crc64"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"testing"

	"saphyra/internal/graph"
)

// reseal recomputes the crc64 trailer over a mutated file image so content
// mutations reach the lazy validators instead of tripping the open-time
// checksum — the shape of corruption a buggy writer (not bit rot) produces.
func reseal(b []byte) {
	binary.NativeEndian.PutUint64(b[len(b)-8:], crc64.Checksum(b[:len(b)-8], crcTable))
}

func roundTrip(t *testing.T, v *BlockCSR) (*BlockCSR, func()) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "view.sbcv")
	if err := v.WriteFile(path, nil); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	m, err := OpenMapped(path)
	if err != nil {
		t.Fatalf("OpenMapped: %v", err)
	}
	return m.View, func() {
		if err := m.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}
}

func TestPersistRoundTripBitwise(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"ba", graph.BarabasiAlbert(500, 3, 11)},
		{"road", graph.RoadNetwork(15, 15, 0.1, 3)},
		{"tree", graph.RandomTree(200, 5)},
		{"path", graph.Path(4)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			v := buildView(t, tc.g)
			got, done := roundTrip(t, v)
			defer done()

			if got.D != nil || got.O != nil {
				t.Error("mapped view must not carry a decomposition")
			}
			if err := got.Validate(); err != nil {
				t.Fatalf("mapped view invalid: %v", err)
			}
			if !slices.Equal(got.Nbr, v.Nbr) || !slices.Equal(got.RNbr, v.RNbr) ||
				!slices.Equal(got.NbrRun, v.NbrRun) || !slices.Equal(got.Mate, v.Mate) ||
				!slices.Equal(got.RunOff, v.RunOff) || !slices.Equal(got.RunBlock, v.RunBlock) ||
				!slices.Equal(got.RunR, v.RunR) || !slices.Equal(got.RunStart, v.RunStart) ||
				!slices.Equal(got.RunDegSum, v.RunDegSum) {
				t.Fatal("mapped arrays differ from the in-memory build")
			}
			wantOff, wantAdj := v.G.CSR()
			gotOff, gotAdj := got.G.CSR()
			if !slices.Equal(gotOff, wantOff) || !slices.Equal(gotAdj, wantAdj) {
				t.Fatal("embedded graph CSR differs")
			}
		})
	}
}

func TestPersistWriteToDeterministic(t *testing.T) {
	v := buildView(t, graph.BarabasiAlbert(300, 2, 7))
	var a, b bytes.Buffer
	if _, err := v.WriteTo(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := v.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("WriteTo is not deterministic")
	}
	// In-memory builds carry D and O, so WriteTo always emits the
	// decomposition and out-reach sections.
	want := persistSize(int64(v.G.NumNodes()), v.G.NumEdges(), int64(len(v.RunBlock)),
		int64(len(v.D.CompSize)), false, true, true, true)
	if int64(a.Len()) != want {
		t.Fatalf("written %d bytes, persistSize says %d", a.Len(), want)
	}
}

func TestOpenMappedRejectsCorruption(t *testing.T) {
	v := buildView(t, graph.BarabasiAlbert(100, 2, 3))
	dir := t.TempDir()
	path := filepath.Join(dir, "view.sbcv")
	if err := v.WriteFile(path, nil); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string, mutate func([]byte) []byte, wantSub string) {
		t.Helper()
		bad := mutate(append([]byte(nil), good...))
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenMapped(p); err == nil {
			t.Errorf("%s: corruption accepted", name)
		} else if wantSub != "" && !strings.Contains(err.Error(), wantSub) {
			t.Errorf("%s: error %q does not mention %q", name, err, wantSub)
		}
	}
	check("magic", func(b []byte) []byte { b[0] ^= 0xff; return b }, "magic")
	check("version", func(b []byte) []byte { b[8]++; return b }, "version")
	check("endian", func(b []byte) []byte { b[12], b[15] = b[15], b[12]; return b }, "endianness")
	check("truncated", func(b []byte) []byte { return b[:len(b)-8] }, "truncated")
	check("short", func(b []byte) []byte { return b[:20] }, "too short")
	check("dims", func(b []byte) []byte { b[23] = 0xff; return b }, "")

	if _, err := OpenMapped(filepath.Join(dir, "missing.sbcv")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestGroupedAdjMatchesNeighborSets(t *testing.T) {
	g := graph.BarabasiAlbert(300, 3, 9)
	v := buildView(t, g)
	adj := GroupedAdj{V: v}
	if adj.NumNodes() != g.NumNodes() {
		t.Fatal("NumNodes mismatch")
	}
	var buf []graph.Node
	for u := graph.Node(0); int(u) < g.NumNodes(); u++ {
		buf = append(buf[:0], adj.Neighbors(u)...)
		slices.Sort(buf)
		if !slices.Equal(buf, g.Neighbors(u)) {
			t.Fatalf("node %d: grouped neighbors are not a permutation", u)
		}
	}
	// BFS over the grouped order must give identical distances.
	d1 := graph.BFSDistances(g, 0, nil)
	d2 := graph.BFSDistancesAdj(adj, 0, nil)
	if !slices.Equal(d1, d2) {
		t.Fatal("BFS distances differ between sorted and grouped adjacency")
	}
}

func TestPersistIDsRoundTrip(t *testing.T) {
	g := graph.BarabasiAlbert(120, 2, 4)
	v := buildView(t, g)
	ids := make([]int64, g.NumNodes())
	for i := range ids {
		ids[i] = int64(i)*10 + 7 // a sparse external id space
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "ids.sbcv")
	if err := v.WriteFile(path, ids); err != nil {
		t.Fatal(err)
	}
	m, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if !slices.Equal(m.IDs, ids) {
		t.Fatal("embedded id map did not round-trip")
	}
	if err := m.View.Validate(); err != nil {
		t.Fatal(err)
	}

	// Mismatched id-map length must be rejected at write time.
	if err := v.WriteFile(filepath.Join(dir, "bad.sbcv"), ids[:10]); err == nil {
		t.Fatal("short id map accepted")
	}

	// A view written without ids reports none.
	noIDs := filepath.Join(dir, "noids.sbcv")
	if err := v.WriteFile(noIDs, nil); err != nil {
		t.Fatal(err)
	}
	m2, err := OpenMapped(noIDs)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if m2.IDs != nil {
		t.Fatal("unexpected id map")
	}
}

func TestOpenMappedRejectsUnknownFlags(t *testing.T) {
	v := buildView(t, graph.Path(5))
	path := filepath.Join(t.TempDir(), "flags.sbcv")
	if err := v.WriteFile(path, nil); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[40] |= 0x10 // set an undefined flag bit (0x01 = ids, 0x02 = out-reach, 0x04 = checksum, 0x08 = decomposition)
	reseal(b)
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenMapped(path); err == nil || !strings.Contains(err.Error(), "flags") {
		t.Fatalf("unknown flags accepted: %v", err)
	}
}

// legacyWrite serializes v without the out-reach and decomposition
// sections, producing the byte layout a pre-section build wrote (D, O and
// the flat mirrors are stripped for the write and restored after).
func legacyWrite(t *testing.T, v *BlockCSR, path string) {
	t.Helper()
	d, o, df, rf := v.D, v.O, v.dFlat, v.rFlat
	v.D, v.O, v.dFlat, v.rFlat = nil, nil, nil, nil
	defer func() { v.D, v.O, v.dFlat, v.rFlat = d, o, df, rf }()
	if err := v.WriteFile(path, nil); err != nil {
		t.Fatal(err)
	}
}

func sameOutReach(a, b *OutReach) bool {
	if len(a.R) != len(b.R) || a.WTotal != b.WTotal ||
		!slices.Equal(a.S, b.S) || !slices.Equal(a.Q, b.Q) || !slices.Equal(a.W, b.W) {
		return false
	}
	for i := range a.R {
		if !slices.Equal(a.R[i], b.R[i]) {
			return false
		}
	}
	if len(a.rNode) != len(b.rNode) {
		return false
	}
	for i := range a.rNode {
		if !slices.Equal(a.rNode[i], b.rNode[i]) {
			return false
		}
	}
	return true
}

// TestPersistOutReachRoundTrip: the out-reach section (flag bit 1) lets
// EnsureDecomposition reconstruct the OutReach tables from the file without
// the NewOutReach DP, bitwise-identical to the in-memory build; files
// without the section (legacy layout) keep working through the recompute
// fallback.
func TestPersistOutReachRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"ba", graph.BarabasiAlbert(400, 3, 13)},
		{"road", graph.RoadNetwork(12, 12, 0.1, 5)},
		{"tree", graph.RandomTree(150, 9)}, // every internal node is a cutpoint
	} {
		t.Run(tc.name, func(t *testing.T) {
			v := buildView(t, tc.g)
			dir := t.TempDir()

			path := filepath.Join(dir, "v2.sbcv")
			if err := v.WriteFile(path, nil); err != nil {
				t.Fatal(err)
			}
			m, err := OpenMapped(path)
			if err != nil {
				t.Fatal(err)
			}
			defer m.Close()
			if m.View.rFlat == nil {
				t.Fatal("mapped view carries no out-reach section")
			}
			if !slices.Equal(m.View.rFlat, v.O.FlatR()) {
				t.Fatal("serialized out-reach section differs from FlatR")
			}
			_, o := m.View.EnsureDecomposition()
			if !sameOutReach(o, v.O) {
				t.Fatal("out-reach reconstructed from the section differs from the in-memory build")
			}

			legacy := filepath.Join(dir, "v1.sbcv")
			legacyWrite(t, v, legacy)
			if st, _ := os.Stat(legacy); st.Size() >= mustSize(t, path) {
				t.Fatal("legacy file is not smaller than the sectioned file")
			}
			ml, err := OpenMapped(legacy)
			if err != nil {
				t.Fatalf("legacy layout rejected: %v", err)
			}
			defer ml.Close()
			if ml.View.rFlat != nil {
				t.Fatal("legacy file decoded with an out-reach section")
			}
			_, ol := ml.View.EnsureDecomposition()
			if !sameOutReach(ol, v.O) {
				t.Fatal("fallback recompute differs from the in-memory build")
			}
		})
	}
}

func mustSize(t *testing.T, path string) int64 {
	t.Helper()
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return st.Size()
}

// TestPersistOutReachCorruptSectionFallsBack: garbage in the out-reach
// section must not poison estimates — NewOutReachFromFlat rejects it
// (Claim 9) and EnsureDecomposition falls back to the recomputation.
func TestPersistOutReachCorruptSectionFallsBack(t *testing.T) {
	g := graph.RandomTree(100, 4)
	v := buildView(t, g)
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.sbcv")
	if err := v.WriteFile(path, nil); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	runs := int64(len(v.RunBlock))
	// The out-reach section sits before the decomposition section, which
	// sits before the checksum trailer (no ids section was written). Reseal
	// so the corruption models a buggy writer rather than bit rot — the
	// open-time checksum must not be the only defense.
	dsz := decompSectionSize(int64(v.G.NumNodes()), v.G.NumEdges(), int64(len(v.D.CompSize)))
	sectionOff := int64(len(b)) - 8 - dsz - runs*8
	b[sectionOff] ^= 0x5a
	reseal(b)
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := NewOutReachFromFlat(v.D, make([]int64, runs+1)); err == nil {
		t.Fatal("length mismatch accepted")
	}

	m, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err) // content corruption is caught lazily, not at open
	}
	defer m.Close()
	if _, err := NewOutReachFromFlat(v.D, m.View.rFlat); err == nil {
		t.Fatal("corrupt out-reach section accepted")
	}
	_, o := m.View.EnsureDecomposition()
	if !sameOutReach(o, v.O) {
		t.Fatal("fallback after corrupt section differs from the in-memory build")
	}
}

func sameDecomposition(a, b *Decomposition) bool {
	if a.NumBlocks != b.NumBlocks ||
		!slices.Equal(a.EdgeBlock, b.EdgeBlock) ||
		!slices.Equal(a.IsCut, b.IsCut) ||
		!slices.Equal(a.CompLabel, b.CompLabel) ||
		!slices.Equal(a.CompSize, b.CompSize) ||
		len(a.Blocks) != len(b.Blocks) || len(a.NodeBlocks) != len(b.NodeBlocks) {
		return false
	}
	for i := range a.Blocks {
		if !slices.Equal(a.Blocks[i], b.Blocks[i]) {
			return false
		}
	}
	for i := range a.NodeBlocks {
		if !slices.Equal(a.NodeBlocks[i], b.NodeBlocks[i]) {
			return false
		}
	}
	return true
}

// TestPersistDecompRoundTrip: the decomposition section (flag bit 3) lets
// EnsureDecomposition reconstruct the full Decomposition from the file
// without rerunning the O(n+m) Decompose DFS, bitwise-identical to the
// in-memory build — the fleet cold-start path; files without the section
// keep working through the recompute fallback.
func TestPersistDecompRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"ba", graph.BarabasiAlbert(400, 3, 13)},
		{"road", graph.RoadNetwork(12, 12, 0.1, 5)},
		{"tree", graph.RandomTree(150, 9)}, // every internal node is a cutpoint
		{"path", graph.Path(4)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			v := buildView(t, tc.g)
			dir := t.TempDir()

			path := filepath.Join(dir, "v3.sbcv")
			if err := v.WriteFile(path, nil); err != nil {
				t.Fatal(err)
			}
			m, err := OpenMapped(path)
			if err != nil {
				t.Fatal(err)
			}
			defer m.Close()
			if m.View.dFlat == nil {
				t.Fatal("mapped view carries no decomposition section")
			}
			d, err := NewDecompositionFromView(m.View)
			if err != nil {
				t.Fatalf("NewDecompositionFromView: %v", err)
			}
			if !sameDecomposition(d, v.D) {
				t.Fatal("decomposition reconstructed from the section differs from the in-memory build")
			}
			// The reconstructed decomposition must also satisfy the
			// out-reach section's Claim 9 check and the full cross-check.
			dd, oo := m.View.EnsureDecomposition()
			if !sameDecomposition(dd, v.D) || !sameOutReach(oo, v.O) {
				t.Fatal("EnsureDecomposition over both sections differs from the in-memory build")
			}
			if err := m.View.Validate(); err != nil {
				t.Fatalf("cross-check of reconstructed tables: %v", err)
			}

			legacy := filepath.Join(dir, "v2.sbcv")
			legacyWrite(t, v, legacy)
			ml, err := OpenMapped(legacy)
			if err != nil {
				t.Fatalf("sectionless layout rejected: %v", err)
			}
			defer ml.Close()
			if ml.View.dFlat != nil {
				t.Fatal("sectionless file decoded with a decomposition section")
			}
			dl, _ := ml.View.EnsureDecomposition()
			if !sameDecomposition(dl, v.D) {
				t.Fatal("fallback recompute differs from the in-memory build")
			}
		})
	}
}

// TestPersistDecompCorruptSectionFallsBack: garbage in the decomposition
// section must not poison the tables — NewDecompositionFromView rejects it
// against the structurally-verified run arrays and EnsureDecomposition falls
// back to the Decompose recomputation. A mutated prelude (which changes the
// implied section size) is caught at open time.
func TestPersistDecompCorruptSectionFallsBack(t *testing.T) {
	g := graph.RandomTree(100, 4)
	v := buildView(t, g)
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.sbcv")
	if err := v.WriteFile(path, nil); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// The decomposition section sits right before the checksum trailer (no
	// ids section was written); its EdgeBlock table starts 16 bytes in,
	// after the numBlocks/numComps prelude.
	dsz := decompSectionSize(int64(g.NumNodes()), g.NumEdges(), int64(len(v.D.CompSize)))
	sectionOff := int64(len(good)) - 8 - dsz

	b := append([]byte(nil), good...)
	b[sectionOff+16] ^= 0x5a // first EdgeBlock entry: now disagrees with the run layout
	reseal(b)
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err) // content corruption is caught lazily, not at open
	}
	defer m.Close()
	if _, err := NewDecompositionFromView(m.View); err == nil {
		t.Fatal("corrupt decomposition section accepted")
	}
	d, o := m.View.EnsureDecomposition()
	if !sameDecomposition(d, v.D) || !sameOutReach(o, v.O) {
		t.Fatal("fallback after corrupt section differs from the in-memory build")
	}

	// Mutating the prelude changes the section size the header implies:
	// rejected by the open-time size check, not decoded.
	b2 := append([]byte(nil), good...)
	b2[sectionOff+8]++ // numComps low byte
	reseal(b2)
	badPrelude := filepath.Join(dir, "prelude.sbcv")
	if err := os.WriteFile(badPrelude, b2, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenMapped(badPrelude); err == nil {
		t.Fatal("mutated decomposition prelude accepted")
	}

	// An out-of-range component label passes the size check but fails the
	// lazy recount validation.
	b3 := append([]byte(nil), good...)
	labelOff := sectionOff + 16 + 2*g.NumEdges()*4 // CompLabel follows EdgeBlock
	binary.NativeEndian.PutUint32(b3[labelOff:], uint32(len(v.D.CompSize)+7))
	reseal(b3)
	badLabel := filepath.Join(dir, "label.sbcv")
	if err := os.WriteFile(badLabel, b3, 0o644); err != nil {
		t.Fatal(err)
	}
	ml, err := OpenMapped(badLabel)
	if err != nil {
		t.Fatal(err)
	}
	defer ml.Close()
	if _, err := NewDecompositionFromView(ml.View); err == nil {
		t.Fatal("out-of-range component label accepted")
	}
	dl, _ := ml.View.EnsureDecomposition()
	if !sameDecomposition(dl, v.D) {
		t.Fatal("fallback after corrupt labels differs from the in-memory build")
	}
}
