package kpath

import (
	"context"

	"math"
	"testing"

	"saphyra/internal/graph"
	"saphyra/internal/testutil"
)

func TestPartitionedMatchesExact(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		g := testutil.RandomConnectedGraph(15, 10, seed)
		truth := Exact(g, 3)
		var a []graph.Node
		for v := 0; v < 15; v += 2 {
			a = append(a, graph.Node(v))
		}
		res, err := EstimatePartitioned(context.Background(), g, a, Options{K: 3, Epsilon: 0.05, Delta: 0.01, Seed: seed, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range res.Nodes {
			if math.Abs(res.KPath[i]-truth[v]) > 0.05 {
				t.Errorf("seed %d node %d: est %g truth %g", seed, v, res.KPath[i], truth[v])
			}
		}
	}
}

func TestPartitionedExactPhaseClosedForm(t *testing.T) {
	// Star(5), k=2, target = center: first-step visit probability of the
	// center is (1/n) * sum_{leaves} 1/1 = 4/5; lhat = (1/(n k)) * 4 = 0.4.
	g := graph.Star(5)
	sp := &kpathSpace{g: g, k: 2, nodes: []graph.Node{0}, aIndex: []int32{0, -1, -1, -1, -1}, dim: 1}
	lambdaHat, exact, _ := sp.ExactPhase(context.Background())
	if lambdaHat != 0.5 {
		t.Errorf("lambdaHat = %g, want 1/k = 0.5", lambdaHat)
	}
	if math.Abs(exact[0]-0.4) > 1e-12 {
		t.Errorf("lhat(center) = %g, want 0.4", exact[0])
	}
}

func TestPartitionedKOne(t *testing.T) {
	// k = 1: the exact subspace is the whole space; no sampling, exact
	// answers.
	g := graph.Star(6)
	truth := Exact(g, 1)
	var a []graph.Node
	for v := 0; v < 6; v++ {
		a = append(a, graph.Node(v))
	}
	res, err := EstimatePartitioned(context.Background(), g, a, Options{K: 1, Epsilon: 0.05, Delta: 0.01, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Est.Samples != 0 {
		t.Errorf("samples = %d, want 0 for k=1", res.Est.Samples)
	}
	for i, v := range res.Nodes {
		if math.Abs(res.KPath[i]-truth[v]) > 1e-12 {
			t.Errorf("node %d: est %g truth %g (k=1 must be exact)", v, res.KPath[i], truth[v])
		}
	}
}

func TestPartitionedAgreesWithDirect(t *testing.T) {
	// Both estimators target the same quantity; with tight epsilon their
	// outputs must be close.
	g := testutil.RandomConnectedGraph(40, 50, 6)
	a := []graph.Node{1, 5, 9, 20, 33}
	direct, err := Estimate(context.Background(), g, a, Options{K: 4, Epsilon: 0.02, Delta: 0.01, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	part, err := EstimatePartitioned(context.Background(), g, a, Options{K: 4, Epsilon: 0.02, Delta: 0.01, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range direct.Nodes {
		if math.Abs(direct.KPath[i]-part.KPath[i]) > 0.04 {
			t.Errorf("node %d: direct %g vs partitioned %g", direct.Nodes[i], direct.KPath[i], part.KPath[i])
		}
	}
}

func TestPartitionedNoFalseZeroForConnectedTargets(t *testing.T) {
	// Every target with at least one neighbor has positive 1-step mass, so
	// the partitioned estimate is never zero — the k-path analogue of
	// Lemma 19.
	g := testutil.RandomConnectedGraph(30, 20, 9)
	var a []graph.Node
	for v := 0; v < 30; v += 3 {
		a = append(a, graph.Node(v))
	}
	res, err := EstimatePartitioned(context.Background(), g, a, Options{K: 3, Epsilon: 0.2, Delta: 0.1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.Nodes {
		if g.Degree(v) > 0 && res.KPath[i] == 0 {
			t.Errorf("node %d has degree %d but zero estimate", v, g.Degree(v))
		}
	}
}

func TestPartitionedErrors(t *testing.T) {
	g := graph.Cycle(5)
	if _, err := EstimatePartitioned(context.Background(), g, nil, Options{}); err == nil {
		t.Error("empty targets: want error")
	}
	if _, err := EstimatePartitioned(context.Background(), g, []graph.Node{0}, Options{K: -2}); err == nil {
		t.Error("bad k: want error")
	}
	empty := graph.NewBuilder(0).Build()
	if _, err := EstimatePartitioned(context.Background(), empty, []graph.Node{0}, Options{}); err == nil {
		t.Error("empty graph: want error")
	}
}
