// Command saphyrad serves centrality rankings from a persisted view file
// over HTTP — the always-on counterpart of the one-shot `saphyra -view`
// invocation. One process maps the view once and answers any number of
// subset-ranking and top-k queries with (eps, delta)-guaranteed estimates;
// concurrent saphyrad processes serving the same file share one physical
// copy of the arrays through the page cache.
//
// Usage:
//
//	saphyra -graph net.txt -save-view net.sbcv     # build once
//	saphyrad -view net.sbcv -addr :8372            # serve many
//
// API (JSON):
//
//	POST /v1/rank     {"method":"saphyra","targets":[17,99],"eps":0.05,"delta":0.01,"seed":1}
//	GET  /v1/topk?method=closeness&k=10
//	GET  /healthz                                  # liveness: 200 while the process runs
//	GET  /readyz                                   # readiness: 503 until a view generation serves
//	GET  /statusz
//	GET  /metricsz                                 # Prometheus text format
//	POST /admin/reload                             # also: kill -HUP <pid>
//
// Telemetry: /metricsz exposes counters, gauges, and latency/cost histograms
// from the internal/obs registry. `-slow-query-ms N` arms the slow-query
// log — any request slower than N ms writes one structured JSON line to
// stderr with its full span tree. A request carrying `?trace=1` or a
// Trace-Id header gets its span breakdown back in the response envelope.
// `-pprof-addr` serves net/http/pprof on a separate (loopback) listener,
// kept off the public handler so profiling is never reachable from the
// service port.
//
// Deadlines: -timeout sets a default compute deadline; a request may
// tighten (never extend) it with a Timeout-Ms header. An expired request
// returns 504, frees its
// admission slot, and its computation is canceled at the next engine
// checkpoint (unless other requests still wait on the same cached flight) —
// cancellation is all-or-nothing, so a completed response is always
// bitwise-identical to an undeadlined one.
//
// Overload: -client-qps arms per-client token-bucket quotas keyed by the
// Client-Id request header; quota-denied and shed requests get 429 with a
// Retry-After derived from the token-refill horizon or live queue depth —
// a hint worth obeying (internal/workload.Client does). Tiny queries ride
// a reserved fast-lane slot pool (-fastlane) with a guaranteed worker, so
// point lookups stay fast while full-network jobs saturate the compute
// slots. A Degrade-Ms request header (or -default-degrade-ms fleet-wide)
// opts a request into graceful degradation: when the exact answer is shed
// or misses its deadline, the service answers from the prior generation's
// cache or with a coarsened-eps recompute, flagged "degraded":true (see
// DESIGN.md section 10).
//
// Methods are saphyra (betweenness), kpath, and closeness; targets and
// reported nodes use the original id space of the edge list the view was
// built from. Responses are deterministic: a fixed (method, eps, delta,
// seed, targets) returns bitwise-identical scores across requests, worker
// counts, restarts, and processes — which is also why the daemon may cache
// and collapse identical requests (see internal/serve and DESIGN.md
// section 8).
//
// Hot reload: SIGHUP or POST /admin/reload re-maps the view file under the
// next generation. In-flight queries finish on the old mapping before it is
// released; new queries see the new generation immediately.
//
// Clustering: -peers (with -peer-self) joins this process to a peer
// cache-fill ring — on a local cache miss it first asks the key's
// consistent-hash home replica via GET /internal/cache and adopts the
// entry instead of recomputing, sound because responses are bitwise
// reproducible and generation-tagged. Front a fleet of such daemons with
// cmd/saphyrarouter, and roll new views across it with its -rollout mode
// (DESIGN.md section 14):
//
//	saphyrad -view net.sbcv -addr :8372 \
//	    -peers http://a:8372,http://b:8372 -peer-self 0
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"saphyra/internal/cluster"
	"saphyra/internal/serve"
)

func main() {
	var (
		viewPath    = flag.String("view", "", "serialized view file to serve (required; build with saphyra -save-view)")
		addr        = flag.String("addr", ":8372", "listen address")
		maxInFlight = flag.Int("max-inflight", 0, "concurrent computations admitted (0 = default 4)")
		maxQueue    = flag.Int("max-queue", 0, "computations allowed to wait for a slot before shedding with 429 (0 = 4x max-inflight)")
		workers     = flag.Int("workers", 0, "worker-goroutine pool shared by all computations (0 = all CPUs)")
		reqWorkers  = flag.Int("request-workers", 0, "max workers one computation may take from the pool (0 = half the pool)")
		cacheSize   = flag.Int("cache", 0, "result cache entries (0 = default 1024)")
		eps         = flag.Float64("eps", 0.05, "default additive error guarantee")
		delta       = flag.Float64("delta", 0.01, "default failure probability")
		seed        = flag.Int64("seed", 1, "default RNG seed (responses are seed-deterministic)")
		kflag       = flag.Int("k", 3, "default walk length for method kpath")
		timeout     = flag.Duration("timeout", 0, "default per-request compute deadline (e.g. 30s; 0 = none); a Timeout-Ms request header may tighten but never extend it. Expired requests get 504 and their computation is canceled")
		noWarm      = flag.Bool("no-precompute", false, "skip warming the per-method top-k index at startup/reload")

		fastSlots = flag.Int("fastlane", 0, "admission slots reserved for tiny queries so they never queue behind full-network work (0 = default 2, negative = disabled)")
		fastCost  = flag.Float64("fastlane-cost", 0, "cost threshold below which a query rides the fast lane (0 = default 16384; see internal/sched's chunk cost model)")
		clientQPS = flag.Float64("client-qps", 0, "per-client token-bucket refill rate keyed by the Client-Id header (0 = quotas disabled)")
		clientBur = flag.Float64("client-burst", 0, "per-client token-bucket capacity (0 = 2x client-qps, min 1)")
		degradeMs = flag.Int("default-degrade-ms", 0, "opt every rank request into the degradation ladder with this budget in ms when it sends no Degrade-Ms header (0 = request-driven only)")
		degFactor = flag.Float64("degrade-eps-factor", 0, "epsilon multiplier for the coarsened-recompute degradation rung (0 = default 4)")
		degMaxEps = flag.Float64("degrade-max-eps", 0, "cap on the coarsened epsilon (0 = default 0.25)")
		noStale   = flag.Bool("no-stale", false, "remove the stale rung from the degradation ladder: degraded requests only ever get a coarsened recompute, never a prior generation's cache")

		slowMs    = flag.Int("slow-query-ms", 0, "log any request slower than this many ms as one structured JSON line on stderr, span tree included (0 = disabled)")
		pprofAddr = flag.String("pprof-addr", "", "serve net/http/pprof on this separate address, e.g. localhost:6060 (empty = disabled; keep it loopback-only)")

		peersFlag   = flag.String("peers", "", "comma-separated ordered replica base URLs of the whole fleet, including this process — joins the peer cache-fill ring (every replica must be given the SAME ordered list; empty = no peer fill)")
		peerSelf    = flag.Int("peer-self", -1, "this replica's index in -peers (required with -peers)")
		peerTimeout = flag.Duration("peer-timeout", 0, "bound on one peer cache probe (0 = default)")
	)
	flag.Parse()
	if *viewPath == "" {
		fmt.Fprintln(os.Stderr, "saphyrad: -view is required")
		flag.Usage()
		os.Exit(2)
	}

	// Peer cache fill: on a local miss, ask the key's home peer for its
	// cached entry before computing — sound to adopt because responses are
	// bitwise reproducible and generation-tagged (DESIGN.md section 14).
	var peerFill func(ctx context.Context, gen uint64, key [32]byte) (*serve.RankResponse, bool)
	if *peersFlag != "" {
		var urls []string
		for _, u := range strings.Split(*peersFlag, ",") {
			if u = strings.TrimSpace(u); u != "" {
				urls = append(urls, u)
			}
		}
		if *peerSelf < 0 || *peerSelf >= len(urls) {
			fmt.Fprintf(os.Stderr, "saphyrad: -peer-self %d is not an index into the %d -peers entries\n", *peerSelf, len(urls))
			os.Exit(2)
		}
		peers, err := cluster.NewPeers(urls, *peerSelf, 0, &http.Client{}, *peerTimeout)
		if err != nil {
			fmt.Fprintln(os.Stderr, "saphyrad:", err)
			os.Exit(2)
		}
		peerFill = peers.Fill
	}

	start := time.Now()
	srv, err := serve.New(*viewPath, serve.Config{
		MaxInFlight:        *maxInFlight,
		MaxQueue:           *maxQueue,
		TotalWorkers:       *workers,
		RequestWorkers:     *reqWorkers,
		CacheEntries:       *cacheSize,
		DefaultEpsilon:     *eps,
		DefaultDelta:       *delta,
		DefaultSeed:        *seed,
		DefaultK:           *kflag,
		DefaultTimeout:     *timeout,
		DisablePrecompute:  *noWarm,
		FastLaneSlots:      *fastSlots,
		FastLaneCost:       *fastCost,
		ClientQPS:          *clientQPS,
		ClientBurst:        *clientBur,
		DefaultDegradeMs:   *degradeMs,
		DegradeEpsFactor:   *degFactor,
		DegradeMaxEps:      *degMaxEps,
		DisableStale:       *noStale,
		SlowQueryThreshold: time.Duration(*slowMs) * time.Millisecond,
		PeerFill:           peerFill,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "saphyrad:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "saphyrad: serving %s (generation %d) on %s after %v warmup, %d CPUs\n",
		*viewPath, srv.Generation(), *addr, time.Since(start).Round(time.Millisecond), runtime.GOMAXPROCS(0))

	// Transport-level bounds back the admission control's overload story:
	// admission only gates computations, so slow-header connections and
	// idle keep-alives must be bounded here or they pin goroutines and fds
	// before a request ever exists. (Request bodies are bounded inside the
	// handler; no WriteTimeout — a cache-miss computation may legitimately
	// outlive any fixed write deadline.)
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	// pprof gets its own listener and mux: importing net/http/pprof would
	// register on http.DefaultServeMux, which the service handler never
	// touches, so profiling stays unreachable from the service port and
	// entirely off unless the flag is set.
	if *pprofAddr != "" {
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			psrv := &http.Server{Addr: *pprofAddr, Handler: pmux, ReadHeaderTimeout: 10 * time.Second}
			fmt.Fprintf(os.Stderr, "saphyrad: pprof on %s\n", *pprofAddr)
			if err := psrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "saphyrad: pprof:", err)
			}
		}()
	}

	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			gen, err := srv.Reload()
			if err != nil {
				fmt.Fprintln(os.Stderr, "saphyrad:", err)
				continue
			}
			fmt.Fprintf(os.Stderr, "saphyrad: reloaded %s as generation %d\n", *viewPath, gen)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-stop
		fmt.Fprintln(os.Stderr, "saphyrad: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		httpSrv.Shutdown(ctx)
	}()

	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "saphyrad:", err)
		os.Exit(1)
	}
	srv.Close() // drain and unmap after the listener stops
}
