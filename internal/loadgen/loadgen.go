// Package loadgen is the deterministic open-loop load generator and SLO
// gate over internal/serve (DESIGN.md section 12). It turns the serving
// layer's single-request benchmarks into a regression-gated replay of
// realistic mixed traffic:
//
//   - a seeded traffic-mix model: zipf-distributed target sets drawn from a
//     bounded pool (the skew knob controls the cache hit ratio), per-class
//     constant or Poisson arrival processes, configurable shares of
//     tiny/full/degradable/deadline-bearing queries, and scheduled reload
//     storms — one seed yields a byte-identical request schedule
//     (Schedule.Encode), so a run is reproducible end to end;
//   - a lock-cheap latency recorder (internal/loadgen/hist): log-bucketed
//     histogram quantiles (p50/p99/p999) and per-outcome counters instead
//     of sort-based percentiles;
//   - an SLO spec evaluated after each run, plus optional bitwise
//     verification of a sampled fraction of 200 responses against the
//     library reference for their reported (generation, eps, delta, seed)
//     contract — sound because every estimate is a pure function of exactly
//     those inputs, so load testing doubles as a correctness gate.
//
// The schedule is open-loop: arrival times are fixed by the mix and seed,
// never by response times, so an overloaded server cannot slow the offered
// load down and hide its own shed rate — the classic closed-loop
// coordinated-omission trap.
//
// cmd/saphyraload drives a live daemon or an in-process Server and emits
// versioned JSON (BENCH_serving.json via scripts/bench.sh); the in-process
// replay smoke test in this package is the CI regression gate.
package loadgen

import (
	"fmt"
	"time"
)

// Arrival selects a class's arrival process.
type Arrival int

const (
	// Constant spaces a class's requests evenly at its rate.
	Constant Arrival = iota
	// Poisson draws exponential inter-arrival gaps at the class rate — the
	// memoryless open-loop model of independent clients.
	Poisson
)

func (a Arrival) String() string {
	if a == Poisson {
		return "poisson"
	}
	return "constant"
}

// Class is one request population inside a Mix. Every knob is part of the
// deterministic schedule contract: two builds from equal (Mix, nodes, seed)
// produce byte-identical schedules.
type Class struct {
	// Name labels the class in reports.
	Name string
	// Share is the fraction of the mix's total rate this class offers.
	Share float64
	// Arrival is the class's arrival process.
	Arrival Arrival

	// Method is the serve method ("saphyra" | "kpath" | "closeness").
	Method string
	// Targets is the target-set size per query. Zero means a full-network
	// top-k query (GET /v1/topk) instead of a subset rank.
	Targets int
	// Pool is the number of distinct target sets the class draws from; each
	// request picks one via the zipf law below. A small, skewed pool is a
	// cache-hit-dominated population; a large, flat pool with fresh seeds is
	// a miss storm. Ignored for full-network classes (one query shape).
	Pool int
	// ZipfS is the zipf exponent over the pool: pool entry i is drawn with
	// probability proportional to 1/(i+1)^ZipfS. Zero means uniform.
	ZipfS float64

	// Eps, Delta, K, Seed are the query contract. Seed is the base query
	// seed; pool entry i queries with Seed+i so a repeated pool draw is the
	// identical query (a cache hit after the first).
	Eps   float64
	Delta float64
	K     int
	Seed  int64
	// FreshSeed gives every request a unique seed derived from its sequence
	// number, defeating the result cache — the miss-heavy knob.
	FreshSeed bool

	// TimeoutMs > 0 sends the Timeout-Ms header (deadline-bearing traffic);
	// DegradeMs > 0 sends Degrade-Ms (degradable traffic); ClientID, when
	// set, attributes the class to a quota bucket.
	TimeoutMs int
	DegradeMs int
	ClientID  string
}

// Storm schedules a burst of hot reloads: Count reloads starting at At,
// spaced Every apart.
type Storm struct {
	At    time.Duration
	Count int
	Every time.Duration
}

// Mix is a named traffic mix: the complete, seedable description of one
// load-replay run.
type Mix struct {
	Name string
	// Rate is the total offered request rate (req/s) across all classes.
	Rate float64
	// Duration is the scheduled span; the last arrivals land just before it.
	Duration time.Duration
	Classes  []Class
	Storms   []Storm
	// SLO is the pass/fail contract evaluated over the run's Report.
	SLO SLO
}

// Validate rejects mixes that cannot produce a well-formed schedule.
func (m *Mix) Validate() error {
	if m.Rate <= 0 {
		return fmt.Errorf("loadgen: mix %q: rate must be > 0, got %g", m.Name, m.Rate)
	}
	if m.Duration <= 0 {
		return fmt.Errorf("loadgen: mix %q: duration must be > 0, got %v", m.Name, m.Duration)
	}
	if len(m.Classes) == 0 {
		return fmt.Errorf("loadgen: mix %q: no classes", m.Name)
	}
	var share float64
	for i, c := range m.Classes {
		if c.Share <= 0 {
			return fmt.Errorf("loadgen: mix %q class %d (%s): share must be > 0", m.Name, i, c.Name)
		}
		if c.Targets < 0 || (c.Targets > 0 && c.Pool <= 0) {
			return fmt.Errorf("loadgen: mix %q class %d (%s): subset classes need a pool", m.Name, i, c.Name)
		}
		share += c.Share
	}
	if share > 1+1e-9 {
		return fmt.Errorf("loadgen: mix %q: class shares sum to %g > 1", m.Name, share)
	}
	return nil
}

// Scale returns a copy of the mix with rate and duration overridden when
// the arguments are positive — the CLI's -rate/-duration knobs.
func (m Mix) Scale(rate float64, d time.Duration) Mix {
	if rate > 0 {
		m.Rate = rate
	}
	if d > 0 {
		m.Duration = d
		// Re-anchor storms into the new span: keep their relative positions.
		storms := make([]Storm, len(m.Storms))
		copy(storms, m.Storms)
		m.Storms = storms
	}
	return m
}

// The three named mixes of the serving acceptance gate. Rates are sized for
// an in-process replay on a few-thousand-node view; Scale adjusts them for
// bigger hardware or longer soaks.

// HitDominated models steady production traffic over a hot working set: a
// small, heavily skewed pool of target sets, so after warmup nearly every
// request is a deterministic cache hit. Includes deadline-bearing and
// degradable slices. The SLO is tight: hits are microseconds, so p99 beyond
// tens of milliseconds means the cache or admission path regressed.
func HitDominated() Mix {
	return Mix{
		Name:     "hit-dominated",
		Rate:     400,
		Duration: 2 * time.Second,
		Classes: []Class{
			{Name: "tiny", Share: 0.70, Arrival: Poisson, Method: "saphyra", Targets: 4, Pool: 8, ZipfS: 1.2, Eps: 0.1, Delta: 0.05, Seed: 1},
			{Name: "tiny-deadline", Share: 0.15, Arrival: Poisson, Method: "closeness", Targets: 4, Pool: 6, ZipfS: 1.1, Eps: 0.1, Delta: 0.05, Seed: 100, TimeoutMs: 2000},
			{Name: "degradable", Share: 0.10, Arrival: Poisson, Method: "kpath", Targets: 6, Pool: 4, ZipfS: 1.0, Eps: 0.1, Delta: 0.05, K: 3, Seed: 200, DegradeMs: 500, ClientID: "degradable"},
			{Name: "steady", Share: 0.05, Arrival: Constant, Method: "saphyra", Targets: 8, Pool: 2, ZipfS: 0.5, Eps: 0.1, Delta: 0.05, Seed: 300},
		},
		SLO: SLO{P99Ms: 50, P999Ms: 250, MaxShedRate: 0.01, MaxErrorRate: 0.01},
	}
}

// MissHeavy models cache-hostile traffic: fresh seeds defeat the result
// cache, so nearly every request computes, saturates admission, and the
// server must shed. The SLO therefore gates the *behavior under overload*
// — bounded response latency (shedding must stay cheap), a shed-rate
// ceiling, and no internal errors — not raw throughput. A small full-network
// top-k slice keeps the most expensive query shape in the mix.
func MissHeavy() Mix {
	return Mix{
		Name:     "miss-heavy",
		Rate:     300,
		Duration: 2 * time.Second,
		Classes: []Class{
			{Name: "subset-miss", Share: 0.60, Arrival: Poisson, Method: "saphyra", Targets: 8, Pool: 64, ZipfS: 0.3, Eps: 0.1, Delta: 0.05, Seed: 1, FreshSeed: true},
			{Name: "tiny-hot", Share: 0.25, Arrival: Poisson, Method: "saphyra", Targets: 4, Pool: 8, ZipfS: 1.2, Eps: 0.1, Delta: 0.05, Seed: 400},
			{Name: "degradable-miss", Share: 0.10, Arrival: Poisson, Method: "closeness", Targets: 8, Pool: 32, ZipfS: 0.3, Eps: 0.1, Delta: 0.05, Seed: 500, FreshSeed: true, DegradeMs: 500, ClientID: "degradable"},
			{Name: "topk", Share: 0.05, Arrival: Constant, Method: "closeness", Targets: 0, Eps: 0.2, Delta: 0.05, Seed: 600},
		},
		SLO: SLO{P99Ms: 5000, P999Ms: 10000, MaxShedRate: 0.95, MaxErrorRate: 0.02},
	}
}

// ReloadStorm is the hit-dominated mix under a rolling reload storm: every
// reload purges the live cache generation (entries retire to the stale
// store), so the hot set recomputes repeatedly while traffic keeps
// arriving. Degradable requests may ride the stale rung; the SLO allows a
// modest shed rate but still demands bounded tails and no errors.
func ReloadStorm() Mix {
	m := HitDominated()
	m.Name = "reload-storm"
	m.Storms = []Storm{{At: 300 * time.Millisecond, Count: 5, Every: 300 * time.Millisecond}}
	m.SLO = SLO{P99Ms: 1000, P999Ms: 5000, MaxShedRate: 0.10, MaxErrorRate: 0.01}
	return m
}

// ClusterHitDominated is the hit-dominated mix aimed at a cluster router
// (internal/cluster) instead of a single replica: the same traffic, with
// the latency SLO widened for the extra proxy hop every request pays and
// the peer-fill round-trip a cold key may pay. Everything else — shed,
// error, and bitwise-verification gates — is identical: the router is a
// placement layer, not a correctness layer, so the cluster must meet the
// same contract a single box does.
func ClusterHitDominated() Mix {
	m := HitDominated()
	m.Name = "cluster-hit-dominated"
	m.SLO = SLO{P99Ms: 250, P999Ms: 1000, MaxShedRate: 0.01, MaxErrorRate: 0.01}
	return m
}

// Mixes returns the named single-box acceptance mixes in reporting order.
// ClusterHitDominated is not in this list — it needs a router in front of a
// fleet (cmd/saphyraload -cluster), not a lone server.
func Mixes() []Mix { return []Mix{HitDominated(), MissHeavy(), ReloadStorm()} }

// ByName returns the named mix ("hit-dominated" | "miss-heavy" |
// "reload-storm" | "cluster-hit-dominated").
func ByName(name string) (Mix, error) {
	for _, m := range append(Mixes(), ClusterHitDominated()) {
		if m.Name == name {
			return m, nil
		}
	}
	return Mix{}, fmt.Errorf("loadgen: unknown mix %q (want hit-dominated | miss-heavy | reload-storm | cluster-hit-dominated)", name)
}
