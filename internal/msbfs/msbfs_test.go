package msbfs

import (
	"errors"
	"math/rand/v2"
	"testing"

	"saphyra/internal/faultinject"
	"saphyra/internal/graph"
	"saphyra/internal/sched"
)

// pendantGraph is a clique with a pendant path hanging off it — the shape
// that exercises settled-node re-visits (the clique saturates in two
// levels, the path drains one node per level).
func pendantGraph() *graph.Graph {
	b := graph.NewBuilder(0)
	const k = 40
	for i := graph.Node(0); i < k; i++ {
		for j := i + 1; j < k; j++ {
			b.AddEdge(i, j)
		}
	}
	for i := graph.Node(k); i < k+30; i++ {
		b.AddEdge(i-1, i)
	}
	return b.Build()
}

func testGraphs(t testing.TB) map[string]*graph.Graph {
	t.Helper()
	return map[string]*graph.Graph{
		"ba":      graph.BarabasiAlbert(600, 3, 11),
		"road":    graph.RoadNetwork(25, 24, 0.1, 5), // drop breaks it into components
		"pendant": pendantGraph(),
		"tree":    graph.RandomTree(500, 9),
	}
}

// runDistances drives one pass and returns the per-lane distance arrays,
// -1 for unreached.
func runDistances(t *testing.T, tr *Traversal, g *graph.Graph, sources []graph.Node) [][]int32 {
	t.Helper()
	off, nbr := g.CSR()
	n := g.NumNodes()
	dist := make([][]int32, len(sources))
	for j := range dist {
		dist[j] = make([]int32, n)
		for i := range dist[j] {
			dist[j][i] = -1
		}
	}
	err := tr.Run(off, nbr, sources, nil, func(u graph.Node, lanes uint64, depth int32) {
		for m := lanes; m != 0; m &= m - 1 {
			j := trailing(m)
			if dist[j][u] != -1 {
				t.Fatalf("lane %d settled node %d twice (depth %d and %d)", j, u, dist[j][u], depth)
			}
			dist[j][u] = depth
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return dist
}

func trailing(m uint64) int {
	j := 0
	for m&1 == 0 {
		m >>= 1
		j++
	}
	return j
}

// TestRunMatchesScalarBFS: every lane's distance labels must equal a scalar
// BFS from that lane's source — on every graph shape, at 1, 7, and 64
// lanes, including duplicate sources sharing a batch.
func TestRunMatchesScalarBFS(t *testing.T) {
	for name, g := range testGraphs(t) {
		n := g.NumNodes()
		tr := New(n)
		rng := rand.New(rand.NewPCG(42, 0))
		for _, lanes := range []int{1, 7, 64} {
			sources := make([]graph.Node, lanes)
			for j := range sources {
				sources[j] = graph.Node(rng.IntN(n))
			}
			if lanes >= 7 {
				sources[lanes-1] = sources[0] // duplicate sources share lanes
			}
			got := runDistances(t, tr, g, sources)
			want := make([]int32, n)
			for j, s := range sources {
				want = graph.BFSDistances(g, s, want)
				for u := 0; u < n; u++ {
					if got[j][u] != want[u] {
						t.Fatalf("%s lanes=%d: dist[src %d][node %d] = %d, want %d",
							name, lanes, s, u, got[j][u], want[u])
					}
				}
			}
		}
	}
}

// TestRunGroupedViewMatches: the same pass over a BlockCSR-style permuted
// neighbor array yields identical labels — exercised here with a reversed
// per-node order, the adversarial case for order invariance.
func TestRunPermutedAdjacencyMatches(t *testing.T) {
	g := graph.BarabasiAlbert(400, 3, 3)
	off, nbr := g.CSR()
	perm := make([]graph.Node, len(nbr))
	for u := 0; u < g.NumNodes(); u++ {
		lo, hi := off[u], off[u+1]
		for i := lo; i < hi; i++ {
			perm[i] = nbr[lo+hi-1-i]
		}
	}
	n := g.NumNodes()
	sources := []graph.Node{0, 17, 399, 17}
	tr := New(n)
	a := runDistances(t, tr, g, sources)
	dist := make([][]int32, len(sources))
	for j := range dist {
		dist[j] = make([]int32, n)
		for i := range dist[j] {
			dist[j][i] = -1
		}
	}
	if err := tr.Run(off, perm, sources, nil, func(u graph.Node, lanes uint64, depth int32) {
		for m := lanes; m != 0; m &= m - 1 {
			dist[trailing(m)][u] = depth
		}
	}); err != nil {
		t.Fatal(err)
	}
	for j := range sources {
		for u := 0; u < n; u++ {
			if a[j][u] != dist[j][u] {
				t.Fatalf("permuted adjacency changed dist[%d][%d]: %d vs %d", j, u, a[j][u], dist[j][u])
			}
		}
	}
}

// TestTraversalReuse: a workspace reused across passes — including after an
// aborted pass left it mid-level — produces clean results.
func TestTraversalReuse(t *testing.T) {
	// Big enough that the poll stride fires mid-pass and actually aborts.
	g := graph.RoadNetwork(100, 100, 0, 1)
	off, nbr := g.CSR()
	n := g.NumNodes()
	tr := New(n)

	// Abort a pass partway via a stop raised from the settle callback.
	var stop sched.Stop
	settled := 0
	err := tr.Run(off, nbr, []graph.Node{0}, &stop, func(u graph.Node, lanes uint64, depth int32) {
		settled++
		if depth == 3 {
			stop.Raise()
		}
	})
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}

	// The next pass on the dirty workspace must match a fresh one.
	a := runDistances(t, tr, g, []graph.Node{5, 250})
	b := runDistances(t, New(n), g, []graph.Node{5, 250})
	for j := range a {
		for u := range a[j] {
			if a[j][u] != b[j][u] {
				t.Fatalf("reused workspace diverged at lane %d node %d", j, u)
			}
		}
	}
}

// TestStopBoundsWork: a stop raised mid-pass aborts well before the pass
// finishes — the poll stride bounds time-to-cancel below one full pass.
func TestStopBoundsWork(t *testing.T) {
	// Large road grid: ~10k nodes, ~200 levels, so one pass is much larger
	// than the poll stride.
	g := graph.RoadNetwork(100, 100, 0, 2)
	off, nbr := g.CSR()
	n := g.NumNodes()
	tr := New(n)
	var stop sched.Stop
	settled := 0
	err := tr.Run(off, nbr, []graph.Node{0}, &stop, func(u graph.Node, lanes uint64, depth int32) {
		settled++
		if depth == 2 {
			stop.Raise()
		}
	})
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	if settled >= n/2 {
		t.Fatalf("settled %d of %d nodes after raise: poll stride did not bound the abort", settled, n)
	}
	if settled == 0 {
		t.Fatal("no progress before the raise")
	}
	// Pre-raised stop: no expansion at all beyond the sources.
	stop2 := &sched.Stop{}
	stop2.Raise()
	settled = 0
	err = tr.Run(off, nbr, []graph.Node{0}, stop2, func(graph.Node, uint64, int32) { settled++ })
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("pre-raised: err = %v, want ErrStopped", err)
	}
	if settled > 1 {
		t.Fatalf("pre-raised stop expanded %d settles", settled)
	}
}

// TestRunFaultInjection: an armed msbfs.run fault surfaces as the fault
// error, and disarming restores clean passes.
func TestRunFaultInjection(t *testing.T) {
	defer faultinject.Reset()
	g := graph.BarabasiAlbert(200, 3, 7)
	off, nbr := g.CSR()
	tr := New(g.NumNodes())
	boom := errors.New("boom")
	faultinject.Enable()
	faultinject.Set("msbfs.run", faultinject.Fault{Err: boom, Times: 1})
	err := tr.Run(off, nbr, []graph.Node{0, 1}, nil, func(graph.Node, uint64, int32) {})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want injected fault", err)
	}
	faultinject.Reset()
	if err := tr.Run(off, nbr, []graph.Node{0, 1}, nil, func(graph.Node, uint64, int32) {}); err != nil {
		t.Fatalf("after reset: %v", err)
	}
}

// TestRunSourceLimits: >64 sources is an error; 0 sources is a no-op.
func TestRunSourceLimits(t *testing.T) {
	g := graph.Path(10)
	off, nbr := g.CSR()
	tr := New(g.NumNodes())
	srcs := make([]graph.Node, MaxLanes+1)
	if err := tr.Run(off, nbr, srcs, nil, func(graph.Node, uint64, int32) {}); err == nil {
		t.Fatal("65 sources accepted")
	}
	if err := tr.Run(off, nbr, nil, nil, func(graph.Node, uint64, int32) {
		t.Fatal("settle callback on empty source set")
	}); err != nil {
		t.Fatalf("empty sources: %v", err)
	}
	if err := tr.Run(off[:5], nbr, []graph.Node{0}, nil, func(graph.Node, uint64, int32) {}); err == nil {
		t.Fatal("mismatched offsets accepted")
	}
}
