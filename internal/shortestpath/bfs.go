// Package shortestpath provides shortest-path machinery for unweighted
// graphs: single-source BFS DAGs with path counts (sigma), balanced
// bidirectional BFS (the sample generator of KADABRA [12] and of the
// paper's Gen_bc), and uniform random shortest-path sampling.
//
// Path counts use float64 throughout: sigma grows exponentially on grid-like
// graphs (binomial in the grid dimensions) and overflows int64 long before
// graphs become interesting. This matches standard practice in Brandes
// implementations.
package shortestpath

import (
	"math/rand"

	"saphyra/internal/graph"
)

// DAG is a reusable single-source BFS workspace holding, after a call to
// Run, the distance and path-count arrays plus the BFS visit order.
type DAG struct {
	Dist   []int32
	Sigma  []float64
	Order  []graph.Node // nodes in BFS (non-decreasing distance) order
	Source graph.Node
}

// NewDAG returns a workspace for graphs of n nodes.
func NewDAG(n int) *DAG {
	return &DAG{
		Dist:  make([]int32, n),
		Sigma: make([]float64, n),
		Order: make([]graph.Node, 0, n),
	}
}

// Run executes a full BFS from source, filling Dist (-1 when unreachable),
// Sigma (number of shortest paths from source) and Order.
func (d *DAG) Run(g *graph.Graph, source graph.Node) {
	for i := range d.Dist {
		d.Dist[i] = -1
		d.Sigma[i] = 0
	}
	d.Order = d.Order[:0]
	d.Source = source
	d.Dist[source] = 0
	d.Sigma[source] = 1
	d.Order = append(d.Order, source)
	for head := 0; head < len(d.Order); head++ {
		u := d.Order[head]
		du := d.Dist[u]
		su := d.Sigma[u]
		for _, v := range g.Neighbors(u) {
			switch {
			case d.Dist[v] == -1:
				d.Dist[v] = du + 1
				d.Sigma[v] = su
				d.Order = append(d.Order, v)
			case d.Dist[v] == du+1:
				d.Sigma[v] += su
			}
		}
	}
}

// SamplePathTo draws a uniform random shortest path from the DAG's source to
// t, as a node sequence source..t. Returns nil if t is unreachable. The DAG
// must have been Run for the same graph.
func (d *DAG) SamplePathTo(g *graph.Graph, t graph.Node, rng *rand.Rand) []graph.Node {
	if d.Dist[t] < 0 {
		return nil
	}
	path := make([]graph.Node, d.Dist[t]+1)
	path[d.Dist[t]] = t
	u := t
	for d.Dist[u] > 0 {
		// choose a predecessor w with probability sigma(w)/sum(sigma)
		target := rng.Float64() * d.Sigma[u]
		var acc float64
		var chosen graph.Node = -1
		for _, w := range g.Neighbors(u) {
			if d.Dist[w] == d.Dist[u]-1 {
				acc += d.Sigma[w]
				if acc >= target {
					chosen = w
					break
				}
			}
		}
		if chosen < 0 { // float round-off: fall back to last valid predecessor
			for _, w := range g.Neighbors(u) {
				if d.Dist[w] == d.Dist[u]-1 {
					chosen = w
				}
			}
		}
		u = chosen
		path[d.Dist[u]] = u
	}
	return path
}
