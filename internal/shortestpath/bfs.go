// Package shortestpath provides shortest-path machinery for unweighted
// graphs: single-source BFS DAGs with path counts (sigma), balanced
// bidirectional BFS (the sample generator of KADABRA [12] and of the
// paper's Gen_bc), and uniform random shortest-path sampling.
//
// Path counts use float64 throughout: sigma grows exponentially on grid-like
// graphs (binomial in the grid dimensions) and overflows int64 long before
// graphs become interesting. This matches standard practice in Brandes
// implementations.
package shortestpath

import (
	"saphyra/internal/graph"
)

// Rand is the uniform-variate source the samplers consume. Both math/rand
// and math/rand/v2 generators satisfy it, so callers can feed the package
// from the legacy *rand.Rand or from the faster PCG-backed rand/v2.
type Rand interface {
	Float64() float64
}

// DAG is a reusable single-source BFS workspace holding, after a call to
// Run, the distance and path-count arrays plus the BFS visit order.
type DAG struct {
	Dist   []int32
	Sigma  []float64
	Order  []graph.Node // nodes in BFS (non-decreasing distance) order
	Source graph.Node

	// truncated-run scratch (lazily allocated by RunTruncated)
	tmark   []int32
	pending []graph.Node
	tepoch  int32
	scanned int64
}

// Scanned returns the number of directed edges examined by the last
// RunTruncated — the cost proxy batched samplers feed their serving-strategy
// model.
func (d *DAG) Scanned() int64 { return d.scanned }

// NewDAG returns a workspace for graphs of n nodes. Dist starts at -1
// everywhere (the "clean" state RunTruncated relies on).
func NewDAG(n int) *DAG {
	d := &DAG{
		Dist:  make([]int32, n),
		Sigma: make([]float64, n),
		Order: make([]graph.Node, 0, n),
	}
	for i := range d.Dist {
		d.Dist[i] = -1
	}
	return d
}

// Run executes a full BFS from source, filling Dist (-1 when unreachable),
// Sigma (number of shortest paths from source) and Order.
func (d *DAG) Run(g *graph.Graph, source graph.Node) {
	for i := range d.Dist {
		d.Dist[i] = -1
		d.Sigma[i] = 0
	}
	d.Order = d.Order[:0]
	d.Source = source
	d.Dist[source] = 0
	d.Sigma[source] = 1
	d.Order = append(d.Order, source)
	for head := 0; head < len(d.Order); head++ {
		u := d.Order[head]
		du := d.Dist[u]
		su := d.Sigma[u]
		for _, v := range g.Neighbors(u) {
			switch {
			case d.Dist[v] == -1:
				d.Dist[v] = du + 1
				d.Sigma[v] = su
				d.Order = append(d.Order, v)
			case d.Dist[v] == du+1:
				d.Sigma[v] += su
			}
		}
	}
}

// RunTruncated executes a BFS from source that stops as soon as Dist and
// Sigma are final for every node of targets, so the cost is proportional to
// the ball that encloses the targets, not to the whole component. Two
// further economies over a plain truncated BFS:
//
//   - pull-finish: before expanding a level l, if every still-unfound target
//     has a neighbor at level l, each target's sigma is pulled directly from
//     those (final) neighbors and the expansion of level l — on
//     small-diameter graphs, the bulk of the ball — is skipped entirely;
//   - sparse reset: only state touched by the previous (full or truncated)
//     run is cleared — O(touched), not O(n) — which is what makes serving
//     many sources per batch cheap.
//
// After RunTruncated, Dist/Sigma/Order are valid for every node settled by
// the traversal; nodes beyond the truncation radius read as unreachable
// (Dist -1). SamplePathTo works for any of the targets.
func (d *DAG) RunTruncated(g *graph.Graph, source graph.Node, targets []graph.Node) {
	d.RunTruncatedBounded(g, source, targets, -1)
}

// RunTruncatedBounded is RunTruncated with a depth cap: when maxDepth >= 0,
// no level beyond maxDepth is expanded, so targets known (e.g. from a
// distance sketch's upper bound) to sit within maxDepth of the source cost
// at most the ball of that radius even when some target is unreachable and
// an uncapped truncated BFS would drain the whole component. A cap at least
// the true source->targets distance leaves Dist, Sigma, Order and Scanned
// identical to the uncapped run: the targets-found break always fires first.
// maxDepth < 0 means uncapped.
func (d *DAG) RunTruncatedBounded(g *graph.Graph, source graph.Node, targets []graph.Node, maxDepth int32) {
	if d.tmark == nil {
		d.tmark = make([]int32, len(d.Dist))
		for i := range d.tmark {
			d.tmark[i] = -1
		}
	}
	d.tepoch++
	if d.tepoch < 0 { // wrapped: reset stamps
		for i := range d.tmark {
			d.tmark[i] = -1
		}
		d.tepoch = 1
	}
	remaining := 0
	d.pending = d.pending[:0]
	for _, t := range targets {
		if d.tmark[t] != d.tepoch {
			d.tmark[t] = d.tepoch
			d.pending = append(d.pending, t)
			remaining++
		}
	}
	// Sparse reset of the previous run.
	for _, u := range d.Order {
		d.Dist[u] = -1
		d.Sigma[u] = 0
	}
	d.Order = d.Order[:0]
	d.Source = source
	d.Dist[source] = 0
	d.Sigma[source] = 1
	d.Order = append(d.Order, source)
	if d.tmark[source] == d.tepoch {
		d.tmark[source] = d.tepoch - 1
		remaining--
	}
	d.scanned = 0
	lo, hi := 0, 1 // current level's slice of Order
	for lvl := int32(0); lo < hi; lvl++ {
		if remaining == 0 {
			// Every target was discovered at a level <= lvl; the expansion
			// of lvl-1 has already finalized their sigmas.
			break
		}
		// Depth cap, checked after the targets-found break so a sufficient
		// cap can never change the result — expanding lvl settles lvl+1.
		if maxDepth >= 0 && lvl >= maxDepth {
			break
		}
		// The pull check costs O(deg(pending)); attempt it only when the
		// frontier about to be expanded dwarfs the pending set, so thin
		// frontiers (large-diameter graphs) never pay for failed pulls.
		if hi-lo > 4*remaining && d.tryPull(g, lvl) {
			break
		}
		// Expand level lvl.
		for _, u := range d.Order[lo:hi] {
			su := d.Sigma[u]
			d.scanned += int64(g.Degree(u))
			for _, v := range g.Neighbors(u) {
				switch {
				case d.Dist[v] == -1:
					d.Dist[v] = lvl + 1
					d.Sigma[v] = su
					d.Order = append(d.Order, v)
					if d.tmark[v] == d.tepoch {
						d.tmark[v] = d.tepoch - 1
						remaining--
					}
				case d.Dist[v] == lvl+1:
					d.Sigma[v] += su
				}
			}
		}
		lo, hi = hi, len(d.Order)
	}
}

// tryPull attempts the pull-finish: if every still-unfound target has a
// neighbor at the (fully settled) level lvl, all of them sit at lvl+1 and
// their sigmas are the sums over those neighbors. On success the targets
// are settled and recorded in Order, and the caller skips the expansion of
// level lvl.
func (d *DAG) tryPull(g *graph.Graph, lvl int32) bool {
	for _, t := range d.pending {
		if d.tmark[t] != d.tepoch {
			continue // found by the regular expansion
		}
		found := false
		for _, w := range g.Neighbors(t) {
			if d.Dist[w] == lvl {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	for _, t := range d.pending {
		if d.tmark[t] != d.tepoch {
			continue
		}
		var sig float64
		for _, w := range g.Neighbors(t) {
			if d.Dist[w] == lvl {
				sig += d.Sigma[w]
			}
		}
		d.scanned += int64(g.Degree(t))
		d.Dist[t] = lvl + 1
		d.Sigma[t] = sig
		d.Order = append(d.Order, t)
		d.tmark[t] = d.tepoch - 1
	}
	return true
}

// SamplePathTo draws a uniform random shortest path from the DAG's source to
// t, as a node sequence source..t. Returns nil if t is unreachable. The DAG
// must have been Run for the same graph.
func (d *DAG) SamplePathTo(g *graph.Graph, t graph.Node, rng Rand) []graph.Node {
	return d.SamplePathAppend(g, t, rng, nil)
}

// SamplePathAppend is SamplePathTo writing into buf (which is overwritten,
// not appended to, and grown as needed). Passing a reused buffer makes the
// steady-state sampling loop allocation-free. Returns nil if t is
// unreachable.
func (d *DAG) SamplePathAppend(g *graph.Graph, t graph.Node, rng Rand, buf []graph.Node) []graph.Node {
	if t < 0 || int(t) >= len(d.Dist) || d.Dist[t] < 0 {
		return nil
	}
	need := int(d.Dist[t]) + 1
	if cap(buf) < need {
		buf = make([]graph.Node, need)
	}
	path := buf[:need]
	path[d.Dist[t]] = t
	u := t
	for d.Dist[u] > 0 {
		// choose a predecessor w with probability sigma(w)/sum(sigma)
		target := rng.Float64() * d.Sigma[u]
		var acc float64
		var chosen graph.Node = -1
		for _, w := range g.Neighbors(u) {
			if d.Dist[w] == d.Dist[u]-1 {
				acc += d.Sigma[w]
				if acc >= target {
					chosen = w
					break
				}
			}
		}
		if chosen < 0 { // float round-off: fall back to last valid predecessor
			for _, w := range g.Neighbors(u) {
				if d.Dist[w] == d.Dist[u]-1 {
					chosen = w
				}
			}
		}
		u = chosen
		path[d.Dist[u]] = u
	}
	return path
}
