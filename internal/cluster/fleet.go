package cluster

import (
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"saphyra/internal/serve"
)

// FleetConfig tunes StartFleet.
type FleetConfig struct {
	// Replicas is the fleet size. Default 3.
	Replicas int
	// Serve configures every replica identically (PeerFill is overwritten
	// with the fleet's own peer wiring).
	Serve serve.Config
	// Router overrides router knobs; Replicas/Client are filled in by the
	// fleet.
	Router RouterConfig
	// PeerTimeout bounds one peer cache probe. Default DefaultPeerTimeout.
	PeerTimeout time.Duration
}

// Fleet is an in-process cluster on loopback listeners: N serve.Servers
// wired into a peer-fill ring, fronted by one Router. It is the single
// harness behind the cluster tests, cmd/saphyraload's -cluster mode, and
// examples/cluster — the same wiring a real deployment has, minus
// process boundaries.
type Fleet struct {
	RouterURL   string
	ReplicaURLs []string

	router   *Router
	routerLn net.Listener
	routerHS *http.Server

	mu       sync.Mutex
	replicas []*fleetReplica
}

type fleetReplica struct {
	srv  *serve.Server
	hs   *http.Server
	ln   net.Listener
	dead bool
}

// StartFleet boots n replicas over viewPath plus a router. All replicas
// serve the same view file, so they agree on every generation's bytes.
func StartFleet(viewPath string, cfg FleetConfig) (*Fleet, error) {
	n := cfg.Replicas
	if n <= 0 {
		n = 3
	}
	f := &Fleet{}
	ok := false
	defer func() {
		if !ok {
			f.Close()
		}
	}()

	// Listeners first: every replica needs the full URL list (ring
	// agreement is positional) before any server starts.
	lns := make([]net.Listener, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("cluster: fleet listen: %w", err)
		}
		lns[i] = ln
		f.ReplicaURLs = append(f.ReplicaURLs, "http://"+ln.Addr().String())
	}

	client := &http.Client{}
	for i := range lns {
		peers, err := NewPeers(f.ReplicaURLs, i, cfg.Router.VNodes, client, cfg.PeerTimeout)
		if err != nil {
			return nil, err
		}
		scfg := cfg.Serve
		scfg.PeerFill = peers.Fill
		srv, err := serve.New(viewPath, scfg)
		if err != nil {
			return nil, fmt.Errorf("cluster: fleet replica %d: %w", i, err)
		}
		hs := &http.Server{Handler: srv.Handler()}
		f.replicas = append(f.replicas, &fleetReplica{srv: srv, hs: hs, ln: lns[i]})
		go hs.Serve(lns[i])
	}

	rcfg := cfg.Router
	rcfg.Replicas = f.ReplicaURLs
	rcfg.Client = client
	router, err := NewRouter(rcfg)
	if err != nil {
		return nil, err
	}
	f.router = router
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("cluster: fleet router listen: %w", err)
	}
	f.routerLn = ln
	f.RouterURL = "http://" + ln.Addr().String()
	f.routerHS = &http.Server{Handler: router.Handler()}
	go f.routerHS.Serve(ln)
	ok = true
	return f, nil
}

// Router returns the fleet's router (for its registry and statusz).
func (f *Fleet) Router() *Router { return f.router }

// Server returns replica i's serving layer (nil once killed) — the handle
// the tests use to read cache counters and compute bitwise references.
func (f *Fleet) Server(i int) *serve.Server {
	f.mu.Lock()
	defer f.mu.Unlock()
	r := f.replicas[i]
	if r == nil || r.dead {
		return nil
	}
	return r.srv
}

// KillReplica hard-stops replica i: the listener closes and every open
// connection is torn down, the shape of a crashed process (connect refusals
// and io errors, not graceful drains). The router's hop-retry and health
// EWMA are expected to absorb it.
func (f *Fleet) KillReplica(i int) {
	f.mu.Lock()
	r := f.replicas[i]
	f.mu.Unlock()
	if r == nil || r.dead {
		return
	}
	r.hs.Close()
	r.srv.Close()
	f.mu.Lock()
	r.dead = true
	f.mu.Unlock()
}

// Close tears the whole fleet down.
func (f *Fleet) Close() {
	if f.router != nil {
		f.router.Close()
	}
	if f.routerHS != nil {
		f.routerHS.Close()
	}
	for i := range f.replicas {
		f.KillReplica(i)
	}
}
