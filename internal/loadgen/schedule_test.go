package loadgen

import (
	"bytes"
	"math"
	"testing"
	"time"
)

func testIDs(n int) []int64 {
	ids := make([]int64, n)
	for i := range ids {
		ids[i] = int64(i*3 + 1) // sparse, like a real edge list
	}
	return ids
}

// TestScheduleDeterminism is the tentpole determinism contract: one seed
// yields a byte-identical request schedule, and the seed actually matters.
func TestScheduleDeterminism(t *testing.T) {
	ids := testIDs(500)
	for _, m := range Mixes() {
		a, err := Build(m, ids, 42)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		b, err := Build(m, ids, 42)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if !bytes.Equal(a.Encode(), b.Encode()) {
			t.Errorf("%s: same seed produced different schedules", m.Name)
		}
		c, err := Build(m, ids, 43)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if bytes.Equal(a.Encode(), c.Encode()) {
			t.Errorf("%s: different seeds produced identical schedules", m.Name)
		}
	}
}

// TestScheduleShape checks structural invariants of a built schedule:
// sorted arrivals inside the span, contiguous Seq, class shares near their
// targets, storms fully materialized, and pool-backed classes drawing
// distinct in-range targets.
func TestScheduleShape(t *testing.T) {
	ids := testIDs(500)
	inIDs := make(map[int64]bool, len(ids))
	for _, id := range ids {
		inIDs[id] = true
	}
	m := ReloadStorm()
	s, err := Build(m, ids, 7)
	if err != nil {
		t.Fatal(err)
	}
	classCount := make([]int, len(m.Classes))
	reloads := 0
	for i, ev := range s.Events {
		if ev.Seq != i {
			t.Fatalf("event %d has Seq %d", i, ev.Seq)
		}
		if i > 0 && ev.At < s.Events[i-1].At {
			t.Fatalf("event %d at %v before predecessor %v", i, ev.At, s.Events[i-1].At)
		}
		if ev.Kind == EventReload {
			reloads++
			continue
		}
		if ev.At < 0 || ev.At >= m.Duration {
			t.Fatalf("event %d at %v outside [0, %v)", i, ev.At, m.Duration)
		}
		classCount[ev.Class]++
		c := m.Classes[ev.Class]
		if len(ev.Targets) != c.Targets {
			t.Fatalf("event %d: %d targets, class wants %d", i, len(ev.Targets), c.Targets)
		}
		seen := make(map[int64]bool)
		for _, id := range ev.Targets {
			if !inIDs[id] {
				t.Fatalf("event %d: target %d not an original id", i, id)
			}
			if seen[id] {
				t.Fatalf("event %d: duplicate target %d", i, id)
			}
			seen[id] = true
		}
	}
	if want := m.Storms[0].Count; reloads != want {
		t.Fatalf("%d reload events, want %d", reloads, want)
	}
	total := s.Requests()
	for ci, c := range m.Classes {
		want := c.Share * float64(total)
		got := float64(classCount[ci])
		// Poisson classes fluctuate; 4-sigma around the binomial mean.
		slack := 4*math.Sqrt(want) + 2
		if math.Abs(got-want) > slack {
			t.Errorf("class %s: %v events, want %v ± %v", c.Name, got, want, slack)
		}
	}
}

// TestZipfSkew is the satellite chi-squared bound: the empirical pool-entry
// frequencies of a skewed class must match the target zipf law. The pool
// entry behind an event is recoverable from its seed (Seed = base + entry).
func TestZipfSkew(t *testing.T) {
	const poolSize, zipfS = 16, 1.2
	m := Mix{
		Name: "zipf-test", Rate: 4000, Duration: 4 * time.Second,
		Classes: []Class{{
			Name: "z", Share: 1, Arrival: Constant, Method: "saphyra",
			Targets: 3, Pool: poolSize, ZipfS: zipfS,
			Eps: 0.1, Delta: 0.05, Seed: 1000,
		}},
	}
	s, err := Build(m, testIDs(300), 11)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int64, poolSize)
	for _, ev := range s.Events {
		p := ev.Seed - 1000
		if p < 0 || p >= poolSize {
			t.Fatalf("event seed %d outside the pool-derived range", ev.Seed)
		}
		counts[p]++
	}
	n := float64(len(s.Events))
	if n < 10000 {
		t.Fatalf("only %v draws", n)
	}
	var z float64
	for i := 0; i < poolSize; i++ {
		z += math.Pow(float64(i+1), -zipfS)
	}
	var chi2 float64
	for i, c := range counts {
		exp := n * math.Pow(float64(i+1), -zipfS) / z
		d := float64(c) - exp
		chi2 += d * d / exp
	}
	// df = 15; the 99.9% critical value is 37.7. The draw stream is
	// deterministic, so a pass is stable; a bound this tight still fails
	// loudly if the alias table or the weight law regresses.
	if chi2 > 37.7 {
		t.Errorf("chi-squared %v > 37.7: empirical frequencies do not match zipf(s=%v)", chi2, zipfS)
	}
	// Skew sanity: the hottest entry dominates, the law is monotone in rank.
	if counts[0] < counts[poolSize-1]*2 {
		t.Errorf("head %d not clearly hotter than tail %d", counts[0], counts[poolSize-1])
	}
}

// TestFreshSeedUnique checks the miss-heavy knob: a FreshSeed class never
// repeats a (seed, targets) pair, so no request can be a cache hit.
func TestFreshSeedUnique(t *testing.T) {
	m := Mix{
		Name: "fresh", Rate: 500, Duration: time.Second,
		Classes: []Class{{
			Name: "f", Share: 1, Arrival: Poisson, Method: "saphyra",
			Targets: 4, Pool: 8, ZipfS: 0.5, Eps: 0.1, Delta: 0.05, Seed: 1, FreshSeed: true,
		}},
	}
	s, err := Build(m, testIDs(200), 3)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int64]bool)
	for _, ev := range s.Events {
		if seen[ev.Seed] {
			t.Fatalf("seed %d repeats: FreshSeed class can hit the cache", ev.Seed)
		}
		seen[ev.Seed] = true
	}
}

// TestMixValidate rejects malformed mixes.
func TestMixValidate(t *testing.T) {
	ids := testIDs(10)
	bad := []Mix{
		{Name: "no-rate", Duration: time.Second, Classes: []Class{{Share: 1, Targets: 1, Pool: 1}}},
		{Name: "no-duration", Rate: 1, Classes: []Class{{Share: 1, Targets: 1, Pool: 1}}},
		{Name: "no-classes", Rate: 1, Duration: time.Second},
		{Name: "no-pool", Rate: 1, Duration: time.Second, Classes: []Class{{Share: 1, Targets: 2}}},
		{Name: "over-share", Rate: 1, Duration: time.Second, Classes: []Class{{Share: 0.7, Targets: 1, Pool: 1}, {Share: 0.7, Targets: 1, Pool: 1}}},
	}
	for _, m := range bad {
		if _, err := Build(m, ids, 1); err == nil {
			t.Errorf("mix %q: Build accepted an invalid mix", m.Name)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName accepted an unknown mix")
	}
	for _, m := range Mixes() {
		if err := m.Validate(); err != nil {
			t.Errorf("named mix %s invalid: %v", m.Name, err)
		}
	}
}
