// Command graphgen generates the synthetic networks used by the
// experiments (the Table II stand-ins or raw generator families) and writes
// them as edge-list files.
//
// Usage:
//
//	graphgen -net flickr-sim -scale 1.0 -out flickr.txt
//	graphgen -gen ba -n 100000 -k 5 -seed 7 -out ba.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"saphyra/internal/datasets"
	"saphyra/internal/graph"
)

func main() {
	var (
		net   = flag.String("net", "", "Table II stand-in: flickr-sim | livejournal-sim | usaroad-sim | orkut-sim")
		scale = flag.Float64("scale", 1.0, "network scale (1.0 = default experiment size)")
		gen   = flag.String("gen", "", "raw generator: ba | plc | er | ws | road | grid | tree")
		n     = flag.Int("n", 10000, "number of nodes (raw generators)")
		m     = flag.Int64("m", 0, "number of edges (er)")
		k     = flag.Int("k", 4, "attachment/lattice degree (ba, plc, ws)")
		p     = flag.Float64("p", 0.3, "triangle/rewire/drop probability (plc, ws, road)")
		rows  = flag.Int("rows", 100, "grid rows (road, grid)")
		cols  = flag.Int("cols", 100, "grid cols (road, grid)")
		seed  = flag.Int64("seed", 1, "generator seed")
		out   = flag.String("out", "", "output path (default stdout)")
	)
	flag.Parse()

	g, err := build(*net, *scale, *gen, *n, *m, *k, *p, *rows, *cols, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
	if *out == "" {
		if err := graph.WriteEdgeList(os.Stdout, g); err != nil {
			fmt.Fprintln(os.Stderr, "graphgen:", err)
			os.Exit(1)
		}
		return
	}
	if err := graph.SaveEdgeList(*out, g); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s: %d nodes, %d edges\n", *out, g.NumNodes(), g.NumEdges())
}

func build(net string, scale float64, gen string, n int, m int64, k int, p float64, rows, cols int, seed int64) (*graph.Graph, error) {
	if net != "" {
		nw, err := datasets.ByName(net)
		if err != nil {
			return nil, err
		}
		return nw.Build(scale), nil
	}
	switch gen {
	case "ba":
		return graph.BarabasiAlbert(n, k, seed), nil
	case "plc":
		return graph.PowerLawCluster(n, k, p, seed), nil
	case "er":
		if m == 0 {
			m = int64(n) * 4
		}
		return graph.ErdosRenyi(n, m, seed), nil
	case "ws":
		return graph.WattsStrogatz(n, k, p, seed), nil
	case "road":
		return graph.RoadNetwork(rows, cols, p, seed), nil
	case "grid":
		return graph.Grid2D(rows, cols), nil
	case "tree":
		return graph.RandomTree(n, seed), nil
	case "":
		return nil, fmt.Errorf("one of -net or -gen is required")
	}
	return nil, fmt.Errorf("unknown generator %q", gen)
}
