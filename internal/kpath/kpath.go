// Package kpath implements k-path centrality estimation [38], the paper's
// second running example of a sampling-estimable centrality (Section II-A).
//
// A sample is a random walk: pick a start node u uniformly, pick a length l
// uniformly from {1..k}, then take l uniform random-neighbor steps (stopping
// early at isolated dead ends). The k-path centrality of v is the
// probability that v is visited by such a walk after the start, i.e. the
// expected risk of the hypothesis h_v(x) = 1{v in x \ {start}}.
//
// Two estimators are provided. Estimate reuses the core framework with an
// empty exact subspace (DirectSpace), demonstrating that SaPHyRa's
// machinery is not specific to betweenness. EstimatePartitioned is a full
// second instantiation of the framework with a non-trivial exact subspace
// (the 1-step walks — see partitioned.go).
//
// Determinism: walks are drawn on the core engine's fixed virtual-worker
// streams and the partitioned exact phase is chunked by sched.Bounds with
// per-target writes, so for a fixed seed both estimators are
// bitwise-identical at any Options.Workers value. The walk sampler indexes
// neighbor lists with random variates, which makes the *order* of each
// adjacency list part of that contract — it therefore always reads the
// sorted CSR (the view's embedded graph on the EstimateView path), never
// the block-grouped arrays; see the determinism notes in DESIGN.md
// sections 3 and 7.
package kpath

import (
	"context"
	"errors"
	"fmt"
	"runtime"

	"saphyra/internal/bicomp"
	"saphyra/internal/core"
	"saphyra/internal/graph"
	"saphyra/internal/params"
	"saphyra/internal/vc"
)

// Options configures the estimator.
type Options struct {
	K       int     // maximum walk length in edges; default 3
	Epsilon float64 // additive error; default 0.05
	Delta   float64 // failure probability; default 0.01
	Workers int     // goroutines; the result does not depend on this
	Seed    int64   // fixed seed => bitwise-identical output at any worker count
}

func (o *Options) setDefaults() {
	if o.K == 0 {
		o.K = 3
	}
	if o.Epsilon == 0 {
		o.Epsilon = 0.05
	}
	if o.Delta == 0 {
		o.Delta = 0.01
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
}

// Result holds k-path centrality estimates for the target set.
type Result struct {
	Nodes []graph.Node
	KPath []float64
	Est   *core.Estimate
}

// targetIndex validates the inputs and builds the sorted target set with its
// node -> target-index map (-1 for non-targets), shared by both estimators.
// Validation goes through the shared internal/params checks, so an invalid
// eps/delta/k or an out-of-range target returns a typed error the serving
// layer can classify as caller fault (params.IsBadInput).
func targetIndex(g *graph.Graph, a []graph.Node, opt *Options) (nodes []graph.Node, aIndex []int32, err error) {
	opt.setDefaults()
	n := g.NumNodes()
	if n == 0 {
		return nil, nil, errors.New("kpath: empty graph")
	}
	if err := params.CheckEpsDelta(opt.Epsilon, opt.Delta); err != nil {
		return nil, nil, fmt.Errorf("kpath: %w", err)
	}
	if err := params.CheckK(opt.K); err != nil {
		return nil, nil, fmt.Errorf("kpath: %w", err)
	}
	if err := params.CheckTargets(a, n); err != nil {
		return nil, nil, fmt.Errorf("kpath: %w", err)
	}
	nodes = graph.DedupSorted(a)
	aIndex = make([]int32, n)
	for i := range aIndex {
		aIndex[i] = -1
	}
	for i, v := range nodes {
		aIndex[v] = int32(i)
	}
	return nodes, aIndex, nil
}

// walkVCDim bounds the VC dimension of the walk hypothesis class: a walk
// visits at most k nodes after the start, so at most min(k, |A|) hypotheses
// fire per sample (Lemma 5).
func walkVCDim(k, targets int) int {
	piMax := int64(k)
	if int64(targets) < piMax {
		piMax = int64(targets)
	}
	return max(1, vc.DimFromMaxInner(piMax))
}

// Estimate computes (eps, delta)-estimates of the k-path centrality of the
// target nodes. Cancellation is polled at the core engine's round and
// stream checkpoints: a done ctx aborts with a *params.CanceledError, never
// a partial estimate.
func Estimate(ctx context.Context, g *graph.Graph, a []graph.Node, opt Options) (*Result, error) {
	nodes, aIndex, err := targetIndex(g, a, &opt)
	if err != nil {
		return nil, err
	}
	space := &core.DirectSpace{
		K:   len(nodes),
		Dim: walkVCDim(opt.K, len(nodes)),
		Make: func(seed int64) core.Sampler {
			// lengths uniform in {1..k}: the unpartitioned sample space
			return newWalkSampler(g, aIndex, 1, opt.K, seed)
		},
	}
	est, err := core.Run(ctx, space, core.Options{
		Epsilon: opt.Epsilon,
		Delta:   opt.Delta,
		Workers: opt.Workers,
		Seed:    opt.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &Result{Nodes: nodes, KPath: est.Risks, Est: est}, nil
}

// EstimateView is Estimate served from a block-annotated adjacency view
// (typically opened from a serialized file with bicomp.OpenMapped): walks
// run on the view's embedded CSR, so one persisted artifact powers the
// betweenness, k-path, and closeness engines without reloading the edge
// list. Results are bitwise-identical to Estimate on the graph the view was
// built from.
func EstimateView(ctx context.Context, view *bicomp.BlockCSR, a []graph.Node, opt Options) (*Result, error) {
	return Estimate(ctx, view.G, a, opt)
}

// Exact computes the exact k-path centrality of every node by dynamic
// programming over walk distributions: occupancy vectors are propagated k
// steps and first-visit probabilities accumulated. O(k * n * m); for tests
// and small graphs.
//
// Because "v visited at least once" is not Markovian in the node marginal,
// the DP enumerates walks explicitly with memoized distributions only for
// graphs where that is feasible; here we use direct path enumeration with
// probability weights, exponential in k -- keep k and degrees small.
func Exact(g *graph.Graph, k int) []float64 {
	n := g.NumNodes()
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	visited := make(map[graph.Node]bool, k+1)
	var walk func(u graph.Node, stepsLeft int, prob float64)
	walk = func(u graph.Node, stepsLeft int, prob float64) {
		if stepsLeft == 0 {
			return
		}
		nbrs := g.Neighbors(u)
		if len(nbrs) == 0 {
			return
		}
		p := prob / float64(len(nbrs))
		for _, w := range nbrs {
			first := !visited[w]
			if first {
				visited[w] = true
				out[w] += p
			}
			walk(w, stepsLeft-1, p)
			if first {
				delete(visited, w)
			}
		}
	}
	for u := graph.Node(0); int(u) < n; u++ {
		for l := 1; l <= k; l++ {
			visited[u] = true
			walk(u, l, 1.0/(float64(n)*float64(k)))
			delete(visited, u)
		}
	}
	return out
}
