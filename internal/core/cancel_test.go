package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"saphyra/internal/graph"
	"saphyra/internal/params"
	"saphyra/internal/sched"
)

// TestDrawBatchStopBound bounds time-to-cancel inside one grouping round:
// raising the wired Stop mid-batch must return DrawBatch within the poll
// stride, not at the end of the round. The requested batch is astronomically
// large, so any return at all proves the sub-round polls fired — the bound
// below is pure scheduling slack, orders of magnitude under the uncanceled
// round time.
func TestDrawBatchStopBound(t *testing.T) {
	g := skewedGraph()
	sp := testSpace(t, g, 80, 11)
	s := sp.NewSampler(5).(*bcSampler)
	stop := new(sched.Stop)
	s.SetStop(stop)

	hits := make([]int64, sp.NumHypotheses())
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.DrawBatch(1<<40, hits)
	}()

	time.Sleep(20 * time.Millisecond) // let the round get going
	raised := time.Now()
	stop.Raise()
	select {
	case <-done:
		if e := time.Since(raised); e > 2*time.Second {
			t.Fatalf("DrawBatch returned %v after Raise; want sub-round latency", e)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("DrawBatch never observed the raised stop")
	}
}

// TestStopWiringIsBitwiseNeutral: a wired-but-unraised Stop must not change
// a single bit of the sample stream — the polls are pure control flow and
// consume no randomness. Same seed, same batch, with and without the wiring.
func TestStopWiringIsBitwiseNeutral(t *testing.T) {
	g := graph.BarabasiAlbert(1200, 3, 9)
	sp := testSpace(t, g, 40, 3)

	draw := func(wire bool) []int64 {
		s := sp.NewSampler(7).(*bcSampler)
		if wire {
			s.SetStop(new(sched.Stop))
		}
		hits := make([]int64, sp.NumHypotheses())
		s.DrawBatch(20_000, hits)
		return hits
	}
	bare, wired := draw(false), draw(true)
	for i := range bare {
		if bare[i] != wired[i] {
			t.Fatalf("hits[%d] = %d with stop wired, %d without (wiring changed the stream)", i, wired[i], bare[i])
		}
	}
}

// TestEstimateCancelLatency: end to end, canceling the request context mid
// sampling must surface a *params.CanceledError well before the run would
// have finished — the chunk-boundary checkpoints alone bound cancel latency
// by a whole grouping round; the sub-round polls bring it to the stride.
func TestEstimateCancelLatency(t *testing.T) {
	g := skewedGraph()
	targets := make([]graph.Node, 0, 200)
	for i := 0; i < 200; i++ {
		targets = append(targets, graph.Node((i*191)%g.NumNodes()))
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := EstimateBC(ctx, g, targets, BCOptions{
		Epsilon: 0.002, Delta: 0.01, Seed: 99, Workers: 2,
	})
	elapsed := time.Since(start)
	var ce *params.CanceledError
	if err == nil || !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *params.CanceledError", err)
	}
	// The eps above asks for hundreds of millions of samples — minutes of
	// work. Returning within a few seconds of the 30ms cancel proves the
	// run aborted sub-round rather than finishing a full grouping round.
	if elapsed > 5*time.Second {
		t.Fatalf("cancel took %v end to end; want bounded sub-round latency", elapsed)
	}
}
