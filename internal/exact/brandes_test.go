package exact

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"saphyra/internal/graph"
	"saphyra/internal/testutil"
)

func almostEqual(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

func TestBCStar(t *testing.T) {
	// Star K_{1,4}: center lies on all paths between the 4 leaves:
	// bc(center) = 4*3 / (5*4) = 0.6; leaves 0.
	g := graph.Star(5)
	bc := BC(g)
	if math.Abs(bc[0]-0.6) > 1e-12 {
		t.Errorf("bc(center) = %g, want 0.6", bc[0])
	}
	for v := 1; v < 5; v++ {
		if bc[v] != 0 {
			t.Errorf("bc(leaf %d) = %g, want 0", v, bc[v])
		}
	}
}

func TestBCPath(t *testing.T) {
	// Path 0-1-2-3: bc(1) counts ordered pairs {0}x{2,3} and back = 4,
	// normalized by 12.
	g := graph.Path(4)
	bc := BC(g)
	want := []float64{0, 4.0 / 12, 4.0 / 12, 0}
	if !almostEqual(bc, want, 1e-12) {
		t.Errorf("bc = %v, want %v", bc, want)
	}
}

func TestBCCycle(t *testing.T) {
	// On C_5 all nodes are symmetric; each inner-node count: for each node v,
	// pairs (s,t) whose unique shortest path passes v: distance-2 pairs
	// through v: 2 ordered pairs... just check symmetry and positivity.
	g := graph.Cycle(5)
	bc := BC(g)
	for v := 1; v < 5; v++ {
		if math.Abs(bc[v]-bc[0]) > 1e-12 {
			t.Errorf("cycle bc not symmetric: bc[%d]=%g bc[0]=%g", v, bc[v], bc[0])
		}
	}
	if bc[0] <= 0 {
		t.Error("cycle bc should be positive")
	}
}

func TestBCCompleteIsZero(t *testing.T) {
	g := graph.Complete(6)
	for v, x := range BC(g) {
		if x != 0 {
			t.Errorf("bc(%d) = %g, want 0 in a clique", v, x)
		}
	}
}

func TestBCMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(16)
		g := testutil.RandomConnectedGraph(n, rng.Intn(2*n), seed)
		got := BC(g)
		want := testutil.BruteBC(g)
		if !almostEqual(got, want, 1e-9) {
			t.Logf("seed %d: bc mismatch\n got %v\nwant %v", seed, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestBCDisconnected(t *testing.T) {
	b := graph.NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2) // path in component 1
	b.AddEdge(3, 4)
	b.AddEdge(4, 5) // path in component 2
	g := b.Build()
	bc := BC(g)
	// node 1 is inner for ordered pairs (0,2) and (2,0): 2/30
	if math.Abs(bc[1]-2.0/30) > 1e-12 {
		t.Errorf("bc(1) = %g, want %g", bc[1], 2.0/30)
	}
	if math.Abs(bc[4]-2.0/30) > 1e-12 {
		t.Errorf("bc(4) = %g, want %g", bc[4], 2.0/30)
	}
}

func TestBCParallelMatchesSequential(t *testing.T) {
	g := graph.BarabasiAlbert(300, 3, 9)
	seq := BC(g)
	for _, workers := range []int{1, 2, 4, 7} {
		par := BCParallel(g, workers)
		if !almostEqual(seq, par, 1e-9) {
			t.Errorf("workers=%d: parallel differs from sequential", workers)
		}
	}
}

func TestBCParallelDefaultWorkers(t *testing.T) {
	g := graph.Cycle(50)
	if !almostEqual(BC(g), BCParallel(g, 0), 1e-12) {
		t.Error("default worker count differs from sequential")
	}
}

func TestBCTinyGraphs(t *testing.T) {
	if got := BC(graph.NewBuilder(0).Build()); len(got) != 0 {
		t.Error("empty graph should give empty bc")
	}
	one := graph.NewBuilder(1).Build()
	if got := BC(one); len(got) != 1 || got[0] != 0 {
		t.Errorf("single node bc = %v", got)
	}
	two := graph.Path(2)
	bc := BC(two)
	if bc[0] != 0 || bc[1] != 0 {
		t.Errorf("P2 bc = %v, want zeros", bc)
	}
}
