package closeness

import (
	"context"

	"testing"

	"saphyra/internal/bicomp"
	"saphyra/internal/graph"
)

func benchGraph() *graph.Graph {
	return graph.BarabasiAlbert(2000, 3, 42)
}

func benchTargets(g *graph.Graph, n int) []graph.Node {
	targets := make([]graph.Node, 0, n)
	for i := 0; i < n; i++ {
		targets = append(targets, graph.Node((int64(i)*2_654_435_761+7)%int64(g.NumNodes())))
	}
	return targets
}

// benchOpt caps the sample budget so the row measures the pricing engine,
// not the Bernstein stopping point of one particular graph.
var benchOpt = Options{Epsilon: 0.1, Delta: 0.1, Seed: 7, Workers: 4, MaxSamples: 2000}

// BenchmarkCloseness measures the estimator end to end (virtual-worker
// MS-BFS pricing, deterministic merge) on the raw CSR in its serving
// configuration — Engine built once, workspaces pooled — the row to compare
// against BENCH_sampling.json history when the engine changes.
func BenchmarkCloseness(b *testing.B) {
	g := benchGraph()
	targets := benchTargets(g, 50)
	eng := NewEngine(g)
	var res Result
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.EstimateInto(context.Background(), targets, benchOpt, &res); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClosenessView is BenchmarkCloseness priced over the shared
// BlockCSR view's grouped adjacency (the build-once/serve-many path); the
// view build is outside the timed loop, as it is in a serving process.
func BenchmarkClosenessView(b *testing.B) {
	g := benchGraph()
	d := bicomp.Decompose(g)
	view := bicomp.NewBlockCSR(d, bicomp.NewOutReach(d))
	targets := benchTargets(g, 50)
	eng := NewEngineView(view)
	var res Result
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.EstimateInto(context.Background(), targets, benchOpt, &res); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClosenessLegacy pins the pre-MS-BFS engine — one scalar BFS per
// sampled source (legacy_test.go) — so the bit-parallel win stays
// measurable in BENCH_sampling.json after the production code moved on.
func BenchmarkClosenessLegacy(b *testing.B) {
	g := benchGraph()
	targets := benchTargets(g, 50)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := estimateLegacy(context.Background(), g, targets, benchOpt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClosenessSampleBatch isolates the pricing hot loop: one stream,
// sources priced 64 lanes per MS-BFS pass. Reported per sample.
func BenchmarkClosenessSampleBatch(b *testing.B) {
	g := benchGraph()
	targets := benchTargets(g, 50)
	eng := NewEngine(g)
	nodes := graph.DedupSorted(targets)
	sc := eng.acquire(nodes)
	defer eng.release(sc, nodes)
	s := sc.activate(eng, 0, benchOpt.Seed, len(nodes))
	b.ReportAllocs()
	b.ResetTimer()
	s.sampleBatch(context.Background(), eng, sc.aIndex, len(nodes), nil, int64(b.N))
	if s.err != nil {
		b.Fatal(s.err)
	}
}
