package bicomp

import (
	"sync"
	"testing"

	"saphyra/internal/graph"
	"saphyra/internal/testutil"
)

func TestBlockDiameterUpperBoundMemoized(t *testing.T) {
	g := testutil.RandomConnectedGraph(60, 80, 2)
	d := Decompose(g)
	first := make([]int32, d.NumBlocks)
	for b := int32(0); int(b) < d.NumBlocks; b++ {
		first[b] = d.BlockDiameterUpperBound(b, 16)
	}
	// second pass must return identical values (served from the memo)
	for b := int32(0); int(b) < d.NumBlocks; b++ {
		if got := d.BlockDiameterUpperBound(b, 16); got != first[b] {
			t.Fatalf("block %d: memoized %d != first %d", b, got, first[b])
		}
	}
}

func TestBlockDiameterUpperBoundIsUpperBound(t *testing.T) {
	g := testutil.RandomConnectedGraph(40, 50, 9)
	d := Decompose(g)
	for b := int32(0); int(b) < d.NumBlocks; b++ {
		exact := d.BlockDiameter(b)
		// threshold 0 forces the double-sweep path for all blocks > 2 nodes
		if ub := d.BlockDiameterUpperBound(b, 0); ub < exact {
			t.Errorf("block %d: upper bound %d < exact %d", b, ub, exact)
		}
	}
}

func TestBlockDiameterUpperBoundSizeTwoBlocks(t *testing.T) {
	g := graph.Path(5) // all blocks are single edges
	d := Decompose(g)
	for b := int32(0); int(b) < d.NumBlocks; b++ {
		if ub := d.BlockDiameterUpperBound(b, 64); ub != 1 {
			t.Errorf("edge block %d: bound %d, want 1", b, ub)
		}
	}
}

func TestBlockDiameterUpperBoundConcurrent(t *testing.T) {
	g := testutil.RandomConnectedGraph(80, 120, 4)
	d := Decompose(g)
	var wg sync.WaitGroup
	results := make([][]int32, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out := make([]int32, d.NumBlocks)
			for b := int32(0); int(b) < d.NumBlocks; b++ {
				out[b] = d.BlockDiameterUpperBound(b, 16)
			}
			results[w] = out
		}(w)
	}
	wg.Wait()
	for w := 1; w < 8; w++ {
		for b := range results[0] {
			if results[w][b] != results[0][b] {
				t.Fatalf("worker %d block %d: %d != %d", w, b, results[w][b], results[0][b])
			}
		}
	}
}
