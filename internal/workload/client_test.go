package workload

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"saphyra/internal/serve"
)

func okBody(w http.ResponseWriter) {
	json.NewEncoder(w).Encode(serve.RankResponse{
		Generation: 1, Method: "saphyra", Eps: 0.1, Seed: 4,
		Nodes: []int64{7, 9}, Scores: []float64{0.5, 0.25}, Ranks: []int{1, 2},
	})
}

// fakeClock captures requested sleeps without sleeping.
type fakeClock struct{ slept []time.Duration }

func (f *fakeClock) sleep(d time.Duration) { f.slept = append(f.slept, d) }

func newTestClient(base string) (*Client, *fakeClock) {
	fc := &fakeClock{}
	c := &Client{Base: base, ClientID: "test"}
	c.sleep = fc.sleep
	return c, fc
}

// TestClientHonorsRetryAfter: a 429 with Retry-After is retried after
// exactly the server's hint — not the exponential fallback.
func TestClientHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "2")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(map[string]string{"error": "quota exhausted"})
			return
		}
		okBody(w)
	}))
	defer srv.Close()
	c, fc := newTestClient(srv.URL)
	resp, err := c.Rank(context.Background(), serve.RankRequest{Method: "saphyra", Targets: []int64{7, 9}})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Nodes) != 2 || resp.Nodes[0] != 7 {
		t.Fatalf("bad response: %+v", resp)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d calls, want 3", calls.Load())
	}
	if len(fc.slept) != 2 || fc.slept[0] != 2*time.Second || fc.slept[1] != 2*time.Second {
		t.Fatalf("slept %v, want exactly [2s 2s] (the server's Retry-After)", fc.slept)
	}
	if st := c.Stats(); st.Retries != 2 || st.Waited != 4*time.Second {
		t.Fatalf("stats %+v, want 2 retries / 4s waited", st)
	}
}

// TestClientBackoffJitterGrows: without a Retry-After hint the waits follow
// jittered exponential backoff — each draw inside [step/2, step), steps
// doubling.
func TestClientBackoffJitterGrows(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 3 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		okBody(w)
	}))
	defer srv.Close()
	c, fc := newTestClient(srv.URL)
	c.MaxAttempts = 5
	c.BaseBackoff = 100 * time.Millisecond
	if _, err := c.Rank(context.Background(), serve.RankRequest{Method: "saphyra", Targets: []int64{7}}); err != nil {
		t.Fatal(err)
	}
	if len(fc.slept) != 3 {
		t.Fatalf("%d sleeps, want 3", len(fc.slept))
	}
	for i, d := range fc.slept {
		step := c.BaseBackoff << uint(i)
		if d < step/2 || d >= step {
			t.Errorf("backoff %d = %v, want in [%v, %v)", i, d, step/2, step)
		}
	}
}

// TestClientRetryBudget: a Retry-After horizon beyond the remaining budget
// fails immediately instead of sleeping toward an unreachable deadline.
func TestClientRetryBudget(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1000") // e.g. a drained 0.001-qps bucket
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer srv.Close()
	c, fc := newTestClient(srv.URL)
	c.RetryBudget = 5 * time.Second
	_, err := c.Rank(context.Background(), serve.RankRequest{Method: "saphyra", Targets: []int64{7}})
	if err == nil || !strings.Contains(err.Error(), "retry budget") {
		t.Fatalf("err = %v, want retry-budget exhaustion", err)
	}
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusTooManyRequests || se.RetryAfter != 1000*time.Second {
		t.Fatalf("cause = %v, want the 429 with its Retry-After", err)
	}
	if len(fc.slept) != 0 {
		t.Fatalf("slept %v, want no sleeps", fc.slept)
	}
}

// TestClientMaxAttempts: persistent overload exhausts the attempt bound and
// surfaces the last typed error.
func TestClientMaxAttempts(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	c, _ := newTestClient(srv.URL)
	c.MaxAttempts = 3
	c.BaseBackoff = time.Millisecond
	_, err := c.Rank(context.Background(), serve.RankRequest{Method: "saphyra", Targets: []int64{7}})
	var se *StatusError
	if err == nil || !errors.As(err, &se) || se.Code != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want wrapped 503", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d calls, want MaxAttempts=3", calls.Load())
	}
}

// TestClientDoesNotRetryContractErrors: 4xx responses other than 429 are
// the caller's fault; retrying them would just repeat the mistake.
func TestClientDoesNotRetryContractErrors(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(map[string]string{"error": "targets: empty target set"})
	}))
	defer srv.Close()
	c, fc := newTestClient(srv.URL)
	_, err := c.Rank(context.Background(), serve.RankRequest{Method: "saphyra"})
	var se *StatusError
	if err == nil || !errors.As(err, &se) || se.Code != http.StatusBadRequest {
		t.Fatalf("err = %v, want immediate 400", err)
	}
	if !strings.Contains(se.Message, "empty target set") {
		t.Errorf("typed error lost the server's message: %q", se.Message)
	}
	if calls.Load() != 1 || len(fc.slept) != 0 {
		t.Fatalf("calls %d sleeps %v, want exactly one attempt", calls.Load(), fc.slept)
	}
}

// TestClientSendsPolicyHeaders: identity, degradation opt-in, and deadline
// all travel as headers.
func TestClientSendsPolicyHeaders(t *testing.T) {
	var gotID, gotDeg, gotTimeout string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotID = r.Header.Get("Client-Id")
		gotDeg = r.Header.Get("Degrade-Ms")
		gotTimeout = r.Header.Get("Timeout-Ms")
		okBody(w)
	}))
	defer srv.Close()
	c := &Client{Base: srv.URL, ClientID: "experiment-7", DegradeMs: 1500, TimeoutMs: 250}
	if _, err := c.TopK(context.Background(), "saphyra", 5); err != nil {
		t.Fatal(err)
	}
	if gotID != "experiment-7" || gotDeg != "1500" || gotTimeout != "250" {
		t.Fatalf("headers Client-Id=%q Degrade-Ms=%q Timeout-Ms=%q", gotID, gotDeg, gotTimeout)
	}
}

// TestClientContextCancellation: a canceled context stops the retry loop.
func TestClientContextCancellation(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	c := &Client{Base: srv.URL, BaseBackoff: time.Millisecond}
	c.sleep = func(time.Duration) { cancel() } // cancel during the first backoff
	_, err := c.Rank(ctx, serve.RankRequest{Method: "saphyra", Targets: []int64{7}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestClient503HonorsRetryAfterAndSurfacesReplica: a router-relayed 503
// carries the same Retry-After contract as a 429 — the client obeys the
// hint exactly — and when the terminal attempt still fails, the replica
// that produced it (the router's X-Saphyra-Replica header) survives into
// the returned *StatusError so drivers can log WHICH box was sick, not just
// that the fleet was.
func TestClient503HonorsRetryAfterAndSurfacesReplica(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "3")
		w.Header().Set("X-Saphyra-Replica", "http://replica-2:8372")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]string{"error": "loading view"})
	}))
	defer srv.Close()
	c, fc := newTestClient(srv.URL)
	_, err := c.Rank(context.Background(), serve.RankRequest{Method: "saphyra", Targets: []int64{7}})
	if err == nil {
		t.Fatal("want error after exhausting attempts on 503")
	}
	var se *StatusError
	if !errors.As(err, &se) {
		t.Fatalf("want *StatusError in chain, got %v", err)
	}
	if se.Code != http.StatusServiceUnavailable || se.RetryAfter != 3*time.Second {
		t.Fatalf("got %+v, want 503 with 3s Retry-After parsed", se)
	}
	if se.Replica != "http://replica-2:8372" {
		t.Fatalf("Replica = %q, want the X-Saphyra-Replica header value", se.Replica)
	}
	if !strings.Contains(err.Error(), "from http://replica-2:8372") {
		t.Fatalf("error text should name the terminal replica: %v", err)
	}
	for i, d := range fc.slept {
		if d != 3*time.Second {
			t.Fatalf("sleep %d was %v, want the server's 3s hint (same contract as 429)", i, d)
		}
	}
	if len(fc.slept) != c.maxAttempts()-1 {
		t.Fatalf("slept %d times, want %d (one per retry)", len(fc.slept), c.maxAttempts()-1)
	}
}

// TestClientReplicaEmptyDirect: direct single-replica errors carry no
// replica attribution and the error text stays in its original shape.
func TestClientReplicaEmptyDirect(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(map[string]string{"error": "unknown method"})
	}))
	defer srv.Close()
	c, _ := newTestClient(srv.URL)
	_, err := c.Rank(context.Background(), serve.RankRequest{Method: "nope"})
	var se *StatusError
	if !errors.As(err, &se) {
		t.Fatalf("want *StatusError, got %v", err)
	}
	if se.Replica != "" {
		t.Fatalf("Replica = %q, want empty without the header", se.Replica)
	}
	if want := "saphyrad: status 400: unknown method"; err.Error() != want {
		t.Fatalf("error = %q, want %q", err.Error(), want)
	}
}
