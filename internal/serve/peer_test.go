package serve

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"saphyra"
)

// keyOf canonicalizes a request through the server's own buildQuery and
// returns (generation, hex query key) — what a peer would use to probe
// /internal/cache for it.
func keyOf(t *testing.T, s *Server, req RankRequest) (uint64, string) {
	t.Helper()
	lv, err := s.acquire()
	if err != nil {
		t.Fatal(err)
	}
	defer lv.handle.Release()
	q, err := s.buildQuery(lv, req.Method, req.Targets, req.Eps, req.Delta, req.K, req.Seed, false)
	if err != nil {
		t.Fatal(err)
	}
	k := q.Key()
	return lv.gen(), hex.EncodeToString(k[:])
}

func getInternalCache(t *testing.T, h http.Handler, gen uint64, key string) (*RankResponse, int) {
	t.Helper()
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET",
		fmt.Sprintf("/internal/cache?gen=%d&key=%s", gen, key), nil))
	if w.Code != http.StatusOK {
		return nil, w.Code
	}
	var resp RankResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad body: %v", err)
	}
	return &resp, w.Code
}

// TestInternalCacheEndpoint: GET /internal/cache answers from the local LRU
// only — bitwise-equal payload for a cached key, 404 for an uncached one
// (without computing), 400 for malformed parameters — and peer probes do
// not distort the cache's own hit statistics.
func TestInternalCacheEndpoint(t *testing.T) {
	g := saphyra.Generate.BarabasiAlbert(300, 3, 9)
	s, ids := newTestServer(t, g, Config{DisablePrecompute: true})
	req := RankRequest{Method: MethodSaPHyRa, Targets: []int64{ids[3], ids[30], ids[200]}, Eps: 0.1, Delta: 0.05, Seed: 2}

	want, code := postRank(t, s.Handler(), req)
	if code != http.StatusOK {
		t.Fatalf("rank failed: %d", code)
	}
	hitsBefore := s.cache.hits.Load()

	gen, key := keyOf(t, s, req)
	got, code := getInternalCache(t, s.Handler(), gen, key)
	if code != http.StatusOK {
		t.Fatalf("cached key answered %d", code)
	}
	if !got.Cached || got.Generation != gen || got.Samples != want.Samples {
		t.Fatalf("envelope mismatch: cached=%v gen=%d samples=%d", got.Cached, got.Generation, got.Samples)
	}
	for i := range want.Nodes {
		if got.Nodes[i] != want.Nodes[i] || got.Scores[i] != want.Scores[i] || got.Ranks[i] != want.Ranks[i] {
			t.Fatalf("entry %d not bitwise-equal to the served response", i)
		}
	}
	if s.cache.hits.Load() != hitsBefore {
		t.Error("peer probe bumped the local hit counter")
	}

	// Uncached key: 404, and nothing was computed to answer it.
	missesBefore := s.cache.misses.Load()
	other := req
	other.Seed = 99
	ogen, okey := keyOf(t, s, other)
	if _, code := getInternalCache(t, s.Handler(), ogen, okey); code != http.StatusNotFound {
		t.Fatalf("uncached key answered %d, want 404", code)
	}
	if s.cache.misses.Load() != missesBefore {
		t.Error("peer probe started a computation")
	}
	// Wrong generation for a cached key is a miss too.
	if _, code := getInternalCache(t, s.Handler(), gen+1, key); code != http.StatusNotFound {
		t.Fatalf("wrong-generation probe answered %d, want 404", code)
	}

	for _, bad := range []string{
		"/internal/cache?gen=x&key=" + key,
		"/internal/cache?gen=1&key=zz",
		"/internal/cache?gen=1&key=abcd",
	} {
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, httptest.NewRequest("GET", bad, nil))
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s answered %d, want 400", bad, w.Code)
		}
	}
}

// TestPeerFillAdoptsRemoteResult: a replica with a PeerFill hook adopts its
// home peer's cached bytes instead of computing — the fleet-warming path —
// and the adopted entry then serves local hits. Soundness is bitwise
// equality with the peer's response for the same (generation, key).
func TestPeerFillAdoptsRemoteResult(t *testing.T) {
	g := saphyra.Generate.BarabasiAlbert(300, 3, 9)
	path, ids := writeTestView(t, g)
	home, err := New(path, Config{DisablePrecompute: true})
	if err != nil {
		t.Fatal(err)
	}
	defer home.Close()

	var cfg Config
	cfg.DisablePrecompute = true
	cfg.PeerFill = peerFillVia(t, home)
	edge, err := New(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer edge.Close()

	req := RankRequest{Method: MethodSaPHyRa, Targets: []int64{ids[3], ids[30], ids[200]}, Eps: 0.1, Delta: 0.05, Seed: 2}
	want, code := postRank(t, home.Handler(), req)
	if code != http.StatusOK {
		t.Fatalf("home rank failed: %d", code)
	}

	got, code := postRank(t, edge.Handler(), req)
	if code != http.StatusOK {
		t.Fatalf("edge rank failed: %d", code)
	}
	if edge.m.peerFillHits.Value() != 1 {
		t.Fatalf("peer fill hits = %d, want 1", edge.m.peerFillHits.Value())
	}
	if got.Samples != want.Samples || len(got.Nodes) != len(want.Nodes) {
		t.Fatal("adopted payload shape differs from the peer's")
	}
	for i := range want.Nodes {
		if got.Nodes[i] != want.Nodes[i] || got.Scores[i] != want.Scores[i] || got.Ranks[i] != want.Ranks[i] {
			t.Fatalf("entry %d: adopted payload not bitwise-equal to the peer's", i)
		}
	}

	// The adopted entry is now a local LRU hit: no second peer probe.
	again, code := postRank(t, edge.Handler(), req)
	if code != http.StatusOK || !again.Cached {
		t.Fatalf("second edge request: code=%d cached=%v", code, again.Cached)
	}
	if edge.m.peerFillHits.Value() != 1 {
		t.Error("local hit re-probed the peer")
	}

	// A key the home peer has not computed falls through to local compute.
	miss := req
	miss.Seed = 7
	if _, code := postRank(t, edge.Handler(), miss); code != http.StatusOK {
		t.Fatalf("peer-miss rank failed: %d", code)
	}
	if edge.m.peerFillMisses.Value() != 1 {
		t.Fatalf("peer fill misses = %d, want 1", edge.m.peerFillMisses.Value())
	}
}

// TestPeerFillRejectsWrongGeneration: a peer response tagged with another
// generation must not be adopted — that is the cache-poisoning vector a
// mid-rollout fleet would otherwise open. The replica counts the rejection
// and computes locally.
func TestPeerFillRejectsWrongGeneration(t *testing.T) {
	g := saphyra.Generate.BarabasiAlbert(200, 3, 5)
	path, ids := writeTestView(t, g)
	var cfg Config
	cfg.DisablePrecompute = true
	cfg.PeerFill = func(_ context.Context, gen uint64, _ [32]byte) (*RankResponse, bool) {
		return &RankResponse{
			Generation: gen + 1, // peer already rolled forward
			Samples:    1,
			Nodes:      []int64{ids[0]},
			Scores:     []float64{1},
			Ranks:      []int{1},
		}, true
	}
	s, err := New(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	resp, code := postRank(t, s.Handler(), RankRequest{
		Method: MethodSaPHyRa, Targets: []int64{ids[3], ids[30]}, Eps: 0.1, Delta: 0.05, Seed: 2,
	})
	if code != http.StatusOK {
		t.Fatalf("rank failed: %d", code)
	}
	if s.m.peerFillRejected.Value() != 1 {
		t.Fatalf("rejected = %d, want 1", s.m.peerFillRejected.Value())
	}
	if resp.Generation != 1 || len(resp.Nodes) != 2 {
		t.Fatal("response was not computed locally after the rejection")
	}
}

// TestReloadResponseGeneration: POST /admin/reload reports the generation
// now serving, /readyz gates on it, and /statusz exposes it — the three
// signals the rolling-reload driver consumes.
func TestReloadResponseGeneration(t *testing.T) {
	g := saphyra.Generate.BarabasiAlbert(200, 3, 5)
	s, _ := newTestServer(t, g, Config{DisablePrecompute: true})

	for want := uint64(2); want <= 3; want++ {
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, httptest.NewRequest("POST", "/admin/reload", nil))
		if w.Code != http.StatusOK {
			t.Fatalf("reload %d: status %d", want, w.Code)
		}
		var rr ReloadResponse
		if err := json.Unmarshal(w.Body.Bytes(), &rr); err != nil {
			t.Fatal(err)
		}
		if rr.Status != "reloaded" || rr.Generation != want {
			t.Fatalf("reload response %+v, want generation %d", rr, want)
		}

		w = httptest.NewRecorder()
		s.Handler().ServeHTTP(w, httptest.NewRequest("GET", "/readyz", nil))
		var ready ReadyzResponse
		if err := json.Unmarshal(w.Body.Bytes(), &ready); err != nil {
			t.Fatal(err)
		}
		if w.Code != http.StatusOK || ready.Generation != want {
			t.Fatalf("readyz after reload: code=%d gen=%d, want %d", w.Code, ready.Generation, want)
		}

		st, err := s.statusz()
		if err != nil {
			t.Fatal(err)
		}
		if st.Generation != want {
			t.Fatalf("statusz generation %d, want %d", st.Generation, want)
		}
	}
}

// peerFillVia wires a PeerFill hook to another in-process server's
// /internal/cache handler — the same probe internal/cluster issues over
// the network, without a listener.
func peerFillVia(t *testing.T, peer *Server) func(context.Context, uint64, [32]byte) (*RankResponse, bool) {
	return func(_ context.Context, gen uint64, key [32]byte) (*RankResponse, bool) {
		w := httptest.NewRecorder()
		peer.Handler().ServeHTTP(w, httptest.NewRequest("GET",
			fmt.Sprintf("/internal/cache?gen=%d&key=%s", gen, hex.EncodeToString(key[:])), nil))
		if w.Code != http.StatusOK {
			return nil, false
		}
		var resp RankResponse
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			return nil, false
		}
		return &resp, true
	}
}
