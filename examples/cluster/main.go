// Cluster demonstrates the distributed serving tier (DESIGN.md
// section 14) in one process: a 3-replica fleet behind the consistent-hash
// router, driven through the full lifecycle — routed requests with cache
// affinity, a peer cache fill that warms the whole fleet from one
// computation, a rolling reload gated on each replica's reported
// generation, and a hard replica kill absorbed by the router's hop retry.
// Every answer along the way is bitwise-identical for its (generation,
// query) contract: that determinism is what makes each step sound.
//
// Run with: go run ./examples/cluster
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"

	"saphyra"
	"saphyra/internal/cluster"
	"saphyra/internal/serve"
)

func main() {
	// Build once: the same view artifact every replica will serve. One
	// file, N replicas — since every result is a pure function of
	// (generation, canonical query key), replicas serving the same bytes
	// hold interchangeable caches.
	g := saphyra.Generate.PowerLawCluster(3000, 4, 0.2, 11)
	dir, err := os.MkdirTemp("", "saphyra-cluster")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	viewPath := filepath.Join(dir, "net.sbcv")
	if err := saphyra.BuildView(g, nil).WriteFile(viewPath); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built view: %d nodes, %d edges\n", g.NumNodes(), g.NumEdges())

	// The fleet: three serve.Servers on loopback listeners wired into a
	// peer-fill ring, fronted by one router — the same wiring
	// cmd/saphyrarouter + N cmd/saphyrad processes have in production.
	f, err := cluster.StartFleet(viewPath, cluster.FleetConfig{Replicas: 3})
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	fmt.Printf("router %s fronting %d replicas\n\n", f.RouterURL, len(f.ReplicaURLs))

	req := serve.RankRequest{
		Method:  "saphyra",
		Targets: []int64{17, 99, 1024, 2048},
		Eps:     0.05, Delta: 0.05, Seed: 7,
	}
	body, _ := json.Marshal(req)

	// Through the router: the first request computes on whichever replica
	// the router's affinity hash picks; the repeat hits that replica's
	// cache. X-Saphyra-Replica names who answered.
	first, via := post(f.RouterURL+"/v1/rank", body)
	again, _ := post(f.RouterURL+"/v1/rank", body)
	fmt.Printf("via router:  computed on %s (cached=%v, %d samples)\n", via, first.Cached, first.Samples)
	fmt.Printf("repeat:      cached=%v, bitwise identical: %v\n\n", again.Cached, sameBits(first, again))

	// Peer cache fill: warm the key's TRUE ring home (placement by the
	// canonical query key — the router's wire-field hash is affinity only),
	// then ask the other replicas directly. Each finds a local miss, probes
	// the home peer via GET /internal/cache, and adopts the entry instead
	// of recomputing: one computation warms the fleet. Adoption is sound
	// only because responses are bitwise reproducible — the adopted bytes
	// are exactly the bytes the replica would have computed.
	key := saphyra.Query{Measure: saphyra.Betweenness,
		Targets: []saphyra.Node{17, 99, 1024, 2048},
		Epsilon: req.Eps, Delta: req.Delta, Seed: req.Seed}.Key()
	ring, err := cluster.NewRing(f.ReplicaURLs, 0)
	if err != nil {
		log.Fatal(err)
	}
	home := ring.Owner(cluster.KeyHash(key))
	homeResp, _ := post(f.ReplicaURLs[home]+"/v1/rank", body)
	fmt.Printf("ring home for this query: replica %d (cached=%v)\n", home, homeResp.Cached)
	for i, url := range f.ReplicaURLs {
		if i == home {
			continue
		}
		r, _ := post(url+"/v1/rank", body)
		fmt.Printf("replica %d:   cached=%v (peer fill), bitwise identical: %v\n",
			i, r.Cached, sameBits(homeResp, r))
	}

	// Rolling reload: the router pushes /admin/reload across the fleet one
	// replica at a time, gating each step on /readyz reporting the new
	// generation. Mid-roll the fleet serves mixed generations — safe,
	// because the generation is part of every cache key and every response
	// envelope: entries from different views can never alias.
	resp, err := http.Post(f.RouterURL+"/admin/reload", "application/json", nil)
	if err != nil {
		log.Fatal(err)
	}
	var rl serve.ReloadResponse
	if err := json.NewDecoder(resp.Body).Decode(&rl); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	reloaded, _ := post(f.RouterURL+"/v1/rank", body)
	fmt.Printf("\nrolling reload: fleet at generation %d (was %d)\n", rl.Generation, first.Generation)
	fmt.Printf("same query:  generation %d, scores unchanged: %v\n\n",
		reloaded.Generation, sameBits(first, reloaded))

	// Kill the home replica mid-service. The router's hop retry walks to
	// the next ring owner; the health EWMA marks the dead replica down
	// after two failed hops. The survivor recomputes (its dead peer cannot
	// donate) — and lands on exactly the same bits, because the bits never
	// depended on which replica ran the computation.
	f.KillReplica(home)
	after, survivor := post(f.RouterURL+"/v1/rank", body)
	fmt.Printf("killed replica %d; router rerouted to %s\n", home, survivor)
	fmt.Printf("same query:  200, bitwise identical: %v\n", sameBits(first, after))
}

// post sends one rank request and returns the decoded response plus the
// replica that answered (the router's X-Saphyra-Replica header).
func post(url string, body []byte) (*serve.RankResponse, string) {
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("%s: status %d", url, resp.StatusCode)
	}
	var r serve.RankResponse
	if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
		log.Fatal(err)
	}
	return &r, resp.Header.Get("X-Saphyra-Replica")
}

// sameBits reports whether two responses carry identical ranking bytes —
// the bitwise determinism check every cluster hop relies on.
func sameBits(a, b *serve.RankResponse) bool {
	if len(a.Scores) != len(b.Scores) || len(a.Nodes) != len(b.Nodes) {
		return false
	}
	for i := range a.Scores {
		if a.Nodes[i] != b.Nodes[i] || a.Scores[i] != b.Scores[i] {
			return false
		}
	}
	return true
}
