//go:build !unix

package bicomp

import (
	"fmt"
	"io"
	"os"
	"unsafe"
)

// mapFile on platforms without syscall.Mmap support reads the whole file
// into an 8-byte-aligned heap buffer ([]uint64-backed, so the zero-copy
// decode still applies). Same API, no page sharing across processes.
func mapFile(path string) ([]byte, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size == 0 {
		return nil, nil, fmt.Errorf("empty file")
	}
	if size != int64(int(size)) {
		return nil, nil, fmt.Errorf("file too large to load (%d bytes)", size)
	}
	backing := make([]uint64, (size+7)/8)
	data := unsafe.Slice((*byte)(unsafe.Pointer(&backing[0])), size)
	if _, err := io.ReadFull(f, data); err != nil {
		return nil, nil, err
	}
	return data, nil, nil
}
