package faultinject

import (
	"errors"
	"testing"
	"time"
)

func TestDisabledIsInert(t *testing.T) {
	defer Reset()
	Set("x", Fault{Err: errors.New("boom")})
	if err := Fire("x"); err != nil {
		t.Fatalf("disabled registry fired: %v", err)
	}
	if Hits("x") != 0 {
		t.Fatalf("disabled registry counted hits: %d", Hits("x"))
	}
}

func TestFireErrorAndCounters(t *testing.T) {
	defer Reset()
	Enable()
	boom := errors.New("boom")
	Set("x", Fault{Err: boom})
	for i := 0; i < 3; i++ {
		if err := Fire("x"); !errors.Is(err, boom) {
			t.Fatalf("fire %d: %v", i, err)
		}
	}
	if err := Fire("unarmed"); err != nil {
		t.Fatalf("unarmed point fired: %v", err)
	}
	if Hits("x") != 3 || Fired("x") != 3 {
		t.Fatalf("hits=%d fired=%d, want 3/3", Hits("x"), Fired("x"))
	}
}

func TestTimesCap(t *testing.T) {
	defer Reset()
	Enable()
	boom := errors.New("boom")
	Set("x", Fault{Err: boom, Times: 2})
	var fired int
	for i := 0; i < 5; i++ {
		if Fire("x") != nil {
			fired++
		}
	}
	if fired != 2 || Fired("x") != 2 || Hits("x") != 5 {
		t.Fatalf("fired=%d Fired=%d Hits=%d, want 2/2/5", fired, Fired("x"), Hits("x"))
	}
}

func TestProbIsReproducible(t *testing.T) {
	defer Reset()
	Enable()
	boom := errors.New("boom")
	run := func() int {
		Set("x", Fault{Err: boom, Prob: 0.5, Seed: 42})
		n := 0
		for i := 0; i < 200; i++ {
			if Fire("x") != nil {
				n++
			}
		}
		return n
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed fired %d then %d times", a, b)
	}
	if a == 0 || a == 200 {
		t.Fatalf("prob 0.5 fired %d of 200", a)
	}
}

func TestPanicAndDelay(t *testing.T) {
	defer Reset()
	Enable()
	Set("x", Fault{Panic: "kaboom", Delay: time.Millisecond})
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("armed panic point did not panic")
		}
	}()
	Fire("x")
}

func TestResetDisarmsEverything(t *testing.T) {
	Enable()
	Set("x", Fault{Err: errors.New("boom")})
	Reset()
	if Enabled() {
		t.Fatal("Reset left the gate open")
	}
	Enable()
	defer Reset()
	if err := Fire("x"); err != nil {
		t.Fatalf("Reset left a point armed: %v", err)
	}
}
