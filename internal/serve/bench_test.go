package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"saphyra"
	"saphyra/internal/loadgen/hist"
)

// benchServer builds a serving stack over a Fig-3-sized synthetic social
// graph, persisted and reopened mmap-backed like production serving.
func benchServer(b *testing.B) (*Server, []int64) {
	g := saphyra.Generate.BarabasiAlbert(4000, 5, 42)
	s, ids := newTestServer(b, g, Config{DisablePrecompute: true, CacheEntries: 1 << 16})
	return s, ids
}

func benchBody(b *testing.B, ids []int64, seed int64) []byte {
	body, err := json.Marshal(RankRequest{
		Method:  MethodSaPHyRa,
		Targets: []int64{ids[17], ids[99], ids[1024], ids[2048]},
		Eps:     0.05, Delta: 0.05, Seed: seed,
	})
	if err != nil {
		b.Fatal(err)
	}
	return body
}

func serveOnce(b *testing.B, h http.Handler, body []byte) {
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("POST", "/v1/rank", bytes.NewReader(body)))
	if w.Code != http.StatusOK {
		b.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
}

// BenchmarkServeRankCacheHit is the steady-state requests/sec of the
// serving layer when the deterministic cache answers: one JSON decode, one
// key derivation (sha256 over the target set), one LRU lookup, one JSON
// encode. The acceptance bar is >= 10x over BenchmarkServeRankCacheMiss.
func BenchmarkServeRankCacheHit(b *testing.B) {
	s, ids := benchServer(b)
	body := benchBody(b, ids, 7)
	serveOnce(b, s.Handler(), body) // warm the entry
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		serveOnce(b, s.Handler(), body)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}

// BenchmarkServeRankCacheHitInstrumented is the cache-hit path with the
// slow-query log armed (threshold high enough that nothing is ever
// written): every request allocates a pooled trace and records the full
// span set, which is the worst telemetry cost a production config pays.
// The acceptance bar is within 20% of BenchmarkServeRankCacheHit.
func BenchmarkServeRankCacheHitInstrumented(b *testing.B) {
	g := saphyra.Generate.BarabasiAlbert(4000, 5, 42)
	s, ids := newTestServer(b, g, Config{
		DisablePrecompute: true, CacheEntries: 1 << 16,
		SlowQueryThreshold: time.Hour, SlowQueryLog: io.Discard,
	})
	body := benchBody(b, ids, 7)
	serveOnce(b, s.Handler(), body) // warm the entry
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		serveOnce(b, s.Handler(), body)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}

// BenchmarkServeRankCacheMiss is the same request shape with a fresh seed
// every iteration, so each one runs the full SaPHyRa_bc pipeline (exact
// 2-hop phase + adaptive sampling) under admission control and the worker
// budget.
func BenchmarkServeRankCacheMiss(b *testing.B) {
	s, ids := benchServer(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		serveOnce(b, s.Handler(), benchBody(b, ids, int64(1000+i)))
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}

// BenchmarkServeTopKHit reads the precomputed top-k index.
func BenchmarkServeTopKHit(b *testing.B) {
	g := saphyra.Generate.BarabasiAlbert(4000, 5, 42)
	s, _ := newTestServer(b, g, Config{})
	req := httptest.NewRequest("GET", "/v1/topk?method=saphyra&k=10", nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Fatal(w.Code)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}

// BenchmarkServeRankDegraded is the steady-state cost of the degradation
// ladder's stale rung: the shared admission lane is saturated, so every
// request is shed, opts in via Degrade-Ms, and is answered from the retired
// generation's cache — no admission slot, no compute. The marginal cost over
// a plain cache hit is one failed admission attempt and the stale lookup.
func BenchmarkServeRankDegraded(b *testing.B) {
	g := saphyra.Generate.BarabasiAlbert(4000, 5, 42)
	s, ids := newTestServer(b, g, Config{
		DisablePrecompute: true, MaxInFlight: 1, MaxQueue: 1, FastLaneSlots: -1,
	})
	body := benchBody(b, ids, 7)
	serveOnce(b, s.Handler(), body) // warm the entry under generation 1
	if _, err := s.Reload(); err != nil {
		b.Fatal(err)
	}
	defer saturateShared(b, s)()
	hdrs := map[string]string{"Degrade-Ms": "5000"}
	req := RankRequest{
		Method:  MethodSaPHyRa,
		Targets: []int64{ids[17], ids[99], ids[1024], ids[2048]},
		Eps:     0.05, Delta: 0.05, Seed: 7,
	}
	if w := doRank(b, s.Handler(), req, hdrs); w.Code != http.StatusOK || !decodeRank(b, w).Degraded {
		b.Fatalf("stale rung not exercised: status %d: %s", w.Code, w.Body.String())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if w := doRank(b, s.Handler(), req, hdrs); w.Code != http.StatusOK {
			b.Fatalf("status %d: %s", w.Code, w.Body.String())
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}

// BenchmarkServeRankOverload measures the shed fast path: with the shared
// lane saturated and no degradation opt-in, every fresh request is rejected
// with 429 + Retry-After. Shedding must stay microseconds-cheap — an
// overloaded server's survival depends on the cost of saying no. Reports the
// per-request p50/p99 and the shed rate alongside ns/op, recorded through
// the wait-free loadgen histogram (quantile error <= one bucket width, see
// hist.RelativeError) instead of a sort over every sample.
func BenchmarkServeRankOverload(b *testing.B) {
	g := saphyra.Generate.BarabasiAlbert(4000, 5, 42)
	s, ids := newTestServer(b, g, Config{
		DisablePrecompute: true, MaxInFlight: 1, MaxQueue: 1, FastLaneSlots: -1,
	})
	defer saturateShared(b, s)()
	req := RankRequest{
		Method:  MethodSaPHyRa,
		Targets: []int64{ids[17], ids[99], ids[1024], ids[2048]},
		Eps:     0.05, Delta: 0.05,
	}
	var rec hist.Recorder
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := req
		r.Seed = int64(1000 + i) // always a cache miss: must reach admission
		start := time.Now()
		w := doRank(b, s.Handler(), r, nil)
		if w.Code != http.StatusTooManyRequests {
			b.Fatalf("saturated server answered %d: %s", w.Code, w.Body.String())
		}
		rec.Observe(hist.Shed, time.Since(start))
	}
	b.StopTimer()
	b.ReportMetric(rec.Rate(hist.Shed), "shed_rate")
	b.ReportMetric(float64(rec.All.Quantile(0.50).Microseconds()), "p50_us")
	b.ReportMetric(float64(rec.All.Quantile(0.99).Microseconds()), "p99_us")
}

// TestServeHitAtLeast10xMiss enforces the acceptance criterion outside the
// bench harness so CI catches a regression without parsing bench output.
func TestServeHitAtLeast10xMiss(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	resHit := testing.Benchmark(BenchmarkServeRankCacheHit)
	resMiss := testing.Benchmark(BenchmarkServeRankCacheMiss)
	hit, miss := resHit.NsPerOp(), resMiss.NsPerOp()
	if hit <= 0 || miss <= 0 {
		t.Skipf("degenerate timings: hit %d, miss %d", hit, miss)
	}
	ratio := float64(miss) / float64(hit)
	t.Logf("cache hit %v ns/op, miss %v ns/op, ratio %.1fx", hit, miss, ratio)
	if ratio < 10 {
		t.Errorf("cache hit is only %.1fx faster than miss, want >= 10x", ratio)
	}
}
