package closeness

import (
	"context"

	"path/filepath"
	"testing"

	"saphyra/internal/bicomp"
	"saphyra/internal/graph"
)

// TestWorkerCountBitwise: the estimate must be bitwise-identical for any
// worker count — samples belong to fixed virtual-worker streams merged in
// stream order.
func TestWorkerCountBitwise(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"ba", graph.BarabasiAlbert(400, 3, 6)},
		{"road", graph.RoadNetwork(12, 12, 0.1, 2)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a := []graph.Node{0, 3, 17, 99, 120}
			run := func(workers int) *Result {
				res, err := Estimate(context.Background(), tc.g, a, Options{Epsilon: 0.05, Delta: 0.05, Seed: 9, Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			ref := run(1)
			if ref.Samples == 0 {
				t.Fatal("reference run drew no samples")
			}
			for _, workers := range []int{2, 8} {
				got := run(workers)
				if got.Samples != ref.Samples || got.Rounds != ref.Rounds {
					t.Fatalf("workers=%d: samples/rounds %d/%d != %d/%d",
						workers, got.Samples, got.Rounds, ref.Samples, ref.Rounds)
				}
				for i := range ref.Closeness {
					if got.Closeness[i] != ref.Closeness[i] {
						t.Fatalf("workers=%d: Closeness[%d] = %v, want %v",
							workers, i, got.Closeness[i], ref.Closeness[i])
					}
				}
			}
		})
	}
}

// TestViewMatchesGraph: pricing over the view's grouped adjacency — in
// memory or mmapped — must be bitwise-identical to the raw-CSR path (BFS
// distances are neighbor-order invariant).
func TestViewMatchesGraph(t *testing.T) {
	g := graph.BarabasiAlbert(300, 3, 8)
	a := []graph.Node{1, 5, 42, 250}
	opt := Options{Epsilon: 0.05, Delta: 0.05, Seed: 4, Workers: 3}

	want, err := Estimate(context.Background(), g, a, opt)
	if err != nil {
		t.Fatal(err)
	}

	d := bicomp.Decompose(g)
	view := bicomp.NewBlockCSR(d, bicomp.NewOutReach(d))
	path := filepath.Join(t.TempDir(), "view.sbcv")
	if err := view.WriteFile(path, nil); err != nil {
		t.Fatal(err)
	}
	m, err := bicomp.OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	for _, tc := range []struct {
		name string
		v    *bicomp.BlockCSR
	}{{"memory", view}, {"mapped", m.View}} {
		got, err := EstimateView(context.Background(), tc.v, a, opt)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got.Samples != want.Samples || got.Rounds != want.Rounds {
			t.Fatalf("%s: samples/rounds %d/%d != %d/%d", tc.name, got.Samples, got.Rounds, want.Samples, want.Rounds)
		}
		for i := range want.Closeness {
			if got.Closeness[i] != want.Closeness[i] {
				t.Fatalf("%s: Closeness[%d] = %v, want %v", tc.name, i, got.Closeness[i], want.Closeness[i])
			}
		}
	}
}
