package saphyra

// Integration tests exercising the full pipeline across package boundaries:
// dataset stand-ins -> preprocessing -> estimation -> ranking -> metrics.

import (
	"math"
	"sync"
	"testing"

	"saphyra/internal/datasets"
	"saphyra/internal/exact"
	"saphyra/internal/graph"
)

// Every dataset stand-in must satisfy the (eps, delta) guarantee end to end
// through the public API.
func TestIntegrationStandInsWithinEpsilon(t *testing.T) {
	for _, net := range datasets.All {
		net := net
		t.Run(net.Name, func(t *testing.T) {
			g := net.Build(0.03)
			truth := exact.BCParallel(g, 0)
			subset := datasets.RandomSubsets(g.NumNodes(), 30, 1, 5)[0]
			res, err := RankSubset(g, subset, Options{Epsilon: 0.05, Delta: 0.01, Seed: 9})
			if err != nil {
				t.Fatal(err)
			}
			for i, v := range res.Nodes {
				if math.Abs(res.Scores[i]-truth[v]) > 0.05 {
					t.Errorf("node %d: est %g truth %g", v, res.Scores[i], truth[v])
				}
			}
		})
	}
}

// Lemma 19 at the API level: positive-betweenness targets never get a zero
// estimate, on every stand-in.
func TestIntegrationNoFalseZeros(t *testing.T) {
	for _, net := range datasets.All {
		g := net.Build(0.03)
		truth := exact.BCParallel(g, 0)
		subset := datasets.RandomSubsets(g.NumNodes(), 50, 1, 7)[0]
		res, err := RankSubset(g, subset, Options{Epsilon: 0.2, Delta: 0.1, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range res.Nodes {
			if truth[v] > 1e-15 && res.Scores[i] == 0 {
				t.Errorf("%s: false zero at node %d (truth %g)", net.Name, v, truth[v])
			}
			if truth[v] == 0 && res.Scores[i] != 0 {
				// True zeros must also be estimated as exactly zero: a node
				// with bc = 0 has bca = 0 and can never be an inner node of
				// any sampled path, nor appear in the exact subspace.
				t.Errorf("%s: nonzero estimate %g at true-zero node %d", net.Name, res.Scores[i], v)
			}
		}
	}
}

// Concurrent subset rankings sharing one Preprocessed must be safe (the
// decomposition memoizes block diameters behind a mutex) and identical to
// sequential runs.
func TestIntegrationConcurrentPreprocessedUse(t *testing.T) {
	g := Generate.PowerLawCluster(400, 4, 0.3, 11)
	p := Preprocess(g)
	subsets := datasets.RandomSubsets(g.NumNodes(), 20, 8, 13)

	sequential := make([][]float64, len(subsets))
	for i, sub := range subsets {
		res, err := p.RankSubset(sub, Options{Epsilon: 0.1, Delta: 0.1, Seed: int64(i), Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		sequential[i] = res.Scores
	}

	p2 := Preprocess(g)
	var wg sync.WaitGroup
	concurrent := make([][]float64, len(subsets))
	errs := make([]error, len(subsets))
	for i, sub := range subsets {
		wg.Add(1)
		go func(i int, sub []Node) {
			defer wg.Done()
			res, err := p2.RankSubset(sub, Options{Epsilon: 0.1, Delta: 0.1, Seed: int64(i), Workers: 1})
			if err != nil {
				errs[i] = err
				return
			}
			concurrent[i] = res.Scores
		}(i, sub)
	}
	wg.Wait()
	for i := range subsets {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		for j := range sequential[i] {
			if sequential[i][j] != concurrent[i][j] {
				t.Fatalf("subset %d: concurrent run diverged from sequential", i)
			}
		}
	}
}

// The subset estimator must agree with the full-network estimator on shared
// targets within 2*eps (both are eps-accurate to the same truth).
func TestIntegrationSubsetVsFullConsistency(t *testing.T) {
	g := Generate.BarabasiAlbert(300, 3, 21)
	subset := []Node{5, 50, 100, 200, 299}
	resSub, err := RankSubset(g, subset, Options{Epsilon: 0.05, Delta: 0.01, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	resFull, err := RankAll(g, Options{Epsilon: 0.05, Delta: 0.01, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	full := make(map[Node]float64, len(resFull.Nodes))
	for i, v := range resFull.Nodes {
		full[v] = resFull.Scores[i]
	}
	for i, v := range resSub.Nodes {
		if d := math.Abs(resSub.Scores[i] - full[v]); d > 0.1 {
			t.Errorf("node %d: subset %g vs full %g differ by %g", v, resSub.Scores[i], full[v], d)
		}
	}
}

// Cutpoint-dominated graphs: the exact bca term must carry through the API
// byte-for-byte (trees need no sampling at all).
func TestIntegrationTreeExactness(t *testing.T) {
	g := Generate.RandomTree(500, 8)
	truth := exact.BC(g)
	subset := datasets.RandomSubsets(500, 40, 1, 3)[0]
	res, err := RankSubset(g, subset, Options{Epsilon: 0.05, Delta: 0.01, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples != 0 {
		// Trees have no inner-node mass, so the adaptive sampler should
		// stop at its pilot-certified zero-variance round with no or very
		// few samples; the estimates must still be exact.
		t.Logf("tree run used %d samples (expected ~0)", res.Samples)
	}
	for i, v := range res.Nodes {
		if math.Abs(res.Scores[i]-truth[v]) > 1e-9 {
			t.Errorf("node %d: est %.12g truth %.12g (trees must be exact)", v, res.Scores[i], truth[v])
		}
	}
}

// Road-area workload through the public API: every area ranking must be
// accurate against the full-network ground truth.
func TestIntegrationRoadAreas(t *testing.T) {
	side := datasets.RoadSide(0.05)
	g := datasets.USARoad.Build(0.05)
	truth := exact.BCParallel(g, 0)
	p := Preprocess(g)
	for _, area := range datasets.Areas(side) {
		res, err := p.RankSubset(area.Nodes, Options{Epsilon: 0.1, Delta: 0.05, Seed: 4})
		if err != nil {
			t.Fatalf("%s: %v", area.Name, err)
		}
		for i, v := range res.Nodes {
			if math.Abs(res.Scores[i]-truth[v]) > 0.1 {
				t.Errorf("%s node %d: est %g truth %g", area.Name, v, res.Scores[i], truth[v])
			}
		}
	}
}

// Baselines and SaPHyRa must agree on the identity of the top hub in a
// hub-dominated graph.
func TestIntegrationTopHubAgreement(t *testing.T) {
	g := Generate.BarabasiAlbert(400, 2, 31)
	hub := graph.Node(0)
	best := -1
	for v := 0; v < g.NumNodes(); v++ {
		if d := g.Degree(graph.Node(v)); d > best {
			best = d
			hub = graph.Node(v)
		}
	}
	subset := []Node{hub, 100, 200, 300, 399}
	for _, m := range []Method{MethodSaPHyRa, MethodKADABRA, MethodABRA} {
		res, err := RankSubset(g, subset, Options{Epsilon: 0.05, Delta: 0.01, Seed: 5, Method: m})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range res.Nodes {
			if v == hub && res.Rank[i] != 1 {
				t.Errorf("%v: hub %d ranked %d, want 1", m, hub, res.Rank[i])
			}
		}
	}
}
