package core

import (
	"context"

	"math"
	"testing"

	"saphyra/internal/graph"
	"saphyra/internal/testutil"
)

// Parallel Exact_bc must return bit-identical results to the sequential
// path for every worker count (worker-independent cost-weighted chunking,
// chunk-order merge).
func TestExactBCParallelMatchesSequential(t *testing.T) {
	g := testutil.RandomConnectedGraph(200, 400, 5)
	p := PreprocessBC(g)
	var nodes []graph.Node
	for v := 0; v < 200; v += 7 {
		nodes = append(nodes, graph.Node(v))
	}
	aIndex := make([]int32, 200)
	for i := range aIndex {
		aIndex[i] = -1
	}
	for i, v := range nodes {
		aIndex[v] = int32(i)
	}
	blocksA := p.O.BlocksOf(nodes)
	wA := p.O.WeightOfBlocks(blocksA)
	if wA == 0 {
		t.Fatal("degenerate fixture")
	}
	seqLambda, seqExact, _ := p.Exact.Run(context.Background(), nodes, aIndex, wA, 1)
	for _, workers := range []int{2, 3, 8, 100} {
		lambda, exact, _ := p.Exact.Run(context.Background(), nodes, aIndex, wA, workers)
		if lambda != seqLambda {
			t.Errorf("workers=%d: lambdaHat %g != %g (not bitwise identical)", workers, lambda, seqLambda)
		}
		for i := range exact {
			if exact[i] != seqExact[i] {
				t.Errorf("workers=%d: exact[%d] %g != %g", workers, i, exact[i], seqExact[i])
			}
		}
	}
}

// Deterministic repeated runs with the same worker count.
func TestExactBCParallelDeterministic(t *testing.T) {
	g := testutil.RandomConnectedGraph(150, 250, 8)
	p := PreprocessBC(g)
	nodes := []graph.Node{3, 17, 42, 99, 120}
	aIndex := make([]int32, 150)
	for i := range aIndex {
		aIndex[i] = -1
	}
	for i, v := range nodes {
		aIndex[v] = int32(i)
	}
	wA := p.O.WeightOfBlocks(p.O.BlocksOf(nodes))
	l1, e1, _ := p.Exact.Run(context.Background(), nodes, aIndex, wA, 4)
	l2, e2, _ := p.Exact.Run(context.Background(), nodes, aIndex, wA, 4)
	if l1 != l2 {
		t.Errorf("lambdaHat not deterministic: %g vs %g", l1, l2)
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Errorf("exact[%d] not deterministic", i)
		}
	}
}

// lambdaHat must always be a probability.
func TestExactBCLambdaInRange(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := testutil.RandomConnectedGraph(30, 60, seed)
		p := PreprocessBC(g)
		var nodes []graph.Node
		for v := 0; v < 30; v += 3 {
			nodes = append(nodes, graph.Node(v))
		}
		aIndex := make([]int32, 30)
		for i := range aIndex {
			aIndex[i] = -1
		}
		for i, v := range nodes {
			aIndex[v] = int32(i)
		}
		wA := p.O.WeightOfBlocks(p.O.BlocksOf(nodes))
		if wA == 0 {
			continue
		}
		lambda, exact, _ := p.Exact.Run(context.Background(), nodes, aIndex, wA, 0)
		if lambda < 0 || lambda > 1+1e-9 {
			t.Errorf("seed %d: lambdaHat %g outside [0,1]", seed, lambda)
		}
		var sum float64
		for _, x := range exact {
			if x < 0 {
				t.Errorf("seed %d: negative exact risk %g", seed, x)
			}
			sum += x
		}
		if math.Abs(sum-lambda) > 1e-9 {
			t.Errorf("seed %d: sum of exact risks %g != lambdaHat %g", seed, sum, lambda)
		}
	}
}

// Claim 8 (variance reduction): removing the exact-subspace mass must not
// increase — and on leafy graphs strictly decreases — the per-hypothesis
// sampling variance, measured here by comparing empirical hit variances of
// the Gen_bc sampler with the partition on and off.
func TestClaim8VarianceReduction(t *testing.T) {
	// flickr-like shape: hubs plus many degree-1/2 nodes whose entire
	// betweenness lives in 2-hop paths.
	g := testutil.RandomConnectedGraph(300, 80, 4)
	p := PreprocessBC(g)
	var nodes []graph.Node
	for v := 0; v < 300; v += 5 {
		nodes = append(nodes, graph.Node(v))
	}
	nodesDedup := graph.DedupSorted(nodes)
	blocksA := p.O.BlocksOf(nodesDedup)
	wA := p.O.WeightOfBlocks(blocksA)
	if wA == 0 {
		t.Skip("degenerate fixture")
	}
	const N = 30000
	sampleVar := func(disable bool) float64 {
		sp, err := newBCSpace(context.Background(), p, nodesDedup, blocksA, wA, BCOptions{
			Epsilon: 0.1, Delta: 0.1, DisableExactSubspace: disable,
		})
		if err != nil {
			t.Fatal(err)
		}
		smp := sp.NewSampler(42)
		hits := make([]int64, len(nodesDedup))
		for i := 0; i < N; i++ {
			for _, h := range smp.Draw() {
				hits[h]++
			}
		}
		lambdaHat, _, _ := sp.ExactPhase(context.Background())
		scale := 1 - lambdaHat // variance contribution rescaled to D^(A)
		var total float64
		for _, h := range hits {
			m := float64(h) / N
			total += scale * scale * m * (1 - m)
		}
		return total
	}
	withPartition := sampleVar(false)
	without := sampleVar(true)
	if withPartition > without*1.05 {
		t.Errorf("Claim 8 violated: partitioned variance %g > unpartitioned %g", withPartition, without)
	}
}
