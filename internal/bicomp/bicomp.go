// Package bicomp computes biconnected components (bi-components), cutpoints,
// the block-cut tree, and the out-reach quantities of SaPHyRa_bc (Section IV
// of the paper): r_i(v), gamma, eta, and the cutpoint term bca(v).
//
// Terminology follows the paper: a "block" is a maximal biconnected
// subgraph; a "cutpoint" (articulation point) is a node belonging to more
// than one block; the block-cut tree has one node per block and per cutpoint
// with an edge for each (block, cutpoint-in-block) pair.
//
// The package also owns the repo's shared graph-view layer, BlockCSR
// (DESIGN.md section 7): the block-annotated re-grouping of the adjacency
// arrays consumed by the exact 2-hop engine (internal/exactphase), the bc
// sampler's per-target tables, and the k-path and closeness estimators. The
// view serializes to a versioned binary format (BlockCSR.WriteTo /
// WriteFile) and reopens zero-copy via OpenMapped — mmap-backed on unix —
// for build-once/serve-many deployments.
//
// Determinism: Decompose assigns block ids by a fixed DFS, so the
// decomposition — and with it every view annotation — is a pure function of
// the graph. That is what lets core.PreprocessBCFromView recompute the
// tables for a mapped view and get ids consistent with the serialized
// arrays.
package bicomp

import (
	"fmt"
	"slices"
	"sync"

	"saphyra/internal/graph"
)

// Decomposition is the result of biconnected-component decomposition of a
// graph. Every edge belongs to exactly one block; every non-isolated node
// belongs to at least one block; cutpoints belong to several.
type Decomposition struct {
	G         *graph.Graph
	NumBlocks int
	// EdgeBlock maps each directed-edge CSR index (see graph.EdgeIndex) to
	// the id of the block containing that edge.
	EdgeBlock []int32
	// Blocks[b] is the sorted list of nodes of block b.
	Blocks [][]graph.Node
	// NodeBlocks[v] is the sorted list of block ids containing node v.
	// Isolated nodes have an empty list; cutpoints have two or more entries.
	NodeBlocks [][]int32
	// IsCut[v] reports whether v is a cutpoint.
	IsCut []bool
	// CompLabel and CompSize describe connected components (graph package
	// labeling); the out-reach machinery needs per-component sizes.
	CompLabel []int32
	CompSize  []int64

	// memoized per-block diameter upper bounds (see BlockDiameterUpperBound)
	diamMu sync.Mutex
	diamUB []int32
}

type dfsFrame struct {
	u, parent graph.Node
	idx       int
}

type halfEdge struct {
	u, v graph.Node
}

// Decompose runs an iterative Hopcroft–Tarjan biconnected-component
// decomposition. Time O(n + m), no recursion (safe for long paths such as
// road networks).
func Decompose(g *graph.Graph) *Decomposition {
	n := g.NumNodes()
	d := &Decomposition{
		G:          g,
		EdgeBlock:  make([]int32, 2*g.NumEdges()),
		NodeBlocks: make([][]int32, n),
		IsCut:      make([]bool, n),
	}
	for i := range d.EdgeBlock {
		d.EdgeBlock[i] = -1
	}
	d.CompLabel, d.CompSize, _ = graph.ConnectedComponents(g)

	disc := make([]int32, n)
	low := make([]int32, n)
	for i := range disc {
		disc[i] = -1
	}
	var time int32
	var stack []dfsFrame
	var edgeStack []halfEdge
	// scratch for per-block node dedup
	stamp := make([]int32, n)
	for i := range stamp {
		stamp[i] = -1
	}

	popBlock := func(u, v graph.Node) {
		bid := int32(d.NumBlocks)
		d.NumBlocks++
		var members []graph.Node
		addMember := func(x graph.Node) {
			if stamp[x] != bid {
				stamp[x] = bid
				members = append(members, x)
				d.NodeBlocks[x] = append(d.NodeBlocks[x], bid)
			}
		}
		for {
			e := edgeStack[len(edgeStack)-1]
			edgeStack = edgeStack[:len(edgeStack)-1]
			d.EdgeBlock[g.EdgeIndex(e.u, e.v)] = bid
			d.EdgeBlock[g.EdgeIndex(e.v, e.u)] = bid
			addMember(e.u)
			addMember(e.v)
			if e.u == u && e.v == v {
				break
			}
		}
		slices.Sort(members)
		d.Blocks = append(d.Blocks, members)
	}

	for start := 0; start < n; start++ {
		if disc[start] != -1 {
			continue
		}
		disc[start] = time
		low[start] = time
		time++
		stack = append(stack, dfsFrame{u: graph.Node(start), parent: -1})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			nbrs := g.Neighbors(f.u)
			advanced := false
			for f.idx < len(nbrs) {
				v := nbrs[f.idx]
				f.idx++
				if v == f.parent {
					continue
				}
				if disc[v] == -1 {
					edgeStack = append(edgeStack, halfEdge{f.u, v})
					disc[v] = time
					low[v] = time
					time++
					stack = append(stack, dfsFrame{u: v, parent: f.u})
					advanced = true
					break
				}
				if disc[v] < disc[f.u] { // back edge to an ancestor
					edgeStack = append(edgeStack, halfEdge{f.u, v})
					if disc[v] < low[f.u] {
						low[f.u] = disc[v]
					}
				}
			}
			if advanced {
				continue
			}
			// f.u is finished; fold into parent.
			u := f.u
			parent := f.parent
			stack = stack[:len(stack)-1]
			if parent < 0 {
				continue
			}
			if low[u] < low[parent] {
				low[parent] = low[u]
			}
			if low[u] >= disc[parent] {
				popBlock(parent, u)
			}
		}
	}

	// Cutpoints are exactly the nodes in >= 2 blocks.
	for v := 0; v < n; v++ {
		d.IsCut[v] = len(d.NodeBlocks[v]) >= 2
	}
	return d
}

// Cutpoints returns the sorted list of cutpoints.
func (d *Decomposition) Cutpoints() []graph.Node {
	var cuts []graph.Node
	for v, is := range d.IsCut {
		if is {
			cuts = append(cuts, graph.Node(v))
		}
	}
	return cuts
}

// CommonBlock returns the id of the (unique) block containing both s and t,
// or -1 if none exists. Two distinct blocks share at most one node, so the
// common block is unique for s != t.
func (d *Decomposition) CommonBlock(s, t graph.Node) int32 {
	a, b := d.NodeBlocks[s], d.NodeBlocks[t]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return a[i]
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return -1
}

// BlockOfEdge returns the block id of the undirected edge {u, v}, or -1 if
// the edge is absent.
func (d *Decomposition) BlockOfEdge(u, v graph.Node) int32 {
	idx := d.G.EdgeIndex(u, v)
	if idx < 0 {
		return -1
	}
	return d.EdgeBlock[idx]
}

// BlockSize returns the number of nodes of block b.
func (d *Decomposition) BlockSize(b int32) int { return len(d.Blocks[b]) }

// blockBFS is a reusable, epoch-stamped workspace for BFS restricted to the
// edges of one block.
type blockBFS struct {
	dist  []int32
	stamp []int32
	epoch int32
	queue []graph.Node
}

func (d *Decomposition) newBlockBFS() *blockBFS {
	n := d.G.NumNodes()
	w := &blockBFS{dist: make([]int32, n), stamp: make([]int32, n)}
	for i := range w.stamp {
		w.stamp[i] = -1
	}
	return w
}

// run executes a BFS from source using only block-b edges and returns the
// eccentricity of source and the farthest node found.
func (w *blockBFS) run(d *Decomposition, b int32, source graph.Node) (ecc int32, far graph.Node) {
	w.epoch++
	e := w.epoch
	w.queue = w.queue[:0]
	w.queue = append(w.queue, source)
	w.stamp[source] = e
	w.dist[source] = 0
	far = source
	for head := 0; head < len(w.queue); head++ {
		u := w.queue[head]
		du := w.dist[u]
		base := d.G.AdjOffset(u)
		for i, v := range d.G.Neighbors(u) {
			if d.EdgeBlock[base+int64(i)] != b {
				continue
			}
			if w.stamp[v] != e {
				w.stamp[v] = e
				w.dist[v] = du + 1
				if du+1 > ecc {
					ecc = du + 1
					far = v
				}
				w.queue = append(w.queue, v)
			}
		}
	}
	return ecc, far
}

// BlockDiameter returns the exact diameter of block b (BFS from every block
// node, restricted to block edges). Intended for small blocks and tests.
func (d *Decomposition) BlockDiameter(b int32) int32 {
	w := d.newBlockBFS()
	var diam int32
	for _, s := range d.Blocks[b] {
		if e, _ := w.run(d, b, s); e > diam {
			diam = e
		}
	}
	return diam
}

// BlockDiameterBounds returns a (lower, upper) bound pair for the diameter of
// block b using a double sweep: lower = eccentricity found by two BFS
// passes, upper = 2 * eccentricity of the second source. upper >= true
// diameter >= lower always.
func (d *Decomposition) BlockDiameterBounds(b int32) (lo, hi int32) {
	nodes := d.Blocks[b]
	if len(nodes) <= 1 {
		return 0, 0
	}
	w := d.newBlockBFS()
	_, far := w.run(d, b, nodes[0])
	ecc2, _ := w.run(d, b, far)
	return ecc2, 2 * ecc2
}

// BlockDiameterUpperBound returns a memoized upper bound on the diameter of
// block b: exact for blocks of at most exactThreshold nodes (size-2 blocks
// are free), double-sweep 2*ecc otherwise. Safe for concurrent use.
func (d *Decomposition) BlockDiameterUpperBound(b int32, exactThreshold int) int32 {
	d.diamMu.Lock()
	if d.diamUB == nil {
		d.diamUB = make([]int32, d.NumBlocks)
		for i := range d.diamUB {
			d.diamUB[i] = -1
		}
	}
	if v := d.diamUB[b]; v >= 0 {
		d.diamMu.Unlock()
		return v
	}
	d.diamMu.Unlock()
	var v int32
	switch {
	case len(d.Blocks[b]) == 2:
		v = 1
	case len(d.Blocks[b]) <= exactThreshold:
		v = d.BlockDiameter(b)
	default:
		_, v = d.BlockDiameterBounds(b)
	}
	d.diamMu.Lock()
	d.diamUB[b] = v
	d.diamMu.Unlock()
	return v
}

// MaxBlockDiameterUpperBound returns an upper bound on BD(V) = max block
// diameter (Eq 35), used by the VC-dimension machinery. Exact diameters are
// used for blocks of at most exactThreshold nodes; larger blocks use the
// double-sweep 2*ecc upper bound. Memoized after the first call.
func (d *Decomposition) MaxBlockDiameterUpperBound(exactThreshold int) int32 {
	var bd int32
	for b := int32(0); int(b) < d.NumBlocks; b++ {
		if v := d.BlockDiameterUpperBound(b, exactThreshold); v > bd {
			bd = v
		}
	}
	return bd
}

// Validate checks decomposition invariants (every edge in exactly one block,
// node block lists sorted and consistent). For tests and debugging.
func (d *Decomposition) Validate() error {
	g := d.G
	for u := graph.Node(0); int(u) < g.NumNodes(); u++ {
		base := g.AdjOffset(u)
		for i, v := range g.Neighbors(u) {
			b := d.EdgeBlock[base+int64(i)]
			if b < 0 || int(b) >= d.NumBlocks {
				return fmt.Errorf("bicomp: edge (%d,%d) has invalid block %d", u, v, b)
			}
			if rb := d.EdgeBlock[g.EdgeIndex(v, u)]; rb != b {
				return fmt.Errorf("bicomp: edge (%d,%d) block %d != reverse %d", u, v, b, rb)
			}
		}
	}
	for v, bs := range d.NodeBlocks {
		for i := 1; i < len(bs); i++ {
			if bs[i-1] >= bs[i] {
				return fmt.Errorf("bicomp: NodeBlocks[%d] not sorted", v)
			}
		}
		if d.IsCut[v] != (len(bs) >= 2) {
			return fmt.Errorf("bicomp: IsCut[%d]=%v inconsistent with %d blocks", v, d.IsCut[v], len(bs))
		}
	}
	var total int
	for b, members := range d.Blocks {
		if len(members) < 2 {
			return fmt.Errorf("bicomp: block %d has %d nodes", b, len(members))
		}
		total += len(members)
		for _, u := range members {
			found := false
			for _, bb := range d.NodeBlocks[u] {
				if bb == int32(b) {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("bicomp: node %d missing block %d in NodeBlocks", u, b)
			}
		}
	}
	return nil
}
