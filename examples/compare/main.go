// Compare: sweep epsilon and watch where SaPHyRa's advantage comes from —
// the Fig 3/Fig 4 trade-off on one chart. For each epsilon the example
// reports running time and rank quality for SaPHyRa (subset), SaPHyRa-full,
// KADABRA, and ABRA, plus the false-zero counts that explain the quality
// gap (Fig 6).
package main

import (
	"fmt"
	"log"

	"saphyra/internal/datasets"
	"saphyra/internal/workload"
)

func main() {
	net := datasets.LiveJournal
	const scale = 0.1
	fmt.Printf("preparing %s at scale %g (exact ground truth via Brandes)...\n", net.Name, scale)
	env := workload.NewEnv(net, scale, 0)
	fmt.Printf("graph: %d nodes, %d edges\n\n", env.G.NumNodes(), env.G.NumEdges())

	subsets := datasets.RandomSubsets(env.G.NumNodes(), 100, 3, 17)
	epsilons := []float64{0.2, 0.1, 0.05}

	rows, err := workload.Fig3And4(env, epsilons, subsets, workload.Config{
		Delta: 0.01, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("eps\talgo\ttime(s)\trho(mean)\trho(min..max)")
	for _, r := range rows {
		fmt.Printf("%g\t%s\t%.3f\t%.3f\t%.3f..%.3f\n",
			r.Epsilon, r.Algo, r.MeanTime.Seconds(), r.MeanRho, r.LoRho, r.HiRho)
	}

	// Why: the error anatomy at eps = 0.05 (Fig 6).
	fmt.Println("\nerror anatomy at eps=0.05:")
	sums, err := workload.Fig6(env, subsets, workload.Config{
		Epsilon: 0.05, Delta: 0.01, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("algo\ttrue-zeros\tfalse-zeros")
	for _, r := range sums {
		fmt.Printf("%s\t%.1f%%\t%.1f%%\n", r.Algo,
			100*r.Summary.FractionTrueZeros(), 100*r.Summary.FractionFalseZeros())
	}
}
