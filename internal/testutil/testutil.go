// Package testutil holds slow, obviously-correct reference implementations
// used by tests across the repository to validate the optimized algorithms.
// Everything here is brute force by design; keep graphs tiny.
package testutil

import (
	"math/rand"

	"saphyra/internal/graph"
)

// RandomConnectedGraph returns a connected random graph on n nodes: a random
// attachment tree plus extra random edges.
func RandomConnectedGraph(n, extra int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(graph.Node(i), graph.Node(rng.Intn(i)))
	}
	for e := 0; e < extra; e++ {
		u := graph.Node(rng.Intn(n))
		v := graph.Node(rng.Intn(n))
		b.AddEdge(u, v)
	}
	return b.Build()
}

// AllShortestPaths enumerates every shortest path from s to t by DFS
// backtracking over the BFS distance field. Each path is a node sequence
// starting at s and ending at t. Returns nil if t is unreachable.
func AllShortestPaths(g *graph.Graph, s, t graph.Node) [][]graph.Node {
	dist := graph.BFSDistances(g, s, nil)
	if dist[t] < 0 {
		return nil
	}
	var paths [][]graph.Node
	path := []graph.Node{t}
	var walk func(u graph.Node)
	walk = func(u graph.Node) {
		if u == s {
			out := make([]graph.Node, len(path))
			for i, v := range path {
				out[len(path)-1-i] = v
			}
			paths = append(paths, out)
			return
		}
		for _, w := range g.Neighbors(u) {
			if dist[w] == dist[u]-1 {
				path = append(path, w)
				walk(w)
				path = path[:len(path)-1]
			}
		}
	}
	walk(t)
	return paths
}

// CountShortestPaths returns sigma_st, the number of shortest paths from s
// to t (0 if unreachable), via dynamic programming over the BFS DAG.
func CountShortestPaths(g *graph.Graph, s, t graph.Node) float64 {
	dist := graph.BFSDistances(g, s, nil)
	if dist[t] < 0 {
		return 0
	}
	memo := make(map[graph.Node]float64)
	var count func(u graph.Node) float64
	count = func(u graph.Node) float64 {
		if u == s {
			return 1
		}
		if c, ok := memo[u]; ok {
			return c
		}
		var c float64
		for _, w := range g.Neighbors(u) {
			if dist[w] == dist[u]-1 {
				c += count(w)
			}
		}
		memo[u] = c
		return c
	}
	return count(t)
}

// BruteBC computes exact betweenness centrality normalized by n(n-1) per the
// paper's Eq 3, by explicitly enumerating all shortest paths of all ordered
// pairs. Exponential in the worst case; for graphs of a few dozen nodes only.
func BruteBC(g *graph.Graph) []float64 {
	n := g.NumNodes()
	bc := make([]float64, n)
	if n < 2 {
		return bc
	}
	for s := graph.Node(0); int(s) < n; s++ {
		for t := graph.Node(0); int(t) < n; t++ {
			if s == t {
				continue
			}
			paths := AllShortestPaths(g, s, t)
			if len(paths) == 0 {
				continue
			}
			inv := 1.0 / float64(len(paths))
			for _, p := range paths {
				for _, v := range p[1 : len(p)-1] {
					bc[v] += inv
				}
			}
		}
	}
	norm := 1.0 / (float64(n) * float64(n-1))
	for i := range bc {
		bc[i] *= norm
	}
	return bc
}

// BruteCutpoints returns, for each node, whether its removal increases the
// number of connected components.
func BruteCutpoints(g *graph.Graph) []bool {
	n := g.NumNodes()
	_, _, base := graph.ConnectedComponents(g)
	out := make([]bool, n)
	for v := 0; v < n; v++ {
		keep := make([]graph.Node, 0, n-1)
		for u := 0; u < n; u++ {
			if u != v {
				keep = append(keep, graph.Node(u))
			}
		}
		sub, _ := graph.Subgraph(g, keep)
		_, _, c := graph.ConnectedComponents(sub)
		// Removing v drops one node; the component count over remaining
		// nodes strictly exceeding the original count means v separated
		// some of its neighbors.
		if c > base {
			out[v] = true
		}
	}
	return out
}

// SameBlock reports (by brute force) whether distinct nodes s and t belong
// to a common biconnected component: they are adjacent, or they are
// connected and no single third vertex separates them.
func SameBlock(g *graph.Graph, s, t graph.Node) bool {
	if s == t {
		return false
	}
	if g.HasEdge(s, t) {
		return true
	}
	dist := graph.BFSDistances(g, s, nil)
	if dist[t] < 0 {
		return false
	}
	n := g.NumNodes()
	for x := 0; x < n; x++ {
		if graph.Node(x) == s || graph.Node(x) == t {
			continue
		}
		keep := make([]graph.Node, 0, n-1)
		for u := 0; u < n; u++ {
			if u != x {
				keep = append(keep, graph.Node(u))
			}
		}
		sub, ids := graph.Subgraph(g, keep)
		// position of s and t in the renumbered subgraph
		var ns, nt graph.Node = -1, -1
		for i, old := range ids {
			if old == s {
				ns = graph.Node(i)
			}
			if old == t {
				nt = graph.Node(i)
			}
		}
		d2 := graph.BFSDistances(sub, ns, nil)
		if d2[nt] < 0 {
			return false // x separates s and t
		}
	}
	return true
}

// BruteOutReach returns r = |R(v)| for node v with respect to the block
// whose node set is members: the number of nodes reachable from v without
// entering any node of members other than v, plus v itself.
func BruteOutReach(g *graph.Graph, members []graph.Node, v graph.Node) int64 {
	blocked := make(map[graph.Node]bool, len(members))
	for _, u := range members {
		if u != v {
			blocked[u] = true
		}
	}
	seen := map[graph.Node]bool{v: true}
	queue := []graph.Node{v}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, w := range g.Neighbors(u) {
			if !seen[w] && !blocked[w] {
				seen[w] = true
				queue = append(queue, w)
			}
		}
	}
	return int64(len(seen))
}

// BruteBCA returns the probability that v separates a random ordered pair
// (s, t), s != v != t: the break-point probability bca(v) of Eq 21.
func BruteBCA(g *graph.Graph, v graph.Node) float64 {
	n := g.NumNodes()
	if n < 2 {
		return 0
	}
	keep := make([]graph.Node, 0, n-1)
	for u := 0; u < n; u++ {
		if graph.Node(u) != v {
			keep = append(keep, graph.Node(u))
		}
	}
	sub, ids := graph.Subgraph(g, keep)
	labels, _, _ := graph.ConnectedComponents(sub)
	// s, t separated by v iff they were connected in g (through v) but are
	// in different components of g - v.
	distV := graph.BFSDistances(g, v, nil)
	var count int64
	for i := 0; i < sub.NumNodes(); i++ {
		for j := 0; j < sub.NumNodes(); j++ {
			if i == j {
				continue
			}
			if distV[ids[i]] < 0 || distV[ids[j]] < 0 {
				continue // not even connected to v
			}
			if labels[i] != labels[j] {
				count++
			}
		}
	}
	return float64(count) / (float64(n) * float64(n-1))
}
