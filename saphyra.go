// Package saphyra is a Go implementation of SaPHyRa, the sample-space
// partitioning framework for ranking nodes in large networks by centrality
// (Thai, Thai, Vu, Dinh — ICDE 2022), together with everything its
// evaluation depends on: exact Brandes betweenness, the ABRA and KADABRA
// sampling baselines, k-path and closeness estimators, rank-quality
// metrics, and synthetic network generators.
//
// The API is built around two types: a Query names what to estimate — a
// measure (Betweenness, KPath, Closeness), an algorithm (AlgSaPHyRa, or the
// AlgABRA/AlgKADABRA baselines for betweenness), a target set, and the
// (eps, delta, seed) sampling contract — and a Ranker answers queries over
// one graph or one persisted view, caching the per-measure preprocessing
// across calls:
//
//	g, _, err := saphyra.LoadEdgeList("graph.txt")
//	r := saphyra.NewRanker(g)
//	res, err := r.Rank(ctx, saphyra.Query{
//		Measure: saphyra.Betweenness,
//		Targets: []saphyra.Node{5, 17, 99},
//		Epsilon: 0.05,
//		Delta:   0.01,
//	})
//	for i, v := range res.Nodes {
//		fmt.Println(res.Rank[i], v, res.Scores[i])
//	}
//
// Rank takes a context.Context with an all-or-nothing contract: a canceled
// or expired context aborts the computation at the next checkpoint with a
// typed cancellation error, and a completed result is bitwise-identical to
// one computed under a context that never fires — cancellation never
// produces partial estimates. Results are likewise independent of
// Query.Workers and of concurrency: equal Query.Canonical forms guarantee
// bitwise-equal results, and Query.Key is the matching cache-key digest
// (see internal/serve for the HTTP service built on it).
//
// SaPHyRa splits the shortest-path sample space into an exact subspace (all
// 2-hop paths through target nodes, computed exactly) and an approximate
// subspace (sampled with bi-component multistage sampling, adaptive
// empirical Bernstein stopping, and a personalized VC-dimension sample
// ceiling). The combination yields both the error guarantee and high rank
// quality for low-centrality nodes — in particular, no target with positive
// betweenness is ever estimated as zero.
//
// The pre-Query free functions (RankSubset, RankKPath, RankCloseness,
// Preprocess) remain as thin deprecated wrappers over Ranker and return
// bitwise-identical results.
package saphyra

import (
	"context"
	"crypto/sha256"
	"fmt"
	"io"

	"saphyra/internal/bicomp"
	"saphyra/internal/exact"
	"saphyra/internal/graph"
	"saphyra/internal/msbfs"
	"saphyra/internal/params"
	"saphyra/internal/query"
	"saphyra/internal/rank"
)

// Node is a graph vertex identifier in [0, NumNodes).
type Node = graph.Node

// Graph is an immutable undirected, unweighted graph in CSR form.
type Graph = graph.Graph

// Builder accumulates edges and produces a Graph.
type Builder = graph.Builder

// NewBuilder returns a Builder for a graph with at least n nodes.
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// LoadEdgeList reads a whitespace-separated edge-list file ('#'/'%' comments
// allowed). Sparse node ids are compacted; the returned slice maps the new
// dense id back to the original.
func LoadEdgeList(path string) (*Graph, []int64, error) { return graph.LoadEdgeList(path) }

// ReadEdgeList parses an edge list from a reader. See LoadEdgeList.
func ReadEdgeList(r io.Reader) (*Graph, []int64, error) { return graph.ReadEdgeList(r) }

// Measure selects the centrality a Query estimates.
type Measure = query.Measure

// Available measures. Betweenness is the paper's headline instantiation;
// KPath and Closeness are the companion estimators.
const (
	Betweenness = query.Betweenness
	KPath       = query.KPath
	Closeness   = query.Closeness
)

// Algorithm selects a Query's estimation algorithm. AlgSaPHyRa is the
// paper's contribution; the two baselines exist only for Betweenness and
// always estimate the whole network regardless of the subset.
type Algorithm = query.Algorithm

// Available algorithms.
const (
	AlgSaPHyRa = query.AlgSaPHyRa
	AlgABRA    = query.AlgABRA
	AlgKADABRA = query.AlgKADABRA
)

// Query is one ranking request: measure, algorithm, targets (empty = the
// whole network), the k-path walk length K, and the (eps, delta, seed)
// sampling contract. Query.Canonical resolves defaults and strips the
// result-irrelevant Workers field; Query.Key digests the canonical form
// into the one cache key that identifies a query up to bitwise result
// equality (subsuming the legacy Options.Canonical + TargetSetHash
// composition, and covering K).
type Query = query.Query

// Result is a centrality ranking of a target node set.
type Result = query.Result

// Ranker answers Queries over one graph or one View, lazily caching the
// per-measure preprocessing. Safe for concurrent use.
type Ranker = query.Ranker

// NewRanker returns a Ranker over an in-memory graph.
func NewRanker(g *Graph) *Ranker { return query.NewRanker(g) }

// Method selects the estimation algorithm used by the deprecated
// RankSubset/RankAll wrappers.
//
// Deprecated: use Query.Algorithm (the values convert directly:
// Algorithm(m)).
type Method int

// Available methods, value-compatible with the Algorithm constants.
//
// Deprecated: use AlgSaPHyRa, AlgABRA, AlgKADABRA.
const (
	MethodSaPHyRa Method = Method(query.AlgSaPHyRa)
	MethodABRA    Method = Method(query.AlgABRA)
	MethodKADABRA Method = Method(query.AlgKADABRA)
)

// String returns the method name.
func (m Method) String() string {
	switch m {
	case MethodSaPHyRa, MethodABRA, MethodKADABRA:
		return Algorithm(m).String()
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// Options configures the deprecated ranking wrappers. The zero value means
// epsilon 0.05, delta 0.01, all CPUs, seed 0, SaPHyRa method.
//
// Deprecated: build a Query instead; it carries the same fields plus the
// measure axis and the k-path K.
type Options struct {
	Epsilon float64 // additive error guarantee on centrality values
	Delta   float64 // failure probability
	Workers int     // parallel sampling workers; <= 0 means GOMAXPROCS
	Seed    int64   // RNG seed; fixed seed + workers => deterministic output
	Method  Method
}

// Canonical returns the options with every default resolved and every
// result-irrelevant field cleared: a zero Epsilon/Delta becomes its
// documented default (0.05 / 0.01) and Workers is zeroed — the worker count
// multiplexes fixed virtual sampler streams and never affects output bits
// (DESIGN.md section 3).
//
// Deprecated: use Query.Canonical, and Query.Key for cache keys — unlike
// the (Canonical, TargetSetHash) composition, Key also covers the k-path K.
func (o Options) Canonical() Options {
	if o.Epsilon == 0 {
		o.Epsilon = 0.05
	}
	if o.Delta == 0 {
		o.Delta = 0.01
	}
	o.Workers = 0
	return o
}

// query converts the legacy options to a Query for the given measure.
func (o Options) query(m Measure, targets []Node, k int) Query {
	return Query{
		Measure:   m,
		Algorithm: Algorithm(o.Method),
		Targets:   targets,
		K:         k,
		Epsilon:   o.Epsilon,
		Delta:     o.Delta,
		Seed:      o.Seed,
		Workers:   o.Workers,
	}
}

// TargetSetHash returns a stable 256-bit digest of the canonicalized target
// set: the nodes are de-duplicated and sorted (exactly the normalization
// RankSubset applies), then hashed as little-endian 32-bit values. The
// digest is a pure function of the set — independent of input order,
// duplicates, machine, and process.
//
// Migration note: TargetSetHash identifies the target *set* only. It does
// not cover the measure, algorithm, eps/delta/seed, or the k-path walk
// length K — keying a cache by (Options.Canonical, TargetSetHash) therefore
// collides kpath queries that differ only in K. Use Query.Key, which
// subsumes this hash and covers every result-relevant field.
func TargetSetHash(targets []Node) [sha256.Size]byte {
	return query.TargetSetHash(targets)
}

// nonEmptyTargets preserves the legacy contract of the deprecated wrappers:
// they reject an empty target set, whereas Ranker.Rank reads it as "rank
// the whole network".
func nonEmptyTargets(targets []Node) error {
	if len(targets) == 0 {
		return fmt.Errorf("saphyra: %w", params.Errorf("targets", "empty target set"))
	}
	return nil
}

// RankSubset estimates and ranks the betweenness centrality of the target
// nodes with the configured method.
//
// Deprecated: use NewRanker(g).Rank(ctx, Query{Measure: Betweenness, ...});
// the results are bitwise-identical.
func RankSubset(g *Graph, targets []Node, opt Options) (*Result, error) {
	if err := nonEmptyTargets(targets); err != nil {
		return nil, err
	}
	return NewRanker(g).Rank(context.Background(), opt.query(Betweenness, targets, 0))
}

// RankAll ranks every node of the graph (SaPHyRa_bc-full when the method is
// MethodSaPHyRa).
//
// Deprecated: use NewRanker(g).Rank with an empty Query.Targets.
func RankAll(g *Graph, opt Options) (*Result, error) {
	return NewRanker(g).Rank(context.Background(), opt.query(Betweenness, nil, 0))
}

// Preprocessed caches the target-independent SaPHyRa preprocessing so that
// many subsets can be ranked on one graph cheaply.
//
// Deprecated: a Ranker caches the same preprocessing across Rank calls (and
// across measures); use NewRanker or View.Ranker.
type Preprocessed struct {
	r *Ranker
}

// Preprocess decomposes the graph once for repeated RankSubset calls.
//
// Deprecated: use NewRanker; the preprocessing is built on first use (or
// eagerly via Ranker.Prepare).
func Preprocess(g *Graph) *Preprocessed {
	r := NewRanker(g)
	r.Prepare(Betweenness)
	return &Preprocessed{r: r}
}

// RankSubset ranks a target set using the cached preprocessing (always the
// SaPHyRa method).
//
// Deprecated: use Ranker.Rank; the results are bitwise-identical.
func (p *Preprocessed) RankSubset(targets []Node, opt Options) (*Result, error) {
	if err := nonEmptyTargets(targets); err != nil {
		return nil, err
	}
	opt.Method = MethodSaPHyRa
	return p.r.Rank(context.Background(), opt.query(Betweenness, targets, 0))
}

// View is the shared graph-view layer (DESIGN.md section 7): the
// block-annotated adjacency arrays that power the exact 2-hop phase, the
// sampler fast paths, and the k-path and closeness estimators. A View is
// built once per graph (BuildView), can be serialized to a versioned binary
// file (WriteFile), and reopened zero-copy by any number of serving
// processes (OpenView, mmap-backed where the platform supports it — the
// kernel then shares one physical copy of the arrays across all of them).
// Every engine produces bitwise-identical results on a reopened view.
type View struct {
	v   *bicomp.BlockCSR
	ids []int64        // dense id -> original id; nil means identity
	m   *bicomp.Mapped // non-nil when opened from a file
}

// BuildView runs the target-independent preprocessing (bi-component
// decomposition, out-reach tables, block-annotated CSR) and returns the
// resulting view — the build-once half of the build-once/serve-many flow.
// ids is the optional dense-id -> original-id map (as returned by
// LoadEdgeList); it is embedded on WriteFile so serving processes can keep
// reporting the original id space. Pass nil when node ids are already
// dense.
func BuildView(g *Graph, ids []int64) *View {
	d := bicomp.Decompose(g)
	return &View{v: bicomp.NewBlockCSR(d, bicomp.NewOutReach(d)), ids: ids}
}

// WriteFile serializes the view (versioned binary format, native byte
// order; see DESIGN.md section 7), embedding the original-id map when the
// view carries one.
func (v *View) WriteFile(path string) error { return v.v.WriteFile(path, v.ids) }

// OpenView opens a view file written by WriteFile for zero-copy serving.
// The returned view (and anything ranked through it) is valid until Close.
func OpenView(path string) (*View, error) {
	m, err := bicomp.OpenMapped(path)
	if err != nil {
		return nil, err
	}
	return &View{v: m.View, ids: m.IDs, m: m}, nil
}

// IDs returns the view's dense-id -> original-id map, or nil when node ids
// are the original ids. For a mapped view the slice aliases the mapped
// file.
func (v *View) IDs() []int64 { return v.ids }

// Close releases the file mapping of a view opened with OpenView (a no-op
// for views built in memory). The view must not be used afterwards.
func (v *View) Close() error {
	v.ids = nil
	if v.m != nil {
		return v.m.Close()
	}
	return nil
}

// Graph returns the view's embedded graph. For a mapped view its CSR arrays
// alias the mapped file.
func (v *View) Graph() *Graph { return v.v.G }

// DistanceSketch is a k-landmark hop-distance sketch: per-node distance rows
// to the k highest-degree nodes, yielding triangle-inequality lower and
// upper bounds (FarAtLeast, UpperBound) on any pair distance from one O(k)
// lookup. Built by one bit-parallel multi-source BFS pass (DESIGN.md
// section 11).
type DistanceSketch = msbfs.Sketch

// DistanceSketch returns the view's k-landmark distance sketch (k clamped
// to [1, 64]), building it on first request and caching it per k for the
// view's lifetime. Landmarks are a pure function of the graph, so every
// process sketching the same view file computes identical rows. Safe for
// concurrent use.
func (v *View) DistanceSketch(k int) (*DistanceSketch, error) { return v.v.DistanceSketch(k) }

// Ranker returns a Ranker serving all three measures from the view's
// arrays. Results are bitwise-identical to a Ranker over the graph the view
// was built from.
func (v *View) Ranker() *Ranker { return query.NewRankerView(v.v) }

// Preprocess adapts the view for repeated betweenness ranking.
//
// Deprecated: use View.Ranker; the results are bitwise-identical.
func (v *View) Preprocess() *Preprocessed {
	r := v.Ranker()
	r.Prepare(Betweenness)
	return &Preprocessed{r: r}
}

// RankKPath estimates and ranks k-path centrality from the view.
//
// Deprecated: use View.Ranker and Rank with Measure KPath; the results are
// bitwise-identical.
func (v *View) RankKPath(targets []Node, k int, opt Options) (*Result, error) {
	if err := nonEmptyTargets(targets); err != nil {
		return nil, err
	}
	opt.Method = MethodSaPHyRa
	return v.Ranker().Rank(context.Background(), opt.query(KPath, targets, k))
}

// RankCloseness estimates and ranks harmonic closeness from the view (the
// BFS pricing streams the view's grouped adjacency arrays).
//
// Deprecated: use View.Ranker and Rank with Measure Closeness; the results
// are bitwise-identical.
func (v *View) RankCloseness(targets []Node, opt Options) (*Result, error) {
	if err := nonEmptyTargets(targets); err != nil {
		return nil, err
	}
	opt.Method = MethodSaPHyRa
	return v.Ranker().Rank(context.Background(), opt.query(Closeness, targets, 0))
}

// ExactBC computes exact betweenness centrality for every node with
// parallel Brandes (Eq 3 normalization). O(n*m): ground truth for small and
// medium graphs.
func ExactBC(g *Graph, workers int) []float64 { return exact.BCParallel(g, workers) }

// Spearman returns Spearman's rank correlation between truth and estimate
// (Eq 1), ties broken by the supplied ids as in the paper.
func Spearman(truth, estimate []float64, ids []int32) float64 {
	return rank.Spearman(truth, estimate, ids)
}

// KendallTau returns Kendall's rank correlation with the same conventions.
func KendallTau(truth, estimate []float64, ids []int32) float64 {
	return rank.KendallTau(truth, estimate, ids)
}

// RankKPath estimates k-path centrality (the paper's Section II-A example)
// for the target nodes and ranks them.
//
// Deprecated: use NewRanker(g).Rank with Measure KPath; the results are
// bitwise-identical.
func RankKPath(g *Graph, targets []Node, k int, opt Options) (*Result, error) {
	if err := nonEmptyTargets(targets); err != nil {
		return nil, err
	}
	opt.Method = MethodSaPHyRa
	return NewRanker(g).Rank(context.Background(), opt.query(KPath, targets, k))
}

// RankCloseness estimates harmonic closeness centrality (the paper's stated
// future-work extension) for the target nodes and ranks them.
//
// Deprecated: use NewRanker(g).Rank with Measure Closeness; the results are
// bitwise-identical.
func RankCloseness(g *Graph, targets []Node, opt Options) (*Result, error) {
	if err := nonEmptyTargets(targets); err != nil {
		return nil, err
	}
	opt.Method = MethodSaPHyRa
	return NewRanker(g).Rank(context.Background(), opt.query(Closeness, targets, 0))
}

// Generate exposes the deterministic synthetic generators used by the
// examples and experiments.
var Generate = struct {
	BarabasiAlbert  func(n, k int, seed int64) *Graph
	PowerLawCluster func(n, k int, p float64, seed int64) *Graph
	ErdosRenyi      func(n int, m int64, seed int64) *Graph
	WattsStrogatz   func(n, k int, beta float64, seed int64) *Graph
	RoadNetwork     func(rows, cols int, drop float64, seed int64) *Graph
	Grid2D          func(rows, cols int) *Graph
	RandomTree      func(n int, seed int64) *Graph
}{
	BarabasiAlbert:  graph.BarabasiAlbert,
	PowerLawCluster: graph.PowerLawCluster,
	ErdosRenyi:      graph.ErdosRenyi,
	WattsStrogatz:   graph.WattsStrogatz,
	RoadNetwork:     graph.RoadNetwork,
	Grid2D:          graph.Grid2D,
	RandomTree:      graph.RandomTree,
}
