// Package closeness implements subset ranking by harmonic closeness
// centrality, the first of the paper's stated future-work extensions of the
// SaPHyRa framework (Section VI).
//
// Harmonic closeness of v is c(v) = (1/(n-1)) * sum_{u != v} 1/d(u, v)
// (terms with unreachable u are 0). A sample is a uniform source u; the
// per-hypothesis loss for target v is 1/d(u, v) in [0, 1] -- a bounded but
// non-binary loss, so this package runs its own progressive estimator with
// empirical Bernstein stopping (per-target variance) instead of the 0/1
// framework plumbing. One traversal per sample prices all targets at once,
// which is what makes subset ranking cheap — and since distance labels are
// all a sample needs, up to 64 samples per stream share one bit-parallel
// MS-BFS pass (internal/msbfs): the adjacency is streamed once per level
// for the whole batch instead of once per source.
//
// Determinism: sampling is driven through sched.VirtualWorkers fixed
// per-stream RNGs with a deterministic quota split, and the per-stream
// accumulators are merged in stream order — so for a fixed seed the
// estimate is bitwise-identical for any Options.Workers value. Batching
// preserves the bits: each stream draws its sources in the same RNG order
// as the scalar path, MS-BFS distance labels are neighbor-order invariant
// (identical to per-source BFS), and the per-target accumulator adds run in
// source order within each batch — the exact float operation sequence of
// one BFS per sample. The estimator runs over any CSR-shaped adjacency:
// Estimate prices targets on the raw CSR, EstimateView on the block-grouped
// bicomp.BlockCSR arrays (typically mmap-backed; see bicomp.OpenMapped),
// with bitwise-identical results. See DESIGN.md sections 3 (determinism),
// 7 (the shared view layer), and 11 (MS-BFS).
package closeness

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/bits"
	"math/rand/v2"
	"runtime"
	"slices"
	"sync"

	"saphyra/internal/bicomp"
	"saphyra/internal/graph"
	"saphyra/internal/msbfs"
	"saphyra/internal/params"
	"saphyra/internal/sched"
	"saphyra/internal/stats"
)

// Options configures the estimator.
type Options struct {
	Epsilon float64 // additive error; default 0.05
	Delta   float64 // failure probability; default 0.01
	Workers int     // goroutines; the result does not depend on this
	// Seed determines the sample streams; fixed seed => bitwise-identical
	// output at any worker count.
	Seed       int64
	MaxSamples int64 // optional cap; default 64/eps^2 * ln-scaled ceiling
}

func (o *Options) setDefaults() {
	if o.Epsilon == 0 {
		o.Epsilon = 0.05
	}
	if o.Delta == 0 {
		o.Delta = 0.01
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	// Results are worker-count independent by contract, so oversubscribing
	// the machine can only add goroutine churn — clamp instead of trusting
	// the caller's guess. On a single-core box this selects the inline
	// sched path, which allocates nothing.
	if p := runtime.GOMAXPROCS(0); o.Workers > p {
		o.Workers = p
	}
}

// Result holds harmonic closeness estimates for the target set.
type Result struct {
	Nodes        []graph.Node
	Closeness    []float64
	Samples      int64
	Rounds       int
	StoppedEarly bool
}

// reset readies a Result for reuse, keeping the backing arrays.
func (r *Result) reset() {
	r.Nodes = r.Nodes[:0]
	r.Closeness = r.Closeness[:0]
	r.Samples = 0
	r.Rounds = 0
	r.StoppedEarly = false
}

// Estimate computes (eps, delta)-estimates of harmonic closeness for the
// targets by source sampling over the graph's CSR adjacency. Cancellation
// is polled between doubling rounds, between the per-round virtual streams,
// and every few thousand scanned edges inside a traversal pass: a done ctx
// aborts with a *params.CanceledError, never a partial estimate.
//
// One-shot convenience over NewEngine; serving paths that price many
// queries against one graph should hold an Engine and call EstimateInto.
func Estimate(ctx context.Context, g *graph.Graph, a []graph.Node, opt Options) (*Result, error) {
	return NewEngine(g).Estimate(ctx, a, opt)
}

// EstimateView is Estimate over a block-annotated adjacency view: the
// traversals stream the view's grouped neighbor arrays, so a view opened
// from a serialized file (bicomp.OpenMapped) serves closeness queries
// without touching — or even having — the original CSR pages. Results are
// bitwise-identical to Estimate on the graph the view was built from.
func EstimateView(ctx context.Context, view *bicomp.BlockCSR, a []graph.Node, opt Options) (*Result, error) {
	return NewEngineView(view).Estimate(ctx, a, opt)
}

// Engine is a reusable closeness estimator bound to one adjacency. It owns
// a pool of per-call workspaces (RNG streams, MS-BFS traversals, distance
// rows, accumulators), so the steady state of EstimateInto allocates
// nothing beyond the goroutines sched spins up: build one Engine per served
// graph or view and share it across requests (safe for concurrent use).
type Engine struct {
	n   int
	off []int64
	nbr []graph.Node

	mu   sync.Mutex
	free []*callScratch
}

// NewEngine returns an Engine pricing over the graph's sorted CSR arrays.
func NewEngine(g *graph.Graph) *Engine {
	off, nbr := g.CSR()
	return &Engine{n: g.NumNodes(), off: off, nbr: nbr}
}

// NewEngineView returns an Engine streaming the view's block-grouped
// arrays. BFS distance labels are neighbor-order invariant, so its results
// are bitwise-identical to NewEngine on the graph the view was built from.
func NewEngineView(view *bicomp.BlockCSR) *Engine {
	off, nbr := bicomp.GroupedAdj{V: view}.CSR()
	return &Engine{n: view.G.NumNodes(), off: off, nbr: nbr}
}

// Estimate allocates a fresh Result and delegates to EstimateInto.
func (e *Engine) Estimate(ctx context.Context, a []graph.Node, opt Options) (*Result, error) {
	res := &Result{}
	if err := e.EstimateInto(ctx, a, opt, res); err != nil {
		return nil, err
	}
	return res, nil
}

// EstimateInto runs the estimator, writing into res (whose backing arrays
// are reused across calls). On error res holds no partial estimate.
func (e *Engine) EstimateInto(ctx context.Context, a []graph.Node, opt Options, res *Result) error {
	opt.setDefaults()
	n := e.n
	if n < 2 {
		return errors.New("closeness: graph too small")
	}
	eps, delta := opt.Epsilon, opt.Delta
	if err := params.CheckEpsDelta(eps, delta); err != nil {
		return fmt.Errorf("closeness: %w", err)
	}
	if err := params.CheckTargets(a, n); err != nil {
		return fmt.Errorf("closeness: %w", err)
	}
	res.reset()
	res.Nodes = append(res.Nodes, a...)
	slices.Sort(res.Nodes)
	res.Nodes = slices.Compact(res.Nodes)
	nodes := res.Nodes
	k := len(nodes)

	n0 := int64(math.Ceil(stats.VCConstant / (eps * eps) * math.Log(1/delta)))
	if n0 < 1 {
		n0 = 1
	}
	nmax := stats.UnionSampleSize(eps, delta, k) * 4
	if nmax < n0 {
		nmax = n0
	}
	if opt.MaxSamples > 0 {
		if nmax > opt.MaxSamples {
			nmax = opt.MaxSamples
		}
		if n0 > nmax {
			n0 = nmax
		}
	}
	rounds := int64(1)
	if nmax > n0 {
		rounds = int64(math.Ceil(math.Log2(float64(nmax) / float64(n0))))
	}
	deltaI := delta / (2 * float64(rounds) * float64(k))

	sc := e.acquire(nodes)
	defer e.release(sc, nodes)
	// Sub-pass cancellation: the traversals poll this stop every few
	// thousand edges, bounding time-to-cancel well below one MS-BFS pass.
	// Non-cancellable contexts wire a nil Stop — zero setup, zero polling
	// cost beyond a predicted branch.
	stop, unwatch := sched.WatchStop(ctx)
	defer unwatch()

	accs := sc.accs
	var drawn int64
	target := n0
	for {
		res.Rounds++
		if err := e.batchParallel(ctx, sc, opt, stop, target-drawn, accs); err != nil {
			return fmt.Errorf("closeness: %w", err)
		}
		drawn = target
		worst := 0.0
		for i := range accs {
			if e := stats.EpsilonBernstein(drawn, deltaI, accs[i].Variance()); e > worst {
				worst = e
			}
		}
		if worst <= eps {
			res.StoppedEarly = true
			break
		}
		if drawn >= nmax {
			break
		}
		target = drawn * 2
		if target > nmax {
			target = nmax
		}
	}
	res.Samples = drawn
	res.Closeness = resize(res.Closeness, k)
	for i := range accs {
		res.Closeness[i] = accs[i].Mean()
	}
	return nil
}

// callScratch is one call's worth of workspace: the target index, the
// deterministic quota split, the merged accumulators, and the
// sched.VirtualWorkers sample streams. Pooled on the Engine; exactly one
// call owns a callScratch at a time.
type callScratch struct {
	// aIndex[v] is v's position in the call's deduped target slice, -1 for
	// non-targets. Maintained sparsely: acquire sets the k target entries,
	// release clears exactly those, so the O(n) fill happens once per
	// scratch lifetime, not per call.
	aIndex []int32
	quota  []int64
	accs   []stats.MeanVar
	// streams materialize lazily on their first non-zero quota (mirroring
	// core's samplerSet); active[v] records which streams this call has
	// initialized — a pooled stream's leftover state from the previous call
	// is invisible until re-seeded, keeping "never-drawn stream" exactly
	// equivalent to merging all-zero accumulators.
	streams [sched.VirtualWorkers]*stream
	active  [sched.VirtualWorkers]bool
}

// acquire pops a pooled scratch (or builds one), sizes the per-call arrays
// for k targets, and indexes the target set.
func (e *Engine) acquire(nodes []graph.Node) *callScratch {
	e.mu.Lock()
	var sc *callScratch
	if len(e.free) > 0 {
		sc = e.free[len(e.free)-1]
		e.free = e.free[:len(e.free)-1]
	}
	e.mu.Unlock()
	if sc == nil {
		sc = &callScratch{aIndex: make([]int32, e.n)}
		for i := range sc.aIndex {
			sc.aIndex[i] = -1
		}
	}
	k := len(nodes)
	sc.accs = resize(sc.accs, k)
	for i := range sc.accs {
		sc.accs[i] = stats.MeanVar{}
	}
	sc.active = [sched.VirtualWorkers]bool{}
	for i, v := range nodes {
		sc.aIndex[v] = int32(i)
	}
	return sc
}

// release undoes the k sparse aIndex writes and returns sc to the pool.
// Runs on error paths too: a canceled or faulted call leaves the pool
// clean, because every stream re-seeds on its first use per call.
func (e *Engine) release(sc *callScratch, nodes []graph.Node) {
	for _, v := range nodes {
		sc.aIndex[v] = -1
	}
	e.mu.Lock()
	e.free = append(e.free, sc)
	e.mu.Unlock()
}

// stream is one virtual worker's sample stream: a seeded RNG drawing
// sources, an MS-BFS traversal pricing them 64 at a time, per-target
// distance rows for the current batch, and cumulative accumulators.
type stream struct {
	pcg   *rand.PCG
	rng   *rand.Rand
	trav  *msbfs.Traversal
	local []stats.MeanVar // cumulative across rounds, reset per call
	tdist []int32         // tdist[i*msbfs.MaxLanes+j]: dist(srcs[j], nodes[i])
	srcs  [msbfs.MaxLanes]graph.Node
	err   error
}

// resize returns s with length n, reusing the backing array when it fits.
func resize[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// activate readies stream v for this call: created on first ever use,
// re-seeded and zeroed on first use per call. The seed schedule is the
// package contract: stream v draws from PCG(opt.Seed + (v+1)*612_361).
func (sc *callScratch) activate(e *Engine, v int, seed0 int64, k int) *stream {
	s := sc.streams[v]
	if s == nil {
		s = &stream{pcg: rand.NewPCG(0, 0)}
		s.rng = rand.New(s.pcg)
		s.trav = msbfs.New(e.n)
		sc.streams[v] = s
	}
	if !sc.active[v] {
		sc.active[v] = true
		seed := seed0 + int64(v+1)*612_361
		s.pcg.Seed(uint64(seed), 0xbb67ae8584caa73b)
		s.local = resize(s.local, k)
		for i := range s.local {
			s.local[i] = stats.MeanVar{}
		}
		s.tdist = resize(s.tdist, k*msbfs.MaxLanes)
		s.err = nil
	}
	return s
}

// sampleBatch draws count sources in RNG order and prices them against the
// targets in MS-BFS batches of up to 64 lanes. The accumulator adds run
// lane-by-lane (source order) with targets inner — element for element the
// float sequence of the scalar one-BFS-per-sample loop, so the bits match.
func (s *stream) sampleBatch(ctx context.Context, e *Engine, aIndex []int32, k int, stop *sched.Stop, count int64) {
	n := e.n
	tdist := s.tdist
	onSettle := func(u graph.Node, lanes uint64, depth int32) {
		ai := aIndex[u]
		if ai < 0 {
			return
		}
		row := tdist[int(ai)*msbfs.MaxLanes:]
		for m := lanes; m != 0; m &= m - 1 {
			row[bits.TrailingZeros64(m)] = depth
		}
	}
	for count > 0 {
		L := int(count)
		if L > msbfs.MaxLanes {
			L = msbfs.MaxLanes
		}
		srcs := s.srcs[:L]
		for j := range srcs {
			srcs[j] = graph.Node(s.rng.IntN(n))
		}
		for i := range tdist {
			tdist[i] = -1
		}
		if err := s.trav.RunCtx(ctx, e.off, e.nbr, srcs, stop, onSettle); err != nil {
			s.err = err
			return
		}
		// tdist[i][j] > 0 iff target i is reachable from source j and is not
		// the source itself — exactly the scalar path's `v != u && dist[v] > 0`.
		for j := 0; j < L; j++ {
			for i := 0; i < k; i++ {
				x := 0.0
				if d := tdist[i*msbfs.MaxLanes+j]; d > 0 {
					x = 1 / float64(d)
				}
				s.local[i].Add(x)
			}
		}
		count -= int64(L)
	}
}

// batchParallel distributes count samples across the virtual-worker streams
// with a deterministic quota split and runs them on up to opt.Workers
// goroutines (sched work stealing — which goroutine runs which stream never
// affects the streams themselves). Each stream slot is touched by exactly
// one goroutine per round, with rounds separated by the DoCtx barrier, so
// the lazy activation needs no locking. The per-stream accumulators are
// cumulative across rounds; accs is rebuilt from scratch each round,
// merging streams in stream order so the result is a pure function of the
// seed — skipping a never-activated stream is bitwise-equivalent to merging
// its (all-zero) accumulators.
func (e *Engine) batchParallel(ctx context.Context, sc *callScratch, opt Options, stop *sched.Stop, count int64, accs []stats.MeanVar) error {
	if count <= 0 {
		return nil
	}
	if err := params.Interrupted(ctx); err != nil {
		return err
	}
	k := len(accs)
	nv := sched.VirtualWorkers
	sc.quota = sched.Split(count, nv, sc.quota)
	quota := sc.quota
	if opt.Workers <= 1 {
		// Inline fast path with DoCtx's exact checkpoint semantics: ctx
		// polled before each stream. Skipping the generic work-stealing
		// machinery (and its escaping closure) keeps the single-worker
		// steady state allocation-free.
		for v := 0; v < nv; v++ {
			if ctx.Err() != nil {
				return &params.CanceledError{Cause: context.Cause(ctx)}
			}
			if quota[v] == 0 {
				continue
			}
			s := sc.activate(e, v, opt.Seed, k)
			if s.err != nil {
				continue
			}
			s.sampleBatch(ctx, e, sc.aIndex, k, stop, quota[v])
		}
	} else if err := sched.DoCtx(ctx, nv, opt.Workers, func(v int) {
		if quota[v] == 0 {
			return
		}
		s := sc.activate(e, v, opt.Seed, k)
		if s.err != nil {
			return // an earlier round aborted this stream; keep the first error
		}
		s.sampleBatch(ctx, e, sc.aIndex, k, stop, quota[v])
	}); err != nil {
		// All-or-nothing: a stream may have drawn while another never ran.
		// The caller discards the whole estimate, so the polluted per-stream
		// accumulators never surface (and release re-pools the scratch —
		// streams re-seed on first use, so the pool is not poisoned).
		return &params.CanceledError{Cause: err}
	}
	for v := 0; v < nv; v++ {
		s := sc.streams[v]
		if s == nil || !sc.active[v] || s.err == nil {
			continue
		}
		if errors.Is(s.err, msbfs.ErrStopped) {
			return &params.CanceledError{Cause: context.Cause(ctx)}
		}
		return s.err
	}
	for i := range accs {
		accs[i] = stats.MeanVar{}
	}
	for v := 0; v < nv; v++ {
		if !sc.active[v] {
			continue
		}
		local := sc.streams[v].local
		for i := range accs {
			accs[i].Merge(&local[i])
		}
	}
	return nil
}

// Exact computes exact harmonic closeness for every node: c(v) =
// sum_{u != v} (1/d(u,v)) / (n-1), one BFS per node. O(n*m).
func Exact(g *graph.Graph) []float64 {
	n := g.NumNodes()
	out := make([]float64, n)
	if n < 2 {
		return out
	}
	dist := make([]int32, n)
	for u := 0; u < n; u++ {
		dist = graph.BFSDistances(g, graph.Node(u), dist)
		for v, d := range dist {
			if v != u && d > 0 {
				out[v] += 1 / float64(d)
			}
		}
	}
	for i := range out {
		out[i] /= float64(n - 1)
	}
	return out
}
