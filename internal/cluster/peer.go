package cluster

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"saphyra/internal/obs"
	"saphyra/internal/serve"
)

// Peers is a replica's client side of the cluster cache-fill tier: on a
// local cache miss it asks the key's home peer (by ring placement over the
// TRUE canonical Query.Key, which only replicas can compute — they hold the
// view) for its cached entry before computing. One computation on the home
// replica thereby warms any replica the router fans the key to, at the cost
// of one small GET instead of a full recompute.
//
// Wire a Peers into serve.Config.PeerFill; the serving layer calls Fill
// inside its singleflight flight (one probe per cold key, not per request)
// and validates the generation and shape of whatever comes back before
// adopting it. Exchanging entries as the canonical response envelope is
// sound only because responses are bitwise reproducible — the peer's bytes
// ARE the bytes the local engines would produce.
type Peers struct {
	self    int // index of the owning replica in urls; -1 for none
	urls    []string
	ring    *Ring
	client  *http.Client
	timeout time.Duration
}

// DefaultPeerTimeout bounds one cache probe. A peer slower than this is
// slower than many local computes — give up and compute.
const DefaultPeerTimeout = 250 * time.Millisecond

// NewPeers builds the fill client for the replica at index self of urls
// (the same ordered list, and the same vnodes, the router was given — ring
// agreement is positional). self = -1 means "not a fleet member" (probe
// everyone). A nil client uses http.DefaultClient; timeout <= 0 means
// DefaultPeerTimeout.
func NewPeers(urls []string, self int, vnodes int, client *http.Client, timeout time.Duration) (*Peers, error) {
	ring, err := NewRing(urls, vnodes)
	if err != nil {
		return nil, err
	}
	if client == nil {
		client = http.DefaultClient
	}
	if timeout <= 0 {
		timeout = DefaultPeerTimeout
	}
	return &Peers{
		self:    self,
		urls:    append([]string(nil), urls...),
		ring:    ring,
		client:  client,
		timeout: timeout,
	}, nil
}

// Fill implements serve.Config.PeerFill: probe the key's home peer's
// /internal/cache. Misses of every kind — the key's home is this replica,
// the peer is down, the peer has not cached the key — report ok=false and
// cost at most one bounded round-trip; the serving layer then computes
// locally. The caller validates generation and shape before adopting.
func (p *Peers) Fill(ctx context.Context, gen uint64, key [sha256.Size]byte) (*serve.RankResponse, bool) {
	home := p.ring.Owner(KeyHash(key))
	if home == p.self {
		return nil, false // we ARE the home: compute, everyone else fills from us
	}
	pctx, cancel := context.WithTimeout(ctx, p.timeout)
	defer cancel()
	pctx, span := obs.StartSpan(pctx, "cluster.fill")
	defer func() {
		if span != nil {
			span.End()
		}
	}()
	url := fmt.Sprintf("%s/internal/cache?gen=%d&key=%s", p.urls[home], gen, hex.EncodeToString(key[:]))
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, false
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return nil, false
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, false
	}
	var out serve.RankResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxRelayBody)).Decode(&out); err != nil {
		return nil, false
	}
	if span != nil {
		span.SetNote("hit")
	}
	return &out, true
}

// drain consumes and closes a response body so the transport can reuse the
// connection.
func drain(resp *http.Response) {
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}
