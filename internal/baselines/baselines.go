// Package baselines reimplements the two state-of-the-art betweenness
// approximation algorithms the paper compares against:
//
//   - ABRA (Riondato & Upfal [47]): samples node pairs uniformly and, for
//     each pair, adds the exact pair dependency sigma_st(v)/sigma_st to every
//     node v on an s-t shortest path (a truncated Brandes pass per sample).
//   - KADABRA (Borassi & Natale [12]): samples node pairs uniformly, draws a
//     single uniform random shortest path per pair with balanced
//     bidirectional BFS, and increments only the inner nodes of that path.
//
// Both estimate betweenness for all n nodes of the network -- they cannot
// restrict work to a target subset, which is the comparison point of the
// paper's Fig 3.
//
// Both use progressive sampling with doubling and per-node empirical
// Bernstein stopping under a union bound, with the Riondato et al. [45]
// VC-dimension sample-size ceiling. ABRA's original stopping rule uses
// Rademacher averages; the substitution (documented in DESIGN.md) keeps the
// progressive structure and the (eps, delta) guarantee while being slightly
// more conservative.
package baselines

import (
	"context"
	"fmt"
	"math"
	"math/rand/v2"
	"runtime"
	"sync"

	"saphyra/internal/graph"
	"saphyra/internal/params"
	"saphyra/internal/shortestpath"
	"saphyra/internal/stats"
	"saphyra/internal/vc"
)

// Options configures a baseline estimator.
type Options struct {
	Epsilon float64 // additive error target; default 0.05
	Delta   float64 // failure probability; default 0.01
	Workers int     // <= 0 means GOMAXPROCS
	Seed    int64
	// MaxSamples optionally caps sampling (guarantee void when binding).
	MaxSamples int64
}

func (o *Options) setDefaults() {
	if o.Epsilon == 0 {
		o.Epsilon = 0.05
	}
	if o.Delta == 0 {
		o.Delta = 0.01
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
}

func (o Options) validate() error {
	if err := params.CheckEpsDelta(o.Epsilon, o.Delta); err != nil {
		return fmt.Errorf("baselines: %w", err)
	}
	return nil
}

// Result holds a baseline's whole-network estimate.
type Result struct {
	BC           []float64 // estimates for all n nodes (Eq 3 normalization)
	Samples      int64
	Rounds       int
	VCDim        int
	NMax         int64
	StoppedEarly bool
}

// pairSampler produces per-sample contributions. sampleOne adds the
// contribution for one sampled pair into acc (sum) and accSq (sum of
// squares, for the Bernstein variance); sampleBatch draws count pairs in one
// call — the batched engine's unit of work, mirroring core.BatchSampler —
// letting implementations keep scratch hot and allocation-free.
type pairSampler interface {
	sampleOne(rng *rand.Rand, acc, accSq []float64)
	sampleBatch(rng *rand.Rand, count int64, acc, accSq []float64)
}

// progressive runs the shared doubling loop. Cancellation is polled once
// per doubling round: a done ctx aborts with a *params.CanceledError, never
// a partial estimate.
func progressive(ctx context.Context, g *graph.Graph, opt Options, mk func(seed int64) pairSampler) (*Result, error) {
	opt.setDefaults()
	if err := opt.validate(); err != nil {
		return nil, err
	}
	n := g.NumNodes()
	if n < 2 {
		return &Result{BC: make([]float64, n)}, nil
	}
	eps := opt.Epsilon
	dim := vc.Riondato(graph.DiameterUpperBound(g))
	if dim < 1 {
		dim = 1
	}
	n0 := int64(math.Ceil(stats.VCConstant / (eps * eps) * math.Log(1/opt.Delta)))
	if n0 < 1 {
		n0 = 1
	}
	nmax := stats.VCSampleSize(eps, opt.Delta, dim)
	if nmax < n0 {
		nmax = n0
	}
	if opt.MaxSamples > 0 {
		if n0 > opt.MaxSamples {
			n0 = opt.MaxSamples
		}
		if nmax > opt.MaxSamples {
			nmax = opt.MaxSamples
		}
	}
	rounds := int64(1)
	if nmax > n0 {
		rounds = int64(math.Ceil(math.Log2(float64(nmax) / float64(n0))))
	}
	// union-bound failure budget per node per round (two-sided)
	deltaI := opt.Delta / (2 * float64(rounds) * float64(n))

	res := &Result{VCDim: dim, NMax: nmax}
	sum := make([]float64, n)
	sumSq := make([]float64, n)
	workers := opt.Workers
	samplers := make([]pairSampler, workers)
	rngs := make([]*rand.Rand, workers)
	for w := 0; w < workers; w++ {
		samplers[w] = mk(opt.Seed + int64(w+1)*999_983)
		rngs[w] = rand.New(rand.NewPCG(uint64(opt.Seed+int64(w+1)*7_368_787), 0x3c6ef372fe94f82b))
	}
	var drawn int64
	target := n0
	for {
		res.Rounds++
		if err := params.Interrupted(ctx); err != nil {
			return nil, fmt.Errorf("baselines: %w", err)
		}
		drawBatch(samplers, rngs, target-drawn, n, sum, sumSq)
		drawn = target
		worst := 0.0
		fn := float64(drawn)
		for v := 0; v < n; v++ {
			variance := (sumSq[v] - sum[v]*sum[v]/fn) / (fn - 1)
			if variance < 0 || fn < 2 {
				variance = 0
			}
			if e := stats.EpsilonBernstein(drawn, deltaI, variance); e > worst {
				worst = e
				if worst > eps { // no need to scan further this round
					break
				}
			}
		}
		if worst <= eps {
			res.StoppedEarly = true
			break
		}
		if drawn >= nmax {
			break
		}
		target = drawn * 2
		if target > nmax {
			target = nmax
		}
	}
	res.Samples = drawn
	res.BC = make([]float64, n)
	for v := 0; v < n; v++ {
		res.BC[v] = sum[v] / float64(drawn)
	}
	return res, nil
}

// drawBatch distributes `count` samples across workers with static quotas
// and merges per-worker accumulators (deterministic for a fixed worker
// count and seed).
func drawBatch(samplers []pairSampler, rngs []*rand.Rand, count int64, n int, sum, sumSq []float64) {
	if count <= 0 {
		return
	}
	const smallBatch = 1024
	if count < smallBatch {
		samplers[0].sampleBatch(rngs[0], count, sum, sumSq)
		return
	}
	workers := len(samplers)
	var wg sync.WaitGroup
	localSum := make([][]float64, workers)
	localSq := make([][]float64, workers)
	base := count / int64(workers)
	rem := count % int64(workers)
	for w := 0; w < workers; w++ {
		quota := base
		if int64(w) < rem {
			quota++
		}
		if quota == 0 {
			continue
		}
		wg.Add(1)
		go func(w int, quota int64) {
			defer wg.Done()
			ls := make([]float64, n)
			lq := make([]float64, n)
			samplers[w].sampleBatch(rngs[w], quota, ls, lq)
			localSum[w] = ls
			localSq[w] = lq
		}(w, quota)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if localSum[w] == nil {
			continue
		}
		for v := 0; v < n; v++ {
			sum[v] += localSum[w][v]
			sumSq[v] += localSq[w][v]
		}
	}
}

// ABRA estimates betweenness for all nodes with node-pair sampling [47].
func ABRA(ctx context.Context, g *graph.Graph, opt Options) (*Result, error) {
	return progressive(ctx, g, opt, func(seed int64) pairSampler {
		return newABRASampler(g)
	})
}

type abraSampler struct {
	g       *graph.Graph
	dag     *shortestpath.DAG
	tau     []float64 // paths-to-target counts on the s-t DAG
	stamp   []int32   // on-DAG marker, epoch-stamped
	epoch   int32
	byLevel [][]graph.Node
}

func newABRASampler(g *graph.Graph) *abraSampler {
	n := g.NumNodes()
	a := &abraSampler{
		g:     g,
		dag:   shortestpath.NewDAG(n),
		tau:   make([]float64, n),
		stamp: make([]int32, n),
	}
	for i := range a.stamp {
		a.stamp[i] = -1
	}
	return a
}

// sampleBatch draws count pairs back to back; the DAG, tau, and level
// buckets stay hot across the whole batch.
func (a *abraSampler) sampleBatch(rng *rand.Rand, count int64, acc, accSq []float64) {
	for j := int64(0); j < count; j++ {
		a.sampleOne(rng, acc, accSq)
	}
}

func (a *abraSampler) sampleOne(rng *rand.Rand, acc, accSq []float64) {
	n := a.g.NumNodes()
	s := graph.Node(rng.IntN(n))
	t := graph.Node(rng.IntN(n - 1))
	if t >= s {
		t++
	}
	a.dag.Run(a.g, s)
	if a.dag.Dist[t] < 0 {
		return // disconnected pair contributes 0 to every node
	}
	// Backward discovery of the s-t sub-DAG from t, bucketed by level.
	a.epoch++
	e := a.epoch
	maxD := int(a.dag.Dist[t])
	for len(a.byLevel) <= maxD {
		a.byLevel = append(a.byLevel, nil)
	}
	for d := 0; d <= maxD; d++ {
		a.byLevel[d] = a.byLevel[d][:0]
	}
	a.stamp[t] = e
	a.tau[t] = 1
	a.byLevel[maxD] = append(a.byLevel[maxD], t)
	for d := maxD; d > 0; d-- {
		for _, u := range a.byLevel[d] {
			du := a.dag.Dist[u]
			for _, w := range a.g.Neighbors(u) {
				if a.dag.Dist[w] == du-1 {
					if a.stamp[w] != e {
						a.stamp[w] = e
						a.tau[w] = 0
						a.byLevel[d-1] = append(a.byLevel[d-1], w)
					}
				}
			}
		}
	}
	// tau accumulation top-down (decreasing distance): tau(v) = number of
	// shortest v->t continuations; pair dependency of inner node v is
	// sigma_sv * tau(v) / sigma_st.
	for d := maxD; d > 0; d-- {
		for _, u := range a.byLevel[d] {
			tu := a.tau[u]
			du := a.dag.Dist[u]
			for _, w := range a.g.Neighbors(u) {
				if a.dag.Dist[w] == du-1 && a.stamp[w] == e {
					a.tau[w] += tu
				}
			}
		}
	}
	sigmaST := a.dag.Sigma[t]
	for d := 1; d < maxD; d++ {
		for _, u := range a.byLevel[d] {
			x := a.dag.Sigma[u] * a.tau[u] / sigmaST
			acc[u] += x
			accSq[u] += x * x
		}
	}
}

// KADABRA estimates betweenness for all nodes with single-path sampling and
// balanced bidirectional BFS [12].
func KADABRA(ctx context.Context, g *graph.Graph, opt Options) (*Result, error) {
	return progressive(ctx, g, opt, func(seed int64) pairSampler {
		return &kadabraSampler{g: g, bfs: shortestpath.NewBiBFS(g.NumNodes())}
	})
}

type kadabraSampler struct {
	g       *graph.Graph
	bfs     *shortestpath.BiBFS
	pathBuf []graph.Node // reused across samples: the batch loop is allocation-free
}

// sampleBatch draws count pairs back to back with the shared path buffer.
func (k *kadabraSampler) sampleBatch(rng *rand.Rand, count int64, acc, accSq []float64) {
	for j := int64(0); j < count; j++ {
		k.sampleOne(rng, acc, accSq)
	}
}

func (k *kadabraSampler) sampleOne(rng *rand.Rand, acc, accSq []float64) {
	n := k.g.NumNodes()
	s := graph.Node(rng.IntN(n))
	t := graph.Node(rng.IntN(n - 1))
	if t >= s {
		t++
	}
	if _, _, ok := k.bfs.Query(k.g, s, t); !ok {
		return // disconnected pair contributes 0
	}
	k.pathBuf = k.bfs.SamplePathAppend(k.g, rng, k.pathBuf)
	for _, v := range k.pathBuf[1 : len(k.pathBuf)-1] {
		acc[v]++
		accSq[v]++
	}
}
