package core

import (
	"context"

	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"saphyra/internal/exact"
	"saphyra/internal/graph"
	"saphyra/internal/testutil"
)

func TestEstimateBCWithinEpsilonRandomGraphs(t *testing.T) {
	// (eps, delta) check against exact Brandes across many random graphs and
	// random subsets. delta = 0.01 per run; with the bounds' slack, zero
	// violations are expected over 25 runs.
	violations := 0
	for trial := 0; trial < 25; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		n := 20 + rng.Intn(60)
		g := testutil.RandomConnectedGraph(n, rng.Intn(2*n), int64(trial)*13+1)
		truth := exact.BC(g)
		var a []graph.Node
		for len(a) < 8 {
			a = append(a, graph.Node(rng.Intn(n)))
		}
		res, err := EstimateBC(context.Background(), g, a, BCOptions{Epsilon: 0.05, Delta: 0.01, Seed: int64(trial), Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range res.Nodes {
			if math.Abs(res.BC[i]-truth[v]) > 0.05 {
				violations++
				t.Logf("trial %d node %d: est %g truth %g", trial, v, res.BC[i], truth[v])
				break
			}
		}
	}
	if violations > 1 {
		t.Errorf("epsilon violated in %d/25 runs (delta=0.01 each)", violations)
	}
}

func TestEstimateBCFullNetwork(t *testing.T) {
	g := graph.BarabasiAlbert(120, 3, 7)
	truth := exact.BC(g)
	all := make([]graph.Node, g.NumNodes())
	for i := range all {
		all[i] = graph.Node(i)
	}
	res, err := EstimateBC(context.Background(), g, all, BCOptions{Epsilon: 0.05, Delta: 0.01, Seed: 4, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Eta-1) > 1e-12 {
		t.Errorf("eta = %g, want 1 for A = V", res.Eta)
	}
	for i, v := range res.Nodes {
		if math.Abs(res.BC[i]-truth[v]) > 0.05 {
			t.Errorf("node %d: est %g truth %g", v, res.BC[i], truth[v])
		}
	}
}

func TestEstimateBCTreeIsExact(t *testing.T) {
	// On a tree every block is a single edge: the ISP space has no paths
	// with inner nodes, so bc(v) = bca(v) exactly and the estimator should
	// return exact betweenness with zero sampling error.
	g := graph.RandomTree(60, 11)
	truth := exact.BC(g)
	var a []graph.Node
	for v := 0; v < 60; v += 3 {
		a = append(a, graph.Node(v))
	}
	res, err := EstimateBC(context.Background(), g, a, BCOptions{Epsilon: 0.05, Delta: 0.01, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.Nodes {
		if math.Abs(res.BC[i]-truth[v]) > 1e-9 {
			t.Errorf("node %d: est %g truth %g (trees must be exact)", v, res.BC[i], truth[v])
		}
		if res.BC[i] != res.BCA[i] {
			t.Errorf("node %d: bc %g != bca %g on a tree", v, res.BC[i], res.BCA[i])
		}
	}
}

func TestEstimateBCNoFalseZeros(t *testing.T) {
	// Lemma 19: every target with positive betweenness gets a positive
	// estimate, at any sample budget.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(40)
		g := testutil.RandomConnectedGraph(n, rng.Intn(2*n), seed)
		truth := exact.BC(g)
		var a []graph.Node
		for i := 0; i < 6; i++ {
			a = append(a, graph.Node(rng.Intn(n)))
		}
		res, err := EstimateBC(context.Background(), g, a, BCOptions{Epsilon: 0.2, Delta: 0.1, Seed: seed})
		if err != nil {
			t.Log(err)
			return false
		}
		for i, v := range res.Nodes {
			if truth[v] > 1e-15 && res.BC[i] == 0 {
				t.Logf("seed %d: false zero at node %d (truth %g)", seed, v, truth[v])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// exact-subspace values must match a brute-force enumeration of 2-hop
// intra-block paths with middles in A.
func TestExactBCMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(20)
		g := testutil.RandomConnectedGraph(n, rng.Intn(2*n), seed)
		p := PreprocessBC(g)
		var a []graph.Node
		for i := 0; i < 4; i++ {
			a = append(a, graph.Node(rng.Intn(n)))
		}
		nodes := graph.DedupSorted(a)
		blocksA := p.O.BlocksOf(nodes)
		wA := p.O.WeightOfBlocks(blocksA)
		if wA == 0 {
			return true
		}
		aIndex := make([]int32, n)
		for i := range aIndex {
			aIndex[i] = -1
		}
		for i, v := range nodes {
			aIndex[v] = int32(i)
		}
		lambdaHat, ell, _ := p.Exact.Run(context.Background(), nodes, aIndex, wA, 2)

		// brute force over all ordered pairs and all shortest paths
		bruteEll := make([]float64, len(nodes))
		var bruteLambda float64
		for b := int32(0); int(b) < p.D.NumBlocks; b++ {
			inBlocksA := false
			for _, bb := range blocksA {
				if bb == b {
					inBlocksA = true
					break
				}
			}
			if !inBlocksA {
				continue
			}
			members := p.D.Blocks[b]
			for _, s := range members {
				for _, u := range members {
					if s == u {
						continue
					}
					paths := testutil.AllShortestPaths(g, s, u)
					if len(paths) == 0 {
						continue
					}
					for _, path := range paths {
						if len(path) != 3 {
							continue // not a 2-hop path
						}
						mid := path[1]
						ai := aIndex[mid]
						if ai < 0 {
							continue
						}
						mass := p.O.PairMass(b, s, u) / (float64(len(paths)) * wA)
						bruteEll[ai] += mass
						bruteLambda += mass
					}
				}
			}
		}
		if math.Abs(lambdaHat-bruteLambda) > 1e-9 {
			t.Logf("seed %d: lambdaHat %g brute %g", seed, lambdaHat, bruteLambda)
			return false
		}
		for i := range ell {
			if math.Abs(ell[i]-bruteEll[i]) > 1e-9 {
				t.Logf("seed %d: ell[%d] = %g brute %g", seed, i, ell[i], bruteEll[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Gen_bc must sample approximate-subspace paths with the Eq 31 distribution.
func TestGenBCDistribution(t *testing.T) {
	// Small fixture with blocks of different weights and multiple shortest
	// paths: a 4-cycle with a pendant path.
	b := graph.NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 0) // 4-cycle block
	b.AddEdge(2, 4) // bridge
	b.AddEdge(4, 5) // bridge
	g := b.Build()
	p := PreprocessBC(g)
	nodes := []graph.Node{1, 4} // targets in different blocks
	blocksA := p.O.BlocksOf(nodes)
	wA := p.O.WeightOfBlocks(blocksA)
	sp, err := newBCSpace(context.Background(), p, nodes, blocksA, wA, BCOptions{Epsilon: 0.1, Delta: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	lambdaHat, _, _ := sp.ExactPhase(context.Background())

	// theoretical probability of each approximate-subspace path
	type pathKey string
	key := func(path []graph.Node) pathKey {
		out := make([]byte, len(path))
		for i, v := range path {
			out[i] = byte(v)
		}
		return pathKey(out)
	}
	want := map[pathKey]float64{}
	for _, bID := range blocksA {
		members := p.D.Blocks[bID]
		for _, s := range members {
			for _, u := range members {
				if s == u {
					continue
				}
				paths := testutil.AllShortestPaths(g, s, u)
				for _, path := range paths {
					if len(path) == 3 && sp.aIndex[path[1]] >= 0 {
						continue // exact subspace, rejected
					}
					want[key(path)] += p.O.PairMass(bID, s, u) /
						(float64(len(paths)) * wA * (1 - lambdaHat))
				}
			}
		}
	}

	// Sampling happens per path; intercept paths by re-deriving them from
	// hits is lossy, so sample via the sampler's internals: use Draw and
	// reconstruct the path by re-querying is overkill -- instead we spot
	// check the per-hypothesis hit rates, which are linear in the path
	// probabilities: E[hit_v] = sum_{paths with v inner} Pr[path].
	wantHit := make([]float64, len(nodes))
	for _, bID := range blocksA {
		members := p.D.Blocks[bID]
		for _, s := range members {
			for _, u := range members {
				if s == u {
					continue
				}
				paths := testutil.AllShortestPaths(g, s, u)
				for _, path := range paths {
					if len(path) == 3 && sp.aIndex[path[1]] >= 0 {
						continue
					}
					pr := p.O.PairMass(bID, s, u) / (float64(len(paths)) * wA * (1 - lambdaHat))
					for _, v := range path[1 : len(path)-1] {
						if ai := sp.aIndex[v]; ai >= 0 {
							wantHit[ai] += pr
						}
					}
				}
			}
		}
	}
	smp := sp.NewSampler(99)
	const N = 200000
	got := make([]float64, len(nodes))
	for i := 0; i < N; i++ {
		for _, h := range smp.Draw() {
			got[h]++
		}
	}
	for i := range got {
		got[i] /= N
		if math.Abs(got[i]-wantHit[i]) > 0.01 {
			t.Errorf("hypothesis %d: empirical hit rate %g, want %g", i, got[i], wantHit[i])
		}
	}
	// total mass sanity: probabilities sum to 1
	var sum float64
	for _, pr := range want {
		sum += pr
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("approximate-subspace path probabilities sum to %g, want 1", sum)
	}
}

func TestEstimateBCPreprocessedReuse(t *testing.T) {
	g := graph.BarabasiAlbert(150, 3, 3)
	p := PreprocessBC(g)
	truth := exact.BC(g)
	for trial := 0; trial < 3; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		var a []graph.Node
		for i := 0; i < 10; i++ {
			a = append(a, graph.Node(rng.Intn(150)))
		}
		res, err := p.EstimateBC(context.Background(), a, BCOptions{Epsilon: 0.05, Delta: 0.01, Seed: int64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range res.Nodes {
			if math.Abs(res.BC[i]-truth[v]) > 0.05 {
				t.Errorf("trial %d node %d: est %g truth %g", trial, v, res.BC[i], truth[v])
			}
		}
	}
}

func TestEstimateBCErrors(t *testing.T) {
	g := graph.Cycle(5)
	if _, err := EstimateBC(context.Background(), g, nil, BCOptions{}); err == nil {
		t.Error("empty target set: want error")
	}
	if _, err := EstimateBC(context.Background(), g, []graph.Node{99}, BCOptions{}); err == nil {
		t.Error("out-of-range target: want error")
	}
	if _, err := EstimateBC(context.Background(), g, []graph.Node{-1}, BCOptions{}); err == nil {
		t.Error("negative target: want error")
	}
}

func TestEstimateBCDeduplicatesTargets(t *testing.T) {
	g := graph.Cycle(6)
	res, err := EstimateBC(context.Background(), g, []graph.Node{2, 2, 4, 2}, BCOptions{Epsilon: 0.1, Delta: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != 2 || res.Nodes[0] != 2 || res.Nodes[1] != 4 {
		t.Errorf("nodes = %v, want [2 4]", res.Nodes)
	}
}

func TestEstimateBCDeterministic(t *testing.T) {
	g := graph.BarabasiAlbert(100, 3, 5)
	a := []graph.Node{3, 17, 42, 77}
	opt := BCOptions{Epsilon: 0.05, Delta: 0.05, Seed: 11, Workers: 3}
	r1, err := EstimateBC(context.Background(), g, a, opt)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := EstimateBC(context.Background(), g, a, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.BC {
		if r1.BC[i] != r2.BC[i] {
			t.Errorf("nondeterministic estimate at %d: %g vs %g", i, r1.BC[i], r2.BC[i])
		}
	}
}

func TestEstimateBCDisconnectedGraph(t *testing.T) {
	b := graph.NewBuilder(12)
	// two components: a 6-cycle and a 5-path, plus an isolated node
	for i := 0; i < 5; i++ {
		b.AddEdge(graph.Node(i), graph.Node(i+1))
	}
	b.AddEdge(5, 0)
	for i := 6; i < 10; i++ {
		b.AddEdge(graph.Node(i), graph.Node(i+1))
	}
	g := b.Build()
	truth := exact.BC(g)
	a := []graph.Node{1, 8, 11} // cycle node, path node, isolated node
	res, err := EstimateBC(context.Background(), g, a, BCOptions{Epsilon: 0.05, Delta: 0.01, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.Nodes {
		if math.Abs(res.BC[i]-truth[v]) > 0.05 {
			t.Errorf("node %d: est %g truth %g", v, res.BC[i], truth[v])
		}
	}
}

func TestEstimateBCIsolatedTargetsOnly(t *testing.T) {
	b := graph.NewBuilder(5)
	b.AddEdge(0, 1)
	g := b.Build() // nodes 2,3,4 isolated
	res, err := EstimateBC(context.Background(), g, []graph.Node{2, 3}, BCOptions{Epsilon: 0.1, Delta: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.BC {
		if res.BC[i] != 0 {
			t.Errorf("isolated node bc = %g, want 0", res.BC[i])
		}
	}
}

func TestEstimateBCAblations(t *testing.T) {
	g := testutil.RandomConnectedGraph(50, 60, 3)
	truth := exact.BC(g)
	a := []graph.Node{1, 5, 9, 20, 33}
	for _, opt := range []BCOptions{
		{Epsilon: 0.05, Delta: 0.01, Seed: 1, DisableExactSubspace: true},
		{Epsilon: 0.05, Delta: 0.01, Seed: 1, DisableAdaptive: true},
		{Epsilon: 0.05, Delta: 0.01, Seed: 1, VCBound: VCRiondato},
		{Epsilon: 0.05, Delta: 0.01, Seed: 1, VCBound: VCBicomp},
	} {
		res, err := EstimateBC(context.Background(), g, a, opt)
		if err != nil {
			t.Fatalf("%+v: %v", opt, err)
		}
		for i, v := range res.Nodes {
			if math.Abs(res.BC[i]-truth[v]) > 0.05 {
				t.Errorf("opt %+v node %d: est %g truth %g", opt, v, res.BC[i], truth[v])
			}
		}
	}
}

func TestEstimateBCStarCenter(t *testing.T) {
	// Star: center is a cutpoint with bc = (n-1)(n-2)/(n(n-1)); every block
	// is an edge so the whole value comes from bca, exactly.
	g := graph.Star(20)
	res, err := EstimateBC(context.Background(), g, []graph.Node{0}, BCOptions{Epsilon: 0.05, Delta: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	want := exact.BC(g)[0]
	if math.Abs(res.BC[0]-want) > 1e-12 {
		t.Errorf("star center bc = %g, want %g exactly", res.BC[0], want)
	}
}
