package exactphase

import (
	"context"

	"math"
	"testing"

	"saphyra/internal/bicomp"
	"saphyra/internal/graph"
)

// benchGraph mirrors the sampler benchmarks' reference workload (their
// skewedGraph): a preferential-attachment graph whose degree skew makes the
// legacy push-phase sigma sweep expensive, with 100 scattered targets.
func benchGraph() *graph.Graph {
	return graph.BarabasiAlbert(4000, 3, 42)
}

func benchFixture(tb testing.TB) (*Engine, *bicomp.OutReach, []graph.Node, []int32, float64) {
	tb.Helper()
	g := benchGraph()
	d := bicomp.Decompose(g)
	o := bicomp.NewOutReach(d)
	view := bicomp.NewBlockCSR(d, o)
	n := g.NumNodes()
	aIndex := make([]int32, n)
	for i := range aIndex {
		aIndex[i] = -1
	}
	var targets []graph.Node
	for i := 0; i < 100; i++ {
		v := graph.Node((int64(i)*2_654_435_761 + 7) % int64(n))
		if aIndex[v] < 0 {
			aIndex[v] = int32(len(targets))
			targets = append(targets, v)
		}
	}
	wA := o.WeightOfBlocks(o.BlocksOf(targets))
	return New(view), o, targets, aIndex, wA
}

// legacyExact replicates the pre-BlockCSR exact phase verbatim (PR 1's
// exactBCRange): per-pair EdgeBlock resolution via AdjOffset side-table
// indexing and per-endpoint OutReach.Of lookups, full push-phase sigma
// counting, scratch allocated per call. It is the reference the ISSUE's
// >= 3x acceptance criterion compares against — keep it honest when the
// engine changes again.
func legacyExact(o *bicomp.OutReach, targets []graph.Node, aIndex []int32, wA float64) (float64, []float64) {
	d := o.D
	g := d.G
	n := g.NumNodes()
	exact := make([]float64, len(targets))
	var lambdaHat float64

	endpoint := make([]bool, n)
	var endpoints []graph.Node
	for _, v := range targets {
		for _, s := range g.Neighbors(v) {
			if !endpoint[s] {
				endpoint[s] = true
				endpoints = append(endpoints, s)
			}
		}
	}

	sigma := make([]int32, n)
	stamp := make([]int32, n)
	isNbr := make([]int32, n)
	for i := range stamp {
		stamp[i] = -1
		isNbr[i] = -1
	}
	for epoch, s := range endpoints {
		e := int32(epoch)
		for _, v := range g.Neighbors(s) {
			isNbr[v] = e
		}
		for _, v := range g.Neighbors(s) {
			for _, t := range g.Neighbors(v) {
				if t == s || isNbr[t] == e {
					continue
				}
				if stamp[t] != e {
					stamp[t] = e
					sigma[t] = 0
				}
				sigma[t]++
			}
		}
		sBase := g.AdjOffset(s)
		for i, v := range g.Neighbors(s) {
			ai := aIndex[v]
			if ai < 0 {
				continue
			}
			bSV := d.EdgeBlock[sBase+int64(i)]
			rS := float64(o.Of(bSV, s))
			vBase := g.AdjOffset(v)
			for j, t := range g.Neighbors(v) {
				if t == s || isNbr[t] == e {
					continue
				}
				if d.EdgeBlock[vBase+int64(j)] != bSV {
					continue
				}
				mass := rS * float64(o.Of(bSV, t)) / (float64(sigma[t]) * wA)
				exact[ai] += mass
				lambdaHat += mass
			}
		}
	}
	return lambdaHat, exact
}

// The legacy reference and the engine must agree (it anchors the benchmark
// comparison, so it has to compute the same thing).
func TestLegacyReferenceMatchesEngine(t *testing.T) {
	e, o, targets, aIndex, wA := benchFixture(t)
	gotL, gotE, _ := e.Run(context.Background(), targets, aIndex, wA, 1)
	wantL, wantE := legacyExact(o, targets, aIndex, wA)
	if math.Abs(gotL-wantL) > 1e-9*(1+wantL) {
		t.Fatalf("lambdaHat %g, legacy %g", gotL, wantL)
	}
	for i := range gotE {
		if math.Abs(gotE[i]-wantE[i]) > 1e-9*(1+wantE[i]) {
			t.Fatalf("exact[%d] = %g, legacy %g", i, gotE[i], wantE[i])
		}
	}
}

// BenchmarkExactPhaseBuild measures the one-time BlockCSR construction that
// core.PreprocessBC adds on top of Decompose + NewOutReach.
func BenchmarkExactPhaseBuild(b *testing.B) {
	g := benchGraph()
	d := bicomp.Decompose(g)
	o := bicomp.NewOutReach(d)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = bicomp.NewBlockCSR(d, o)
	}
}

// BenchmarkExactPhaseRange measures one full exact-phase evaluation on the
// run-length engine (single worker, pooled scratch: 0 allocs/op in steady
// state). Compare ns/op against BenchmarkExactPhaseRangeLegacy.
func BenchmarkExactPhaseRange(b *testing.B) {
	e, _, targets, aIndex, wA := benchFixture(b)
	exact := make([]float64, len(targets))
	lambda, _ := e.RunInto(context.Background(), exact, targets, aIndex, wA, 1) // warm the pools
	b.ReportMetric(lambda, "lambdaHat")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RunInto(context.Background(), exact, targets, aIndex, wA, 1)
	}
}

// BenchmarkExactPhaseRangeLegacy measures the faithful PR 1 path on the same
// workload.
func BenchmarkExactPhaseRangeLegacy(b *testing.B) {
	_, o, targets, aIndex, wA := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		legacyExact(o, targets, aIndex, wA)
	}
}
