//go:build unix

package bicomp

import (
	"fmt"
	"os"
	"syscall"
)

// mapFile memory-maps path read-only and returns the mapping plus its
// release function. The kernel pages the arrays in on demand and shares
// them across every process serving the same file — the multi-process
// serving story of DESIGN.md section 7.
func mapFile(path string) ([]byte, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close() // the mapping outlives the descriptor
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size == 0 {
		return nil, nil, fmt.Errorf("empty file")
	}
	if size != int64(int(size)) {
		return nil, nil, fmt.Errorf("file too large to map (%d bytes)", size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, fmt.Errorf("mmap: %w", err)
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
