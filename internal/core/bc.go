package core

import (
	"context"
	"fmt"
	"math"
	"math/rand/v2"
	"slices"
	"sort"
	"sync"

	"saphyra/internal/alias"
	"saphyra/internal/bicomp"
	"saphyra/internal/exactphase"
	"saphyra/internal/graph"
	"saphyra/internal/msbfs"
	"saphyra/internal/params"
	"saphyra/internal/sched"
	"saphyra/internal/shortestpath"
	"saphyra/internal/vc"
)

// VCBoundKind selects which VC-dimension upper bound feeds the Lemma 4
// sample ceiling (ablation of Table I).
type VCBoundKind int

const (
	// VCSubset uses the paper's personalized bound log(BS(A)) + 1 (default).
	VCSubset VCBoundKind = iota
	// VCBicomp uses the full-network bi-component bound log(BD(V)-1) + 1.
	VCBicomp
	// VCRiondato uses the [45] bound log(VD(V)-1) + 1 from the graph
	// diameter.
	VCRiondato
)

// BCOptions configures SaPHyRa_bc.
type BCOptions struct {
	Epsilon float64 // additive error on betweenness (Eq 2); default 0.05
	Delta   float64 // failure probability; default 0.01
	Workers int     // sampling goroutines; <= 0 means GOMAXPROCS
	Seed    int64

	VCBound VCBoundKind
	// DisableExactSubspace ablates the 2-hop exact subspace: everything is
	// estimated by sampling (plain bi-component sampling).
	DisableExactSubspace bool
	// DisableAdaptive ablates Bernstein early stopping (always draw the
	// full VC budget).
	DisableAdaptive bool
	// MaxSamples optionally caps sampling (guarantee void when binding).
	MaxSamples int64
}

func (o *BCOptions) setDefaults() {
	if o.Epsilon == 0 {
		o.Epsilon = 0.05
	}
	if o.Delta == 0 {
		o.Delta = 0.01
	}
}

// BCResult is the output of SaPHyRa_bc for a target set A.
type BCResult struct {
	// Nodes is the sorted, de-duplicated target set.
	Nodes []graph.Node
	// BC[i] is the betweenness estimate of Nodes[i] (Eq 3 normalization).
	BC []float64
	// BCA[i] is the exactly-computed cutpoint term bca(Nodes[i]).
	BCA []float64

	Gamma, Eta float64 // ISP survival mass and personalized fraction
	EpsStar    float64 // tolerance passed to the framework (eps / (gamma*eta))
	Est        *Estimate
}

// BCPreprocessed caches the target-independent preprocessing — bi-component
// decomposition, out-reach tables, the block-annotated adjacency view, and
// the exact-phase engine with its pooled scratch — so several target sets
// can be ranked on the same graph without redoing the O(n + m) setup or
// reallocating per-call workspaces.
type BCPreprocessed struct {
	G    *graph.Graph
	D    *bicomp.Decomposition
	O    *bicomp.OutReach
	View *bicomp.BlockCSR
	// Exact is the run-length exact 2-hop engine (Algorithm Exact_bc) over
	// View; its worker scratch persists across EstimateBC calls.
	Exact *exactphase.Engine

	// sketch is the lazily-built landmark distance sketch the bc sampler
	// uses to pre-classify pair distances (see distanceSketch). nil when the
	// graph doesn't warrant one.
	sketchOnce sync.Once
	sketch     *msbfs.Sketch
}

// sketchLanes is the landmark count of the sampler's distance sketch: 16
// lanes keep a node's row in one cache line while the triangle bounds stay
// tight enough to classify most far pairs on high-diameter graphs.
const sketchLanes = 16

// sketchMinEcc gates the sketch on graph shape: on small-world graphs
// (eccentricity below this) nearly every sampled pair sits at distance <= 3
// and is served by the adjacency-scan fast paths, so a sketch would be dead
// weight; only large-diameter graphs, where distance >= 4 pairs dominate,
// pay for one.
const sketchMinEcc = 8

// distanceSketch lazily builds (once, thread-safe) the sampler's landmark
// sketch, or returns nil when the graph is too small (< one lane mask of
// nodes) or too shallow (max-degree-node eccentricity below sketchMinEcc).
// A failed build — only possible via the armed "msbfs.run" fault — degrades
// to nil: the sketch is a pure accelerator, never a correctness input.
func (p *BCPreprocessed) distanceSketch() *msbfs.Sketch {
	p.sketchOnce.Do(func() {
		g := p.G
		if g.NumNodes() < msbfs.MaxLanes {
			return
		}
		if graph.Eccentricity(g, maxDegreeNode(g)) < sketchMinEcc {
			return
		}
		if sk, err := p.View.DistanceSketch(sketchLanes); err == nil {
			p.sketch = sk
		}
	})
	return p.sketch
}

// PreprocessBC decomposes the graph, computes out-reach tables, and builds
// the block-annotated CSR view shared by the exact phase and the sampler.
func PreprocessBC(g *graph.Graph) *BCPreprocessed {
	d := bicomp.Decompose(g)
	o := bicomp.NewOutReach(d)
	view := bicomp.NewBlockCSR(d, o)
	return &BCPreprocessed{G: g, D: d, O: o, View: view, Exact: exactphase.New(view)}
}

// PreprocessBCFromView builds the cached preprocessing around an existing
// view — typically one opened zero-copy from a serialized file
// (bicomp.OpenMapped), the serve-many half of the build-once/serve-many
// flow. The exact-phase engine, the sampler's distance fast paths, and the
// k-path/closeness estimators consume only the view arrays and its embedded
// graph, so they run straight off the mapped pages. A mapped view carries
// no decomposition or out-reach tables (needed for the bc sampler's alias
// tables and the bca cutpoint terms); they are recomputed here in O(n + m)
// and backfilled onto the view — bicomp.Decompose is deterministic, so the
// recomputed block ids agree with the serialized annotations (the
// serializer's contract; BlockCSR.Validate cross-checks it).
// Safe for concurrent use on one shared view: the backfill is synchronized
// (bicomp.EnsureDecomposition).
func PreprocessBCFromView(view *bicomp.BlockCSR) *BCPreprocessed {
	d, o := view.EnsureDecomposition()
	return &BCPreprocessed{G: view.G, D: d, O: o, View: view, Exact: exactphase.New(view)}
}

// EstimateBC runs the full SaPHyRa_bc pipeline on graph g for target set a.
func EstimateBC(ctx context.Context, g *graph.Graph, a []graph.Node, opt BCOptions) (*BCResult, error) {
	return PreprocessBC(g).EstimateBC(ctx, a, opt)
}

// EstimateBC runs SaPHyRa_bc for one target set on the preprocessed graph.
// Cancellation checkpoints sit between exact-phase chunks and between
// sampling rounds (see exactphase.Engine.Run and core.Run); a done ctx
// aborts with a *params.CanceledError, never a partial estimate.
func (p *BCPreprocessed) EstimateBC(ctx context.Context, a []graph.Node, opt BCOptions) (*BCResult, error) {
	opt.setDefaults()
	g, o := p.G, p.O
	n := g.NumNodes()
	if err := params.CheckEpsDelta(opt.Epsilon, opt.Delta); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if err := params.CheckTargets(a, n); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	nodes := graph.DedupSorted(a)
	k := len(nodes)

	res := &BCResult{
		Nodes: nodes,
		BC:    make([]float64, k),
		BCA:   make([]float64, k),
	}
	for i, v := range nodes {
		res.BCA[i] = o.BCA(v)
	}

	blocksA := o.BlocksOf(nodes)
	wA := o.WeightOfBlocks(blocksA)
	res.Gamma = o.Gamma()
	if o.WTotal > 0 {
		res.Eta = wA / o.WTotal
	}
	gammaEta := 0.0
	if n >= 2 {
		gammaEta = wA / (float64(n) * float64(n-1))
	}
	if gammaEta <= 0 {
		// No intra-block pair mass touches A (e.g. isolated nodes): the
		// estimate is just the exact cutpoint term.
		copy(res.BC, res.BCA)
		return res, nil
	}
	// bc = gammaEta * R + bca, so an eps target on bc allows a tolerance of
	// eps / gammaEta on R. (Section IV-D writes eps* = eps*gamma*eta; with
	// that literal choice Theorem 24 would not follow, so we use the
	// division — see DESIGN.md.)
	epsStar := opt.Epsilon / gammaEta
	res.EpsStar = epsStar

	space, err := newBCSpace(ctx, p, nodes, blocksA, wA, opt)
	if err != nil {
		return nil, err
	}
	if epsStar >= 1 {
		// Any estimate in [0,1] is within eps of the truth after scaling by
		// gammaEta < eps; skip sampling and return the exact part alone.
		lambdaHat, exact, _ := space.ExactPhase(ctx) // precomputed: never errors
		for i := range res.BC {
			res.BC[i] = res.BCA[i] + gammaEta*exact[i]
		}
		res.Est = &Estimate{
			Risks:      exact,
			ExactRisks: exact,
			LambdaHat:  lambdaHat,
			EpsPrime:   math.Inf(1),
			VCDim:      space.VCDim(),
		}
		return res, nil
	}
	est, err := Run(ctx, space, Options{
		Epsilon:         epsStar,
		Delta:           opt.Delta,
		Workers:         opt.Workers,
		Seed:            opt.Seed,
		DisableAdaptive: opt.DisableAdaptive,
		MaxSamples:      opt.MaxSamples,
	})
	if err != nil {
		return nil, err
	}
	res.Est = est
	for i := range res.BC {
		res.BC[i] = res.BCA[i] + gammaEta*est.Risks[i]
	}
	return res, nil
}

// bcSpace implements Space for RSP_bc (Section IV-B): the sample space is
// the personalized ISP space X_c^(A); the exact subspace is the set of
// 2-hop intra-block shortest paths whose middle node is in A (Eq 29).
type bcSpace struct {
	p       *BCPreprocessed
	nodes   []graph.Node
	aIndex  []int32 // node -> index in nodes, or -1
	blocksA []int32
	wA      float64

	// Multistage sampling tables (Algorithm 2) as Walker/Vose alias tables:
	// every stage of a draw is O(1) instead of an O(log n) binary search
	// over a cumulative table. Indexed by position j in blocksA.
	blockTab *alias.Table   // stage 1: block proportional to w_i
	srcTab   []*alias.Table // stage 2 per block: src proportional to r(s)(S-r(s))
	dstTab   []*alias.Table // stage 3 per block: dst proportional to r(t)
	dstCum   [][]float64    // per block: cumulative r(t) — the excision fallback
	members  [][]graph.Node // per block j: member nodes (dense index base)

	lambdaHat float64
	exact     []float64
	vcdim     int

	disableExact bool
}

func newBCSpace(ctx context.Context, p *BCPreprocessed, nodes []graph.Node, blocksA []int32, wA float64, opt BCOptions) (*bcSpace, error) {
	g, d, o := p.G, p.D, p.O
	n := g.NumNodes()
	sp := &bcSpace{
		p:            p,
		nodes:        nodes,
		aIndex:       make([]int32, n),
		blocksA:      blocksA,
		wA:           wA,
		srcTab:       make([]*alias.Table, len(blocksA)),
		dstTab:       make([]*alias.Table, len(blocksA)),
		dstCum:       make([][]float64, len(blocksA)),
		members:      make([][]graph.Node, len(blocksA)),
		disableExact: opt.DisableExactSubspace,
	}
	for i := range sp.aIndex {
		sp.aIndex[i] = -1
	}
	for i, v := range nodes {
		sp.aIndex[v] = int32(i)
	}

	// Multistage alias tables, built once per target set. O.R is aligned
	// with D.Blocks, so the per-member r-values are direct reads — no
	// Of() block-list searches on this per-target path.
	blockW := make([]float64, len(blocksA))
	for j, b := range blocksA {
		blockW[j] = float64(o.W[b])
		ms := d.Blocks[b]
		rs := o.R[b]
		sp.members[j] = ms
		srcW := make([]float64, len(ms))
		dstW := make([]float64, len(ms))
		dstCum := make([]float64, len(ms))
		S := float64(o.S[b])
		var acc float64
		for i := range ms {
			r := float64(rs[i])
			srcW[i] = r * (S - r)
			dstW[i] = r
			acc += r
			dstCum[i] = acc
		}
		sp.srcTab[j] = alias.New(srcW)
		sp.dstTab[j] = alias.New(dstW)
		sp.dstCum[j] = dstCum
	}
	sp.blockTab = alias.New(blockW)

	// VC dimension (Corollary 22 / Table I).
	switch opt.VCBound {
	case VCRiondato:
		diamUB := int32(0)
		if n > 0 {
			// 2 * eccentricity of an arbitrary node upper-bounds the
			// diameter of its component; take the max over components via
			// the block bound fallback for safety.
			diamUB = 2 * graph.Eccentricity(g, maxDegreeNode(g))
			if bd := d.MaxBlockDiameterUpperBound(64); bd > diamUB {
				diamUB = bd
			}
		}
		sp.vcdim = vc.Riondato(diamUB)
	case VCBicomp:
		sp.vcdim = vc.FullNetwork(d.MaxBlockDiameterUpperBound(64))
	default:
		sp.vcdim = vc.Subset(d, nodes, 64)
		if full := vc.FullNetwork(d.MaxBlockDiameterUpperBound(64)); sp.vcdim > full {
			sp.vcdim = full
		}
	}
	if sp.vcdim < 1 {
		sp.vcdim = 1
	}

	if sp.disableExact {
		sp.lambdaHat = 0
		sp.exact = make([]float64, len(nodes))
	} else {
		var err error
		sp.lambdaHat, sp.exact, err = p.Exact.Run(ctx, nodes, sp.aIndex, sp.wA, opt.Workers)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}
	return sp, nil
}

func maxDegreeNode(g *graph.Graph) graph.Node {
	var best graph.Node
	bd := -1
	for u := graph.Node(0); int(u) < g.NumNodes(); u++ {
		if d := g.Degree(u); d > bd {
			bd = d
			best = u
		}
	}
	return best
}

// NumHypotheses implements Space.
func (sp *bcSpace) NumHypotheses() int { return len(sp.nodes) }

// VCDim implements Space.
func (sp *bcSpace) VCDim() int { return sp.vcdim }

// ExactPhase implements Space: the risks were computed eagerly (and
// cancellably) in newBCSpace, so this never blocks and never errors.
func (sp *bcSpace) ExactPhase(context.Context) (float64, []float64, error) {
	return sp.lambdaHat, sp.exact, nil
}

// NewSampler implements Space: Algorithm Gen_bc (Algorithm 2), multistage
// alias-table sampling with rejection of exact-subspace paths. The returned
// sampler implements BatchSampler: DrawBatch pre-draws a batch of (src, dst)
// pairs, groups them by source, and serves every pair sharing a source from
// one truncated BFS DAG — on skewed graphs the stage-2 r(s)(S-r(s)) mass
// concentrates on few hub sources, so grouping amortizes most BFS work.
func (sp *bcSpace) NewSampler(seed int64) Sampler {
	return &bcSampler{
		sp:       sp,
		rng:      rand.New(rand.NewPCG(uint64(seed), 0x9e3779b97f4a7c15)),
		bfs:      shortestpath.NewBiBFS(sp.p.G.NumNodes()),
		dag:      shortestpath.NewDAG(sp.p.G.NumNodes()),
		nbrStamp: make([]int32, sp.p.G.NumNodes()),
		sketch:   sp.p.distanceSketch(),
	}
}

// srcDst packs one pre-drawn stage-1..3 sample (src in the high 32 bits,
// dst in the low) so a batch sorts with the specialized slices.Sort for
// uint64 — no comparator calls in the grouping step.
type srcDst uint64

func packSrcDst(src, dst graph.Node) srcDst {
	return srcDst(uint64(uint32(src))<<32 | uint64(uint32(dst)))
}

func (p srcDst) src() graph.Node { return graph.Node(p >> 32) }
func (p srcDst) dst() graph.Node { return graph.Node(uint32(p)) }

type bcSampler struct {
	sp  *bcSpace
	rng *rand.Rand
	bfs *shortestpath.BiBFS
	dag *shortestpath.DAG

	// reusable scratch: the steady-state DrawBatch loop is allocation-free
	pairs   []srcDst
	dsts    []graph.Node
	pathBuf []graph.Node
	hits    []int32

	// nbrStamp marks the current group source's neighbors (epoch-stamped):
	// the distance <= 2 fast path resolves a pair's disposition from one
	// adjacency scan, with no BFS and no path materialization. mid3 holds
	// the enumerated interior pairs of the current distance-3 destination,
	// so repeated samples of one (src, dst) pair index instead of re-scan.
	nbrStamp []int32
	nbrEpoch int32
	mid3     []srcDst

	// sketch, when non-nil, pre-classifies pairs: a triangle lower bound
	// proving distance >= 4 routes the pair straight to the BFS list with no
	// adjacency scans, and the matching upper bounds cap the shared DAG's
	// truncation depth. Sketch decisions consume no randomness and only
	// short-circuit pairs the scans would route identically, so a sketched
	// run is bitwise-identical to an unsketched one.
	sketch *msbfs.Sketch

	// Online cost model for the group-serving decision: cumulative mean
	// directed edges scanned per bidirectional query vs per truncated
	// source BFS. Both evolve deterministically with the (seeded) sample
	// stream, so fixed seed + workers still implies identical output.
	biScan, dagScan    int64
	biQueries, dagRuns int64

	// lastSources is the distinct-source count of the last grouping round:
	// the measured quantity behind the adaptive per-round quota.
	lastSources int64

	// stop, when wired by the framework, is polled every cancelPollPairs
	// pairs inside the grouping rounds (and before every BFS): the
	// sub-round cancellation bound. The polls consume no randomness, so a
	// run whose stop never fires is bitwise-identical to an unwired run.
	stop *sched.Stop
}

// SetStop wires the sub-round cancellation flag (core.stoppable).
func (s *bcSampler) SetStop(st *sched.Stop) { s.stop = st }

// cancelPollPairs is the pair stride between stop polls inside a grouping
// round: coarse enough that the atomic load vanishes against the per-pair
// adjacency scans, fine enough that time-to-cancel is bounded by a few
// thousand cheap pairs or a single BFS rather than a whole round.
const cancelPollPairs = 1 << 12

// batchCap bounds the number of pairs pre-drawn per grouping round (8 bytes
// each — 8 MiB of reusable scratch at the cap, allocated only up to the
// quota actually requested). The larger the round, the more pairs share a
// source: at production budgets (full-network ranking, tight eps) groups
// grow into the hundreds and one truncated BFS serves them all.
const batchCap = 1 << 20

// batchProbe is the first-round quota (and the floor of the adaptive round
// sizing): large enough that grouping is measurable, small enough that tiny
// sampling budgets behave exactly like a single round.
const batchProbe = 1 << 14

// groupScale is the average group size the adaptive round sizing aims for:
// past ~1k pairs per source the shared-BFS amortization has flattened, so
// larger rounds only grow the pair buffer.
const groupScale = 1 << 10

// dagGroupMin is the floor on the group size at which a shared truncated
// source BFS may replace per-pair bidirectional BFS. The effective
// threshold adapts upward from measured costs (see dagThreshold): on graphs
// where BiBFS touches O(sqrt n) nodes while a source ball is near-linear,
// small groups stay on the bidirectional path.
const dagGroupMin = 2

// dagThreshold returns the current group size at which serving a source
// run from one truncated BFS is estimated to be cheaper than one
// bidirectional query per pair. Until both costs have been observed it
// returns the floor, so each strategy gets probed early.
func (s *bcSampler) dagThreshold() int {
	if s.biQueries == 0 || s.dagRuns == 0 {
		return dagGroupMin
	}
	biAvg := float64(s.biScan) / float64(s.biQueries)
	dagAvg := float64(s.dagScan) / float64(s.dagRuns)
	if biAvg < 1 {
		biAvg = 1
	}
	t := int(dagAvg / biAvg)
	if t < dagGroupMin {
		t = dagGroupMin
	}
	return t
}

// drawPair runs stages 1-3 of Algorithm 2 on the alias tables: O(1) — three
// uniform variates — instead of three binary searches. Stage 3 must exclude
// the source; two O(1) alias draws with rejection handle the common case
// (src holds little of the r(t) mass), and a collision on both falls back
// to the exact conditional via interval excision over the cumulative table.
// The fallback matters: in a pendant block {leaf, hub} the hub holds nearly
// all the target mass, so pure rejection would spin for the component size.
func (s *bcSampler) drawPair() srcDst {
	sp := s.sp
	j := sp.blockTab.Draw(s.rng.Float64())
	members := sp.members[j]
	si := sp.srcTab[j].Draw(s.rng.Float64())
	ti := sp.dstTab[j].Draw(s.rng.Float64())
	if ti == si {
		ti = sp.dstTab[j].Draw(s.rng.Float64())
	}
	if ti == si {
		// Excision: draw a point in the cumulative r(t) mass with src's
		// interval removed (the exact conditional, as the seed engine did).
		tc := sp.dstCum[j]
		rs := tc[si]
		var before float64
		if si > 0 {
			before = tc[si-1]
			rs -= before
		}
		pos := s.rng.Float64() * (tc[len(tc)-1] - rs)
		if pos >= before {
			pos += rs
		}
		ti = sort.SearchFloat64s(tc, pos)
		if ti >= len(members) {
			ti = len(members) - 1
		}
		if ti == si { // float boundary: nudge deterministically
			if ti+1 < len(members) {
				ti++
			} else {
				ti--
			}
		}
	}
	return packSrcDst(members[si], members[ti])
}

// countPath accumulates one accepted path sample: hit indices are appended
// to s.hits and, when hits is non-nil, hit counts are incremented. Returns
// false (rejection) for exact-subspace paths: length 2 with middle in A.
func (s *bcSampler) countPath(path []graph.Node, hits []int64) bool {
	sp := s.sp
	if !sp.disableExact && len(path) == 3 && sp.aIndex[path[1]] >= 0 {
		return false
	}
	for _, v := range path[1 : len(path)-1] {
		if ai := sp.aIndex[v]; ai >= 0 {
			if hits != nil {
				hits[ai]++
			} else {
				s.hits = append(s.hits, ai)
			}
		}
	}
	return true
}

// Draw implements Sampler (the single-sample compatibility shim).
func (s *bcSampler) Draw() []int32 {
	g := s.sp.p.G
	for {
		p := s.drawPair()
		// stage 4: uniform shortest path between src and dst
		if _, _, ok := s.bfs.Query(g, p.src(), p.dst()); !ok {
			continue // defensive: members of one block are always connected
		}
		s.pathBuf = s.bfs.SamplePathAppend(g, s.rng, s.pathBuf)
		s.hits = s.hits[:0]
		if s.countPath(s.pathBuf, nil) {
			return s.hits
		}
	}
}

// roundQuota derives the next grouping round's pre-draw quota from the
// measured batch/#distinct-sources ratio (the ROADMAP's adaptive batch
// sizing): rounds aim for an average group size of groupScale, so a sampler
// whose stage-2 mass concentrates on few hub sources keeps rounds — and
// therefore the pair buffer — small with nothing lost (its groups are
// already saturated), while a diffuse sampler takes rounds as large as the
// batchCap scratch bound allows. The measurement evolves deterministically
// with the seeded sample stream, so fixed seed + workers still implies
// identical output.
func (s *bcSampler) roundQuota() int64 {
	if s.lastSources <= 0 {
		return batchProbe // nothing measured yet
	}
	q := s.lastSources * groupScale
	if q < batchProbe {
		q = batchProbe
	}
	if q > batchCap {
		q = batchCap
	}
	return q
}

// DrawBatch implements BatchSampler: n samples with per-source amortized
// stage-4 work. Rejected samples (exact-subspace paths) are redrawn in the
// next grouping round, so exactly n accepted samples are accumulated —
// unless the wired stop fires, in which case the batch returns early with a
// short count (the framework discards the whole canceled estimate, so the
// shortfall never surfaces).
func (s *bcSampler) DrawBatch(n int64, hits []int64) {
	for n > 0 && !s.stop.Stopped() {
		m := n
		if q := s.roundQuota(); m > q {
			m = q
		}
		n -= s.drawGrouped(int(m), hits)
	}
}

// drawGrouped pre-draws m (src, dst) pairs, sorts them by (src, dst) so
// samples sharing a source are adjacent, and serves each source group via
// serveGroup. Returns the number of accepted samples.
func (s *bcSampler) drawGrouped(m int, hits []int64) int64 {
	s.pairs = s.pairs[:0]
	for i := 0; i < m; i++ {
		if i&(cancelPollPairs-1) == 0 && s.stop.Stopped() {
			break // sub-round cancel: the short round is discarded upstream
		}
		s.pairs = append(s.pairs, s.drawPair())
	}
	// Sorting by the packed (src, dst) key makes the serve order — and
	// therefore the rng stream — a deterministic function of the drawn
	// pairs.
	slices.Sort(s.pairs)
	var accepted, sources int64
	minGroup := s.dagThreshold()
	for lo := 0; lo < len(s.pairs); {
		if s.stop.Stopped() {
			break // between source groups: no group state to unwind
		}
		src := s.pairs[lo].src()
		hi := lo + 1
		for hi < len(s.pairs) && s.pairs[hi].src() == src {
			hi++
		}
		sources++
		accepted += s.serveGroup(src, s.pairs[lo:hi], hits, minGroup)
		lo = hi
	}
	s.lastSources = sources
	return accepted
}

// serveGroup answers every pair of one source group. Pairs at distance at
// most 3 resolve on the spot from scans of the destination side's adjacency
// against the marked source neighborhood, with no BFS and no path
// materialization:
//
//   - distance 1: the unique path has no interior — always accepted, never a
//     hit;
//   - distance 2: the only interior node is a uniform common neighbor, so
//     the sample's entire effect reduces to whether that middle lands in A
//     (rejection — the mass the exact phase covers — or a hit under the
//     DisableExactSubspace ablation). The rejection-redraw cycle therefore
//     costs one adjacency scan;
//   - distance 3: every shortest path is src-a-b-dst with a marked, b an
//     unmarked neighbor of dst, and (a, b) an edge; sigma3 counts such pairs
//     by scanning N(b) for marks over b in N(dst), and a uniform path is a
//     uniform (a, b) index into that scan.
//
// Only distance >= 4 pairs reach the BFS engines: one truncated source DAG
// when enough of them share the source, per-pair bidirectional BFS
// otherwise.
func (s *bcSampler) serveGroup(src graph.Node, run []srcDst, hits []int64, minGroup int) int64 {
	sp := s.sp
	g := sp.p.G
	if s.nbrEpoch == math.MaxInt32 {
		clear(s.nbrStamp)
		s.nbrEpoch = 0
	}
	s.nbrEpoch++
	e := s.nbrEpoch
	for _, w := range g.Neighbors(src) {
		s.nbrStamp[w] = e
	}
	var accepted int64
	s.dsts = s.dsts[:0]
	dagCap := int32(0) // max sketch upper bound over queued dsts; -1 = uncapped
	lastDst := graph.Node(-1)
	var sigma, cA int32
	var sigma3 int64
	for pi, p := range run {
		if pi&(cancelPollPairs-1) == cancelPollPairs-1 && s.stop.Stopped() {
			break // giant hub group: bound time-to-cancel within it too
		}
		dst := p.dst()
		if s.sketch != nil && s.sketch.FarAtLeast(src, dst, 4) {
			// Provably distance >= 4: straight to the BFS list with no
			// adjacency scans. The scans would route such a pair identically
			// (sigma and sigma3 both zero) and consume no randomness on the
			// way, so the shortcut is bitwise-invisible in the output.
			dagCap = s.noteDst(src, dst, dagCap)
			continue
		}
		if s.nbrStamp[dst] == e {
			accepted++ // distance 1: no interior, no hit
			continue
		}
		if dst != lastDst { // pairs are dst-sorted: repeats share the scans
			lastDst = dst
			sigma, cA = 0, 0
			for _, w := range g.Neighbors(dst) {
				if s.nbrStamp[w] == e {
					sigma++
					if sp.aIndex[w] >= 0 {
						cA++
					}
				}
			}
			if sigma == 0 {
				// No common neighbor and not adjacent: src cannot appear
				// in N(dst) here, nor can any b be marked (either would
				// contradict distance > 2), so the scan needs no filters.
				s.mid3 = s.mid3[:0]
				for _, b := range g.Neighbors(dst) {
					for _, a := range g.Neighbors(b) {
						if s.nbrStamp[a] == e {
							s.mid3 = append(s.mid3, packSrcDst(a, b))
						}
					}
				}
				sigma3 = int64(len(s.mid3))
			}
		}
		switch {
		case sigma > 0:
			// distance 2: sigma common neighbors, cA of them in A.
			if sp.disableExact {
				// Ablation: length-2 paths stay in the sample space, so a
				// hit requires the identity of the uniform middle.
				if cA > 0 {
					k := int32(s.rng.IntN(int(sigma)))
					for _, w := range g.Neighbors(dst) {
						if s.nbrStamp[w] == e {
							if k == 0 {
								if ai := sp.aIndex[w]; ai >= 0 {
									hits[ai]++
								}
								break
							}
							k--
						}
					}
				}
				accepted++
				continue
			}
			switch {
			case cA == 0:
				accepted++ // accepted, middle outside A: no hit
			case cA == sigma:
				// every middle is in A: certain rejection, redraw upstream
			default:
				if int32(s.rng.IntN(int(sigma))) >= cA {
					accepted++
				}
			}
		case sigma3 > 0:
			// distance 3: a uniform interior pair (a, b), read off the
			// enumeration buffer.
			pair := s.mid3[s.rng.Int64N(sigma3)]
			if ai := sp.aIndex[pair.src()]; ai >= 0 {
				hits[ai]++
			}
			if ai := sp.aIndex[pair.dst()]; ai >= 0 {
				hits[ai]++
			}
			accepted++
		default:
			// distance >= 4 found the slow way (the sketch, if any, lacked
			// the resolution to prove it): needs a BFS.
			dagCap = s.noteDst(src, dst, dagCap)
		}
	}
	if len(s.dsts) == 0 {
		return accepted
	}
	if len(s.dsts) >= minGroup {
		return accepted + s.serveFromDAG(src, hits, dagCap)
	}
	for _, dst := range s.dsts {
		if s.stop.Stopped() {
			break // each iteration is a full bidirectional BFS
		}
		accepted += s.serveFromBiBFS(src, dst, hits)
	}
	return accepted
}

// noteDst queues a distance >= 4 destination for the BFS engines and folds
// its sketch upper bound into the group's DAG depth cap. A dst the sketch
// cannot bound (no landmark reaches both endpoints, or no sketch at all)
// voids the cap for the whole group (-1 = uncapped) — the cap must dominate
// every queued distance or the shared DAG would truncate too early.
func (s *bcSampler) noteDst(src, dst graph.Node, dagCap int32) int32 {
	s.dsts = append(s.dsts, dst)
	if dagCap < 0 {
		return dagCap
	}
	if s.sketch == nil {
		return -1
	}
	ub := s.sketch.UpperBound(src, dst)
	if ub < 0 {
		return -1
	}
	if ub > dagCap {
		return ub
	}
	return dagCap
}

// serveFromDAG answers the collected distance >= 4 destinations of one
// source from a single truncated BFS: the traversal stops at the level of
// the farthest dst and resets only touched state, so its cost is shared
// across the whole run. dagCap, when >= 0, is a sketch-certified bound on
// the farthest dst, and caps the DAG's radius so an adversarially deep
// component can't be drained past it.
func (s *bcSampler) serveFromDAG(src graph.Node, hits []int64, dagCap int32) int64 {
	g := s.sp.p.G
	s.dag.RunTruncatedBounded(g, src, s.dsts, dagCap)
	s.dagScan += s.dag.Scanned()
	s.dagRuns++
	var accepted int64
	for _, dst := range s.dsts {
		path := s.dag.SamplePathAppend(g, dst, s.rng, s.pathBuf)
		if path == nil {
			continue // defensive: members of one block are always connected
		}
		s.pathBuf = path
		if s.countPath(path, hits) {
			accepted++
		}
	}
	return accepted
}

// serveFromBiBFS answers a singleton pair with balanced bidirectional BFS.
func (s *bcSampler) serveFromBiBFS(src, dst graph.Node, hits []int64) int64 {
	g := s.sp.p.G
	_, _, ok := s.bfs.Query(g, src, dst)
	s.biScan += s.bfs.Scanned()
	s.biQueries++
	if !ok {
		return 0 // defensive: redrawn by the caller's accounting
	}
	s.pathBuf = s.bfs.SamplePathAppend(g, s.rng, s.pathBuf)
	if s.countPath(s.pathBuf, hits) {
		return 1
	}
	return 0
}

var (
	_ Space        = (*bcSpace)(nil)
	_ BatchSampler = (*bcSampler)(nil)
)
