package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBFSDistancesPath(t *testing.T) {
	g := Path(5)
	dist := BFSDistances(g, 0, nil)
	for i, want := range []int32{0, 1, 2, 3, 4} {
		if dist[i] != want {
			t.Errorf("dist[%d] = %d, want %d", i, dist[i], want)
		}
	}
}

func TestBFSDistancesUnreachable(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	g := b.Build()
	dist := BFSDistances(g, 0, nil)
	if dist[2] != -1 || dist[3] != -1 {
		t.Errorf("unreachable nodes should be -1, got %v", dist)
	}
}

func TestBFSDistancesReuseBuffer(t *testing.T) {
	g := Cycle(6)
	buf := make([]int32, 6)
	dist := BFSDistances(g, 0, buf)
	if &dist[0] != &buf[0] {
		t.Error("buffer was not reused")
	}
	if dist[3] != 3 {
		t.Errorf("dist[3] = %d, want 3", dist[3])
	}
}

func TestEccentricity(t *testing.T) {
	g := Path(7)
	if e := Eccentricity(g, 0); e != 6 {
		t.Errorf("ecc(0) = %d, want 6", e)
	}
	if e := Eccentricity(g, 3); e != 3 {
		t.Errorf("ecc(3) = %d, want 3", e)
	}
}

func TestDiameterKnownGraphs(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want int32
	}{
		{"path10", Path(10), 9},
		{"cycle10", Cycle(10), 5},
		{"star20", Star(20), 2},
		{"K5", Complete(5), 1},
		{"grid3x4", Grid2D(3, 4), 5},
	}
	for _, c := range cases {
		if got := Diameter(c.g); got != c.want {
			t.Errorf("%s: diameter = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestApproxDiameterIsLowerBoundAndTightOnPaths(t *testing.T) {
	g := Path(50)
	if got := ApproxDiameter(g, 3, 1); got != 49 {
		t.Errorf("double sweep on path = %d, want exact 49", got)
	}
	// Property: approx <= exact on random graphs.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(30)
		g := ErdosRenyi(n, int64(n+rng.Intn(2*n)), seed)
		lcc, _ := LargestComponent(g)
		return ApproxDiameter(lcc, 4, seed) <= Diameter(lcc)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSubsetDiameterUpperBound(t *testing.T) {
	g := Path(10)
	// subset {0, 9}: true subset diameter 9, bound from s=0 is 2*9=18
	if got := SubsetDiameterUpperBound(g, []Node{0, 9}); got != 18 {
		t.Errorf("bound = %d, want 18", got)
	}
	// subsets of size < 2
	if got := SubsetDiameterUpperBound(g, []Node{3}); got != 0 {
		t.Errorf("singleton bound = %d, want 0", got)
	}
	// property: bound >= true pairwise max distance
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(30)
		g := ErdosRenyi(n, int64(2*n), seed)
		lcc, _ := LargestComponent(g)
		if lcc.NumNodes() < 3 {
			return true
		}
		a := []Node{Node(rng.Intn(lcc.NumNodes())), Node(rng.Intn(lcc.NumNodes())), Node(rng.Intn(lcc.NumNodes()))}
		bound := SubsetDiameterUpperBound(lcc, a)
		// exact pairwise max
		var exact int32
		for _, s := range a {
			dist := BFSDistances(lcc, s, nil)
			for _, x := range a {
				if dist[x] > exact {
					exact = dist[x]
				}
			}
		}
		return bound >= exact
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSubsetDiameterDisconnected(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	g := b.Build()
	if got := SubsetDiameterUpperBound(g, []Node{0, 2}); got != -1 {
		t.Errorf("disconnected subset bound = %d, want -1", got)
	}
}
