package saphyra

import (
	"fmt"
	"path/filepath"
	"testing"
)

// TestViewBuildServeRoundTrip exercises the public build-once/serve-many
// flow: build a view, serialize it, reopen it mmap-backed, and check that
// all three engines (betweenness, k-path, closeness) return results
// bitwise-identical to serving from the in-memory graph.
func TestViewBuildServeRoundTrip(t *testing.T) {
	g := Generate.BarabasiAlbert(800, 3, 12)
	targets := []Node{7, 100, 500, 777}
	opt := Options{Epsilon: 0.05, Delta: 0.05, Seed: 5, Workers: 4}

	ids := make([]int64, g.NumNodes())
	for i := range ids {
		ids[i] = int64(i) * 3 // a non-identity external id space
	}
	path := filepath.Join(t.TempDir(), "g.sbcv")
	if err := BuildView(g, ids).WriteFile(path); err != nil {
		t.Fatal(err)
	}
	view, err := OpenView(path)
	if err != nil {
		t.Fatal(err)
	}
	defer view.Close()

	if got := view.Graph(); got.NumNodes() != g.NumNodes() || got.NumEdges() != g.NumEdges() {
		t.Fatalf("mapped graph is %d/%d, want %d/%d",
			got.NumNodes(), got.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	gotIDs := view.IDs()
	if len(gotIDs) != len(ids) {
		t.Fatalf("id map length %d, want %d", len(gotIDs), len(ids))
	}
	for i := range ids {
		if gotIDs[i] != ids[i] {
			t.Fatalf("IDs[%d] = %d, want %d", i, gotIDs[i], ids[i])
		}
	}

	compare := func(name string, got, want *Result, err1, err2 error) {
		t.Helper()
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: %v / %v", name, err1, err2)
		}
		if got.Samples != want.Samples {
			t.Fatalf("%s: samples %d != %d", name, got.Samples, want.Samples)
		}
		for i := range want.Scores {
			if got.Scores[i] != want.Scores[i] {
				t.Fatalf("%s: score[%d] = %v, want %v", name, i, got.Scores[i], want.Scores[i])
			}
			if got.Rank[i] != want.Rank[i] {
				t.Fatalf("%s: rank[%d] = %d, want %d", name, i, got.Rank[i], want.Rank[i])
			}
		}
	}

	gotBC, err1 := view.Preprocess().RankSubset(targets, opt)
	wantBC, err2 := RankSubset(g, targets, opt)
	compare("bc", gotBC, wantBC, err1, err2)

	gotKP, err1 := view.RankKPath(targets, 4, opt)
	wantKP, err2 := RankKPath(g, targets, 4, opt)
	compare("kpath", gotKP, wantKP, err1, err2)

	gotCL, err1 := view.RankCloseness(targets, opt)
	wantCL, err2 := RankCloseness(g, targets, opt)
	compare("closeness", gotCL, wantCL, err1, err2)
}

// TestOptionsCanonical: the canonical form resolves defaults and strips the
// result-irrelevant worker count, so equal canonical forms really do imply
// bitwise-equal results (the caching contract).
func TestOptionsCanonical(t *testing.T) {
	c := Options{}.Canonical()
	if c.Epsilon != 0.05 || c.Delta != 0.01 {
		t.Fatalf("zero options canonicalized to eps=%g delta=%g", c.Epsilon, c.Delta)
	}
	a := Options{Epsilon: 0.1, Delta: 0.02, Workers: 1, Seed: 9}.Canonical()
	b := Options{Epsilon: 0.1, Delta: 0.02, Workers: 64, Seed: 9}.Canonical()
	if a != b {
		t.Fatal("worker count survived canonicalization")
	}
	if a.Seed != 9 || a.Method != MethodSaPHyRa {
		t.Fatal("result-relevant fields were not preserved")
	}

	// The contract itself: equal canonical forms, equal bits.
	g := Generate.BarabasiAlbert(300, 3, 2)
	targets := []Node{3, 14, 159}
	r1, err1 := RankSubset(g, targets, Options{Epsilon: 0.1, Delta: 0.02, Workers: 1, Seed: 9})
	r2, err2 := RankSubset(g, targets, Options{Epsilon: 0.1, Delta: 0.02, Workers: 5, Seed: 9})
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	for i := range r1.Scores {
		if r1.Scores[i] != r2.Scores[i] {
			t.Fatal("equal canonical options produced different bits")
		}
	}
}

// TestTargetSetHash: order- and duplicate-insensitive, set-sensitive.
func TestTargetSetHash(t *testing.T) {
	a := TargetSetHash([]Node{5, 1, 9})
	if b := TargetSetHash([]Node{9, 5, 1, 5, 1}); b != a {
		t.Fatal("hash depends on order or duplicates")
	}
	if c := TargetSetHash([]Node{5, 1, 8}); c == a {
		t.Fatal("different sets collide")
	}
	if d := TargetSetHash(nil); d == a {
		t.Fatal("empty set collides")
	}
	// Stability across processes: pin one digest so accidental
	// canonicalization changes are caught (the serving cache key depends
	// on this being a pure function of the set).
	h := TargetSetHash([]Node{0, 1, 2})
	got := fmt.Sprintf("%x", h[:8])
	const want = "ad5dc1478de06a4c"
	if got != want {
		t.Fatalf("TargetSetHash({0,1,2}) prefix = %s, want %s", got, want)
	}
}

// TestRankSubsetRejectsBadTargets: the typed validation surfaces through
// the public API for every method.
func TestRankSubsetRejectsBadTargets(t *testing.T) {
	g := Generate.BarabasiAlbert(50, 2, 1)
	for _, m := range []Method{MethodSaPHyRa, MethodABRA, MethodKADABRA} {
		if _, err := RankSubset(g, nil, Options{Method: m}); err == nil {
			t.Errorf("%v: empty target set accepted", m)
		}
		if _, err := RankSubset(g, []Node{999}, Options{Method: m}); err == nil {
			t.Errorf("%v: out-of-range target accepted", m)
		}
	}
	if _, err := RankKPath(g, []Node{999}, 3, Options{}); err == nil {
		t.Error("kpath: out-of-range target accepted")
	}
	if _, err := RankCloseness(g, []Node{999}, Options{}); err == nil {
		t.Error("closeness: out-of-range target accepted")
	}
}

// TestRankSubsetWorkerIndependent: the public API contract — fixed seed
// gives bitwise-identical rankings regardless of Workers.
func TestRankSubsetWorkerIndependent(t *testing.T) {
	g := Generate.PowerLawCluster(500, 3, 0.3, 3)
	targets := []Node{1, 9, 99, 420}
	run := func(workers int) *Result {
		res, err := RankSubset(g, targets, Options{Epsilon: 0.05, Delta: 0.05, Seed: 6, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(1)
	for _, workers := range []int{3, 8} {
		got := run(workers)
		for i := range ref.Scores {
			if got.Scores[i] != ref.Scores[i] {
				t.Fatalf("workers=%d: score[%d] = %v, want %v", workers, i, got.Scores[i], ref.Scores[i])
			}
		}
	}
}

// TestViewDistanceSketch: a sketch built from a mapped view equals one built
// from the in-memory view — landmarks and rows are a pure function of the
// graph — and its bounds bracket true distances.
func TestViewDistanceSketch(t *testing.T) {
	g := Generate.RoadNetwork(15, 15, 0.05, 3)
	mem := BuildView(g, nil)
	path := filepath.Join(t.TempDir(), "g.sbcv")
	if err := mem.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	mapped, err := OpenView(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()

	a, err := mem.DistanceSketch(16)
	if err != nil {
		t.Fatal(err)
	}
	b, err := mapped.DistanceSketch(16)
	if err != nil {
		t.Fatal(err)
	}
	if a.K != b.K || len(a.Dist) != len(b.Dist) {
		t.Fatalf("sketch shapes differ: K %d/%d, rows %d/%d", a.K, b.K, len(a.Dist), len(b.Dist))
	}
	for j := range a.Landmarks {
		if a.Landmarks[j] != b.Landmarks[j] {
			t.Fatalf("landmark %d differs across view forms", j)
		}
	}
	for i := range a.Dist {
		if a.Dist[i] != b.Dist[i] {
			t.Fatalf("sketch row entry %d differs across view forms", i)
		}
	}
	// One spot-check of the bound semantics through the public surface.
	if a.FarAtLeast(0, 1, 1000) && a.UpperBound(0, 1) >= 0 {
		t.Fatal("pair claimed both far >= 1000 and boundedly near")
	}
	// Second request for the same k hits the per-view cache.
	c, err := mapped.DistanceSketch(16)
	if err != nil {
		t.Fatal(err)
	}
	if c != b {
		t.Fatal("per-k sketch not cached on the view")
	}
}
