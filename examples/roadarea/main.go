// Roadarea: the Fig 7 case study at laptop scale — rank all intersections
// of a city-sized area of a road network without analyzing the area as a
// cut-off subnetwork (which the paper shows misestimates centrality).
//
// A perturbed-grid road network stands in for the DIMACS USA-road graph;
// rectangular coordinate windows stand in for the NYC/BAY/CO/FL areas.
package main

import (
	"context"
	"fmt"
	"log"

	"saphyra"
	"saphyra/internal/datasets"
	"saphyra/internal/rank"
)

func main() {
	const scale = 0.15
	side := datasets.RoadSide(scale)
	g := datasets.USARoad.Build(scale)
	fmt.Printf("road network: %dx%d grid, %d nodes, %d edges\n",
		side, side, g.NumNodes(), g.NumEdges())

	truth := saphyra.ExactBC(g, 0)
	ranker := saphyra.NewRanker(g)
	ranker.Prepare(saphyra.Betweenness) // decompose once, rank many areas

	fmt.Println("\narea\tnodes\ttime\tspearman-rho\trank-deviation")
	for _, area := range datasets.Areas(side) {
		res, err := ranker.Rank(context.Background(), saphyra.Query{
			Measure: saphyra.Betweenness, Targets: area.Nodes,
			Epsilon: 0.05, Delta: 0.01, Seed: 3,
		})
		if err != nil {
			log.Fatal(err)
		}
		truthA := make([]float64, len(res.Nodes))
		ids := make([]int32, len(res.Nodes))
		for i, v := range res.Nodes {
			truthA[i] = truth[v]
			ids[i] = int32(v)
		}
		rho := saphyra.Spearman(truthA, res.Scores, ids)
		dev := rank.Deviation(truthA, res.Scores, ids)
		fmt.Printf("%s\t%d\t%v\t%.3f\t%.1f%%\n",
			area.Name, len(area.Nodes), res.Duration, rho, 100*dev)
	}
	fmt.Println("\nEach area is ranked against the FULL network's shortest")
	fmt.Println("paths — no subnetwork cut-off — yet the work is confined to")
	fmt.Println("the area's bi-components (personalized sample space).")
}
