package kpath

import (
	"context"

	"math"
	"testing"

	"saphyra/internal/graph"
	"saphyra/internal/testutil"
)

func TestExactStarK1(t *testing.T) {
	// Star(5), k=1: walks of length 1 from a uniform start. From center,
	// always lands on a leaf (prob 1/5 * 1/4 each). From each leaf, always
	// lands on the center: Pr(center visited) = 4/5... per-start: start leaf
	// (prob 1/5 each of 4): visit center w.p. 1 -> center = 4/5.
	g := graph.Star(5)
	kp := Exact(g, 1)
	if math.Abs(kp[0]-0.8) > 1e-12 {
		t.Errorf("center = %g, want 0.8", kp[0])
	}
	for v := 1; v < 5; v++ {
		if math.Abs(kp[v]-0.05) > 1e-12 {
			t.Errorf("leaf %d = %g, want 0.05", v, kp[v])
		}
	}
}

func TestExactSymmetryOnCycle(t *testing.T) {
	g := graph.Cycle(6)
	kp := Exact(g, 3)
	for v := 1; v < 6; v++ {
		if math.Abs(kp[v]-kp[0]) > 1e-12 {
			t.Errorf("cycle kpath not symmetric: %g vs %g", kp[v], kp[0])
		}
	}
	if kp[0] <= 0 || kp[0] >= 1 {
		t.Errorf("kp[0] = %g out of (0,1)", kp[0])
	}
}

func TestEstimateMatchesExact(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		g := testutil.RandomConnectedGraph(15, 10, seed)
		truth := Exact(g, 3)
		var a []graph.Node
		for v := 0; v < 15; v += 2 {
			a = append(a, graph.Node(v))
		}
		res, err := Estimate(context.Background(), g, a, Options{K: 3, Epsilon: 0.05, Delta: 0.01, Seed: seed, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range res.Nodes {
			if math.Abs(res.KPath[i]-truth[v]) > 0.05 {
				t.Errorf("seed %d node %d: est %g truth %g", seed, v, res.KPath[i], truth[v])
			}
		}
	}
}

func TestEstimateErrors(t *testing.T) {
	g := graph.Cycle(5)
	if _, err := Estimate(context.Background(), g, nil, Options{}); err == nil {
		t.Error("empty target set: want error")
	}
	if _, err := Estimate(context.Background(), g, []graph.Node{0}, Options{K: -1}); err == nil {
		t.Error("negative k: want error")
	}
	empty := graph.NewBuilder(0).Build()
	if _, err := Estimate(context.Background(), empty, []graph.Node{0}, Options{}); err == nil {
		t.Error("empty graph: want error")
	}
}

func TestEstimateDeadEnds(t *testing.T) {
	// path with an isolated node: walks from the isolated node go nowhere
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.Build()
	res, err := Estimate(context.Background(), g, []graph.Node{3}, Options{K: 2, Epsilon: 0.1, Delta: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.KPath[0] != 0 {
		t.Errorf("isolated node kpath = %g, want 0", res.KPath[0])
	}
}

func TestEstimateDefaults(t *testing.T) {
	g := graph.Cycle(8)
	res, err := Estimate(context.Background(), g, []graph.Node{1, 3}, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.KPath) != 2 {
		t.Fatalf("len = %d", len(res.KPath))
	}
}
