package vc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"saphyra/internal/bicomp"
	"saphyra/internal/graph"
	"saphyra/internal/testutil"
)

func TestDimFromMaxInner(t *testing.T) {
	cases := []struct {
		pi   int64
		want int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4}, {1023, 10}, {1024, 11},
	}
	for _, c := range cases {
		if got := DimFromMaxInner(c.pi); got != c.want {
			t.Errorf("DimFromMaxInner(%d) = %d, want %d", c.pi, got, c.want)
		}
	}
}

func TestRiondato(t *testing.T) {
	// complete graph: diameter 1 -> no inner nodes -> dim 0
	if got := Riondato(1); got != 0 {
		t.Errorf("Riondato(1) = %d, want 0", got)
	}
	// path of diameter 9: 8 inner nodes -> floor(log2 8)+1 = 4
	if got := Riondato(9); got != 4 {
		t.Errorf("Riondato(9) = %d, want 4", got)
	}
}

func TestLHop(t *testing.T) {
	// l=1: 2l+1 = 3 -> floor(log2 3)+1 = 2
	if got := LHop(1); got != 2 {
		t.Errorf("LHop(1) = %d, want 2", got)
	}
	if got := LHop(0); got != 1 {
		t.Errorf("LHop(0) = %d, want 1", got)
	}
}

func TestFullNetworkBeatsRiondatoOnTrees(t *testing.T) {
	// Tree: every block is an edge, BD = 1, so the SaPHyRa bound is 0 while
	// the Riondato bound grows with the diameter.
	g := graph.RandomTree(200, 4)
	d := bicomp.Decompose(g)
	full := FullNetwork(d.MaxBlockDiameterUpperBound(10))
	if full != 0 {
		t.Errorf("tree FullNetwork bound = %d, want 0", full)
	}
	diam := graph.Diameter(g)
	if r := Riondato(diam); r <= full {
		t.Errorf("Riondato %d should exceed SaPHyRa %d on trees", r, full)
	}
}

func TestSubsetBoundCappedBySubsetSize(t *testing.T) {
	g := graph.Cycle(64) // one block, diameter 32
	d := bicomp.Decompose(g)
	a := []graph.Node{0, 1}
	if bs := SubsetBound(d, a, 100); bs > 2 {
		t.Errorf("BS bound = %d, want <= |A| = 2", bs)
	}
}

func TestSubsetBoundEmpty(t *testing.T) {
	g := graph.Cycle(8)
	d := bicomp.Decompose(g)
	if bs := SubsetBound(d, nil, 10); bs != 0 {
		t.Errorf("BS(empty) = %d, want 0", bs)
	}
}

// The BS(A) bound must be a true upper bound on the actual maximum number of
// A-nodes that appear as inner nodes of a single intra-block shortest path.
func TestSubsetBoundIsUpperBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(16)
		g := testutil.RandomConnectedGraph(n, rng.Intn(n), seed)
		d := bicomp.Decompose(g)
		var a []graph.Node
		inA := make(map[graph.Node]bool)
		for len(a) < 3 {
			v := graph.Node(rng.Intn(n))
			if !inA[v] {
				inA[v] = true
				a = append(a, v)
			}
		}
		bound := SubsetBound(d, a, 1000)
		// brute: max over intra-block pairs and their shortest paths
		var actual int64
		for b := int32(0); int(b) < d.NumBlocks; b++ {
			members := d.Blocks[b]
			for _, s := range members {
				for _, u := range members {
					if s == u {
						continue
					}
					for _, p := range testutil.AllShortestPaths(g, s, u) {
						var c int64
						for _, v := range p[1 : len(p)-1] {
							if inA[v] {
								c++
							}
						}
						if c > actual {
							actual = c
						}
					}
				}
			}
		}
		if bound < actual {
			t.Logf("seed %d: bound %d < actual %d", seed, bound, actual)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSubsetNeverExceedsFullNetwork(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(30)
		g := testutil.RandomConnectedGraph(n, rng.Intn(2*n), seed)
		d := bicomp.Decompose(g)
		var a []graph.Node
		for i := 0; i < 4; i++ {
			a = append(a, graph.Node(rng.Intn(n)))
		}
		// BS(A) <= BD - 1 by Lemma 23, so the dims are ordered too. Both
		// sides must use comparable diameter bounds: use exact thresholds.
		sub := Subset(d, a, 1000)
		full := FullNetwork(d.MaxBlockDiameterUpperBound(1000))
		return sub <= full
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestTableIRow(t *testing.T) {
	g := graph.RoadNetwork(12, 12, 0.3, 5)
	d := bicomp.Decompose(g)
	row := TableI(d, []graph.Node{3, 70, 100}, graph.Diameter(g), 50)
	if row.SaPHyRaSubset > row.SaPHyRaFull && row.SaPHyRaFull > 0 {
		t.Errorf("subset bound %d exceeds full bound %d", row.SaPHyRaSubset, row.SaPHyRaFull)
	}
	if row.SaPHyRaFull > row.RiondatoFull {
		t.Errorf("SaPHyRa full %d exceeds Riondato %d", row.SaPHyRaFull, row.RiondatoFull)
	}
}
