package kpath

import (
	"context"

	"path/filepath"
	"testing"

	"saphyra/internal/bicomp"
	"saphyra/internal/graph"
)

func testView(t *testing.T, g *graph.Graph) *bicomp.BlockCSR {
	t.Helper()
	d := bicomp.Decompose(g)
	return bicomp.NewBlockCSR(d, bicomp.NewOutReach(d))
}

// TestWorkerCountBitwise: both estimators must produce bitwise-identical
// results for any worker count — the sample streams belong to fixed virtual
// workers, not to goroutines.
func TestWorkerCountBitwise(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"ba", graph.BarabasiAlbert(400, 3, 6)},
		{"road", graph.RoadNetwork(12, 12, 0.1, 2)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a := []graph.Node{0, 3, 17, 99, 120}
			run := func(partitioned bool, workers int) *Result {
				opt := Options{K: 4, Epsilon: 0.05, Delta: 0.05, Seed: 9, Workers: workers}
				var res *Result
				var err error
				if partitioned {
					res, err = EstimatePartitioned(context.Background(), tc.g, a, opt)
				} else {
					res, err = Estimate(context.Background(), tc.g, a, opt)
				}
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			for _, partitioned := range []bool{false, true} {
				ref := run(partitioned, 1)
				if ref.Est.Samples == 0 {
					t.Fatal("reference run drew no samples; the test exercises nothing")
				}
				for _, workers := range []int{2, 8} {
					got := run(partitioned, workers)
					if got.Est.Samples != ref.Est.Samples {
						t.Fatalf("partitioned=%v workers=%d: samples %d != %d",
							partitioned, workers, got.Est.Samples, ref.Est.Samples)
					}
					for i := range ref.KPath {
						if got.KPath[i] != ref.KPath[i] {
							t.Fatalf("partitioned=%v workers=%d: KPath[%d] = %v, want %v",
								partitioned, workers, i, got.KPath[i], ref.KPath[i])
						}
					}
				}
			}
		})
	}
}

// TestViewMatchesGraph: the view-served estimators (in-memory and mmapped)
// must be bitwise-identical to the graph-served ones.
func TestViewMatchesGraph(t *testing.T) {
	g := graph.BarabasiAlbert(300, 3, 8)
	a := []graph.Node{1, 5, 42, 250}
	opt := Options{K: 4, Epsilon: 0.05, Delta: 0.05, Seed: 4, Workers: 3}

	view := testView(t, g)
	path := filepath.Join(t.TempDir(), "view.sbcv")
	if err := view.WriteFile(path, nil); err != nil {
		t.Fatal(err)
	}
	m, err := bicomp.OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	for _, tc := range []struct {
		name string
		run  func() (*Result, error)
		want func() (*Result, error)
	}{
		{"plain", func() (*Result, error) { return EstimateView(context.Background(), m.View, a, opt) },
			func() (*Result, error) { return Estimate(context.Background(), g, a, opt) }},
		{"partitioned", func() (*Result, error) { return EstimatePartitionedView(context.Background(), m.View, a, opt) },
			func() (*Result, error) { return EstimatePartitioned(context.Background(), g, a, opt) }},
	} {
		got, err := tc.run()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		want, err := tc.want()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got.Est.Samples != want.Est.Samples {
			t.Fatalf("%s: samples %d != %d", tc.name, got.Est.Samples, want.Est.Samples)
		}
		for i := range want.KPath {
			if got.KPath[i] != want.KPath[i] {
				t.Fatalf("%s: KPath[%d] = %v, want %v", tc.name, i, got.KPath[i], want.KPath[i])
			}
		}
	}
}

// TestPartitionedExactPhaseParallel: the chunked closed-form exact phase
// must not depend on the worker count, including on target sets large
// enough to actually split into chunks.
func TestPartitionedExactPhaseParallel(t *testing.T) {
	g := graph.BarabasiAlbert(2000, 3, 13)
	all := make([]graph.Node, g.NumNodes())
	for i := range all {
		all[i] = graph.Node(i)
	}
	build := func(workers int) []float64 {
		nodes, aIndex, err := targetIndex(g, all, &Options{K: 3})
		if err != nil {
			t.Fatal(err)
		}
		sp := &kpathSpace{g: g, k: 3, nodes: nodes, aIndex: aIndex, dim: 1, workers: workers}
		_, exact, _ := sp.ExactPhase(context.Background())
		return exact
	}
	ref := build(1)
	for _, workers := range []int{2, 8} {
		got := build(workers)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: exact[%d] = %v, want %v", workers, i, got[i], ref[i])
			}
		}
	}
}
