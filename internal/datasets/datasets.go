// Package datasets provides the seeded synthetic stand-ins for the paper's
// evaluation networks (Table II) and the USA-road areas (Table III).
//
// The paper uses SNAP crawls (Flickr, LiveJournal, Orkut) and the DIMACS
// challenge-9 USA road network, none of which are available offline, so each
// is substituted by a generator tuned to echo the structural features the
// experiments actually exercise (see DESIGN.md):
//
//   - social graphs: heavy-tailed degrees, small diameter, and a controlled
//     fraction of degree-1 "leaf" nodes. Leaves have betweenness exactly 0,
//     which drives the paper's true-zero fractions (Fig 6: Flickr 59%,
//     LiveJournal 29%, Orkut 4%);
//   - road graph: bounded degree, very large diameter (stressing the
//     VD-based VC bound that SaPHyRa's bi-component bound improves on), and
//     coordinate-addressable areas for the Fig 7 case study.
//
// All generators are deterministic in (name, scale).
package datasets

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"saphyra/internal/graph"
)

// Network is a named synthetic stand-in.
type Network struct {
	Name string
	// PaperNodes / PaperEdges / PaperDiam record the original network's
	// statistics from Table II for the EXPERIMENTS.md comparison.
	PaperNodes, PaperEdges string
	PaperDiam              int
	build                  func(scale float64) *graph.Graph
}

// Build materializes the network at the given scale (1.0 = default
// laptop-size experiment; node counts grow linearly with scale).
func (n Network) Build(scale float64) *graph.Graph {
	if scale <= 0 {
		scale = 1
	}
	return n.build(scale)
}

// withLeaves attaches extra degree-1 nodes to an existing core graph,
// degree-proportionally (hubs attract more leaves, as in real crawls).
func withLeaves(core *graph.Graph, leaves int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	n := core.NumNodes()
	b := graph.NewBuilder(n + leaves)
	// degree-proportional endpoint pool
	pool := make([]graph.Node, 0, 2*core.NumEdges())
	for u := graph.Node(0); int(u) < n; u++ {
		for _, v := range core.Neighbors(u) {
			if u < v {
				b.AddEdge(u, v)
			}
			pool = append(pool, u)
		}
	}
	for i := 0; i < leaves; i++ {
		b.AddEdge(graph.Node(n+i), pool[rng.Intn(len(pool))])
	}
	return b.Build()
}

func scaled(base int, scale float64) int {
	v := int(math.Round(float64(base) * scale))
	if v < 8 {
		v = 8
	}
	return v
}

// Flickr is the Flickr stand-in: scale-free core with ~50% leaf nodes
// (Table II: 1.6M nodes, 15.5M edges, diameter 24; Fig 6: 59% true zeros).
var Flickr = Network{
	Name:       "flickr-sim",
	PaperNodes: "1.6M", PaperEdges: "15.5M", PaperDiam: 24,
	build: func(scale float64) *graph.Graph {
		core := graph.PowerLawCluster(scaled(3000, scale), 6, 0.3, 101)
		return withLeaves(core, scaled(3000, scale), 102)
	},
}

// LiveJournal is the LiveJournal stand-in: larger core, ~33% leaves
// (Table II: 5.2M nodes, 49.2M edges, diameter 23; Fig 6: 29% true zeros).
var LiveJournal = Network{
	Name:       "livejournal-sim",
	PaperNodes: "5.2M", PaperEdges: "49.2M", PaperDiam: 23,
	build: func(scale float64) *graph.Graph {
		core := graph.PowerLawCluster(scaled(6000, scale), 8, 0.2, 201)
		return withLeaves(core, scaled(3000, scale), 202)
	},
}

// Orkut is the Orkut stand-in: dense core, very few leaves (Table II: 3.1M
// nodes, 117.2M edges, diameter 10; Fig 6: 4% true zeros).
var Orkut = Network{
	Name:       "orkut-sim",
	PaperNodes: "3.1M", PaperEdges: "117.2M", PaperDiam: 10,
	build: func(scale float64) *graph.Graph {
		core := graph.PowerLawCluster(scaled(8000, scale), 12, 0.1, 301)
		return withLeaves(core, scaled(400, scale), 302)
	},
}

// USARoad is the USA-road stand-in: a perturbed grid with embedded
// coordinates (Table II: 23.9M nodes, 58.3M edges, diameter 1524), plus
// ~18% dead-end spur roads appended after the grid ids (real road networks
// are full of cul-de-sacs; they are the road graph's true-zero nodes in
// Fig 6c). Grid node ids stay 0..side*side-1, so Areas remain valid.
var USARoad = Network{
	Name:       "usaroad-sim",
	PaperNodes: "23.9M", PaperEdges: "58.3M", PaperDiam: 1524,
	build: func(scale float64) *graph.Graph {
		side := RoadSide(scale)
		grid := graph.RoadNetwork(side, side, 0.35, 401)
		return withLeaves(grid, side*side/6, 402)
	},
}

// RoadSide returns the grid side length USARoad uses at the given scale
// (needed to map node ids to coordinates).
func RoadSide(scale float64) int {
	if scale <= 0 {
		scale = 1
	}
	side := int(math.Round(110 * math.Sqrt(scale)))
	if side < 8 {
		side = 8
	}
	return side
}

// All lists the four Table II stand-ins in the paper's order.
var All = []Network{Flickr, LiveJournal, USARoad, Orkut}

// ByName returns the stand-in with the given name.
func ByName(name string) (Network, error) {
	for _, n := range All {
		if n.Name == name || n.Name == name+"-sim" {
			return n, nil
		}
	}
	return Network{}, fmt.Errorf("datasets: unknown network %q (have flickr-sim, livejournal-sim, usaroad-sim, orkut-sim)", name)
}

// Area is a named coordinate-rectangle subset of the road network (the
// Table III analogue: NYC, BAY, CO, FL).
type Area struct {
	Name                   string
	PaperNodes, PaperEdges string
	// fractions of the grid side occupied by the rectangle
	r0, c0, r1, c1 float64
}

// roadAreas mirrors Table III's relative sizes: FL is the largest area,
// NYC the smallest, placed in distinct corners of the map.
var roadAreas = []Area{
	{Name: "NYC", PaperNodes: "264K", PaperEdges: "734K", r0: 0.02, c0: 0.70, r1: 0.13, c1: 0.80},
	{Name: "BAY", PaperNodes: "321K", PaperEdges: "800K", r0: 0.30, c0: 0.02, r1: 0.42, c1: 0.13},
	{Name: "CO", PaperNodes: "435K", PaperEdges: "1,057K", r0: 0.40, c0: 0.40, r1: 0.54, c1: 0.54},
	{Name: "FL", PaperNodes: "1,070K", PaperEdges: "2,713K", r0: 0.75, c0: 0.70, r1: 0.97, c1: 0.92},
}

// Areas returns the four Table III areas as node subsets of a road network
// with the given grid side length.
func Areas(side int) []NamedSubset {
	out := make([]NamedSubset, 0, len(roadAreas))
	for _, a := range roadAreas {
		var nodes []graph.Node
		r0 := int(a.r0 * float64(side))
		r1 := int(a.r1 * float64(side))
		c0 := int(a.c0 * float64(side))
		c1 := int(a.c1 * float64(side))
		for r := r0; r < r1; r++ {
			for c := c0; c < c1; c++ {
				nodes = append(nodes, graph.Node(r*side+c))
			}
		}
		out = append(out, NamedSubset{Name: a.Name, Paper: a, Nodes: nodes})
	}
	return out
}

// NamedSubset is a labeled target set.
type NamedSubset struct {
	Name  string
	Paper Area
	Nodes []graph.Node
}

// RandomSubsets draws `count` subsets of `size` distinct random nodes each,
// deterministically from the seed (the paper's 1000 x 100-node workload).
func RandomSubsets(n, size, count int, seed int64) [][]graph.Node {
	rng := rand.New(rand.NewSource(seed))
	if size > n {
		size = n
	}
	out := make([][]graph.Node, count)
	for i := range out {
		seen := make(map[graph.Node]struct{}, size)
		subset := make([]graph.Node, 0, size)
		for len(subset) < size {
			v := graph.Node(rng.Intn(n))
			if _, dup := seen[v]; !dup {
				seen[v] = struct{}{}
				subset = append(subset, v)
			}
		}
		sort.Slice(subset, func(a, b int) bool { return subset[a] < subset[b] })
		out[i] = subset
	}
	return out
}

// LHopSubset returns the nodes within l hops of center (including center),
// the subset shape of Table I's third column.
func LHopSubset(g *graph.Graph, center graph.Node, l int) []graph.Node {
	dist := graph.BFSDistances(g, center, nil)
	var out []graph.Node
	for v, d := range dist {
		if d >= 0 && d <= int32(l) {
			out = append(out, graph.Node(v))
		}
	}
	return out
}
