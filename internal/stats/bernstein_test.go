package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEpsilonBernsteinKnownValue(t *testing.T) {
	// n=1000, delta0=0.05, v=0.25: eps = sqrt(2*0.25*ln40/1000) + 7 ln40/3000
	l := math.Log(2 / 0.05)
	want := math.Sqrt(2*0.25*l/1000) + 7*l/3000
	got := EpsilonBernstein(1000, 0.05, 0.25)
	if math.Abs(got-want) > 1e-15 {
		t.Errorf("got %g, want %g", got, want)
	}
}

func TestEpsilonBernsteinMonotonicity(t *testing.T) {
	// decreasing in n, increasing in variance, decreasing in delta0
	if EpsilonBernstein(100, 0.1, 0.2) <= EpsilonBernstein(1000, 0.1, 0.2) {
		t.Error("eps should shrink with more samples")
	}
	if EpsilonBernstein(100, 0.1, 0.1) >= EpsilonBernstein(100, 0.1, 0.3) {
		t.Error("eps should grow with variance")
	}
	if EpsilonBernstein(100, 0.2, 0.2) >= EpsilonBernstein(100, 0.01, 0.2) {
		t.Error("eps should grow as delta0 shrinks")
	}
}

func TestEpsilonBernsteinZeroVariance(t *testing.T) {
	// with zero variance only the 7L/(3N) term remains
	l := math.Log(2 / 0.1)
	want := 7 * l / (3 * 500)
	if got := EpsilonBernstein(500, 0.1, 0); math.Abs(got-want) > 1e-15 {
		t.Errorf("got %g, want %g", got, want)
	}
}

func TestEpsilonBernsteinNoSamples(t *testing.T) {
	if !math.IsInf(EpsilonBernstein(0, 0.1, 0.2), 1) {
		t.Error("n=0 should give +Inf")
	}
}

func TestDeltaForEpsilonInvertsEpsilon(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int64(10 + rng.Intn(100000))
		v := rng.Float64() * 0.25
		eps := 0.001 + rng.Float64()*0.5
		d := DeltaForEpsilon(n, v, eps)
		if d <= 0 {
			return true // eps unreachable at any delta < 1... d>0 always here
		}
		if d >= 1 {
			// Clamped: the unconstrained solution needed delta0 > 1, which
			// happens exactly when even delta0 = 1 cannot reach eps.
			return EpsilonBernstein(n, 1, v) >= eps-1e-12
		}
		back := EpsilonBernstein(n, d, v)
		return math.Abs(back-eps) < 1e-9*math.Max(1, eps/1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestVCSampleSize(t *testing.T) {
	n := VCSampleSize(0.1, 0.01, 3)
	want := int64(math.Ceil(0.5 / 0.01 * (3 + math.Log(100))))
	if n != want {
		t.Errorf("got %d, want %d", n, want)
	}
	if VCSampleSize(0.1, 0.01, 5) <= VCSampleSize(0.1, 0.01, 1) {
		t.Error("sample size should grow with dimension")
	}
	if VCSampleSize(0.01, 0.01, 1) <= VCSampleSize(0.1, 0.01, 1) {
		t.Error("sample size should grow as eps shrinks")
	}
}

func TestUnionSampleSize(t *testing.T) {
	if UnionSampleSize(0.1, 0.01, 1000) <= UnionSampleSize(0.1, 0.01, 10) {
		t.Error("sample size should grow with k")
	}
	if UnionSampleSize(0.1, 0.01, 0) < 1 {
		t.Error("degenerate k should still give >= 1")
	}
}

func TestBernoulliSampleVariance(t *testing.T) {
	// direct check against the definitional pairwise sum on a small vector:
	// z = (1,1,0,0,0): pairs differing = 2*3 = 6 of 10 -> var = 6/ (5*4) *2?
	// Paper form: sum_{j1<j2} (z_j1-z_j2)^2 / (N(N-1)) = 6/20 = 0.3.
	got := BernoulliSampleVariance(2, 5)
	if math.Abs(got-0.3) > 1e-15 {
		t.Errorf("got %g, want 0.3", got)
	}
	if BernoulliSampleVariance(0, 5) != 0 || BernoulliSampleVariance(5, 5) != 0 {
		t.Error("constant vectors have zero variance")
	}
	if BernoulliSampleVariance(1, 1) != 0 {
		t.Error("n<2 variance should be 0")
	}
}

func TestBernoulliSampleVarianceMatchesMeanVar(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int64(2 + rng.Intn(500))
		ones := int64(rng.Intn(int(n) + 1))
		var mv MeanVar
		mv.AddWeighted(1, ones)
		mv.AddWeighted(0, n-ones)
		return math.Abs(mv.Variance()-BernoulliSampleVariance(ones, n)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMeanVarBasics(t *testing.T) {
	var m MeanVar
	for _, x := range []float64{1, 2, 3, 4} {
		m.Add(x)
	}
	if m.N() != 4 {
		t.Errorf("N = %d", m.N())
	}
	if math.Abs(m.Mean()-2.5) > 1e-15 {
		t.Errorf("mean = %g", m.Mean())
	}
	// sample variance of 1..4 = 5/3
	if math.Abs(m.Variance()-5.0/3) > 1e-12 {
		t.Errorf("var = %g, want %g", m.Variance(), 5.0/3)
	}
}

func TestMeanVarMerge(t *testing.T) {
	var a, b, all MeanVar
	xs := []float64{0.2, 0.9, 0.4, 0.7, 0.1, 0.5}
	for i, x := range xs {
		all.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(&b)
	if a.N() != all.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), all.N())
	}
	if math.Abs(a.Mean()-all.Mean()) > 1e-15 || math.Abs(a.Variance()-all.Variance()) > 1e-12 {
		t.Error("merge result differs from direct accumulation")
	}
}

func TestMeanVarEmpty(t *testing.T) {
	var m MeanVar
	if m.Mean() != 0 || m.Variance() != 0 {
		t.Error("empty accumulator should be zeros")
	}
}

// Empirical coverage check: the Bernstein bound must hold with probability
// >= 1 - 2*delta0 over repeated Bernoulli experiments.
func TestEpsilonBernsteinCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	const trials = 2000
	const n = 400
	const p = 0.3
	const delta0 = 0.05
	violations := 0
	for trial := 0; trial < trials; trial++ {
		var ones int64
		for i := 0; i < n; i++ {
			if rng.Float64() < p {
				ones++
			}
		}
		mean := float64(ones) / n
		eps := EpsilonBernstein(n, delta0, BernoulliSampleVariance(ones, n))
		if math.Abs(mean-p) > eps {
			violations++
		}
	}
	frac := float64(violations) / trials
	if frac > 2*delta0 {
		t.Errorf("coverage violated in %g of trials, budget %g", frac, 2*delta0)
	}
}
