package query

import (
	"context"
	"fmt"
	"sync"
	"time"

	"saphyra/internal/baselines"
	"saphyra/internal/bicomp"
	"saphyra/internal/closeness"
	"saphyra/internal/core"
	"saphyra/internal/faultinject"
	"saphyra/internal/graph"
	"saphyra/internal/kpath"
	"saphyra/internal/obs"
	"saphyra/internal/params"
	"saphyra/internal/rank"
)

// Result is a centrality ranking of a target node set — the one result
// shape every measure and algorithm produces.
type Result struct {
	// Nodes is the sorted, de-duplicated target set.
	Nodes []graph.Node
	// Scores[i] is the estimated centrality of Nodes[i] (betweenness: Eq 3
	// normalization, values in [0,1]).
	Scores []float64
	// Rank[i] is the rank (1 = most central) of Nodes[i] within the target
	// set, ties broken by node id as in the paper.
	Rank []int
	// Samples is the number of samples drawn; Duration the wall time of the
	// estimation (excluding graph loading).
	Samples  int64
	Duration time.Duration
}

func buildResult(nodes []graph.Node, scores []float64, samples int64, dur time.Duration) *Result {
	ids := make([]int32, len(nodes))
	for i, v := range nodes {
		ids[i] = int32(v)
	}
	return &Result{
		Nodes:    nodes,
		Scores:   scores,
		Rank:     rank.Ranks(scores, ids),
		Samples:  samples,
		Duration: dur,
	}
}

// Ranker answers Queries over one graph (or one block-annotated view),
// lazily caching the target-independent per-measure preprocessing: the
// betweenness decomposition/out-reach/exact-phase engine is built on the
// first betweenness query and shared by every later one (k-path and
// closeness need no per-graph preprocessing beyond the view itself). A
// Ranker is safe for concurrent use; results are a pure function of the
// canonical query and the graph bytes, never of concurrency or Workers.
type Ranker struct {
	g    *graph.Graph
	view *bicomp.BlockCSR // non-nil when constructed over a view

	mu sync.Mutex
	bc *core.BCPreprocessed // lazy betweenness preprocessing
	cl *closeness.Engine    // lazy closeness engine (pooled MS-BFS scratch)
}

// NewRanker returns a Ranker over an in-memory graph.
func NewRanker(g *graph.Graph) *Ranker {
	return &Ranker{g: g}
}

// NewRankerView returns a Ranker over a block-annotated view (typically
// mmap-backed, bicomp.OpenMapped): the engines run straight off the view
// arrays, and results are bitwise-identical to a Ranker over the graph the
// view was built from.
func NewRankerView(view *bicomp.BlockCSR) *Ranker {
	return &Ranker{g: view.G, view: view}
}

// NumNodes returns the node count of the underlying graph.
func (r *Ranker) NumNodes() int { return r.g.NumNodes() }

// Prepare eagerly builds the cached preprocessing for a measure, so that no
// later Rank call pays for it — what a serving layer does at load time.
// Measures without per-graph preprocessing are a no-op.
func (r *Ranker) Prepare(m Measure) {
	switch m {
	case Betweenness:
		r.bcPrep()
	case Closeness:
		r.clEngine()
	}
}

// bcPrep returns the lazily-built betweenness preprocessing.
func (r *Ranker) bcPrep() *core.BCPreprocessed { return r.bcPrepCtx(context.Background()) }

// bcPrepCtx is bcPrep with a "rank.prep.betweenness" span covering the
// build when this call is the one that pays for it (later calls hit the
// cache inside the mutex and produce no span).
func (r *Ranker) bcPrepCtx(ctx context.Context) *core.BCPreprocessed {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.bc == nil {
		sp := obs.StartLeaf(ctx, "rank.prep.betweenness")
		if r.view != nil {
			r.bc = core.PreprocessBCFromView(r.view)
		} else {
			r.bc = core.PreprocessBC(r.g)
		}
		sp.End()
	}
	return r.bc
}

// clEngine returns the lazily-built closeness engine. Caching it across
// queries is what keeps repeat closeness queries at the engine's pooled
// zero-allocation steady state — the free-function path would rebuild the
// MS-BFS workspaces per call.
func (r *Ranker) clEngine() *closeness.Engine { return r.clEngineCtx(context.Background()) }

func (r *Ranker) clEngineCtx(ctx context.Context) *closeness.Engine {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cl == nil {
		sp := obs.StartLeaf(ctx, "rank.prep.closeness")
		if r.view != nil {
			r.cl = closeness.NewEngineView(r.view)
		} else {
			r.cl = closeness.NewEngine(r.g)
		}
		sp.End()
	}
	return r.cl
}

// Rank estimates and ranks the query's targets (every node of the graph
// when the target set is empty) with the query's measure and algorithm.
//
// Cancellation is all-or-nothing: the engines poll ctx at their round and
// chunk checkpoints, and either complete — in which case the result is
// bitwise-identical to a run under a context that never fires — or abort
// with a *params.CanceledError carrying the context's cause; a partial
// estimate is never returned. A nil ctx is treated as context.Background().
func (r *Ranker) Rank(ctx context.Context, q Query) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// Chaos hook: lets the fault harness make any engine call slow, fail,
	// or panic without reaching into engine internals.
	if err := faultinject.Fire("query.rank"); err != nil {
		return nil, err
	}
	start := time.Now()
	ctx, rankSpan := obs.StartSpan(ctx, "rank")
	defer rankSpan.End()
	c := q.Canonical()
	if err := c.validateCanonical(r.g.NumNodes()); err != nil {
		return nil, fmt.Errorf("saphyra: %w", err)
	}
	c.Workers = q.Workers // latency-relevant, result-irrelevant
	targets := c.Targets
	if len(targets) == 0 {
		targets = make([]graph.Node, r.g.NumNodes())
		for i := range targets {
			targets[i] = graph.Node(i)
		}
	}

	switch c.Measure {
	case Betweenness:
		switch c.Algorithm {
		case AlgSaPHyRa:
			if rankSpan != nil {
				rankSpan.SetNote("betweenness/saphyra")
			}
			res, err := r.bcPrepCtx(ctx).EstimateBC(ctx, targets, core.BCOptions{
				Epsilon: c.Epsilon, Delta: c.Delta,
				Workers: c.Workers, Seed: c.Seed,
			})
			if err != nil {
				return nil, err
			}
			var samples int64
			if res.Est != nil {
				samples = res.Est.Samples
			}
			return buildResult(res.Nodes, res.BC, samples, time.Since(start)), nil
		default: // AlgABRA, AlgKADABRA — whole-network estimators
			bopt := baselines.Options{
				Epsilon: c.Epsilon, Delta: c.Delta,
				Workers: c.Workers, Seed: c.Seed,
			}
			var res *baselines.Result
			var err error
			if c.Algorithm == AlgABRA {
				res, err = baselines.ABRA(ctx, r.g, bopt)
			} else {
				res, err = baselines.KADABRA(ctx, r.g, bopt)
			}
			if err != nil {
				return nil, err
			}
			scores := make([]float64, len(targets))
			for i, v := range targets {
				scores[i] = res.BC[v]
			}
			return buildResult(targets, scores, res.Samples, time.Since(start)), nil
		}
	case KPath:
		if rankSpan != nil {
			rankSpan.SetNote("kpath")
		}
		kopt := kpath.Options{
			K: c.K, Epsilon: c.Epsilon, Delta: c.Delta,
			Workers: c.Workers, Seed: c.Seed,
		}
		var res *kpath.Result
		var err error
		if r.view != nil {
			res, err = kpath.EstimateView(ctx, r.view, targets, kopt)
		} else {
			res, err = kpath.Estimate(ctx, r.g, targets, kopt)
		}
		if err != nil {
			return nil, err
		}
		return buildResult(res.Nodes, res.KPath, res.Est.Samples, time.Since(start)), nil
	case Closeness:
		if rankSpan != nil {
			rankSpan.SetNote("closeness")
		}
		copt := closeness.Options{
			Epsilon: c.Epsilon, Delta: c.Delta,
			Workers: c.Workers, Seed: c.Seed,
		}
		res, err := r.clEngineCtx(ctx).Estimate(ctx, targets, copt)
		if err != nil {
			return nil, err
		}
		return buildResult(res.Nodes, res.Closeness, res.Samples, time.Since(start)), nil
	}
	return nil, fmt.Errorf("saphyra: %w", params.Errorf("measure", "unknown measure %v", c.Measure))
}
