// Package query defines the unified query model shared by the public
// library API (the root saphyra package), the estimation engines, and the
// serving layer (internal/serve): one Query type spanning the measure axis
// (betweenness, k-path, closeness) and the algorithm axis (SaPHyRa, ABRA,
// KADABRA), one canonicalization, one cache-key digest, and one Ranker that
// dispatches any query to the right engine under a context.Context.
//
// Before this package the three estimators had three disjoint call shapes —
// a betweenness-only Method enum on RankSubset, a positional k on RankKPath
// that no canonical form covered, and a View/Preprocessed split — and the
// serving layer re-implemented its own canonicalization next to the
// library's. Query.Canonical and Query.Key subsume all of that: equal keys
// guarantee bitwise-equal results (the engines' determinism contract,
// DESIGN.md section 3), so Key is the one sound cache key for any layer.
// DESIGN.md section 9 documents the model.
package query

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"

	"saphyra/internal/graph"
	"saphyra/internal/params"
)

// Measure selects the centrality being estimated — the paper's sample-space
// axis: each measure defines its own sample space and hypothesis class.
type Measure int

// Available measures. Betweenness is the paper's headline instantiation
// (SaPHyRa_bc); KPath and Closeness are the companion estimators.
const (
	Betweenness Measure = iota
	KPath
	Closeness
)

// String returns the measure name.
func (m Measure) String() string {
	switch m {
	case Betweenness:
		return "betweenness"
	case KPath:
		return "kpath"
	case Closeness:
		return "closeness"
	}
	return fmt.Sprintf("Measure(%d)", int(m))
}

// Algorithm selects the estimation algorithm — the paper's comparison axis.
// The baselines exist only for betweenness (they estimate the whole network
// regardless of the target subset); k-path and closeness always run their
// SaPHyRa-framework estimators.
type Algorithm int

// Available algorithms. The integer values match the legacy saphyra.Method
// constants, so old code converts losslessly.
const (
	AlgSaPHyRa Algorithm = iota
	AlgABRA
	AlgKADABRA
)

// String returns the algorithm name.
func (a Algorithm) String() string {
	switch a {
	case AlgSaPHyRa:
		return "SaPHyRa"
	case AlgABRA:
		return "ABRA"
	case AlgKADABRA:
		return "KADABRA"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// Query is one ranking request: which measure to estimate, with which
// algorithm, for which targets, under which (eps, delta, seed) sampling
// contract. The zero value of every parameter field means "the documented
// default" (eps 0.05, delta 0.01, K 3, algorithm SaPHyRa); an empty target
// set means "rank the whole network".
type Query struct {
	// Measure is the centrality axis; Algorithm the estimator axis. Only
	// Betweenness admits the ABRA/KADABRA baselines.
	Measure   Measure
	Algorithm Algorithm

	// Targets is the node set to rank (dense ids). Empty means every node
	// of the graph — the RankAll / top-k-warmup shape.
	Targets []graph.Node

	// K is the k-path walk length (edges). Only meaningful for Measure
	// KPath; canonicalization zeroes it for every other measure so it can
	// never split their cache keys. Zero means the default 3.
	K int

	// Epsilon is the additive error guarantee, Delta the failure
	// probability. Zero means 0.05 / 0.01.
	Epsilon float64
	Delta   float64

	// Seed fixes the sampler streams: fixed seed => bitwise-identical
	// output at any worker count.
	Seed int64

	// Workers bounds the physical goroutines; it affects latency only,
	// never a single result bit (DESIGN.md section 3), and is therefore
	// cleared by Canonical and excluded from Key. <= 0 means GOMAXPROCS.
	Workers int
}

// Canonical returns the query with every default resolved and every
// result-irrelevant field cleared: Epsilon/Delta zero become 0.05/0.01,
// Workers is zeroed, K becomes 3 for KPath and 0 for every other measure,
// and Targets is replaced by its sorted, de-duplicated form (exactly the
// normalization every engine applies). Two queries with equal canonical
// forms produce bitwise-identical results on the same graph or view — the
// soundness precondition of keying a cache by Key.
//
// An already-dedup-sorted target slice is kept as-is (no copy), so the
// repeated canonicalizations of one request — build, Validate, Key, Rank —
// pay one O(t) scan each instead of a sort+copy. Targets are treated as
// immutable from the first Canonical on.
func (q Query) Canonical() Query {
	if q.Epsilon == 0 {
		q.Epsilon = 0.05
	}
	if q.Delta == 0 {
		q.Delta = 0.01
	}
	q.Workers = 0
	if q.Measure == KPath {
		if q.K == 0 {
			q.K = 3
		}
	} else {
		q.K = 0
	}
	switch {
	case len(q.Targets) == 0:
		q.Targets = nil
	case !graph.IsDedupSorted(q.Targets):
		q.Targets = graph.DedupSorted(q.Targets)
	}
	return q
}

// TargetSetHash returns a stable 256-bit digest of the canonicalized target
// set: the nodes are de-duplicated and sorted, then hashed as little-endian
// 32-bit values. The digest is a pure function of the set — independent of
// input order, duplicates, machine, and process.
//
// It identifies the *target set* only: it does not cover the measure, the
// algorithm, eps/delta/seed, or the k-path K. Persistent caches must key by
// Query.Key, which subsumes this hash.
func TargetSetHash(targets []graph.Node) [sha256.Size]byte {
	nodes := targets
	if !graph.IsDedupSorted(nodes) {
		nodes = graph.DedupSorted(targets)
	}
	buf := make([]byte, 4*len(nodes))
	for i, v := range nodes {
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(v))
	}
	return sha256.Sum256(buf)
}

// keyMagic versions the Key layout: any change to the digested byte layout
// must bump it, or persistent caches would silently mix incompatible keys.
const keyMagic = "saphyra.Query/v1"

// Key returns a stable 256-bit digest identifying the query up to bitwise
// result equality: two queries with equal keys are guaranteed bitwise-equal
// results on the same graph or view bytes (a serving layer additionally
// tags the view generation; see internal/serve). It subsumes the legacy
// (Options.Canonical, TargetSetHash) composition and — unlike it — also
// covers the k-path walk length K, closing the cache-key gap where kpath
// queries differing only in K collided.
//
// The digest is sha256 over the canonical form, little-endian:
//
//	"saphyra.Query/v1" | measure byte | algorithm byte |
//	K uint32 | Epsilon bits uint64 | Delta bits uint64 | Seed uint64 |
//	allNodes byte | TargetSetHash [32] | target count uint32
//
// where allNodes is 1 (and the hash/count are those of the empty set) for a
// whole-network query. The layout is pinned by a golden test; treat it as a
// persistent-format contract.
func (q Query) Key() [sha256.Size]byte {
	c := q.Canonical()
	var buf [len(keyMagic) + 2 + 4 + 8 + 8 + 8 + 1 + sha256.Size + 4]byte
	b := buf[:0]
	b = append(b, keyMagic...)
	b = append(b, byte(c.Measure), byte(c.Algorithm))
	b = binary.LittleEndian.AppendUint32(b, uint32(c.K))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(c.Epsilon))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(c.Delta))
	b = binary.LittleEndian.AppendUint64(b, uint64(c.Seed))
	if len(c.Targets) == 0 {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	h := TargetSetHash(c.Targets)
	b = append(b, h[:]...)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(c.Targets)))
	return sha256.Sum256(b)
}

// Validate checks the query against a graph of numNodes nodes, returning a
// typed *params.Error (the 400-classifiable kind) on the first violation.
// It validates the canonical form, so zero-valued fields never fail. An
// empty target set is valid — it means the whole network.
func (q Query) Validate(numNodes int) error {
	return q.Canonical().validateCanonical(numNodes)
}

// validateCanonical is Validate on an already-canonical query — the form
// Rank uses so one request canonicalizes once, not once per check.
func (c Query) validateCanonical(numNodes int) error {
	switch c.Measure {
	case Betweenness:
		switch c.Algorithm {
		case AlgSaPHyRa, AlgABRA, AlgKADABRA:
		default:
			return params.Errorf("algorithm", "unknown algorithm %v", c.Algorithm)
		}
	case KPath, Closeness:
		if c.Algorithm != AlgSaPHyRa {
			return params.Errorf("algorithm", "%v supports only the SaPHyRa estimator, not %v", c.Measure, c.Algorithm)
		}
	default:
		return params.Errorf("measure", "unknown measure %v", c.Measure)
	}
	if err := params.CheckEpsDelta(c.Epsilon, c.Delta); err != nil {
		return err
	}
	if c.Measure == KPath {
		if err := params.CheckK(c.K); err != nil {
			return err
		}
	}
	if len(c.Targets) > 0 {
		if err := params.CheckTargets(c.Targets, numNodes); err != nil {
			return err
		}
	}
	return nil
}
