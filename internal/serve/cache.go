package serve

import (
	"container/list"
	"errors"
	"sync"
	"sync/atomic"
)

// cacheKey identifies a query up to bitwise result equality. Every engine is
// a pure function of (view bytes, canonicalized options, canonical target
// set) — the worker count never reaches the key because it never reaches the
// bits (DESIGN.md section 3) — and the generation tag pins the view bytes,
// so two requests with equal keys are guaranteed the same response payload.
// That purity is the entire soundness argument of the cache: there is no
// TTL and no invalidation beyond LRU pressure and generation purge.
type cacheKey struct {
	gen    uint64
	method string
	topk   bool // full-network ranking backing the top-k index
	k      int  // kpath walk length; 0 for other methods
	eps    float64
	delta  float64
	seed   int64
	hash   [32]byte // saphyra.TargetSetHash of the canonical dense target set
	count  int      // canonical target count (guards the astronomically unlikely hash collision)
}

// payload is an immutable computed result. Entries are shared between the
// cache, in-flight followers, and response marshaling — nothing may mutate
// one after publication.
type payload struct {
	nodes   []int64   // canonical target set as original ids (topk: ordered by rank)
	scores  []float64 // aligned with nodes
	ranks   []int     // aligned with nodes (topk: 1..len)
	samples int64
}

// flight is one in-progress computation; followers block on done.
type flight struct {
	done chan struct{}
	p    *payload
	err  error
}

// cache is a bounded LRU of deterministic results with singleflight
// collapsing: concurrent requests for one key share a single computation.
type cache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // of *centry; front = most recently used
	entries  map[cacheKey]*list.Element
	inflight map[cacheKey]*flight

	hits      atomic.Int64 // served straight from the LRU
	misses    atomic.Int64 // computed by this request (singleflight leader)
	collapsed atomic.Int64 // waited on another request's computation
}

type centry struct {
	key cacheKey
	p   *payload
}

func newCache(capacity int) *cache {
	if capacity < 1 {
		capacity = 1
	}
	return &cache{
		capacity: capacity,
		ll:       list.New(),
		entries:  make(map[cacheKey]*list.Element),
		inflight: make(map[cacheKey]*flight),
	}
}

// do returns the payload for key, computing it with fn on a miss. computed
// reports whether THIS call ran fn (the singleflight leader on a cold key);
// hits and followers of someone else's computation return computed=false.
// Errors are returned to the leader and every follower but never cached —
// a failed computation (overload, cancellation) must not poison the key.
func (c *cache) do(key cacheKey, fn func() (*payload, error)) (p *payload, computed bool, err error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		p := el.Value.(*centry).p
		c.mu.Unlock()
		c.hits.Add(1)
		return p, false, nil
	}
	if f, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		c.collapsed.Add(1)
		<-f.done
		return f.p, false, f.err
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	c.mu.Unlock()

	c.misses.Add(1)
	// The flight MUST be settled even if fn panics (net/http recovers
	// handler panics, so the process survives): without the defer a panic
	// would strand the inflight entry and park every follower — and every
	// future request for this key — on done forever.
	defer func() {
		if f.p == nil && f.err == nil { // fn panicked before settling
			f.err = errors.New("serve: computation aborted")
		}
		c.mu.Lock()
		delete(c.inflight, key)
		if f.err == nil {
			c.insertLocked(key, f.p)
		}
		c.mu.Unlock()
		close(f.done)
	}()
	f.p, f.err = fn()
	return f.p, true, f.err
}

func (c *cache) insertLocked(key cacheKey, p *payload) {
	if el, ok := c.entries[key]; ok { // raced with another leader after a purge
		el.Value.(*centry).p = p
		c.ll.MoveToFront(el)
		return
	}
	c.entries[key] = c.ll.PushFront(&centry{key: key, p: p})
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*centry).key)
	}
}

// purgeOtherGens drops every entry whose generation differs from gen —
// called after a hot reload so retired-view results stop occupying LRU
// slots (they were never incorrect: their keys are unreachable once
// requests carry the new generation).
func (c *cache) purgeOtherGens(gen uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		if e := el.Value.(*centry); e.key.gen != gen {
			c.ll.Remove(el)
			delete(c.entries, e.key)
		}
		el = next
	}
}

func (c *cache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
