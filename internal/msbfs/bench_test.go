package msbfs

import (
	"math/rand/v2"
	"testing"

	"saphyra/internal/graph"
)

// BenchmarkMSBFSPass prices one full 64-lane pass over the closeness bench
// graph — the unit the estimator's ~(samples/64) inner cost is built from.
// Must stay 0 allocs/op: the workspace is the pooled steady state.
func BenchmarkMSBFSPass(b *testing.B) {
	g := graph.BarabasiAlbert(2000, 3, 42)
	off, nbr := g.CSR()
	n := g.NumNodes()
	rng := rand.New(rand.NewPCG(1, 2))
	srcs := make([]graph.Node, MaxLanes)
	for i := range srcs {
		srcs[i] = graph.Node(rng.IntN(n))
	}
	tr := New(n)
	onSettle := func(u graph.Node, lanes uint64, depth int32) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Run(off, nbr, srcs, nil, onSettle); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMSBFSSketch prices building a 16-landmark sketch, the per-view
// one-time cost of the bc sampler's distance pre-classification.
func BenchmarkMSBFSSketch(b *testing.B) {
	g := graph.BarabasiAlbert(2000, 3, 42)
	off, nbr := g.CSR()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewSketch(off, nbr, 16); err != nil {
			b.Fatal(err)
		}
	}
}
