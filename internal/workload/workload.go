// Package workload contains the experiment drivers that regenerate every
// table and figure of the paper's evaluation (Section V). cmd/experiments
// and the repository's benchmark harness both run these.
package workload

import (
	"context"
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"saphyra/internal/baselines"
	"saphyra/internal/core"
	"saphyra/internal/datasets"
	"saphyra/internal/exact"
	"saphyra/internal/graph"
	"saphyra/internal/rank"
	"saphyra/internal/vc"
)

// Algo identifies one of the compared algorithms.
type Algo string

// The four algorithms of Figs 3-6 (Fig 7 drops ABRA, as in the paper).
const (
	AlgoABRA        Algo = "ABRA"
	AlgoKADABRA     Algo = "KADABRA"
	AlgoSaPHyRaFull Algo = "SaPHyRa-full"
	AlgoSaPHyRa     Algo = "SaPHyRa"
)

// Config bundles the common experiment knobs.
type Config struct {
	Epsilon float64
	Delta   float64
	Workers int
	Seed    int64
	// MaxSamples optionally caps per-run sampling so CI-sized runs stay
	// bounded; 0 = faithful (eps, delta) budgets.
	MaxSamples int64
}

// Bench is one algorithm run on one subset: wall time, rank quality versus
// the exact ground truth, and the per-node estimates.
type Bench struct {
	Algo     Algo
	Duration time.Duration
	Rho      float64 // Spearman rank correlation vs ground truth
	Samples  int64
	Subset   []graph.Node
	Est      []float64 // aligned with Subset
}

// Env is a prepared network: graph, preprocessing, and exact ground truth.
type Env struct {
	Name  string
	G     *graph.Graph
	Prep  *core.BCPreprocessed
	Truth []float64
}

// NewEnv builds the environment for a network stand-in, computing exact
// betweenness with parallel Brandes (the ground-truth substitution for the
// paper's supercomputer runs).
func NewEnv(net datasets.Network, scale float64, workers int) *Env {
	g := net.Build(scale)
	return &Env{
		Name:  net.Name,
		G:     g,
		Prep:  core.PreprocessBC(g),
		Truth: exact.BCParallel(g, workers),
	}
}

// NewEnvFromGraph wraps an existing graph (used by tests and examples).
func NewEnvFromGraph(name string, g *graph.Graph, workers int) *Env {
	return &Env{
		Name:  name,
		G:     g,
		Prep:  core.PreprocessBC(g),
		Truth: exact.BCParallel(g, workers),
	}
}

func (e *Env) truthFor(subset []graph.Node) ([]float64, []int32) {
	t := make([]float64, len(subset))
	ids := make([]int32, len(subset))
	for i, v := range subset {
		t[i] = e.Truth[v]
		ids[i] = int32(v)
	}
	return t, ids
}

// RunOne executes a single algorithm on one subset and scores it.
func (e *Env) RunOne(algo Algo, subset []graph.Node, cfg Config) (Bench, error) {
	truth, ids := e.truthFor(subset)
	b := Bench{Algo: algo, Subset: subset}
	start := time.Now()
	switch algo {
	case AlgoABRA, AlgoKADABRA:
		var res *baselines.Result
		var err error
		opt := baselines.Options{
			Epsilon: cfg.Epsilon, Delta: cfg.Delta,
			Workers: cfg.Workers, Seed: cfg.Seed, MaxSamples: cfg.MaxSamples,
		}
		if algo == AlgoABRA {
			res, err = baselines.ABRA(context.Background(), e.G, opt)
		} else {
			res, err = baselines.KADABRA(context.Background(), e.G, opt)
		}
		if err != nil {
			return b, err
		}
		b.Duration = time.Since(start)
		b.Samples = res.Samples
		b.Est = make([]float64, len(subset))
		for i, v := range subset {
			b.Est[i] = res.BC[v]
		}
	case AlgoSaPHyRa, AlgoSaPHyRaFull:
		target := subset
		if algo == AlgoSaPHyRaFull {
			target = make([]graph.Node, e.G.NumNodes())
			for i := range target {
				target[i] = graph.Node(i)
			}
		}
		res, err := e.Prep.EstimateBC(context.Background(), target, core.BCOptions{
			Epsilon: cfg.Epsilon, Delta: cfg.Delta,
			Workers: cfg.Workers, Seed: cfg.Seed, MaxSamples: cfg.MaxSamples,
		})
		if err != nil {
			return b, err
		}
		b.Duration = time.Since(start)
		if res.Est != nil {
			b.Samples = res.Est.Samples
		}
		b.Est = make([]float64, len(subset))
		pos := make(map[graph.Node]int, len(res.Nodes))
		for i, v := range res.Nodes {
			pos[v] = i
		}
		for i, v := range subset {
			b.Est[i] = res.BC[pos[v]]
		}
	default:
		return b, fmt.Errorf("workload: unknown algorithm %q", algo)
	}
	b.Rho = rank.Spearman(truth, b.Est, ids)
	return b, nil
}

// Series is an aggregated (mean, min, max) measurement over several subsets,
// matching the paper's shaded confidence bands.
type Series struct {
	MeanTime              time.Duration
	MeanRho, LoRho, HiRho float64
	MeanSamples           int64
}

// Aggregate folds per-subset Bench results into a Series.
func Aggregate(bs []Bench) Series {
	if len(bs) == 0 {
		return Series{}
	}
	s := Series{LoRho: math.Inf(1), HiRho: math.Inf(-1)}
	var t time.Duration
	var samples int64
	for _, b := range bs {
		t += b.Duration
		samples += b.Samples
		s.MeanRho += b.Rho
		if b.Rho < s.LoRho {
			s.LoRho = b.Rho
		}
		if b.Rho > s.HiRho {
			s.HiRho = b.Rho
		}
	}
	s.MeanTime = t / time.Duration(len(bs))
	s.MeanSamples = samples / int64(len(bs))
	s.MeanRho /= float64(len(bs))
	return s
}

// Fig3And4Row is one (network, epsilon, algorithm) cell of Figs 3 and 4.
type Fig3And4Row struct {
	Network string
	Epsilon float64
	Algo    Algo
	Series
}

// Fig3And4 sweeps epsilon for all four algorithms (Fig 3: running time,
// Fig 4: rank correlation). Baselines estimate the full network once per
// epsilon and are scored against every subset, mirroring the paper's setup.
func Fig3And4(e *Env, epsilons []float64, subsets [][]graph.Node, cfg Config) ([]Fig3And4Row, error) {
	var rows []Fig3And4Row
	for _, eps := range epsilons {
		c := cfg
		c.Epsilon = eps
		for _, algo := range []Algo{AlgoABRA, AlgoKADABRA, AlgoSaPHyRaFull, AlgoSaPHyRa} {
			var bs []Bench
			switch algo {
			case AlgoSaPHyRa:
				// subset-personalized: one run per subset
				for i, sub := range subsets {
					cc := c
					cc.Seed = c.Seed + int64(i)
					b, err := e.RunOne(algo, sub, cc)
					if err != nil {
						return nil, err
					}
					bs = append(bs, b)
				}
			default:
				// Whole-network estimators run once per epsilon; every
				// subset is scored against the same estimate (the paper's
				// point: baselines cannot restrict work to the subset).
				full, err := e.fullEstimate(algo, c)
				if err != nil {
					return nil, err
				}
				for _, sub := range subsets {
					truth, ids := e.truthFor(sub)
					est := make([]float64, len(sub))
					for i, v := range sub {
						est[i] = full.values[v]
					}
					bs = append(bs, Bench{
						Algo:     algo,
						Duration: full.dur,
						Samples:  full.samples,
						Subset:   sub,
						Est:      est,
						Rho:      rank.Spearman(truth, est, ids),
					})
				}
			}
			rows = append(rows, Fig3And4Row{Network: e.Name, Epsilon: eps, Algo: algo, Series: Aggregate(bs)})
		}
	}
	return rows, nil
}

type fullRun struct {
	values  []float64
	dur     time.Duration
	samples int64
}

// fullEstimate runs a whole-network algorithm once and returns per-node
// estimates.
func (e *Env) fullEstimate(algo Algo, cfg Config) (*fullRun, error) {
	start := time.Now()
	switch algo {
	case AlgoABRA, AlgoKADABRA:
		opt := baselines.Options{
			Epsilon: cfg.Epsilon, Delta: cfg.Delta,
			Workers: cfg.Workers, Seed: cfg.Seed, MaxSamples: cfg.MaxSamples,
		}
		var res *baselines.Result
		var err error
		if algo == AlgoABRA {
			res, err = baselines.ABRA(context.Background(), e.G, opt)
		} else {
			res, err = baselines.KADABRA(context.Background(), e.G, opt)
		}
		if err != nil {
			return nil, err
		}
		return &fullRun{values: res.BC, dur: time.Since(start), samples: res.Samples}, nil
	case AlgoSaPHyRaFull:
		all := make([]graph.Node, e.G.NumNodes())
		for i := range all {
			all[i] = graph.Node(i)
		}
		res, err := e.Prep.EstimateBC(context.Background(), all, core.BCOptions{
			Epsilon: cfg.Epsilon, Delta: cfg.Delta,
			Workers: cfg.Workers, Seed: cfg.Seed, MaxSamples: cfg.MaxSamples,
		})
		if err != nil {
			return nil, err
		}
		values := make([]float64, e.G.NumNodes())
		for i, v := range res.Nodes {
			values[v] = res.BC[i]
		}
		var samples int64
		if res.Est != nil {
			samples = res.Est.Samples
		}
		return &fullRun{values: values, dur: time.Since(start), samples: samples}, nil
	}
	return nil, fmt.Errorf("workload: %q is not a whole-network algorithm", algo)
}

// Fig5Row is one (subset size, algorithm) cell of Fig 5.
type Fig5Row struct {
	Network string
	Size    int
	Algo    Algo
	Series
}

// Fig5 fixes epsilon and sweeps the subset size.
func Fig5(e *Env, sizes []int, perSize int, cfg Config) ([]Fig5Row, error) {
	var rows []Fig5Row
	fulls := map[Algo]*fullRun{}
	for _, algo := range []Algo{AlgoABRA, AlgoKADABRA, AlgoSaPHyRaFull} {
		fr, err := e.fullEstimate(algo, cfg)
		if err != nil {
			return nil, err
		}
		fulls[algo] = fr
	}
	for _, size := range sizes {
		subsets := datasets.RandomSubsets(e.G.NumNodes(), size, perSize, cfg.Seed+int64(size))
		for algo, fr := range fulls {
			var bs []Bench
			for _, sub := range subsets {
				truth, ids := e.truthFor(sub)
				est := make([]float64, len(sub))
				for i, v := range sub {
					est[i] = fr.values[v]
				}
				bs = append(bs, Bench{Algo: algo, Duration: fr.dur, Samples: fr.samples,
					Subset: sub, Est: est, Rho: rank.Spearman(truth, est, ids)})
			}
			rows = append(rows, Fig5Row{Network: e.Name, Size: size, Algo: algo, Series: Aggregate(bs)})
		}
		var bs []Bench
		for i, sub := range subsets {
			c := cfg
			c.Seed = cfg.Seed + int64(i)
			b, err := e.RunOne(AlgoSaPHyRa, sub, c)
			if err != nil {
				return nil, err
			}
			bs = append(bs, b)
		}
		rows = append(rows, Fig5Row{Network: e.Name, Size: size, Algo: AlgoSaPHyRa, Series: Aggregate(bs)})
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].Size < rows[j].Size })
	return rows, nil
}

// Fig6Row is one algorithm's signed relative-error summary (Fig 6).
type Fig6Row struct {
	Network string
	Algo    Algo
	Summary *rank.ErrorSummary
}

// Fig6 builds the relative-error histograms at fixed epsilon and subset
// size, pooled over the subsets.
func Fig6(e *Env, subsets [][]graph.Node, cfg Config) ([]Fig6Row, error) {
	var rows []Fig6Row
	for _, algo := range []Algo{AlgoABRA, AlgoKADABRA, AlgoSaPHyRaFull} {
		fr, err := e.fullEstimate(algo, cfg)
		if err != nil {
			return nil, err
		}
		sum := rank.NewErrorSummary(25)
		for _, sub := range subsets {
			for _, v := range sub {
				sum.Add(e.Truth[v], fr.values[v])
			}
		}
		rows = append(rows, Fig6Row{Network: e.Name, Algo: algo, Summary: sum})
	}
	sum := rank.NewErrorSummary(25)
	for i, sub := range subsets {
		c := cfg
		c.Seed = cfg.Seed + int64(i)
		b, err := e.RunOne(AlgoSaPHyRa, sub, c)
		if err != nil {
			return nil, err
		}
		for j, v := range sub {
			sum.Add(e.Truth[v], b.Est[j])
		}
	}
	rows = append(rows, Fig6Row{Network: e.Name, Algo: AlgoSaPHyRa, Summary: sum})
	return rows, nil
}

// Fig7Row is one (area, algorithm) cell of the USA-road case study.
type Fig7Row struct {
	Area      string
	AreaSize  int
	Algo      Algo
	Duration  time.Duration
	Rho       float64
	Deviation float64 // average rank deviation (Fig 7a), fraction of k
}

// Fig7 runs KADABRA, SaPHyRa-full and SaPHyRa on each road area.
func Fig7(e *Env, areas []datasets.NamedSubset, cfg Config) ([]Fig7Row, error) {
	var rows []Fig7Row
	fulls := map[Algo]*fullRun{}
	for _, algo := range []Algo{AlgoKADABRA, AlgoSaPHyRaFull} {
		fr, err := e.fullEstimate(algo, cfg)
		if err != nil {
			return nil, err
		}
		fulls[algo] = fr
	}
	for _, area := range areas {
		truth, ids := e.truthFor(area.Nodes)
		for _, algo := range []Algo{AlgoKADABRA, AlgoSaPHyRaFull} {
			fr := fulls[algo]
			est := make([]float64, len(area.Nodes))
			for i, v := range area.Nodes {
				est[i] = fr.values[v]
			}
			rows = append(rows, Fig7Row{
				Area: area.Name, AreaSize: len(area.Nodes), Algo: algo,
				Duration:  fr.dur,
				Rho:       rank.Spearman(truth, est, ids),
				Deviation: rank.Deviation(truth, est, ids),
			})
		}
		b, err := e.RunOne(AlgoSaPHyRa, area.Nodes, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig7Row{
			Area: area.Name, AreaSize: len(area.Nodes), Algo: AlgoSaPHyRa,
			Duration:  b.Duration,
			Rho:       b.Rho,
			Deviation: rank.Deviation(truth, b.Est, ids),
		})
	}
	return rows, nil
}

// Table1Row is one network's VC-dimension bound comparison (Table I).
type Table1Row struct {
	Network       string
	RiondatoFull  int
	SaPHyRaFull   int
	SaPHyRaSubset int
	SaPHyRaLHop   int
	L             int
}

// Table1 computes the bound comparison for a random subset and an l-hop
// subset on the given environment.
func Table1(e *Env, subset []graph.Node, l int) Table1Row {
	d := e.Prep.D
	row := vc.TableI(d, subset, graph.DiameterUpperBound(e.G), 64)
	lhop := vc.LHop(l)
	if lhop > row.SaPHyRaFull {
		lhop = row.SaPHyRaFull
	}
	return Table1Row{
		Network:       e.Name,
		RiondatoFull:  row.RiondatoFull,
		SaPHyRaFull:   row.SaPHyRaFull,
		SaPHyRaSubset: row.SaPHyRaSubset,
		SaPHyRaLHop:   lhop,
		L:             l,
	}
}

// Table2Row summarizes one network stand-in against the paper's Table II.
type Table2Row struct {
	Network    string
	Nodes      int
	Edges      int64
	DiameterLB int32
	PaperNodes string
	PaperEdges string
	PaperDiam  int
	Blocks     int
	Cutpoints  int
}

// Table2 builds the networks-summary row (Table II) for an environment.
func Table2(e *Env, net datasets.Network) Table2Row {
	dec := e.Prep.D
	cut := 0
	for _, is := range dec.IsCut {
		if is {
			cut++
		}
	}
	return Table2Row{
		Network:    e.Name,
		Nodes:      e.G.NumNodes(),
		Edges:      e.G.NumEdges(),
		DiameterLB: graph.ApproxDiameter(e.G, 4, 17),
		PaperNodes: net.PaperNodes,
		PaperEdges: net.PaperEdges,
		PaperDiam:  net.PaperDiam,
		Blocks:     dec.NumBlocks,
		Cutpoints:  cut,
	}
}

// WriteTSV writes rows of tab-separated values with a header, a trivial
// shared formatting helper for the CLI and EXPERIMENTS.md generation.
func WriteTSV(w io.Writer, header []string, rows [][]string) error {
	for i, h := range header {
		if i > 0 {
			if _, err := fmt.Fprint(w, "\t"); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprint(w, h); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for _, row := range rows {
		for i, cell := range row {
			if i > 0 {
				if _, err := fmt.Fprint(w, "\t"); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprint(w, cell); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
