// Package params centralizes the validation of estimator options. The
// eps/delta/k/target bounds used to be checked ad hoc — or not at all — in
// each estimator entry point; every engine now funnels through the checks
// here, and the errors carry the offending field as structured data so a
// serving layer can classify them (bad request vs internal failure) with
// errors.As instead of string matching. See internal/serve for the consumer
// that motivated the split.
package params

import (
	"context"
	"errors"
	"fmt"
)

// Error reports an invalid caller-supplied option or target. It is the
// marker the HTTP layer maps to a 400 response: any error in whose chain an
// *Error appears was caused by the request, not by the server.
type Error struct {
	// Field names the offending input ("epsilon", "delta", "k", "targets").
	Field string
	// Msg describes the violated bound, without the field name.
	Msg string
}

// Error implements error.
func (e *Error) Error() string { return "invalid " + e.Field + ": " + e.Msg }

// Errorf builds an *Error for field with a formatted message.
func Errorf(field, format string, args ...any) *Error {
	return &Error{Field: field, Msg: fmt.Sprintf(format, args...)}
}

// IsBadInput reports whether err was caused by invalid caller input — i.e.
// whether an *Error appears in its chain.
func IsBadInput(err error) bool {
	var pe *Error
	return errors.As(err, &pe)
}

// CanceledError reports a computation aborted at a cancellation checkpoint:
// the caller's context was canceled (or its deadline expired) and the engine
// unwound without producing a result. The contract is all-or-nothing — an
// engine either returns a result bitwise-identical to the uncancelled run or
// a *CanceledError, never a partial estimate. Cause is the context's cause
// (context.Canceled or context.DeadlineExceeded unless a cancel cause was
// supplied), so errors.Is(err, context.DeadlineExceeded) distinguishes a
// deadline from an abandonment — the HTTP layer maps the former to 504 and
// the latter to 499 (client closed request); see internal/serve.
type CanceledError struct {
	// Cause is what canceled the computation.
	Cause error
}

// Error implements error.
func (e *CanceledError) Error() string { return "computation canceled: " + e.Cause.Error() }

// Unwrap exposes the cancellation cause to errors.Is/As.
func (e *CanceledError) Unwrap() error { return e.Cause }

// Interrupted is the engines' cancellation checkpoint: it returns a
// *CanceledError when ctx is done and nil otherwise. The nil path is one
// interface call (ctx.Err()), cheap enough for per-round and per-chunk
// polling on the hot paths.
func Interrupted(ctx context.Context) error {
	if ctx.Err() != nil {
		return &CanceledError{Cause: context.Cause(ctx)}
	}
	return nil
}

// IsCanceled reports whether err carries a cancellation — i.e. whether a
// *CanceledError appears in its chain.
func IsCanceled(err error) bool {
	var ce *CanceledError
	return errors.As(err, &ce)
}

// CheckEpsilon validates an additive-error target: eps must be in (0, 1).
// Callers resolve their documented default before calling (a zero value
// means "default", not "invalid").
func CheckEpsilon(eps float64) error {
	if !(eps > 0 && eps < 1) { // negated form rejects NaN too
		return Errorf("epsilon", "must be in (0,1), got %g", eps)
	}
	return nil
}

// CheckDelta validates a failure probability: delta must be in (0, 1).
func CheckDelta(delta float64) error {
	if !(delta > 0 && delta < 1) {
		return Errorf("delta", "must be in (0,1), got %g", delta)
	}
	return nil
}

// CheckEpsDelta validates both sampling parameters.
func CheckEpsDelta(eps, delta float64) error {
	if err := CheckEpsilon(eps); err != nil {
		return err
	}
	return CheckDelta(delta)
}

// CheckK validates a k-path walk length: k must be >= 1.
func CheckK(k int) error {
	if k < 1 {
		return Errorf("k", "must be >= 1, got %d", k)
	}
	return nil
}

// CheckTargets validates a target set against a graph of n nodes: it must
// be non-empty and every node id must be in [0, n). It returns the first
// violation, so estimators can call it before building any index keyed by
// target id.
func CheckTargets[N ~int32 | ~int](targets []N, n int) error {
	if len(targets) == 0 {
		return Errorf("targets", "empty target set")
	}
	for _, v := range targets {
		if int(v) < 0 || int(v) >= n {
			return Errorf("targets", "node %d out of range [0,%d)", v, n)
		}
	}
	return nil
}
