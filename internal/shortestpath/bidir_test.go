package shortestpath

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"saphyra/internal/graph"
	"saphyra/internal/testutil"
)

func TestBiBFSMatchesUnidirectional(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(30)
		g := testutil.RandomConnectedGraph(n, rng.Intn(2*n), seed)
		bi := NewBiBFS(n)
		d := NewDAG(n)
		for trial := 0; trial < 20; trial++ {
			s := graph.Node(rng.Intn(n))
			u := graph.Node(rng.Intn(n))
			if s == u {
				continue
			}
			d.Run(g, s)
			dist, sigma, ok := bi.Query(g, s, u)
			if !ok {
				t.Logf("seed %d: (%d,%d) not ok on connected graph", seed, s, u)
				return false
			}
			if dist != d.Dist[u] {
				t.Logf("seed %d: dist(%d,%d) = %d, want %d", seed, s, u, dist, d.Dist[u])
				return false
			}
			if math.Abs(sigma-d.Sigma[u]) > 1e-9*math.Max(1, d.Sigma[u]) {
				t.Logf("seed %d: sigma(%d,%d) = %g, want %g", seed, s, u, sigma, d.Sigma[u])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestBiBFSAdjacentPair(t *testing.T) {
	g := graph.Path(2)
	bi := NewBiBFS(2)
	dist, sigma, ok := bi.Query(g, 0, 1)
	if !ok || dist != 1 || sigma != 1 {
		t.Errorf("adjacent pair: dist=%d sigma=%g ok=%v", dist, sigma, ok)
	}
	p := bi.SamplePath(g, rand.New(rand.NewSource(1)))
	if len(p) != 2 || p[0] != 0 || p[1] != 1 {
		t.Errorf("path = %v, want [0 1]", p)
	}
}

func TestBiBFSSamePair(t *testing.T) {
	g := graph.Path(3)
	bi := NewBiBFS(3)
	if _, _, ok := bi.Query(g, 1, 1); ok {
		t.Error("s == t should not be ok")
	}
}

func TestBiBFSDisconnected(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	g := b.Build()
	bi := NewBiBFS(4)
	if _, _, ok := bi.Query(g, 0, 3); ok {
		t.Error("disconnected pair should not be ok")
	}
	// and a subsequent connected query still works (epoch reuse)
	if dist, _, ok := bi.Query(g, 0, 1); !ok || dist != 1 {
		t.Errorf("follow-up query broken: dist=%d ok=%v", dist, ok)
	}
}

func TestBiBFSSamplePathValid(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := testutil.RandomConnectedGraph(40, 60, 17)
	bi := NewBiBFS(40)
	for trial := 0; trial < 300; trial++ {
		s := graph.Node(rng.Intn(40))
		u := graph.Node(rng.Intn(40))
		if s == u {
			continue
		}
		dist, _, ok := bi.Query(g, s, u)
		if !ok {
			t.Fatal("connected pair not ok")
		}
		p := bi.SamplePath(g, rng)
		if int32(len(p)-1) != dist {
			t.Fatalf("path length %d != dist %d (pair %d,%d)", len(p)-1, dist, s, u)
		}
		if p[0] != s || p[len(p)-1] != u {
			t.Fatalf("endpoints %v, want %d..%d", p, s, u)
		}
		for i := 1; i < len(p); i++ {
			if !g.HasEdge(p[i-1], p[i]) {
				t.Fatalf("non-edge %d-%d in path", p[i-1], p[i])
			}
		}
	}
}

func TestBiBFSSamplePathUniform(t *testing.T) {
	// 6-cycle: two shortest paths between opposite nodes 0 and 3.
	g := graph.Cycle(6)
	bi := NewBiBFS(6)
	rng := rand.New(rand.NewSource(23))
	const N = 20000
	via1 := 0
	for i := 0; i < N; i++ {
		if _, _, ok := bi.Query(g, 0, 3); !ok {
			t.Fatal("query failed")
		}
		p := bi.SamplePath(g, rng)
		if p[1] == 1 {
			via1++
		}
	}
	frac := float64(via1) / N
	if math.Abs(frac-0.5) > 0.02 {
		t.Errorf("clockwise frequency = %g, want ~0.5", frac)
	}
}

func TestBiBFSSamplePathUniformOverAllPaths(t *testing.T) {
	// Verify per-path uniformity on a random graph by comparing empirical
	// frequencies of complete paths with 1/sigma.
	g := testutil.RandomConnectedGraph(12, 14, 5)
	bi := NewBiBFS(12)
	rng := rand.New(rand.NewSource(71))
	var s, u graph.Node
	var want [][]graph.Node
	// find a pair with at least 3 shortest paths
	for a := graph.Node(0); int(a) < 12 && len(want) < 3; a++ {
		for b := graph.Node(0); int(b) < 12; b++ {
			if a == b {
				continue
			}
			ps := testutil.AllShortestPaths(g, a, b)
			if len(ps) >= 3 {
				s, u, want = a, b, ps
				break
			}
		}
	}
	if len(want) < 3 {
		t.Skip("fixture has no pair with >= 3 shortest paths")
	}
	key := func(p []graph.Node) string {
		out := make([]byte, 0, len(p))
		for _, v := range p {
			out = append(out, byte(v))
		}
		return string(out)
	}
	counts := map[string]int{}
	const N = 30000
	for i := 0; i < N; i++ {
		bi.Query(g, s, u)
		counts[key(bi.SamplePath(g, rng))]++
	}
	if len(counts) != len(want) {
		t.Fatalf("observed %d distinct paths, want %d", len(counts), len(want))
	}
	exp := 1.0 / float64(len(want))
	for k, c := range counts {
		frac := float64(c) / N
		if math.Abs(frac-exp) > 0.025 {
			t.Errorf("path %q frequency %g, want ~%g", k, frac, exp)
		}
	}
}

func TestBiBFSEpochWraparound(t *testing.T) {
	g := graph.Cycle(5)
	bi := NewBiBFS(5)
	bi.epoch = ^uint32(0) - 1 // force wrap soon
	for i := 0; i < 5; i++ {
		if dist, _, ok := bi.Query(g, 0, 2); !ok || dist != 2 {
			t.Fatalf("query %d after wrap: dist=%d ok=%v", i, dist, ok)
		}
	}
}
