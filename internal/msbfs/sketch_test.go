package msbfs

import (
	"testing"

	"saphyra/internal/graph"
)

// TestSketchBoundsValid: on every graph shape, the sketch's lower and upper
// bounds must bracket the true BFS distance for every sampled pair, and
// FarAtLeast must never claim a near pair far.
func TestSketchBoundsValid(t *testing.T) {
	for name, g := range testGraphs(t) {
		off, nbr := g.CSR()
		n := g.NumNodes()
		s, err := NewSketch(off, nbr, 16)
		if err != nil {
			t.Fatal(err)
		}
		if len(s.Landmarks) != s.K || len(s.Dist) != n*s.K {
			t.Fatalf("%s: sketch shape K=%d landmarks=%d dist=%d", name, s.K, len(s.Landmarks), len(s.Dist))
		}
		dist := make([]int32, n)
		for _, u := range []graph.Node{0, graph.Node(n / 3), graph.Node(n - 1)} {
			dist = graph.BFSDistances(g, u, dist)
			for v := graph.Node(0); int(v) < n; v += 7 {
				d := dist[v]
				ub := s.UpperBound(u, v)
				if d >= 0 {
					if ub >= 0 && ub < d {
						t.Fatalf("%s: UpperBound(%d,%d) = %d < true %d", name, u, v, ub, d)
					}
					for dmin := int32(1); dmin <= d+2; dmin++ {
						if s.FarAtLeast(u, v, dmin) && dmin > d {
							t.Fatalf("%s: FarAtLeast(%d,%d,%d) true but true dist %d", name, u, v, dmin, d)
						}
					}
				} else {
					// Disconnected pair: the upper bound must not exist.
					if ub >= 0 {
						t.Fatalf("%s: UpperBound(%d,%d) = %d for disconnected pair", name, u, v, ub)
					}
				}
			}
		}
	}
}

// TestSketchDisconnectedFar: a landmark reaching one endpoint but not the
// other proves the pair disconnected, so FarAtLeast holds at any bound.
func TestSketchDisconnectedFar(t *testing.T) {
	// Two disjoint cliques.
	b := graph.NewBuilder(0)
	for i := graph.Node(0); i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			b.AddEdge(i, j)
			b.AddEdge(i+5, j+5)
		}
	}
	g := b.Build()
	off, nbr := g.CSR()
	s, err := NewSketch(off, nbr, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !s.FarAtLeast(0, 7, 1000) {
		t.Fatal("disconnected pair not classified far")
	}
	if s.FarAtLeast(0, 3, 2) {
		t.Fatal("same-clique pair (dist 1) classified far >= 2")
	}
}

// TestSketchDeterministicLandmarks: landmark choice is a pure function of
// the degree sequence — top-k by degree, ties by id.
func TestSketchDeterministicLandmarks(t *testing.T) {
	g := graph.BarabasiAlbert(300, 3, 13)
	off, nbr := g.CSR()
	a, err := NewSketch(off, nbr, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSketch(off, nbr, 8)
	if err != nil {
		t.Fatal(err)
	}
	for j := range a.Landmarks {
		if a.Landmarks[j] != b.Landmarks[j] {
			t.Fatalf("landmark %d differs: %d vs %d", j, a.Landmarks[j], b.Landmarks[j])
		}
		if j > 0 {
			dj := off[a.Landmarks[j]+1] - off[a.Landmarks[j]]
			dp := off[a.Landmarks[j-1]+1] - off[a.Landmarks[j-1]]
			if dp < dj || (dp == dj && a.Landmarks[j-1] >= a.Landmarks[j]) {
				t.Fatalf("landmarks not in (degree desc, id asc) order at %d", j)
			}
		}
	}
	for i := range a.Dist {
		if a.Dist[i] != b.Dist[i] {
			t.Fatalf("sketch row entry %d differs", i)
		}
	}
}

// TestSketchClampsK: k is clamped to [1, min(MaxLanes, n)].
func TestSketchClampsK(t *testing.T) {
	g := graph.Path(5)
	off, nbr := g.CSR()
	s, err := NewSketch(off, nbr, 100)
	if err != nil {
		t.Fatal(err)
	}
	if s.K != 5 {
		t.Fatalf("K = %d, want clamped to n = 5", s.K)
	}
	s, err = NewSketch(off, nbr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.K != 1 {
		t.Fatalf("K = %d, want clamped to 1", s.K)
	}
}
