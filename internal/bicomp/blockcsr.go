package bicomp

import (
	"fmt"
	"slices"

	"saphyra/internal/graph"
)

// BlockCSR is a target-independent, block-annotated view of the graph's
// adjacency structure. It re-orders every node's neighbor list so that
// neighbors sharing a biconnected block are contiguous ("runs"), and
// annotates each run with the block id and the owner's out-reach r-value in
// that block, and each grouped edge with the neighbor's r-value. Hot loops
// that previously resolved EdgeBlock per directed edge and OutReach.Of per
// endpoint (the exact 2-hop phase, the sampler's per-target tables) instead
// stream over the runs with zero lookups.
//
// Layout. Nbr and RNbr are edge-parallel arrays of length 2m aligned with
// each other; node u's grouped adjacency occupies the same CSR segment
// [G.AdjOffset(u), G.AdjOffset(u+1)) as in the underlying graph, permuted so
// that blocks appear in ascending id order and neighbors stay sorted within
// a run. The run index is itself a CSR over nodes: node u's runs are
// RunOff[u]..RunOff[u+1), and run j spans the edge range
// [RunStart[j], RunStart[j+1]) — runs are globally contiguous, so the
// sentinel entry RunStart[len] = 2m closes the last run.
//
// Memory: 24 bytes per directed edge (Nbr + RNbr at 4 each, NbrRun + Mate
// at 8 each — 48m bytes total) plus ~24 bytes per run; the number of runs
// is sum_u |NodeBlocks[u]| <= n + (cutpoint memberships), i.e. barely
// above n for real networks.
type BlockCSR struct {
	G *graph.Graph
	D *Decomposition
	O *OutReach

	// Nbr is the grouped adjacency: node u's neighbors, permuted block by
	// block. RNbr[i] = r_b(Nbr[i]) for the block b of the run containing i.
	Nbr  []graph.Node
	RNbr []int32

	// NbrRun[i] is the run index (into RunBlock/RunStart/...) of the
	// reciprocal side of grouped edge i: the run of node Nbr[i] for the
	// edge's block. Mate[i] is the absolute position of the edge's owner
	// within that run — since runs are sorted by node id, the owner-side
	// suffix "neighbors of Nbr[i] in this block with id greater than the
	// owner" is exactly [Mate[i]+1, RunStart[NbrRun[i]+1]), with no search.
	NbrRun []int64
	Mate   []int64

	// RunOff (len n+1) indexes runs per node; RunBlock[j] and RunR[j] are
	// the block id of run j and r_block(owner); RunStart (len runs+1, last
	// entry 2m) gives each run's edge range; RunDegSum[j] is the sum of
	// graph degrees over the run's neighbors (the cost model for the exact
	// phase's push/pull choice and chunk balancing).
	RunOff    []int64
	RunBlock  []int32
	RunR      []int32
	RunStart  []int64
	RunDegSum []int64
}

// NewBlockCSR builds the view in O(n + m) time. The per-node block lists of
// d are already sorted, so runs come out in ascending block order and the
// in-CSR-order fill keeps neighbors sorted within each run.
func NewBlockCSR(d *Decomposition, o *OutReach) *BlockCSR {
	g := d.G
	n := g.NumNodes()
	m2 := int64(2 * g.NumEdges())
	var runs int64
	for _, bs := range d.NodeBlocks {
		runs += int64(len(bs))
	}
	v := &BlockCSR{
		G:         g,
		D:         d,
		O:         o,
		Nbr:       make([]graph.Node, m2),
		RNbr:      make([]int32, m2),
		NbrRun:    make([]int64, m2),
		Mate:      make([]int64, m2),
		RunOff:    make([]int64, n+1),
		RunBlock:  make([]int32, runs),
		RunR:      make([]int32, runs),
		RunStart:  make([]int64, runs+1),
		RunDegSum: make([]int64, runs),
	}

	// blockPos[b] = position of block b within the current node's run list;
	// always written before read for each node, so no clearing is needed.
	blockPos := make([]int32, d.NumBlocks)
	// groupedPos maps each original CSR edge index to its grouped position,
	// so the reciprocal-edge pass below runs without searches.
	groupedPos := make([]int64, m2)
	// runOf[p] = run containing grouped position p (filled during grouping).
	runOf := make([]int64, m2)
	var cnt, cursor []int64

	var run int64
	for u := 0; u < n; u++ {
		v.RunOff[u] = run
		bs := d.NodeBlocks[u]
		if len(bs) == 0 {
			continue // isolated node: no edges, no runs
		}
		if cap(cnt) < len(bs) {
			cnt = make([]int64, len(bs))
			cursor = make([]int64, len(bs))
		}
		cnt = cnt[:len(bs)]
		cursor = cursor[:len(bs)]
		for k, b := range bs {
			v.RunBlock[run+int64(k)] = b
			v.RunR[run+int64(k)] = int32(o.Of(b, graph.Node(u)))
			blockPos[b] = int32(k)
			cnt[k] = 0
		}
		base := g.AdjOffset(graph.Node(u))
		nbrs := g.Neighbors(graph.Node(u))
		for i := range nbrs {
			cnt[blockPos[d.EdgeBlock[base+int64(i)]]]++
		}
		acc := base
		for k := range bs {
			v.RunStart[run+int64(k)] = acc
			cursor[k] = acc
			acc += cnt[k]
		}
		for i, w := range nbrs {
			b := d.EdgeBlock[base+int64(i)]
			k := blockPos[b]
			p := cursor[k]
			cursor[k] = p + 1
			v.Nbr[p] = w
			v.RNbr[p] = int32(o.Of(b, w))
			groupedPos[base+int64(i)] = p
			runOf[p] = run + int64(k)
			v.RunDegSum[run+int64(k)] += int64(g.Degree(w))
		}
		run += int64(len(bs))
	}
	v.RunOff[n] = run
	v.RunStart[run] = m2

	// Reciprocal pass: for grouped edge p = (u -> w), locate the reverse
	// edge (w -> u) via the sorted original adjacency and record its grouped
	// run and position.
	for u := 0; u < n; u++ {
		base := g.AdjOffset(graph.Node(u))
		for i, w := range g.Neighbors(graph.Node(u)) {
			p := groupedPos[base+int64(i)]
			rev := groupedPos[g.EdgeIndex(w, graph.Node(u))]
			v.NbrRun[p] = runOf[rev]
			v.Mate[p] = rev
		}
	}
	return v
}

// Runs returns the run index range of node u: u's runs are j in [lo, hi).
func (v *BlockCSR) Runs(u graph.Node) (lo, hi int64) {
	return v.RunOff[u], v.RunOff[u+1]
}

// RunEdges returns the edge index range of run j into Nbr/RNbr.
func (v *BlockCSR) RunEdges(j int64) (lo, hi int64) {
	return v.RunStart[j], v.RunStart[j+1]
}

// FindRun returns the run index of node u for block b, or -1 if u has no
// edges in b. Runs are sorted by block id: the typical 1-3 entry list is
// scanned linearly (with early exit), hub cutpoints bridging thousands of
// pendant blocks fall back to binary search.
func (v *BlockCSR) FindRun(u graph.Node, b int32) int64 {
	lo, hi := v.RunOff[u], v.RunOff[u+1]
	if hi-lo <= 8 {
		for j := lo; j < hi; j++ {
			switch bb := v.RunBlock[j]; {
			case bb == b:
				return j
			case bb > b:
				return -1
			}
		}
		return -1
	}
	blocks := v.RunBlock[lo:hi]
	if k, ok := slices.BinarySearch(blocks, b); ok {
		return lo + int64(k)
	}
	return -1
}

// Validate checks the view against the decomposition it was built from:
// every run covers exactly the node's edges of its block, annotations match
// OutReach, and runs tile the CSR segments. For tests and debugging.
func (v *BlockCSR) Validate() error {
	g, d, o := v.G, v.D, v.O
	n := g.NumNodes()
	if got, want := v.RunOff[n], int64(len(v.RunBlock)); got != want {
		return fmt.Errorf("bicomp: RunOff[n] = %d, want %d runs", got, want)
	}
	if got, want := v.RunStart[len(v.RunStart)-1], int64(2*g.NumEdges()); got != want {
		return fmt.Errorf("bicomp: RunStart sentinel = %d, want 2m = %d", got, want)
	}
	for u := graph.Node(0); int(u) < n; u++ {
		lo, hi := v.Runs(u)
		if int(hi-lo) != len(d.NodeBlocks[u]) {
			return fmt.Errorf("bicomp: node %d has %d runs, want %d blocks", u, hi-lo, len(d.NodeBlocks[u]))
		}
		if lo < hi && v.RunStart[lo] != g.AdjOffset(u) {
			return fmt.Errorf("bicomp: node %d first run starts at %d, want %d", u, v.RunStart[lo], g.AdjOffset(u))
		}
		var degSeen int64
		for j := lo; j < hi; j++ {
			b := v.RunBlock[j]
			if b != d.NodeBlocks[u][j-lo] {
				return fmt.Errorf("bicomp: node %d run %d block %d != NodeBlocks %d", u, j-lo, b, d.NodeBlocks[u][j-lo])
			}
			if int64(v.RunR[j]) != o.Of(b, u) {
				return fmt.Errorf("bicomp: node %d block %d RunR %d != Of %d", u, b, v.RunR[j], o.Of(b, u))
			}
			elo, ehi := v.RunEdges(j)
			var degSum int64
			for i := elo; i < ehi; i++ {
				w := v.Nbr[i]
				if i > elo && v.Nbr[i-1] >= w {
					return fmt.Errorf("bicomp: node %d run of block %d not sorted", u, b)
				}
				if got := d.BlockOfEdge(u, w); got != b {
					return fmt.Errorf("bicomp: edge (%d,%d) grouped under block %d, EdgeBlock says %d", u, w, b, got)
				}
				if int64(v.RNbr[i]) != o.Of(b, w) {
					return fmt.Errorf("bicomp: edge (%d,%d) RNbr %d != Of %d", u, w, v.RNbr[i], o.Of(b, w))
				}
				jr := v.NbrRun[i]
				if want := v.FindRun(w, b); jr != want {
					return fmt.Errorf("bicomp: edge (%d,%d) NbrRun %d != %d", u, w, jr, want)
				}
				mate := v.Mate[i]
				if mate < v.RunStart[jr] || mate >= v.RunStart[jr+1] || v.Nbr[mate] != u {
					return fmt.Errorf("bicomp: edge (%d,%d) Mate %d does not point back at %d", u, w, mate, u)
				}
				degSum += int64(g.Degree(w))
			}
			if degSum != v.RunDegSum[j] {
				return fmt.Errorf("bicomp: node %d block %d RunDegSum %d != %d", u, b, v.RunDegSum[j], degSum)
			}
			degSeen += ehi - elo
		}
		if degSeen != int64(g.Degree(u)) {
			return fmt.Errorf("bicomp: node %d runs cover %d edges, degree %d", u, degSeen, g.Degree(u))
		}
	}
	return nil
}
