package loadgen

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"math/rand/v2"
	"slices"
	"time"

	"saphyra/internal/alias"
)

// EventKind distinguishes schedule entries.
type EventKind uint8

const (
	// EventRank is a POST /v1/rank subset query.
	EventRank EventKind = iota
	// EventTopK is a GET /v1/topk full-network query.
	EventTopK
	// EventReload is a hot reload (POST /admin/reload or Server.Reload).
	EventReload
)

// Event is one scheduled action. The full request contract is materialized
// at build time — nothing about an event depends on run-time state, which
// is what makes the schedule a pure function of (Mix, ids, seed).
type Event struct {
	// At is the offset from run start at which the event fires.
	At time.Duration
	// Kind selects the action; Class indexes Mix.Classes (-1 for reloads).
	Kind  EventKind
	Class int
	// Seq is the event's index in the merged schedule, assigned after the
	// deterministic sort — the verification sampler keys off it.
	Seq int

	// Request contract (EventRank / EventTopK).
	Method  string
	Targets []int64 // original node ids (EventRank)
	TopK    int     // result rows requested (EventTopK)
	Eps     float64
	Delta   float64
	K       int
	Seed    int64

	// Policy headers.
	TimeoutMs int
	DegradeMs int
	ClientID  string
}

// Schedule is a fully materialized, deterministic request timeline.
type Schedule struct {
	Mix    Mix
	Seed   int64
	Events []Event
}

// topKRows is the k requested by full-network top-k events.
const topKRows = 10

// classRNG derives the dedicated PCG stream for class c of a build: streams
// are independent per class, so adding a class never perturbs another
// class's draws.
func classRNG(seed int64, c int) *rand.Rand {
	return rand.New(rand.NewPCG(uint64(seed), uint64(c)*0x9e3779b97f4a7c15+0x2545f4914f6cdd1d))
}

// Build materializes the mix into a schedule over the given original node
// ids, using one seed for every stochastic choice. Equal (mix, ids, seed)
// yield byte-identical schedules (see Schedule.Encode); the determinism
// test pins this.
func Build(m Mix, ids []int64, seed int64) (*Schedule, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("loadgen: no node ids")
	}
	type tagged struct {
		ev    Event
		class int
		idx   int
	}
	var all []tagged
	for ci := range m.Classes {
		c := &m.Classes[ci]
		rng := classRNG(seed, ci)
		rate := c.Share * m.Rate

		// The class's target-set pool, drawn before arrivals so pool shape
		// and arrival process are independent choices of one stream.
		setSize := c.Targets
		if setSize > len(ids) {
			setSize = len(ids)
		}
		var pool [][]int64
		var zipf *alias.Table
		if c.Targets > 0 {
			pool = make([][]int64, c.Pool)
			for p := range pool {
				pool[p] = drawSet(rng, ids, setSize)
			}
			w := make([]float64, c.Pool)
			for i := range w {
				w[i] = math.Pow(float64(i+1), -c.ZipfS)
			}
			zipf = alias.New(w)
		}

		// Open-loop arrivals across the full span.
		var t time.Duration
		for i := 0; ; i++ {
			switch c.Arrival {
			case Poisson:
				gap := -math.Log(1-rng.Float64()) / rate
				t += time.Duration(gap * float64(time.Second))
			default: // Constant
				t = time.Duration((float64(i) + 0.5) / rate * float64(time.Second))
			}
			if t >= m.Duration {
				break
			}
			ev := Event{
				At: t, Class: ci, Method: c.Method,
				Eps: c.Eps, Delta: c.Delta, K: c.K,
				TimeoutMs: c.TimeoutMs, DegradeMs: c.DegradeMs, ClientID: c.ClientID,
			}
			if c.Targets == 0 {
				ev.Kind = EventTopK
				ev.TopK = topKRows
				ev.Seed = c.Seed
			} else {
				ev.Kind = EventRank
				p := zipf.Draw(rng.Float64())
				ev.Targets = pool[p]
				if c.FreshSeed {
					ev.Seed = c.Seed + int64(i) + 1
				} else {
					ev.Seed = c.Seed + int64(p)
				}
			}
			all = append(all, tagged{ev: ev, class: ci, idx: i})
		}
	}
	for si, st := range m.Storms {
		for i := 0; i < st.Count; i++ {
			all = append(all, tagged{
				ev:    Event{At: st.At + time.Duration(i)*st.Every, Kind: EventReload, Class: -1},
				class: len(m.Classes) + si,
				idx:   i,
			})
		}
	}
	// Deterministic merge: time order, ties broken by (class, index) so the
	// schedule is a total order independent of append order.
	slices.SortStableFunc(all, func(a, b tagged) int {
		switch {
		case a.ev.At != b.ev.At:
			return int(a.ev.At - b.ev.At)
		case a.class != b.class:
			return a.class - b.class
		default:
			return a.idx - b.idx
		}
	})
	s := &Schedule{Mix: m, Seed: seed, Events: make([]Event, len(all))}
	for i := range all {
		s.Events[i] = all[i].ev
		s.Events[i].Seq = i
	}
	return s, nil
}

// drawSet picks size distinct ids by rejection, in draw order.
func drawSet(rng *rand.Rand, ids []int64, size int) []int64 {
	seen := make(map[int]struct{}, size)
	out := make([]int64, 0, size)
	for len(out) < size {
		i := rng.IntN(len(ids))
		if _, dup := seen[i]; dup {
			continue
		}
		seen[i] = struct{}{}
		out = append(out, ids[i])
	}
	return out
}

// Requests counts non-reload events.
func (s *Schedule) Requests() int {
	n := 0
	for i := range s.Events {
		if s.Events[i].Kind != EventReload {
			n++
		}
	}
	return n
}

// Encode serializes the schedule into a canonical byte string: every event
// field in declaration order, fixed-width little-endian, strings
// length-prefixed. Two schedules are the same run if and only if their
// encodings are equal — the unit the determinism contract is stated (and
// tested) in.
func (s *Schedule) Encode() []byte {
	var b bytes.Buffer
	b.WriteString("saphyra.loadgen/v1\x00")
	writeStr := func(v string) {
		binary.Write(&b, binary.LittleEndian, int32(len(v)))
		b.WriteString(v)
	}
	writeStr(s.Mix.Name)
	binary.Write(&b, binary.LittleEndian, s.Seed)
	binary.Write(&b, binary.LittleEndian, int64(len(s.Events)))
	for i := range s.Events {
		ev := &s.Events[i]
		binary.Write(&b, binary.LittleEndian, int64(ev.At))
		b.WriteByte(byte(ev.Kind))
		binary.Write(&b, binary.LittleEndian, int32(ev.Class))
		writeStr(ev.Method)
		binary.Write(&b, binary.LittleEndian, int32(len(ev.Targets)))
		for _, t := range ev.Targets {
			binary.Write(&b, binary.LittleEndian, t)
		}
		binary.Write(&b, binary.LittleEndian, int32(ev.TopK))
		binary.Write(&b, binary.LittleEndian, math.Float64bits(ev.Eps))
		binary.Write(&b, binary.LittleEndian, math.Float64bits(ev.Delta))
		binary.Write(&b, binary.LittleEndian, int32(ev.K))
		binary.Write(&b, binary.LittleEndian, ev.Seed)
		binary.Write(&b, binary.LittleEndian, int32(ev.TimeoutMs))
		binary.Write(&b, binary.LittleEndian, int32(ev.DegradeMs))
		writeStr(ev.ClientID)
	}
	return b.Bytes()
}
