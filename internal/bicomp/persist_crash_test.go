package bicomp

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"saphyra/internal/faultinject"
	"saphyra/internal/graph"
)

// TestChecksumCatchesBitRot: any flipped bit in the body must fail the
// open-time crc64 check — the defense a size check cannot provide.
func TestChecksumCatchesBitRot(t *testing.T) {
	v := buildView(t, graph.BarabasiAlbert(200, 2, 4))
	dir := t.TempDir()
	path := filepath.Join(dir, "view.sbcv")
	if err := v.WriteFile(path, nil); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, off := range []int{headerSize + 5, len(b) / 2, len(b) - 9} {
		bad := append([]byte(nil), b...)
		bad[off] ^= 0x01
		p := filepath.Join(dir, "rot.sbcv")
		if err := os.WriteFile(p, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenMapped(p); err == nil {
			t.Errorf("offset %d: bit rot accepted", off)
		} else if !strings.Contains(err.Error(), "checksum") {
			t.Errorf("offset %d: error %q does not mention checksum", off, err)
		}
	}
}

// TestWriteFileAtomicPublish: WriteFile must replace an existing view
// in one rename — readers mapping the old file keep their pages, the
// directory never holds a half-written view under the target name, and no
// temp files leak.
func TestWriteFileAtomicPublish(t *testing.T) {
	v := buildView(t, graph.BarabasiAlbert(150, 2, 6))
	dir := t.TempDir()
	path := filepath.Join(dir, "view.sbcv")
	if err := v.WriteFile(path, nil); err != nil {
		t.Fatal(err)
	}
	m, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	oldN := m.View.G.NumNodes()

	// Overwrite with a different view while the old one is mapped.
	v2 := buildView(t, graph.BarabasiAlbert(300, 3, 7))
	if err := v2.WriteFile(path, nil); err != nil {
		t.Fatalf("overwrite publish: %v", err)
	}
	if got := m.View.G.NumNodes(); got != oldN {
		t.Fatalf("mapped view changed under reader: %d nodes, had %d", got, oldN)
	}
	m2, err := OpenMapped(path)
	if err != nil {
		t.Fatalf("reopening published view: %v", err)
	}
	defer m2.Close()
	if m2.View.G.NumNodes() != v2.G.NumNodes() {
		t.Fatalf("published view has %d nodes, want %d", m2.View.G.NumNodes(), v2.G.NumNodes())
	}

	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.Name() != "view.sbcv" {
			t.Fatalf("publish left residue %q in the directory", e.Name())
		}
	}

	if err := v.WriteFile(filepath.Join(dir, "no-such-dir", "x.sbcv"), nil); err == nil {
		t.Fatal("WriteFile into a missing directory succeeded")
	}
}

// TestOpenMappingsBalanced: the process-wide mapping counter must go +1 on
// open, -1 on first Close, and stay put on failed opens and double closes.
func TestOpenMappingsBalanced(t *testing.T) {
	v := buildView(t, graph.Path(20))
	path := filepath.Join(t.TempDir(), "view.sbcv")
	if err := v.WriteFile(path, nil); err != nil {
		t.Fatal(err)
	}
	base := OpenMappings()
	m, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := OpenMappings(); got != base+1 {
		t.Fatalf("OpenMappings = %d after open, want %d", got, base+1)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil { // idempotent, must not double-decrement
		t.Fatal(err)
	}
	if got := OpenMappings(); got != base {
		t.Fatalf("OpenMappings = %d after close, want %d", got, base)
	}

	if _, err := OpenMapped(filepath.Join(t.TempDir(), "missing.sbcv")); err == nil {
		t.Fatal("missing file accepted")
	}
	if got := OpenMappings(); got != base {
		t.Fatalf("OpenMappings = %d after failed open, want %d", got, base)
	}
}

// TestOpenMappedFaultPoint: the bicomp.openmapped fault point must surface
// as a clean open error and leak no mapping.
func TestOpenMappedFaultPoint(t *testing.T) {
	defer faultinject.Reset()
	v := buildView(t, graph.Path(10))
	path := filepath.Join(t.TempDir(), "view.sbcv")
	if err := v.WriteFile(path, nil); err != nil {
		t.Fatal(err)
	}
	base := OpenMappings()
	boom := errors.New("injected mmap failure")
	faultinject.Enable()
	faultinject.Set("bicomp.openmapped", faultinject.Fault{Err: boom})
	if _, err := OpenMapped(path); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want injected failure", err)
	}
	faultinject.Reset()
	if got := OpenMappings(); got != base {
		t.Fatalf("OpenMappings = %d after injected failure, want %d", got, base)
	}
	m, err := OpenMapped(path)
	if err != nil {
		t.Fatalf("open after reset: %v", err)
	}
	m.Close()
}
