package saphyra

import (
	"math"
	"strings"
	"testing"
)

func TestRankSubsetSaPHyRa(t *testing.T) {
	g := Generate.BarabasiAlbert(200, 3, 1)
	truth := ExactBC(g, 2)
	targets := []Node{3, 50, 100, 150, 199}
	res, err := RankSubset(g, targets, Options{Epsilon: 0.05, Delta: 0.01, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != 5 || len(res.Scores) != 5 || len(res.Rank) != 5 {
		t.Fatalf("result shape: %d nodes, %d scores, %d ranks", len(res.Nodes), len(res.Scores), len(res.Rank))
	}
	for i, v := range res.Nodes {
		if math.Abs(res.Scores[i]-truth[v]) > 0.05 {
			t.Errorf("node %d: score %g truth %g", v, res.Scores[i], truth[v])
		}
	}
	// ranks are a permutation of 1..5
	seen := map[int]bool{}
	for _, r := range res.Rank {
		if r < 1 || r > 5 || seen[r] {
			t.Fatalf("bad rank set %v", res.Rank)
		}
		seen[r] = true
	}
	if res.Duration <= 0 {
		t.Error("duration not recorded")
	}
}

func TestRankSubsetBaselines(t *testing.T) {
	g := Generate.BarabasiAlbert(100, 3, 2)
	truth := ExactBC(g, 2)
	for _, m := range []Method{MethodABRA, MethodKADABRA} {
		res, err := RankSubset(g, []Node{1, 20, 40}, Options{Epsilon: 0.05, Delta: 0.01, Seed: 2, Method: m})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		for i, v := range res.Nodes {
			if math.Abs(res.Scores[i]-truth[v]) > 0.05 {
				t.Errorf("%v node %d: score %g truth %g", m, v, res.Scores[i], truth[v])
			}
		}
	}
}

func TestRankAll(t *testing.T) {
	g := Generate.ErdosRenyi(60, 150, 3)
	truth := ExactBC(g, 2)
	res, err := RankAll(g, Options{Epsilon: 0.05, Delta: 0.01, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != 60 {
		t.Fatalf("nodes = %d", len(res.Nodes))
	}
	for i, v := range res.Nodes {
		if math.Abs(res.Scores[i]-truth[v]) > 0.05 {
			t.Errorf("node %d: score %g truth %g", v, res.Scores[i], truth[v])
		}
	}
}

func TestRankSubsetErrors(t *testing.T) {
	g := Generate.Grid2D(3, 3)
	if _, err := RankSubset(g, nil, Options{}); err == nil {
		t.Error("empty targets: want error")
	}
	if _, err := RankSubset(g, []Node{100}, Options{}); err == nil {
		t.Error("out of range: want error")
	}
	if _, err := RankSubset(g, []Node{1}, Options{Method: Method(42)}); err == nil {
		t.Error("unknown method: want error")
	}
}

func TestMethodString(t *testing.T) {
	if MethodSaPHyRa.String() != "SaPHyRa" || MethodABRA.String() != "ABRA" ||
		MethodKADABRA.String() != "KADABRA" {
		t.Error("method names wrong")
	}
	if !strings.Contains(Method(9).String(), "9") {
		t.Error("unknown method string should include the value")
	}
}

func TestPreprocessedReuse(t *testing.T) {
	g := Generate.PowerLawCluster(150, 4, 0.3, 4)
	truth := ExactBC(g, 2)
	p := Preprocess(g)
	for trial := 0; trial < 3; trial++ {
		targets := []Node{Node(trial * 10), Node(trial*10 + 5), Node(trial*10 + 9)}
		res, err := p.RankSubset(targets, Options{Epsilon: 0.05, Delta: 0.01, Seed: int64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range res.Nodes {
			if math.Abs(res.Scores[i]-truth[v]) > 0.05 {
				t.Errorf("trial %d node %d: score %g truth %g", trial, v, res.Scores[i], truth[v])
			}
		}
	}
}

func TestReadEdgeListFacade(t *testing.T) {
	g, orig, err := ReadEdgeList(strings.NewReader("0 1\n1 2\n2 3\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 4 || len(orig) != 4 {
		t.Fatalf("n = %d", g.NumNodes())
	}
}

func TestRankKPath(t *testing.T) {
	g := Generate.WattsStrogatz(80, 3, 0.1, 5)
	res, err := RankKPath(g, []Node{1, 10, 20}, 3, Options{Epsilon: 0.05, Delta: 0.05, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scores) != 3 {
		t.Fatalf("scores = %d", len(res.Scores))
	}
	for _, s := range res.Scores {
		if s < 0 || s > 1 {
			t.Errorf("kpath score %g out of [0,1]", s)
		}
	}
}

func TestRankCloseness(t *testing.T) {
	g := Generate.BarabasiAlbert(90, 3, 6)
	res, err := RankCloseness(g, []Node{0, 44, 89}, Options{Epsilon: 0.05, Delta: 0.05, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scores) != 3 {
		t.Fatalf("scores = %d", len(res.Scores))
	}
}

func TestSpearmanFacade(t *testing.T) {
	truth := []float64{3, 2, 1}
	est := []float64{30, 20, 10}
	if rho := Spearman(truth, est, []int32{0, 1, 2}); rho != 1 {
		t.Errorf("rho = %g, want 1", rho)
	}
	if tau := KendallTau(truth, est, []int32{0, 1, 2}); tau != 1 {
		t.Errorf("tau = %g, want 1", tau)
	}
}

func TestRankingOrderMatchesTruthOnEasyCase(t *testing.T) {
	// Barbell: bridge nodes have enormous betweenness; clique interiors
	// almost none. Ranking must place the bridge first.
	g := func() *Graph {
		b := NewBuilder(0)
		// clique A: 0..4, clique B: 5..9, bridge node 10
		for i := Node(0); i < 5; i++ {
			for j := i + 1; j < 5; j++ {
				b.AddEdge(i, j)
			}
		}
		for i := Node(5); i < 10; i++ {
			for j := i + 1; j < 10; j++ {
				b.AddEdge(i, j)
			}
		}
		b.AddEdge(0, 10)
		b.AddEdge(10, 5)
		return b.Build()
	}()
	res, err := RankSubset(g, []Node{1, 6, 10}, Options{Epsilon: 0.05, Delta: 0.01, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.Nodes {
		if v == 10 && res.Rank[i] != 1 {
			t.Errorf("bridge node rank = %d, want 1", res.Rank[i])
		}
	}
}
