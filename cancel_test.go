package saphyra

import (
	"context"
	"errors"
	"testing"
	"time"

	"saphyra/internal/params"
)

// TestCancellationAllOrNothing is the cancellation contract gate (in the CI
// -race list): contexts canceled at arbitrary points mid-computation —
// mid-exact-phase and mid-sampling — must yield either a clean typed
// cancellation error or a full result bitwise-identical to the uncancelled
// run, never a partial estimate. Exercised across all three measures at
// workers {1, 8}, with cancellation delays swept from "immediately" past
// the full computation time.
func TestCancellationAllOrNothing(t *testing.T) {
	g := Generate.BarabasiAlbert(400, 3, 17)
	targets := []Node{2, 40, 99, 250, 399}
	queries := map[string]Query{
		"betweenness": {Measure: Betweenness, Targets: targets, Epsilon: 0.01, Delta: 0.05, Seed: 4},
		"kpath":       {Measure: KPath, Targets: targets, K: 4, Epsilon: 0.02, Delta: 0.05, Seed: 4},
		"closeness":   {Measure: Closeness, Targets: targets, Epsilon: 0.03, Delta: 0.05, Seed: 4},
	}
	for name, q := range queries {
		for _, workers := range []int{1, 8} {
			q := q
			q.Workers = workers
			ranker := NewRanker(g) // fresh per combo: preprocessing under cancellation races too
			ref, err := ranker.Rank(context.Background(), q)
			if err != nil {
				t.Fatalf("%s/w%d reference: %v", name, workers, err)
			}
			var canceled, completed int
			for trial := 0; trial < 12; trial++ {
				// Sweep the cancel point across the computation: trial 0
				// cancels before any work, later trials progressively
				// deeper, the last ones typically after completion.
				delay := time.Duration(trial) * ref.Duration / 8
				ctx, cancel := context.WithTimeout(context.Background(), delay)
				res, err := ranker.Rank(ctx, q)
				cancel()
				switch {
				case err == nil:
					completed++
					compareBitwise(t, name, res, ref)
				case params.IsCanceled(err) && errors.Is(err, context.DeadlineExceeded):
					canceled++
					if res != nil {
						t.Fatalf("%s/w%d trial %d: cancellation returned a partial result", name, workers, trial)
					}
				default:
					t.Fatalf("%s/w%d trial %d: unexpected error %v", name, workers, trial, err)
				}
			}
			if canceled == 0 {
				t.Logf("%s/w%d: no trial observed a cancellation (computation too fast) — %d completed bitwise-identical", name, workers, completed)
			}
		}
	}
}

// TestCancellationBaselines: the whole-network baselines honor the same
// contract at their round checkpoints.
func TestCancellationBaselines(t *testing.T) {
	g := Generate.BarabasiAlbert(300, 3, 9)
	r := NewRanker(g)
	for _, alg := range []Algorithm{AlgABRA, AlgKADABRA} {
		q := Query{Measure: Betweenness, Algorithm: alg, Targets: []Node{1, 2, 3}, Epsilon: 0.05, Delta: 0.05, Seed: 2}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if res, err := r.Rank(ctx, q); err == nil || res != nil || !params.IsCanceled(err) {
			t.Fatalf("%v: pre-canceled ctx returned res=%v err=%v", alg, res, err)
		}
		// And uncancelled still completes.
		if _, err := r.Rank(context.Background(), q); err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
	}
}

// TestCancellationDuringPreprocessing: the exact-phase engine inside the
// betweenness preprocessing path is also checkpointed — a deadline that
// fires while newBCSpace runs the 2-hop enumeration aborts cleanly.
func TestCancellationDuringPreprocessing(t *testing.T) {
	g := Generate.PowerLawCluster(800, 6, 0.3, 3)
	all := make([]Node, g.NumNodes())
	for i := range all {
		all[i] = Node(i)
	}
	r := NewRanker(g)
	q := Query{Measure: Betweenness, Targets: all, Epsilon: 0.05, Delta: 0.05, Seed: 1, Workers: 8}
	ref, err := r.Rank(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 8; trial++ {
		ctx, cancel := context.WithTimeout(context.Background(), time.Duration(trial)*ref.Duration/6)
		res, err := r.Rank(ctx, q)
		cancel()
		if err != nil {
			if !params.IsCanceled(err) {
				t.Fatalf("trial %d: %v", trial, err)
			}
			continue
		}
		compareBitwise(t, "full-network bc", res, ref)
	}
}
