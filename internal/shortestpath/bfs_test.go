package shortestpath

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"saphyra/internal/graph"
	"saphyra/internal/testutil"
)

func TestDAGPathCounts(t *testing.T) {
	// 4-cycle: two shortest paths between opposite corners.
	g := graph.Cycle(4)
	d := NewDAG(4)
	d.Run(g, 0)
	if d.Sigma[2] != 2 {
		t.Errorf("sigma(0->2) = %g, want 2", d.Sigma[2])
	}
	if d.Sigma[1] != 1 || d.Sigma[3] != 1 {
		t.Errorf("sigma to neighbors = %g, %g, want 1, 1", d.Sigma[1], d.Sigma[3])
	}
	if d.Dist[2] != 2 {
		t.Errorf("dist(0->2) = %d, want 2", d.Dist[2])
	}
}

func TestDAGUnreachable(t *testing.T) {
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	g := b.Build()
	d := NewDAG(3)
	d.Run(g, 0)
	if d.Dist[2] != -1 || d.Sigma[2] != 0 {
		t.Errorf("unreachable node: dist=%d sigma=%g", d.Dist[2], d.Sigma[2])
	}
	if d.SamplePathTo(g, 2, rand.New(rand.NewSource(1))) != nil {
		t.Error("SamplePathTo unreachable should return nil")
	}
}

func TestDAGSigmaMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		g := testutil.RandomConnectedGraph(n, rng.Intn(2*n), seed)
		d := NewDAG(n)
		s := graph.Node(rng.Intn(n))
		d.Run(g, s)
		for v := graph.Node(0); int(v) < n; v++ {
			if v == s {
				continue
			}
			want := testutil.CountShortestPaths(g, s, v)
			if math.Abs(d.Sigma[v]-want) > 1e-9 {
				t.Logf("seed %d: sigma(%d->%d) = %g, want %g", seed, s, v, d.Sigma[v], want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDAGOrderNonDecreasing(t *testing.T) {
	g := graph.BarabasiAlbert(200, 3, 4)
	d := NewDAG(200)
	d.Run(g, 0)
	for i := 1; i < len(d.Order); i++ {
		if d.Dist[d.Order[i]] < d.Dist[d.Order[i-1]] {
			t.Fatal("BFS order not sorted by distance")
		}
	}
	if len(d.Order) != 200 {
		t.Errorf("order covers %d nodes, want 200 (connected)", len(d.Order))
	}
}

func TestSamplePathToIsValidShortestPath(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := testutil.RandomConnectedGraph(25, 30, 99)
	d := NewDAG(25)
	d.Run(g, 3)
	for trial := 0; trial < 200; trial++ {
		tgt := graph.Node(rng.Intn(25))
		if tgt == 3 {
			continue
		}
		p := d.SamplePathTo(g, tgt, rng)
		if int32(len(p)-1) != d.Dist[tgt] {
			t.Fatalf("path length %d != dist %d", len(p)-1, d.Dist[tgt])
		}
		if p[0] != 3 || p[len(p)-1] != tgt {
			t.Fatalf("endpoints %d..%d, want 3..%d", p[0], p[len(p)-1], tgt)
		}
		for i := 1; i < len(p); i++ {
			if !g.HasEdge(p[i-1], p[i]) {
				t.Fatalf("non-edge in path: %d-%d", p[i-1], p[i])
			}
		}
	}
}

func TestSamplePathToUniform(t *testing.T) {
	// 4-cycle, sample paths 0 -> 2: both 0-1-2 and 0-3-2 should appear with
	// frequency ~1/2.
	g := graph.Cycle(4)
	d := NewDAG(4)
	d.Run(g, 0)
	rng := rand.New(rand.NewSource(11))
	const N = 20000
	via1 := 0
	for i := 0; i < N; i++ {
		p := d.SamplePathTo(g, 2, rng)
		if p[1] == 1 {
			via1++
		}
	}
	frac := float64(via1) / N
	if math.Abs(frac-0.5) > 0.02 {
		t.Errorf("path via node 1 frequency = %g, want ~0.5", frac)
	}
}

func TestSamplePathToUniformUnbalanced(t *testing.T) {
	// Diamond with one extra route: s=0; 0-1-3, 0-2-3 and 0-4-3 are the three
	// shortest paths; each should appear w.p. 1/3.
	b := graph.NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(0, 4)
	b.AddEdge(1, 3)
	b.AddEdge(2, 3)
	b.AddEdge(4, 3)
	g := b.Build()
	d := NewDAG(5)
	d.Run(g, 0)
	rng := rand.New(rand.NewSource(5))
	counts := map[graph.Node]int{}
	const N = 30000
	for i := 0; i < N; i++ {
		p := d.SamplePathTo(g, 3, rng)
		counts[p[1]]++
	}
	for mid, c := range counts {
		frac := float64(c) / N
		if math.Abs(frac-1.0/3) > 0.02 {
			t.Errorf("middle %d frequency = %g, want ~1/3", mid, frac)
		}
	}
}
