package bicomp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"saphyra/internal/graph"
	"saphyra/internal/testutil"
)

// paperFig2 builds the example graph of Fig 2 in the paper: nodes
// a..k mapped to 0..10, with five bi-components and cutpoints c, d, i.
func paperFig2() (*graph.Graph, map[byte]graph.Node) {
	names := map[byte]graph.Node{
		'a': 0, 'b': 1, 'c': 2, 'd': 3, 'e': 4, 'f': 5,
		'g': 6, 'h': 7, 'i': 8, 'j': 9, 'k': 10,
	}
	b := graph.NewBuilder(11)
	add := func(x, y byte) { b.AddEdge(names[x], names[y]) }
	// C1 = {b,a,c,d,e}: cycle-ish component containing a,b,c,d,e
	add('a', 'b')
	add('b', 'c')
	add('a', 'd')
	add('c', 'e')
	add('d', 'e')
	add('a', 'e')
	// C2 = {c,g,h}: triangle
	add('c', 'g')
	add('g', 'h')
	add('h', 'c')
	// C3 = {d,f}: bridge
	add('d', 'f')
	// C4 = {i,j,k}: triangle
	add('i', 'j')
	add('j', 'k')
	add('k', 'i')
	// C5 = {d,i}: bridge
	add('d', 'i')
	return b.Build(), names
}

func TestDecomposePaperFig2(t *testing.T) {
	g, names := paperFig2()
	d := Decompose(g)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.NumBlocks != 5 {
		t.Fatalf("NumBlocks = %d, want 5", d.NumBlocks)
	}
	wantCuts := []byte{'c', 'd', 'i'}
	for _, name := range wantCuts {
		if !d.IsCut[names[name]] {
			t.Errorf("%c should be a cutpoint", name)
		}
	}
	numCuts := 0
	for _, is := range d.IsCut {
		if is {
			numCuts++
		}
	}
	if numCuts != 3 {
		t.Errorf("cutpoints = %d, want 3", numCuts)
	}
	// Block sizes: {5, 3, 2, 3, 2} in some order.
	sizes := map[int]int{}
	for b := 0; b < d.NumBlocks; b++ {
		sizes[d.BlockSize(int32(b))]++
	}
	if sizes[5] != 1 || sizes[3] != 2 || sizes[2] != 2 {
		t.Errorf("block size histogram = %v, want {5:1, 3:2, 2:2}", sizes)
	}
}

func TestDecomposeTree(t *testing.T) {
	g := graph.RandomTree(30, 3)
	d := Decompose(g)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.NumBlocks != 29 {
		t.Errorf("tree blocks = %d, want 29 (one per edge)", d.NumBlocks)
	}
	// Internal nodes are cutpoints, leaves are not.
	for v := 0; v < g.NumNodes(); v++ {
		wantCut := g.Degree(graph.Node(v)) > 1
		if d.IsCut[v] != wantCut {
			t.Errorf("node %d (deg %d): IsCut = %v", v, g.Degree(graph.Node(v)), d.IsCut[v])
		}
	}
}

func TestDecomposeCycle(t *testing.T) {
	g := graph.Cycle(12)
	d := Decompose(g)
	if d.NumBlocks != 1 {
		t.Fatalf("cycle blocks = %d, want 1", d.NumBlocks)
	}
	if len(d.Cutpoints()) != 0 {
		t.Error("cycle has no cutpoints")
	}
	if d.BlockSize(0) != 12 {
		t.Errorf("block size = %d, want 12", d.BlockSize(0))
	}
}

func TestDecomposeComplete(t *testing.T) {
	g := graph.Complete(6)
	d := Decompose(g)
	if d.NumBlocks != 1 {
		t.Errorf("K6 blocks = %d, want 1", d.NumBlocks)
	}
}

func TestDecomposeBarbell(t *testing.T) {
	g := graph.Barbell(4, 3)
	d := Decompose(g)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// 2 clique blocks + 3 bridge blocks
	if d.NumBlocks != 5 {
		t.Errorf("blocks = %d, want 5", d.NumBlocks)
	}
}

func TestDecomposeDisconnected(t *testing.T) {
	b := graph.NewBuilder(8)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0) // triangle
	b.AddEdge(4, 5) // lone edge; nodes 3, 6, 7 isolated
	g := b.Build()
	d := Decompose(g)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.NumBlocks != 2 {
		t.Fatalf("blocks = %d, want 2", d.NumBlocks)
	}
	if len(d.NodeBlocks[3]) != 0 || len(d.NodeBlocks[6]) != 0 {
		t.Error("isolated nodes should belong to no block")
	}
}

func TestCutpointsMatchBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(25)
		g := testutil.RandomConnectedGraph(n, rng.Intn(n), seed)
		d := Decompose(g)
		if err := d.Validate(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		brute := testutil.BruteCutpoints(g)
		for v := 0; v < n; v++ {
			if d.IsCut[v] != brute[v] {
				t.Logf("seed %d: node %d IsCut=%v brute=%v", seed, v, d.IsCut[v], brute[v])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCommonBlockMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(18)
		g := testutil.RandomConnectedGraph(n, rng.Intn(n), seed)
		d := Decompose(g)
		for trial := 0; trial < 25; trial++ {
			s := graph.Node(rng.Intn(n))
			u := graph.Node(rng.Intn(n))
			if s == u {
				continue
			}
			got := d.CommonBlock(s, u) >= 0
			want := testutil.SameBlock(g, s, u)
			if got != want {
				t.Logf("seed %d: pair (%d,%d) common=%v brute=%v", seed, s, u, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestBlockOfEdge(t *testing.T) {
	g, names := paperFig2()
	d := Decompose(g)
	// edges within the same block must share a block id
	if d.BlockOfEdge(names['i'], names['j']) != d.BlockOfEdge(names['j'], names['k']) {
		t.Error("triangle edges in different blocks")
	}
	// bridge edges get their own block
	if d.BlockOfEdge(names['d'], names['f']) == d.BlockOfEdge(names['d'], names['i']) {
		t.Error("distinct bridges share a block")
	}
	if d.BlockOfEdge(names['a'], names['k']) != -1 {
		t.Error("absent edge should map to -1")
	}
}

func TestBlockDiameter(t *testing.T) {
	g := graph.Cycle(10)
	d := Decompose(g)
	if got := d.BlockDiameter(0); got != 5 {
		t.Errorf("cycle block diameter = %d, want 5", got)
	}
	lo, hi := d.BlockDiameterBounds(0)
	if lo > 5 || hi < 5 {
		t.Errorf("bounds (%d, %d) exclude true diameter 5", lo, hi)
	}
}

func TestMaxBlockDiameterUpperBound(t *testing.T) {
	// Barbell: clique blocks have diameter 1, bridges diameter 1.
	g := graph.Barbell(5, 2)
	d := Decompose(g)
	if got := d.MaxBlockDiameterUpperBound(100); got < 1 || got > 2 {
		t.Errorf("barbell BD upper bound = %d, want in [1,2]", got)
	}
	// Property: upper bound >= exact max block diameter.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(20)
		g := testutil.RandomConnectedGraph(n, rng.Intn(2*n), seed)
		d := Decompose(g)
		var exact int32
		for b := int32(0); int(b) < d.NumBlocks; b++ {
			if v := d.BlockDiameter(b); v > exact {
				exact = v
			}
		}
		return d.MaxBlockDiameterUpperBound(0) >= exact
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestDecomposeLongPathNoStackOverflow(t *testing.T) {
	// The iterative DFS must survive a 200k-node path.
	g := graph.Path(200_000)
	d := Decompose(g)
	if d.NumBlocks != 199_999 {
		t.Errorf("blocks = %d, want 199999", d.NumBlocks)
	}
}
