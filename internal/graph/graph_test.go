package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(0).Build()
	if g.NumNodes() != 0 {
		t.Errorf("NumNodes = %d, want 0", g.NumNodes())
	}
	if g.NumEdges() != 0 {
		t.Errorf("NumEdges = %d, want 0", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestZeroValueGraph(t *testing.T) {
	var g Graph
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Errorf("zero value graph not empty: n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
}

func TestBuilderBasic(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 1)
	b.AddEdge(3, 2)
	g := b.Build()
	if g.NumNodes() != 4 {
		t.Fatalf("NumNodes = %d, want 4", g.NumNodes())
	}
	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3", g.NumEdges())
	}
	wantDeg := []int{1, 2, 2, 1}
	for u, w := range wantDeg {
		if g.Degree(Node(u)) != w {
			t.Errorf("Degree(%d) = %d, want %d", u, g.Degree(Node(u)), w)
		}
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestBuilderDeduplicatesAndDropsSelfLoops(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0) // duplicate, reversed
	b.AddEdge(0, 1) // duplicate
	b.AddEdge(2, 2) // self loop
	b.AddEdge(1, 2)
	g := b.Build()
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2 (dedup + self-loop drop)", g.NumEdges())
	}
	if g.HasEdge(2, 2) {
		t.Error("self loop survived")
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("edge {0,1} missing in some direction")
	}
}

func TestBuilderGrowsNodes(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 7)
	g := b.Build()
	if g.NumNodes() != 8 {
		t.Errorf("NumNodes = %d, want 8", g.NumNodes())
	}
}

func TestNeighborsSorted(t *testing.T) {
	b := NewBuilder(5)
	b.AddEdge(0, 4)
	b.AddEdge(0, 2)
	b.AddEdge(0, 3)
	b.AddEdge(0, 1)
	g := b.Build()
	nbrs := g.Neighbors(0)
	want := []Node{1, 2, 3, 4}
	if len(nbrs) != len(want) {
		t.Fatalf("len(Neighbors(0)) = %d, want %d", len(nbrs), len(want))
	}
	for i := range want {
		if nbrs[i] != want[i] {
			t.Errorf("Neighbors(0)[%d] = %d, want %d", i, nbrs[i], want[i])
		}
	}
}

func TestHasEdge(t *testing.T) {
	g := Cycle(5)
	cases := []struct {
		u, v Node
		want bool
	}{
		{0, 1, true}, {1, 0, true}, {4, 0, true}, {0, 2, false}, {2, 4, false},
	}
	for _, c := range cases {
		if got := g.HasEdge(c.u, c.v); got != c.want {
			t.Errorf("HasEdge(%d,%d) = %v, want %v", c.u, c.v, got, c.want)
		}
	}
}

func TestEdgeIndex(t *testing.T) {
	g := Path(4)
	for u := Node(0); int(u) < g.NumNodes(); u++ {
		for i, v := range g.Neighbors(u) {
			idx := g.EdgeIndex(u, v)
			if idx != g.AdjOffset(u)+int64(i) {
				t.Errorf("EdgeIndex(%d,%d) = %d, want %d", u, v, idx, g.AdjOffset(u)+int64(i))
			}
		}
	}
	if g.EdgeIndex(0, 3) != -1 {
		t.Error("EdgeIndex of absent edge should be -1")
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	g := BarabasiAlbert(100, 3, 42)
	edges := g.Edges()
	if int64(len(edges)) != g.NumEdges() {
		t.Fatalf("len(Edges) = %d, want %d", len(edges), g.NumEdges())
	}
	g2 := FromEdges(g.NumNodes(), edges)
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed size: (%d,%d) vs (%d,%d)",
			g2.NumNodes(), g2.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	for _, e := range edges {
		if !g2.HasEdge(e.U, e.V) {
			t.Fatalf("round trip lost edge %v", e)
		}
	}
}

func TestMaxDegree(t *testing.T) {
	if d := Star(10).MaxDegree(); d != 9 {
		t.Errorf("Star(10).MaxDegree = %d, want 9", d)
	}
	if d := Cycle(10).MaxDegree(); d != 2 {
		t.Errorf("Cycle(10).MaxDegree = %d, want 2", d)
	}
	if d := NewBuilder(0).Build().MaxDegree(); d != 0 {
		t.Errorf("empty MaxDegree = %d, want 0", d)
	}
}

// Property: any graph built from random edges validates, has degree sum 2m,
// and HasEdge is symmetric.
func TestBuilderInvariantsQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		b := NewBuilder(n)
		for i := 0; i < rng.Intn(120); i++ {
			b.AddEdge(Node(rng.Intn(n)), Node(rng.Intn(n)))
		}
		g := b.Build()
		if err := g.Validate(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		var degSum int64
		for u := 0; u < g.NumNodes(); u++ {
			degSum += int64(g.Degree(Node(u)))
		}
		return degSum == 2*g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: HasEdge(u,v) == HasEdge(v,u) for random pairs on random graphs.
func TestHasEdgeSymmetricQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := ErdosRenyi(n, int64(rng.Intn(3*n)), seed)
		for trial := 0; trial < 30; trial++ {
			u := Node(rng.Intn(n))
			v := Node(rng.Intn(n))
			if g.HasEdge(u, v) != g.HasEdge(v, u) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
