// Package closeness implements subset ranking by harmonic closeness
// centrality, the first of the paper's stated future-work extensions of the
// SaPHyRa framework (Section VI).
//
// Harmonic closeness of v is c(v) = (1/(n-1)) * sum_{u != v} 1/d(u, v)
// (terms with unreachable u are 0). A sample is a uniform source u; the
// per-hypothesis loss for target v is 1/d(u, v) in [0, 1] -- a bounded but
// non-binary loss, so this package runs its own progressive estimator with
// empirical Bernstein stopping (per-target variance) instead of the 0/1
// framework plumbing. One BFS per sample prices all targets at once, which
// is what makes subset ranking cheap.
package closeness

import (
	"errors"
	"math"
	"math/rand/v2"
	"runtime"
	"sync"

	"saphyra/internal/graph"
	"saphyra/internal/stats"
)

// Options configures the estimator.
type Options struct {
	Epsilon    float64 // additive error; default 0.05
	Delta      float64 // failure probability; default 0.01
	Workers    int
	Seed       int64
	MaxSamples int64 // optional cap; default 64/eps^2 * ln-scaled ceiling
}

func (o *Options) setDefaults() {
	if o.Epsilon == 0 {
		o.Epsilon = 0.05
	}
	if o.Delta == 0 {
		o.Delta = 0.01
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
}

// Result holds harmonic closeness estimates for the target set.
type Result struct {
	Nodes        []graph.Node
	Closeness    []float64
	Samples      int64
	Rounds       int
	StoppedEarly bool
}

// Estimate computes (eps, delta)-estimates of harmonic closeness for the
// targets by source sampling.
func Estimate(g *graph.Graph, a []graph.Node, opt Options) (*Result, error) {
	opt.setDefaults()
	if len(a) == 0 {
		return nil, errors.New("closeness: empty target set")
	}
	n := g.NumNodes()
	if n < 2 {
		return nil, errors.New("closeness: graph too small")
	}
	nodes := graph.DedupSorted(a)
	k := len(nodes)
	eps, delta := opt.Epsilon, opt.Delta
	if eps <= 0 || eps >= 1 || delta <= 0 || delta >= 1 {
		return nil, errors.New("closeness: epsilon and delta must be in (0,1)")
	}

	n0 := int64(math.Ceil(stats.VCConstant / (eps * eps) * math.Log(1/delta)))
	if n0 < 1 {
		n0 = 1
	}
	nmax := stats.UnionSampleSize(eps, delta, k) * 4
	if nmax < n0 {
		nmax = n0
	}
	if opt.MaxSamples > 0 {
		if nmax > opt.MaxSamples {
			nmax = opt.MaxSamples
		}
		if n0 > nmax {
			n0 = nmax
		}
	}
	rounds := int64(1)
	if nmax > n0 {
		rounds = int64(math.Ceil(math.Log2(float64(nmax) / float64(n0))))
	}
	deltaI := delta / (2 * float64(rounds) * float64(k))

	res := &Result{Nodes: nodes}
	accs := make([]stats.MeanVar, k)
	var drawn int64
	target := n0
	workers := opt.Workers
	// One persistent sampler per worker: BFS distance scratch and rng live
	// across rounds, so the doubling loop allocates nothing per round.
	samplers := make([]*sourceSampler, workers)
	for w := range samplers {
		samplers[w] = newSourceSampler(g, nodes, opt.Seed+int64(w+1)*612_361)
	}
	for {
		res.Rounds++
		batchParallel(samplers, target-drawn, accs)
		drawn = target
		worst := 0.0
		for i := range accs {
			if e := stats.EpsilonBernstein(drawn, deltaI, accs[i].Variance()); e > worst {
				worst = e
			}
		}
		if worst <= eps {
			res.StoppedEarly = true
			break
		}
		if drawn >= nmax {
			break
		}
		target = drawn * 2
		if target > nmax {
			target = nmax
		}
	}
	res.Samples = drawn
	res.Closeness = make([]float64, k)
	for i := range accs {
		res.Closeness[i] = accs[i].Mean()
	}
	return res, nil
}

// sourceSampler is the closeness analogue of the core engine's batched
// sampler: a per-worker workspace drawing uniform BFS sources and pricing
// every target per source, with pooled scratch so the steady-state loop is
// allocation-free.
type sourceSampler struct {
	g     *graph.Graph
	nodes []graph.Node
	rng   *rand.Rand
	dist  []int32
	local []stats.MeanVar
}

func newSourceSampler(g *graph.Graph, nodes []graph.Node, seed int64) *sourceSampler {
	return &sourceSampler{
		g:     g,
		nodes: nodes,
		rng:   rand.New(rand.NewPCG(uint64(seed), 0xbb67ae8584caa73b)),
		dist:  make([]int32, g.NumNodes()),
		local: make([]stats.MeanVar, len(nodes)),
	}
}

// sampleBatch draws count sources, accumulating the per-target harmonic
// terms into the sampler's persistent local accumulators.
func (s *sourceSampler) sampleBatch(count int64) {
	n := s.g.NumNodes()
	for j := int64(0); j < count; j++ {
		u := graph.Node(s.rng.IntN(n))
		s.dist = graph.BFSDistances(s.g, u, s.dist)
		for i, v := range s.nodes {
			x := 0.0
			if v != u && s.dist[v] > 0 {
				x = 1 / float64(s.dist[v])
			}
			s.local[i].Add(x)
		}
	}
}

func batchParallel(samplers []*sourceSampler, count int64, accs []stats.MeanVar) {
	if count <= 0 {
		return
	}
	workers := len(samplers)
	var wg sync.WaitGroup
	base := count / int64(workers)
	rem := count % int64(workers)
	for w := 0; w < workers; w++ {
		quota := base
		if int64(w) < rem {
			quota++
		}
		if quota == 0 {
			continue
		}
		wg.Add(1)
		go func(w int, quota int64) {
			defer wg.Done()
			samplers[w].sampleBatch(quota)
		}(w, quota)
	}
	wg.Wait()
	// The per-worker accumulators are cumulative across rounds: rebuild accs
	// from scratch, merging in worker order so the result is deterministic
	// for fixed seed + workers.
	for i := range accs {
		accs[i] = stats.MeanVar{}
	}
	for _, s := range samplers {
		for i := range accs {
			accs[i].Merge(&s.local[i])
		}
	}
}

// Exact computes exact harmonic closeness for every node: c(v) =
// sum_{u != v} (1/d(u,v)) / (n-1), one BFS per node. O(n*m).
func Exact(g *graph.Graph) []float64 {
	n := g.NumNodes()
	out := make([]float64, n)
	if n < 2 {
		return out
	}
	dist := make([]int32, n)
	for u := 0; u < n; u++ {
		dist = graph.BFSDistances(g, graph.Node(u), dist)
		for v, d := range dist {
			if v != u && d > 0 {
				out[v] += 1 / float64(d)
			}
		}
	}
	for i := range out {
		out[i] /= float64(n - 1)
	}
	return out
}
