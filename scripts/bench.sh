#!/usr/bin/env bash
# Runs the sampling-engine benchmark suite and emits BENCH_sampling.json so
# the perf trajectory of the hot path is recorded per commit, then replays
# the three named serving traffic mixes through cmd/saphyraload and emits
# BENCH_serving.json (p50/p99/p999, hit/shed/degrade/error rates, bitwise
# verification counts, SLO verdicts). A violated SLO or a failed bitwise
# verification makes saphyraload — and this script — exit non-zero.
#
# Usage: scripts/bench.sh [benchtime]
#   benchtime  go test -benchtime value (default 1s; use e.g. 30x for CI)
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${1:-1s}"
OUT="BENCH_sampling.json"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

# Sampler microbenchmarks (legacy engine vs single-draw shim vs batched),
# exact-phase microbenchmarks (view build + run-length engine vs legacy
# reference), the k-path and closeness estimator rows (graph-served vs
# view-served plus their isolated hot loops), the serving-layer rows
# (cache-hit vs cache-miss requests/sec — the hit row must stay >= 10x the
# miss row, TestServeHitAtLeast10xMiss enforces it — plus the overload
# rows: BenchmarkServeRankDegraded prices a stale-rung degraded answer and
# BenchmarkServeRankOverload records the shed fast path's shed_rate and
# p50_us/p99_us, and BenchmarkServeRankCacheHitInstrumented prices the
# same hit with per-request tracing armed — it must stay within 20% of
# the uninstrumented row, TestInstrumentationOverheadGate enforces the
# p99 version), the Ranker/Query
# dispatch-overhead pair (ranker vs direct must stay within noise — the
# unified API and its cancellation checkpoints may not tax the engines),
# and the end-to-end Fig 3 timing rows.
go test -run '^$' -bench 'BenchmarkSamplerDraw' -benchmem \
    -benchtime "$BENCHTIME" ./internal/core/ | tee -a "$TMP"
go test -run '^$' -bench 'BenchmarkExactPhase' -benchmem \
    -benchtime "$BENCHTIME" ./internal/exactphase/ | tee -a "$TMP"
go test -run '^$' -bench 'BenchmarkKPath' -benchmem \
    -benchtime "$BENCHTIME" ./internal/kpath/ | tee -a "$TMP"
go test -run '^$' -bench 'BenchmarkCloseness' -benchmem \
    -benchtime "$BENCHTIME" ./internal/closeness/ | tee -a "$TMP"
# The MS-BFS rows price the traversal engine itself: one 64-lane pass
# (BenchmarkMSBFSPass, must stay 0 allocs/op) and one 16-landmark sketch
# build (BenchmarkMSBFSSketch). BenchmarkCloseness above rides the engine;
# BenchmarkClosenessLegacy records the retired scalar estimator for the
# speedup ratio.
go test -run '^$' -bench 'BenchmarkMSBFS' -benchmem \
    -benchtime "$BENCHTIME" ./internal/msbfs/ | tee -a "$TMP"
go test -run '^$' -bench 'BenchmarkServeRank' -benchmem \
    -benchtime "$BENCHTIME" ./internal/serve/ | tee -a "$TMP"
# The telemetry rows pin the span tracer's two unit costs: the disabled
# path (one atomic load — BenchmarkStartSpanDisabled must stay ~ns and
# 0 allocs/op) and the armed path (arena claim + one context node).
go test -run '^$' -bench 'BenchmarkStartSpan' -benchmem \
    -benchtime "$BENCHTIME" ./internal/obs/ | tee -a "$TMP"
go test -run '^$' -bench 'BenchmarkRankerQueryOverhead' -benchmem \
    -benchtime "$BENCHTIME" . | tee -a "$TMP"
go test -run '^$' -bench 'BenchmarkFig3Time' -benchmem \
    -benchtime "$BENCHTIME" . | tee -a "$TMP"

# Fold the `go test -bench` text into a json record:
#   {"generated":..., "benchmarks":[{"name":..., "ns_per_op":..., ...}]}
awk '
BEGIN {
    print "{"
    printf "  \"generated\": \"%s\",\n", strftime("%Y-%m-%dT%H:%M:%SZ", systime(), 1)
    print  "  \"benchmarks\": ["
    first = 1
}
/^Benchmark/ {
    name = $1; iters = $2
    sub(/-[0-9]+$/, "", name) # strip the GOMAXPROCS suffix: names must be machine-independent
    ns = ""; bytes = ""; allocs = ""; extra = ""
    for (i = 3; i + 1 <= NF; i += 2) {
        val = $i; unit = $(i + 1)
        if (unit == "ns/op")           ns = val
        else if (unit == "B/op")       bytes = val
        else if (unit == "allocs/op")  allocs = val
        else {
            gsub(/"/, "", unit)
            extra = extra sprintf(", \"%s\": %s", unit, val)
        }
    }
    if (!first) print ","
    first = 0
    printf "    {\"name\": \"%s\", \"iterations\": %s", name, iters
    if (ns != "")     printf ", \"ns_per_op\": %s", ns
    if (bytes != "")  printf ", \"bytes_per_op\": %s", bytes
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    printf "%s}", extra
}
END {
    print ""
    print "  ]"
    print "}"
}' "$TMP" > "$OUT"

echo "wrote $OUT"

# Serving load replay: deterministic open-loop mixes against an in-process
# server over a synthetic view (internal/loadgen). Every 8th 200 response
# is recomputed through the library and compared bitwise; any SLO
# violation or bit mismatch fails the script. -cluster 3 additionally boots
# a 3-replica fleet behind the consistent-hash router, replays the
# cluster-hit-dominated mix through it under the same gates, and records
# the ClusterRouteHit / PeerFill rows in the report's "cluster" section.
go run ./cmd/saphyraload -cluster 3 -out BENCH_serving.json
echo "wrote BENCH_serving.json"
