// Command saphyra ranks a subset of nodes of an edge-list graph by
// betweenness centrality with the SaPHyRa_bc algorithm (or a baseline, for
// comparison), and by the companion k-path and closeness estimators.
//
// Usage:
//
//	saphyra -graph net.txt -targets 17,99,1024 -eps 0.05 -delta 0.01
//	saphyra -graph net.txt -random 100 -seed 7 -method kadabra
//	saphyra -graph net.txt -all -timeout 30s
//
// Build-once/serve-many: the target-independent preprocessing (the
// block-annotated adjacency view, DESIGN.md section 7) can be serialized
// once and served zero-copy — mmap-backed, so concurrent server processes
// share one physical copy of the arrays:
//
//	saphyra -graph net.txt -save-view net.sbcv
//	saphyra -view net.sbcv -targets 17,99,1024            # any number of processes
//	saphyra -view net.sbcv -random 50 -method closeness
//
// View files written from an edge list embed the original-id map, so -view
// runs accept and report the same node ids as -graph runs. For an always-on
// HTTP service over the same view file (result caching, top-k index, hot
// reload), see cmd/saphyrad.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"

	"saphyra"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "edge-list file (required unless -view is given)")
		viewPath  = flag.String("view", "", "serve from a serialized view file instead of -graph")
		saveView  = flag.String("save-view", "", "write the preprocessed view to this file (requires -graph)")
		targets   = flag.String("targets", "", "comma-separated node ids to rank (original ids from the file)")
		random    = flag.Int("random", 0, "rank this many random nodes instead of -targets")
		all       = flag.Bool("all", false, "rank every node (SaPHyRa-full)")
		eps       = flag.Float64("eps", 0.05, "additive error guarantee")
		delta     = flag.Float64("delta", 0.01, "failure probability")
		seed      = flag.Int64("seed", 1, "RNG seed (output is seed-deterministic at any -workers)")
		workers   = flag.Int("workers", 0, "goroutines (0 = all CPUs); does not affect results")
		method    = flag.String("method", "saphyra", "saphyra | abra | kadabra | kpath | closeness")
		kflag     = flag.Int("k", 3, "walk length for -method kpath")
		exactFlag = flag.Bool("exact", false, "also compute exact betweenness and report rank correlation")
		topK      = flag.Int("top", 0, "print only the top K rows (0 = all)")
		timeout   = flag.Duration("timeout", 0, "abort the estimation after this long (e.g. 30s; 0 = no deadline)")
	)
	flag.Parse()
	if (*graphPath == "") == (*viewPath == "") {
		fmt.Fprintln(os.Stderr, "saphyra: exactly one of -graph and -view is required")
		flag.Usage()
		os.Exit(2)
	}
	if *saveView != "" && *viewPath != "" {
		fmt.Fprintln(os.Stderr, "saphyra: -save-view cannot be combined with -view (a view file is already built); use -graph to build one")
		flag.Usage()
		os.Exit(2)
	}

	var (
		g    *saphyra.Graph
		orig []int64 // dense id -> original id; nil means identity (view files)
		view *saphyra.View
	)
	if *viewPath != "" {
		var err error
		view, err = saphyra.OpenView(*viewPath)
		if err != nil {
			fatal(err)
		}
		defer view.Close()
		g = view.Graph()
		orig = view.IDs()
		fmt.Fprintf(os.Stderr, "mapped %s: %d nodes, %d edges\n", *viewPath, g.NumNodes(), g.NumEdges())
	} else {
		var err error
		g, orig, err = saphyra.LoadEdgeList(*graphPath)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "loaded %s: %d nodes, %d edges\n", *graphPath, g.NumNodes(), g.NumEdges())
	}

	if *saveView != "" {
		if err := saphyra.BuildView(g, orig).WriteFile(*saveView); err != nil {
			fatal(err)
		}
		st, err := os.Stat(*saveView)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote view %s (%d bytes); serve it with -view\n", *saveView, st.Size())
		if *targets == "" && *random == 0 && !*all {
			return
		}
	}

	var back map[int64]saphyra.Node // original id -> dense id
	if orig != nil {
		back = make(map[int64]saphyra.Node, len(orig))
		for dense, raw := range orig {
			back[raw] = saphyra.Node(dense)
		}
	}
	denseID := func(raw int64) (saphyra.Node, bool) {
		if orig == nil {
			ok := raw >= 0 && raw < int64(g.NumNodes())
			return saphyra.Node(raw), ok
		}
		dense, ok := back[raw]
		return dense, ok
	}
	origID := func(dense saphyra.Node) int64 {
		if orig == nil {
			return int64(dense)
		}
		return orig[dense]
	}

	var subset []saphyra.Node
	switch {
	case *all:
		for v := 0; v < g.NumNodes(); v++ {
			subset = append(subset, saphyra.Node(v))
		}
	case *random > 0:
		rng := rand.New(rand.NewSource(*seed))
		seen := map[saphyra.Node]bool{}
		for len(subset) < *random && len(subset) < g.NumNodes() {
			v := saphyra.Node(rng.Intn(g.NumNodes()))
			if !seen[v] {
				seen[v] = true
				subset = append(subset, v)
			}
		}
	case *targets != "":
		for _, tok := range strings.Split(*targets, ",") {
			raw, err := strconv.ParseInt(strings.TrimSpace(tok), 10, 64)
			if err != nil {
				fatal(fmt.Errorf("bad target %q: %v", tok, err))
			}
			dense, ok := denseID(raw)
			if !ok {
				fatal(fmt.Errorf("node %d not present in graph", raw))
			}
			subset = append(subset, dense)
		}
	default:
		fmt.Fprintln(os.Stderr, "saphyra: one of -targets, -random, -all is required")
		os.Exit(2)
	}

	// One Query + one Ranker serve every measure/algorithm combination; the
	// ranker runs off the mapped view when -view was given and off the
	// in-memory graph otherwise, with bitwise-identical results.
	q := saphyra.Query{
		Targets: subset, K: *kflag,
		Epsilon: *eps, Delta: *delta, Workers: *workers, Seed: *seed,
	}
	switch name := strings.ToLower(*method); name {
	case "saphyra":
		q.Measure = saphyra.Betweenness
	case "abra":
		q.Measure, q.Algorithm = saphyra.Betweenness, saphyra.AlgABRA
	case "kadabra":
		q.Measure, q.Algorithm = saphyra.Betweenness, saphyra.AlgKADABRA
	case "kpath":
		q.Measure = saphyra.KPath
	case "closeness":
		q.Measure = saphyra.Closeness
	default:
		fatal(fmt.Errorf("unknown method %q", *method))
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	var r *saphyra.Ranker
	if view != nil {
		r = view.Ranker()
	} else {
		r = saphyra.NewRanker(g)
	}
	res, err := r.Rank(ctx, q)
	if err != nil {
		if ctx.Err() != nil {
			fatal(fmt.Errorf("deadline of %v exceeded: %w", *timeout, err))
		}
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "method=%s eps=%g delta=%g samples=%d time=%v\n",
		strings.ToLower(*method), *eps, *delta, res.Samples, res.Duration)

	// print rows ordered by rank
	order := make([]int, len(res.Nodes))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return res.Rank[order[a]] < res.Rank[order[b]] })
	limit := len(order)
	if *topK > 0 && *topK < limit {
		limit = *topK
	}
	fmt.Println("rank\tnode\tscore")
	for _, i := range order[:limit] {
		fmt.Printf("%d\t%d\t%.6g\n", res.Rank[i], origID(res.Nodes[i]), res.Scores[i])
	}

	if *exactFlag {
		if m := strings.ToLower(*method); m == "kpath" || m == "closeness" {
			fatal(fmt.Errorf("-exact compares against exact *betweenness* and only applies to -method saphyra|abra|kadabra, not %q", m))
		}
		truth := saphyra.ExactBC(g, *workers)
		truthA := make([]float64, len(res.Nodes))
		ids := make([]int32, len(res.Nodes))
		for i, v := range res.Nodes {
			truthA[i] = truth[v]
			ids[i] = int32(v)
		}
		fmt.Fprintf(os.Stderr, "spearman rank correlation vs exact: %.4f\n",
			saphyra.Spearman(truthA, res.Scores, ids))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "saphyra:", err)
	os.Exit(1)
}
