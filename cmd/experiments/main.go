// Command experiments regenerates every table and figure of the paper's
// evaluation (Section V) on the synthetic network stand-ins, printing the
// same rows/series the paper reports. See DESIGN.md for the experiment
// index and EXPERIMENTS.md for recorded paper-vs-measured results.
//
// Usage:
//
//	experiments -exp all -scale 0.25 -subsets 10
//	experiments -exp fig3 -networks flickr-sim,orkut-sim
//	experiments -exp fig7 -scale 0.5
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"saphyra/internal/datasets"
	"saphyra/internal/workload"
)

type runCfg struct {
	scale    float64
	subsets  int
	size     int
	workers  int
	seed     int64
	delta    float64
	epsilons []float64
	networks []datasets.Network
	maxSamp  int64
}

func main() {
	var (
		exp     = flag.String("exp", "all", "table1 | table2 | table3 | fig3 | fig4 | fig5 | fig6 | fig7 | all")
		scale   = flag.Float64("scale", 0.25, "network scale (1.0 ~ 10k-node networks)")
		subsets = flag.Int("subsets", 5, "number of random subsets per configuration (paper: 1000)")
		size    = flag.Int("size", 100, "subset size (paper: 100)")
		workers = flag.Int("workers", 0, "parallel workers (0 = all CPUs)")
		seed    = flag.Int64("seed", 1, "base seed")
		delta   = flag.Float64("delta", 0.01, "failure probability")
		epsStr  = flag.String("eps", "0.2,0.1,0.05,0.02,0.01", "epsilon sweep for fig3/fig4")
		netsStr = flag.String("networks", "", "comma-separated stand-in names (default: all four)")
		maxSamp = flag.Int64("max-samples", 0, "optional per-run sample cap (0 = faithful budgets)")
	)
	flag.Parse()

	cfg := runCfg{
		scale: *scale, subsets: *subsets, size: *size,
		workers: *workers, seed: *seed, delta: *delta, maxSamp: *maxSamp,
	}
	for _, tok := range strings.Split(*epsStr, ",") {
		var e float64
		if _, err := fmt.Sscanf(strings.TrimSpace(tok), "%g", &e); err != nil {
			fatal(fmt.Errorf("bad epsilon %q", tok))
		}
		cfg.epsilons = append(cfg.epsilons, e)
	}
	if *netsStr == "" {
		cfg.networks = datasets.All
	} else {
		for _, name := range strings.Split(*netsStr, ",") {
			n, err := datasets.ByName(strings.TrimSpace(name))
			if err != nil {
				fatal(err)
			}
			cfg.networks = append(cfg.networks, n)
		}
	}

	runs := map[string]func(runCfg){
		"table1": table1, "table2": table2, "table3": table3,
		"fig3": fig3and4, "fig4": fig3and4, "fig5": fig5, "fig6": fig6, "fig7": fig7,
	}
	if *exp == "all" {
		for _, name := range []string{"table2", "table1", "table3", "fig3", "fig5", "fig6", "fig7"} {
			runs[name](cfg)
		}
		return
	}
	f, ok := runs[*exp]
	if !ok {
		fatal(fmt.Errorf("unknown experiment %q", *exp))
	}
	f(cfg)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}

func envs(cfg runCfg) []*workload.Env {
	out := make([]*workload.Env, 0, len(cfg.networks))
	for _, n := range cfg.networks {
		start := time.Now()
		e := workload.NewEnv(n, cfg.scale, cfg.workers)
		fmt.Fprintf(os.Stderr, "prepared %s: %d nodes, %d edges (ground truth in %v)\n",
			e.Name, e.G.NumNodes(), e.G.NumEdges(), time.Since(start).Round(time.Millisecond))
		out = append(out, e)
	}
	return out
}

func wcfg(cfg runCfg, eps float64) workload.Config {
	return workload.Config{
		Epsilon: eps, Delta: cfg.delta, Workers: cfg.workers,
		Seed: cfg.seed, MaxSamples: cfg.maxSamp,
	}
}

// table2 prints the networks summary (Table II) with paper-vs-stand-in
// statistics.
func table2(cfg runCfg) {
	fmt.Println("\n== Table II: networks summary (stand-ins vs paper) ==")
	var rows [][]string
	for _, n := range cfg.networks {
		e := workload.NewEnv(n, cfg.scale, cfg.workers)
		r := workload.Table2(e, n)
		rows = append(rows, []string{
			r.Network, fmt.Sprint(r.Nodes), fmt.Sprint(r.Edges), fmt.Sprint(r.DiameterLB),
			r.PaperNodes, r.PaperEdges, fmt.Sprint(r.PaperDiam),
			fmt.Sprint(r.Blocks), fmt.Sprint(r.Cutpoints),
		})
	}
	workload.WriteTSV(os.Stdout,
		[]string{"network", "nodes", "edges", "diam(lb)", "paper-nodes", "paper-edges", "paper-diam", "blocks", "cutpoints"},
		rows)
}

// table1 prints the VC-dimension bound comparison (Table I).
func table1(cfg runCfg) {
	fmt.Println("\n== Table I: VC-dimension bounds ==")
	var rows [][]string
	for _, e := range envs(cfg) {
		subset := datasets.RandomSubsets(e.G.NumNodes(), cfg.size, 1, cfg.seed)[0]
		r := workload.Table1(e, subset, 2)
		rows = append(rows, []string{
			r.Network, fmt.Sprint(r.RiondatoFull), fmt.Sprint(r.SaPHyRaFull),
			fmt.Sprint(r.SaPHyRaSubset), fmt.Sprintf("%d (l=%d)", r.SaPHyRaLHop, r.L),
		})
	}
	workload.WriteTSV(os.Stdout,
		[]string{"network", "riondato[45]", "saphyra-full", "saphyra-subset", "saphyra-lhop"},
		rows)
}

// table3 prints the road-area summary (Table III).
func table3(cfg runCfg) {
	fmt.Println("\n== Table III: USA-road areas (stand-in vs paper) ==")
	side := datasets.RoadSide(cfg.scale)
	g := datasets.USARoad.Build(cfg.scale)
	var rows [][]string
	for _, a := range datasets.Areas(side) {
		edges := 0
		inArea := map[int32]bool{}
		for _, v := range a.Nodes {
			inArea[int32(v)] = true
		}
		for _, v := range a.Nodes {
			for _, u := range g.Neighbors(v) {
				if inArea[int32(u)] && v < u {
					edges++
				}
			}
		}
		rows = append(rows, []string{
			a.Name, fmt.Sprint(len(a.Nodes)), fmt.Sprint(edges),
			a.Paper.PaperNodes, a.Paper.PaperEdges,
		})
	}
	workload.WriteTSV(os.Stdout,
		[]string{"area", "nodes", "edges", "paper-nodes", "paper-edges"}, rows)
}

// fig3and4 prints the epsilon sweep: running time (Fig 3) and rank
// correlation with min/max bands (Fig 4).
func fig3and4(cfg runCfg) {
	fmt.Println("\n== Fig 3 + Fig 4: running time and rank correlation vs epsilon ==")
	for _, e := range envs(cfg) {
		subsets := datasets.RandomSubsets(e.G.NumNodes(), cfg.size, cfg.subsets, cfg.seed)
		rows, err := workload.Fig3And4(e, cfg.epsilons, subsets, wcfg(cfg, 0))
		if err != nil {
			fatal(err)
		}
		var out [][]string
		for _, r := range rows {
			out = append(out, []string{
				r.Network, fmt.Sprintf("%g", r.Epsilon), string(r.Algo),
				fmt.Sprintf("%.3f", r.MeanTime.Seconds()),
				fmt.Sprintf("%.3f", r.MeanRho),
				fmt.Sprintf("%.3f", r.LoRho), fmt.Sprintf("%.3f", r.HiRho),
				fmt.Sprint(r.MeanSamples),
			})
		}
		workload.WriteTSV(os.Stdout,
			[]string{"network", "eps", "algo", "time(s)", "rho", "rho-min", "rho-max", "samples"}, out)
		fmt.Println()
	}
}

// fig5 prints rank correlation for varying subset sizes at eps = 0.05.
func fig5(cfg runCfg) {
	fmt.Println("\n== Fig 5: rank correlation vs subset size (eps=0.05) ==")
	sizes := []int{10, 20, 40, 60, 80, 100}
	for _, e := range envs(cfg) {
		rows, err := workload.Fig5(e, sizes, cfg.subsets, wcfg(cfg, 0.05))
		if err != nil {
			fatal(err)
		}
		var out [][]string
		for _, r := range rows {
			out = append(out, []string{
				r.Network, fmt.Sprint(r.Size), string(r.Algo),
				fmt.Sprintf("%.3f", r.MeanRho),
				fmt.Sprintf("%.3f", r.LoRho), fmt.Sprintf("%.3f", r.HiRho),
			})
		}
		workload.WriteTSV(os.Stdout,
			[]string{"network", "size", "algo", "rho", "rho-min", "rho-max"}, out)
		fmt.Println()
	}
}

// fig6 prints the signed relative-error summaries (true/false zeros and the
// histogram) at eps = 0.05.
func fig6(cfg runCfg) {
	fmt.Println("\n== Fig 6: signed relative error (eps=0.05, subset size 100) ==")
	for _, e := range envs(cfg) {
		subsets := datasets.RandomSubsets(e.G.NumNodes(), cfg.size, cfg.subsets, cfg.seed)
		rows, err := workload.Fig6(e, subsets, wcfg(cfg, 0.05))
		if err != nil {
			fatal(err)
		}
		var out [][]string
		for _, r := range rows {
			s := r.Summary
			hist := make([]string, len(s.Buckets))
			for i, c := range s.Buckets {
				hist[i] = fmt.Sprint(c)
			}
			out = append(out, []string{
				r.Network, string(r.Algo),
				fmt.Sprintf("%.1f%%", 100*s.FractionTrueZeros()),
				fmt.Sprintf("%.1f%%", 100*s.FractionFalseZeros()),
				strings.Join(hist, ","),
			})
		}
		workload.WriteTSV(os.Stdout,
			[]string{"network", "algo", "true-zeros", "false-zeros", "hist(-100..150+,w=25)"}, out)
		fmt.Println()
	}
}

// fig7 prints the USA-road case study: per-area running time, rank
// correlation, and rank deviation for KADABRA / SaPHyRa-full / SaPHyRa.
func fig7(cfg runCfg) {
	fmt.Println("\n== Fig 7: USA-road case study ==")
	side := datasets.RoadSide(cfg.scale)
	e := workload.NewEnv(datasets.USARoad, cfg.scale, cfg.workers)
	fmt.Fprintf(os.Stderr, "road %dx%d: %d nodes, %d edges\n", side, side, e.G.NumNodes(), e.G.NumEdges())
	rows, err := workload.Fig7(e, datasets.Areas(side), wcfg(cfg, 0.05))
	if err != nil {
		fatal(err)
	}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Area, fmt.Sprint(r.AreaSize), string(r.Algo),
			fmt.Sprintf("%.3f", r.Duration.Seconds()),
			fmt.Sprintf("%.3f", r.Rho),
			fmt.Sprintf("%.1f%%", 100*r.Deviation),
		})
	}
	workload.WriteTSV(os.Stdout,
		[]string{"area", "nodes", "algo", "time(s)", "rho", "rank-deviation"}, out)
}
