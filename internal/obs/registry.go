package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"saphyra/internal/obs/hist"
)

// Kind is a metric family's Prometheus type.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Unit selects a histogram's rendered bucket ladder. Observations are
// always recorded in the fine log-bucketed histogram; rendering coalesces
// them onto a small fixed ladder so the exposition stays dashboard-sized.
type Unit uint8

const (
	// UnitSeconds: observations are nanosecond durations, rendered in
	// seconds over a 1-2.5-5 decade ladder from 1µs to 30s.
	UnitSeconds Unit = iota
	// UnitCount: observations are dimensionless counts, rendered over a
	// powers-of-4 ladder from 1 to 4^15.
	UnitCount
)

// secondsEdges / countEdges are the coalesced bucket upper bounds, in the
// native (nanosecond / count) domain. Both are strictly increasing; the
// renderer appends +Inf.
var secondsEdges = func() []int64 {
	var e []int64
	for scale := int64(1_000); scale <= 10_000_000_000; scale *= 10 { // 1µs .. 10s decades
		e = append(e, scale, scale*5/2, scale*5)
	}
	return e[:len(e)-1] // drop 50s; last finite edge is 25s
}()

var countEdges = func() []int64 {
	e := make([]int64, 16)
	v := int64(1)
	for i := range e {
		e[i] = v
		v *= 4
	}
	return e
}()

// quantiles rendered for every histogram family (as a companion gauge
// family — Prometheus exposition does not allow quantile series inside a
// histogram type).
var quantiles = []float64{0.5, 0.9, 0.99, 0.999}

type series struct {
	labels string // rendered label pairs without braces, e.g. `endpoint="rank"`

	c  atomic.Int64    // KindCounter
	g  atomic.Uint64   // KindGauge: float64 bits
	fn func() float64  // CounterFunc/GaugeFunc: computed on render
	h  *hist.Histogram // KindHistogram
}

type family struct {
	name, help string
	kind       Kind
	unit       Unit
	series     []*series
	byLabels   map[string]*series
}

// Registry holds named metric families. All reads on the hot path (Inc,
// Add, Observe) are lock-free atomic operations on pre-registered series;
// the registry mutex is only taken at registration and render time.
type Registry struct {
	mu   sync.Mutex
	fams []*family
	byN  map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byN: make(map[string]*family)}
}

func (r *Registry) fam(name, help string, kind Kind, unit Unit) *family {
	f, ok := r.byN[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, unit: unit, byLabels: make(map[string]*series)}
		r.byN[name] = f
		r.fams = append(r.fams, f)
	} else if f.kind != kind {
		panic("obs: metric " + name + " re-registered with a different kind")
	}
	return f
}

func (r *Registry) ser(name, help string, kind Kind, unit Unit, labels string) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fam(name, help, kind, unit)
	s, ok := f.byLabels[labels]
	if !ok {
		s = &series{labels: labels}
		if kind == KindHistogram {
			s.h = &hist.Histogram{}
		}
		f.byLabels[labels] = s
		f.series = append(f.series, s)
	}
	return s
}

// Counter is a monotonically increasing series.
type Counter struct{ s *series }

// Inc adds one.
func (c *Counter) Inc() { c.s.c.Add(1) }

// Add adds n (n must be >= 0 for the exposition to stay a valid counter).
func (c *Counter) Add(n int64) { c.s.c.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.s.c.Load() }

// Gauge is a series that can go up and down.
type Gauge struct{ s *series }

// Set stores v.
func (g *Gauge) Set(v float64) { g.s.g.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.s.g.Load()) }

// Hist is a registered histogram series. Observations are recorded in the
// wait-free fine histogram and coalesced onto the family's bucket ladder
// at render time.
type Hist struct{ s *series }

// Observe records one duration (for UnitSeconds families).
func (h *Hist) Observe(d time.Duration) { h.s.h.Observe(d) }

// ObserveN records one dimensionless count (for UnitCount families).
func (h *Hist) ObserveN(n int64) { h.s.h.Observe(time.Duration(n)) }

// Raw exposes the underlying fine histogram (for /statusz quantiles).
func (h *Hist) Raw() *hist.Histogram { return h.s.h }

// Counter registers (or fetches) a counter series. labels is either "" or
// rendered pairs like `endpoint="rank"`.
func (r *Registry) Counter(name, help, labels string) *Counter {
	return &Counter{r.ser(name, help, KindCounter, UnitCount, labels)}
}

// CounterFunc registers a counter whose value is computed at render time —
// the bridge for pre-existing atomics owned elsewhere.
func (r *Registry) CounterFunc(name, help, labels string, fn func() float64) {
	r.ser(name, help, KindCounter, UnitCount, labels).fn = fn
}

// Gauge registers (or fetches) a gauge series.
func (r *Registry) Gauge(name, help, labels string) *Gauge {
	return &Gauge{r.ser(name, help, KindGauge, UnitCount, labels)}
}

// GaugeFunc registers a gauge computed at render time.
func (r *Registry) GaugeFunc(name, help, labels string, fn func() float64) {
	r.ser(name, help, KindGauge, UnitCount, labels).fn = fn
}

// Histogram registers (or fetches) a histogram series. Families rendered
// with UnitSeconds expect Observe(duration); UnitCount expect ObserveN.
func (r *Registry) Histogram(name, help, labels string, unit Unit) *Hist {
	return &Hist{r.ser(name, help, KindHistogram, unit, labels)}
}

// Label renders one label pair for the Counter/Gauge/Histogram labels
// argument, escaping the value per the Prometheus text exposition rules
// (backslash, double quote, newline). Static label sets are written as
// literals (`endpoint="rank"`); Label is for values that arrive at runtime
// — replica URLs, file paths — where unescaped quotes would corrupt the
// exposition.
func Label(k, v string) string {
	var b []byte
	b = append(b, k...)
	b = append(b, '=', '"')
	for _, c := range []byte(v) {
		switch c {
		case '\\', '"':
			b = append(b, '\\', c)
		case '\n':
			b = append(b, '\\', 'n')
		default:
			b = append(b, c)
		}
	}
	return string(append(b, '"'))
}

// fmtVal renders a float the way the pre-registry /metricsz rendered
// integers: %g, so `saphyra_generation 1` stays exactly that.
func fmtVal(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func (s *series) value() float64 {
	if s.fn != nil {
		return s.fn()
	}
	return math.Float64frombits(s.g.Load())
}

func (s *series) counterValue() float64 {
	if s.fn != nil {
		return s.fn()
	}
	return float64(s.c.Load())
}

func withLabels(base, extra string) string {
	switch {
	case base == "" && extra == "":
		return ""
	case base == "":
		return "{" + extra + "}"
	case extra == "":
		return "{" + base + "}"
	default:
		return "{" + base + "," + extra + "}"
	}
}

// WritePrometheus renders every family in registration order as valid
// Prometheus text exposition format. Histograms emit the coalesced
// `_bucket`/`_sum`/`_count` series plus a companion `<name>_quantile`
// gauge family carrying p50/p90/p99/p999 read from the fine histogram
// (relative error <= 1/32).
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	fams := make([]*family, len(r.fams))
	copy(fams, r.fams)
	r.mu.Unlock()

	for _, f := range fams {
		switch f.kind {
		case KindCounter, KindGauge:
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind)
			for _, s := range f.series {
				v := s.counterValue()
				if f.kind == KindGauge {
					v = s.value()
				}
				fmt.Fprintf(w, "%s%s %s\n", f.name, withLabels(s.labels, ""), fmtVal(v))
			}
		case KindHistogram:
			f.writeHistogram(w)
		}
	}
}

func (f *family) writeHistogram(w io.Writer) {
	edges := secondsEdges
	div := 1e9 // ns -> s
	if f.unit == UnitCount {
		edges = countEdges
		div = 1
	}
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", f.name, f.help, f.name)
	cum := make([]int64, len(edges))
	for _, s := range f.series {
		total := s.h.CumulativeAt(edges, cum)
		for i, e := range edges {
			le := fmtVal(float64(e) / div)
			fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, withLabels(s.labels, `le="`+le+`"`), cum[i])
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, withLabels(s.labels, `le="+Inf"`), total)
		fmt.Fprintf(w, "%s_sum%s %s\n", f.name, withLabels(s.labels, ""), fmtVal(float64(s.h.Sum())/div))
		fmt.Fprintf(w, "%s_count%s %d\n", f.name, withLabels(s.labels, ""), total)
	}
	qn := f.name + "_quantile"
	fmt.Fprintf(w, "# HELP %s Approximate quantiles of %s (log-bucketed, relative error <= %s).\n# TYPE %s gauge\n",
		qn, f.name, fmtVal(hist.RelativeError()), qn)
	for _, s := range f.series {
		for _, q := range quantiles {
			v := float64(s.h.Quantile(q)) / div
			fmt.Fprintf(w, "%s%s %s\n", qn, withLabels(s.labels, `quantile="`+fmtVal(q)+`"`), fmtVal(v))
		}
	}
}

// SortedNames returns every registered family name, sorted — test helper
// for exposition linting.
func (r *Registry) SortedNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.fams))
	for _, f := range r.fams {
		names = append(names, f.name)
	}
	sort.Strings(names)
	return names
}
