package closeness

// The pre-MS-BFS closeness engine, preserved verbatim (modulo Legacy
// renames) from before the bit-parallel rewrite. It pins two contracts:
// TestEngineMatchesLegacyBitwise proves the MS-BFS engine reproduces its
// estimates bit for bit, and BenchmarkClosenessLegacy keeps the speedup
// measurable after the production code moved on — the same discipline as
// core's legacySampler.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand/v2"

	"saphyra/internal/graph"
	"saphyra/internal/params"
	"saphyra/internal/sched"
	"saphyra/internal/stats"
)

// legacyAdjacency is the old engine's adjacency seam: a node count and a
// concrete scalar BFS.
type legacyAdjacency interface {
	NumNodes() int
	BFSDistancesInto(source graph.Node, dist []int32) []int32
}

// estimateLegacy is the old engine: one scalar BFS per sampled source.
func estimateLegacy(ctx context.Context, adj legacyAdjacency, a []graph.Node, opt Options) (*Result, error) {
	opt.setDefaults()
	n := adj.NumNodes()
	if n < 2 {
		return nil, errors.New("closeness: graph too small")
	}
	eps, delta := opt.Epsilon, opt.Delta
	if err := params.CheckEpsDelta(eps, delta); err != nil {
		return nil, fmt.Errorf("closeness: %w", err)
	}
	if err := params.CheckTargets(a, n); err != nil {
		return nil, fmt.Errorf("closeness: %w", err)
	}
	nodes := graph.DedupSorted(a)
	k := len(nodes)

	n0 := int64(math.Ceil(stats.VCConstant / (eps * eps) * math.Log(1/delta)))
	if n0 < 1 {
		n0 = 1
	}
	nmax := stats.UnionSampleSize(eps, delta, k) * 4
	if nmax < n0 {
		nmax = n0
	}
	if opt.MaxSamples > 0 {
		if nmax > opt.MaxSamples {
			nmax = opt.MaxSamples
		}
		if n0 > nmax {
			n0 = nmax
		}
	}
	rounds := int64(1)
	if nmax > n0 {
		rounds = int64(math.Ceil(math.Log2(float64(nmax) / float64(n0))))
	}
	deltaI := delta / (2 * float64(rounds) * float64(k))

	res := &Result{Nodes: nodes}
	accs := make([]stats.MeanVar, k)
	var drawn int64
	target := n0
	samplers := make([]*legacySourceSampler, sched.VirtualWorkers)
	mk := func(v int) *legacySourceSampler {
		return newLegacySourceSampler(adj, nodes, opt.Seed+int64(v+1)*612_361)
	}
	var quota []int64
	for {
		res.Rounds++
		var err error
		quota, err = legacyBatchParallel(ctx, samplers, mk, opt.Workers, target-drawn, quota, accs)
		if err != nil {
			return nil, fmt.Errorf("closeness: %w", err)
		}
		drawn = target
		worst := 0.0
		for i := range accs {
			if e := stats.EpsilonBernstein(drawn, deltaI, accs[i].Variance()); e > worst {
				worst = e
			}
		}
		if worst <= eps {
			res.StoppedEarly = true
			break
		}
		if drawn >= nmax {
			break
		}
		target = drawn * 2
		if target > nmax {
			target = nmax
		}
	}
	res.Samples = drawn
	res.Closeness = make([]float64, k)
	for i := range accs {
		res.Closeness[i] = accs[i].Mean()
	}
	return res, nil
}

type legacySourceSampler struct {
	adj   legacyAdjacency
	nodes []graph.Node
	rng   *rand.Rand
	dist  []int32
	local []stats.MeanVar
}

func newLegacySourceSampler(adj legacyAdjacency, nodes []graph.Node, seed int64) *legacySourceSampler {
	return &legacySourceSampler{
		adj:   adj,
		nodes: nodes,
		rng:   rand.New(rand.NewPCG(uint64(seed), 0xbb67ae8584caa73b)),
		dist:  make([]int32, adj.NumNodes()),
		local: make([]stats.MeanVar, len(nodes)),
	}
}

func (s *legacySourceSampler) sampleBatch(count int64) {
	n := s.adj.NumNodes()
	for j := int64(0); j < count; j++ {
		u := graph.Node(s.rng.IntN(n))
		s.dist = s.adj.BFSDistancesInto(u, s.dist)
		for i, v := range s.nodes {
			x := 0.0
			if v != u && s.dist[v] > 0 {
				x = 1 / float64(s.dist[v])
			}
			s.local[i].Add(x)
		}
	}
}

func legacyBatchParallel(ctx context.Context, samplers []*legacySourceSampler, mk func(v int) *legacySourceSampler, workers int, count int64, quota []int64, accs []stats.MeanVar) ([]int64, error) {
	if count <= 0 {
		return quota, nil
	}
	if err := params.Interrupted(ctx); err != nil {
		return quota, err
	}
	nv := len(samplers)
	quota = sched.Split(count, nv, quota)
	err := sched.DoCtx(ctx, nv, workers, func(v int) {
		if quota[v] == 0 {
			return
		}
		if samplers[v] == nil {
			samplers[v] = mk(v)
		}
		samplers[v].sampleBatch(quota[v])
	})
	if err != nil {
		return quota, &params.CanceledError{Cause: err}
	}
	for i := range accs {
		accs[i] = stats.MeanVar{}
	}
	for _, s := range samplers {
		if s == nil {
			continue
		}
		for i := range accs {
			accs[i].Merge(&s.local[i])
		}
	}
	return quota, nil
}
