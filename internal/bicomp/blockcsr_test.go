package bicomp

import (
	"testing"

	"saphyra/internal/graph"
	"saphyra/internal/testutil"
)

func buildView(t *testing.T, g *graph.Graph) *BlockCSR {
	t.Helper()
	d := Decompose(g)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	o := NewOutReach(d)
	v := NewBlockCSR(d, o)
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestBlockCSRPathGraph(t *testing.T) {
	v := buildView(t, graph.Path(5))
	// Interior nodes are cutpoints with two size-2 blocks: two runs of one
	// edge each; endpoints have a single run.
	for u := graph.Node(1); u < 4; u++ {
		lo, hi := v.Runs(u)
		if hi-lo != 2 {
			t.Errorf("node %d: %d runs, want 2", u, hi-lo)
		}
	}
	lo, hi := v.Runs(0)
	if hi-lo != 1 {
		t.Errorf("node 0: %d runs, want 1", hi-lo)
	}
	_ = lo
}

func TestBlockCSRRandomGraphs(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		buildView(t, testutil.RandomConnectedGraph(120, 200, seed))
	}
	// pendant-heavy: a tree, every edge its own block
	buildView(t, graph.RandomTree(200, 3))
	// dense: one giant block
	buildView(t, graph.BarabasiAlbert(300, 4, 9))
	// disconnected with isolated nodes
	b := graph.NewBuilder(10)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	b.AddEdge(5, 6)
	b.SetNumNodes(10)
	buildView(t, b.Build())
}

func TestBlockCSRFindRun(t *testing.T) {
	g := testutil.RandomConnectedGraph(80, 140, 4)
	v := buildView(t, g)
	d := v.D
	for u := graph.Node(0); int(u) < g.NumNodes(); u++ {
		for _, b := range d.NodeBlocks[u] {
			j := v.FindRun(u, b)
			if j < 0 {
				t.Fatalf("node %d block %d: FindRun returned -1", u, b)
			}
			if v.RunBlock[j] != b {
				t.Fatalf("node %d block %d: FindRun returned run of block %d", u, b, v.RunBlock[j])
			}
		}
		if j := v.FindRun(u, int32(d.NumBlocks)+5); j != -1 {
			t.Fatalf("node %d: FindRun for absent block returned %d", u, j)
		}
	}
}

// The grouped view must enumerate exactly the same in-block neighbor sets as
// an EdgeBlock scan of the plain adjacency.
func TestBlockCSRMatchesEdgeBlockScan(t *testing.T) {
	g := testutil.RandomConnectedGraph(100, 180, 11)
	v := buildView(t, g)
	d := v.D
	for u := graph.Node(0); int(u) < g.NumNodes(); u++ {
		base := g.AdjOffset(u)
		for _, b := range d.NodeBlocks[u] {
			var want []graph.Node
			for i, w := range g.Neighbors(u) {
				if d.EdgeBlock[base+int64(i)] == b {
					want = append(want, w)
				}
			}
			j := v.FindRun(u, b)
			lo, hi := v.RunEdges(j)
			got := v.Nbr[lo:hi]
			if len(got) != len(want) {
				t.Fatalf("node %d block %d: run has %d neighbors, want %d", u, b, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("node %d block %d: run[%d] = %d, want %d", u, b, i, got[i], want[i])
				}
			}
		}
	}
}
