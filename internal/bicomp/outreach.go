package bicomp

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"sync"

	"saphyra/internal/graph"
)

// OutReach holds the out-reach quantities of Section IV-A: for every block
// C_i and node v in C_i, r_i(v) = |R_i(v)| is the number of nodes reachable
// from v without passing through any other node of C_i (Claim 9: the r_i(v)
// of a block partition v's connected component).
//
// From the r values it derives, per block i,
//
//	S_i = sum_{v in C_i} r_i(v)            (= size of the component, Eq 18)
//	Q_i = sum_{v in C_i} r_i(v)^2
//	w_i = S_i^2 - Q_i                      (unnormalized pair mass of C_i)
//
// so that gamma = (sum_i w_i) / (n(n-1)) (Eq 19) and, for a target set A,
// eta = (sum_{i in I(A)} w_i) / (sum_i w_i) (Eq 23). The cutpoint correction
// bca(v) (Eq 21, generalized to any number of blocks per Lemma 14) is
//
//	bca(v) = sum_{C_i contains v} (S_i - r_i(v)) (r_i(v) - 1) / (n(n-1)).
type OutReach struct {
	D *Decomposition
	// R[b][j] = r_b(v) for v = D.Blocks[b][j].
	R [][]int64
	// S[b], Q[b], W[b] as defined above. W[b] = S[b]^2 - Q[b].
	S, Q, W []int64
	// WTotal = sum_b W[b] as float64 (can exceed int64 for path-like graphs
	// at extreme scale).
	WTotal float64
	// rNode[v][k] = r_b(v) for b = D.NodeBlocks[v][k]; allocated only for
	// cutpoints (non-cutpoints always have r = 1). A short cache-local scan
	// of NodeBlocks[v] replaces the map lookup Of() used to do — Of sits on
	// the hot path of both the exact 2-hop phase and the sampler tables.
	rNode [][]int64

	// seenPool recycles the epoch-stamped block-dedup scratch of BlocksOf
	// (called with A = V by full-network ranking).
	seenPool sync.Pool
}

// NewOutReach computes all out-reach quantities in O(n + total block size)
// using a weighted DP over the block-cut tree.
func NewOutReach(d *Decomposition) *OutReach {
	o := &OutReach{
		D:     d,
		R:     make([][]int64, d.NumBlocks),
		S:     make([]int64, d.NumBlocks),
		Q:     make([]int64, d.NumBlocks),
		W:     make([]int64, d.NumBlocks),
		rNode: make([][]int64, len(d.NodeBlocks)),
	}

	// Build the block-cut tree. Tree nodes: blocks [0, L), then cutpoints
	// [L, L+C). Each tree node carries a vertex weight: a block's weight is
	// the number of its non-cutpoint vertices; a cutpoint's weight is 1.
	// Subtree weight sums then count distinct graph vertices exactly once.
	L := d.NumBlocks
	cutIndex := make(map[graph.Node]int32)
	var cuts []graph.Node
	for v, is := range d.IsCut {
		if is {
			cutIndex[graph.Node(v)] = int32(L + len(cuts))
			cuts = append(cuts, graph.Node(v))
		}
	}
	T := L + len(cuts)
	weight := make([]int64, T)
	treeAdj := make([][]int32, T)
	for b := 0; b < L; b++ {
		w := int64(len(d.Blocks[b]))
		for _, v := range d.Blocks[b] {
			if d.IsCut[v] {
				w--
				c := cutIndex[v]
				treeAdj[b] = append(treeAdj[b], c)
				treeAdj[c] = append(treeAdj[c], int32(b))
			}
		}
		weight[b] = w
	}
	for i, v := range cuts {
		weight[L+i] = 1
		_ = v
	}

	// Iterative rooted DP: subtree weights and parent pointers per tree
	// component.
	parent := make([]int32, T)
	sub := make([]int64, T)
	order := make([]int32, 0, T)
	visited := make([]bool, T)
	for root := 0; root < T; root++ {
		if visited[root] {
			continue
		}
		visited[root] = true
		parent[root] = -1
		order = order[:0]
		order = append(order, int32(root))
		for head := 0; head < len(order); head++ {
			x := order[head]
			for _, y := range treeAdj[x] {
				if !visited[y] {
					visited[y] = true
					parent[y] = x
					order = append(order, y)
				}
			}
		}
		// accumulate subtree weights bottom-up (reverse BFS order)
		for i := len(order) - 1; i >= 0; i-- {
			x := order[i]
			sub[x] = weight[x]
			for _, y := range treeAdj[x] {
				if y != parent[x] {
					sub[x] += sub[y]
				}
			}
		}
	}

	// r_b(v): 1 for non-cutpoints. For cutpoint c in block b, removing the
	// tree edge (c, b) splits the component; r is the weight of the side
	// containing c.
	for b := 0; b < L; b++ {
		members := d.Blocks[b]
		rs := make([]int64, len(members))
		var compSize int64
		if len(members) > 0 {
			compSize = d.CompSize[d.CompLabel[members[0]]]
		}
		var S, Q int64
		for j, v := range members {
			r := int64(1)
			if d.IsCut[v] {
				c := cutIndex[v]
				var down int64
				if parent[c] == int32(b) {
					down = compSize - sub[c]
				} else {
					// parent of block b must be c (tree edge orientation)
					down = sub[int32(b)]
				}
				r = compSize - down
				if o.rNode[v] == nil {
					o.rNode[v] = make([]int64, len(d.NodeBlocks[v]))
					for k := range o.rNode[v] {
						o.rNode[v][k] = 1
					}
				}
				// NodeBlocks[v] is sorted: binary search keeps hub
				// cutpoints (thousands of pendant blocks) O(deg log deg)
				// instead of O(deg^2) across their blocks.
				bs := d.NodeBlocks[v]
				if k := sort.Search(len(bs), func(i int) bool { return bs[i] >= int32(b) }); k < len(bs) && bs[k] == int32(b) {
					o.rNode[v][k] = r
				}
			}
			rs[j] = r
			S += r
			Q += r * r
		}
		o.R[b] = rs
		o.S[b] = S
		o.Q[b] = Q
		o.W[b] = S*S - Q
		o.WTotal += float64(o.W[b])
	}
	return o
}

// FlatR returns the R table flattened in (block, member) order — for each
// block b in ascending id, r_b(v) for each member v of D.Blocks[b] in member
// order. This is the payload of the view file's out-reach section
// (persist.go flag bit 1); NewOutReachFromFlat is the inverse. The length
// equals the view's run count.
func (o *OutReach) FlatR() []int64 {
	var total int
	for _, rs := range o.R {
		total += len(rs)
	}
	flat := make([]int64, 0, total)
	for _, rs := range o.R {
		flat = append(flat, rs...)
	}
	return flat
}

// NewOutReachFromFlat reconstructs the OutReach tables from a flattened R
// table (FlatR) and the decomposition, in O(runs + n) — without the
// block-cut-tree DP of NewOutReach. S/Q/W/WTotal and the cutpoint rNode
// cache all derive from R. The r-values are validated with Claim 9 (the sum
// over each block must equal its component's size), so a corrupt or
// mismatched section returns an error instead of silently poisoning every
// downstream estimate; reconstruction from an intact section is
// bitwise-identical to NewOutReach (tested).
func NewOutReachFromFlat(d *Decomposition, flat []int64) (*OutReach, error) {
	var total int
	for _, ms := range d.Blocks {
		total += len(ms)
	}
	if len(flat) != total {
		return nil, fmt.Errorf("bicomp: out-reach table has %d entries, decomposition has %d memberships", len(flat), total)
	}
	o := &OutReach{
		D:     d,
		R:     make([][]int64, d.NumBlocks),
		S:     make([]int64, d.NumBlocks),
		Q:     make([]int64, d.NumBlocks),
		W:     make([]int64, d.NumBlocks),
		rNode: make([][]int64, len(d.NodeBlocks)),
	}
	off := 0
	for b := 0; b < d.NumBlocks; b++ {
		members := d.Blocks[b]
		rs := flat[off : off+len(members) : off+len(members)]
		off += len(members)
		var S, Q int64
		for j, v := range members {
			r := rs[j]
			if r < 1 {
				return nil, fmt.Errorf("bicomp: out-reach section: block %d member %d has r = %d < 1", b, v, r)
			}
			S += r
			Q += r * r
			if d.IsCut[v] {
				if o.rNode[v] == nil {
					o.rNode[v] = make([]int64, len(d.NodeBlocks[v]))
					for k := range o.rNode[v] {
						o.rNode[v][k] = 1
					}
				}
				bs := d.NodeBlocks[v]
				if k := sort.Search(len(bs), func(i int) bool { return bs[i] >= int32(b) }); k < len(bs) && bs[k] == int32(b) {
					o.rNode[v][k] = r
				}
			} else if r != 1 {
				return nil, fmt.Errorf("bicomp: out-reach section: non-cutpoint %d has r = %d in block %d", v, r, b)
			}
		}
		if len(members) > 0 {
			if comp := d.CompSize[d.CompLabel[members[0]]]; S != comp {
				return nil, fmt.Errorf("bicomp: out-reach section: block %d sums to %d, component size is %d (Claim 9)", b, S, comp)
			}
		}
		o.R[b] = rs
		o.S[b] = S
		o.Q[b] = Q
		o.W[b] = S*S - Q
		o.WTotal += float64(o.W[b])
	}
	return o, nil
}

// Of returns r_b(v) for node v in block b. Non-cutpoints always have r = 1;
// cutpoint values are found in the node's block list — a cache-local scan
// for the typical short list, a binary search (NodeBlocks is sorted) for
// hub cutpoints that bridge thousands of pendant blocks. Calling it for a
// node outside the block returns 1 (callers must ensure membership).
func (o *OutReach) Of(b int32, v graph.Node) int64 {
	if !o.D.IsCut[v] {
		return 1
	}
	bs := o.D.NodeBlocks[v]
	if len(bs) <= 8 {
		for k, bb := range bs {
			if bb == b {
				return o.rNode[v][k]
			}
		}
		return 1
	}
	k := sort.Search(len(bs), func(i int) bool { return bs[i] >= b })
	if k < len(bs) && bs[k] == b {
		return o.rNode[v][k]
	}
	return 1
}

// Gamma returns gamma (Eq 19): the probability that a random shortest path
// of the SP space survives into the ISP space, i.e. (sum_i w_i) / (n(n-1)).
func (o *OutReach) Gamma() float64 {
	n := float64(o.D.G.NumNodes())
	if n < 2 {
		return 0
	}
	return o.WTotal / (n * (n - 1))
}

// WeightOfBlocks returns sum_{i in I} w_i for the given block set as float64.
func (o *OutReach) WeightOfBlocks(blocks []int32) float64 {
	var s float64
	for _, b := range blocks {
		s += float64(o.W[b])
	}
	return s
}

// Eta returns eta for a target set A (Eq 23): the fraction of ISP mass in
// blocks touching A. blocksOfA must be the de-duplicated I(A).
func (o *OutReach) Eta(blocksOfA []int32) float64 {
	if o.WTotal == 0 {
		return 0
	}
	return o.WeightOfBlocks(blocksOfA) / o.WTotal
}

// blockSeen is the reusable BlocksOf scratch: a stamp per block plus the
// current epoch, so de-duplication costs one array read per membership with
// no clearing between calls.
type blockSeen struct {
	stamp []int32
	epoch int32
}

// BlocksOf returns I(A): the sorted, de-duplicated ids of blocks containing
// at least one node of A (Eq 22).
func (o *OutReach) BlocksOf(a []graph.Node) []int32 {
	st, _ := o.seenPool.Get().(*blockSeen)
	if st == nil || len(st.stamp) < o.D.NumBlocks {
		st = &blockSeen{stamp: make([]int32, o.D.NumBlocks)}
	}
	if st.epoch == math.MaxInt32 {
		clear(st.stamp)
		st.epoch = 0
	}
	st.epoch++
	e := st.epoch
	var out []int32
	for _, v := range a {
		for _, b := range o.D.NodeBlocks[v] {
			if st.stamp[b] != e {
				st.stamp[b] = e
				out = append(out, b)
			}
		}
	}
	o.seenPool.Put(st)
	slices.Sort(out)
	return out
}

// BCA returns bca(v) (Eq 21): the probability that v is a break point of a
// random shortest path of the SP space. Zero for non-cutpoints.
func (o *OutReach) BCA(v graph.Node) float64 {
	if !o.D.IsCut[v] {
		return 0
	}
	n := float64(o.D.G.NumNodes())
	if n < 2 {
		return 0
	}
	// NodeBlocks[v] and rNode[v] are index-aligned, so no per-block Of()
	// re-search is needed (rNode is always allocated for cutpoints).
	var acc float64
	for k, b := range o.D.NodeBlocks[v] {
		r := float64(o.rNode[v][k])
		S := float64(o.S[b])
		acc += (S - r) * (r - 1)
	}
	return acc / (n * (n - 1))
}

// PairMass returns the unnormalized pair mass q'_{st} = r_b(s) * r_b(t) for
// a pair of distinct nodes of block b. The SP-space probability of any
// single shortest path between them is q'_{st} / (sigma_st * n(n-1)).
func (o *OutReach) PairMass(b int32, s, t graph.Node) float64 {
	return float64(o.Of(b, s)) * float64(o.Of(b, t))
}

// CheckClaim9 verifies sum_{v in C_i} r_i(v) = |component| for every block
// (Claim 9 / Eq 18). For tests.
func (o *OutReach) CheckClaim9() error {
	for b := 0; b < o.D.NumBlocks; b++ {
		members := o.D.Blocks[b]
		if len(members) == 0 {
			continue
		}
		comp := o.D.CompSize[o.D.CompLabel[members[0]]]
		if o.S[b] != comp {
			return fmt.Errorf("bicomp: block %d: sum r = %d, component size = %d", b, o.S[b], comp)
		}
	}
	return nil
}
