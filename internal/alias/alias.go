// Package alias implements Walker/Vose alias tables for O(1) draws from a
// fixed discrete distribution. SaPHyRa's multistage sampler (Algorithm 2)
// draws from three static distributions per sample — block mass w_i, source
// mass r(s)(S-r(s)), target mass r(t) — and the alias tables built once per
// target set replace the O(log n) binary searches over cumulative tables in
// the hot loop.
//
// Construction is Vose's O(n) stable partition into "small" and "large"
// columns; it is fully deterministic, so samplers built from the same
// weights draw identical sequences for identical uniform streams — one of
// the determinism guarantees the engines rely on (DESIGN.md sections 2 and
// 3): the sampling engine's per-stream outputs are pure functions of the
// seed because every stage, including these tables, is.
package alias

// Table is an immutable alias table over indices [0, Len()).
type Table struct {
	prob  []float64 // acceptance threshold per column
	alias []int32   // fallback index per column
}

// New builds an alias table for the given non-negative weights. Negative
// weights are treated as zero; if every weight is zero (or the slice is
// empty after clamping) the table draws uniformly.
func New(weights []float64) *Table {
	n := len(weights)
	t := &Table{
		prob:  make([]float64, n),
		alias: make([]int32, n),
	}
	if n == 0 {
		return t
	}
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		// Degenerate: uniform over all columns.
		for i := range t.prob {
			t.prob[i] = 1
			t.alias[i] = int32(i)
		}
		return t
	}
	// Scaled weights: mean 1 per column.
	scaled := make([]float64, n)
	scale := float64(n) / total
	for i, w := range weights {
		if w > 0 {
			scaled[i] = w * scale
		}
	}
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i := n - 1; i >= 0; i-- { // reverse so pops go in index order
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		t.prob[s] = scaled[s]
		t.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			large = large[:len(large)-1]
			small = append(small, l)
		}
	}
	// Float round-off leftovers: both lists hold columns with mass ~1.
	for _, i := range large {
		t.prob[i] = 1
		t.alias[i] = i
	}
	for _, i := range small {
		t.prob[i] = 1
		t.alias[i] = i
	}
	return t
}

// Len returns the number of columns.
func (t *Table) Len() int { return len(t.prob) }

// Draw maps one uniform variate in [0, 1) to an index: the integer part of
// u*n selects the column, the fractional part replays as the acceptance
// coin. One rng call per draw, O(1), no allocation.
func (t *Table) Draw(u float64) int {
	f := u * float64(len(t.prob))
	i := int(f)
	if i >= len(t.prob) { // u == 1-ulp round-up guard
		i = len(t.prob) - 1
	}
	if f-float64(i) < t.prob[i] {
		return i
	}
	return int(t.alias[i])
}
