// Package vc implements the VC-dimension bounds of the paper (Lemma 5,
// Corollary 22, Lemma 23, Table I) for betweenness-centrality hypothesis
// classes.
//
// The generic bound (Lemma 5) is VC(H) <= floor(log2(pi_max)) + 1, where
// pi_max is the maximum number of hypotheses that evaluate to 1 on a single
// sample. For RSP_bc, pi_max is the maximum number of target nodes that can
// be inner nodes of one shortest path, which Table I instantiates as:
//
//	full network:  BD(V) - 1        (max bi-component diameter, Eq 35)
//	any subset A:  BS(A)            (Lemma 23 upper bound)
//	l-hop ball:    2l + 1
//
// versus Riondato et al. [45]'s VD(V) - 1 (graph diameter). All bounds here
// are safe upper bounds (they only ever increase the sample budget).
package vc

import (
	"math"

	"saphyra/internal/bicomp"
	"saphyra/internal/graph"
)

// DimFromMaxInner applies Lemma 5: given an upper bound piMax on the number
// of hypotheses simultaneously positive on one sample, the VC dimension is
// at most floor(log2(piMax)) + 1 (and 0 when no hypothesis is ever
// positive).
func DimFromMaxInner(piMax int64) int {
	if piMax <= 0 {
		return 0
	}
	return int(math.Floor(math.Log2(float64(piMax)))) + 1
}

// Riondato returns the [45] bound floor(log2(VD-1)) + 1 from the graph
// diameter VD (in edges): at most VD-1 inner nodes on any shortest path.
func Riondato(diameter int32) int {
	return DimFromMaxInner(int64(diameter) - 1)
}

// FullNetwork returns the SaPHyRa_bc bound for A = V: with bi-component
// sampling a path has at most BD(V)-1 inner nodes, BD(V) the maximum
// bi-component diameter. blockDiameterUB must upper-bound BD(V) (e.g.
// Decomposition.MaxBlockDiameterUpperBound).
func FullNetwork(blockDiameterUB int32) int {
	return DimFromMaxInner(int64(blockDiameterUB) - 1)
}

// LHop returns the Table I bound for A = the l-hop neighborhood of a node:
// floor(log2(2l+1)) + 1.
func LHop(l int) int {
	return DimFromMaxInner(int64(2*l + 1))
}

// SubsetBound computes the Lemma 23 upper bound on BS(A), the maximum
// number of A-nodes that are inner nodes of one intra-component shortest
// path:
//
//	BS(A) <= max_i min( VD(C_i)-1, VD(A ∩ C_i)+1, |A ∩ C_i| )
//
// over blocks i in I(A). Block and subset diameters are themselves upper
// bounds: blocks of at most exactThreshold nodes use exact BFS diameters,
// larger blocks use the double-sweep 2*ecc bound; subset diameters use the
// 2*max-distance bound of Section IV-C.
func SubsetBound(d *bicomp.Decomposition, a []graph.Node, exactThreshold int) int64 {
	if len(a) == 0 {
		return 0
	}
	// Group A by block, iterating a in caller order (not map order): the
	// first member of each group seeds the subset-diameter BFS below, so a
	// nondeterministic order would make the bound — and with it the sample
	// budget and the estimates — vary between identically-seeded runs.
	seen := make(map[graph.Node]struct{}, len(a))
	byBlock := make(map[int32][]graph.Node)
	for _, v := range a {
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		for _, b := range d.NodeBlocks[v] {
			byBlock[b] = append(byBlock[b], v)
		}
	}
	var bs int64
	for b, members := range byBlock {
		// Cheap terms first; the per-block BFS work only runs when it could
		// still lower the running minimum.
		cand := int64(len(members))
		if v := int64(d.BlockDiameterUpperBound(b, exactThreshold)) - 1; v < cand {
			cand = v
		}
		// subVD+1 >= 2 whenever |members| >= 2, so the subset-diameter BFS
		// can only tighten candidates above 2.
		if cand > 2 && len(members) >= 2 {
			if v := int64(subsetDiameterUB(d.G, members)) + 1; v < cand {
				cand = v
			}
		}
		if cand < 0 {
			cand = 0
		}
		if cand > bs {
			bs = cand
		}
	}
	return bs
}

// Subset returns the SaPHyRa_bc VC bound for an arbitrary target set A
// (Corollary 22 with Lemma 23): floor(log2(BS(A))) + 1.
func Subset(d *bicomp.Decomposition, a []graph.Node, exactThreshold int) int {
	return DimFromMaxInner(SubsetBound(d, a, exactThreshold))
}

// subsetDiameterUB bounds the pairwise distance among nodes (all in one
// block, so graph distances equal block distances) by 2*max distance from
// the first member.
func subsetDiameterUB(g *graph.Graph, members []graph.Node) int32 {
	if len(members) < 2 {
		return 0
	}
	dist := graph.BFSDistances(g, members[0], nil)
	var far int32
	for _, t := range members {
		if d := dist[t]; d > far {
			far = d
		}
	}
	return 2 * far
}

// TableIRow bundles the three Table I bounds for one network/subset pair so
// experiment drivers can print the comparison.
type TableIRow struct {
	RiondatoFull  int // [45], uses graph diameter
	SaPHyRaFull   int // BD(V) bound
	SaPHyRaSubset int // BS(A) bound
}

// TableI computes a Table I comparison row. diameterUB must upper-bound the
// graph diameter (e.g. 2 * eccentricity of any node). Because all three
// quantities are safe upper bounds on the same VC dimension, each tighter
// bound is additionally capped by the looser ones (min of valid upper bounds
// is a valid upper bound); this preserves the Table I ordering even when the
// heuristic diameter estimates would invert it.
func TableI(d *bicomp.Decomposition, a []graph.Node, diameterUB int32, exactThreshold int) TableIRow {
	row := TableIRow{
		RiondatoFull:  Riondato(diameterUB),
		SaPHyRaFull:   FullNetwork(d.MaxBlockDiameterUpperBound(exactThreshold)),
		SaPHyRaSubset: Subset(d, a, exactThreshold),
	}
	if row.SaPHyRaFull > row.RiondatoFull {
		row.SaPHyRaFull = row.RiondatoFull
	}
	if row.SaPHyRaSubset > row.SaPHyRaFull {
		row.SaPHyRaSubset = row.SaPHyRaFull
	}
	return row
}
