package graph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// ReadEdgeList parses a whitespace-separated edge list. Lines starting with
// '#' or '%' and blank lines are ignored. Each remaining line must contain at
// least two integer fields "u v"; additional fields (weights, timestamps) are
// ignored. Node ids may be arbitrary non-negative integers and are compacted
// to a dense [0, n) range preserving first-seen order; the mapping is
// returned so callers can translate back to original ids.
func ReadEdgeList(r io.Reader) (*Graph, []int64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	remap := make(map[int64]Node)
	var original []int64
	intern := func(raw int64) Node {
		if id, ok := remap[raw]; ok {
			return id
		}
		id := Node(len(original))
		remap[raw] = id
		original = append(original, raw)
		return id
	}
	b := &Builder{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, nil, fmt.Errorf("graph: line %d: want at least 2 fields, got %q", lineNo, line)
		}
		u, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("graph: line %d: bad source id: %v", lineNo, err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("graph: line %d: bad target id: %v", lineNo, err)
		}
		if u < 0 || v < 0 {
			return nil, nil, fmt.Errorf("graph: line %d: negative node id", lineNo)
		}
		b.AddEdge(intern(u), intern(v))
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	b.SetNumNodes(len(original))
	return b.Build(), original, nil
}

// LoadEdgeList reads an edge-list file from disk. See ReadEdgeList.
func LoadEdgeList(path string) (*Graph, []int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("graph: %w", err)
	}
	defer f.Close()
	return ReadEdgeList(f)
}

// WriteEdgeList writes the graph as "u v" lines (each undirected edge once,
// with u < v), preceded by a comment header with node and edge counts.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# nodes %d edges %d\n", g.NumNodes(), g.NumEdges()); err != nil {
		return err
	}
	for u := Node(0); int(u) < g.NumNodes(); u++ {
		for _, v := range g.Neighbors(u) {
			if u < v {
				if _, err := fmt.Fprintf(bw, "%d %d\n", u, v); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// SaveEdgeList writes the graph to a file. See WriteEdgeList.
func SaveEdgeList(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("graph: %w", err)
	}
	if err := WriteEdgeList(f, g); err != nil {
		f.Close()
		return fmt.Errorf("graph: writing %s: %w", path, err)
	}
	return f.Close()
}
