package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"slices"
	"time"

	"saphyra/internal/obs"
	"saphyra/internal/serve"
)

// maxRelayBody bounds a request or response body the router holds in
// memory (it must buffer request bodies to re-send them on a hop retry).
// Matches the serving layer's own /v1/rank body cap.
const maxRelayBody = 16 << 20

// RouterConfig tunes a Router. Replicas is the only required field.
type RouterConfig struct {
	// Replicas is the ordered base-URL list of the fleet ("http://host:port").
	// Order matters: every fleet member must be handed the same list, in the
	// same order, for ring agreement.
	Replicas []string
	// VNodes per replica on the ring. Default DefaultVNodes.
	VNodes int
	// HopBudget bounds replicas tried per request (the home plus retries on
	// connect failure / 5xx). Default 3, clamped to the fleet size.
	HopBudget int
	// Client issues the proxied requests and probes. Default: a dedicated
	// client with no overall timeout (request deadlines ride in on the
	// proxied context; a router-side cap would race the replicas' own
	// Timeout-Ms handling).
	Client *http.Client
	// ProbeInterval spaces the active /readyz probe loop. Zero means
	// DefaultProbeInterval; negative disables active probing (passive
	// health from forwarded traffic still applies — used by tests that
	// want deterministic health transitions).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe. Default 1s.
	ProbeTimeout time.Duration
}

// DefaultProbeInterval spaces active health probes.
const DefaultProbeInterval = 500 * time.Millisecond

// Router is the fleet front-end: it consistent-hashes each query onto the
// replica ring and proxies /v1/rank and /v1/topk with policy headers
// intact, retrying on the next ring owner on connect failure or 5xx within
// a per-request hop budget. Placement is affinity, not correctness — any
// replica computes any query bitwise-identically — so the router parses
// only enough of each request to hash its result-relevant wire fields; the
// canonical Query.Key (which needs the view) stays a replica concern, and
// the peer-fill tier using it guarantees single-compute even when the
// router's placement and the replicas' ring disagree about a key's home.
//
// The router carries no view, no cache, and no per-key state: it can be
// restarted, or run N-way redundant, with no effect on results.
type Router struct {
	cfg    RouterConfig
	ring   *Ring
	health []*healthState
	client *http.Client
	mux    *http.ServeMux
	reg    *obs.Registry
	m      routerMetrics

	probeStop  context.CancelFunc
	probeDone  chan struct{}
	reloadGate chan struct{} // capacity 1: serializes rolling reloads
}

type routerMetrics struct {
	forwarded  []*obs.Counter          // per replica: requests answered by it
	connectErr []*obs.Counter          // per replica: transport failures
	upstream5  []*obs.Counter          // per replica: 5xx hopped past
	exhausted  *obs.Counter            // requests that ran out of hops
	hops       *obs.Hist               // replicas tried per answered request
	relayed    map[string]*obs.Counter // per endpoint
}

// NewRouter validates the config, builds the ring, and starts the active
// probe loop. Close stops the loop.
func NewRouter(cfg RouterConfig) (*Router, error) {
	ring, err := NewRing(cfg.Replicas, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	if cfg.HopBudget <= 0 {
		cfg.HopBudget = 3
	}
	if cfg.HopBudget > len(cfg.Replicas) {
		cfg.HopBudget = len(cfg.Replicas)
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = DefaultProbeInterval
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = time.Second
	}
	rt := &Router{
		cfg:        cfg,
		ring:       ring,
		health:     make([]*healthState, len(cfg.Replicas)),
		client:     cfg.Client,
		reg:        obs.NewRegistry(),
		reloadGate: make(chan struct{}, 1),
	}
	rt.m.forwarded = make([]*obs.Counter, len(cfg.Replicas))
	rt.m.connectErr = make([]*obs.Counter, len(cfg.Replicas))
	rt.m.upstream5 = make([]*obs.Counter, len(cfg.Replicas))
	for i, url := range cfg.Replicas {
		rt.health[i] = newHealthState()
		lbl := obs.Label("replica", url)
		const routeHelp = "Hops taken by the router, by replica and outcome."
		rt.m.forwarded[i] = rt.reg.Counter("saphyra_router_route_total", routeHelp, lbl+`,outcome="forwarded"`)
		rt.m.connectErr[i] = rt.reg.Counter("saphyra_router_route_total", routeHelp, lbl+`,outcome="connect_error"`)
		rt.m.upstream5[i] = rt.reg.Counter("saphyra_router_route_total", routeHelp, lbl+`,outcome="upstream_5xx"`)
		h := rt.health[i]
		rt.reg.GaugeFunc("saphyra_router_replica_health", "Passive health EWMA per replica (1 = healthy).", lbl,
			func() float64 { return h.score() })
	}
	rt.m.exhausted = rt.reg.Counter("saphyra_router_exhausted_total",
		"Requests that failed every replica within the hop budget.", "")
	rt.m.hops = rt.reg.Histogram("saphyra_router_hops",
		"Replicas tried per proxied request.", "", obs.UnitCount)
	rt.m.relayed = map[string]*obs.Counter{}
	for _, ep := range []string{"rank", "topk"} {
		rt.m.relayed[ep] = rt.reg.Counter("saphyra_router_requests_total",
			"Requests received by the router, by endpoint.", `endpoint="`+ep+`"`)
	}

	rt.mux = http.NewServeMux()
	rt.mux.HandleFunc("POST /v1/rank", rt.handleRank)
	rt.mux.HandleFunc("GET /v1/topk", rt.handleTopK)
	rt.mux.HandleFunc("GET /healthz", rt.handleHealthz)
	rt.mux.HandleFunc("GET /readyz", rt.handleReadyz)
	rt.mux.HandleFunc("GET /statusz", rt.handleStatusz)
	rt.mux.HandleFunc("GET /metricsz", rt.handleMetricsz)
	rt.mux.HandleFunc("POST /admin/reload", rt.handleReload)

	if cfg.ProbeInterval > 0 {
		ctx, cancel := context.WithCancel(context.Background())
		rt.probeStop = cancel
		rt.probeDone = make(chan struct{})
		go rt.probeLoop(ctx)
	}
	return rt, nil
}

// Handler returns the router's HTTP handler.
func (rt *Router) Handler() http.Handler { return rt.mux }

// Close stops the active probe loop. The handler stays usable (with
// passive health only); Close exists so tests and daemons shut down clean.
func (rt *Router) Close() {
	if rt.probeStop != nil {
		rt.probeStop()
		<-rt.probeDone
		rt.probeStop = nil
	}
}

// probeLoop actively probes every replica's /readyz on a fixed cadence.
func (rt *Router) probeLoop(ctx context.Context) {
	defer close(rt.probeDone)
	tick := time.NewTicker(rt.cfg.ProbeInterval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			for i, url := range rt.cfg.Replicas {
				rt.health[i].probe(ctx, rt.client, url, rt.cfg.ProbeTimeout)
			}
		}
	}
}

// routeHashRank hashes a rank request's result-relevant wire fields for
// placement: method, the sorted target multiset, and the option fields.
// This mirrors (but need not equal) the replicas' canonical Query.Key — the
// router cannot translate original ids to dense nodes without the view, and
// does not need to: equal requests hash equal, which is all affinity needs.
func routeHashRank(req *serve.RankRequest) uint64 {
	targets := slices.Clone(req.Targets)
	slices.Sort(targets)
	var b bytes.Buffer
	b.WriteString(req.Method)
	for _, t := range targets {
		fmt.Fprintf(&b, "/%d", t)
	}
	fmt.Fprintf(&b, "|%x|%x|%d|%d",
		math.Float64bits(req.Eps), math.Float64bits(req.Delta), req.K, req.Seed)
	return Hash64(b.String())
}

func (rt *Router) handleRank(w http.ResponseWriter, r *http.Request) {
	rt.m.relayed["rank"].Inc()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRelayBody))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("cluster: reading body: %v", err))
		return
	}
	var req serve.RankRequest
	var h uint64
	if err := json.Unmarshal(body, &req); err != nil {
		// Not decodable here — forward anyway (hashing the raw bytes) and
		// let the replica produce its canonical 400.
		h = Hash64(string(body))
	} else {
		h = routeHashRank(&req)
	}
	rt.forward(w, r, h, "/v1/rank", body)
}

func (rt *Router) handleTopK(w http.ResponseWriter, r *http.Request) {
	rt.m.relayed["topk"].Inc()
	// The full encoded query string is already a canonical-enough route key:
	// equal requests produce equal strings for every client that builds
	// them the same way, and a cold key landing on a non-home replica costs
	// one peer probe, not a recompute.
	h := Hash64(r.URL.RawQuery)
	rt.forward(w, r, h, "/v1/topk?"+r.URL.RawQuery, nil)
}

// forward proxies one request to the ring owners of h in order: healthy
// owners first, then — only if every owner looks unhealthy — the unhealthy
// ones (an EWMA is a guess; a guess must not turn a servable request into a
// 503). Hops retry ONLY on transport failure or upstream 5xx; every other
// status (200, 400, 429, 404) is the replica's answer and is relayed as-is,
// so a shed (429) never multiplies across the fleet. The replica that
// answered is reported in the X-Saphyra-Replica response header.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, h uint64, path string, body []byte) {
	_, span := obs.StartSpan(r.Context(), "cluster.route")
	owners := rt.ring.Owners(h, rt.ring.Size())
	order := make([]int, 0, len(owners))
	for _, i := range owners {
		if rt.health[i].healthy() {
			order = append(order, i)
		}
	}
	for _, i := range owners {
		if !rt.health[i].healthy() {
			order = append(order, i)
		}
	}
	if len(order) > rt.cfg.HopBudget {
		order = order[:rt.cfg.HopBudget]
	}
	hops := 0
	lastNote := "no replicas"
	for _, i := range order {
		if r.Context().Err() != nil {
			break // client gone: stop burning replicas
		}
		hops++
		out, err := http.NewRequestWithContext(r.Context(), r.Method, rt.cfg.Replicas[i]+path, bytes.NewReader(body))
		if err != nil {
			break
		}
		out.Header = r.Header.Clone() // policy headers intact: Timeout-Ms, Degrade-Ms, Client-Id, Trace-Id
		resp, err := rt.client.Do(out)
		if err != nil {
			rt.health[i].observe(false)
			rt.m.connectErr[i].Inc()
			lastNote = fmt.Sprintf("replica %s: %v", rt.cfg.Replicas[i], err)
			continue
		}
		if resp.StatusCode >= 500 {
			rt.health[i].observe(false)
			rt.m.upstream5[i].Inc()
			lastNote = fmt.Sprintf("replica %s: status %d", rt.cfg.Replicas[i], resp.StatusCode)
			drain(resp)
			continue
		}
		rt.health[i].observe(true)
		rt.m.forwarded[i].Inc()
		rt.m.hops.ObserveN(int64(hops))
		rt.relay(w, resp, rt.cfg.Replicas[i])
		if span != nil {
			span.SetNote(fmt.Sprintf("hops=%d", hops))
			span.End()
		}
		return
	}
	rt.m.exhausted.Inc()
	rt.m.hops.ObserveN(int64(hops))
	if span != nil {
		span.SetNote("exhausted")
		span.End()
	}
	// Every candidate failed (or none exist): shed with a short retry hint,
	// the same contract a single overloaded replica presents.
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusServiceUnavailable,
		fmt.Sprintf("cluster: no replica answered within %d hops (last: %s)", hops, lastNote))
}

// relay copies a replica response to the client, stamping which replica
// answered.
func (rt *Router) relay(w http.ResponseWriter, resp *http.Response, replica string) {
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.Header().Set("X-Saphyra-Replica", replica)
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, io.LimitReader(resp.Body, maxRelayBody))
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
}

// handleReadyz: the router is ready when at least one replica is healthy —
// it can then route every key somewhere (possibly via hops).
func (rt *Router) handleReadyz(w http.ResponseWriter, r *http.Request) {
	for _, h := range rt.health {
		if h.healthy() {
			writeJSON(w, http.StatusOK, &serve.ReadyzResponse{Status: "ready"})
			return
		}
	}
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusServiceUnavailable, &serve.ReadyzResponse{Status: "no healthy replicas"})
}

// RouterStatusz is the router's GET /statusz body.
type RouterStatusz struct {
	Replicas  []ReplicaStatus `json:"replicas"`
	HopBudget int             `json:"hop_budget"`
	VNodes    int             `json:"vnodes"`
	Exhausted int64           `json:"exhausted"`
}

// ReplicaStatus is one replica's health as the router sees it.
type ReplicaStatus struct {
	URL     string  `json:"url"`
	Health  float64 `json:"health"`
	Healthy bool    `json:"healthy"`
}

func (rt *Router) handleStatusz(w http.ResponseWriter, r *http.Request) {
	st := &RouterStatusz{
		HopBudget: rt.cfg.HopBudget,
		VNodes:    rt.cfg.VNodes,
		Exhausted: rt.m.exhausted.Value(),
	}
	for i, url := range rt.cfg.Replicas {
		st.Replicas = append(st.Replicas, ReplicaStatus{
			URL:     url,
			Health:  rt.health[i].score(),
			Healthy: rt.health[i].healthy(),
		})
	}
	writeJSON(w, http.StatusOK, st)
}

func (rt *Router) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	rt.reg.WritePrometheus(w)
}

// Registry exposes the router's metrics registry for embedding and tests.
func (rt *Router) Registry() *obs.Registry { return rt.reg }

// handleReload rolls a reload across the whole fleet, one replica at a
// time (RollingReload), so operators and load harnesses drive a fleet
// reload through the same POST /admin/reload they drive a single replica
// with. Concurrent requests are rejected with 409 — two interleaved rolls
// would ping-pong generations.
func (rt *Router) handleReload(w http.ResponseWriter, r *http.Request) {
	select {
	case rt.reloadGate <- struct{}{}:
		defer func() { <-rt.reloadGate }()
	default:
		writeError(w, http.StatusConflict, "cluster: a rolling reload is already in progress")
		return
	}
	gens, err := RollingReload(r.Context(), rt.client, rt.cfg.Replicas)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, &serve.ReloadResponse{
			Status: "failed", Error: err.Error(),
		})
		return
	}
	writeJSON(w, http.StatusOK, &serve.ReloadResponse{
		Status: "reloaded", Generation: slices.Min(gens),
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]any{"error": msg})
}
