package query

import (
	"context"
	"encoding/hex"
	"errors"
	"testing"

	"saphyra/internal/graph"
	"saphyra/internal/params"
)

// TestQueryKeyDistinguishesK pins the fix for the legacy cache-key gap: the
// (Options.Canonical, TargetSetHash) composition did not cover the k-path
// walk length, so kpath queries differing only in K collided. Query.Key
// must separate them — and must still identify K=0 with its documented
// default 3.
func TestQueryKeyDistinguishesK(t *testing.T) {
	targets := []graph.Node{1, 5, 9}
	k3 := Query{Measure: KPath, Targets: targets, K: 3, Seed: 1}
	k4 := Query{Measure: KPath, Targets: targets, K: 4, Seed: 1}
	if k3.Key() == k4.Key() {
		t.Fatal("kpath queries differing only in K share a key (the legacy gap)")
	}
	kDefault := Query{Measure: KPath, Targets: targets, Seed: 1}
	if kDefault.Key() != k3.Key() {
		t.Fatal("K=0 must canonicalize to the default 3 and share its key")
	}
	// K never splits keys of measures that ignore it.
	bc0 := Query{Measure: Betweenness, Targets: targets, Seed: 1}
	bc9 := Query{Measure: Betweenness, Targets: targets, K: 9, Seed: 1}
	if bc0.Key() != bc9.Key() {
		t.Fatal("K leaked into a betweenness key")
	}
}

// TestQueryKeyCanonicalInvariance: result-irrelevant differences (worker
// count, target order, duplicates, explicit defaults) never change the key;
// result-relevant ones always do.
func TestQueryKeyCanonicalInvariance(t *testing.T) {
	base := Query{Measure: Betweenness, Targets: []graph.Node{5, 1, 9}, Epsilon: 0.05, Delta: 0.01, Seed: 3}
	same := []Query{
		{Measure: Betweenness, Targets: []graph.Node{9, 5, 1, 5, 1}, Epsilon: 0.05, Delta: 0.01, Seed: 3},
		{Measure: Betweenness, Targets: []graph.Node{5, 1, 9}, Epsilon: 0.05, Delta: 0.01, Seed: 3, Workers: 64},
		{Measure: Betweenness, Targets: []graph.Node{5, 1, 9}, Seed: 3}, // zero eps/delta = defaults
	}
	for i, q := range same {
		if q.Key() != base.Key() {
			t.Errorf("variant %d changed the key despite equal canonical form", i)
		}
	}
	different := []Query{
		{Measure: Closeness, Targets: []graph.Node{5, 1, 9}, Epsilon: 0.05, Delta: 0.01, Seed: 3},
		{Measure: Betweenness, Algorithm: AlgKADABRA, Targets: []graph.Node{5, 1, 9}, Epsilon: 0.05, Delta: 0.01, Seed: 3},
		{Measure: Betweenness, Targets: []graph.Node{5, 1, 8}, Epsilon: 0.05, Delta: 0.01, Seed: 3},
		{Measure: Betweenness, Targets: []graph.Node{5, 1, 9}, Epsilon: 0.1, Delta: 0.01, Seed: 3},
		{Measure: Betweenness, Targets: []graph.Node{5, 1, 9}, Epsilon: 0.05, Delta: 0.01, Seed: 4},
		{Measure: Betweenness, Epsilon: 0.05, Delta: 0.01, Seed: 3}, // whole network != explicit set
	}
	for i, q := range different {
		if q.Key() == base.Key() {
			t.Errorf("variant %d shares the key despite a result-relevant difference", i)
		}
	}
}

// TestQueryKeyGolden pins the digest layout itself: the key is a
// persistent-format contract (cross-process caches), so an accidental
// layout change must fail loudly, not shift every cache silently.
func TestQueryKeyGolden(t *testing.T) {
	q := Query{Measure: Betweenness, Targets: []graph.Node{0, 1, 2}, Seed: 1}
	k := q.Key()
	const want = "d9220cb2aa8fd618"
	if got := hex.EncodeToString(k[:8]); got != want {
		t.Fatalf("Query.Key layout changed: prefix %s, pinned %s — bump keyMagic if intentional", got, want)
	}
}

// TestQueryCanonical: defaults resolve, Workers is stripped, K is zeroed
// outside KPath, targets dedup-sort.
func TestQueryCanonical(t *testing.T) {
	c := Query{}.Canonical()
	if c.Epsilon != 0.05 || c.Delta != 0.01 {
		t.Fatalf("zero query canonicalized to eps=%g delta=%g", c.Epsilon, c.Delta)
	}
	c = Query{Measure: Betweenness, K: 7, Workers: 9, Targets: []graph.Node{3, 1, 3}}.Canonical()
	if c.K != 0 || c.Workers != 0 {
		t.Fatalf("canonical left K=%d workers=%d", c.K, c.Workers)
	}
	if len(c.Targets) != 2 || c.Targets[0] != 1 || c.Targets[1] != 3 {
		t.Fatalf("targets not dedup-sorted: %v", c.Targets)
	}
	if k := (Query{Measure: KPath}).Canonical().K; k != 3 {
		t.Fatalf("kpath K default = %d, want 3", k)
	}
}

// TestQueryValidate: the measure/algorithm matrix and the params bounds
// surface as typed 400-classifiable errors.
func TestQueryValidate(t *testing.T) {
	const n = 10
	ok := []Query{
		{Measure: Betweenness, Targets: []graph.Node{1}},
		{Measure: Betweenness, Algorithm: AlgABRA, Targets: []graph.Node{1}},
		{Measure: Betweenness, Algorithm: AlgKADABRA},
		{Measure: KPath, Targets: []graph.Node{0, 9}},
		{Measure: Closeness},
	}
	for i, q := range ok {
		if err := q.Validate(n); err != nil {
			t.Errorf("valid query %d rejected: %v", i, err)
		}
	}
	bad := []Query{
		{Measure: Measure(42), Targets: []graph.Node{1}},
		{Measure: KPath, Algorithm: AlgABRA, Targets: []graph.Node{1}},
		{Measure: Closeness, Algorithm: AlgKADABRA, Targets: []graph.Node{1}},
		{Measure: Betweenness, Algorithm: Algorithm(9), Targets: []graph.Node{1}},
		{Measure: Betweenness, Epsilon: 1.5, Targets: []graph.Node{1}},
		{Measure: Betweenness, Delta: -1, Targets: []graph.Node{1}},
		{Measure: KPath, K: -2, Targets: []graph.Node{1}},
		{Measure: Betweenness, Targets: []graph.Node{99}},
	}
	for i, q := range bad {
		err := q.Validate(n)
		if err == nil {
			t.Errorf("invalid query %d accepted", i)
			continue
		}
		if !params.IsBadInput(err) {
			t.Errorf("invalid query %d: error %v is not a typed params error", i, err)
		}
	}
}

// TestRankerPreCanceledContext: a context that is already done returns a
// typed cancellation (never a result) for every measure — the cheapest
// checkpoint is before any work starts.
func TestRankerPreCanceledContext(t *testing.T) {
	g := graph.BarabasiAlbert(200, 3, 1)
	r := NewRanker(g)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, q := range []Query{
		{Measure: Betweenness, Targets: []graph.Node{1, 2, 3}},
		{Measure: Betweenness, Algorithm: AlgABRA, Targets: []graph.Node{1}},
		{Measure: Betweenness, Algorithm: AlgKADABRA, Targets: []graph.Node{1}},
		{Measure: KPath, Targets: []graph.Node{1, 2}},
		{Measure: Closeness, Targets: []graph.Node{1, 2}},
	} {
		res, err := r.Rank(ctx, q)
		if err == nil || res != nil {
			t.Fatalf("%v/%v: pre-canceled ctx returned res=%v err=%v", q.Measure, q.Algorithm, res, err)
		}
		if !params.IsCanceled(err) || !errors.Is(err, context.Canceled) {
			t.Fatalf("%v/%v: error %v is not a typed cancellation", q.Measure, q.Algorithm, err)
		}
	}
}

// TestRankerEmptyTargetsMeansWholeNetwork: the unified API's RankAll shape.
func TestRankerEmptyTargetsMeansWholeNetwork(t *testing.T) {
	g := graph.BarabasiAlbert(60, 2, 2)
	r := NewRanker(g)
	res, err := r.Rank(context.Background(), Query{Measure: Closeness, Epsilon: 0.2, Delta: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != g.NumNodes() {
		t.Fatalf("whole-network query ranked %d of %d nodes", len(res.Nodes), g.NumNodes())
	}
}
