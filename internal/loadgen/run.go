package loadgen

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"saphyra/internal/loadgen/hist"
	"saphyra/internal/serve"
	"saphyra/internal/workload"
)

// Options configures one replay of a Schedule against a serving target.
// The target is addressed by URL, so the same runner drives a live
// saphyrad daemon or an in-process httptest server over serve.Handler().
type Options struct {
	// Base is the service root, e.g. "http://127.0.0.1:7171".
	Base string
	// HTTP is the transport; nil means http.DefaultClient.
	HTTP *http.Client
	// Speed compresses the schedule clock: a wall-clock gap is the
	// scheduled gap divided by Speed. 0 means 1 (real time).
	Speed float64
	// Warm pre-fires each distinct cacheable query of the schedule once
	// (sequentially, unrecorded) before the clock starts, so a
	// hit-dominated mix measures the steady state rather than cold-cache
	// transients. FreshSeed classes are never warmed — their misses are
	// the point.
	Warm bool
	// VerifyEvery samples every Nth scheduled request's 200 response for
	// post-run bitwise verification (by schedule Seq, so the sample is
	// deterministic). 0 disables verification.
	VerifyEvery int
	// Verifier checks the sampled responses; required when VerifyEvery > 0.
	Verifier *Verifier
	// MaxVerifyErrors caps the failure details kept in the report
	// (default 5; the count is always exact).
	MaxVerifyErrors int
}

// Report is one run's outcome: latency quantiles over served responses,
// per-outcome counts and rates, verification results, and the SLO verdict.
// The JSON form is what BENCH_serving.json records per mix.
type Report struct {
	Mix      string  `json:"mix"`
	Seed     int64   `json:"seed"`
	Rate     float64 `json:"rate_rps"`
	Duration float64 `json:"duration_s"`
	Requests int     `json:"requests"`
	Reloads  int     `json:"reloads"`
	Elapsed  float64 `json:"elapsed_s"`

	// Served-latency quantiles (200s only), milliseconds.
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
	MeanMs float64 `json:"mean_ms"`

	Outcomes map[string]int64 `json:"outcomes"`

	HitRate      float64 `json:"hit_rate"`
	DegradedRate float64 `json:"degraded_rate"`
	ShedRate     float64 `json:"shed_rate"`
	ErrorRate    float64 `json:"error_rate"`

	Verified     int      `json:"verified"`
	VerifyFailed int      `json:"verify_failed"`
	VerifyErrors []string `json:"verify_errors,omitempty"`

	SLO           SLO      `json:"slo"`
	SLOViolations []string `json:"slo_violations,omitempty"`
	Pass          bool     `json:"pass"`
}

// sample is one response held for post-run verification.
type sample struct {
	kind EventKind
	resp *serve.RankResponse
}

// Run replays the schedule open-loop against the target and returns the
// report. Arrival times come from the schedule alone — a slow server
// backs requests up instead of slowing arrivals down — and every response
// is classified and recorded. The context cancels the remainder of the
// run (in-flight requests are abandoned and counted as errors).
func Run(ctx context.Context, s *Schedule, opt Options) (*Report, error) {
	if opt.Base == "" {
		return nil, errors.New("loadgen: Options.Base required")
	}
	if opt.VerifyEvery > 0 && opt.Verifier == nil {
		return nil, errors.New("loadgen: VerifyEvery set without a Verifier")
	}
	speed := opt.Speed
	if speed <= 0 {
		speed = 1
	}
	maxVerifyErrs := opt.MaxVerifyErrors
	if maxVerifyErrs <= 0 {
		maxVerifyErrs = 5
	}

	// One resilient-client shell per class carries that class's policy
	// headers; RankOnce/TopKOnce bypass its retry machinery.
	clients := make([]*workload.Client, len(s.Mix.Classes))
	for i, c := range s.Mix.Classes {
		clients[i] = &workload.Client{
			Base: opt.Base, HTTP: opt.HTTP,
			ClientID: c.ClientID, DegradeMs: c.DegradeMs, TimeoutMs: c.TimeoutMs,
		}
	}

	if opt.Warm {
		if err := warm(ctx, s, clients); err != nil {
			return nil, fmt.Errorf("loadgen: warmup: %w", err)
		}
	}

	var (
		rec      hist.Recorder
		wg       sync.WaitGroup
		mu       sync.Mutex
		samples  []sample
		cached   int64
		served   int64
		reloads  int
		reloadMu sync.Mutex
	)
	fire := func(ev *Event) {
		defer wg.Done()
		if ev.Kind == EventReload {
			if err := reload(ctx, opt); err == nil {
				reloadMu.Lock()
				reloads++
				reloadMu.Unlock()
			}
			return
		}
		c := clients[ev.Class]
		t0 := time.Now()
		var resp *serve.RankResponse
		var err error
		if ev.Kind == EventTopK {
			resp, err = c.TopKOnce(ctx, ev.Method, ev.TopK, ev.Eps, ev.Delta, ev.Seed, ev.K)
		} else {
			resp, err = c.RankOnce(ctx, serve.RankRequest{
				Method: ev.Method, Targets: ev.Targets,
				Eps: ev.Eps, Delta: ev.Delta, K: ev.K, Seed: ev.Seed,
			})
		}
		d := time.Since(t0)
		o := classify(resp, err)
		rec.Observe(o, d)
		if resp == nil {
			return
		}
		mu.Lock()
		served++
		if resp.Cached {
			cached++
		}
		if opt.VerifyEvery > 0 && ev.Seq%opt.VerifyEvery == 0 {
			samples = append(samples, sample{kind: ev.Kind, resp: resp})
		}
		mu.Unlock()
	}

	start := time.Now()
	for i := range s.Events {
		ev := &s.Events[i]
		at := time.Duration(float64(ev.At) / speed)
		if gap := at - time.Since(start); gap > 0 {
			select {
			case <-time.After(gap):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		wg.Add(1)
		go fire(ev)
	}
	wg.Wait()
	elapsed := time.Since(start)

	r := &Report{
		Mix:      s.Mix.Name,
		Seed:     s.Seed,
		Rate:     s.Mix.Rate,
		Duration: s.Mix.Duration.Seconds(),
		Requests: s.Requests(),
		Reloads:  reloads,
		Elapsed:  elapsed.Seconds(),
		P50Ms:    ms(rec.Served.Quantile(0.50)),
		P99Ms:    ms(rec.Served.Quantile(0.99)),
		P999Ms:   ms(rec.Served.Quantile(0.999)),
		MeanMs:   ms(rec.Served.Mean()),
		Outcomes: map[string]int64{},
		SLO:      s.Mix.SLO,
	}
	for _, o := range hist.Outcomes() {
		r.Outcomes[o.String()] = rec.Count(o)
	}
	if served > 0 {
		r.HitRate = float64(cached) / float64(served)
	}
	r.DegradedRate = rec.Rate(hist.Degraded)
	r.ShedRate = rec.Rate(hist.Shed)
	r.ErrorRate = rec.Rate(hist.Deadline) + rec.Rate(hist.ClientClosed) + rec.Rate(hist.Error)

	// Post-run verification: recomputation happens after the last response
	// so it cannot contend with the measured run.
	for _, sm := range samples {
		r.Verified++
		if err := opt.Verifier.Check(sm.kind, sm.resp); err != nil {
			r.VerifyFailed++
			if len(r.VerifyErrors) < maxVerifyErrs {
				r.VerifyErrors = append(r.VerifyErrors, err.Error())
			}
		}
	}

	r.SLOViolations = s.Mix.SLO.Check(r)
	r.Pass = len(r.SLOViolations) == 0 && r.VerifyFailed == 0
	return r, nil
}

// classify maps one response/error pair to its outcome counter.
func classify(resp *serve.RankResponse, err error) hist.Outcome {
	if err == nil {
		if resp != nil && resp.Degraded {
			return hist.Degraded
		}
		return hist.OK
	}
	var se *workload.StatusError
	if errors.As(err, &se) {
		switch se.Code {
		case http.StatusTooManyRequests:
			return hist.Shed
		case http.StatusGatewayTimeout:
			return hist.Deadline
		case serve.StatusClientClosedRequest:
			return hist.ClientClosed
		}
	}
	return hist.Error
}

// warm fires each distinct cacheable query once, sequentially. Distinct
// means one request per (class, seed) pair — for pool-backed classes the
// per-entry seed identifies the pool entry, so this touches exactly the
// hot set; FreshSeed classes are skipped.
func warm(ctx context.Context, s *Schedule, clients []*workload.Client) error {
	type key struct {
		class int
		seed  int64
	}
	done := make(map[key]bool)
	for i := range s.Events {
		ev := &s.Events[i]
		if ev.Kind == EventReload || s.Mix.Classes[ev.Class].FreshSeed {
			continue
		}
		k := key{ev.Class, ev.Seed}
		if done[k] {
			continue
		}
		done[k] = true
		c := clients[ev.Class]
		// A shed warmup request is retried after a beat: warmup runs
		// sequentially so this converges fast, and a cold cache would
		// otherwise bias the first measured seconds.
		for attempt := 0; attempt < 20; attempt++ {
			var err error
			if ev.Kind == EventTopK {
				_, err = c.TopKOnce(ctx, ev.Method, ev.TopK, ev.Eps, ev.Delta, ev.Seed, ev.K)
			} else {
				_, err = c.RankOnce(ctx, serve.RankRequest{
					Method: ev.Method, Targets: ev.Targets,
					Eps: ev.Eps, Delta: ev.Delta, K: ev.K, Seed: ev.Seed,
				})
			}
			if ctx.Err() != nil {
				return ctx.Err()
			}
			var se *workload.StatusError
			if errors.As(err, &se) && se.Code == http.StatusTooManyRequests {
				time.Sleep(50 * time.Millisecond)
				continue
			}
			break
		}
	}
	return nil
}

// reload POSTs the admin reload endpoint.
func reload(ctx context.Context, opt Options) error {
	httpc := opt.HTTP
	if httpc == nil {
		httpc = http.DefaultClient
	}
	req, err := http.NewRequestWithContext(ctx, "POST", opt.Base+"/admin/reload", nil)
	if err != nil {
		return err
	}
	resp, err := httpc.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("reload: status %d", resp.StatusCode)
	}
	return nil
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
