// Command saphyraload replays deterministic traffic mixes against the
// saphyrad serving layer and gates the result on per-mix SLOs — the
// load-generation half of the reproducible experiment harness
// (internal/loadgen, DESIGN.md section 12).
//
// Two modes:
//
//	saphyraload -view net.sbcv                     # in-process server
//	saphyraload -view net.sbcv -base http://host:8372   # live daemon
//
// With no -view, a deterministic synthetic network is built, so
// `saphyraload` alone produces a meaningful serving benchmark. Each named
// mix (hit-dominated, miss-heavy, reload-storm; -mix selects one, default
// all) is expanded from one seed into a byte-identical open-loop request
// schedule, replayed, and reported: p50/p99/p999 served latency, hit and
// shed and error rates, and bitwise verification of every -verify-every'th
// 200 against the library reference for its reported (eps, delta, seed)
// contract. Results land in versioned JSON (-out, default
// BENCH_serving.json; scripts/bench.sh uploads it in CI) and the exit
// status is non-zero when any mix violates its SLO or any sampled response
// is not bitwise-equal to the reference.
//
// -cluster N additionally boots an in-process N-replica fleet behind a
// consistent-hash router (internal/cluster: peer cache fill wired, rolling
// reload via the router) over the same view, replays the
// cluster-hit-dominated mix through the router under the same SLO and
// bitwise gates, and records two cluster microbenchmark rows — the
// full route-hit path and one peer cache-fill round trip — in the same
// JSON under "cluster".
package main

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"saphyra"
	"saphyra/internal/cluster"
	"saphyra/internal/loadgen"
	"saphyra/internal/serve"
)

type output struct {
	Schema string `json:"schema"`
	Date   string `json:"date"`
	Go     string `json:"go"`
	OS     string `json:"os"`
	Arch   string `json:"arch"`
	CPUs   int    `json:"cpus"`

	View  string            `json:"view"`
	Nodes int               `json:"nodes"`
	Edges int64             `json:"edges"`
	Seed  int64             `json:"seed"`
	Mixes []*loadgen.Report `json:"mixes"`

	Cluster *clusterReport `json:"cluster,omitempty"`
}

// clusterReport records the -cluster fleet's microbenchmark rows; the
// cluster mix replay itself lands in Mixes like any other mix.
type clusterReport struct {
	Replicas   int        `json:"replicas"`
	Benchmarks []benchRow `json:"benchmarks"`
}

type benchRow struct {
	Name   string  `json:"name"`
	N      int     `json:"n"`
	MeanUs float64 `json:"mean_us"`
	P50Us  float64 `json:"p50_us"`
	P99Us  float64 `json:"p99_us"`
}

func main() {
	var (
		viewPath    = flag.String("view", "", "serialized view file to load against (default: build a synthetic network)")
		base        = flag.String("base", "", "base URL of a live daemon (default: serve -view in-process)")
		mixName     = flag.String("mix", "all", "mix to replay: hit-dominated | miss-heavy | reload-storm | all")
		rate        = flag.Float64("rate", 0, "override the mix's offered rate (req/s; 0 = mix default)")
		duration    = flag.Duration("duration", 0, "override the mix's scheduled span (0 = mix default)")
		seed        = flag.Int64("seed", 1, "schedule seed; one seed yields a byte-identical request schedule")
		speed       = flag.Float64("speed", 1, "schedule-clock compression factor (2 = replay twice as fast)")
		verifyEvery = flag.Int("verify-every", 8, "bitwise-verify every Nth scheduled request's 200 response (0 = off)")
		noWarm      = flag.Bool("no-warm", false, "skip pre-firing the cacheable working set before the clock starts")
		out         = flag.String("out", "BENCH_serving.json", "JSON report path (\"-\" = stdout)")

		clusterN    = flag.Int("cluster", 0, "also boot an in-process N-replica fleet behind a consistent-hash router, replay the cluster-hit-dominated mix through it, and record the cluster benchmark rows (0 = no cluster section)")
		synthNodes  = flag.Int("synth-nodes", 2000, "synthetic network size when no -view is given")
		maxInFlight = flag.Int("max-inflight", 0, "in-process server: concurrent computations admitted (0 = default)")
		timeout     = flag.Duration("timeout", 10*time.Second, "in-process server: default per-request compute deadline")
		slowMs      = flag.Int("slow-query-ms", 0, "in-process server: log any request slower than this many ms as structured JSON on stderr (0 = disabled)")
	)
	flag.Parse()
	if err := run(*viewPath, *base, *mixName, *rate, *duration, *seed, *speed,
		*verifyEvery, !*noWarm, *out, *clusterN, *synthNodes, *maxInFlight, *timeout,
		time.Duration(*slowMs)*time.Millisecond); err != nil {
		fmt.Fprintln(os.Stderr, "saphyraload:", err)
		os.Exit(1)
	}
}

func run(viewPath, base, mixName string, rate float64, duration time.Duration,
	seed int64, speed float64, verifyEvery int, warm bool, out string,
	clusterN, synthNodes, maxInFlight int, timeout, slowQuery time.Duration) error {
	if clusterN > 0 && base != "" {
		return fmt.Errorf("-cluster boots its own in-process fleet; it cannot be combined with -base")
	}

	// Resolve the view: given, or synthesized deterministically.
	if viewPath == "" {
		dir, err := os.MkdirTemp("", "saphyraload")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		viewPath = filepath.Join(dir, "synth.sbcv")
		g := saphyra.Generate.BarabasiAlbert(synthNodes, 4, 7)
		if err := saphyra.BuildView(g, nil).WriteFile(viewPath); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "saphyraload: built synthetic view (%d nodes) at %s\n", synthNodes, viewPath)
	}
	view, err := saphyra.OpenView(viewPath)
	if err != nil {
		return err
	}
	ids := viewIDs(view)
	nodes := view.Graph().NumNodes()
	edges := view.Graph().NumEdges()
	view.Close()

	// Resolve the target: a live daemon, or an in-process server on a
	// loopback listener (a real HTTP hop, so in-process numbers include the
	// same transport cost the daemon pays).
	if base == "" {
		srv, err := serve.New(viewPath, serve.Config{
			MaxInFlight:        maxInFlight,
			DefaultTimeout:     timeout,
			SlowQueryThreshold: slowQuery,
		})
		if err != nil {
			return err
		}
		defer srv.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		httpSrv := &http.Server{Handler: srv.Handler()}
		go httpSrv.Serve(ln)
		defer httpSrv.Close()
		base = "http://" + ln.Addr().String()
		fmt.Fprintf(os.Stderr, "saphyraload: serving %s in-process on %s\n", viewPath, base)
	}

	var verifier *loadgen.Verifier
	if verifyEvery > 0 {
		if verifier, err = loadgen.NewVerifier(viewPath); err != nil {
			return err
		}
		defer verifier.Close()
	}

	var mixes []loadgen.Mix
	if mixName == "all" {
		mixes = loadgen.Mixes()
	} else {
		m, err := loadgen.ByName(mixName)
		if err != nil {
			return err
		}
		mixes = []loadgen.Mix{m}
	}

	rep := &output{
		Schema: "saphyra/bench-serving/v1",
		Date:   time.Now().UTC().Format(time.RFC3339),
		Go:     runtime.Version(),
		OS:     runtime.GOOS,
		Arch:   runtime.GOARCH,
		CPUs:   runtime.NumCPU(),
		View:   viewPath,
		Nodes:  nodes,
		Edges:  edges,
		Seed:   seed,
	}
	failed := false
	for _, m := range mixes {
		m = m.Scale(rate, duration)
		sched, err := loadgen.Build(m, ids, seed)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "saphyraload: %s: %d requests over %v (rate %.0f/s)\n",
			m.Name, sched.Requests(), m.Duration, m.Rate)
		r, err := loadgen.Run(context.Background(), sched, loadgen.Options{
			Base: base, Speed: speed, Warm: warm,
			VerifyEvery: verifyEvery, Verifier: verifier,
		})
		if err != nil {
			return fmt.Errorf("mix %s: %w", m.Name, err)
		}
		rep.Mixes = append(rep.Mixes, r)
		status := "PASS"
		if !r.Pass {
			status = "FAIL"
			failed = true
		}
		fmt.Fprintf(os.Stderr,
			"saphyraload: %s: %s  p50 %.2fms p99 %.2fms p999 %.2fms  hit %.0f%% shed %.1f%% degraded %.1f%% err %.1f%%  verified %d (%d failed)\n",
			m.Name, status, r.P50Ms, r.P99Ms, r.P999Ms,
			100*r.HitRate, 100*r.ShedRate, 100*r.DegradedRate, 100*r.ErrorRate,
			r.Verified, r.VerifyFailed)
		for _, v := range r.SLOViolations {
			fmt.Fprintf(os.Stderr, "saphyraload: %s: SLO violation: %s\n", m.Name, v)
		}
		for _, v := range r.VerifyErrors {
			fmt.Fprintf(os.Stderr, "saphyraload: %s: verify: %s\n", m.Name, v)
		}
	}

	if clusterN > 0 {
		if err := runCluster(rep, &failed, viewPath, ids, clusterN, rate, duration,
			seed, speed, verifyEvery, warm, verifier,
			maxInFlight, timeout, slowQuery); err != nil {
			return err
		}
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if out == "-" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(out, enc, 0o644); err != nil {
		return err
	} else {
		fmt.Fprintf(os.Stderr, "saphyraload: wrote %s\n", out)
	}
	if failed {
		return fmt.Errorf("one or more mixes failed their SLO or bitwise verification")
	}
	return nil
}

// runCluster is the -cluster section: boot an in-process fleet over the
// same view, replay the cluster-hit-dominated mix through the router under
// the same SLO and bitwise gates as the single-box mixes, then measure the
// two cluster microbenchmark rows. The replay report is appended to Mixes
// (it is a mix like any other); only the bench rows land under "cluster".
func runCluster(rep *output, failed *bool, viewPath string, ids []int64,
	clusterN int, rate float64, duration time.Duration, seed int64,
	speed float64, verifyEvery int, warm bool, verifier *loadgen.Verifier,
	maxInFlight int, timeout, slowQuery time.Duration) error {
	f, err := cluster.StartFleet(viewPath, cluster.FleetConfig{
		Replicas: clusterN,
		Serve: serve.Config{
			MaxInFlight:        maxInFlight,
			DefaultTimeout:     timeout,
			SlowQueryThreshold: slowQuery,
		},
	})
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintf(os.Stderr, "saphyraload: cluster: %d replicas behind router %s\n",
		clusterN, f.RouterURL)

	m := loadgen.ClusterHitDominated().Scale(rate, duration)
	sched, err := loadgen.Build(m, ids, seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "saphyraload: %s: %d requests over %v (rate %.0f/s)\n",
		m.Name, sched.Requests(), m.Duration, m.Rate)
	r, err := loadgen.Run(context.Background(), sched, loadgen.Options{
		Base: f.RouterURL, Speed: speed, Warm: warm,
		VerifyEvery: verifyEvery, Verifier: verifier,
	})
	if err != nil {
		return fmt.Errorf("mix %s: %w", m.Name, err)
	}
	rep.Mixes = append(rep.Mixes, r)
	status := "PASS"
	if !r.Pass {
		status = "FAIL"
		*failed = true
	}
	fmt.Fprintf(os.Stderr,
		"saphyraload: %s: %s  p50 %.2fms p99 %.2fms p999 %.2fms  hit %.0f%% shed %.1f%% degraded %.1f%% err %.1f%%  verified %d (%d failed)\n",
		m.Name, status, r.P50Ms, r.P99Ms, r.P999Ms,
		100*r.HitRate, 100*r.ShedRate, 100*r.DegradedRate, 100*r.ErrorRate,
		r.Verified, r.VerifyFailed)
	for _, v := range r.SLOViolations {
		fmt.Fprintf(os.Stderr, "saphyraload: %s: SLO violation: %s\n", m.Name, v)
	}
	for _, v := range r.VerifyErrors {
		fmt.Fprintf(os.Stderr, "saphyraload: %s: verify: %s\n", m.Name, v)
	}

	rows, err := clusterBenchRows(f, ids)
	if err != nil {
		return err
	}
	rep.Cluster = &clusterReport{Replicas: clusterN, Benchmarks: rows}
	for _, row := range rows {
		fmt.Fprintf(os.Stderr, "saphyraload: cluster: %s  n=%d mean %.0fµs p50 %.0fµs p99 %.0fµs\n",
			row.Name, row.N, row.MeanUs, row.P50Us, row.P99Us)
	}
	return nil
}

// clusterBenchRows measures the two distributed-tier microbenchmarks
// (mirrors internal/cluster's BenchmarkClusterRouteHit / BenchmarkPeerFill,
// but as measured rows in the JSON report so CI trends them):
//
//   - ClusterRouteHit: a cache hit through the whole cluster path — client
//     hop to the router, ring placement, router hop to the replica, replica
//     cache hit, two relays back.
//   - PeerFill: one peer cache-fill round trip — the GET /internal/cache
//     probe plus envelope decode against the replica that owns the entry.
func clusterBenchRows(f *cluster.Fleet, ids []int64) ([]benchRow, error) {
	n := len(ids)
	if n < 4 {
		return nil, fmt.Errorf("cluster bench: view too small (%d nodes)", n)
	}
	targets := []int64{ids[17%n], ids[99%n], ids[n/3], ids[2*n/3]}
	body, err := json.Marshal(serve.RankRequest{
		Method: serve.MethodSaPHyRa, Targets: targets,
		Eps: 0.05, Delta: 0.05, Seed: 7,
	})
	if err != nil {
		return nil, err
	}
	client := &http.Client{}
	routerURL := f.RouterURL + "/v1/rank"

	// Warm the entry at its route home and capture the response: its
	// reported contract reconstructs the canonical cache key for the
	// peer-fill row.
	var resp *serve.RankResponse
	{
		r, err := client.Post(routerURL, "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		defer r.Body.Close()
		if r.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("cluster bench warm: status %d", r.StatusCode)
		}
		if err := json.NewDecoder(r.Body).Decode(&resp); err != nil {
			return nil, err
		}
	}

	const reps = 1000
	routeHit, err := measureRow("ClusterRouteHit", reps, func() error {
		return postDiscard(client, routerURL, body)
	})
	if err != nil {
		return nil, err
	}

	// Peer fill: warm the entry at its TRUE ring home (the router's
	// placement is affinity only), then probe from outside the fleet
	// (self = -1 probes whoever owns the key).
	key, err := canonicalKey(resp, ids)
	if err != nil {
		return nil, err
	}
	ring, err := cluster.NewRing(f.ReplicaURLs, 0)
	if err != nil {
		return nil, err
	}
	home := ring.Owner(cluster.KeyHash(key))
	if err := postDiscard(client, f.ReplicaURLs[home]+"/v1/rank", body); err != nil {
		return nil, err
	}
	peers, err := cluster.NewPeers(f.ReplicaURLs, -1, 0, client, time.Second)
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	peerFill, err := measureRow("PeerFill", reps, func() error {
		if _, ok := peers.Fill(ctx, resp.Generation, key); !ok {
			return fmt.Errorf("cluster bench: peer fill missed a warmed entry")
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return []benchRow{routeHit, peerFill}, nil
}

// measureRow times n sequential runs of fn and folds them into one report
// row (mean/p50/p99 in microseconds).
func measureRow(name string, n int, fn func() error) (benchRow, error) {
	lat := make([]time.Duration, 0, n)
	var total time.Duration
	for i := 0; i < n; i++ {
		t0 := time.Now()
		if err := fn(); err != nil {
			return benchRow{}, err
		}
		d := time.Since(t0)
		lat = append(lat, d)
		total += d
	}
	sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
	us := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
	return benchRow{
		Name:   name,
		N:      n,
		MeanUs: us(total / time.Duration(n)),
		P50Us:  us(lat[n/2]),
		P99Us:  us(lat[n*99/100]),
	}, nil
}

func postDiscard(client *http.Client, url string, body []byte) error {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster bench: status %d from %s", resp.StatusCode, url)
	}
	return nil
}

// canonicalKey rebuilds the canonical cache key from a response's reported
// contract: the response echoes every result-relevant field (measure,
// canonical target set as original ids, K, eps, delta, seed), and
// saphyra.Query.Key canonicalizes identically on every replica.
func canonicalKey(resp *serve.RankResponse, ids []int64) ([sha256.Size]byte, error) {
	var m saphyra.Measure
	switch resp.Method {
	case serve.MethodSaPHyRa:
		m = saphyra.Betweenness
	case serve.MethodKPath:
		m = saphyra.KPath
	case serve.MethodCloseness:
		m = saphyra.Closeness
	default:
		return [sha256.Size]byte{}, fmt.Errorf("cluster bench: unknown method %q", resp.Method)
	}
	pos := make(map[int64]saphyra.Node, len(ids))
	for i, id := range ids {
		pos[id] = saphyra.Node(i)
	}
	targets := make([]saphyra.Node, len(resp.Nodes))
	for i, id := range resp.Nodes {
		nd, ok := pos[id]
		if !ok {
			return [sha256.Size]byte{}, fmt.Errorf("cluster bench: response node %d not in the view", id)
		}
		targets[i] = nd
	}
	q := saphyra.Query{Measure: m, Targets: targets, K: resp.K,
		Epsilon: resp.Eps, Delta: resp.Delta, Seed: resp.Seed}
	return q.Key(), nil
}

// viewIDs returns the view's original id space (identity when dense).
func viewIDs(v *saphyra.View) []int64 {
	if ids := v.IDs(); ids != nil {
		out := make([]int64, len(ids))
		copy(out, ids)
		return out
	}
	n := v.Graph().NumNodes()
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i)
	}
	return out
}
