// Package graph provides a compact in-memory representation of undirected,
// unweighted graphs together with loaders, synthetic generators, and basic
// traversal utilities. It is the storage substrate for every algorithm in
// this repository.
//
// Graphs are stored in compressed sparse row (CSR) form: a single offsets
// array of length n+1 and a single adjacency array of length 2m. Node
// identifiers are dense int32 values in [0, n). Adjacency lists are sorted,
// deduplicated, and free of self-loops, which lets membership queries use
// binary search and makes iteration cache-friendly.
package graph

import (
	"fmt"
	"sort"
)

// Node is a graph vertex identifier. Valid nodes are in [0, Graph.NumNodes()).
type Node = int32

// Edge is an undirected edge between two nodes.
type Edge struct {
	U, V Node
}

// Graph is an immutable undirected, unweighted graph in CSR form.
// The zero value is an empty graph with no nodes.
type Graph struct {
	offsets []int64 // len n+1; adjacency of u is adj[offsets[u]:offsets[u+1]]
	adj     []Node  // concatenated sorted adjacency lists, len 2m
	m       int64   // number of undirected edges
}

// NumNodes returns the number of nodes n.
func (g *Graph) NumNodes() int {
	if len(g.offsets) == 0 {
		return 0
	}
	return len(g.offsets) - 1
}

// NumEdges returns the number of undirected edges m.
func (g *Graph) NumEdges() int64 { return g.m }

// Degree returns the number of neighbors of u.
func (g *Graph) Degree(u Node) int {
	return int(g.offsets[u+1] - g.offsets[u])
}

// Neighbors returns the sorted adjacency list of u. The returned slice
// aliases the graph's internal storage and must not be modified.
func (g *Graph) Neighbors(u Node) []Node {
	return g.adj[g.offsets[u]:g.offsets[u+1]]
}

// HasEdge reports whether the undirected edge {u, v} is present.
func (g *Graph) HasEdge(u, v Node) bool {
	nbrs := g.Neighbors(u)
	i := sort.Search(len(nbrs), func(i int) bool { return nbrs[i] >= v })
	return i < len(nbrs) && nbrs[i] == v
}

// EdgeIndex returns the position of neighbor v within u's adjacency slice in
// the underlying CSR arrays (a stable per-directed-edge index usable for
// per-edge side tables), or -1 if the edge is absent.
func (g *Graph) EdgeIndex(u, v Node) int64 {
	nbrs := g.Neighbors(u)
	i := sort.Search(len(nbrs), func(i int) bool { return nbrs[i] >= v })
	if i < len(nbrs) && nbrs[i] == v {
		return g.offsets[u] + int64(i)
	}
	return -1
}

// AdjOffset returns the start offset of u's adjacency list in the CSR arrays.
// Together with EdgeIndex it allows callers to maintain per-directed-edge
// side tables of length 2m.
func (g *Graph) AdjOffset(u Node) int64 { return g.offsets[u] }

// CSR exposes the graph's raw arrays — the offsets array (len n+1) and the
// concatenated sorted adjacency (len 2m) — for serialization. The returned
// slices alias the graph's internal storage and must not be modified.
func (g *Graph) CSR() (offsets []int64, adj []Node) { return g.offsets, g.adj }

// FromCSR wraps pre-built CSR arrays into a Graph without copying: offsets
// must have length n+1 with offsets[0] == 0, be monotone non-decreasing,
// and end at len(adj), which must be even (every undirected edge appears in
// both directions). Adjacency content (sortedness, symmetry, no self-loops)
// is NOT verified here — it is the serializer's contract; call Validate for
// a full check. The Graph aliases the slices: they must stay immutable (and,
// for mmap-backed slices, mapped) for the Graph's lifetime.
func FromCSR(offsets []int64, adj []Node) (*Graph, error) {
	if len(offsets) == 0 {
		return nil, fmt.Errorf("graph: FromCSR needs offsets of length n+1, got 0")
	}
	if offsets[0] != 0 {
		return nil, fmt.Errorf("graph: offsets[0] = %d, want 0", offsets[0])
	}
	for i := 1; i < len(offsets); i++ {
		if offsets[i] < offsets[i-1] {
			return nil, fmt.Errorf("graph: offsets not monotone at %d", i)
		}
	}
	if last := offsets[len(offsets)-1]; last != int64(len(adj)) {
		return nil, fmt.Errorf("graph: offsets end at %d, adjacency has %d entries", last, len(adj))
	}
	if len(adj)%2 != 0 {
		return nil, fmt.Errorf("graph: odd adjacency length %d", len(adj))
	}
	return &Graph{offsets: offsets, adj: adj, m: int64(len(adj) / 2)}, nil
}

// Edges returns all undirected edges with U < V, in CSR order.
func (g *Graph) Edges() []Edge {
	edges := make([]Edge, 0, g.m)
	for u := Node(0); int(u) < g.NumNodes(); u++ {
		for _, v := range g.Neighbors(u) {
			if u < v {
				edges = append(edges, Edge{u, v})
			}
		}
	}
	return edges
}

// MaxDegree returns the maximum node degree (0 for an empty graph).
func (g *Graph) MaxDegree() int {
	max := 0
	for u := Node(0); int(u) < g.NumNodes(); u++ {
		if d := g.Degree(u); d > max {
			max = d
		}
	}
	return max
}

// DedupSorted returns a sorted copy of a with duplicate nodes removed. It is
// the shared normalization step for user-supplied target sets.
func DedupSorted(a []Node) []Node {
	out := make([]Node, len(a))
	copy(out, a)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	w := 0
	for i, v := range out {
		if i == 0 || v != out[w-1] {
			out[w] = v
			w++
		}
	}
	return out[:w]
}

// IsDedupSorted reports whether a is already in DedupSorted form (strictly
// increasing). An allocation-free O(len) pre-check for callers that
// re-canonicalize potentially-canonical inputs on hot paths.
func IsDedupSorted(a []Node) bool {
	for i := 1; i < len(a); i++ {
		if a[i] <= a[i-1] {
			return false
		}
	}
	return true
}

// Builder accumulates edges and produces an immutable Graph. Duplicate edges
// and self-loops are silently dropped at Build time. The zero value is ready
// to use.
type Builder struct {
	n     int
	edges []Edge
}

// NewBuilder returns a Builder for a graph with at least n nodes.
func NewBuilder(n int) *Builder { return &Builder{n: n} }

// AddEdge records the undirected edge {u, v}. Nodes beyond the current node
// count grow the graph. Self-loops are ignored.
func (b *Builder) AddEdge(u, v Node) {
	if u == v {
		return
	}
	if int(u) >= b.n {
		b.n = int(u) + 1
	}
	if int(v) >= b.n {
		b.n = int(v) + 1
	}
	b.edges = append(b.edges, Edge{u, v})
}

// SetNumNodes raises the node count to at least n (isolated nodes allowed).
func (b *Builder) SetNumNodes(n int) {
	if n > b.n {
		b.n = n
	}
}

// NumPendingEdges returns the number of edges recorded so far, before
// deduplication.
func (b *Builder) NumPendingEdges() int { return len(b.edges) }

// Build constructs the CSR graph. The builder may be reused afterwards.
func (b *Builder) Build() *Graph {
	n := b.n
	deg := make([]int64, n+1)
	for _, e := range b.edges {
		deg[e.U+1]++
		deg[e.V+1]++
	}
	offsets := make([]int64, n+1)
	for i := 0; i < n; i++ {
		offsets[i+1] = offsets[i] + deg[i+1]
	}
	adj := make([]Node, offsets[n])
	cursor := make([]int64, n)
	copy(cursor, offsets[:n])
	for _, e := range b.edges {
		adj[cursor[e.U]] = e.V
		cursor[e.U]++
		adj[cursor[e.V]] = e.U
		cursor[e.V]++
	}
	// Sort each adjacency list and remove duplicates in place.
	outOff := make([]int64, n+1)
	w := int64(0)
	for u := 0; u < n; u++ {
		lo, hi := offsets[u], offsets[u+1]
		list := adj[lo:hi]
		sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
		outOff[u] = w
		var prev Node = -1
		for _, v := range list {
			if v != prev {
				adj[w] = v
				w++
				prev = v
			}
		}
	}
	outOff[n] = w
	return &Graph{offsets: outOff, adj: adj[:w:w], m: w / 2}
}

// FromEdges builds a graph with n nodes from the given edge list.
func FromEdges(n int, edges []Edge) *Graph {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e.U, e.V)
	}
	b.SetNumNodes(n)
	return b.Build()
}

// Validate checks structural invariants of the CSR representation. It is
// intended for tests and debugging; a graph produced by Builder always
// validates.
func (g *Graph) Validate() error {
	n := g.NumNodes()
	if len(g.offsets) != 0 && g.offsets[0] != 0 {
		return fmt.Errorf("graph: offsets[0] = %d, want 0", g.offsets[0])
	}
	var total int64
	for u := 0; u < n; u++ {
		if g.offsets[u] > g.offsets[u+1] {
			return fmt.Errorf("graph: offsets not monotone at node %d", u)
		}
		nbrs := g.Neighbors(Node(u))
		for i, v := range nbrs {
			if v < 0 || int(v) >= n {
				return fmt.Errorf("graph: node %d has out-of-range neighbor %d", u, v)
			}
			if v == Node(u) {
				return fmt.Errorf("graph: node %d has a self-loop", u)
			}
			if i > 0 && nbrs[i-1] >= v {
				return fmt.Errorf("graph: adjacency of node %d not strictly sorted", u)
			}
			if !g.HasEdge(v, Node(u)) {
				return fmt.Errorf("graph: edge (%d,%d) present but reverse missing", u, v)
			}
		}
		total += int64(len(nbrs))
	}
	if total != 2*g.m {
		return fmt.Errorf("graph: degree sum %d != 2m = %d", total, 2*g.m)
	}
	return nil
}
