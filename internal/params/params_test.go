package params

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

func TestChecks(t *testing.T) {
	for _, tc := range []struct {
		name string
		err  error
		bad  bool
	}{
		{"eps ok", CheckEpsilon(0.05), false},
		{"eps zero", CheckEpsilon(0), true},
		{"eps one", CheckEpsilon(1), true},
		{"eps negative", CheckEpsilon(-0.1), true},
		{"eps nan", CheckEpsilon(nan()), true},
		{"delta ok", CheckDelta(0.01), false},
		{"delta too big", CheckDelta(1.5), true},
		{"pair ok", CheckEpsDelta(0.1, 0.1), false},
		{"pair bad eps", CheckEpsDelta(2, 0.1), true},
		{"pair bad delta", CheckEpsDelta(0.1, 0), true},
		{"k ok", CheckK(1), false},
		{"k zero", CheckK(0), true},
		{"targets ok", CheckTargets([]int32{0, 4}, 5), false},
		{"targets empty", CheckTargets([]int32{}, 5), true},
		{"targets negative", CheckTargets([]int32{-1}, 5), true},
		{"targets high", CheckTargets([]int32{5}, 5), true},
	} {
		if got := tc.err != nil; got != tc.bad {
			t.Errorf("%s: err = %v, want bad=%v", tc.name, tc.err, tc.bad)
		}
		if tc.bad && !IsBadInput(tc.err) {
			t.Errorf("%s: error is not classified as bad input", tc.name)
		}
	}
}

func nan() float64 {
	z := 0.0
	return z / z
}

func TestErrorChainClassification(t *testing.T) {
	wrapped := fmt.Errorf("kpath: %w", CheckK(0))
	if !IsBadInput(wrapped) {
		t.Error("wrapped params error not recognized")
	}
	var pe *Error
	if !errors.As(wrapped, &pe) || pe.Field != "k" {
		t.Errorf("field = %q, want k", pe.Field)
	}
	if IsBadInput(errors.New("disk on fire")) {
		t.Error("unrelated error classified as bad input")
	}
}

// TestCanceledError: the cancellation marker unwraps to the context cause,
// is distinguishable from bad input, and Interrupted is nil on a live ctx.
func TestCanceledError(t *testing.T) {
	if err := Interrupted(context.Background()); err != nil {
		t.Fatalf("live ctx: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Interrupted(ctx)
	if err == nil || !IsCanceled(err) {
		t.Fatalf("canceled ctx: %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatal("cancellation does not unwrap to context.Canceled")
	}
	if IsBadInput(err) {
		t.Fatal("a cancellation classified as bad input")
	}
	wrapped := fmt.Errorf("core: %w", err)
	if !IsCanceled(wrapped) || !errors.Is(wrapped, context.Canceled) {
		t.Fatal("wrapping hides the cancellation")
	}

	dctx, dcancel := context.WithTimeout(context.Background(), 0)
	defer dcancel()
	<-dctx.Done()
	derr := Interrupted(dctx)
	if !errors.Is(derr, context.DeadlineExceeded) {
		t.Fatalf("deadline cancellation is %v, want DeadlineExceeded in chain", derr)
	}
	if IsCanceled(nil) {
		t.Fatal("nil is canceled")
	}
}
