// Binary serialization of the BlockCSR view (DESIGN.md section 7).
//
// The on-disk format is a fixed 56-byte header followed by the view's
// arrays in a fixed order, every section 8-byte aligned, values in the
// writing machine's native byte order:
//
//	[0:8)   magic "SaPHyBCV"
//	[8:12)  format version (uint32, currently 1)
//	[12:16) byte-order probe 0x01020304 (uint32, native order)
//	[16:24) n     — number of nodes (int64)
//	[24:32) m     — number of undirected edges (int64)
//	[32:40) runs  — number of neighbor runs (int64)
//	[40:48) flags (int64; bit 0: original-id map section present;
//	        bit 1: out-reach section present; bit 2: checksum trailer;
//	        bit 3: decomposition section present)
//	[48:56) total file size in bytes (int64; truncation check)
//	offsets   int64[n+1]     graph CSR offsets
//	adj       int32[2m]      graph CSR adjacency (sorted per node)
//	Nbr       int32[2m]      grouped adjacency
//	RNbr      int32[2m]      per-edge neighbor r-values
//	NbrRun    int64[2m]      reciprocal run index per edge
//	Mate      int64[2m]      reciprocal position per edge
//	RunOff    int64[n+1]     runs-per-node index
//	RunBlock  int32[runs]    block id per run (padded to 8 bytes)
//	RunR      int32[runs]    owner r-value per run (padded to 8 bytes)
//	RunStart  int64[runs+1]  edge range per run
//	RunDegSum int64[runs]    neighbor degree mass per run
//	outreach  int64[runs]    r_b(v) per (block, member) pair (flags bit 1)
//	decomp    (flags bit 3)  numBlocks int64; numComps int64;
//	          EdgeBlock  int32[2m]       block id per directed CSR edge
//	          CompLabel  int32[n]        component label per node (padded)
//	          CompSize   int64[numComps] nodes per component
//	ids       int64[n]       original node ids (flags bit 0)
//	checksum  uint64         crc64/ECMA of all preceding bytes (flags bit 2)
//
// The optional ids section preserves the dense-id -> original-id map of
// graph.LoadEdgeList, so a view built from a compacted edge list still
// reports results in the file's id space.
//
// The optional out-reach section is the OutReach.R table flattened in block
// order: for each block b in ascending id, r_b(v) for each member v of
// D.Blocks[b] in member order. Its length equals the run count — runs and
// (block, member) incidences are the same relation counted from the two
// sides. The section lets a serving process reconstruct the full OutReach
// (S/Q/W/WTotal and the cutpoint rNode cache derive from R in O(runs)) via
// NewOutReachFromFlat instead of rerunning the NewOutReach block-cut-tree
// DP; see EnsureDecomposition. Readers predating the section reject files
// carrying it via the unknown-flag check — the intended upgrade semantics,
// since silently ignoring it would be correct but was never exercised by
// those builds.
//
// The optional decomposition section (flag bit 3) carries the parts of the
// biconnected decomposition that the view's own arrays cannot reproduce:
// the per-directed-edge block map, the connected-component labeling, and
// the block count. Everything else in a *Decomposition derives from the
// view in O(runs + members) — NodeBlocks[u] IS RunBlock[RunOff[u]:
// RunOff[u+1]], Blocks inverts it, IsCut[u] is "two or more runs" — so
// NewDecompositionFromView reconstructs the full decomposition without the
// O(n+m) Hopcroft–Tarjan DFS of Decompose. Combined with the out-reach
// section this makes a replica cold-start (EnsureDecomposition) section
// reads plus validation instead of two linear passes over the graph —
// the difference that matters when a fleet cold-starts many replicas from
// one file. Same upgrade semantics as the other sections: readers
// predating the flag reject files carrying it via the unknown-flag check.
//
// Native byte order makes the read path a straight reinterpretation of the
// mapped pages — the probe field turns a cross-endian file into a clean
// error instead of garbage. The embedded graph CSR makes the file
// self-contained: OpenMapped rebuilds a *graph.Graph aliasing the mapped
// offsets/adj sections, so the exact-phase, k-path, and closeness engines
// run directly off the file with no per-process copy of the adjacency.
//
// Files written without the optional sections keep working: consumers that
// need the decomposition or out-reach tables (the bc sampler's alias
// tables, bca terms) recompute them from the embedded graph — see
// EnsureDecomposition and core.PreprocessBCFromView.
package bicomp

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"
	"unsafe"

	"saphyra/internal/faultinject"
	"saphyra/internal/graph"
)

const (
	persistMagic   = "SaPHyBCV"
	persistVersion = 1
	orderProbe     = uint32(0x01020304)
	headerSize     = 56
	// flagIDs marks the presence of the trailing original-id section.
	flagIDs = int64(1)
	// flagOutReach marks the presence of the serialized out-reach section.
	flagOutReach = int64(2)
	// flagChecksum marks the presence of the trailing crc64 checksum: the
	// last 8 bytes of the file are the CRC-64/ECMA of every byte before
	// them. OpenMapped verifies it before handing out a view, so a torn or
	// bit-rotted file is a clean open error instead of silently wrong
	// estimates. Readers predating the flag reject checksummed files via the
	// unknown-flag check — same upgrade semantics as the out-reach section.
	flagChecksum = int64(4)
	// flagDecomp marks the presence of the serialized decomposition section
	// (EdgeBlock, component labeling, block count) — the companion of the
	// out-reach section that lets EnsureDecomposition skip the O(n+m)
	// Decompose DFS on a mapped view. Same upgrade semantics: readers
	// predating the flag reject files carrying it.
	flagDecomp = int64(8)
	// knownFlags is the union of every flag bit this build understands.
	knownFlags = flagIDs | flagOutReach | flagChecksum | flagDecomp
	// maxDim rejects absurd header values before any size arithmetic, so a
	// corrupted header cannot overflow the expected-size computation.
	maxDim = int64(1) << 40
)

// crcTable is the CRC-64/ECMA table used for the checksum trailer.
var crcTable = crc64.MakeTable(crc64.ECMA)

// persistSize returns the total file size for the given dimensions. comps
// is the connected-component count of the decomposition section; it only
// contributes when hasDecomp is set (pass 0 otherwise).
func persistSize(n, m, runs, comps int64, hasIDs, hasOutReach, hasDecomp, hasChecksum bool) int64 {
	size := decompOffset(n, m, runs, hasOutReach)
	if hasDecomp {
		size += decompSectionSize(n, m, comps)
	}
	if hasIDs {
		size += n * 8 // ids
	}
	if hasChecksum {
		size += 8 // crc64 trailer
	}
	return size
}

// decompOffset is the byte offset of the decomposition section's prelude
// (equivalently: the size of everything through the out-reach section).
// decodeView needs it before the total-size check, because the section's
// length depends on the component count stored in its own prelude.
func decompOffset(n, m, runs int64, hasOutReach bool) int64 {
	size := int64(headerSize)
	size += (n + 1) * 8    // offsets
	size += 2 * m * 4      // adj (2m int32 = 8m bytes, always 8-aligned)
	size += 2 * m * 4      // Nbr
	size += 2 * m * 4      // RNbr
	size += 2 * m * 8      // NbrRun
	size += 2 * m * 8      // Mate
	size += (n + 1) * 8    // RunOff
	size += pad8(runs * 4) // RunBlock
	size += pad8(runs * 4) // RunR
	size += (runs + 1) * 8 // RunStart
	size += runs * 8       // RunDegSum
	if hasOutReach {
		size += runs * 8 // outreach
	}
	return size
}

// decompSectionSize is the decomposition section's byte length: the 16-byte
// prelude (numBlocks, numComps), EdgeBlock (2m int32 = 8m bytes, always
// 8-aligned), CompLabel (n int32, padded), and CompSize (comps int64).
func decompSectionSize(n, m, comps int64) int64 {
	return 16 + 2*m*4 + pad8(n*4) + comps*8
}

func pad8(b int64) int64 { return (b + 7) &^ 7 }

func int32Bytes(s []int32) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*4)
}

func int64Bytes(s []int64) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*8)
}

// WriteTo serializes the view in the versioned binary format above (with no
// original-id section), implementing io.WriterTo. The written bytes are
// independent of how the view was obtained: a round-trip through OpenMapped
// yields arrays bitwise-identical to the in-memory build.
func (v *BlockCSR) WriteTo(w io.Writer) (int64, error) {
	return v.writeTo(w, nil)
}

func (v *BlockCSR) writeTo(w io.Writer, ids []int64) (int64, error) {
	n := int64(v.G.NumNodes())
	m := v.G.NumEdges()
	runs := int64(len(v.RunBlock))
	offsets, adj := v.G.CSR()
	var flags int64
	if ids != nil {
		if int64(len(ids)) != n {
			return 0, fmt.Errorf("bicomp: id map has %d entries for %d nodes", len(ids), n)
		}
		flags |= flagIDs
	}
	// Out-reach section: flatten the in-memory tables when present —
	// v.O is always validated (built by NewOutReach, or reconstructed
	// through NewOutReachFromFlat's Claim 9 check), whereas v.rFlat is the
	// raw mapped section, which may be the very bytes that failed that
	// check. Falling back to rFlat keeps mapped views re-serializable
	// without EnsureDecomposition while never propagating a section that a
	// validated O would contradict.
	rFlat := v.rFlat
	if v.O != nil {
		rFlat = v.O.FlatR()
	}
	if rFlat != nil {
		if int64(len(rFlat)) != runs {
			return 0, fmt.Errorf("bicomp: out-reach table has %d entries for %d runs", len(rFlat), runs)
		}
		flags |= flagOutReach
	}
	// Decomposition section: same source preference as out-reach — a
	// validated in-memory D over the raw mapped section (dFlat may be the
	// very bytes a reconstruction rejected), so mapped views stay
	// re-serializable without ever propagating a section a validated D
	// would contradict.
	dSec := v.dFlat
	if v.D != nil {
		dSec = &decompFlat{
			numBlocks: int64(v.D.NumBlocks),
			numComps:  int64(len(v.D.CompSize)),
			edgeBlock: v.D.EdgeBlock,
			compLabel: v.D.CompLabel,
			compSize:  v.D.CompSize,
		}
	}
	if dSec != nil {
		if int64(len(dSec.edgeBlock)) != 2*m || int64(len(dSec.compLabel)) != n ||
			int64(len(dSec.compSize)) != dSec.numComps {
			return 0, fmt.Errorf("bicomp: decomposition section shape mismatch (|EdgeBlock|=%d for 2m=%d, |CompLabel|=%d for n=%d, |CompSize|=%d for %d components)",
				len(dSec.edgeBlock), 2*m, len(dSec.compLabel), n, len(dSec.compSize), dSec.numComps)
		}
		flags |= flagDecomp
	}
	flags |= flagChecksum

	bw := bufio.NewWriterSize(w, 1<<20)
	digest := crc64.New(crcTable)
	var written int64
	// put writes a section to the file and folds it into the checksum; the
	// trailer itself is written below with bw.Write directly, so the digest
	// covers exactly the bytes preceding it.
	put := func(b []byte) error {
		k, err := bw.Write(b)
		written += int64(k)
		digest.Write(b[:k])
		return err
	}

	var hdr [headerSize]byte
	copy(hdr[0:8], persistMagic)
	binary.NativeEndian.PutUint32(hdr[8:12], persistVersion)
	binary.NativeEndian.PutUint32(hdr[12:16], orderProbe)
	binary.NativeEndian.PutUint64(hdr[16:24], uint64(n))
	binary.NativeEndian.PutUint64(hdr[24:32], uint64(m))
	binary.NativeEndian.PutUint64(hdr[32:40], uint64(runs))
	binary.NativeEndian.PutUint64(hdr[40:48], uint64(flags))
	var comps int64
	if dSec != nil {
		comps = dSec.numComps
	}
	binary.NativeEndian.PutUint64(hdr[48:56], uint64(persistSize(n, m, runs, comps, ids != nil, rFlat != nil, dSec != nil, true)))
	if err := put(hdr[:]); err != nil {
		return written, err
	}

	var padding [8]byte
	putPadded32 := func(s []int32) error {
		if err := put(int32Bytes(s)); err != nil {
			return err
		}
		if p := pad8(int64(len(s))*4) - int64(len(s))*4; p > 0 {
			return put(padding[:p])
		}
		return nil
	}
	for _, sec := range [][]int64{offsets} {
		if err := put(int64Bytes(sec)); err != nil {
			return written, err
		}
	}
	for _, sec := range [][]int32{adj, v.Nbr, v.RNbr} {
		if err := put(int32Bytes(sec)); err != nil {
			return written, err
		}
	}
	for _, sec := range [][]int64{v.NbrRun, v.Mate, v.RunOff} {
		if err := put(int64Bytes(sec)); err != nil {
			return written, err
		}
	}
	if err := putPadded32(v.RunBlock); err != nil {
		return written, err
	}
	if err := putPadded32(v.RunR); err != nil {
		return written, err
	}
	for _, sec := range [][]int64{v.RunStart, v.RunDegSum} {
		if err := put(int64Bytes(sec)); err != nil {
			return written, err
		}
	}
	if rFlat != nil {
		if err := put(int64Bytes(rFlat)); err != nil {
			return written, err
		}
	}
	if dSec != nil {
		var prelude [16]byte
		binary.NativeEndian.PutUint64(prelude[0:8], uint64(dSec.numBlocks))
		binary.NativeEndian.PutUint64(prelude[8:16], uint64(dSec.numComps))
		if err := put(prelude[:]); err != nil {
			return written, err
		}
		if err := put(int32Bytes(dSec.edgeBlock)); err != nil {
			return written, err
		}
		if err := putPadded32(dSec.compLabel); err != nil {
			return written, err
		}
		if err := put(int64Bytes(dSec.compSize)); err != nil {
			return written, err
		}
	}
	if ids != nil {
		if err := put(int64Bytes(ids)); err != nil {
			return written, err
		}
	}
	var trailer [8]byte
	binary.NativeEndian.PutUint64(trailer[:], digest.Sum64())
	k, err := bw.Write(trailer[:])
	written += int64(k)
	if err != nil {
		return written, err
	}
	return written, bw.Flush()
}

// WriteFile serializes the view to path (the build-once half of the
// build-once/serve-many flow; OpenMapped is the other half). ids, when
// non-nil, is the dense-id -> original-id map to embed (length n); pass nil
// when node ids are already the external ids.
//
// Publication is crash-safe: the bytes land in a temp file in path's
// directory, are fsynced, and are renamed over path, with the directory
// fsynced after the rename. A crash at any point leaves either the old file
// or the new one at path — never a torn view. Reload flows can therefore
// point a live saphyrad at path while a rebuild overwrites it.
func (v *BlockCSR) WriteFile(path string, ids []int64) (err error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if _, err = v.writeTo(f, ids); err != nil {
		return fmt.Errorf("bicomp: writing view to %s: %w", path, err)
	}
	if err = f.Sync(); err != nil {
		return fmt.Errorf("bicomp: syncing view %s: %w", path, err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("bicomp: closing view %s: %w", path, err)
	}
	if err = os.Rename(tmp, path); err != nil {
		return fmt.Errorf("bicomp: publishing view %s: %w", path, err)
	}
	// Fsync the directory so the rename itself is durable. Failure here is
	// reported but the published file is already visible and intact.
	if d, derr := os.Open(dir); derr == nil {
		serr := d.Sync()
		d.Close()
		if serr != nil {
			return fmt.Errorf("bicomp: syncing directory of %s: %w", path, serr)
		}
	}
	return nil
}

// sectionReader slices typed sections out of an 8-aligned byte buffer
// without copying.
type sectionReader struct {
	data []byte
	off  int64
}

func (r *sectionReader) i64(count int64) []int64 {
	s := unsafe.Slice((*int64)(unsafe.Pointer(&r.data[r.off])), count)
	r.off += count * 8
	return s
}

func (r *sectionReader) i32(count int64, padded bool) []int32 {
	s := unsafe.Slice((*int32)(unsafe.Pointer(&r.data[r.off])), count)
	r.off += count * 4
	if padded {
		r.off = pad8(r.off)
	}
	return s
}

// decodeView reinterprets a serialized view. data must be 8-byte aligned
// (mmap regions and []uint64-backed buffers both are) and must stay alive —
// and, for mapped regions, mapped — for the lifetime of the returned view.
// ids is nil when the file carries no original-id section.
func decodeView(data []byte) (view *BlockCSR, ids []int64, err error) {
	if len(data) < headerSize {
		return nil, nil, fmt.Errorf("bicomp: view file too short (%d bytes)", len(data))
	}
	if string(data[0:8]) != persistMagic {
		return nil, nil, fmt.Errorf("bicomp: bad magic %q, want %q", data[0:8], persistMagic)
	}
	if v := binary.NativeEndian.Uint32(data[8:12]); v != persistVersion {
		return nil, nil, fmt.Errorf("bicomp: view format version %d, this build reads %d", v, persistVersion)
	}
	if p := binary.NativeEndian.Uint32(data[12:16]); p != orderProbe {
		return nil, nil, fmt.Errorf("bicomp: byte-order probe %#x, want %#x (file written on a machine with different endianness)", p, orderProbe)
	}
	n := int64(binary.NativeEndian.Uint64(data[16:24]))
	m := int64(binary.NativeEndian.Uint64(data[24:32]))
	runs := int64(binary.NativeEndian.Uint64(data[32:40]))
	flags := int64(binary.NativeEndian.Uint64(data[40:48]))
	total := int64(binary.NativeEndian.Uint64(data[48:56]))
	if n < 0 || m < 0 || runs < 0 || n > maxDim || m > maxDim || runs > maxDim {
		return nil, nil, fmt.Errorf("bicomp: implausible view dimensions n=%d m=%d runs=%d", n, m, runs)
	}
	if unknown := flags &^ knownFlags; unknown != 0 {
		return nil, nil, fmt.Errorf("bicomp: unknown view flags %#x (file written by a newer build?)", unknown)
	}
	hasIDs := flags&flagIDs != 0
	hasOutReach := flags&flagOutReach != 0
	hasChecksum := flags&flagChecksum != 0
	hasDecomp := flags&flagDecomp != 0
	// The decomposition section's length depends on the component count in
	// its own prelude, so that prelude must be read (bounds-checked against
	// the raw buffer) before the total-size check can run.
	var numBlocks, numComps int64
	if hasDecomp {
		off := decompOffset(n, m, runs, hasOutReach)
		if off+16 > int64(len(data)) {
			return nil, nil, fmt.Errorf("bicomp: view file size %d, decomposition prelude at %d — truncated or corrupt", len(data), off)
		}
		numBlocks = int64(binary.NativeEndian.Uint64(data[off : off+8]))
		numComps = int64(binary.NativeEndian.Uint64(data[off+8 : off+16]))
		if numBlocks < 0 || numBlocks > runs || numComps < 0 || numComps > n {
			return nil, nil, fmt.Errorf("bicomp: implausible decomposition section: %d blocks for %d runs, %d components for %d nodes",
				numBlocks, runs, numComps, n)
		}
	}
	if want := persistSize(n, m, runs, numComps, hasIDs, hasOutReach, hasDecomp, hasChecksum); total != want || int64(len(data)) != want {
		return nil, nil, fmt.Errorf("bicomp: view file size %d (header says %d), want %d — truncated or corrupt", len(data), total, want)
	}
	if hasChecksum {
		body := data[:len(data)-8]
		want := binary.NativeEndian.Uint64(data[len(data)-8:])
		if got := crc64.Checksum(body, crcTable); got != want {
			return nil, nil, fmt.Errorf("bicomp: view checksum %#x, trailer says %#x — file corrupt", got, want)
		}
	}

	r := &sectionReader{data: data, off: headerSize}
	offsets := r.i64(n + 1)
	adj := r.i32(2*m, false)
	view = &BlockCSR{
		Nbr:       r.i32(2*m, false),
		RNbr:      r.i32(2*m, false),
		NbrRun:    r.i64(2 * m),
		Mate:      r.i64(2 * m),
		RunOff:    r.i64(n + 1),
		RunBlock:  r.i32(runs, true),
		RunR:      r.i32(runs, true),
		RunStart:  r.i64(runs + 1),
		RunDegSum: r.i64(runs),
	}
	if hasOutReach {
		view.rFlat = r.i64(runs)
	}
	if hasDecomp {
		r.off += 16 // prelude: already decoded above
		view.dFlat = &decompFlat{
			numBlocks: numBlocks,
			numComps:  numComps,
			edgeBlock: r.i32(2*m, false),
			compLabel: r.i32(n, true),
			compSize:  r.i64(numComps),
		}
	}
	if hasIDs {
		ids = r.i64(n)
	}
	g, err := graph.FromCSR(offsets, adj)
	if err != nil {
		return nil, nil, fmt.Errorf("bicomp: embedded graph: %w", err)
	}
	if int64(len(view.RunBlock)) != runs || view.RunOff[n] != runs {
		return nil, nil, fmt.Errorf("bicomp: run index inconsistent with header")
	}
	view.G = g
	return view, ids, nil
}

// Mapped is a BlockCSR view whose arrays alias a serialized file — mmapped
// where the platform supports it, a page-aligned heap copy otherwise. The
// View (including its embedded graph) is valid until Close; Close unmaps
// the region, after which any access through the view faults. The mapping
// is read-only and shared: concurrent processes serving the same file share
// one copy of the physical pages.
//
// Mapped views have View.D == nil and View.O == nil — Validate performs the
// structural (decomposition-free) checks, and core.PreprocessBCFromView
// recomputes the tables when a consumer needs them.
type Mapped struct {
	View *BlockCSR
	// IDs is the embedded dense-id -> original-id map, or nil when the file
	// was written without one (node ids are already external).
	IDs    []int64
	data   []byte
	munmap func() error
}

// openMappings counts live Mapped views process-wide: +1 per successful
// OpenMapped, -1 per first Close. Reload-failure and chaos tests assert it
// returns to its baseline — a leak here means mapped pages (and on some
// platforms, file descriptors' address space) pin forever.
var openMappings atomic.Int64

// OpenMappings reports the number of Mapped views currently open and not
// yet closed in this process.
func OpenMappings() int64 { return openMappings.Load() }

// OpenMapped opens a view file written by WriteTo for zero-copy serving.
func OpenMapped(path string) (*Mapped, error) {
	if err := faultinject.Fire("bicomp.openmapped"); err != nil {
		return nil, fmt.Errorf("bicomp: mapping %s: %w", path, err)
	}
	data, munmap, err := mapFile(path)
	if err != nil {
		return nil, fmt.Errorf("bicomp: mapping %s: %w", path, err)
	}
	view, ids, err := decodeView(data)
	if err != nil {
		if munmap != nil {
			munmap()
		}
		return nil, fmt.Errorf("bicomp: %s: %w", path, err)
	}
	openMappings.Add(1)
	return &Mapped{View: view, IDs: ids, data: data, munmap: munmap}, nil
}

// Close releases the mapping. The view and every slice derived from it must
// not be used afterwards. Close is idempotent; only the first call
// decrements the open-mappings count.
func (m *Mapped) Close() error {
	if m.data != nil {
		openMappings.Add(-1)
	}
	m.View = nil
	m.IDs = nil
	m.data = nil
	if m.munmap != nil {
		f := m.munmap
		m.munmap = nil
		return f()
	}
	return nil
}
