package bicomp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"saphyra/internal/graph"
	"saphyra/internal/testutil"
)

func TestOutReachPathGraph(t *testing.T) {
	// Path 0-1-2: blocks {0,1} and {1,2}; cutpoint 1 has r = 2 in each.
	g := graph.Path(3)
	d := Decompose(g)
	o := NewOutReach(d)
	if err := o.CheckClaim9(); err != nil {
		t.Fatal(err)
	}
	for b := int32(0); int(b) < d.NumBlocks; b++ {
		if r := o.Of(b, 1); r != 2 {
			t.Errorf("r_%d(1) = %d, want 2", b, r)
		}
		for _, v := range d.Blocks[b] {
			if v != 1 {
				if r := o.Of(b, v); r != 1 {
					t.Errorf("r_%d(%d) = %d, want 1", b, v, r)
				}
			}
		}
	}
}

func TestOutReachPaperFig2(t *testing.T) {
	g, names := paperFig2()
	d := Decompose(g)
	o := NewOutReach(d)
	if err := o.CheckClaim9(); err != nil {
		t.Fatal(err)
	}
	// Cutpoint d belongs to C1={a..e}, C3={d,f}, C5={d,i}. With n=11:
	// out-reach of d w.r.t. C1 is {d, f, i, j, k} = 5.
	var c1 int32 = -1
	for _, b := range d.NodeBlocks[names['d']] {
		if d.BlockSize(b) == 5 {
			c1 = b
		}
	}
	if c1 < 0 {
		t.Fatal("C1 not found among d's blocks")
	}
	if r := o.Of(c1, names['d']); r != 5 {
		t.Errorf("r_C1(d) = %d, want 5", r)
	}
}

func TestOutReachMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(22)
		g := testutil.RandomConnectedGraph(n, rng.Intn(n), seed)
		d := Decompose(g)
		o := NewOutReach(d)
		if err := o.CheckClaim9(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		for b := int32(0); int(b) < d.NumBlocks; b++ {
			for _, v := range d.Blocks[b] {
				want := testutil.BruteOutReach(g, d.Blocks[b], v)
				if got := o.Of(b, v); got != want {
					t.Logf("seed %d: r_%d(%d) = %d, brute %d", seed, b, v, got, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestOutReachDisconnected(t *testing.T) {
	b := graph.NewBuilder(7)
	// component 1: path 0-1-2; component 2: triangle 3,4,5; node 6 isolated
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	b.AddEdge(4, 5)
	b.AddEdge(5, 3)
	g := b.Build()
	d := Decompose(g)
	o := NewOutReach(d)
	if err := o.CheckClaim9(); err != nil {
		t.Fatal(err)
	}
	// Claim 9 per component: sums are component sizes (3 and 3), not n=7.
	for bid := 0; bid < d.NumBlocks; bid++ {
		if o.S[bid] != 3 {
			t.Errorf("block %d: S = %d, want 3", bid, o.S[bid])
		}
	}
}

func TestBCAMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		g := testutil.RandomConnectedGraph(n, rng.Intn(n), seed)
		d := Decompose(g)
		o := NewOutReach(d)
		for v := graph.Node(0); int(v) < n; v++ {
			want := testutil.BruteBCA(g, v)
			got := o.BCA(v)
			if math.Abs(got-want) > 1e-12 {
				t.Logf("seed %d: bca(%d) = %g, brute %g", seed, v, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestBCAZeroForNonCutpoints(t *testing.T) {
	g := graph.Cycle(8)
	d := Decompose(g)
	o := NewOutReach(d)
	for v := graph.Node(0); int(v) < 8; v++ {
		if o.BCA(v) != 0 {
			t.Errorf("bca(%d) = %g, want 0 on a cycle", v, o.BCA(v))
		}
	}
}

func TestGammaMatchesBruteForce(t *testing.T) {
	// gamma = sum over blocks of sum_{s != t in block} r(s) r(t) / (n(n-1)),
	// computed here with brute-force out-reach values.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(18)
		g := testutil.RandomConnectedGraph(n, rng.Intn(n), seed)
		d := Decompose(g)
		o := NewOutReach(d)
		var brute float64
		for b := int32(0); int(b) < d.NumBlocks; b++ {
			members := d.Blocks[b]
			for _, s := range members {
				for _, u := range members {
					if s == u {
						continue
					}
					brute += float64(testutil.BruteOutReach(g, members, s) * testutil.BruteOutReach(g, members, u))
				}
			}
		}
		brute /= float64(n) * float64(n-1)
		return math.Abs(o.Gamma()-brute) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestGammaOnBiconnectedGraphIsOne(t *testing.T) {
	// A single biconnected block covering the whole (connected) graph keeps
	// every shortest path intact: gamma = 1.
	for _, g := range []*graph.Graph{graph.Cycle(9), graph.Complete(5)} {
		d := Decompose(g)
		o := NewOutReach(d)
		if math.Abs(o.Gamma()-1) > 1e-12 {
			t.Errorf("gamma = %g, want 1", o.Gamma())
		}
	}
}

func TestGammaStarGraph(t *testing.T) {
	// Star K_{1,4} (n=5): every block is an edge {center, leaf} with
	// r(center)=4, r(leaf)=1 w.r.t. that block... wait: out-reach of center
	// w.r.t. edge-block {c, leaf} is all nodes except that leaf = 4.
	// w_block = (4+1)^2 - (16+1) = 8 per block, 4 blocks -> 32.
	// gamma = 32 / (5*4) = 1.6/2 = 0.8... computed: 32/20 = 1.6 -- that
	// exceeds 1 because ordered intra-block pair mass counts each broken
	// 2-hop path's two halves. Verify against the direct definition
	// instead: gamma = sum_i sum_{s!=t in C_i} q_st where
	// q_st = r(s)r(t)/(n(n-1)).
	g := graph.Star(5)
	d := Decompose(g)
	o := NewOutReach(d)
	want := 32.0 / 20.0
	if math.Abs(o.Gamma()-want) > 1e-12 {
		t.Errorf("gamma = %g, want %g", o.Gamma(), want)
	}
}

func TestEtaAndBlocksOf(t *testing.T) {
	g, names := paperFig2()
	d := Decompose(g)
	o := NewOutReach(d)
	// A = {j}: only block C4 (triangle i,j,k).
	blocks := o.BlocksOf([]graph.Node{names['j']})
	if len(blocks) != 1 {
		t.Fatalf("I({j}) = %v, want single block", blocks)
	}
	eta := o.Eta(blocks)
	if eta <= 0 || eta >= 1 {
		t.Errorf("eta = %g, want in (0,1)", eta)
	}
	// A = all nodes: eta = 1.
	var all []graph.Node
	for v := 0; v < g.NumNodes(); v++ {
		all = append(all, graph.Node(v))
	}
	if e := o.Eta(o.BlocksOf(all)); math.Abs(e-1) > 1e-12 {
		t.Errorf("eta(V) = %g, want 1", e)
	}
}

func TestBlocksOfDeduplicates(t *testing.T) {
	g := graph.Path(4) // blocks: {0,1},{1,2},{2,3}
	d := Decompose(g)
	o := NewOutReach(d)
	blocks := o.BlocksOf([]graph.Node{1, 2, 1}) // node 1 in 2 blocks, 2 in 2
	if len(blocks) != 3 {
		t.Errorf("I(A) = %v, want all 3 blocks deduped", blocks)
	}
	for i := 1; i < len(blocks); i++ {
		if blocks[i-1] >= blocks[i] {
			t.Error("BlocksOf not sorted")
		}
	}
}

func TestPairMass(t *testing.T) {
	g := graph.Path(3)
	d := Decompose(g)
	o := NewOutReach(d)
	b := d.NodeBlocks[0][0] // block {0,1}
	// r(0)=1, r_b(1)=2
	if got := o.PairMass(b, 0, 1); got != 2 {
		t.Errorf("PairMass = %g, want 2", got)
	}
}

// Lemma 13 sanity on small graphs: bc(v) = gamma * E_{Dc}[g(v,p)] + bca(v).
// We verify by full enumeration: E_{Dc}[g(v,p)] computed from the explicit
// ISP distribution over intra-block pairs.
func TestLemma13Identity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(14)
		g := testutil.RandomConnectedGraph(n, rng.Intn(n), seed)
		d := Decompose(g)
		o := NewOutReach(d)
		bc := testutil.BruteBC(g)
		nn := float64(n) * float64(n-1)
		// E_{Dc}[g(v,.)] * gamma = sum over blocks, intra-block ordered
		// pairs (s,t), shortest paths p of q'_st/(sigma nn) * inner(v, p).
		inner := make([]float64, n)
		for b := int32(0); int(b) < d.NumBlocks; b++ {
			members := d.Blocks[b]
			for _, s := range members {
				for _, u := range members {
					if s == u {
						continue
					}
					paths := testutil.AllShortestPaths(g, s, u)
					if len(paths) == 0 {
						continue
					}
					mass := o.PairMass(b, s, u) / (float64(len(paths)) * nn)
					for _, p := range paths {
						for _, v := range p[1 : len(p)-1] {
							inner[v] += mass
						}
					}
				}
			}
		}
		for v := 0; v < n; v++ {
			want := bc[v]
			got := inner[v] + o.BCA(graph.Node(v))
			if math.Abs(got-want) > 1e-9 {
				t.Logf("seed %d: node %d: gamma*E+bca = %g, bc = %g", seed, v, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
