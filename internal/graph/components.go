package graph

// ConnectedComponents labels every node with a component id in [0, count) and
// returns the label array, per-component sizes, and the component count.
// Labels are assigned in order of the smallest node in each component.
func ConnectedComponents(g *Graph) (labels []int32, sizes []int64, count int) {
	n := g.NumNodes()
	labels = make([]int32, n)
	for i := range labels {
		labels[i] = -1
	}
	queue := make([]Node, 0, n)
	for start := 0; start < n; start++ {
		if labels[start] != -1 {
			continue
		}
		id := int32(count)
		count++
		sizes = append(sizes, 0)
		queue = queue[:0]
		queue = append(queue, Node(start))
		labels[start] = id
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			sizes[id]++
			for _, v := range g.Neighbors(u) {
				if labels[v] == -1 {
					labels[v] = id
					queue = append(queue, v)
				}
			}
		}
	}
	return labels, sizes, count
}

// LargestComponent returns the induced subgraph of the largest connected
// component together with the mapping new id -> old id.
func LargestComponent(g *Graph) (*Graph, []Node) {
	labels, sizes, count := ConnectedComponents(g)
	if count <= 1 {
		ids := make([]Node, g.NumNodes())
		for i := range ids {
			ids[i] = Node(i)
		}
		return g, ids
	}
	best := int32(0)
	for i := 1; i < count; i++ {
		if sizes[i] > sizes[best] {
			best = int32(i)
		}
	}
	keep := make([]Node, 0, sizes[best])
	for u := 0; u < g.NumNodes(); u++ {
		if labels[u] == best {
			keep = append(keep, Node(u))
		}
	}
	return Subgraph(g, keep)
}

// Subgraph returns the subgraph induced by the given node set (need not be
// sorted; duplicates are ignored), with nodes renumbered densely in sorted
// order, plus the mapping new id -> old id.
func Subgraph(g *Graph, nodes []Node) (*Graph, []Node) {
	inSet := make(map[Node]Node, len(nodes))
	sorted := make([]Node, 0, len(nodes))
	for _, u := range nodes {
		if _, ok := inSet[u]; !ok {
			inSet[u] = 0
			sorted = append(sorted, u)
		}
	}
	// Dense renumbering in ascending old-id order keeps things deterministic.
	sortNodes(sorted)
	for i, u := range sorted {
		inSet[u] = Node(i)
	}
	b := NewBuilder(len(sorted))
	for _, u := range sorted {
		nu := inSet[u]
		for _, v := range g.Neighbors(u) {
			nv, ok := inSet[v]
			if ok && nu < nv {
				b.AddEdge(nu, nv)
			}
		}
	}
	b.SetNumNodes(len(sorted))
	return b.Build(), sorted
}

func sortNodes(a []Node) {
	// insertion-free: use sort.Slice via small shim to avoid importing sort
	// everywhere; kept here for reuse.
	quickSortNodes(a)
}

func quickSortNodes(a []Node) {
	if len(a) < 24 {
		for i := 1; i < len(a); i++ {
			for j := i; j > 0 && a[j] < a[j-1]; j-- {
				a[j], a[j-1] = a[j-1], a[j]
			}
		}
		return
	}
	pivot := a[len(a)/2]
	lo, hi := 0, len(a)-1
	for lo <= hi {
		for a[lo] < pivot {
			lo++
		}
		for a[hi] > pivot {
			hi--
		}
		if lo <= hi {
			a[lo], a[hi] = a[hi], a[lo]
			lo++
			hi--
		}
	}
	quickSortNodes(a[:hi+1])
	quickSortNodes(a[lo:])
}
