package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"saphyra/internal/serve"
)

// PushView atomically replaces dst with the view file at src: write to a
// temp file in dst's directory, fsync, rename over dst, fsync the
// directory. A replica reloading mid-push therefore maps either the old
// bytes or the new bytes, never a torn mix — the same crash-safety contract
// bicomp.WriteFile gives the writer, extended to the distribution step.
func PushView(src, dst string) (err error) {
	in, err := os.Open(src)
	if err != nil {
		return fmt.Errorf("cluster: push: %w", err)
	}
	defer in.Close()
	dir := filepath.Dir(dst)
	tmp, err := os.CreateTemp(dir, ".push-*.sbcv")
	if err != nil {
		return fmt.Errorf("cluster: push: %w", err)
	}
	defer func() {
		if err != nil {
			os.Remove(tmp.Name())
		}
	}()
	if _, err = io.Copy(tmp, in); err != nil {
		tmp.Close()
		return fmt.Errorf("cluster: push: %w", err)
	}
	if err = tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("cluster: push: %w", err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("cluster: push: %w", err)
	}
	if err = os.Rename(tmp.Name(), dst); err != nil {
		return fmt.Errorf("cluster: push: %w", err)
	}
	if d, derr := os.Open(dir); derr == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// reloadGateTimeout bounds the per-replica wait for a reloaded generation
// to appear on /readyz.
const reloadGateTimeout = 30 * time.Second

// RollingReload reloads each replica in order, strictly one at a time,
// gating every step on the replica reporting the reloaded generation on
// /readyz before the next replica is touched. The generation invariant this
// preserves: at any instant the fleet serves at most two adjacent
// generations, every response says which one it carries, and the
// per-(generation, key) cache/peer-fill discipline keeps the two from ever
// mixing for one key. A failed step aborts the roll — replicas before it
// serve gen G+1, replicas after it keep serving G, and both keep answering
// correctly, so an aborted roll degrades freshness, never correctness.
//
// Returns the generation each replica reported, in replica order (on error:
// the generations achieved so far).
func RollingReload(ctx context.Context, client *http.Client, replicas []string) ([]uint64, error) {
	if client == nil {
		client = http.DefaultClient
	}
	gens := make([]uint64, 0, len(replicas))
	for _, base := range replicas {
		gen, err := reloadOne(ctx, client, base)
		if err != nil {
			return gens, fmt.Errorf("cluster: rolling reload aborted at %s (after %d of %d): %w",
				base, len(gens), len(replicas), err)
		}
		gens = append(gens, gen)
	}
	return gens, nil
}

// reloadOne reloads a single replica and blocks until /readyz reports the
// new generation.
func reloadOne(ctx context.Context, client *http.Client, base string) (uint64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/admin/reload", nil)
	if err != nil {
		return 0, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	var rr serve.ReloadResponse
	derr := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&rr)
	drain(resp)
	if resp.StatusCode != http.StatusOK {
		if rr.Error != "" {
			return 0, fmt.Errorf("reload: status %d: %s", resp.StatusCode, rr.Error)
		}
		return 0, fmt.Errorf("reload: status %d", resp.StatusCode)
	}
	if derr != nil {
		return 0, fmt.Errorf("reload: decoding response: %w", derr)
	}
	if err := awaitGeneration(ctx, client, base, rr.Generation); err != nil {
		return 0, err
	}
	return rr.Generation, nil
}

// awaitGeneration polls /readyz until it reports gen (or newer — another
// driver may have rolled past us) and a ready status.
func awaitGeneration(ctx context.Context, client *http.Client, base string, gen uint64) error {
	ctx, cancel := context.WithTimeout(ctx, reloadGateTimeout)
	defer cancel()
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/readyz", nil)
		if err != nil {
			return err
		}
		resp, err := client.Do(req)
		if err == nil {
			var ready serve.ReadyzResponse
			derr := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&ready)
			drain(resp)
			if derr == nil && resp.StatusCode == http.StatusOK && ready.Generation >= gen {
				return nil
			}
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("replica did not become ready at generation %d: %w", gen, context.Cause(ctx))
		case <-time.After(10 * time.Millisecond):
		}
	}
}
