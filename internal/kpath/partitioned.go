package kpath

import (
	"errors"
	"fmt"

	"saphyra/internal/core"
	"saphyra/internal/graph"
	"saphyra/internal/vc"
)

// EstimatePartitioned is a second full instantiation of the SaPHyRa
// framework (beyond SaPHyRa_bc): k-path centrality with a partitioned
// sample space.
//
// The exact subspace is the set of walks of intended length 1 — exactly a
// 1/k fraction of the sample space, whose risks have the closed form
//
//	lhat_v = (1/(n k)) * sum_{u in N(v)} 1/deg(u),
//
// computable in O(m). The approximate subspace is sampled by drawing the
// walk length uniformly from {2..k} (the conditional distribution; no
// rejection needed). Low-centrality nodes collect most of their k-path mass
// from 1-step walks, so — exactly as in SaPHyRa_bc — the partition removes
// the dominant portion of their risk from the sampling variance (Claim 8)
// and guarantees a non-zero estimate for every node with a neighbor.
func EstimatePartitioned(g *graph.Graph, a []graph.Node, opt Options) (*Result, error) {
	opt.setDefaults()
	if len(a) == 0 {
		return nil, errors.New("kpath: empty target set")
	}
	if opt.K < 1 {
		return nil, fmt.Errorf("kpath: k must be >= 1, got %d", opt.K)
	}
	n := g.NumNodes()
	if n == 0 {
		return nil, errors.New("kpath: empty graph")
	}
	nodes := graph.DedupSorted(a)
	aIndex := make([]int32, n)
	for i := range aIndex {
		aIndex[i] = -1
	}
	for i, v := range nodes {
		aIndex[v] = int32(i)
	}
	piMax := int64(opt.K)
	if int64(len(nodes)) < piMax {
		piMax = int64(len(nodes))
	}
	space := &kpathSpace{
		g:      g,
		k:      opt.K,
		nodes:  nodes,
		aIndex: aIndex,
		dim:    max(1, vc.DimFromMaxInner(piMax)),
	}
	est, err := core.Run(space, core.Options{
		Epsilon: opt.Epsilon,
		Delta:   opt.Delta,
		Workers: opt.Workers,
		Seed:    opt.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &Result{Nodes: nodes, KPath: est.Risks, Est: est}, nil
}

type kpathSpace struct {
	g      *graph.Graph
	k      int
	nodes  []graph.Node
	aIndex []int32
	dim    int
}

// NumHypotheses implements core.Space.
func (s *kpathSpace) NumHypotheses() int { return len(s.nodes) }

// VCDim implements core.Space.
func (s *kpathSpace) VCDim() int { return s.dim }

// ExactPhase implements core.Space: the exact subspace is all intended
// 1-step walks; its mass is exactly 1/k and the per-target risks are the
// closed-form first-step visit probabilities.
func (s *kpathSpace) ExactPhase() (float64, []float64) {
	n := float64(s.g.NumNodes())
	exact := make([]float64, len(s.nodes))
	for i, v := range s.nodes {
		var p float64
		for _, u := range s.g.Neighbors(v) {
			p += 1 / float64(s.g.Degree(u))
		}
		exact[i] = p / (n * float64(s.k))
	}
	return 1 / float64(s.k), exact
}

// NewSampler implements core.Space: walks of length l uniform in {2..k}
// (the approximate-subspace conditional). For k == 1 the exact subspace is
// the whole space and core.Run never calls the sampler. The returned
// sampler implements core.BatchSampler.
func (s *kpathSpace) NewSampler(seed int64) core.Sampler {
	return newWalkSampler(s.g, s.aIndex, 2, s.k, seed)
}

var _ core.Space = (*kpathSpace)(nil)
