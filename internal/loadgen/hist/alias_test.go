package hist

import (
	"testing"
	"time"

	obshist "saphyra/internal/obs/hist"
)

// TestAliasIdentity is the compile-level half of the promotion contract:
// the re-exported names are type aliases, not wrappers, so a *Histogram
// from either import path is the same type and loadgen's behavior is
// byte-identical to before the move. Cross-package assignments below fail
// to compile if an alias silently becomes a distinct type.
func TestAliasIdentity(t *testing.T) {
	var h Histogram
	var oh *obshist.Histogram = &h // compile-level: alias, not a new type
	h.Observe(42 * time.Microsecond)
	if oh.Count() != 1 || oh.Sum() != int64(42*time.Microsecond) {
		t.Fatal("observation through the alias not visible through obs/hist")
	}

	var r Recorder
	var or *obshist.Recorder = &r
	r.Observe(OK, time.Millisecond)
	if or.Count(obshist.OK) != 1 {
		t.Fatal("Recorder alias diverged")
	}

	var o Outcome = Shed
	if o != obshist.Shed {
		t.Fatal("outcome constants diverged")
	}
	if RelativeError() != obshist.RelativeError() {
		t.Fatal("RelativeError diverged")
	}
	a, b := Outcomes(), obshist.Outcomes()
	if len(a) != len(b) {
		t.Fatalf("Outcomes length %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Outcomes[%d]: %v vs %v", i, a[i], b[i])
		}
	}
}
