package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"saphyra"
	"saphyra/internal/faultinject"
)

// doRank posts a rank request with extra headers and returns the raw
// recorder, for tests that need status codes, response headers, or error
// bodies — postRank only models the happy path.
func doRank(t testing.TB, h http.Handler, req RankRequest, hdrs map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	r := httptest.NewRequest("POST", "/v1/rank", bytes.NewReader(body))
	for k, v := range hdrs {
		r.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	return w
}

func decodeRank(t testing.TB, w *httptest.ResponseRecorder) *RankResponse {
	t.Helper()
	var resp RankResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad response body: %v", err)
	}
	return &resp
}

// waitFor polls cond until it holds or the deadline expires.
func waitFor(t testing.TB, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// saturateShared occupies one shared admission slot and parks one waiter in
// the queue, so a server configured MaxInFlight=1 MaxQueue=1 sheds every
// further non-fast-lane arrival. The returned teardown unparks and releases;
// it is idempotent so tests can call it mid-test and still defer it.
func saturateShared(t testing.TB, s *Server) (teardown func()) {
	t.Helper()
	rel, _, err := s.adm.enter(context.Background(), false)
	if err != nil {
		t.Fatal(err)
	}
	wctx, wcancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if r, _, err := s.adm.enter(wctx, false); err == nil {
			r()
		}
	}()
	waitFor(t, 5*time.Second, "parked waiter", func() bool { return s.adm.waitingNow() == 1 })
	var once sync.Once
	return func() {
		once.Do(func() {
			wcancel()
			wg.Wait()
			rel()
		})
	}
}

// TestClientQuota: per-client token buckets are isolated per Client-Id, and
// a drained bucket's 429 carries the exact token-refill time — not a
// constant — as Retry-After.
func TestClientQuota(t *testing.T) {
	g := saphyra.Generate.BarabasiAlbert(300, 3, 21)
	// qps 0.001: refill is negligible within the test, so the third request
	// from one client must see an empty bucket and a ~1000 s refill horizon.
	s, ids := newTestServer(t, g, Config{
		DisablePrecompute: true, ClientQPS: 0.001, ClientBurst: 2,
	})
	req := RankRequest{Method: MethodSaPHyRa, Targets: []int64{ids[5], ids[50]}, Eps: 0.1, Delta: 0.05, Seed: 4}

	for i := 0; i < 2; i++ {
		if w := doRank(t, s.Handler(), req, map[string]string{"Client-Id": "greedy"}); w.Code != http.StatusOK {
			t.Fatalf("greedy request %d: status %d: %s", i, w.Code, w.Body.String())
		}
	}
	w := doRank(t, s.Handler(), req, map[string]string{"Client-Id": "greedy"})
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("drained bucket: status %d, want 429", w.Code)
	}
	ra, err := strconv.Atoi(w.Header().Get("Retry-After"))
	if err != nil {
		t.Fatalf("Retry-After %q not an integer: %v", w.Header().Get("Retry-After"), err)
	}
	// One token at 0.001 tokens/s is 1000 s away; the hint must be the
	// derived refill time, not the old static "1".
	if ra < 900 || ra > 1000 {
		t.Errorf("Retry-After = %d, want ~1000 (exact token-refill derivation)", ra)
	}

	// Another identity is untouched by the greedy client's drain — so is the
	// shared anonymous bucket.
	if w := doRank(t, s.Handler(), req, map[string]string{"Client-Id": "polite"}); w.Code != http.StatusOK {
		t.Errorf("polite client: status %d (quota must be per-client)", w.Code)
	}
	if w := doRank(t, s.Handler(), req, nil); w.Code != http.StatusOK {
		t.Errorf("anonymous client: status %d", w.Code)
	}
	if got := s.m.quotaDenied.Value(); got != 1 {
		t.Errorf("quotaDenied = %d, want 1", got)
	}
}

// TestRetryAfterDerivation pins the queue-depth-derived Retry-After formula:
// mean compute seconds times the backlog ahead of a new arrival, spread over
// the compute slots, clamped to [1, 60].
func TestRetryAfterDerivation(t *testing.T) {
	g := saphyra.Generate.BarabasiAlbert(300, 3, 21)
	s, _ := newTestServer(t, g, Config{DisablePrecompute: true, MaxInFlight: 2, FastLaneSlots: -1})

	s.observeCompute(5 * time.Second) // first observation seeds the EWMA
	if got := s.retryAfterSeconds(); got != 1 {
		t.Errorf("idle: Retry-After %d, want clamp floor 1", got)
	}

	rel1, _, err := s.adm.enter(context.Background(), false)
	if err != nil {
		t.Fatal(err)
	}
	rel2, _, err := s.adm.enter(context.Background(), false)
	if err != nil {
		t.Fatal(err)
	}
	// backlog 2 (both slots busy), 5 s mean, 2 slots -> 5 s.
	if got := s.retryAfterSeconds(); got != 5 {
		t.Errorf("2 in flight: Retry-After %d, want 5", got)
	}
	s.adm.waiting.Add(3) // simulate 3 parked computations
	// backlog 5 -> ceil(5*5/2) = 13.
	if got := s.retryAfterSeconds(); got != 13 {
		t.Errorf("deep queue: Retry-After %d, want 13", got)
	}
	s.observeCompute(10 * time.Minute) // pathological compute time
	if got := s.retryAfterSeconds(); got != 60 {
		t.Errorf("pathological EWMA: Retry-After %d, want clamp ceiling 60", got)
	}
	s.adm.waiting.Add(-3)
	rel1()
	rel2()
}

// TestShedRetryAfterFromLiveState: a shed request's Retry-After header is
// computed from the live queue depth and the compute-time EWMA at shed time.
func TestShedRetryAfterFromLiveState(t *testing.T) {
	g := saphyra.Generate.BarabasiAlbert(300, 3, 21)
	s, ids := newTestServer(t, g, Config{
		DisablePrecompute: true, MaxInFlight: 1, MaxQueue: 1, FastLaneSlots: -1,
	})
	s.observeCompute(5 * time.Second)

	// Occupy the only slot and park one waiter so the queue is full; no
	// compute ever runs, so the EWMA stays exactly 5 s.
	rel, _, err := s.adm.enter(context.Background(), false)
	if err != nil {
		t.Fatal(err)
	}
	wctx, wcancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if r, _, err := s.adm.enter(wctx, false); err == nil {
			r()
		}
	}()
	waitFor(t, 5*time.Second, "parked waiter", func() bool { return s.adm.waitingNow() == 1 })

	req := RankRequest{Method: MethodSaPHyRa, Targets: []int64{ids[5], ids[50]}, Eps: 0.1, Delta: 0.05, Seed: 99}
	w := doRank(t, s.Handler(), req, nil)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", w.Code, w.Body.String())
	}
	// backlog = 1 waiting + 1 in flight, EWMA 5 s, 1 slot -> 10 s.
	if got := w.Header().Get("Retry-After"); got != "10" {
		t.Errorf("Retry-After = %q, want %q (derived from queue depth, not static)", got, "10")
	}

	wcancel()
	wg.Wait()
	rel()
}

// TestFastLaneBoundsTinyLatency is the overload acceptance criterion: with
// every shared compute slot saturated by slow full-network jobs, tiny
// queries still complete promptly through the reserved fast lane.
func TestFastLaneBoundsTinyLatency(t *testing.T) {
	defer faultinject.Reset()
	g := saphyra.Generate.BarabasiAlbert(300, 3, 21)
	// FastLaneCost 300 puts the whole-network job (mass 2m+n ~ 2100, times
	// 0.25 for eps 0.1 -> cost ~ 520) above the tiny threshold and a
	// two-target request (cost ~ single digits) below.
	s, ids := newTestServer(t, g, Config{
		DisablePrecompute: true, MaxInFlight: 2, MaxQueue: 4,
		FastLaneSlots: 1, FastLaneCost: 300,
		DefaultEpsilon: 0.1, DefaultDelta: 0.05,
	})
	lv := s.cur.Load()
	full, err := s.buildQuery(lv, MethodSaPHyRa, nil, 0, 0, 0, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if c := queryCost(lv, full); c <= s.cfg.FastLaneCost {
		t.Fatalf("precondition: full-network cost %.0f must exceed FastLaneCost %.0f", c, s.cfg.FastLaneCost)
	}
	tinyReq := RankRequest{Method: MethodSaPHyRa, Targets: []int64{ids[200], ids[250]}, Eps: 0.1, Delta: 0.05, Seed: 4}
	tq, err := s.buildQuery(lv, tinyReq.Method, tinyReq.Targets, tinyReq.Eps, tinyReq.Delta, 0, tinyReq.Seed, false)
	if err != nil {
		t.Fatal(err)
	}
	if c := queryCost(lv, tq); c > s.cfg.FastLaneCost {
		t.Fatalf("precondition: tiny cost %.0f must be below FastLaneCost %.0f", c, s.cfg.FastLaneCost)
	}

	// Full-network jobs sleep 2.5 s inside their admission slot.
	faultinject.Set("serve.compute.full", faultinject.Fault{Delay: 2500 * time.Millisecond})
	faultinject.Enable()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := httptest.NewRecorder()
			s.Handler().ServeHTTP(w, httptest.NewRequest("GET",
				"/v1/topk?method=saphyra&k=5&seed="+strconv.Itoa(101+i), nil))
			if w.Code != http.StatusOK {
				t.Errorf("full job %d: status %d: %s", i, w.Code, w.Body.String())
			}
		}(i)
	}
	waitFor(t, 5*time.Second, "both shared slots saturated", func() bool { return s.adm.inFlight() >= 2 })

	// Tiny cache misses must ride the fast lane while the shared pool stays
	// saturated for the whole 2.5 s window.
	for i := 0; i < 4; i++ {
		req := tinyReq
		req.Seed = int64(200 + i) // distinct seeds: misses, not cache hits
		begin := time.Now()
		w := doRank(t, s.Handler(), req, nil)
		took := time.Since(begin)
		if w.Code != http.StatusOK {
			t.Fatalf("tiny request %d: status %d: %s", i, w.Code, w.Body.String())
		}
		if took > time.Second {
			t.Errorf("tiny request %d took %v with the shared pool saturated, want << 1 s", i, took)
		}
	}
	if s.adm.inFlight() < 2 {
		t.Error("full-network jobs finished before the tiny requests: the test did not exercise saturation")
	}
	if got := s.adm.fastAdmits(); got != 4 {
		t.Errorf("fast-lane admits = %d, want 4", got)
	}
	wg.Wait()
}

// TestDegradeStaleRung: an overloaded request that opted in via Degrade-Ms
// is answered from the last retired generation's cache — flagged, with the
// served generation reported, bitwise-identical to what that generation
// answered when it was current.
func TestDegradeStaleRung(t *testing.T) {
	g := saphyra.Generate.BarabasiAlbert(300, 3, 21)
	s, ids := newTestServer(t, g, Config{
		DisablePrecompute: true, MaxInFlight: 1, MaxQueue: 1, FastLaneSlots: -1,
	})
	req := RankRequest{Method: MethodSaPHyRa, Targets: []int64{ids[5], ids[50], ids[150]}, Eps: 0.1, Delta: 0.05, Seed: 4}
	fresh := decodeRank(t, doRank(t, s.Handler(), req, nil))
	if fresh.Generation != 1 || fresh.Degraded {
		t.Fatalf("warmup response: gen %d degraded %v", fresh.Generation, fresh.Degraded)
	}

	if _, err := s.Reload(); err != nil { // purge moves gen-1 entries to the stale store
		t.Fatal(err)
	}

	defer saturateShared(t, s)()

	// No opt-in: overload sheds as before.
	if w := doRank(t, s.Handler(), req, nil); w.Code != http.StatusTooManyRequests {
		t.Fatalf("without Degrade-Ms: status %d, want 429", w.Code)
	}
	// Opt-in: the stale rung answers, free of admission and compute.
	w := doRank(t, s.Handler(), req, map[string]string{"Degrade-Ms": "5000"})
	if w.Code != http.StatusOK {
		t.Fatalf("degraded request: status %d: %s", w.Code, w.Body.String())
	}
	resp := decodeRank(t, w)
	if !resp.Degraded {
		t.Error("response not flagged degraded")
	}
	if resp.Generation != 1 {
		t.Errorf("degraded generation = %d, want retired generation 1", resp.Generation)
	}
	if len(resp.Scores) != len(fresh.Scores) {
		t.Fatalf("%d scores, want %d", len(resp.Scores), len(fresh.Scores))
	}
	for i := range fresh.Scores {
		if resp.Scores[i] != fresh.Scores[i] || resp.Nodes[i] != fresh.Nodes[i] || resp.Ranks[i] != fresh.Ranks[i] {
			t.Fatalf("stale row %d differs from the generation-1 answer", i)
		}
	}
	if got := s.m.staleServed.Value(); got != 1 {
		t.Errorf("staleServed = %d, want 1", got)
	}
}

// TestDegradeCoarseRung: with no stale answer available, the ladder
// recomputes at a coarsened epsilon — a distinct query with its own cache
// key, so the degraded result is itself deterministic and reusable.
func TestDegradeCoarseRung(t *testing.T) {
	g := saphyra.Generate.BarabasiAlbert(300, 3, 21)
	s, ids := newTestServer(t, g, Config{
		DisablePrecompute: true, MaxInFlight: 1, MaxQueue: 1,
		FastLaneSlots: 1, FastLaneCost: 100, DisableStale: true,
	})
	lv := s.cur.Load()
	req := RankRequest{Method: MethodSaPHyRa, Targets: []int64{ids[200], ids[250]}, Eps: 0.01, Delta: 0.05, Seed: 4}
	q, err := s.buildQuery(lv, req.Method, req.Targets, req.Eps, req.Delta, 0, req.Seed, false)
	if err != nil {
		t.Fatal(err)
	}
	wantEps := math.Min(req.Eps*s.cfg.DegradeEpsFactor, s.cfg.DegradeMaxEps)
	// The exact query must be too expensive for the fast lane (it has to
	// shed) while its coarsened form is tiny (so the degraded recompute can
	// be admitted through the lane even though the shared pool is full).
	if c := queryCost(lv, q); c <= s.cfg.FastLaneCost {
		t.Fatalf("precondition: exact cost %.0f must exceed FastLaneCost %.0f", c, s.cfg.FastLaneCost)
	}
	cq := q
	cq.Epsilon = wantEps
	if c := queryCost(lv, cq.Canonical()); c > s.cfg.FastLaneCost {
		t.Fatalf("precondition: coarse cost %.0f must be below FastLaneCost %.0f", c, s.cfg.FastLaneCost)
	}

	unsaturate := saturateShared(t, s)
	defer unsaturate()

	w := doRank(t, s.Handler(), req, map[string]string{"Degrade-Ms": "10000"})
	if w.Code != http.StatusOK {
		t.Fatalf("degraded request: status %d: %s", w.Code, w.Body.String())
	}
	resp := decodeRank(t, w)
	if !resp.Degraded {
		t.Error("response not flagged degraded")
	}
	if resp.Eps != wantEps {
		t.Errorf("degraded eps = %v, want achieved coarse eps %v", resp.Eps, wantEps)
	}
	if resp.Generation != 1 {
		t.Errorf("degraded generation = %d, want current generation 1", resp.Generation)
	}
	if got := s.m.degraded.Value(); got != 1 {
		t.Errorf("degraded counter = %d, want 1", got)
	}

	// The coarse result was cached under its own key: asking for that
	// epsilon directly is a hit with identical bits — the ladder never made
	// one key map to two payloads.
	unsaturate()
	direct := req
	direct.Eps = wantEps
	dresp := decodeRank(t, doRank(t, s.Handler(), direct, nil))
	if !dresp.Cached {
		t.Error("direct coarse-eps request missed the cache; the degraded compute should have populated it")
	}
	if dresp.Degraded {
		t.Error("direct coarse-eps request flagged degraded")
	}
	for i := range resp.Scores {
		if dresp.Scores[i] != resp.Scores[i] {
			t.Fatalf("coarse score[%d] differs between degraded and direct serving", i)
		}
	}
}

// TestDegradePolicyDefault: DefaultDegradeMs opts requests into the ladder
// without any client header — the operator-side policy knob.
func TestDegradePolicyDefault(t *testing.T) {
	g := saphyra.Generate.BarabasiAlbert(300, 3, 21)
	s, ids := newTestServer(t, g, Config{
		DisablePrecompute: true, MaxInFlight: 1, MaxQueue: 1,
		FastLaneSlots: 1, FastLaneCost: 100, DisableStale: true,
		DefaultDegradeMs: 5000,
	})
	defer saturateShared(t, s)()

	req := RankRequest{Method: MethodSaPHyRa, Targets: []int64{ids[200], ids[250]}, Eps: 0.01, Delta: 0.05, Seed: 4}
	w := doRank(t, s.Handler(), req, nil) // no Degrade-Ms header
	if w.Code != http.StatusOK {
		t.Fatalf("status %d, want policy-degraded 200: %s", w.Code, w.Body.String())
	}
	if resp := decodeRank(t, w); !resp.Degraded {
		t.Error("response not flagged degraded under DefaultDegradeMs policy")
	}
}

// TestRetryAfterMonotoneInBacklog sweeps the backlog depth and asserts the
// derived Retry-After is non-decreasing in it and clamped to [1, 60] at
// every point: a deeper queue may never promise a sooner retry, and no
// queue state may park a client for minutes or return a zero hint.
func TestRetryAfterMonotoneInBacklog(t *testing.T) {
	g := saphyra.Generate.BarabasiAlbert(300, 3, 21)
	s, _ := newTestServer(t, g, Config{DisablePrecompute: true, MaxInFlight: 2, FastLaneSlots: -1})
	// A mid-range EWMA so the sweep crosses both clamps: floor at depth 0,
	// ceiling well before the deepest simulated queue.
	s.observeCompute(800 * time.Millisecond)

	prev := 0
	for depth := 0; depth <= 400; depth++ {
		got := s.retryAfterSeconds()
		if got < 1 || got > 60 {
			t.Fatalf("depth %d: Retry-After %d outside [1, 60]", depth, got)
		}
		if got < prev {
			t.Fatalf("depth %d: Retry-After %d < %d at depth %d: not monotone in backlog", depth, got, prev, depth-1)
		}
		prev = got
		s.adm.waiting.Add(1)
	}
	if prev != 60 {
		t.Errorf("deepest queue: Retry-After %d, want ceiling 60", prev)
	}
	s.adm.waiting.Add(-401)
	if got := s.retryAfterSeconds(); got != 1 {
		t.Errorf("drained queue: Retry-After %d, want floor 1", got)
	}
}

// TestQuotaRefillHorizonExact drives the token bucket with an injected
// clock and binary-fraction rates, so the refill arithmetic is exact in
// float64: the denial's retryIn must equal (1 - tokens)/qps to the
// nanosecond, and advancing the clock by exactly that horizon must yield a
// token — no off-by-one second, no slack.
func TestQuotaRefillHorizonExact(t *testing.T) {
	now := time.Unix(1000, 0)
	q := newQuotas(0.5, 1) // one token per 2 s, capacity 1
	q.now = func() time.Time { return now }

	if ok, _ := q.take("c"); !ok {
		t.Fatal("fresh bucket denied")
	}
	ok, retryIn := q.take("c")
	if ok {
		t.Fatal("drained bucket admitted")
	}
	if want := 2 * time.Second; retryIn != want {
		t.Fatalf("empty bucket: retryIn %v, want exactly %v", retryIn, want)
	}

	// Half a token back: the horizon shrinks to exactly the remainder.
	now = now.Add(time.Second)
	if ok, retryIn = q.take("c"); ok {
		t.Fatal("half-refilled bucket admitted")
	}
	if want := time.Second; retryIn != want {
		t.Fatalf("half token: retryIn %v, want exactly %v", retryIn, want)
	}

	// Advancing by exactly the stated horizon yields exactly one token.
	now = now.Add(retryIn)
	if ok, _ = q.take("c"); !ok {
		t.Fatal("token not available after the promised refill horizon")
	}
	if ok, retryIn = q.take("c"); ok {
		t.Fatal("bucket should be empty again")
	} else if want := 2 * time.Second; retryIn != want {
		t.Fatalf("re-drained: retryIn %v, want %v", retryIn, want)
	}

	// Burst capacity caps the refill: a long idle stretch still admits only
	// burst tokens, and the post-drain horizon is unchanged.
	now = now.Add(time.Hour)
	if ok, _ = q.take("c"); !ok {
		t.Fatal("post-idle bucket denied")
	}
	if ok, retryIn = q.take("c"); ok {
		t.Fatal("burst cap exceeded: more than burst tokens after idle")
	} else if want := 2 * time.Second; retryIn != want {
		t.Fatalf("post-idle drain: retryIn %v, want %v", retryIn, want)
	}
}
