package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"saphyra"
	"saphyra/internal/obs"
)

func metricsBody(t *testing.T, s *Server) string {
	t.Helper()
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest("GET", "/metricsz", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("metricsz = %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	return w.Body.String()
}

var metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// TestMetricszExpositionLint is the satellite acceptance test: the full
// /metricsz body must be valid Prometheus text exposition. Every sample
// belongs to a family with a HELP and TYPE header, names are legal,
// counters end in _total, histogram bucket cumulatives are monotone in le,
// and the +Inf bucket equals _count exactly for every series.
func TestMetricszExpositionLint(t *testing.T) {
	g := saphyra.Generate.BarabasiAlbert(300, 3, 5)
	s, ids := newTestServer(t, g, Config{DisablePrecompute: true})
	// Touch a few paths so histograms and counters hold real samples.
	for i := 0; i < 3; i++ {
		if _, code := postRank(t, s.Handler(), RankRequest{
			Method: MethodSaPHyRa, Targets: []int64{ids[1], ids[2]},
			Eps: 0.2, Delta: 0.1, Seed: 7,
		}); code != http.StatusOK {
			t.Fatalf("rank = %d", code)
		}
	}
	body := metricsBody(t, s)

	help := map[string]bool{}
	typ := map[string]string{}
	type bucketSeries struct {
		lastLe  float64
		lastCum int64
		inf     int64
		hasInf  bool
	}
	buckets := map[string]*bucketSeries{} // family + non-le labels
	counts := map[string]int64{}          // _count samples by family + labels
	seen := map[string]bool{}             // duplicate sample detection

	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			f := strings.Fields(line)
			if len(f) < 4 {
				t.Errorf("HELP without text: %q", line)
			}
			help[f[2]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("malformed TYPE: %q", line)
			}
			if !help[f[2]] {
				t.Errorf("TYPE before HELP for %s", f[2])
			}
			if _, dup := typ[f[2]]; dup {
				t.Errorf("family %s declared twice", f[2])
			}
			typ[f[2]] = f[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Errorf("unknown comment line: %q", line)
			continue
		}

		// Sample line: name{labels} value | name value
		nameEnd := strings.IndexAny(line, "{ ")
		if nameEnd < 0 {
			t.Fatalf("malformed sample: %q", line)
		}
		name := line[:nameEnd]
		if !metricNameRe.MatchString(name) {
			t.Errorf("illegal metric name %q", name)
		}
		labels := ""
		rest := line[nameEnd:]
		if rest[0] == '{' {
			close := strings.Index(rest, "}")
			if close < 0 {
				t.Fatalf("unclosed labels: %q", line)
			}
			labels = rest[1:close]
			rest = rest[close+1:]
		}
		valStr := strings.TrimSpace(rest)
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		if seen[name+"{"+labels+"}"] {
			t.Errorf("duplicate sample %s{%s}", name, labels)
		}
		seen[name+"{"+labels+"}"] = true

		// Resolve the family the sample belongs to.
		fam, suffix := name, ""
		if typ[fam] == "" {
			for _, sfx := range []string{"_bucket", "_sum", "_count"} {
				if base := strings.TrimSuffix(name, sfx); base != name && typ[base] == "histogram" {
					fam, suffix = base, sfx
					break
				}
			}
		}
		ft := typ[fam]
		if ft == "" {
			t.Errorf("sample %q belongs to no declared family", line)
			continue
		}
		if ft == "counter" {
			if !strings.HasSuffix(fam, "_total") {
				t.Errorf("counter %s does not end in _total", fam)
			}
			if val < 0 {
				t.Errorf("counter %s negative: %v", name, val)
			}
		}
		if ft == "histogram" {
			if suffix == "" {
				t.Errorf("bare sample %q inside histogram family %s", line, fam)
				continue
			}
			nonLe := make([]string, 0, 4)
			le := ""
			for _, p := range strings.Split(labels, ",") {
				if strings.HasPrefix(p, `le="`) {
					le = strings.TrimSuffix(strings.TrimPrefix(p, `le="`), `"`)
				} else if p != "" {
					nonLe = append(nonLe, p)
				}
			}
			key := fam + "{" + strings.Join(nonLe, ",") + "}"
			switch suffix {
			case "_bucket":
				bs := buckets[key]
				if bs == nil {
					bs = &bucketSeries{lastLe: -1}
					buckets[key] = bs
				}
				cum := int64(val)
				if le == "+Inf" {
					bs.inf, bs.hasInf = cum, true
				} else {
					ub, err := strconv.ParseFloat(le, 64)
					if err != nil {
						t.Fatalf("bad le in %q: %v", line, err)
					}
					if ub <= bs.lastLe {
						t.Errorf("%s: le %v not increasing after %v", key, ub, bs.lastLe)
					}
					if cum < bs.lastCum {
						t.Errorf("%s: cumulative decreased at le=%v: %d < %d", key, ub, cum, bs.lastCum)
					}
					if bs.hasInf {
						t.Errorf("%s: finite bucket after +Inf", key)
					}
					bs.lastLe, bs.lastCum = ub, cum
				}
			case "_count":
				counts[key] = int64(val)
			}
		}
	}

	for key, bs := range buckets {
		if !bs.hasInf {
			t.Errorf("%s: no +Inf bucket", key)
			continue
		}
		cnt, ok := counts[key]
		if !ok {
			t.Errorf("%s: no _count sample", key)
			continue
		}
		if bs.inf != cnt {
			t.Errorf("%s: +Inf bucket %d != _count %d", key, bs.inf, cnt)
		}
		if bs.lastCum > bs.inf {
			t.Errorf("%s: last finite bucket %d exceeds +Inf %d", key, bs.lastCum, bs.inf)
		}
	}
	if len(buckets) == 0 {
		t.Error("no histogram series rendered")
	}

	// The satellites' specific series must be present.
	for _, want := range []string{
		"saphyra_retry_after_seconds ",
		"saphyra_waiting_computations ",
		"saphyra_inflight_computations ",
		`saphyra_request_seconds_bucket{outcome="ok",le="+Inf"}`,
		`saphyra_query_cost_bucket{method="saphyra",le="+Inf"}`,
		"saphyra_flight_fanin_requests_count ",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestHealthzReadyzSplit pins the liveness/readiness split: /healthz
// answers 200 for a live process, /readyz answers 200 once a generation
// serves, and a failed reload — old generation still serving — keeps
// readiness green.
func TestHealthzReadyzSplit(t *testing.T) {
	g := saphyra.Generate.BarabasiAlbert(200, 3, 5)
	s, _ := newTestServer(t, g, Config{DisablePrecompute: true})
	h := s.Handler()

	get := func(path string) *httptest.ResponseRecorder {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest("GET", path, nil))
		return w
	}
	if w := get("/healthz"); w.Code != http.StatusOK {
		t.Fatalf("healthz = %d", w.Code)
	}
	if w := get("/readyz"); w.Code != http.StatusOK || !strings.Contains(w.Body.String(), "ready") {
		t.Fatalf("readyz = %d %q", w.Code, w.Body.String())
	}

	// Break the view file; the reload fails, the old generation keeps
	// serving, and both probes stay green — a failed reload must not tell
	// the orchestrator to pull the instance out of rotation.
	if err := os.Rename(s.viewPath, s.viewPath+".gone"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Reload(); err == nil {
		t.Fatal("reload of a missing view succeeded")
	}
	if w := get("/healthz"); w.Code != http.StatusOK {
		t.Errorf("healthz after failed reload = %d", w.Code)
	}
	if w := get("/readyz"); w.Code != http.StatusOK {
		t.Errorf("readyz after failed reload = %d", w.Code)
	}
}

// TestSlowQueryLog is the tentpole acceptance test: with the slow-query
// log armed at a threshold every compute crosses, one slow request writes
// one structured JSON line whose span tree accounts for >= 90% of the
// request's wall time.
func TestSlowQueryLog(t *testing.T) {
	g := saphyra.Generate.BarabasiAlbert(400, 3, 5)
	var buf bytes.Buffer
	path, ids := writeTestView(t, g)
	s, err := New(path, Config{
		DisablePrecompute:  true,
		SlowQueryThreshold: time.Nanosecond, // every request is "slow"
		SlowQueryLog:       &buf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if _, code := postRank(t, s.Handler(), RankRequest{
		Method: MethodSaPHyRa, Targets: []int64{ids[1], ids[7], ids[20]},
		Eps: 0.1, Delta: 0.1, Seed: 3,
	}); code != http.StatusOK {
		t.Fatalf("rank = %d", code)
	}

	line := strings.TrimSpace(buf.String())
	if line == "" {
		t.Fatal("no slow-query entry written")
	}
	if n := strings.Count(buf.String(), "\n"); n != 1 {
		t.Fatalf("%d entries, want 1:\n%s", n, buf.String())
	}
	var e struct {
		Endpoint   string         `json:"endpoint"`
		Outcome    string         `json:"outcome"`
		DurationMs float64        `json:"duration_ms"`
		Generation uint64         `json:"generation"`
		QueryKey   string         `json:"query_key"`
		Trace      *obs.TraceJSON `json:"trace"`
	}
	if err := json.Unmarshal([]byte(line), &e); err != nil {
		t.Fatalf("entry is not valid JSON: %v\n%s", err, line)
	}
	if e.Endpoint != "rank" || e.Outcome != "ok" {
		t.Errorf("endpoint=%q outcome=%q", e.Endpoint, e.Outcome)
	}
	if e.Generation != 1 {
		t.Errorf("generation = %d", e.Generation)
	}
	if len(e.QueryKey) != 64 {
		t.Errorf("query_key = %q, want 64 hex chars", e.QueryKey)
	}
	if e.Trace == nil || len(e.Trace.Spans) == 0 {
		t.Fatal("entry has no span tree")
	}

	// The span tree must account for >= 90% of the request's wall time.
	var topUs float64
	names := map[string]bool{}
	var walk func(sp *obs.SpanJSON)
	walk = func(sp *obs.SpanJSON) {
		names[sp.Name] = true
		for _, c := range sp.Children {
			walk(c)
		}
	}
	for _, sp := range e.Trace.Spans {
		topUs += sp.DurUs
		walk(sp)
	}
	if cover := topUs / (e.DurationMs * 1e3); cover < 0.90 {
		t.Errorf("span tree covers %.0f%% of %.2fms wall time, want >= 90%%", 100*cover, e.DurationMs)
	}
	for _, want := range []string{"request", "cache", "flight", "compute", "rank", "core.exact", "core.pilot"} {
		if !names[want] {
			t.Errorf("span %q missing from the slow-query tree (have %v)", want, names)
		}
	}
}

// TestTraceEnvelope pins the ?trace=1 debug mode: the response carries the
// span breakdown, scores stay bitwise-identical to the untraced response,
// and an untraced response has no trace key at all (the serialized
// envelope is byte-compatible with pre-telemetry clients).
func TestTraceEnvelope(t *testing.T) {
	g := saphyra.Generate.BarabasiAlbert(300, 3, 5)
	s, ids := newTestServer(t, g, Config{DisablePrecompute: true})
	body, err := json.Marshal(RankRequest{
		Method: MethodSaPHyRa, Targets: []int64{ids[3], ids[9]},
		Eps: 0.1, Delta: 0.1, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	post := func(path string, hdr map[string]string) *httptest.ResponseRecorder {
		w := httptest.NewRecorder()
		req := httptest.NewRequest("POST", path, bytes.NewReader(body))
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		s.Handler().ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			t.Fatalf("%s = %d: %s", path, w.Code, w.Body.String())
		}
		return w
	}

	post("/v1/rank", nil) // warm: every request below is a cache hit
	plain := post("/v1/rank", nil)
	if strings.Contains(plain.Body.String(), `"trace"`) {
		t.Error("untraced response leaked a trace key")
	}

	traced := post("/v1/rank?trace=1", nil)
	var resp RankResponse
	if err := json.Unmarshal(traced.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Trace == nil || len(resp.Trace.Spans) == 0 {
		t.Fatal("?trace=1 returned no span tree")
	}
	if resp.Trace.Spans[0].Name != "request" {
		t.Errorf("root span = %q", resp.Trace.Spans[0].Name)
	}

	// The traced envelope minus its trace must equal the untraced one:
	// tracing can never perturb the payload.
	var plainResp RankResponse
	if err := json.Unmarshal(plain.Body.Bytes(), &plainResp); err != nil {
		t.Fatal(err)
	}
	resp.Trace = nil
	a, _ := json.Marshal(&resp)
	b, _ := json.Marshal(&plainResp)
	if !bytes.Equal(a, b) {
		t.Errorf("traced response payload diverged:\n%s\n%s", a, b)
	}

	// A Trace-Id header arms debug mode too and echoes the id back.
	hdr := post("/v1/rank", map[string]string{"Trace-Id": "req-42"})
	var hresp RankResponse
	if err := json.Unmarshal(hdr.Body.Bytes(), &hresp); err != nil {
		t.Fatal(err)
	}
	if hresp.Trace == nil || hresp.Trace.ID != "req-42" {
		t.Fatalf("Trace-Id not honored: %+v", hresp.Trace)
	}
}
