// Subnetwork: the paper's motivating warning made concrete. A common
// practice for ranking nodes of a region is to cut the region out of the
// network and analyze it in isolation; the paper's intro points out this
// "risks inaccurate assessment of nodes' centrality in the complete
// network". This example quantifies that: it ranks a road-network area
//
//	(a) by exact betweenness computed inside the cut-out subgraph, and
//	(b) by SaPHyRa against the full network,
//
// and scores both against the exact full-network ranking. The cut-out is
// exact arithmetic — and still ranks worse than SaPHyRa's sampling,
// because through-traffic does not stop at the region boundary.
package main

import (
	"context"
	"fmt"
	"log"

	"saphyra"
	"saphyra/internal/datasets"
	"saphyra/internal/exact"
	"saphyra/internal/graph"
)

func main() {
	const scale = 0.15
	side := datasets.RoadSide(scale)
	g := datasets.USARoad.Build(scale)
	fmt.Printf("road network: %d nodes, %d edges (grid side %d)\n",
		g.NumNodes(), g.NumEdges(), side)

	truth := exact.BCParallel(g, 0)
	ranker := saphyra.NewRanker(g)
	ranker.Prepare(saphyra.Betweenness) // decompose once, rank many areas

	fmt.Println("\narea\tcut-out exact rho\tsaphyra (full-network) rho")
	for _, area := range datasets.Areas(side) {
		// ground truth for the area, from the full network
		truthA := make([]float64, len(area.Nodes))
		ids := make([]int32, len(area.Nodes))
		for i, v := range area.Nodes {
			truthA[i] = truth[v]
			ids[i] = int32(v)
		}

		// (a) the cut-out: induced subgraph, exact Brandes inside it
		sub, subIDs := graph.Subgraph(g, area.Nodes)
		subBC := exact.BCParallel(sub, 0)
		cutout := make([]float64, len(area.Nodes))
		pos := make(map[graph.Node]int, len(subIDs))
		for i, old := range subIDs {
			pos[old] = i
		}
		for i, v := range area.Nodes {
			cutout[i] = subBC[pos[v]]
		}
		rhoCut := saphyra.Spearman(truthA, cutout, ids)

		// (b) SaPHyRa against the complete network
		res, err := ranker.Rank(context.Background(), saphyra.Query{
			Measure: saphyra.Betweenness, Targets: area.Nodes,
			Epsilon: 0.05, Delta: 0.01, Seed: 7,
		})
		if err != nil {
			log.Fatal(err)
		}
		rhoSaphyra := saphyra.Spearman(truthA, res.Scores, ids)

		fmt.Printf("%s\t%.3f\t%.3f\n", area.Name, rhoCut, rhoSaphyra)
	}
	fmt.Println("\nCutting the area out discards every shortest path that")
	fmt.Println("crosses its boundary, so even EXACT centrality inside the")
	fmt.Println("cut-out misranks the area; SaPHyRa samples the full network")
	fmt.Println("while confining its work to the area's bi-components.")
}
