package closeness

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"saphyra/internal/faultinject"
	"saphyra/internal/graph"
	"saphyra/internal/params"
)

// TestEngineMatchesLegacyBitwise: the MS-BFS engine must reproduce the
// pre-batching scalar estimator bit for bit — same samples, rounds, and
// float closeness values — at every worker count. Sources are drawn in the
// same per-stream RNG order, MS-BFS distance labels equal scalar BFS
// labels, and the accumulator adds run in the same source order, so the
// whole float pipeline is replayed exactly.
func TestEngineMatchesLegacyBitwise(t *testing.T) {
	old := runtime.GOMAXPROCS(8) // let the clamp keep multi-worker runs real
	defer runtime.GOMAXPROCS(old)
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"ba", graph.BarabasiAlbert(400, 3, 6)},
		{"road", graph.RoadNetwork(12, 12, 0.1, 2)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a := []graph.Node{0, 3, 17, 99, 120, 17}
			opt := Options{Epsilon: 0.05, Delta: 0.05, Seed: 9}
			want, err := estimateLegacy(context.Background(), tc.g, a, opt)
			if err != nil {
				t.Fatal(err)
			}
			eng := NewEngine(tc.g)
			for _, workers := range []int{1, 2, 8} {
				opt.Workers = workers
				got, err := eng.Estimate(context.Background(), a, opt)
				if err != nil {
					t.Fatal(err)
				}
				if got.Samples != want.Samples || got.Rounds != want.Rounds || got.StoppedEarly != want.StoppedEarly {
					t.Fatalf("workers=%d: samples/rounds/early %d/%d/%v != %d/%d/%v", workers,
						got.Samples, got.Rounds, got.StoppedEarly, want.Samples, want.Rounds, want.StoppedEarly)
				}
				if len(got.Nodes) != len(want.Nodes) {
					t.Fatalf("workers=%d: %d nodes != %d", workers, len(got.Nodes), len(want.Nodes))
				}
				for i := range want.Closeness {
					if got.Nodes[i] != want.Nodes[i] || got.Closeness[i] != want.Closeness[i] {
						t.Fatalf("workers=%d: target %d: (%d, %v) != (%d, %v)", workers, i,
							got.Nodes[i], got.Closeness[i], want.Nodes[i], want.Closeness[i])
					}
				}
			}
		})
	}
}

// TestEnginePoolReuse: pooled workspaces must not leak state across calls —
// repeat calls, interleaved different-target calls, and reuse of one Result
// all reproduce the first answer bit for bit.
func TestEnginePoolReuse(t *testing.T) {
	g := graph.BarabasiAlbert(300, 3, 8)
	eng := NewEngine(g)
	a := []graph.Node{1, 5, 42, 250}
	opt := Options{Epsilon: 0.05, Delta: 0.05, Seed: 4, Workers: 2}

	var ref, res Result
	if err := eng.EstimateInto(context.Background(), a, opt, &ref); err != nil {
		t.Fatal(err)
	}
	// Different target set, different seed: pollutes the pooled streams.
	if err := eng.EstimateInto(context.Background(), []graph.Node{0, 7, 9}, Options{Epsilon: 0.1, Delta: 0.1, Seed: 99}, &res); err != nil {
		t.Fatal(err)
	}
	for call := 0; call < 2; call++ {
		if err := eng.EstimateInto(context.Background(), a, opt, &res); err != nil {
			t.Fatal(err)
		}
		if res.Samples != ref.Samples || res.Rounds != ref.Rounds {
			t.Fatalf("call %d: samples/rounds drifted", call)
		}
		for i := range ref.Closeness {
			if res.Closeness[i] != ref.Closeness[i] {
				t.Fatalf("call %d: Closeness[%d] = %v, want %v", call, i, res.Closeness[i], ref.Closeness[i])
			}
		}
	}
}

// TestEngineFaultedCallDoesNotPoisonPool: a call killed by an injected
// mid-traversal fault returns a typed error and leaves the engine's pooled
// workspaces clean — the next call reproduces a fresh engine's bits.
func TestEngineFaultedCallDoesNotPoisonPool(t *testing.T) {
	defer faultinject.Reset()
	g := graph.BarabasiAlbert(300, 3, 8)
	eng := NewEngine(g)
	a := []graph.Node{1, 5, 42, 250}
	opt := Options{Epsilon: 0.05, Delta: 0.05, Seed: 4, Workers: 2}

	boom := errors.New("boom")
	faultinject.Enable()
	faultinject.Set("msbfs.run", faultinject.Fault{Err: boom, Times: 1})
	if _, err := eng.Estimate(context.Background(), a, opt); !errors.Is(err, boom) {
		t.Fatalf("faulted call: err = %v, want injected fault", err)
	}
	faultinject.Reset()

	got, err := eng.Estimate(context.Background(), a, opt)
	if err != nil {
		t.Fatal(err)
	}
	want, err := NewEngine(g).Estimate(context.Background(), a, opt)
	if err != nil {
		t.Fatal(err)
	}
	if got.Samples != want.Samples {
		t.Fatalf("samples %d != %d after faulted call", got.Samples, want.Samples)
	}
	for i := range want.Closeness {
		if got.Closeness[i] != want.Closeness[i] {
			t.Fatalf("Closeness[%d] = %v, want %v: pool poisoned by faulted call", i, got.Closeness[i], want.Closeness[i])
		}
	}
}

// TestEngineCancellation: a canceled context yields *params.CanceledError —
// immediately when pre-canceled, and promptly mid-run, where the in-pass
// stop polls bound time-to-cancel below one MS-BFS pass (the msbfs package
// proves the sub-pass bound; here the full estimator path is exercised).
func TestEngineCancellation(t *testing.T) {
	g := graph.RoadNetwork(100, 100, 0, 3)
	eng := NewEngine(g)
	a := []graph.Node{0, 500, 9000}
	// Tight epsilon + huge cap: an uncanceled run would take many seconds.
	opt := Options{Epsilon: 0.005, Delta: 0.01, Seed: 2, Workers: 2, MaxSamples: 1 << 40}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ce *params.CanceledError
	if _, err := eng.Estimate(ctx, a, opt); !errors.As(err, &ce) {
		t.Fatalf("pre-canceled: err = %v, want *params.CanceledError", err)
	}

	ctx, cancel = context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := eng.Estimate(ctx, a, opt)
	elapsed := time.Since(start)
	if !errors.As(err, &ce) {
		t.Fatalf("mid-run: err = %v, want *params.CanceledError", err)
	}
	// Generous bound: a 10k-node road pass is ~hundreds of microseconds per
	// poll stride; seconds would mean the cancel never cut into a pass.
	if elapsed > 5*time.Second {
		t.Fatalf("cancel took %v", elapsed)
	}
}
