package saphyra

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (Section V), plus ablations of the design choices DESIGN.md
// calls out. Each benchmark iteration runs the full experiment pipeline at
// a small scale (environments are built once and cached); custom metrics
// (rho, samples, false-zero fractions) are attached via b.ReportMetric so
// `go test -bench=. -benchmem` prints the figures' quality series next to
// the timing series.
//
// Shapes to look for (not absolute numbers — see EXPERIMENTS.md):
//
//	Fig 3: time(SaPHyRa) < time(SaPHyRa-full) < time(KADABRA) << time(ABRA)
//	Fig 4: rho(SaPHyRa) > rho(baselines)
//	Fig 5: baselines' rho spread widens as subsets shrink
//	Fig 6: false-zeros: SaPHyRa = 0, baselines > 0
//	Fig 7: SaPHyRa beats KADABRA on both time and deviation per area
//	Table I: dim(Riondato) >= dim(SaPHyRa-full) >= dim(SaPHyRa-subset)

import (
	"context"

	"sync"
	"testing"
	"time"

	"saphyra/internal/bicomp"
	"saphyra/internal/core"
	"saphyra/internal/datasets"
	"saphyra/internal/exact"
	"saphyra/internal/graph"
	"saphyra/internal/shortestpath"
	"saphyra/internal/workload"
)

// benchScale keeps every benchmark iteration in the tens-of-milliseconds
// range; raise it (and -benchtime) to approach the paper's regime.
const benchScale = 0.06

var (
	envOnce  sync.Once
	benchEnv map[string]*workload.Env
	roadEnv  *workload.Env
	roadSide int
)

func envs(b *testing.B) map[string]*workload.Env {
	b.Helper()
	envOnce.Do(func() {
		benchEnv = map[string]*workload.Env{}
		for _, net := range []datasets.Network{datasets.Flickr, datasets.LiveJournal, datasets.Orkut} {
			benchEnv[net.Name] = workload.NewEnv(net, benchScale, 0)
		}
		roadSide = datasets.RoadSide(benchScale)
		roadEnv = workload.NewEnv(datasets.USARoad, benchScale, 0)
		benchEnv[datasets.USARoad.Name] = roadEnv
	})
	return benchEnv
}

func benchCfg(eps float64) workload.Config {
	return workload.Config{Epsilon: eps, Delta: 0.01, Seed: 7}
}

// --- Table II -------------------------------------------------------------

// BenchmarkTable2NetworksSummary times building a stand-in network and its
// structural summary (Table II row).
func BenchmarkTable2NetworksSummary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := workload.NewEnvFromGraph("flickr", datasets.Flickr.Build(benchScale), 0)
		_ = workload.Table2(e, datasets.Flickr)
	}
}

// --- Table I ---------------------------------------------------------------

// BenchmarkTable1VCBounds computes the three VC-dimension bounds per
// network and reports them as metrics.
func BenchmarkTable1VCBounds(b *testing.B) {
	es := envs(b)
	e := es[datasets.USARoad.Name] // road: where the bounds differ most
	subset := datasets.RandomSubsets(e.G.NumNodes(), 100, 1, 7)[0]
	var row workload.Table1Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		row = workload.Table1(e, subset, 2)
	}
	b.ReportMetric(float64(row.RiondatoFull), "dim-riondato")
	b.ReportMetric(float64(row.SaPHyRaFull), "dim-full")
	b.ReportMetric(float64(row.SaPHyRaSubset), "dim-subset")
}

// --- Table III --------------------------------------------------------------

// BenchmarkTable3RoadAreas extracts the four coordinate areas.
func BenchmarkTable3RoadAreas(b *testing.B) {
	envs(b)
	var total int
	for i := 0; i < b.N; i++ {
		total = 0
		for _, a := range datasets.Areas(roadSide) {
			total += len(a.Nodes)
		}
	}
	b.ReportMetric(float64(total), "area-nodes")
}

// --- Fig 3: running time vs epsilon ----------------------------------------

func benchFig3(b *testing.B, algo workload.Algo, eps float64) {
	e := envs(b)[datasets.LiveJournal.Name]
	subset := datasets.RandomSubsets(e.G.NumNodes(), 100, 1, 3)[0]
	var rho float64
	var samples int64
	var estTime time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := benchCfg(eps)
		cfg.Seed += int64(i)
		res, err := e.RunOne(algo, subset, cfg)
		if err != nil {
			b.Fatal(err)
		}
		rho += res.Rho
		samples += res.Samples
		estTime += res.Duration
	}
	b.ReportMetric(rho/float64(b.N), "rho")
	b.ReportMetric(float64(samples)/float64(b.N), "samples")
	if estTime > 0 {
		// sampling throughput of the estimation phase alone (excludes the
		// benchmark's scoring overhead): the perf-trajectory headline
		b.ReportMetric(float64(samples)/estTime.Seconds(), "samples/sec")
	}
}

func BenchmarkFig3Time_ABRA_eps05(b *testing.B)        { benchFig3(b, workload.AlgoABRA, 0.05) }
func BenchmarkFig3Time_KADABRA_eps05(b *testing.B)     { benchFig3(b, workload.AlgoKADABRA, 0.05) }
func BenchmarkFig3Time_SaPHyRaFull_eps05(b *testing.B) { benchFig3(b, workload.AlgoSaPHyRaFull, 0.05) }
func BenchmarkFig3Time_SaPHyRa_eps05(b *testing.B)     { benchFig3(b, workload.AlgoSaPHyRa, 0.05) }
func BenchmarkFig3Time_SaPHyRa_eps20(b *testing.B)     { benchFig3(b, workload.AlgoSaPHyRa, 0.2) }
func BenchmarkFig3Time_SaPHyRa_eps01(b *testing.B)     { benchFig3(b, workload.AlgoSaPHyRa, 0.01) }
func BenchmarkFig3Time_KADABRA_eps01(b *testing.B)     { benchFig3(b, workload.AlgoKADABRA, 0.01) }

// --- Fig 4: rank correlation vs epsilon ------------------------------------

// BenchmarkFig4RankCorrelation runs the full epsilon sweep once per
// iteration on the Flickr stand-in and reports the mean rho per algorithm.
func BenchmarkFig4RankCorrelation(b *testing.B) {
	e := envs(b)[datasets.Flickr.Name]
	subsets := datasets.RandomSubsets(e.G.NumNodes(), 100, 2, 5)
	var last []workload.Fig3And4Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := workload.Fig3And4(e, []float64{0.05}, subsets, benchCfg(0))
		if err != nil {
			b.Fatal(err)
		}
		last = rows
	}
	for _, r := range last {
		switch r.Algo {
		case workload.AlgoSaPHyRa:
			b.ReportMetric(r.MeanRho, "rho-saphyra")
		case workload.AlgoKADABRA:
			b.ReportMetric(r.MeanRho, "rho-kadabra")
		case workload.AlgoABRA:
			b.ReportMetric(r.MeanRho, "rho-abra")
		}
	}
}

// --- Fig 5: rank correlation vs subset size --------------------------------

func benchFig5(b *testing.B, size int) {
	e := envs(b)[datasets.Orkut.Name]
	var rows []workload.Fig5Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = workload.Fig5(e, []int{size}, 2, benchCfg(0.05))
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Algo == workload.AlgoSaPHyRa {
			b.ReportMetric(r.MeanRho, "rho-saphyra")
		}
		if r.Algo == workload.AlgoKADABRA {
			b.ReportMetric(r.HiRho-r.LoRho, "kadabra-rho-spread")
		}
	}
}

func BenchmarkFig5SubsetSize10(b *testing.B)  { benchFig5(b, 10) }
func BenchmarkFig5SubsetSize100(b *testing.B) { benchFig5(b, 100) }

// --- Fig 6: signed relative error -------------------------------------------

// BenchmarkFig6RelativeError reports the true-zero and false-zero fractions
// per algorithm (the paper's headline Fig 6 statistic).
func BenchmarkFig6RelativeError(b *testing.B) {
	e := envs(b)[datasets.LiveJournal.Name]
	subsets := datasets.RandomSubsets(e.G.NumNodes(), 100, 2, 9)
	var rows []workload.Fig6Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = workload.Fig6(e, subsets, benchCfg(0.05))
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		switch r.Algo {
		case workload.AlgoSaPHyRa:
			b.ReportMetric(100*r.Summary.FractionFalseZeros(), "falsezero%-saphyra")
		case workload.AlgoKADABRA:
			b.ReportMetric(100*r.Summary.FractionFalseZeros(), "falsezero%-kadabra")
			b.ReportMetric(100*r.Summary.FractionTrueZeros(), "truezero%")
		}
	}
}

// --- Fig 7: USA-road case study ----------------------------------------------

func BenchmarkFig7RoadAreas(b *testing.B) {
	envs(b)
	areas := datasets.Areas(roadSide)
	var rows []workload.Fig7Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = workload.Fig7(roadEnv, areas, benchCfg(0.05))
		if err != nil {
			b.Fatal(err)
		}
	}
	var devSaphyra, devKadabra float64
	for _, r := range rows {
		switch r.Algo {
		case workload.AlgoSaPHyRa:
			devSaphyra += r.Deviation
		case workload.AlgoKADABRA:
			devKadabra += r.Deviation
		}
	}
	b.ReportMetric(100*devSaphyra/4, "deviation%-saphyra")
	b.ReportMetric(100*devKadabra/4, "deviation%-kadabra")
}

// --- Ablations ---------------------------------------------------------------

// BenchmarkAblationExactSubspace measures rank quality with and without the
// 2-hop exact subspace (DESIGN.md ablation: sample-space partitioning).
func benchAblationExact(b *testing.B, disable bool) {
	e := envs(b)[datasets.Flickr.Name]
	subset := datasets.RandomSubsets(e.G.NumNodes(), 100, 1, 11)[0]
	truth := make([]float64, len(subset))
	ids := make([]int32, len(subset))
	for i, v := range subset {
		truth[i] = e.Truth[v]
		ids[i] = int32(v)
	}
	var rho float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := e.Prep.EstimateBC(context.Background(), subset, core.BCOptions{
			Epsilon: 0.05, Delta: 0.01, Seed: int64(i),
			DisableExactSubspace: disable,
		})
		if err != nil {
			b.Fatal(err)
		}
		rho += Spearman(truth, res.BC, ids)
	}
	b.ReportMetric(rho/float64(b.N), "rho")
}

func BenchmarkAblationExactSubspaceOn(b *testing.B)  { benchAblationExact(b, false) }
func BenchmarkAblationExactSubspaceOff(b *testing.B) { benchAblationExact(b, true) }

// BenchmarkAblationAdaptive measures the sample budget with and without
// empirical-Bernstein early stopping.
func benchAblationAdaptive(b *testing.B, disable bool) {
	e := envs(b)[datasets.Orkut.Name]
	subset := datasets.RandomSubsets(e.G.NumNodes(), 100, 1, 13)[0]
	var samples int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := e.Prep.EstimateBC(context.Background(), subset, core.BCOptions{
			Epsilon: 0.05, Delta: 0.01, Seed: 3, DisableAdaptive: disable,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Est != nil {
			samples += res.Est.Samples
		}
	}
	b.ReportMetric(float64(samples)/float64(b.N), "samples")
}

func BenchmarkAblationAdaptiveOn(b *testing.B)  { benchAblationAdaptive(b, false) }
func BenchmarkAblationAdaptiveOff(b *testing.B) { benchAblationAdaptive(b, true) }

// BenchmarkAblationVCBound compares the sample ceilings induced by the three
// VC bounds of Table I on the road network (where diameters diverge).
func benchAblationVC(b *testing.B, kind core.VCBoundKind) {
	envs(b)
	subset := datasets.RandomSubsets(roadEnv.G.NumNodes(), 100, 1, 17)[0]
	var nmax, samples int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := roadEnv.Prep.EstimateBC(context.Background(), subset, core.BCOptions{
			Epsilon: 0.05, Delta: 0.01, Seed: 5, VCBound: kind,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Est != nil {
			nmax = res.Est.NMax
			samples += res.Est.Samples
		}
	}
	b.ReportMetric(float64(nmax), "nmax")
	b.ReportMetric(float64(samples)/float64(b.N), "samples")
}

func BenchmarkAblationVCBoundSubset(b *testing.B)   { benchAblationVC(b, core.VCSubset) }
func BenchmarkAblationVCBoundBicomp(b *testing.B)   { benchAblationVC(b, core.VCBicomp) }
func BenchmarkAblationVCBoundRiondato(b *testing.B) { benchAblationVC(b, core.VCRiondato) }

// --- Substrate micro-benchmarks ----------------------------------------------

func BenchmarkSubstrateBrandesExact(b *testing.B) {
	g := graph.BarabasiAlbert(1000, 3, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = exact.BCParallel(g, 0)
	}
}

func BenchmarkSubstrateDecompose(b *testing.B) {
	g := datasets.Flickr.Build(benchScale)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := bicomp.Decompose(g)
		_ = bicomp.NewOutReach(d)
	}
}

func BenchmarkSubstrateBiBFSQuery(b *testing.B) {
	g := graph.BarabasiAlbert(20000, 4, 2)
	bfs := shortestpath.NewBiBFS(g.NumNodes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := graph.Node(i % g.NumNodes())
		t := graph.Node((i*7919 + 13) % g.NumNodes())
		if s != t {
			bfs.Query(g, s, t)
		}
	}
}

func BenchmarkSubstrateGenBCSample(b *testing.B) {
	e := envs(b)[datasets.LiveJournal.Name]
	subset := datasets.RandomSubsets(e.G.NumNodes(), 100, 1, 19)[0]
	res, err := e.Prep.EstimateBC(context.Background(), subset, core.BCOptions{Epsilon: 0.2, Delta: 0.1, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	_ = res
	b.ResetTimer()
	// measure end-to-end estimation at fixed epsilon as the sampling proxy
	for i := 0; i < b.N; i++ {
		if _, err := e.Prep.EstimateBC(context.Background(), subset, core.BCOptions{Epsilon: 0.1, Delta: 0.1, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRankerQueryOverhead isolates the cost of the unified Query/
// Ranker dispatch layer — Validate + Canonical (target dedup copy) + the
// measure/algorithm switch + Result assembly — against calling the engine
// directly with cached preprocessing. Both paths run the identical tiny
// estimation (loose eps on a small subset), so the delta between the two
// series IS the API overhead; the cancellation checkpoints the context
// plumbing added must be invisible here and in BenchmarkSamplerDraw /
// BenchmarkExactPhaseRange (the hot-loop gates).
func BenchmarkRankerQueryOverhead(b *testing.B) {
	g := graph.BarabasiAlbert(2000, 3, 7)
	subset := []graph.Node{3, 99, 500, 1500}
	ctx := context.Background()

	b.Run("ranker", func(b *testing.B) {
		r := NewRanker(g)
		q := Query{Measure: Betweenness, Targets: subset, Epsilon: 0.2, Delta: 0.1, Seed: 1, Workers: 1}
		if _, err := r.Rank(ctx, q); err != nil { // warm the preprocessing
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := r.Rank(ctx, q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("direct", func(b *testing.B) {
		prep := core.PreprocessBC(g)
		opt := core.BCOptions{Epsilon: 0.2, Delta: 0.1, Seed: 1, Workers: 1}
		if _, err := prep.EstimateBC(ctx, subset, opt); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := prep.EstimateBC(ctx, subset, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
}
