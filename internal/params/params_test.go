package params

import (
	"errors"
	"fmt"
	"testing"
)

func TestChecks(t *testing.T) {
	for _, tc := range []struct {
		name string
		err  error
		bad  bool
	}{
		{"eps ok", CheckEpsilon(0.05), false},
		{"eps zero", CheckEpsilon(0), true},
		{"eps one", CheckEpsilon(1), true},
		{"eps negative", CheckEpsilon(-0.1), true},
		{"eps nan", CheckEpsilon(nan()), true},
		{"delta ok", CheckDelta(0.01), false},
		{"delta too big", CheckDelta(1.5), true},
		{"pair ok", CheckEpsDelta(0.1, 0.1), false},
		{"pair bad eps", CheckEpsDelta(2, 0.1), true},
		{"pair bad delta", CheckEpsDelta(0.1, 0), true},
		{"k ok", CheckK(1), false},
		{"k zero", CheckK(0), true},
		{"targets ok", CheckTargets([]int32{0, 4}, 5), false},
		{"targets empty", CheckTargets([]int32{}, 5), true},
		{"targets negative", CheckTargets([]int32{-1}, 5), true},
		{"targets high", CheckTargets([]int32{5}, 5), true},
	} {
		if got := tc.err != nil; got != tc.bad {
			t.Errorf("%s: err = %v, want bad=%v", tc.name, tc.err, tc.bad)
		}
		if tc.bad && !IsBadInput(tc.err) {
			t.Errorf("%s: error is not classified as bad input", tc.name)
		}
	}
}

func nan() float64 {
	z := 0.0
	return z / z
}

func TestErrorChainClassification(t *testing.T) {
	wrapped := fmt.Errorf("kpath: %w", CheckK(0))
	if !IsBadInput(wrapped) {
		t.Error("wrapped params error not recognized")
	}
	var pe *Error
	if !errors.As(wrapped, &pe) || pe.Field != "k" {
		t.Errorf("field = %q, want k", pe.Field)
	}
	if IsBadInput(errors.New("disk on fire")) {
		t.Error("unrelated error classified as bad input")
	}
}
