// Command saphyrarouter fronts a fleet of saphyrad replicas: it
// consistent-hashes each query onto a replica ring and proxies /v1/rank and
// /v1/topk with policy headers intact, retrying on the next ring owner on
// connect failure or upstream 5xx within a per-request hop budget. The
// router carries no view and no cache — placement is affinity, not
// correctness, because every replica computes every query
// bitwise-identically (see DESIGN.md section 14).
//
// Usage:
//
//	saphyrad -view net.sbcv -addr :8372 &            # each replica
//	saphyrad -view net.sbcv -addr :8373 &
//	saphyrarouter -replicas http://localhost:8372,http://localhost:8373 -addr :8371
//
// Every fleet member must be handed the SAME replica list in the SAME
// order (and the same -vnodes): ring agreement is positional.
//
// Rollout mode pushes a new view file to each replica's view path and then
// rolls POST /admin/reload across the fleet one replica at a time, gating
// each step on /readyz reporting the new generation:
//
//	saphyrarouter -replicas http://a:8372,http://b:8372 \
//	    -rollout new.sbcv -push /srv/a/net.sbcv,/srv/b/net.sbcv
//
// -push paths pair positionally with -replicas and may be omitted when the
// files are already in place (e.g. a shared mount) — then -rollout only
// drives the reload sequence. A failed step aborts the roll; replicas
// already rolled serve the new generation, the rest keep the old one, and
// both answer correctly (the generation invariant, DESIGN.md section 14).
//
// API: same as saphyrad for /v1/rank, /v1/topk, /healthz, /metricsz.
// GET /readyz is 200 while at least one replica looks healthy.
// GET /statusz reports per-replica health EWMAs. POST /admin/reload rolls
// the whole fleet (409 while another roll is in progress).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"saphyra/internal/cluster"
)

func main() {
	var (
		replicasFlag = flag.String("replicas", "", "comma-separated ordered replica base URLs, e.g. http://host:8372 (required; order must match on every fleet member)")
		addr         = flag.String("addr", ":8371", "listen address")
		vnodes       = flag.Int("vnodes", 0, "virtual nodes per replica on the ring (0 = default 64; must match peer-fill config)")
		hops         = flag.Int("hops", 0, "max replicas tried per request (0 = default 3, clamped to fleet size)")
		probeEvery   = flag.Duration("probe-interval", 0, "active /readyz probe cadence (0 = default 500ms, negative = passive health only)")
		probeTimeout = flag.Duration("probe-timeout", 0, "single probe deadline (0 = default 1s)")
		rollout      = flag.String("rollout", "", "rollout mode: push this view file and roll /admin/reload across the fleet, then exit")
		push         = flag.String("push", "", "comma-separated destination view paths, paired positionally with -replicas (rollout mode; empty = reload only)")
	)
	flag.Parse()
	if *replicasFlag == "" {
		fmt.Fprintln(os.Stderr, "saphyrarouter: -replicas is required")
		flag.Usage()
		os.Exit(2)
	}
	replicas := splitList(*replicasFlag)

	if *rollout != "" {
		if err := runRollout(*rollout, splitList(*push), replicas); err != nil {
			fmt.Fprintln(os.Stderr, "saphyrarouter:", err)
			os.Exit(1)
		}
		return
	}
	if *push != "" {
		fmt.Fprintln(os.Stderr, "saphyrarouter: -push only makes sense with -rollout")
		os.Exit(2)
	}

	rt, err := cluster.NewRouter(cluster.RouterConfig{
		Replicas:      replicas,
		VNodes:        *vnodes,
		HopBudget:     *hops,
		ProbeInterval: *probeEvery,
		ProbeTimeout:  *probeTimeout,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "saphyrarouter:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "saphyrarouter: routing %d replicas on %s\n", len(replicas), *addr)

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-stop
		fmt.Fprintln(os.Stderr, "saphyrarouter: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		httpSrv.Shutdown(ctx)
	}()

	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "saphyrarouter:", err)
		os.Exit(1)
	}
	rt.Close()
}

// runRollout distributes src to each replica's view path (when given) and
// rolls the reload across the fleet one replica at a time.
func runRollout(src string, dests, replicas []string) error {
	if len(dests) > 0 && len(dests) != len(replicas) {
		return fmt.Errorf("-push lists %d paths for %d replicas (they pair positionally)", len(dests), len(replicas))
	}
	for i, dst := range dests {
		if err := cluster.PushView(src, dst); err != nil {
			return fmt.Errorf("pushing to replica %d (%s): %w", i, replicas[i], err)
		}
		fmt.Fprintf(os.Stderr, "saphyrarouter: pushed %s -> %s\n", src, dst)
	}
	gens, err := cluster.RollingReload(context.Background(), http.DefaultClient, replicas)
	for i, gen := range gens {
		fmt.Printf("%s generation %d\n", replicas[i], gen)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "saphyrarouter: rolled %d replicas\n", len(gens))
	return nil
}

// splitList splits a comma-separated flag, dropping empty entries so a
// trailing comma is harmless.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}
