package baselines

import (
	"context"

	"math"
	"testing"

	"saphyra/internal/exact"
	"saphyra/internal/graph"
	"saphyra/internal/testutil"
)

func checkWithinEps(t *testing.T, name string, got, want []float64, eps float64) {
	t.Helper()
	for v := range want {
		if math.Abs(got[v]-want[v]) > eps {
			t.Errorf("%s: node %d est %g truth %g (> eps %g)", name, v, got[v], want[v], eps)
		}
	}
}

func TestABRAWithinEpsilon(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := testutil.RandomConnectedGraph(40, 50, seed)
		truth := exact.BC(g)
		res, err := ABRA(context.Background(), g, Options{Epsilon: 0.05, Delta: 0.01, Seed: seed, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		checkWithinEps(t, "abra", res.BC, truth, 0.05)
	}
}

func TestKADABRAWithinEpsilon(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := testutil.RandomConnectedGraph(40, 50, seed)
		truth := exact.BC(g)
		res, err := KADABRA(context.Background(), g, Options{Epsilon: 0.05, Delta: 0.01, Seed: seed, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		checkWithinEps(t, "kadabra", res.BC, truth, 0.05)
	}
}

func TestABRAStar(t *testing.T) {
	g := graph.Star(15)
	truth := exact.BC(g)
	res, err := ABRA(context.Background(), g, Options{Epsilon: 0.05, Delta: 0.01, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.BC[0]-truth[0]) > 0.05 {
		t.Errorf("center est %g truth %g", res.BC[0], truth[0])
	}
	for v := 1; v < 15; v++ {
		if res.BC[v] != 0 {
			t.Errorf("leaf %d est %g, want 0", v, res.BC[v])
		}
	}
}

func TestKADABRADisconnected(t *testing.T) {
	b := graph.NewBuilder(10)
	for i := 0; i < 4; i++ {
		b.AddEdge(graph.Node(i), graph.Node(i+1))
	}
	b.AddEdge(6, 7)
	b.AddEdge(7, 8)
	g := b.Build()
	truth := exact.BC(g)
	res, err := KADABRA(context.Background(), g, Options{Epsilon: 0.05, Delta: 0.01, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	checkWithinEps(t, "kadabra", res.BC, truth, 0.05)
}

func TestABRADisconnected(t *testing.T) {
	b := graph.NewBuilder(8)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(4, 5)
	b.AddEdge(5, 6)
	g := b.Build()
	truth := exact.BC(g)
	res, err := ABRA(context.Background(), g, Options{Epsilon: 0.05, Delta: 0.01, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	checkWithinEps(t, "abra", res.BC, truth, 0.05)
}

func TestBaselinesRejectBadOptions(t *testing.T) {
	g := graph.Cycle(5)
	for _, opt := range []Options{
		{Epsilon: -0.1, Delta: 0.1},
		{Epsilon: 0.1, Delta: 2},
	} {
		if _, err := ABRA(context.Background(), g, opt); err == nil {
			t.Errorf("ABRA %+v: want error", opt)
		}
		if _, err := KADABRA(context.Background(), g, opt); err == nil {
			t.Errorf("KADABRA %+v: want error", opt)
		}
	}
}

func TestBaselinesTinyGraph(t *testing.T) {
	g := graph.Path(2)
	for name, f := range map[string]func(context.Context, *graph.Graph, Options) (*Result, error){"abra": ABRA, "kadabra": KADABRA} {
		res, err := f(context.Background(), g, Options{Epsilon: 0.1, Delta: 0.1, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.BC[0] != 0 || res.BC[1] != 0 {
			t.Errorf("%s: P2 bc = %v, want zeros", name, res.BC)
		}
	}
	empty := graph.NewBuilder(1).Build()
	if res, err := ABRA(context.Background(), empty, Options{Epsilon: 0.1, Delta: 0.1}); err != nil || len(res.BC) != 1 {
		t.Errorf("single-node graph: res=%v err=%v", res, err)
	}
}

func TestKADABRADeterministic(t *testing.T) {
	g := graph.BarabasiAlbert(80, 3, 2)
	opt := Options{Epsilon: 0.1, Delta: 0.1, Seed: 42, Workers: 3}
	a, err := KADABRA(context.Background(), g, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := KADABRA(context.Background(), g, opt)
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.BC {
		if a.BC[v] != b.BC[v] {
			t.Fatalf("nondeterministic at node %d", v)
		}
	}
	if a.Samples != b.Samples {
		t.Fatalf("sample counts differ: %d vs %d", a.Samples, b.Samples)
	}
}

func TestABRAMaxSamplesCap(t *testing.T) {
	g := graph.BarabasiAlbert(60, 3, 1)
	res, err := ABRA(context.Background(), g, Options{Epsilon: 0.01, Delta: 0.01, Seed: 1, MaxSamples: 200})
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples > 200 {
		t.Errorf("samples = %d exceeds cap", res.Samples)
	}
}

// The false-zero phenomenon (Fig 6): on a low-centrality-heavy graph at
// coarse epsilon, the baselines must estimate many positive-bc nodes as
// exactly zero. This is the behaviour SaPHyRa eliminates; the test pins it
// so the Fig 6 reproduction stays meaningful.
func TestKADABRAProducesFalseZeros(t *testing.T) {
	g := graph.RoadNetwork(20, 20, 0.3, 4)
	truth := exact.BC(g)
	res, err := KADABRA(context.Background(), g, Options{Epsilon: 0.1, Delta: 0.1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	falseZeros := 0
	positives := 0
	for v := range truth {
		if truth[v] > 0 {
			positives++
			if res.BC[v] == 0 {
				falseZeros++
			}
		}
	}
	if positives == 0 {
		t.Fatal("fixture degenerate")
	}
	if falseZeros == 0 {
		t.Error("expected some false zeros from KADABRA at coarse epsilon")
	}
}
