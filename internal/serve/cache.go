package serve

import (
	"container/list"
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"saphyra/internal/obs"
	"saphyra/internal/params"
)

// cacheKey identifies a query up to bitwise result equality: the
// generation tag pins the view bytes and query.Query.Key digests every
// result-relevant request field (measure, algorithm, K, eps, delta, seed,
// canonical target set / whole-network flag). Every engine is a pure
// function of exactly those inputs — the worker count never reaches the key
// because it never reaches the bits (DESIGN.md section 3) — so two requests
// with equal keys are guaranteed the same response payload. That purity is
// the entire soundness argument of the cache: there is no TTL and no
// invalidation beyond LRU pressure and generation purge.
type cacheKey struct {
	gen uint64
	key [sha256.Size]byte // query.Query.Key of the canonical dense query
}

// payload is an immutable computed result. Entries are shared between the
// cache, in-flight followers, and response marshaling — nothing may mutate
// one after publication.
type payload struct {
	nodes   []int64   // canonical target set as original ids (topk: ordered by rank)
	scores  []float64 // aligned with nodes
	ranks   []int     // aligned with nodes (topk: 1..len)
	samples int64
	adopted bool // filled from a peer's cache, not computed here (cluster tier)
}

// flight is one in-progress computation. The computation runs on its own
// goroutine (run) under a flight-scoped context, not on any requester's:
// requesters — the leader that created the flight and every collapsed
// follower — wait on done with their own request contexts, and each may
// abandon the flight individually when its deadline fires. waiters counts
// the requesters still interested; when it reaches zero the flight context
// is canceled, the engines unwind at their next checkpoint, and the
// admission slot frees. As long as any follower remains the computation
// keeps running — a leader with a short deadline never kills the result a
// follower with a longer one is waiting for.
type flight struct {
	done    chan struct{}
	p       *payload
	err     error
	waiters int   // guarded by cache.mu
	joined  int64 // guarded by cache.mu: total requesters ever (fan-in)
	cancel  context.CancelCauseFunc
}

// cache is a bounded LRU of deterministic results with singleflight
// collapsing: concurrent requests for one key share a single computation.
type cache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // of *centry; front = most recently used
	entries  map[cacheKey]*list.Element
	inflight map[cacheKey]*flight
	// stale holds the last retired generation's results, keyed by query key
	// alone: the degradation ladder's cheapest rung. Populated wholesale by
	// purgeOtherGens (so it holds at most one LRU's worth of entries) and
	// never consulted by the primary path — a stale result is only served
	// explicitly, flagged, with its generation reported.
	stale map[[sha256.Size]byte]*staleEntry

	hits      atomic.Int64 // served straight from the LRU
	misses    atomic.Int64 // flights created (singleflight leaders)
	collapsed atomic.Int64 // waited on another request's computation

	// onFlight, when set, observes each settled flight's total requester
	// count (leader plus collapsed followers) — the fan-in histogram.
	onFlight func(joined int64)
}

// staleEntry is a retired-generation result retained for degraded serving.
type staleEntry struct {
	gen uint64
	p   *payload
}

type centry struct {
	key cacheKey
	p   *payload
}

func newCache(capacity int) *cache {
	if capacity < 1 {
		capacity = 1
	}
	return &cache{
		capacity: capacity,
		ll:       list.New(),
		entries:  make(map[cacheKey]*list.Element),
		inflight: make(map[cacheKey]*flight),
	}
}

// do returns the payload for key, computing it with fn on a miss. led
// reports whether THIS call created the flight that ran fn — fn is invoked
// at most once per do call, on a detached goroutine, with a flight context
// that outlives any single requester and is canceled only when every
// requester has abandoned the flight. Hits and followers of someone else's
// computation return led=false and never invoke fn.
//
// A requester whose own ctx fires while the flight is still running
// detaches with a *params.CanceledError; the flight keeps computing for the
// remaining waiters (or is canceled, if none remain). Errors are returned
// to every waiter but never cached — a failed computation (overload,
// cancellation, panic) must not poison the key.
func (c *cache) do(ctx context.Context, key cacheKey, fn func(ctx context.Context) (*payload, error)) (p *payload, led bool, err error) {
	for {
		c.mu.Lock()
		if el, ok := c.entries[key]; ok {
			c.ll.MoveToFront(el)
			p := el.Value.(*centry).p
			c.mu.Unlock()
			c.hits.Add(1)
			return p, led, nil
		}
		if f, ok := c.inflight[key]; ok {
			f.waiters++
			f.joined++
			c.mu.Unlock()
			c.collapsed.Add(1)
			p, err, retry := c.wait(ctx, f, false)
			if retry {
				continue
			}
			return p, led, err
		}
		fctx, cancel := context.WithCancelCause(context.Background())
		// The flight context is deliberately detached from the leader's
		// deadline, but its trace (and the leader's current span, as the
		// parent) ride along with their own reference: span writes from a
		// flight that outlives a 504'd leader land in a still-live arena.
		fctx, ftr := obs.Transplant(fctx, ctx)
		if ftr != nil {
			ftr.Ref()
		}
		f := &flight{done: make(chan struct{}), waiters: 1, joined: 1, cancel: cancel}
		c.inflight[key] = f
		c.mu.Unlock()
		c.misses.Add(1)
		led = true
		go c.run(key, f, fctx, ftr, fn)
		p, err, _ := c.wait(ctx, f, true)
		return p, led, err
	}
}

// wait parks one requester on f until the flight settles or the requester's
// own ctx fires. retry is set for a follower that joined a flight in the
// narrow window after its last waiter abandoned it: the flight settles with
// a cancellation that is not the follower's fault, so the follower — whose
// own deadline is intact — goes back around and recomputes instead of
// inheriting someone else's 499/504.
func (c *cache) wait(ctx context.Context, f *flight, leader bool) (p *payload, err error, retry bool) {
	select {
	case <-f.done:
		if !leader && f.err != nil && params.IsCanceled(f.err) && ctx.Err() == nil {
			return nil, nil, true
		}
		return f.p, f.err, false
	case <-ctx.Done():
		c.mu.Lock()
		f.waiters--
		last := f.waiters == 0
		c.mu.Unlock()
		if last {
			// Nobody is listening anymore: cancel the compute so the
			// engines unwind at their next checkpoint and the admission
			// slot frees. If fn happens to complete before it observes the
			// cancellation, its (complete, bitwise-correct) result is still
			// cached — all-or-nothing means there is no partial state to
			// fear.
			f.cancel(context.Cause(ctx))
		}
		return nil, &params.CanceledError{Cause: context.Cause(ctx)}, false
	}
}

// run executes one flight on its own goroutine and settles it. The flight
// MUST be settled even if fn panics: without the recover a panic would kill
// the process (this goroutine has no net/http recovery above it), and
// without the defer it would strand the inflight entry and park every
// future request for this key forever.
func (c *cache) run(key cacheKey, f *flight, fctx context.Context, ftr *obs.Trace, fn func(ctx context.Context) (*payload, error)) {
	defer func() {
		if r := recover(); r != nil {
			f.p, f.err = nil, fmt.Errorf("serve: computation panicked: %v", r)
		}
		if f.p == nil && f.err == nil {
			f.err = errors.New("serve: computation aborted")
		}
		f.cancel(nil) // release the flight context's resources
		c.mu.Lock()
		delete(c.inflight, key)
		if f.err == nil {
			c.insertLocked(key, f.p)
		}
		joined := f.joined
		c.mu.Unlock()
		close(f.done)
		if c.onFlight != nil {
			c.onFlight(joined)
		}
		if ftr != nil {
			ftr.Unref() // after the last span write: the arena may now recycle
		}
	}()
	f.p, f.err = fn(fctx)
}

func (c *cache) insertLocked(key cacheKey, p *payload) {
	if el, ok := c.entries[key]; ok { // raced with another leader after a purge
		el.Value.(*centry).p = p
		c.ll.MoveToFront(el)
		return
	}
	c.entries[key] = c.ll.PushFront(&centry{key: key, p: p})
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*centry).key)
	}
}

// purgeOtherGens drops every entry whose generation differs from gen —
// called after a hot reload so retired-view results stop occupying LRU
// slots (they were never incorrect: their keys are unreachable once
// requests carry the new generation). The purged entries become the new
// stale store (highest purged generation wins per key), replacing whatever
// earlier generations it held — the degradation ladder serves at most one
// generation behind.
func (c *cache) purgeOtherGens(gen uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	stale := make(map[[sha256.Size]byte]*staleEntry)
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		if e := el.Value.(*centry); e.key.gen != gen {
			if old := stale[e.key.key]; old == nil || e.key.gen > old.gen {
				stale[e.key.key] = &staleEntry{gen: e.key.gen, p: e.p}
			}
			c.ll.Remove(el)
			delete(c.entries, e.key)
		}
		el = next
	}
	c.stale = stale
}

// staleGet returns the retired-generation result for a query key, if the
// stale store holds one. Never consulted by the primary lookup path.
func (c *cache) staleGet(key [sha256.Size]byte) (uint64, *payload, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.stale[key]
	if e == nil {
		return 0, nil, false
	}
	return e.gen, e.p, true
}

// peek returns the cached payload for key without joining a flight,
// bumping the hit counters, or touching the LRU order — the passive read
// behind GET /internal/cache, where a peer asks "do you already have this?"
// and a miss must not distort this server's own cache statistics or
// recency (peer probes are not local demand).
func (c *cache) peek(key cacheKey) (*payload, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		return el.Value.(*centry).p, true
	}
	return nil, false
}

func (c *cache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
