package bicomp

import (
	"sync/atomic"

	"saphyra/internal/faultinject"
)

// Handle is a generation-tagged, reference-counted wrapper around a view —
// the mmap-lifetime primitive of hot reload (DESIGN.md sections 7 and 8).
// A serving process keeps an atomic pointer to the current Handle; each
// query brackets its work in Acquire/Release; a reload swaps the pointer to
// a new Handle (next generation) and Retires the old one. Retire never
// unmaps under an in-flight query: the mapping is released by whichever of
// Retire/Release drops the last reference, so every query that Acquired the
// old generation drains on still-mapped pages, and queries arriving after
// the swap fail Acquire and take the new generation instead.
//
// The generation tag is what makes deterministic result caching sound
// across reloads: every estimate is a pure function of (view bytes,
// canonicalized options), so a cache keyed by (generation, ...) can never
// serve bytes from one view for a query against another.
type Handle struct {
	view *BlockCSR
	ids  []int64
	gen  uint64

	// state packs the retired flag (bit 63) with the acquisition count.
	// A single word makes Acquire one CAS and Release one Add, with the
	// "last ref of a retired handle" transition detected atomically.
	state atomic.Uint64

	m *Mapped // nil for in-memory views: Retire then has nothing to release
}

const handleRetired = uint64(1) << 63

// NewHandle wraps a mapped view as generation gen. The Handle takes
// ownership of m: m.Close must not be called directly anymore — the mapping
// is released by Retire once every Acquire has been Released.
func NewHandle(m *Mapped, gen uint64) *Handle {
	return &Handle{view: m.View, ids: m.IDs, gen: gen, m: m}
}

// NewMemHandle wraps an in-memory view (nothing to unmap) as generation
// gen, for tests and non-persisted serving.
func NewMemHandle(view *BlockCSR, ids []int64, gen uint64) *Handle {
	return &Handle{view: view, ids: ids, gen: gen}
}

// Gen returns the handle's generation tag.
func (h *Handle) Gen() uint64 { return h.gen }

// Refs returns the current acquisition count — a point-in-time snapshot for
// leak assertions (chaos and reload-failure tests drain traffic, then
// assert Refs() == 0) and operational introspection, never for
// synchronization.
func (h *Handle) Refs() uint64 { return h.state.Load() &^ handleRetired }

// Retired reports whether Retire was called.
func (h *Handle) Retired() bool { return h.state.Load()&handleRetired != 0 }

// View returns the wrapped view. Only valid between a successful Acquire
// and its Release.
func (h *Handle) View() *BlockCSR { return h.view }

// IDs returns the view's dense-id -> original-id map (nil when ids are
// already external). Only valid between a successful Acquire and its
// Release.
func (h *Handle) IDs() []int64 { return h.ids }

// Acquire takes a reference, pinning the mapping. It fails (returns false)
// once the handle has been retired — the caller must re-read the current
// handle and acquire that instead. Every successful Acquire must be paired
// with exactly one Release.
func (h *Handle) Acquire() bool {
	// Chaos hook: an injected failure is indistinguishable from losing the
	// race with Retire — the shape callers must already handle.
	if faultinject.Fire("bicomp.handle.acquire") != nil {
		return false
	}
	for {
		s := h.state.Load()
		if s&handleRetired != 0 {
			return false
		}
		if h.state.CompareAndSwap(s, s+1) {
			return true
		}
	}
}

// Share takes an additional reference on a handle the caller already has
// pinned. Unlike Acquire it succeeds even after Retire: the caller's own
// reference (or, before the handle is published, its exclusive ownership)
// keeps the mapping alive, so extending the pin can never resurrect an
// unmapped view. It exists for handing work to a goroutine that may outlive
// the caller's bracket — e.g. a detached cache-flight computation that keeps
// serving followers after the originating request timed out. Every Share
// must be paired with exactly one Release.
func (h *Handle) Share() {
	h.state.Add(1)
}

// Release drops a reference. The last Release of a retired handle unmaps
// the view.
func (h *Handle) Release() {
	if h.state.Add(^uint64(0)) == handleRetired {
		h.unmap()
	}
}

// Retire marks the handle dead: subsequent Acquires fail, and the mapping
// is released as soon as the last in-flight reference is Released (at once
// if none is held). Retire must be called at most once, by the owner that
// swapped the handle out.
func (h *Handle) Retire() {
	// A CAS loop rather than state.Or: semantically identical, but the
	// Or-with-result intrinsic miscompiles on this toolchain (go1.24.0
	// amd64) when inlined next to other atomics — the result register
	// clobbers a live pointer. The CAS form compiles correctly everywhere.
	for {
		s := h.state.Load()
		if s&handleRetired != 0 {
			return
		}
		if h.state.CompareAndSwap(s, s|handleRetired) {
			if s == 0 {
				// No references were held and the flag was not yet set: this
				// call owns the release. A concurrent Acquire either
				// completed its CAS first (count > 0 here, its Release
				// unmaps) or fails.
				h.unmap()
			}
			return
		}
	}
}

func (h *Handle) unmap() {
	if h.m != nil {
		h.m.Close()
	}
}
