// Package closeness implements subset ranking by harmonic closeness
// centrality, the first of the paper's stated future-work extensions of the
// SaPHyRa framework (Section VI).
//
// Harmonic closeness of v is c(v) = (1/(n-1)) * sum_{u != v} 1/d(u, v)
// (terms with unreachable u are 0). A sample is a uniform source u; the
// per-hypothesis loss for target v is 1/d(u, v) in [0, 1] -- a bounded but
// non-binary loss, so this package runs its own progressive estimator with
// empirical Bernstein stopping (per-target variance) instead of the 0/1
// framework plumbing. One BFS per sample prices all targets at once, which
// is what makes subset ranking cheap.
//
// Determinism: sampling is driven through sched.VirtualWorkers fixed
// per-stream RNGs with a deterministic quota split, and the per-stream
// accumulators are merged in stream order — so for a fixed seed the
// estimate is bitwise-identical for any Options.Workers value. The
// estimator runs over any graph.Adjacency: Estimate prices targets on the
// raw CSR, EstimateView on the block-grouped bicomp.BlockCSR arrays
// (typically mmap-backed; see bicomp.OpenMapped). BFS distance labels are
// neighbor-order invariant, so both paths produce bitwise-identical
// results. See DESIGN.md sections 3 (determinism) and 7 (the shared view
// layer).
package closeness

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"runtime"

	"saphyra/internal/bicomp"
	"saphyra/internal/graph"
	"saphyra/internal/params"
	"saphyra/internal/sched"
	"saphyra/internal/stats"
)

// Options configures the estimator.
type Options struct {
	Epsilon float64 // additive error; default 0.05
	Delta   float64 // failure probability; default 0.01
	Workers int     // goroutines; the result does not depend on this
	// Seed determines the sample streams; fixed seed => bitwise-identical
	// output at any worker count.
	Seed       int64
	MaxSamples int64 // optional cap; default 64/eps^2 * ln-scaled ceiling
}

func (o *Options) setDefaults() {
	if o.Epsilon == 0 {
		o.Epsilon = 0.05
	}
	if o.Delta == 0 {
		o.Delta = 0.01
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
}

// Result holds harmonic closeness estimates for the target set.
type Result struct {
	Nodes        []graph.Node
	Closeness    []float64
	Samples      int64
	Rounds       int
	StoppedEarly bool
}

// Estimate computes (eps, delta)-estimates of harmonic closeness for the
// targets by source sampling over the graph's CSR adjacency. Cancellation
// is polled between doubling rounds and between the per-round virtual
// streams: a done ctx aborts with a *params.CanceledError, never a partial
// estimate.
func Estimate(ctx context.Context, g *graph.Graph, a []graph.Node, opt Options) (*Result, error) {
	return estimate(ctx, g, a, opt)
}

// EstimateView is Estimate over a block-annotated adjacency view: the BFS
// pricing streams the view's grouped neighbor arrays, so a view opened from
// a serialized file (bicomp.OpenMapped) serves closeness queries without
// touching — or even having — the original CSR pages. Results are
// bitwise-identical to Estimate on the graph the view was built from.
func EstimateView(ctx context.Context, view *bicomp.BlockCSR, a []graph.Node, opt Options) (*Result, error) {
	return estimate(ctx, bicomp.GroupedAdj{V: view}, a, opt)
}

// adjacency is what the pricing engine needs from a graph representation:
// a node count and a concrete BFS. Dispatch happens once per traversal —
// *graph.Graph and bicomp.GroupedAdj both implement it with their inner
// loops fully concrete, which keeps the per-node hot path free of interface
// calls.
type adjacency interface {
	NumNodes() int
	BFSDistancesInto(source graph.Node, dist []int32) []int32
}

// estimate is the engine shared by the CSR and view paths.
func estimate(ctx context.Context, adj adjacency, a []graph.Node, opt Options) (*Result, error) {
	opt.setDefaults()
	n := adj.NumNodes()
	if n < 2 {
		return nil, errors.New("closeness: graph too small")
	}
	eps, delta := opt.Epsilon, opt.Delta
	if err := params.CheckEpsDelta(eps, delta); err != nil {
		return nil, fmt.Errorf("closeness: %w", err)
	}
	if err := params.CheckTargets(a, n); err != nil {
		return nil, fmt.Errorf("closeness: %w", err)
	}
	nodes := graph.DedupSorted(a)
	k := len(nodes)

	n0 := int64(math.Ceil(stats.VCConstant / (eps * eps) * math.Log(1/delta)))
	if n0 < 1 {
		n0 = 1
	}
	nmax := stats.UnionSampleSize(eps, delta, k) * 4
	if nmax < n0 {
		nmax = n0
	}
	if opt.MaxSamples > 0 {
		if nmax > opt.MaxSamples {
			nmax = opt.MaxSamples
		}
		if n0 > nmax {
			n0 = nmax
		}
	}
	rounds := int64(1)
	if nmax > n0 {
		rounds = int64(math.Ceil(math.Log2(float64(nmax) / float64(n0))))
	}
	deltaI := delta / (2 * float64(rounds) * float64(k))

	res := &Result{Nodes: nodes}
	accs := make([]stats.MeanVar, k)
	var drawn int64
	target := n0
	// One persistent sampler per virtual worker — a fixed count independent
	// of Options.Workers, so the per-stream RNG sequences, and with them the
	// estimate, depend only on the seed. Streams materialize lazily on first
	// quota (mirroring core's samplerSet): a stream that never draws costs
	// nothing, which matters when the O(n) BFS scratch is large. BFS
	// distance scratch and rng live across rounds: the doubling loop
	// allocates nothing per round.
	samplers := make([]*sourceSampler, sched.VirtualWorkers)
	mk := func(v int) *sourceSampler {
		return newSourceSampler(adj, nodes, opt.Seed+int64(v+1)*612_361)
	}
	var quota []int64
	for {
		res.Rounds++
		var err error
		quota, err = batchParallel(ctx, samplers, mk, opt.Workers, target-drawn, quota, accs)
		if err != nil {
			return nil, fmt.Errorf("closeness: %w", err)
		}
		drawn = target
		worst := 0.0
		for i := range accs {
			if e := stats.EpsilonBernstein(drawn, deltaI, accs[i].Variance()); e > worst {
				worst = e
			}
		}
		if worst <= eps {
			res.StoppedEarly = true
			break
		}
		if drawn >= nmax {
			break
		}
		target = drawn * 2
		if target > nmax {
			target = nmax
		}
	}
	res.Samples = drawn
	res.Closeness = make([]float64, k)
	for i := range accs {
		res.Closeness[i] = accs[i].Mean()
	}
	return res, nil
}

// sourceSampler is the closeness analogue of the core engine's batched
// sampler: a per-virtual-worker workspace drawing uniform BFS sources and
// pricing every target per source, with pooled scratch so the steady-state
// loop is allocation-free.
type sourceSampler struct {
	adj   adjacency
	nodes []graph.Node
	rng   *rand.Rand
	dist  []int32
	local []stats.MeanVar
}

func newSourceSampler(adj adjacency, nodes []graph.Node, seed int64) *sourceSampler {
	return &sourceSampler{
		adj:   adj,
		nodes: nodes,
		rng:   rand.New(rand.NewPCG(uint64(seed), 0xbb67ae8584caa73b)),
		dist:  make([]int32, adj.NumNodes()),
		local: make([]stats.MeanVar, len(nodes)),
	}
}

// sampleBatch draws count sources, accumulating the per-target harmonic
// terms into the sampler's persistent local accumulators.
func (s *sourceSampler) sampleBatch(count int64) {
	n := s.adj.NumNodes()
	for j := int64(0); j < count; j++ {
		u := graph.Node(s.rng.IntN(n))
		s.dist = s.adj.BFSDistancesInto(u, s.dist)
		for i, v := range s.nodes {
			x := 0.0
			if v != u && s.dist[v] > 0 {
				x = 1 / float64(s.dist[v])
			}
			s.local[i].Add(x)
		}
	}
}

// batchParallel distributes count samples across the virtual-worker streams
// with a deterministic quota split and runs them on up to `workers`
// goroutines (sched.Do work stealing — which goroutine runs which stream
// never affects the streams themselves). Unmaterialized streams are built
// by mk on their first non-zero quota; each slot is touched by exactly one
// goroutine per round, with rounds separated by the Do barrier, so the
// lazy writes need no locking. It returns the quota buffer for reuse
// across rounds.
func batchParallel(ctx context.Context, samplers []*sourceSampler, mk func(v int) *sourceSampler, workers int, count int64, quota []int64, accs []stats.MeanVar) ([]int64, error) {
	if count <= 0 {
		return quota, nil
	}
	if err := params.Interrupted(ctx); err != nil {
		return quota, err
	}
	nv := len(samplers)
	quota = sched.Split(count, nv, quota)
	err := sched.DoCtx(ctx, nv, workers, func(v int) {
		if quota[v] == 0 {
			return
		}
		if samplers[v] == nil {
			samplers[v] = mk(v)
		}
		samplers[v].sampleBatch(quota[v])
	})
	if err != nil {
		// All-or-nothing: a stream may have drawn while another never ran.
		// The caller discards the whole estimate, so the polluted per-stream
		// accumulators never surface.
		return quota, &params.CanceledError{Cause: err}
	}
	// The per-stream accumulators are cumulative across rounds: rebuild accs
	// from scratch, merging in stream order so the result is a pure function
	// of the seed. Skipping an unmaterialized stream is bitwise-equivalent
	// to merging its (all-zero) accumulators.
	for i := range accs {
		accs[i] = stats.MeanVar{}
	}
	for _, s := range samplers {
		if s == nil {
			continue
		}
		for i := range accs {
			accs[i].Merge(&s.local[i])
		}
	}
	return quota, nil
}

// Exact computes exact harmonic closeness for every node: c(v) =
// sum_{u != v} (1/d(u,v)) / (n-1), one BFS per node. O(n*m).
func Exact(g *graph.Graph) []float64 {
	n := g.NumNodes()
	out := make([]float64, n)
	if n < 2 {
		return out
	}
	dist := make([]int32, n)
	for u := 0; u < n; u++ {
		dist = graph.BFSDistances(g, graph.Node(u), dist)
		for v, d := range dist {
			if v != u && d > 0 {
				out[v] += 1 / float64(d)
			}
		}
	}
	for i := range out {
		out[i] /= float64(n - 1)
	}
	return out
}
