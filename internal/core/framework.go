// Package core implements the paper's two contributions: the generic
// SaPHyRa sample-space-partitioning framework for hypothesis ranking
// (Algorithm 1, Section III) and its betweenness-centrality instantiation
// SaPHyRa_bc (Section IV).
//
// The framework estimates the expected risks of k hypotheses with 0/1
// losses. The sample space is split into an exact subspace (risks computed
// exactly by the Space implementation) and an approximate subspace (risks
// estimated by adaptive sampling with empirical Bernstein stopping and a VC
// sample-size ceiling). The combined estimate
//
//	l_i = lhat_i + lambda * ltilde_i,   lambda = 1 - lambdaHat,
//
// is an (eps, delta)-estimation of the true risks (Theorem 6).
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"

	"saphyra/internal/obs"
	"saphyra/internal/params"
	"saphyra/internal/sched"
	"saphyra/internal/stats"
)

// Space describes a partitioned hypothesis-ranking problem with 0/1 losses.
// Implementations must be safe for concurrent use of independent Samplers.
type Space interface {
	// NumHypotheses returns k.
	NumHypotheses() int
	// ExactPhase returns lambdaHat (the probability mass of the exact
	// subspace) and the exact risks of every hypothesis on it (Eq 9). A
	// long-running implementation should poll ctx at its own chunk
	// boundaries and abort with a *params.CanceledError; a nil error means
	// the risks are complete and bitwise-deterministic.
	ExactPhase(ctx context.Context) (lambdaHat float64, exact []float64, err error)
	// VCDim upper-bounds the VC dimension of the hypothesis class on the
	// approximate subspace (used for the Lemma 4 sample ceiling).
	VCDim() int
	// NewSampler returns an independent sampler of the approximate
	// distribution (Eq 10) seeded deterministically.
	NewSampler(seed int64) Sampler
}

// Sampler draws samples from the approximate subspace. Draw returns the
// indices of the hypotheses whose loss is 1 on the drawn sample; the slice
// is only valid until the next Draw.
type Sampler interface {
	Draw() []int32
}

// BatchSampler is the amortized fast path of the sampling engine. DrawBatch
// draws n samples from the same distribution as Draw and accumulates hit
// counts directly into hits (hits[i] += number of samples whose loss is 1 on
// hypothesis i). Implementations are free to reorder the work inside a batch
// — e.g. group samples by BFS source so one truncated traversal serves many
// samples — as long as the marginal sample distribution is unchanged and the
// output is deterministic for a fixed seed.
//
// Samplers that implement BatchSampler are driven batch-wise by the
// framework; plain Samplers keep working through the single-Draw shim.
type BatchSampler interface {
	Sampler
	DrawBatch(n int64, hits []int64)
}

// stoppable marks batch samplers that poll a sched.Stop inside their batch
// loops — the sub-round cancellation bound. A sampler that was handed a
// Stop may return from DrawBatch early (having accumulated fewer than n
// samples) once the flag is raised; the framework only raises the flag on a
// canceled run, whose entire estimate is discarded, so the short count
// never surfaces.
type stoppable interface {
	SetStop(*sched.Stop)
}

// drawInto draws n samples with s, accumulating hit counts into hits via
// DrawBatch when available and the single-Draw shim otherwise.
func drawInto(s Sampler, n int64, hits []int64) {
	if bs, ok := s.(BatchSampler); ok {
		bs.DrawBatch(n, hits)
		return
	}
	for j := int64(0); j < n; j++ {
		for _, idx := range s.Draw() {
			hits[idx]++
		}
	}
}

// Options configures Algorithm 1.
type Options struct {
	Epsilon float64 // additive error target (on the combined risks)
	Delta   float64 // failure probability
	Workers int     // sampling goroutines; <= 0 means GOMAXPROCS
	// Seed is the base RNG seed. Sampling is driven through a fixed set of
	// sched.VirtualWorkers seeded sampler streams regardless of Workers, so
	// a fixed seed alone determines the output bit for bit — Workers only
	// changes how the streams are multiplexed onto goroutines.
	Seed int64

	// DisableAdaptive skips the empirical-Bernstein early-stopping checks
	// and always draws the full VC budget (ablation of Section III-C).
	DisableAdaptive bool
	// MaxSamples optionally caps the number of samples (0 = no cap). When
	// the cap binds, the (eps, delta) guarantee is void; intended for
	// time-boxed experiments.
	MaxSamples int64
}

// Estimate is the result of Algorithm 1.
type Estimate struct {
	Risks        []float64 // combined estimates l_i
	ExactRisks   []float64 // lhat_i
	ApproxRisks  []float64 // ltilde_i (empirical means on the approximate subspace)
	LambdaHat    float64   // exact-subspace mass
	EpsPrime     float64   // eps / (1 - lambdaHat): per-sample tolerance
	VCDim        int
	N0, NMax     int64 // initial and ceiling sample counts
	Samples      int64 // samples actually drawn (excluding the pilot)
	PilotN       int64 // pilot samples used for the delta allocation
	Rounds       int   // doubling rounds executed
	StoppedEarly bool  // true if Bernstein certified eps' before NMax
}

// Run executes Algorithm 1 on the given space.
//
// Cancellation: ctx is polled at round boundaries (before the pilot and
// before every adaptive doubling round) and between the per-round virtual
// sampler streams; a done ctx aborts with a *params.CanceledError and no
// estimate. The checkpoints never touch the sampler streams, so a run that
// completes is bitwise-identical to one under a context that never fires.
func Run(ctx context.Context, space Space, opt Options) (*Estimate, error) {
	if err := params.CheckEpsDelta(opt.Epsilon, opt.Delta); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	k := space.NumHypotheses()
	if k == 0 {
		return nil, errors.New("core: no hypotheses")
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	ectx, exactSpan := obs.StartSpan(ctx, "core.exact")
	lambdaHat, exact, err := space.ExactPhase(ectx)
	exactSpan.End()
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if lambdaHat < 0 {
		lambdaHat = 0
	}
	if lambdaHat > 1 {
		lambdaHat = 1
	}
	lambda := 1 - lambdaHat
	est := &Estimate{
		Risks:       make([]float64, k),
		ExactRisks:  exact,
		ApproxRisks: make([]float64, k),
		LambdaHat:   lambdaHat,
		VCDim:       space.VCDim(),
	}
	if lambda < 1e-12 {
		// The exact subspace carries all the mass: no sampling needed.
		copy(est.Risks, exact)
		est.EpsPrime = math.Inf(1)
		return est, nil
	}
	epsPrime := opt.Epsilon / lambda
	est.EpsPrime = epsPrime

	n0 := int64(math.Ceil(stats.VCConstant / (epsPrime * epsPrime) * math.Log(1/opt.Delta)))
	if n0 < 1 {
		n0 = 1
	}
	nmax := stats.VCSampleSize(epsPrime, opt.Delta, est.VCDim)
	if nmax < n0 {
		nmax = n0
	}
	if opt.MaxSamples > 0 {
		if n0 > opt.MaxSamples {
			n0 = opt.MaxSamples
		}
		if nmax > opt.MaxSamples {
			nmax = opt.MaxSamples
		}
	}
	est.N0, est.NMax = n0, nmax
	rounds := int64(1)
	if nmax > n0 {
		rounds = int64(math.Ceil(math.Log2(float64(nmax) / float64(n0))))
	}

	// Pilot phase (Section III-C): draw n0 independent samples to estimate
	// per-hypothesis variances, derive the per-hypothesis error-probability
	// allocation delta_i (Eq 13), rescaled so sum_i 2 delta_i = delta/rounds.
	pilotHits := make([]int64, k)
	pctx, pilotSpan := obs.StartSpan(ctx, "core.pilot")
	if err := drawParallel(pctx, space, opt.Seed+7_777_777, workers, n0, pilotHits); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if pilotSpan != nil {
		pilotSpan.SetExtra(n0)
		pilotSpan.End()
	}
	est.PilotN = n0
	deltaBudget := opt.Delta / (2 * float64(rounds))
	deltas := allocateDeltas(pilotHits, n0, nmax, epsPrime, deltaBudget)

	// Main adaptive loop: double until Bernstein certifies eps' for every
	// hypothesis or the VC ceiling is reached.
	hits := make([]int64, k)
	samplers := makeSamplers(space, opt.Seed)
	var n int64
	target := n0
	for {
		est.Rounds++
		rctx, roundSpan := obs.StartSpan(ctx, "core.round")
		if err := drawParallelWith(rctx, samplers, workers, target-n, hits); err != nil {
			roundSpan.End()
			return nil, fmt.Errorf("core: %w", err)
		}
		if roundSpan != nil {
			roundSpan.SetExtra(target - n)
			roundSpan.End()
		}
		n = target
		if !opt.DisableAdaptive {
			worst := 0.0
			for i := range hits {
				v := stats.BernoulliSampleVariance(hits[i], n)
				if e := stats.EpsilonBernstein(n, deltas[i], v); e > worst {
					worst = e
				}
			}
			if worst <= epsPrime {
				est.StoppedEarly = true
				break
			}
		}
		if n >= nmax {
			break
		}
		target = n * 2
		if target > nmax {
			target = nmax
		}
	}
	est.Samples = n
	for i := range hits {
		est.ApproxRisks[i] = float64(hits[i]) / float64(n)
		est.Risks[i] = exact[i] + lambda*est.ApproxRisks[i]
	}
	return est, nil
}

// allocateDeltas implements the Eq 13-15 allocation: each hypothesis gets
// delta_i proportional to the largest failure probability under which its
// pilot variance already meets epsPrime at the sample ceiling, rescaled to
// sum to budget. Falls back to a uniform split when the pilot is degenerate.
func allocateDeltas(pilotHits []int64, pilotN, nmax int64, epsPrime, budget float64) []float64 {
	k := len(pilotHits)
	deltas := make([]float64, k)
	var sum float64
	for i, h := range pilotHits {
		v := stats.BernoulliSampleVariance(h, pilotN)
		d := stats.DeltaForEpsilon(nmax, v, epsPrime)
		deltas[i] = d
		sum += d
	}
	if sum <= 0 {
		for i := range deltas {
			deltas[i] = budget / float64(k)
		}
		return deltas
	}
	scale := budget / sum
	for i := range deltas {
		deltas[i] *= scale
		if deltas[i] >= 1 {
			deltas[i] = 0.999999
		}
	}
	return deltas
}

// samplerSet is the engine's fixed set of sched.VirtualWorkers independent
// sampler streams. The count and the per-stream seeds are pure functions of
// the base seed — never of Options.Workers — which is what makes every
// estimate reproducible across worker counts. Streams are materialized
// lazily on first use: tiny budgets (the common subset-ranking case) ride
// entirely on stream 0 and never pay for the other fifteen samplers'
// scratch. A stream is only ever touched by one goroutine per round
// (streams are the work items of the sched.Do below), so lazy construction
// needs no locking.
type samplerSet struct {
	space Space
	seed  int64
	ss    [sched.VirtualWorkers]Sampler
}

func makeSamplers(space Space, seed int64) *samplerSet {
	return &samplerSet{space: space, seed: seed}
}

func (s *samplerSet) get(v int) Sampler {
	if s.ss[v] == nil {
		s.ss[v] = s.space.NewSampler(s.seed + int64(v+1)*1_000_003)
	}
	return s.ss[v]
}

// drawParallel draws total samples with fresh samplers and accumulates hit
// counts (used for the pilot).
func drawParallel(ctx context.Context, space Space, seed int64, workers int, total int64, hits []int64) error {
	return drawParallelWith(ctx, makeSamplers(space, seed), workers, total, hits)
}

// drawParallelWith draws `total` samples across the virtual sampler streams
// with a static, deterministic quota split (sched.Split over the virtual —
// not the physical — worker count), merging per-stream hit counts into
// hits. Up to `workers` goroutines steal streams from an atomic counter;
// hit counts are integers, so the merge is exact in any order and the
// result depends only on the seed. Each stream drives its sampler through
// DrawBatch when implemented (one batch per round — the sampler amortizes
// BFS work and allocations internally) and through the single-Draw shim
// otherwise. Batches smaller than smallBatch stay on the caller's goroutine
// and on stream 0 alone: for the tiny budgets typical of subset ranking,
// goroutine wakeups would dominate the sampling itself.
//
// Cancellation is polled once per stream (sched.DoCtx) and, within a
// stream, every few thousand pairs inside the batch sampler itself (the
// sched.Stop wired below — the ROADMAP's sub-round cancellation bound): on
// a done ctx the round aborts and hits is left untouched — the streams that
// already drew advanced their RNGs, but the whole estimate is discarded by
// the caller, so no partial counts ever surface. The Stop polls never touch
// the sampler streams, so a round that completes is bitwise-identical to an
// uncancellable one.
func drawParallelWith(ctx context.Context, samplers *samplerSet, workers int, total int64, hits []int64) error {
	if total <= 0 {
		return nil
	}
	if err := params.Interrupted(ctx); err != nil {
		return err
	}
	const smallBatch = 2048
	if total < smallBatch {
		drawInto(samplers.get(0), total, hits)
		return nil
	}
	stop := new(sched.Stop)
	defer stop.Watch(ctx)()
	const nv = sched.VirtualWorkers
	quota := sched.Split(total, nv, nil)
	locals := make([][]int64, nv)
	err := sched.DoCtx(ctx, nv, workers, func(v int) {
		if quota[v] == 0 {
			return
		}
		// Per-stream span: one DrawBatch group per virtual worker, Extra =
		// the stream's quota. Observation only — which physical goroutine
		// runs the stream is already scheduling-invisible.
		drawSpan := obs.StartLeaf(ctx, "core.draw")
		local := make([]int64, len(hits))
		s := samplers.get(v)
		if cs, ok := s.(stoppable); ok {
			cs.SetStop(stop)
		}
		drawInto(s, quota[v], local)
		locals[v] = local
		if drawSpan != nil {
			drawSpan.SetExtra(quota[v])
			drawSpan.End()
		}
	})
	if err != nil {
		return &params.CanceledError{Cause: err}
	}
	for _, local := range locals {
		for i, c := range local {
			hits[i] += c
		}
	}
	return nil
}

// DirectSpace adapts a plain sampling problem (no partition) to the Space
// interface: lambdaHat = 0 and exact risks are all zero. Used by baselines
// and as the "no exact subspace" ablation.
type DirectSpace struct {
	K    int
	Dim  int
	Make func(seed int64) Sampler
}

// NumHypotheses implements Space.
func (d *DirectSpace) NumHypotheses() int { return d.K }

// ExactPhase implements Space with an empty exact subspace.
func (d *DirectSpace) ExactPhase(context.Context) (float64, []float64, error) {
	return 0, make([]float64, d.K), nil
}

// VCDim implements Space.
func (d *DirectSpace) VCDim() int { return d.Dim }

// NewSampler implements Space.
func (d *DirectSpace) NewSampler(seed int64) Sampler { return d.Make(seed) }

var _ Space = (*DirectSpace)(nil)

// SamplerFunc adapts a function to the Sampler interface.
type SamplerFunc func() []int32

// Draw implements Sampler.
func (f SamplerFunc) Draw() []int32 { return f() }

var _ Sampler = SamplerFunc(nil)
