package shortestpath

import (
	"math"
	"math/rand"
	"testing"

	"saphyra/internal/graph"
)

// Grid path counts grow binomially; float64 sigma must track them exactly
// while int64 would already be in overflow territory on modest grids.
func TestGridSigmaBinomial(t *testing.T) {
	g := graph.Grid2D(12, 12)
	d := NewDAG(g.NumNodes())
	d.Run(g, 0)
	// sigma(corner -> corner) = C(22, 11) = 705432
	corner := graph.Node(12*12 - 1)
	if d.Sigma[corner] != 705432 {
		t.Errorf("sigma = %g, want 705432 = C(22,11)", d.Sigma[corner])
	}
	bi := NewBiBFS(g.NumNodes())
	_, sigma, ok := bi.Query(g, 0, corner)
	if !ok || math.Abs(sigma-705432) > 1e-6 {
		t.Errorf("bidirectional sigma = %g, want 705432", sigma)
	}
}

func TestGridSigmaLarge(t *testing.T) {
	// 26x26 grid: C(50,25) ~ 1.26e14 -- still exactly representable in
	// float64 (`< 2^53`), and must match between both engines.
	g := graph.Grid2D(26, 26)
	d := NewDAG(g.NumNodes())
	d.Run(g, 0)
	corner := graph.Node(26*26 - 1)
	want := 126410606437752.0 // C(50,25)
	if d.Sigma[corner] != want {
		t.Errorf("sigma = %g, want %g", d.Sigma[corner], want)
	}
	bi := NewBiBFS(g.NumNodes())
	_, sigma, ok := bi.Query(g, 0, corner)
	if !ok || math.Abs(sigma/want-1) > 1e-12 {
		t.Errorf("bidirectional sigma = %g, want %g", sigma, want)
	}
}

// Many interleaved queries on one workspace must not leak state across
// epochs.
func TestBiBFSInterleavedQueries(t *testing.T) {
	gs := []*graph.Graph{graph.Cycle(9), graph.Star(9), graph.Grid2D(3, 3)}
	bis := make([]*BiBFS, len(gs))
	dags := make([]*DAG, len(gs))
	for i, g := range gs {
		bis[i] = NewBiBFS(g.NumNodes())
		dags[i] = NewDAG(g.NumNodes())
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 500; trial++ {
		i := rng.Intn(len(gs))
		g := gs[i]
		s := graph.Node(rng.Intn(g.NumNodes()))
		u := graph.Node(rng.Intn(g.NumNodes()))
		if s == u {
			continue
		}
		dags[i].Run(g, s)
		dist, sigma, ok := bis[i].Query(g, s, u)
		if !ok {
			t.Fatalf("graph %d pair (%d,%d): not ok", i, s, u)
		}
		if dist != dags[i].Dist[u] || math.Abs(sigma-dags[i].Sigma[u]) > 1e-9 {
			t.Fatalf("graph %d pair (%d,%d): (%d,%g) vs (%d,%g)",
				i, s, u, dist, sigma, dags[i].Dist[u], dags[i].Sigma[u])
		}
	}
}

// Long path graphs: the bidirectional search must only explore ~half the
// graph from each side, and still be exact.
func TestBiBFSLongPath(t *testing.T) {
	g := graph.Path(10001)
	bi := NewBiBFS(g.NumNodes())
	dist, sigma, ok := bi.Query(g, 0, 10000)
	if !ok || dist != 10000 || sigma != 1 {
		t.Errorf("dist=%d sigma=%g ok=%v", dist, sigma, ok)
	}
	p := bi.SamplePath(g, rand.New(rand.NewSource(1)))
	if len(p) != 10001 {
		t.Errorf("path length %d, want 10001", len(p))
	}
}

// Star graph: leaf-to-leaf queries always route through the center.
func TestBiBFSStar(t *testing.T) {
	g := graph.Star(50)
	bi := NewBiBFS(50)
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		a := graph.Node(1 + rng.Intn(49))
		b := graph.Node(1 + rng.Intn(49))
		if a == b {
			continue
		}
		dist, sigma, ok := bi.Query(g, a, b)
		if !ok || dist != 2 || sigma != 1 {
			t.Fatalf("leaf pair: dist=%d sigma=%g", dist, sigma)
		}
		p := bi.SamplePath(g, rng)
		if len(p) != 3 || p[1] != 0 {
			t.Fatalf("path %v should route through center", p)
		}
	}
}
