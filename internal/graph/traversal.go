package graph

// Adjacency is the read-only neighbor access that level-order traversals
// need. *Graph implements it with sorted adjacency lists; other orderings
// (e.g. the block-grouped view in internal/bicomp) implement it too —
// BFS distance labels depend only on the edge set, never on the order
// neighbors are listed, so any Adjacency over the same edges yields
// bitwise-identical distances.
type Adjacency interface {
	NumNodes() int
	// Neighbors returns u's neighbor list in an implementation-defined
	// order. The slice aliases internal storage and must not be modified.
	Neighbors(u Node) []Node
}

// BFSDistances computes unweighted shortest-path distances from source.
// Unreachable nodes get distance -1. If dist is non-nil and of length n it is
// reused, avoiding an allocation.
func BFSDistances(g *Graph, source Node, dist []int32) []int32 {
	n := g.NumNodes()
	if len(dist) != n {
		dist = make([]int32, n)
	}
	for i := range dist {
		dist[i] = -1
	}
	queue := make([]Node, 0, n)
	queue = append(queue, source)
	dist[source] = 0
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dist[u]
		for _, v := range g.Neighbors(u) {
			if dist[v] == -1 {
				dist[v] = du + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// BFSDistancesInto is the method form of BFSDistances: hot loops that price
// many sources over an abstract adjacency (see internal/closeness) take a
// concrete implementation through a one-call-per-traversal interface
// instead of paying interface dispatch per dequeued node.
func (g *Graph) BFSDistancesInto(source Node, dist []int32) []int32 {
	return BFSDistances(g, source, dist)
}

// BFSDistancesAdj is BFSDistances over any Adjacency implementation. The
// inner loop dispatches Neighbors through the interface per node — fine for
// one-off traversals; hot loops should prefer a concrete implementation
// (BFSDistances, or bicomp.GroupedAdj.BFSDistancesInto).
func BFSDistancesAdj(g Adjacency, source Node, dist []int32) []int32 {
	n := g.NumNodes()
	if len(dist) != n {
		dist = make([]int32, n)
	}
	for i := range dist {
		dist[i] = -1
	}
	queue := make([]Node, 0, n)
	queue = append(queue, source)
	dist[source] = 0
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dist[u]
		for _, v := range g.Neighbors(u) {
			if dist[v] == -1 {
				dist[v] = du + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Eccentricity returns the maximum finite BFS distance from source.
func Eccentricity(g *Graph, source Node) int32 {
	dist := BFSDistances(g, source, nil)
	var ecc int32
	for _, d := range dist {
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// Diameter computes the exact diameter (longest shortest path over all
// reachable pairs) by running a BFS from every node. O(n*m); intended for
// small and medium graphs such as test fixtures and scaled-down datasets.
func Diameter(g *Graph) int32 {
	n := g.NumNodes()
	var diam int32
	dist := make([]int32, n)
	for u := 0; u < n; u++ {
		dist = BFSDistances(g, Node(u), dist)
		for _, d := range dist {
			if d > diam {
				diam = d
			}
		}
	}
	return diam
}

// ApproxDiameter lower-bounds the diameter with rounds of the double-sweep
// heuristic: BFS from a node, then BFS from the farthest node found. On most
// real-world graphs the bound is exact or within one or two hops. The
// returned value is always <= the true diameter.
func ApproxDiameter(g *Graph, rounds int, seed int64) int32 {
	n := g.NumNodes()
	if n == 0 {
		return 0
	}
	if rounds < 1 {
		rounds = 1
	}
	var best int32
	start := Node(seed % int64(n))
	if start < 0 {
		start = -start
	}
	dist := make([]int32, n)
	for r := 0; r < rounds; r++ {
		dist = BFSDistances(g, start, dist)
		far := start
		var fd int32
		for v, d := range dist {
			if d > fd {
				fd = d
				far = Node(v)
			}
		}
		if fd > best {
			best = fd
		}
		if far == start {
			break
		}
		start = far
	}
	return best
}

// DiameterUpperBound returns an upper bound on the diameter of the graph
// (max over connected components) via one BFS per component: the diameter of
// a component is at most twice the eccentricity of any of its nodes.
func DiameterUpperBound(g *Graph) int32 {
	n := g.NumNodes()
	visited := make([]bool, n)
	dist := make([]int32, n)
	var bound int32
	for start := 0; start < n; start++ {
		if visited[start] {
			continue
		}
		dist = BFSDistances(g, Node(start), dist)
		var ecc int32
		for v, d := range dist {
			if d >= 0 {
				visited[v] = true
				if d > ecc {
					ecc = d
				}
			}
		}
		if 2*ecc > bound {
			bound = 2 * ecc
		}
	}
	return bound
}

// SubsetDiameterUpperBound returns an upper bound on the diameter of the node
// subset A (the maximum pairwise distance between members of A), using the
// paper's bound VD(A) <= 2*max_{t in A} d(s, t) for any s in A (Section
// IV-C). Returns 0 for subsets of size < 2 and -1 if some pair of A is
// disconnected (infinite subset diameter).
func SubsetDiameterUpperBound(g *Graph, a []Node) int32 {
	if len(a) < 2 {
		return 0
	}
	dist := BFSDistances(g, a[0], nil)
	var far int32
	for _, t := range a {
		d := dist[t]
		if d == -1 {
			return -1
		}
		if d > far {
			far = d
		}
	}
	return 2 * far
}
