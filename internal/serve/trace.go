package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"time"

	"saphyra/internal/obs"
)

// reqState carries one request's telemetry through its handler: the trace
// (nil unless debug-requested or slow-query logging is armed), identity
// captured as the handler learns it (method, query key, generation), and
// the outcome-independent timing anchor is the wrapper's, not ours.
type reqState struct {
	endpoint string
	method   string
	key      [sha256.Size]byte
	hasKey   bool
	gen      uint64

	trace *obs.Trace
	root  *obs.Span
	debug bool // return the span tree in the response envelope
}

// serveTimed wraps one request handler with the whole telemetry lifecycle:
// trace creation, the root span, the per-outcome latency observation, and
// the slow-query log. fn returns the request's outcome label.
func (s *Server) serveTimed(w http.ResponseWriter, r *http.Request, endpoint string,
	fn func(http.ResponseWriter, *http.Request, *reqState) string) {
	start := time.Now()
	st := &reqState{endpoint: endpoint}
	r = s.beginTrace(r, st)
	outcome := fn(w, r, st)
	st.root.End() // no-op if attachTrace already closed it
	d := time.Since(start)
	s.m.latencyFor(outcome).Observe(d)
	if st.trace != nil {
		s.logSlow(st, outcome, d)
		st.trace.Unref()
	}
}

// beginTrace decides whether this request records spans: always when the
// client asked for a trace back (?trace=1 or a Trace-Id header), and
// whenever the slow-query log is armed — a request only known to be slow
// after the fact must have been recording all along. The common untraced
// request pays two header lookups and returns r unchanged; every
// obs.StartSpan below it is then a single atomic load.
func (s *Server) beginTrace(r *http.Request, st *reqState) *http.Request {
	id := r.Header.Get("Trace-Id")
	debug := id != ""
	if !debug && r.URL.RawQuery != "" {
		debug = r.URL.Query().Get("trace") == "1"
	}
	if !debug && s.cfg.SlowQueryThreshold <= 0 {
		return r
	}
	tr := obs.NewTrace(id)
	st.trace, st.debug = tr, debug
	ctx, root := obs.StartSpanIn(r.Context(), tr, "request")
	st.root = root
	return r.WithContext(ctx)
}

// attachTrace ends the root span and embeds the span tree into a response
// when the client asked for it. Called just before writeJSON on success
// paths; error bodies stay trace-free (the slow-query log still captures
// them).
func (st *reqState) attachTrace(resp *RankResponse) {
	if !st.debug || st.trace == nil {
		return
	}
	st.root.End()
	resp.Trace = st.trace.Snapshot()
}

// slowQueryEntry is one line of the slow-query log: structured JSON, one
// object per line, schema documented in DESIGN.md section 13.
type slowQueryEntry struct {
	Time       string         `json:"time"`
	Endpoint   string         `json:"endpoint"`
	Method     string         `json:"method,omitempty"`
	Outcome    string         `json:"outcome"`
	DurationMs float64        `json:"duration_ms"`
	Generation uint64         `json:"generation,omitempty"`
	QueryKey   string         `json:"query_key,omitempty"`
	TraceID    string         `json:"trace_id,omitempty"`
	Trace      *obs.TraceJSON `json:"trace"`
}

// logSlow emits one slow-query line when the request's wall time crossed
// the configured threshold. The span tree is snapshotted after the root
// span ended, so it accounts for the request end to end — a detached
// flight still running for other waiters shows up as an unfinished span
// with its duration so far.
func (s *Server) logSlow(st *reqState, outcome string, d time.Duration) {
	if s.cfg.SlowQueryThreshold <= 0 || d < s.cfg.SlowQueryThreshold || s.cfg.SlowQueryLog == nil {
		return
	}
	e := slowQueryEntry{
		Time:       time.Now().UTC().Format(time.RFC3339Nano),
		Endpoint:   st.endpoint,
		Method:     st.method,
		Outcome:    outcome,
		DurationMs: float64(d) / float64(time.Millisecond),
		Generation: st.gen,
		TraceID:    st.trace.ID(),
		Trace:      st.trace.Snapshot(),
	}
	if st.hasKey {
		e.QueryKey = hex.EncodeToString(st.key[:])
	}
	b, err := json.Marshal(&e)
	if err != nil {
		return
	}
	b = append(b, '\n')
	s.slowMu.Lock()
	s.cfg.SlowQueryLog.Write(b)
	s.slowMu.Unlock()
}
