package core

import (
	"context"

	"math"
	"testing"

	"saphyra/internal/exact"
	"saphyra/internal/graph"
	"saphyra/internal/testutil"
)

// When the target's personalized pair mass gamma*eta falls below epsilon,
// any risk value is within tolerance after rescaling, so the estimator must
// skip sampling entirely and stay correct.
func TestEstimateBCTrivialToleranceSkipsSampling(t *testing.T) {
	// A big clique with a small pendant path: target only the pendant
	// nodes, whose blocks carry a vanishing fraction of the pair mass.
	b := graph.NewBuilder(0)
	const k = 60
	for i := graph.Node(0); i < k; i++ {
		for j := i + 1; j < k; j++ {
			b.AddEdge(i, j)
		}
	}
	b.AddEdge(0, k)   // pendant path k - k+1
	b.AddEdge(k, k+1) // second pendant edge
	g := b.Build()
	truth := exact.BC(g)
	res, err := EstimateBC(context.Background(), g, []graph.Node{k, k + 1}, BCOptions{Epsilon: 0.2, Delta: 0.01, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.EpsStar < 1 {
		t.Skipf("fixture not trivial enough: epsStar = %g", res.EpsStar)
	}
	if res.Est.Samples != 0 {
		t.Errorf("samples = %d, want 0 when epsStar >= 1", res.Est.Samples)
	}
	for i, v := range res.Nodes {
		if math.Abs(res.BC[i]-truth[v]) > 0.2 {
			t.Errorf("node %d: est %g truth %g", v, res.BC[i], truth[v])
		}
	}
}

// A single-hypothesis target set exercises the k=1 paths of the delta
// allocation and the Bernstein loop.
func TestEstimateBCSingleTarget(t *testing.T) {
	g := testutil.RandomConnectedGraph(60, 90, 12)
	truth := exact.BC(g)
	for _, v := range []graph.Node{0, 13, 59} {
		res, err := EstimateBC(context.Background(), g, []graph.Node{v}, BCOptions{Epsilon: 0.05, Delta: 0.01, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.BC[0]-truth[v]) > 0.05 {
			t.Errorf("node %d: est %g truth %g", v, res.BC[0], truth[v])
		}
	}
}

// Workers exceeding the sample budget must not deadlock or change
// correctness.
func TestEstimateBCManyWorkers(t *testing.T) {
	g := testutil.RandomConnectedGraph(40, 60, 7)
	truth := exact.BC(g)
	res, err := EstimateBC(context.Background(), g, []graph.Node{1, 2, 3}, BCOptions{Epsilon: 0.1, Delta: 0.1, Seed: 2, Workers: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.Nodes {
		if math.Abs(res.BC[i]-truth[v]) > 0.1 {
			t.Errorf("node %d: est %g truth %g", v, res.BC[i], truth[v])
		}
	}
}

// The BCA vector returned in the result must match the out-reach module's
// values and be exact for cutpoints.
func TestEstimateBCReportsBCA(t *testing.T) {
	g := graph.Barbell(5, 4)
	p := PreprocessBC(g)
	var a []graph.Node
	for v := 0; v < g.NumNodes(); v++ {
		a = append(a, graph.Node(v))
	}
	res, err := p.EstimateBC(context.Background(), a, BCOptions{Epsilon: 0.1, Delta: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.Nodes {
		if want := p.O.BCA(v); res.BCA[i] != want {
			t.Errorf("bca(%d) = %g, want %g", v, res.BCA[i], want)
		}
	}
}

// MaxSamples below the initial budget must clamp cleanly.
func TestEstimateBCMaxSamplesBelowN0(t *testing.T) {
	g := testutil.RandomConnectedGraph(50, 120, 9)
	res, err := EstimateBC(context.Background(), g, []graph.Node{5, 10, 15}, BCOptions{
		Epsilon: 0.01, Delta: 0.01, Seed: 4, MaxSamples: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Est != nil && res.Est.Samples > 50 {
		t.Errorf("samples = %d exceeds cap 50", res.Est.Samples)
	}
}

// Gamma and Eta reported by the estimator must match the out-reach module.
func TestEstimateBCReportsGammaEta(t *testing.T) {
	g := testutil.RandomConnectedGraph(80, 100, 10)
	p := PreprocessBC(g)
	a := []graph.Node{2, 40, 79}
	res, err := p.EstimateBC(context.Background(), a, BCOptions{Epsilon: 0.1, Delta: 0.1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Gamma-p.O.Gamma()) > 1e-12 {
		t.Errorf("gamma = %g, want %g", res.Gamma, p.O.Gamma())
	}
	wantEta := p.O.Eta(p.O.BlocksOf(res.Nodes))
	if math.Abs(res.Eta-wantEta) > 1e-12 {
		t.Errorf("eta = %g, want %g", res.Eta, wantEta)
	}
}

// Estimates must always be valid betweenness values: in [0, 1] and zero for
// degree-<2 nodes.
func TestEstimateBCRangeInvariants(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		g := testutil.RandomConnectedGraph(40, 30, seed)
		var a []graph.Node
		for v := 0; v < 40; v += 2 {
			a = append(a, graph.Node(v))
		}
		res, err := EstimateBC(context.Background(), g, a, BCOptions{Epsilon: 0.1, Delta: 0.1, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range res.Nodes {
			if res.BC[i] < 0 || res.BC[i] > 1 {
				t.Errorf("seed %d: bc(%d) = %g outside [0,1]", seed, v, res.BC[i])
			}
			if g.Degree(v) < 2 && res.BC[i] != 0 {
				t.Errorf("seed %d: leaf %d has bc %g, want 0", seed, v, res.BC[i])
			}
		}
	}
}
