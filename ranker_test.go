package saphyra

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"math"
	"path/filepath"
	"testing"
)

// compareBitwise fails unless two results carry identical nodes, scores
// (bit for bit), ranks, and sample counts.
func compareBitwise(t *testing.T, name string, got, want *Result) {
	t.Helper()
	if got.Samples != want.Samples {
		t.Fatalf("%s: samples %d != %d", name, got.Samples, want.Samples)
	}
	if len(got.Nodes) != len(want.Nodes) {
		t.Fatalf("%s: %d nodes, want %d", name, len(got.Nodes), len(want.Nodes))
	}
	for i := range want.Nodes {
		if got.Nodes[i] != want.Nodes[i] {
			t.Fatalf("%s: node[%d] = %d, want %d", name, i, got.Nodes[i], want.Nodes[i])
		}
		if got.Scores[i] != want.Scores[i] {
			t.Fatalf("%s: score[%d] = %v, want %v — not bitwise-identical", name, i, got.Scores[i], want.Scores[i])
		}
		if got.Rank[i] != want.Rank[i] {
			t.Fatalf("%s: rank[%d] = %d, want %d", name, i, got.Rank[i], want.Rank[i])
		}
	}
}

// TestRankerBitwiseEqualsDeprecatedWrappers is the redesign's
// bit-preservation gate: every deprecated wrapper and its Ranker.Rank
// equivalent must produce bitwise-identical results — on the in-memory
// graph and on a reopened view, for every measure and algorithm.
func TestRankerBitwiseEqualsDeprecatedWrappers(t *testing.T) {
	g := Generate.BarabasiAlbert(600, 3, 11)
	targets := []Node{3, 77, 300, 599}
	opt := Options{Epsilon: 0.05, Delta: 0.05, Seed: 5, Workers: 4}
	ctx := context.Background()
	r := NewRanker(g)

	// Betweenness, all three algorithms.
	for _, m := range []Method{MethodSaPHyRa, MethodABRA, MethodKADABRA} {
		o := opt
		o.Method = m
		want, err := RankSubset(g, targets, o)
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.Rank(ctx, Query{
			Measure: Betweenness, Algorithm: Algorithm(m), Targets: targets,
			Epsilon: opt.Epsilon, Delta: opt.Delta, Seed: opt.Seed, Workers: opt.Workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		compareBitwise(t, "bc/"+m.String(), got, want)
	}

	// K-path and closeness.
	wantKP, err := RankKPath(g, targets, 4, opt)
	if err != nil {
		t.Fatal(err)
	}
	gotKP, err := r.Rank(ctx, Query{
		Measure: KPath, Targets: targets, K: 4,
		Epsilon: opt.Epsilon, Delta: opt.Delta, Seed: opt.Seed, Workers: opt.Workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	compareBitwise(t, "kpath", gotKP, wantKP)

	wantCL, err := RankCloseness(g, targets, opt)
	if err != nil {
		t.Fatal(err)
	}
	gotCL, err := r.Rank(ctx, Query{
		Measure: Closeness, Targets: targets,
		Epsilon: opt.Epsilon, Delta: opt.Delta, Seed: opt.Seed, Workers: opt.Workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	compareBitwise(t, "closeness", gotCL, wantCL)

	// RankAll == empty Query.Targets.
	wantAll, err := RankAll(g, Options{Epsilon: 0.1, Delta: 0.1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	gotAll, err := r.Rank(ctx, Query{Measure: Betweenness, Epsilon: 0.1, Delta: 0.1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	compareBitwise(t, "rankall", gotAll, wantAll)

	// The view-served Ranker against the view-served wrappers.
	path := filepath.Join(t.TempDir(), "g.sbcv")
	if err := BuildView(g, nil).WriteFile(path); err != nil {
		t.Fatal(err)
	}
	view, err := OpenView(path)
	if err != nil {
		t.Fatal(err)
	}
	defer view.Close()
	vr := view.Ranker()

	wantVBC, err := view.Preprocess().RankSubset(targets, opt)
	if err != nil {
		t.Fatal(err)
	}
	gotVBC, err := vr.Rank(ctx, Query{
		Measure: Betweenness, Targets: targets,
		Epsilon: opt.Epsilon, Delta: opt.Delta, Seed: opt.Seed, Workers: opt.Workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	compareBitwise(t, "view/bc", gotVBC, wantVBC)
	compareBitwise(t, "view-vs-graph/bc", gotVBC, func() *Result {
		o := opt
		res, err := RankSubset(g, targets, o)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}())

	wantVKP, err := view.RankKPath(targets, 4, opt)
	if err != nil {
		t.Fatal(err)
	}
	gotVKP, err := vr.Rank(ctx, Query{
		Measure: KPath, Targets: targets, K: 4,
		Epsilon: opt.Epsilon, Delta: opt.Delta, Seed: opt.Seed, Workers: opt.Workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	compareBitwise(t, "view/kpath", gotVKP, wantVKP)

	wantVCL, err := view.RankCloseness(targets, opt)
	if err != nil {
		t.Fatal(err)
	}
	gotVCL, err := vr.Rank(ctx, Query{
		Measure: Closeness, Targets: targets,
		Epsilon: opt.Epsilon, Delta: opt.Delta, Seed: opt.Seed, Workers: opt.Workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	compareBitwise(t, "view/closeness", gotVCL, wantVCL)
}

// TestQueryKeySubsumesLegacyComposition pins, byte for byte, that a
// betweenness Query.Key is the sha256 of exactly the documented layout over
// the legacy (Options.Canonical, TargetSetHash) composition — the migration
// contract for caches that keyed on the old pair. (For kpath the key also
// covers K, which the legacy pair never did; see the query package tests.)
func TestQueryKeySubsumesLegacyComposition(t *testing.T) {
	targets := []Node{9, 1, 5, 1}
	opt := Options{Epsilon: 0.1, Delta: 0.02, Seed: 9, Workers: 7, Method: MethodKADABRA}

	// The legacy composition, digested in the documented Query.Key layout.
	c := opt.Canonical()
	h := TargetSetHash(targets)
	var b []byte
	b = append(b, "saphyra.Query/v1"...)
	b = append(b, byte(Betweenness), byte(Algorithm(c.Method)))
	b = binary.LittleEndian.AppendUint32(b, 0) // K: never set for betweenness
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(c.Epsilon))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(c.Delta))
	b = binary.LittleEndian.AppendUint64(b, uint64(c.Seed))
	b = append(b, 0) // explicit target set
	b = append(b, h[:]...)
	b = binary.LittleEndian.AppendUint32(b, 3) // canonical target count
	want := sha256.Sum256(b)

	q := Query{
		Measure: Betweenness, Algorithm: Algorithm(opt.Method), Targets: targets,
		Epsilon: opt.Epsilon, Delta: opt.Delta, Seed: opt.Seed, Workers: opt.Workers,
	}
	if q.Key() != want {
		t.Fatal("Query.Key diverged from the documented legacy-composition digest")
	}
}

// TestDeprecatedWrappersRejectEmptyTargets: Ranker.Rank reads an empty
// target set as "whole network", but the legacy wrappers documented it as
// an error — the migration must not silently turn a bug into a full-network
// computation.
func TestDeprecatedWrappersRejectEmptyTargets(t *testing.T) {
	g := Generate.Grid2D(3, 3)
	if _, err := RankSubset(g, nil, Options{}); err == nil {
		t.Error("RankSubset(nil) accepted")
	}
	if _, err := Preprocess(g).RankSubset(nil, Options{}); err == nil {
		t.Error("Preprocessed.RankSubset(nil) accepted")
	}
	if _, err := RankKPath(g, nil, 3, Options{}); err == nil {
		t.Error("RankKPath(nil) accepted")
	}
	if _, err := RankCloseness(g, nil, Options{}); err == nil {
		t.Error("RankCloseness(nil) accepted")
	}
}
