package hist

import (
	"math/rand/v2"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestBucketBoundaries pins the bucket layout: indices are monotone in the
// value, every value lands in a bucket whose upper bound is >= the value,
// and the bucket width obeys the advertised relative error.
func TestBucketBoundaries(t *testing.T) {
	if got := bucketOf(0); got != 0 {
		t.Fatalf("bucketOf(0) = %d", got)
	}
	if got := bucketOf(-5); got != 0 {
		t.Fatalf("bucketOf(-5) = %d, want clamp to 0", got)
	}
	prev := -1
	for _, ns := range []int64{0, 1, 31, 32, 33, 63, 64, 100, 1000, 1 << 20, 1<<62 + 12345} {
		b := bucketOf(ns)
		if b < prev {
			t.Fatalf("bucketOf(%d) = %d < previous bucket %d: not monotone", ns, b, prev)
		}
		prev = b
		ub := upperBound(b)
		if ub < ns {
			t.Fatalf("upperBound(bucketOf(%d)) = %d < value", ns, ub)
		}
		// Width bound: the upper bound overshoots by at most 1/subBuckets of
		// the value (plus 1ns granularity in the exact region).
		if over := float64(ub-ns) / float64(max64(ns, 1)); over > RelativeError()+1e-9 && ub-ns > 1 {
			t.Fatalf("value %d: upper bound %d overshoots by %.4f > %.4f", ns, ub, over, RelativeError())
		}
	}
	// Exhaustive round-trip over the exact region and octave seams.
	for ns := int64(0); ns < 4096; ns++ {
		b := bucketOf(ns)
		if upperBound(b) < ns {
			t.Fatalf("upperBound(bucketOf(%d)) = %d < value", ns, upperBound(b))
		}
		if b > 0 && upperBound(b-1) >= ns {
			t.Fatalf("value %d also fits bucket %d (ub %d): buckets overlap", ns, b-1, upperBound(b-1))
		}
	}
}

// TestQuantileMatchesSortedReference is the satellite acceptance test: on
// random data the histogram quantile must match the exact sort-based order
// statistic to within one bucket's relative error — the contract that let
// the serving bench drop its sort-every-sample percentiles.
func TestQuantileMatchesSortedReference(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 0))
	for trial, gen := range []func() int64{
		func() int64 { return rng.Int64N(1000) },                    // tiny (exact region + low octaves)
		func() int64 { return int64(rng.ExpFloat64() * 5e6) },       // exponential ~5ms
		func() int64 { return 1000 + rng.Int64N(int64(time.Hour)) }, // huge range
	} {
		var h Histogram
		vals := make([]int64, 20000)
		for i := range vals {
			vals[i] = gen()
			h.Observe(time.Duration(vals[i]))
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		for _, q := range []float64{0, 0.5, 0.9, 0.99, 0.999, 1} {
			rank := int(float64(len(vals)) * q)
			if rank < 1 {
				rank = 1
			}
			exact := vals[rank-1]
			got := int64(h.Quantile(q))
			if got < exact {
				t.Errorf("trial %d q%.3f: histogram %d < exact %d (quantile must never understate)", trial, q, got, exact)
			}
			slack := int64(float64(exact)*RelativeError()) + 1
			if got > exact+slack {
				t.Errorf("trial %d q%.3f: histogram %d > exact %d + slack %d", trial, q, got, exact, slack)
			}
		}
		if mean := h.Mean(); mean <= 0 {
			t.Errorf("trial %d: mean %v", trial, mean)
		}
	}
}

// TestQuantileEdgeCases covers the empty histogram and q clamping.
func TestQuantileEdgeCases(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v", got)
	}
	h.Observe(100)
	if got, want := h.Quantile(-1), h.Quantile(0); got != want {
		t.Fatalf("q=-1 gave %v, q=0 gave %v", got, want)
	}
	if got, want := h.Quantile(2), h.Quantile(1); got != want {
		t.Fatalf("q=2 gave %v, q=1 gave %v", got, want)
	}
}

// TestRecorderOutcomes pins the outcome bookkeeping: Served holds only
// 200s, rates sum to 1, and out-of-range outcomes fold into Error.
func TestRecorderOutcomes(t *testing.T) {
	var r Recorder
	r.Observe(OK, 10*time.Microsecond)
	r.Observe(OK, 20*time.Microsecond)
	r.Observe(Degraded, 30*time.Microsecond)
	r.Observe(Shed, time.Microsecond)
	r.Observe(Deadline, time.Second)
	r.Observe(ClientClosed, time.Millisecond)
	r.Observe(Outcome(99), time.Millisecond) // folds into Error
	if got := r.Total(); got != 7 {
		t.Fatalf("Total = %d", got)
	}
	if got := r.Served.Count(); got != 3 {
		t.Fatalf("Served.Count = %d, want only ok+degraded", got)
	}
	want := map[Outcome]int64{OK: 2, Degraded: 1, Shed: 1, Deadline: 1, ClientClosed: 1, Error: 1}
	var sum float64
	for _, o := range Outcomes() {
		if got := r.Count(o); got != want[o] {
			t.Errorf("Count(%v) = %d, want %d", o, got, want[o])
		}
		sum += r.Rate(o)
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("outcome rates sum to %v", sum)
	}
	if got := r.Count(Outcome(-1)); got != 0 {
		t.Errorf("Count(-1) = %d", got)
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines; the
// total and sum must be exact (the whole point of the atomic design), and
// the run doubles as the -race exercise.
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(w*per + i))
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != workers*per {
		t.Fatalf("Count = %d, want %d", got, workers*per)
	}
	wantSum := int64(workers*per) * int64(workers*per-1) / 2
	if got := int64(h.Mean()) * int64(h.Count()); got < wantSum-int64(h.Count()) || got > wantSum {
		t.Fatalf("Mean*Count = %d, want ~%d (sum must be exact up to division truncation)", got, wantSum)
	}
}

// TestSumExact pins Sum: exact under concurrency-free observation (the
// concurrent case is covered via Mean in TestHistogramConcurrent, which
// reads the same atomic).
func TestSumExact(t *testing.T) {
	var h Histogram
	var want int64
	for _, v := range []int64{0, 1, 31, 1000, 1 << 30} {
		h.Observe(time.Duration(v))
		want += v
	}
	if got := h.Sum(); got != want {
		t.Fatalf("Sum = %d, want %d", got, want)
	}
}

// TestCumulativeAt pins the coalescing contract the Prometheus renderer
// builds on: out[i] counts observations whose fine bucket's upper bound is
// <= edges[i], cumulatives are monotone, and the returned total drains
// every bucket — including those past the last edge — so the renderer's
// "+Inf == _count" invariant holds by construction.
func TestCumulativeAt(t *testing.T) {
	var h Histogram
	// Exact-region values (ns < 2^subBits octaves are bucket-exact), one
	// mid-range value, one past the last edge.
	for _, v := range []int64{1, 1, 5, 10, 1000, 1 << 40} {
		h.Observe(time.Duration(v))
	}
	edges := []int64{1, 8, 2000, 1 << 20}
	out := make([]int64, len(edges))
	total := h.CumulativeAt(edges, out)
	if total != h.Count() {
		t.Fatalf("total %d != Count %d", total, h.Count())
	}
	// 1,1 <= 1; +5 <= 8; +10,1000 <= 2000 (1000 rounds up within one
	// relative-error bucket, still far below 2000); nothing new <= 1<<20.
	want := []int64{2, 3, 5, 5}
	for i := range edges {
		if out[i] != want[i] {
			t.Errorf("cum[%d] (edge %d) = %d, want %d", i, edges[i], out[i], want[i])
		}
		if i > 0 && out[i] < out[i-1] {
			t.Errorf("cumulative decreased at edge %d", edges[i])
		}
	}
	if out[len(out)-1] > total {
		t.Error("last cumulative exceeds the drained total")
	}

	// Empty edge list still drains the total.
	if got := h.CumulativeAt(nil, nil); got != h.Count() {
		t.Errorf("CumulativeAt(nil) = %d, want %d", got, h.Count())
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
