// Package stats implements the statistical machinery of the SaPHyRa
// framework: the empirical Bernstein inequality (Lemma 3, from Maurer &
// Pontil [13]), its inverse for error-probability allocation (Eq 13-15), the
// VC sample-size bound (Lemma 4), and small accumulators used by the
// adaptive sampler.
package stats

import (
	"math"
)

// VCConstant is the constant c of Lemma 4 ("approximately 0.5").
const VCConstant = 0.5

// EpsilonBernstein returns the one-sided empirical Bernstein deviation bound
// of Lemma 3 for N samples with sample variance v and failure probability
// delta0:
//
//	eps = sqrt(2 v ln(2/delta0) / N) + 7 ln(2/delta0) / (3N).
//
// It panics on invalid inputs only via math functions (callers validate).
func EpsilonBernstein(n int64, delta0, variance float64) float64 {
	if n <= 0 || delta0 <= 0 {
		return math.Inf(1)
	}
	// ln(2/delta0) computed as ln 2 - ln delta0: the naive quotient
	// overflows to +Inf for subnormal delta0 (which the DeltaForEpsilon
	// inverse legitimately produces for very tight epsilon targets).
	l := math.Ln2 - math.Log(delta0)
	return math.Sqrt(2*variance*l/float64(n)) + 7*l/(3*float64(n))
}

// DeltaForEpsilon inverts EpsilonBernstein: it returns the largest delta0
// such that EpsilonBernstein(n, delta0, variance) <= eps. Closed form: with
// L = ln(2/delta0), a = sqrt(2v/N), b = 7/(3N), solving a sqrt(L) + b L = eps
// gives sqrt(L) = 2 eps / (a + sqrt(a^2 + 4 b eps)) — the numerically stable
// root (the textbook (-a + sqrt(...))/(2b) form cancels catastrophically
// when a^2 >> 4 b eps).
func DeltaForEpsilon(n int64, variance, eps float64) float64 {
	if n <= 0 || eps <= 0 {
		return 0
	}
	a := math.Sqrt(2 * variance / float64(n))
	b := 7.0 / (3 * float64(n))
	y := 2 * eps / (a + math.Sqrt(a*a+4*b*eps))
	l := y * y
	if l > 700 {
		// delta would be subnormal (< ~1e-304): too few mantissa bits to
		// invert accurately, and meaningless as a failure probability.
		// Report "unachievable" instead.
		return 0
	}
	d := 2 * math.Exp(-l)
	if d > 1 {
		d = 1
	}
	return d
}

// EpsilonHoeffding returns the Hoeffding deviation bound for N samples in
// [0,1] with two-sided failure probability delta0.
func EpsilonHoeffding(n int64, delta0 float64) float64 {
	if n <= 0 {
		return math.Inf(1)
	}
	return math.Sqrt(math.Log(2/delta0) / (2 * float64(n)))
}

// VCSampleSize returns the Lemma 4 sample budget sufficient for an
// (eps, delta)-estimation of a hypothesis class with VC dimension dim:
//
//	N = ceil( c/eps^2 * (dim + ln(1/delta)) ),  c = VCConstant.
func VCSampleSize(eps, delta float64, dim int) int64 {
	if eps <= 0 {
		return math.MaxInt64
	}
	n := VCConstant / (eps * eps) * (float64(dim) + math.Log(1/delta))
	if n < 1 {
		return 1
	}
	return int64(math.Ceil(n))
}

// UnionSampleSize returns the direct-estimation budget of Section II-A for k
// hypotheses: O(1/eps^2 (ln k + ln 1/delta)) with the same constant c, via a
// Hoeffding + union bound argument.
func UnionSampleSize(eps, delta float64, k int) int64 {
	if eps <= 0 {
		return math.MaxInt64
	}
	if k < 1 {
		k = 1
	}
	n := VCConstant / (eps * eps) * (math.Log(float64(k)) + math.Log(1/delta))
	if n < 1 {
		return 1
	}
	return int64(math.Ceil(n))
}

// BernoulliSampleVariance returns the unbiased sample variance of a 0/1
// vector with the given number of ones among n draws. It equals the paper's
// pairwise form Var(z) = sum_{j1<j2} (z_j1 - z_j2)^2 / (N(N-1)).
func BernoulliSampleVariance(ones, n int64) float64 {
	if n < 2 {
		return 0
	}
	return float64(ones) * float64(n-ones) / (float64(n) * float64(n-1))
}

// MeanVar is an accumulator of bounded samples supporting mean and unbiased
// sample variance. The zero value is ready to use.
type MeanVar struct {
	n          int64
	sum, sumSq float64
}

// Add records one sample.
func (m *MeanVar) Add(x float64) {
	m.n++
	m.sum += x
	m.sumSq += x * x
}

// AddWeighted records `count` identical samples of value x (used to fold in
// Bernoulli batches cheaply).
func (m *MeanVar) AddWeighted(x float64, count int64) {
	m.n += count
	m.sum += x * float64(count)
	m.sumSq += x * x * float64(count)
}

// N returns the number of recorded samples.
func (m *MeanVar) N() int64 { return m.n }

// Mean returns the sample mean (0 when empty).
func (m *MeanVar) Mean() float64 {
	if m.n == 0 {
		return 0
	}
	return m.sum / float64(m.n)
}

// Variance returns the unbiased sample variance (0 for n < 2).
func (m *MeanVar) Variance() float64 {
	if m.n < 2 {
		return 0
	}
	v := (m.sumSq - m.sum*m.sum/float64(m.n)) / float64(m.n-1)
	if v < 0 { // float round-off
		return 0
	}
	return v
}

// Merge folds another accumulator into m (for parallel workers).
func (m *MeanVar) Merge(o *MeanVar) {
	m.n += o.n
	m.sum += o.sum
	m.sumSq += o.sumSq
}
