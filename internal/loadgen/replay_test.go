package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"saphyra"
	"saphyra/internal/loadgen/hist"
	"saphyra/internal/serve"
	"saphyra/internal/workload"
)

func clientFor(base string) *workload.Client { return &workload.Client{Base: base} }

func nextAfter(v float64) float64 { return math.Nextafter(v, math.Inf(1)) }

// replayTarget builds a small view, serves it in-process, and returns the
// pieces a replay needs. The httptest server gives the runner a real HTTP
// hop, same as a live daemon.
func replayTarget(t *testing.T) (base, viewPath string, ids []int64) {
	t.Helper()
	g := saphyra.Generate.BarabasiAlbert(600, 3, 9)
	viewPath = filepath.Join(t.TempDir(), "replay.sbcv")
	if err := saphyra.BuildView(g, nil).WriteFile(viewPath); err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(viewPath, serve.Config{DefaultTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	ids = make([]int64, g.NumNodes())
	for i := range ids {
		ids[i] = int64(i)
	}
	return hs.URL, viewPath, ids
}

// TestReplaySmokeHitDominated is the CI regression gate from the issue: a
// ~2s in-process replay of the hit-dominated mix must meet its SLO, and
// every sampled 200 must be bitwise-equal to the library reference for its
// reported contract. A latency regression in the cache or admission path,
// or any response whose bits drift from the (eps, delta, seed) contract,
// fails this test — and with it the build.
func TestReplaySmokeHitDominated(t *testing.T) {
	base, viewPath, ids := replayTarget(t)
	verifier, err := NewVerifier(viewPath)
	if err != nil {
		t.Fatal(err)
	}
	defer verifier.Close()

	m := HitDominated()
	s, err := Build(m, ids, 1)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(context.Background(), s, Options{
		Base: base, Warm: true, VerifyEvery: 5, Verifier: verifier,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("hit-dominated: %d requests, p50 %.2fms p99 %.2fms p999 %.2fms, hit %.2f shed %.4f err %.4f, verified %d",
		r.Requests, r.P50Ms, r.P99Ms, r.P999Ms, r.HitRate, r.ShedRate, r.ErrorRate, r.Verified)
	for _, v := range r.SLOViolations {
		t.Errorf("SLO violation: %s", v)
	}
	if r.VerifyFailed > 0 {
		t.Errorf("%d of %d sampled responses failed bitwise verification: %v",
			r.VerifyFailed, r.Verified, r.VerifyErrors)
	}
	if !r.Pass {
		t.Error("report not marked Pass")
	}
	if r.Verified < 50 {
		t.Errorf("only %d responses verified; the sample is too thin to gate on", r.Verified)
	}
	if r.HitRate < 0.8 {
		t.Errorf("hit rate %.2f < 0.8: the warmed zipf working set is not hitting the cache", r.HitRate)
	}
	if r.Requests < 500 {
		t.Errorf("only %d requests scheduled", r.Requests)
	}
}

// TestReplayReloadStorm replays the hit-dominated mix under a rolling
// reload storm at a compressed clock: reloads must actually happen, the
// run must stay inside the storm SLO, and — the core soundness claim —
// responses served across generation churn still verify bitwise, because
// every generation maps the same view file.
func TestReplayReloadStorm(t *testing.T) {
	base, viewPath, ids := replayTarget(t)
	verifier, err := NewVerifier(viewPath)
	if err != nil {
		t.Fatal(err)
	}
	defer verifier.Close()

	m := ReloadStorm().Scale(300, 1200*time.Millisecond)
	s, err := Build(m, ids, 2)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(context.Background(), s, Options{
		Base: base, Warm: true, VerifyEvery: 4, Verifier: verifier,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("reload-storm: %d requests, %d reloads, p99 %.2fms, shed %.4f err %.4f, verified %d (%d failed)",
		r.Requests, r.Reloads, r.P99Ms, r.ShedRate, r.ErrorRate, r.Verified, r.VerifyFailed)
	if r.Reloads == 0 {
		t.Error("no reloads executed: the storm never hit the server")
	}
	for _, v := range r.SLOViolations {
		t.Errorf("SLO violation: %s", v)
	}
	if r.VerifyFailed > 0 {
		t.Errorf("%d responses failed bitwise verification across reloads: %v", r.VerifyFailed, r.VerifyErrors)
	}
}

// TestInstrumentationOverheadGate is the telemetry bench gate: the
// cache-hit p99 of a server with tracing armed on every request (slow-query
// log at an unreachable threshold — the worst production telemetry cost)
// must stay within 20% of an uninstrumented server's. Requests go straight
// into ServeHTTP so the gate measures the serving stack, not loopback
// jitter; min-of-rounds p99 filters scheduler and GC noise from both sides.
func TestInstrumentationOverheadGate(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	g := saphyra.Generate.BarabasiAlbert(2000, 4, 21)
	viewPath := filepath.Join(t.TempDir(), "gate.sbcv")
	if err := saphyra.BuildView(g, nil).WriteFile(viewPath); err != nil {
		t.Fatal(err)
	}
	newSrv := func(cfg serve.Config) *serve.Server {
		cfg.DisablePrecompute = true
		srv, err := serve.New(viewPath, cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		return srv
	}
	plain := newSrv(serve.Config{})
	instr := newSrv(serve.Config{SlowQueryThreshold: time.Hour, SlowQueryLog: io.Discard})

	body, err := json.Marshal(serve.RankRequest{
		Method: serve.MethodSaPHyRa, Targets: []int64{17, 99, 512},
		Eps: 0.1, Delta: 0.1, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	serveOne := func(h http.Handler, rec *hist.Histogram) {
		w := httptest.NewRecorder()
		start := time.Now()
		h.ServeHTTP(w, httptest.NewRequest("POST", "/v1/rank", bytes.NewReader(body)))
		rec.Observe(time.Since(start))
		if w.Code != http.StatusOK {
			t.Fatalf("status %d: %s", w.Code, w.Body.String())
		}
	}
	// One round serves both handlers strictly interleaved, so scheduler and
	// GC noise land on both sides of the comparison alike.
	p99Pair := func(n int) (plainP99, instrP99 time.Duration) {
		var rp, ri hist.Histogram
		for i := 0; i < n; i++ {
			serveOne(plain.Handler(), &rp)
			serveOne(instr.Handler(), &ri)
		}
		return rp.Quantile(0.99), ri.Quantile(0.99)
	}
	p99Pair(100) // warm caches and page mappings

	const rounds, per = 5, 2000
	minPlain, minInstr := time.Duration(1<<62), time.Duration(1<<62)
	for r := 0; r < rounds; r++ {
		p, i := p99Pair(per)
		minPlain, minInstr = min(minPlain, p), min(minInstr, i)
	}
	ratio := float64(minInstr) / float64(minPlain)
	t.Logf("cache-hit p99: uninstrumented %v, instrumented %v (%.2fx)", minPlain, minInstr, ratio)
	if ratio > 1.20 {
		t.Errorf("instrumented cache-hit p99 %v is %.2fx the uninstrumented %v, want <= 1.20x",
			minInstr, ratio, minPlain)
	}
}

// TestRunRejectsBadOptions pins the runner's option contract.
func TestRunRejectsBadOptions(t *testing.T) {
	s, err := Build(HitDominated(), testIDs(50), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), s, Options{}); err == nil {
		t.Error("Run accepted an empty Base")
	}
	if _, err := Run(context.Background(), s, Options{Base: "http://x", VerifyEvery: 3}); err == nil {
		t.Error("Run accepted VerifyEvery without a Verifier")
	}
}

// TestVerifierCatchesCorruption proves the bitwise gate has teeth: a
// response whose score bits are perturbed by one ULP, or whose rank rows
// are swapped, must fail verification.
func TestVerifierCatchesCorruption(t *testing.T) {
	base, viewPath, ids := replayTarget(t)
	verifier, err := NewVerifier(viewPath)
	if err != nil {
		t.Fatal(err)
	}
	defer verifier.Close()

	// Fetch one honest response through the client.
	m := HitDominated()
	s, err := Build(m, ids, 1)
	if err != nil {
		t.Fatal(err)
	}
	var ev *Event
	for i := range s.Events {
		if s.Events[i].Kind == EventRank {
			ev = &s.Events[i]
			break
		}
	}
	cl := clientFor(base)
	resp, err := cl.RankOnce(context.Background(), serve.RankRequest{
		Method: ev.Method, Targets: ev.Targets,
		Eps: ev.Eps, Delta: ev.Delta, K: ev.K, Seed: ev.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := verifier.Check(ev.Kind, resp); err != nil {
		t.Fatalf("honest response failed verification: %v", err)
	}

	// One-ULP score corruption.
	good := resp.Scores[0]
	resp.Scores[0] = nextAfter(good)
	if err := verifier.Check(ev.Kind, resp); err == nil {
		t.Error("verifier accepted a 1-ULP score perturbation")
	}
	resp.Scores[0] = good

	// Rank-row swap.
	if len(resp.Ranks) >= 2 {
		resp.Ranks[0], resp.Ranks[1] = resp.Ranks[1], resp.Ranks[0]
		if err := verifier.Check(ev.Kind, resp); err == nil {
			t.Error("verifier accepted swapped rank rows")
		}
	}
}
