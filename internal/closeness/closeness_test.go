package closeness

import (
	"context"

	"math"
	"testing"

	"saphyra/internal/graph"
	"saphyra/internal/rank"
	"saphyra/internal/testutil"
)

func TestExactPath(t *testing.T) {
	// P3: ends have (1 + 1/2)/2 = 0.75, middle has (1+1)/2 = 1.
	g := graph.Path(3)
	c := Exact(g)
	if math.Abs(c[0]-0.75) > 1e-12 || math.Abs(c[2]-0.75) > 1e-12 {
		t.Errorf("ends = %g, %g, want 0.75", c[0], c[2])
	}
	if math.Abs(c[1]-1) > 1e-12 {
		t.Errorf("middle = %g, want 1", c[1])
	}
}

func TestExactDisconnected(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	g := b.Build()
	c := Exact(g)
	// each of {0,1} reaches only the other: 1/(n-1) = 1/3
	if math.Abs(c[0]-1.0/3) > 1e-12 {
		t.Errorf("c[0] = %g, want 1/3", c[0])
	}
	if c[2] != 0 || c[3] != 0 {
		t.Error("isolated nodes should have closeness 0")
	}
}

func TestEstimateWithinEpsilon(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		g := testutil.RandomConnectedGraph(40, 40, seed)
		truth := Exact(g)
		var a []graph.Node
		for v := 0; v < 40; v += 4 {
			a = append(a, graph.Node(v))
		}
		res, err := Estimate(context.Background(), g, a, Options{Epsilon: 0.05, Delta: 0.01, Seed: seed, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range res.Nodes {
			if math.Abs(res.Closeness[i]-truth[v]) > 0.05 {
				t.Errorf("seed %d node %d: est %g truth %g", seed, v, res.Closeness[i], truth[v])
			}
		}
	}
}

func TestEstimateRankQuality(t *testing.T) {
	g := graph.BarabasiAlbert(200, 3, 6)
	truth := Exact(g)
	var a []graph.Node
	var truthA []float64
	var ids []int32
	for v := 0; v < 200; v += 5 {
		a = append(a, graph.Node(v))
		truthA = append(truthA, truth[v])
		ids = append(ids, int32(v))
	}
	res, err := Estimate(context.Background(), g, a, Options{Epsilon: 0.02, Delta: 0.01, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	rho := rank.Spearman(truthA, res.Closeness, ids)
	if rho < 0.9 {
		t.Errorf("closeness rank correlation = %g, want >= 0.9", rho)
	}
}

func TestEstimateErrors(t *testing.T) {
	g := graph.Cycle(5)
	if _, err := Estimate(context.Background(), g, nil, Options{}); err == nil {
		t.Error("empty targets: want error")
	}
	if _, err := Estimate(context.Background(), g, []graph.Node{0}, Options{Epsilon: 2}); err == nil {
		t.Error("bad epsilon: want error")
	}
	tiny := graph.NewBuilder(1).Build()
	if _, err := Estimate(context.Background(), tiny, []graph.Node{0}, Options{}); err == nil {
		t.Error("tiny graph: want error")
	}
}

func TestEstimateMaxSamplesCap(t *testing.T) {
	g := graph.Cycle(30)
	res, err := Estimate(context.Background(), g, []graph.Node{0, 7, 15}, Options{Epsilon: 0.01, Delta: 0.01, Seed: 1, MaxSamples: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples > 100 {
		t.Errorf("samples = %d exceeds cap", res.Samples)
	}
}

func TestEstimateDeterministic(t *testing.T) {
	g := graph.BarabasiAlbert(100, 3, 4)
	opt := Options{Epsilon: 0.05, Delta: 0.05, Seed: 21, Workers: 2}
	a := []graph.Node{1, 2, 3}
	r1, err := Estimate(context.Background(), g, a, opt)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Estimate(context.Background(), g, a, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Closeness {
		if r1.Closeness[i] != r2.Closeness[i] {
			t.Error("nondeterministic closeness estimate")
		}
	}
}
