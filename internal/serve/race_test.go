package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"saphyra"
)

// TestServeConcurrentHammerWithReloads is the serving determinism gate (run
// under -race by CI): many goroutines hammer /v1/rank and /v1/topk — mixing
// cache hits, misses, singleflight collapses, and LRU evictions (the cache
// is deliberately tiny) — while another goroutine hot-reloads the view
// concurrently. Every single response, whatever its generation and however
// it was served, must be bitwise-identical to a direct library call on the
// same view file; the reload protocol must never let a query observe an
// unmapped page (that would crash, not mis-score) nor a cache entry cross
// generations.
func TestServeConcurrentHammerWithReloads(t *testing.T) {
	g := saphyra.Generate.BarabasiAlbert(300, 3, 21)
	s, ids := newTestServer(t, g, Config{
		CacheEntries:   3, // force evictions so recomputation paths stay hot
		MaxInFlight:    4,
		DefaultEpsilon: 0.1,
		DefaultDelta:   0.05,
	})

	// Reference results straight from the library on the same file — the
	// contract is: the service may cache, collapse, throttle, and reload,
	// but never change a single bit of any answer.
	view, err := saphyra.OpenView(s.viewPath)
	if err != nil {
		t.Fatal(err)
	}
	defer view.Close()
	opt := saphyra.Options{Epsilon: 0.1, Delta: 0.05, Seed: 4}
	type variant struct {
		req  RankRequest
		want *saphyra.Result
	}
	denseSets := [][]saphyra.Node{
		{2, 77, 150},
		{0, 1, 2, 3, 250},
		{42},
	}
	var variants []variant
	prep := view.Preprocess()
	for _, dense := range denseSets {
		raw := make([]int64, len(dense))
		for i, v := range dense {
			raw[i] = ids[v]
		}
		bc, err := prep.RankSubset(dense, opt)
		if err != nil {
			t.Fatal(err)
		}
		kp, err := view.RankKPath(dense, 3, opt)
		if err != nil {
			t.Fatal(err)
		}
		cl, err := view.RankCloseness(dense, opt)
		if err != nil {
			t.Fatal(err)
		}
		variants = append(variants,
			variant{RankRequest{Method: MethodSaPHyRa, Targets: raw, Eps: 0.1, Delta: 0.05, Seed: 4}, bc},
			variant{RankRequest{Method: MethodKPath, Targets: raw, Eps: 0.1, Delta: 0.05, Seed: 4, K: 3}, kp},
			variant{RankRequest{Method: MethodCloseness, Targets: raw, Eps: 0.1, Delta: 0.05, Seed: 4}, cl},
		)
	}

	const (
		hammers = 8
		iters   = 30
		reloads = 8
	)
	var wg sync.WaitGroup
	var served, cached atomic.Int64
	start := make(chan struct{})
	for h := 0; h < hammers; h++ {
		wg.Add(1)
		go func(h int) {
			defer wg.Done()
			<-start
			for i := 0; i < iters; i++ {
				v := variants[(h+i)%len(variants)]
				resp, code := postRank(t, s.Handler(), v.req)
				if code != http.StatusOK {
					t.Errorf("hammer %d iter %d: status %d", h, i, code)
					return
				}
				if len(resp.Scores) != len(v.want.Scores) {
					t.Errorf("hammer %d iter %d: %d scores, want %d", h, i, len(resp.Scores), len(v.want.Scores))
					return
				}
				for j := range v.want.Scores {
					if resp.Scores[j] != v.want.Scores[j] {
						t.Errorf("%s gen %d: score[%d] = %v, library %v — serving changed the bits",
							v.req.Method, resp.Generation, j, resp.Scores[j], v.want.Scores[j])
						return
					}
					if resp.Nodes[j] != ids[v.want.Nodes[j]] || resp.Ranks[j] != v.want.Rank[j] {
						t.Errorf("%s gen %d: row %d mismatch", v.req.Method, resp.Generation, j)
						return
					}
				}
				served.Add(1)
				if resp.Cached {
					cached.Add(1)
				}
				if i%10 == 9 { // sprinkle top-k reads over the same cache
					w := httptest.NewRecorder()
					s.Handler().ServeHTTP(w, httptest.NewRequest("GET", "/v1/topk?k=5", nil))
					if w.Code != http.StatusOK {
						t.Errorf("hammer %d: topk status %d", h, w.Code)
						return
					}
					var tk RankResponse
					if err := json.Unmarshal(w.Body.Bytes(), &tk); err != nil || len(tk.Nodes) != 5 {
						t.Errorf("hammer %d: bad topk response (%v)", h, err)
						return
					}
				}
			}
		}(h)
	}
	reloaderDone := make(chan uint64)
	go func() {
		<-start
		var last uint64
		for i := 0; i < reloads; i++ {
			gen, err := s.Reload()
			if err != nil {
				t.Errorf("reload %d: %v", i, err)
			}
			last = gen
		}
		reloaderDone <- last
	}()
	close(start)
	wg.Wait()
	lastGen := <-reloaderDone

	if lastGen != uint64(1+reloads) {
		t.Errorf("final generation %d, want %d", lastGen, 1+reloads)
	}
	if served.Load() != hammers*iters {
		t.Errorf("served %d of %d", served.Load(), hammers*iters)
	}
	t.Logf("served %d responses (%d cached) across %d generations, all bitwise-identical to the library",
		served.Load(), cached.Load(), lastGen)

	// After the dust settles the current generation must still serve.
	resp, code := postRank(t, s.Handler(), variants[0].req)
	if code != http.StatusOK || resp.Generation != lastGen {
		t.Fatalf("post-hammer request: code %d gen %d", code, resp.Generation)
	}
}
