package serve

import (
	"math"
	"time"

	"saphyra/internal/bicomp"
	"saphyra/internal/obs"
	"saphyra/internal/query"
)

// Request outcome labels: the per-outcome latency histogram's label set and
// the value every handler returns to its timing wrapper. One request maps
// to exactly one outcome.
const (
	outcomeOK           = "ok"
	outcomeDegraded     = "degraded"
	outcomeBadRequest   = "bad_request"
	outcomeShed         = "shed"
	outcomeQuota        = "quota"
	outcomeDeadline     = "deadline"
	outcomeClientClosed = "client_closed"
	outcomeInternal     = "internal"
)

var outcomes = []string{
	outcomeOK, outcomeDegraded, outcomeBadRequest, outcomeShed,
	outcomeQuota, outcomeDeadline, outcomeClientClosed, outcomeInternal,
}

// metrics is the server's view of its obs.Registry: every counter the
// pre-registry serving layer kept as an ad-hoc atomic.Int64 now lives in a
// registered family (same exposition names as before — dashboards keep
// working), plus the latency/cost histograms the flat counters could never
// express. Counters owned by other structs (cache hits, admission depth,
// the compute EWMA) are bridged with CounterFunc/GaugeFunc rather than
// moved — their owners keep their atomics, the registry reads them at
// scrape time.
type metrics struct {
	reg *obs.Registry

	ranks, topks                   *obs.Counter
	badRequests, shed, quotaDenied *obs.Counter
	deadlines, canceled            *obs.Counter
	internalErrors                 *obs.Counter
	degraded, staleServed          *obs.Counter
	reloads, reloadFailures        *obs.Counter

	// Cluster tier: peerFill* count this server's outbound home-peer
	// probes on cache misses (hit = adopted the peer's bytes, rejected =
	// the peer answered but failed validation); internalCache* count the
	// inbound side, peers probing this server's GET /internal/cache.
	peerFillHits, peerFillMisses, peerFillRejected *obs.Counter
	internalCacheHits, internalCacheMisses         *obs.Counter

	latency        map[string]*obs.Hist // per-outcome request wall time
	computeSeconds *obs.Hist            // successful flight compute time
	queueWait      *obs.Hist            // admission wait inside a flight
	flightFanIn    *obs.Hist            // requesters collapsed per flight
	reloadSeconds  *obs.Hist            // reload wall time (success only)
	queryCost      map[string]*obs.Hist // per-method queryCost estimate
}

func newMetrics(s *Server) *metrics {
	reg := obs.NewRegistry()
	m := &metrics{reg: reg}

	m.ranks = reg.Counter("saphyra_requests_total", "Requests received by endpoint.", `endpoint="rank"`)
	m.topks = reg.Counter("saphyra_requests_total", "Requests received by endpoint.", `endpoint="topk"`)

	const errHelp = "Requests that did not return a ranking."
	m.badRequests = reg.Counter("saphyra_request_errors_total", errHelp, `reason="bad_request"`)
	m.shed = reg.Counter("saphyra_request_errors_total", errHelp, `reason="shed"`)
	m.quotaDenied = reg.Counter("saphyra_request_errors_total", errHelp, `reason="quota"`)
	m.deadlines = reg.Counter("saphyra_request_errors_total", errHelp, `reason="deadline"`)
	m.canceled = reg.Counter("saphyra_request_errors_total", errHelp, `reason="canceled"`)
	m.internalErrors = reg.Counter("saphyra_request_errors_total", errHelp, `reason="internal"`)

	const cacheHelp = "Result cache events."
	reg.CounterFunc("saphyra_cache_events_total", cacheHelp, `kind="hit"`,
		func() float64 { return float64(s.cache.hits.Load()) })
	reg.CounterFunc("saphyra_cache_events_total", cacheHelp, `kind="miss"`,
		func() float64 { return float64(s.cache.misses.Load()) })
	reg.CounterFunc("saphyra_cache_events_total", cacheHelp, `kind="collapsed"`,
		func() float64 { return float64(s.cache.collapsed.Load()) })

	const degradeHelp = "Responses served through the degradation ladder."
	m.degraded = reg.Counter("saphyra_degraded_total", degradeHelp, `rung="coarse"`)
	m.staleServed = reg.Counter("saphyra_degraded_total", degradeHelp, `rung="stale"`)

	const fillHelp = "Home-peer cache probes issued on local misses."
	m.peerFillHits = reg.Counter("saphyra_peer_fill_total", fillHelp, `result="hit"`)
	m.peerFillMisses = reg.Counter("saphyra_peer_fill_total", fillHelp, `result="miss"`)
	m.peerFillRejected = reg.Counter("saphyra_peer_fill_total", fillHelp, `result="rejected"`)
	const internalHelp = "Peer probes served by GET /internal/cache."
	m.internalCacheHits = reg.Counter("saphyra_internal_cache_total", internalHelp, `result="hit"`)
	m.internalCacheMisses = reg.Counter("saphyra_internal_cache_total", internalHelp, `result="miss"`)

	reg.CounterFunc("saphyra_fastlane_admits_total", "Computations admitted via the tiny-query fast lane.", "",
		func() float64 { return float64(s.adm.fastAdmits()) })
	m.reloads = reg.Counter("saphyra_reloads_total", "Completed hot reloads.", "")
	m.reloadFailures = reg.Counter("saphyra_reload_failures_total", "Hot reloads that failed (old generation kept serving).", "")

	reg.GaugeFunc("saphyra_generation", "Current view generation.", "", func() float64 {
		if lv := s.cur.Load(); lv != nil {
			return float64(lv.gen())
		}
		return 0
	})
	reg.GaugeFunc("saphyra_cache_entries", "Result cache entries resident.", "",
		func() float64 { return float64(s.cache.len()) })
	reg.GaugeFunc("saphyra_cache_capacity", "Result cache capacity.", "",
		func() float64 { return float64(s.cfg.CacheEntries) })
	reg.GaugeFunc("saphyra_inflight_computations", "Computations holding an admission slot.", "",
		func() float64 { return float64(s.adm.inFlight()) })
	reg.GaugeFunc("saphyra_waiting_computations", "Computations queued for an admission slot.", "",
		func() float64 { return float64(s.adm.waitingNow()) })
	reg.GaugeFunc("saphyra_workers_total", "Worker-slot pool size.", "",
		func() float64 { return float64(s.cfg.TotalWorkers) })
	reg.GaugeFunc("saphyra_workers_per_request", "Per-computation worker-slot cap.", "",
		func() float64 { return float64(s.cfg.RequestWorkers) })
	reg.GaugeFunc("saphyra_open_mappings", "Live mmapped views in this process.", "",
		func() float64 { return float64(bicomp.OpenMappings()) })
	reg.GaugeFunc("saphyra_view_nodes", "Nodes in the served view.", "", func() float64 {
		if lv := s.cur.Load(); lv != nil {
			return float64(lv.g.NumNodes())
		}
		return 0
	})
	reg.GaugeFunc("saphyra_view_edges", "Edges in the served view.", "", func() float64 {
		if lv := s.cur.Load(); lv != nil {
			return float64(lv.g.NumEdges())
		}
		return 0
	})
	reg.GaugeFunc("saphyra_uptime_seconds", "Seconds since process start.", "",
		func() float64 { return time.Since(s.start).Seconds() })
	reg.GaugeFunc("saphyra_compute_ewma_seconds", "EWMA of successful compute seconds (feeds Retry-After).", "",
		func() float64 { return math.Float64frombits(s.computeEWMA.Load()) })
	reg.GaugeFunc("saphyra_retry_after_seconds", "Retry-After a shed request would receive right now.", "",
		func() float64 { return float64(s.retryAfterSeconds()) })

	m.latency = make(map[string]*obs.Hist, len(outcomes))
	for _, o := range outcomes {
		m.latency[o] = reg.Histogram("saphyra_request_seconds",
			"Request wall time by outcome.", `outcome="`+o+`"`, obs.UnitSeconds)
	}
	m.computeSeconds = reg.Histogram("saphyra_compute_seconds",
		"Successful flight compute time.", "", obs.UnitSeconds)
	m.queueWait = reg.Histogram("saphyra_queue_wait_seconds",
		"Admission wait inside a flight (slot acquisition).", "", obs.UnitSeconds)
	m.flightFanIn = reg.Histogram("saphyra_flight_fanin_requests",
		"Requesters served per singleflight computation (leader plus collapsed followers).", "", obs.UnitCount)
	m.reloadSeconds = reg.Histogram("saphyra_reload_seconds",
		"Hot reload wall time (successful reloads).", "", obs.UnitSeconds)

	m.queryCost = make(map[string]*obs.Hist, len(methods))
	for _, meth := range methods {
		m.queryCost[meth] = reg.Histogram("saphyra_query_cost",
			"Estimated compute mass per request (admission cost model units).",
			`method="`+meth+`"`, obs.UnitCount)
	}
	return m
}

// costFor returns the per-method query-cost histogram for a measure.
func (m *metrics) costFor(meas query.Measure) *obs.Hist {
	switch meas {
	case query.Betweenness:
		return m.queryCost[MethodSaPHyRa]
	case query.KPath:
		return m.queryCost[MethodKPath]
	case query.Closeness:
		return m.queryCost[MethodCloseness]
	}
	return nil
}

// latencyFor returns the latency histogram for an outcome label, falling
// back to the internal bucket for a label no handler should produce.
func (m *metrics) latencyFor(outcome string) *obs.Hist {
	if h, ok := m.latency[outcome]; ok {
		return h
	}
	return m.latency[outcomeInternal]
}
