package core

import (
	"context"

	"path/filepath"
	"testing"

	"saphyra/internal/bicomp"
	"saphyra/internal/graph"
)

// TestEstimateBCWorkerCountBitwise: with sampling driven through fixed
// virtual-worker streams, a fixed seed must give bitwise-identical BC
// estimates at any worker count.
func TestEstimateBCWorkerCountBitwise(t *testing.T) {
	g := graph.BarabasiAlbert(600, 3, 17)
	a := []graph.Node{2, 9, 51, 333, 599}
	run := func(workers int) *BCResult {
		res, err := EstimateBC(context.Background(), g, a, BCOptions{Epsilon: 0.05, Delta: 0.05, Seed: 23, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(1)
	if ref.Est == nil || ref.Est.Samples == 0 {
		t.Fatal("reference run drew no samples; the test exercises nothing")
	}
	for _, workers := range []int{2, 8} {
		got := run(workers)
		if got.Est.Samples != ref.Est.Samples {
			t.Fatalf("workers=%d: samples %d != %d", workers, got.Est.Samples, ref.Est.Samples)
		}
		for i := range ref.BC {
			if got.BC[i] != ref.BC[i] {
				t.Fatalf("workers=%d: BC[%d] = %v, want %v", workers, i, got.BC[i], ref.BC[i])
			}
		}
	}
}

// TestPreprocessBCFromMappedView: ranking through a view round-tripped over
// the serialized mmap path must be bitwise-identical to ranking on the
// in-memory preprocessing — the recomputed decomposition/out-reach tables
// agree with the serialized annotations, and every engine reads the same
// bits.
func TestPreprocessBCFromMappedView(t *testing.T) {
	g := graph.BarabasiAlbert(500, 3, 29)
	p := PreprocessBC(g)

	path := filepath.Join(t.TempDir(), "view.sbcv")
	if err := p.View.WriteFile(path, nil); err != nil {
		t.Fatal(err)
	}
	m, err := bicomp.OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.View.Validate(); err != nil {
		t.Fatalf("mapped view invalid before backfill: %v", err)
	}
	p2 := PreprocessBCFromView(m.View)
	// The backfilled decomposition must agree with the serialized
	// annotations (Decompose is deterministic) — Validate cross-checks.
	if err := m.View.Validate(); err != nil {
		t.Fatalf("mapped view invalid after backfill: %v", err)
	}

	a := []graph.Node{4, 44, 123, 400}
	opt := BCOptions{Epsilon: 0.05, Delta: 0.05, Seed: 31, Workers: 4}
	want, err := p.EstimateBC(context.Background(), a, opt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p2.EstimateBC(context.Background(), a, opt)
	if err != nil {
		t.Fatal(err)
	}
	if got.Est.Samples != want.Est.Samples {
		t.Fatalf("samples %d != %d", got.Est.Samples, want.Est.Samples)
	}
	for i := range want.BC {
		if got.BC[i] != want.BC[i] {
			t.Fatalf("BC[%d] = %v, want %v", i, got.BC[i], want.BC[i])
		}
		if got.BCA[i] != want.BCA[i] {
			t.Fatalf("BCA[%d] = %v, want %v", i, got.BCA[i], want.BCA[i])
		}
	}
}
