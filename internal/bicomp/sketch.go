package bicomp

import (
	"sync"

	"saphyra/internal/msbfs"
)

// DistanceSketch returns the view's k-landmark distance sketch, building it
// on first request with one MS-BFS pass over the grouped arrays and caching
// it per k for the view's lifetime. Landmarks are a pure function of the
// graph (top-k degree, ties by id), so every process sketching the same
// view file computes identical rows. Safe for concurrent use; the common
// pattern hands one mapped view to many goroutines.
//
// The only possible error is an armed "msbfs.run" fault; nothing is cached
// then, and callers treat it as "no sketch" — the sketch only accelerates,
// it never changes results.
func (v *BlockCSR) DistanceSketch(k int) (*msbfs.Sketch, error) {
	v.sketchMu.Lock()
	defer v.sketchMu.Unlock()
	if s, ok := v.sketches[k]; ok {
		return s, nil
	}
	off, _ := v.G.CSR()
	s, err := msbfs.NewSketch(off, v.Nbr, k)
	if err != nil {
		return nil, err
	}
	if v.sketches == nil {
		v.sketches = make(map[int]*msbfs.Sketch, 1)
	}
	v.sketches[k] = s
	return s, nil
}

// sketchState carries the lazily-built landmark sketches; split into its
// own struct so BlockCSR's literal-free construction sites need no change.
type sketchState struct {
	sketchMu sync.Mutex
	sketches map[int]*msbfs.Sketch
}
