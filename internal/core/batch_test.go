package core

import (
	"context"

	"math"
	mrand "math/rand"
	"sort"
	"testing"

	"saphyra/internal/graph"
	"saphyra/internal/shortestpath"
)

// skewedGraph builds the benchmark reference: a preferential-attachment
// ("social") graph whose r(s)(S-r(s)) stage-2 mass concentrates on hubs —
// the regime the source-grouped batch engine is designed for.
func skewedGraph() *graph.Graph {
	return graph.BarabasiAlbert(4000, 3, 42)
}

func testSpace(t testing.TB, g *graph.Graph, nTargets int, seed int64) *bcSpace {
	t.Helper()
	p := PreprocessBC(g)
	targets := make([]graph.Node, 0, nTargets)
	for i := 0; i < nTargets; i++ {
		targets = append(targets, graph.Node((int64(i)*2_654_435_761+seed)%int64(g.NumNodes())))
	}
	nodes := graph.DedupSorted(targets)
	blocksA := p.O.BlocksOf(nodes)
	wA := p.O.WeightOfBlocks(blocksA)
	sp, err := newBCSpace(context.Background(), p, nodes, blocksA, wA, BCOptions{Epsilon: 0.05, Delta: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

// TestEstimateDeterministicGolden is the batching golden test: a fixed seed
// and fixed worker count must give bitwise-identical Estimate.Risks across
// repeated runs of the full pipeline — the batched engine reorders BFS work
// inside a batch but never the sample stream's dependence on the seed.
func TestEstimateDeterministicGolden(t *testing.T) {
	g := skewedGraph()
	targets := []graph.Node{1, 5, 17, 99, 250, 777, 1234, 2500, 3999}
	var first *BCResult
	for rep := 0; rep < 3; rep++ {
		res, err := EstimateBC(context.Background(), g, targets, BCOptions{
			Epsilon: 0.05, Delta: 0.01, Seed: 12345, Workers: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = res
			continue
		}
		for i := range res.BC {
			if res.BC[i] != first.BC[i] {
				t.Fatalf("rep %d: BC[%d] = %v, want %v (determinism broken)", rep, i, res.BC[i], first.BC[i])
			}
		}
		if res.Est != nil && first.Est != nil {
			for i := range res.Est.Risks {
				if res.Est.Risks[i] != first.Est.Risks[i] {
					t.Fatalf("rep %d: Risks[%d] = %v, want %v", rep, i, res.Est.Risks[i], first.Est.Risks[i])
				}
			}
			if res.Est.Samples != first.Est.Samples {
				t.Fatalf("rep %d: Samples = %d, want %d", rep, res.Est.Samples, first.Est.Samples)
			}
		}
	}
	if first.Est == nil || first.Est.Samples == 0 {
		t.Fatal("golden run drew no samples; the test exercises nothing")
	}
}

// TestDrawBatchMatchesDraw is the parity test: the hit distribution of
// DrawBatch must statistically match repeated single Draw on the reference
// graph. Both paths sample the same (block, src, dst, path) distribution —
// only the BFS serving strategy differs — so per-hypothesis hit frequencies
// must agree within binomial noise.
func TestDrawBatchMatchesDraw(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical parity test")
	}
	g := skewedGraph()
	sp := testSpace(t, g, 60, 7)
	k := sp.NumHypotheses()
	const n = 200_000

	single := make([]int64, k)
	s1 := sp.NewSampler(1).(*bcSampler)
	for j := 0; j < n; j++ {
		for _, idx := range s1.Draw() {
			single[idx]++
		}
	}

	batched := make([]int64, k)
	s2 := sp.NewSampler(2).(*bcSampler)
	s2.DrawBatch(n, batched)

	for i := 0; i < k; i++ {
		p1 := float64(single[i]) / n
		p2 := float64(batched[i]) / n
		// two-sample binomial: 5-sigma tolerance plus an absolute floor
		sd := math.Sqrt((p1*(1-p1) + p2*(1-p2)) / n)
		if math.Abs(p1-p2) > 5*sd+2e-4 {
			t.Errorf("hypothesis %d: Draw freq %.5f vs DrawBatch freq %.5f (tol %.5f)",
				i, p1, p2, 5*sd+2e-4)
		}
	}
}

// TestDrawBatchExactCount: DrawBatch(n) must account for exactly n accepted
// samples — rejected exact-subspace paths are redrawn, not dropped. Verified
// against the fact that every sample contributes at most... hits are counts,
// so instead run with DisableExactSubspace and a single-node-block-free
// graph where every path hit count is bounded; here we just check the
// batched and shim paths agree on totals when rejection is off.
func TestDrawBatchExactCount(t *testing.T) {
	g := graph.BarabasiAlbert(500, 2, 9)
	p := PreprocessBC(g)
	nodes := graph.DedupSorted([]graph.Node{3, 50, 120, 333})
	blocksA := p.O.BlocksOf(nodes)
	wA := p.O.WeightOfBlocks(blocksA)
	sp, err := newBCSpace(context.Background(), p, nodes, blocksA, wA, BCOptions{Epsilon: 0.05, Delta: 0.01, DisableExactSubspace: true})
	if err != nil {
		t.Fatal(err)
	}
	// With rejection disabled every drawn pair is accepted: mean hits per
	// sample must match between the two engines within noise.
	const n = 50_000
	single := make([]int64, len(nodes))
	s1 := sp.NewSampler(11).(*bcSampler)
	for j := 0; j < n; j++ {
		for _, idx := range s1.Draw() {
			single[idx]++
		}
	}
	batched := make([]int64, len(nodes))
	s2 := sp.NewSampler(12).(*bcSampler)
	s2.DrawBatch(n, batched)
	var t1, t2 int64
	for i := range nodes {
		t1 += single[i]
		t2 += batched[i]
	}
	m1 := float64(t1) / n
	m2 := float64(t2) / n
	if math.Abs(m1-m2) > 0.05*(m1+m2)/2+0.002 {
		t.Fatalf("mean hits per sample: Draw %.4f vs DrawBatch %.4f", m1, m2)
	}
}

// TestAdaptiveRoundQuota: the per-round pre-draw quota must follow the
// measured batch/#distinct-sources ratio — probe-sized before anything is
// measured, sources*groupScale afterwards, floored for concentrated
// samplers and capped for diffuse ones.
func TestAdaptiveRoundQuota(t *testing.T) {
	g := skewedGraph()
	sp := testSpace(t, g, 60, 7)
	s := sp.NewSampler(3).(*bcSampler)
	if q := s.roundQuota(); q != batchProbe {
		t.Fatalf("pre-measurement quota = %d, want probe %d", q, batchProbe)
	}
	hits := make([]int64, sp.NumHypotheses())
	s.DrawBatch(batchProbe, hits)
	if s.lastSources <= 0 {
		t.Fatal("DrawBatch measured no sources")
	}
	want := s.lastSources * groupScale
	if want < batchProbe {
		want = batchProbe
	}
	if want > batchCap {
		want = batchCap
	}
	if q := s.roundQuota(); q != want {
		t.Fatalf("quota = %d, want %d (sources %d)", q, want, s.lastSources)
	}
	s.lastSources = 3 // concentrated support: floor applies
	if q := s.roundQuota(); q != batchProbe {
		t.Fatalf("concentrated quota = %d, want floor %d", q, batchProbe)
	}
	s.lastSources = batchCap // diffuse support: cap applies
	if q := s.roundQuota(); q != batchCap {
		t.Fatalf("diffuse quota = %d, want cap %d", q, batchCap)
	}
}

// TestBatchSamplerInterface: the bc sampler must advertise the batched fast
// path, and the framework must use it for both pilot and main rounds.
func TestBatchSamplerInterface(t *testing.T) {
	g := graph.BarabasiAlbert(300, 2, 5)
	sp := testSpace(t, g, 10, 3)
	s := sp.NewSampler(1)
	if _, ok := s.(BatchSampler); !ok {
		t.Fatal("bcSampler does not implement BatchSampler")
	}
}

// --- Benchmarks: single-draw shim vs batched engine -------------------------

// legacySampler replicates the pre-batching seed engine verbatim so the
// speedup of the batched path stays measurable after the production code
// moved on: one bidirectional BFS per sample, three O(log n) binary
// searches over cumulative tables, math/rand, and a freshly allocated path
// slice per draw.
type legacySampler struct {
	sp       *bcSpace
	blockCum []float64
	sCum     [][]float64
	tCum     [][]float64
	rng      *mrand.Rand
	bfs      *shortestpath.BiBFS
	hits     []int32
}

func newLegacySampler(sp *bcSpace, seed int64) *legacySampler {
	o := sp.p.O
	ls := &legacySampler{
		sp:       sp,
		blockCum: make([]float64, len(sp.blocksA)),
		sCum:     make([][]float64, len(sp.blocksA)),
		tCum:     make([][]float64, len(sp.blocksA)),
		rng:      mrand.New(mrand.NewSource(seed)),
		bfs:      shortestpath.NewBiBFS(sp.p.G.NumNodes()),
	}
	var acc float64
	for j, b := range sp.blocksA {
		acc += float64(o.W[b])
		ls.blockCum[j] = acc
		ms := sp.members[j]
		sc := make([]float64, len(ms))
		tc := make([]float64, len(ms))
		var sAcc, tAcc float64
		S := float64(o.S[b])
		for i, v := range ms {
			r := float64(o.Of(b, v))
			sAcc += r * (S - r)
			tAcc += r
			sc[i] = sAcc
			tc[i] = tAcc
		}
		ls.sCum[j] = sc
		ls.tCum[j] = tc
	}
	return ls
}

func (s *legacySampler) Draw() []int32 {
	sp := s.sp
	g := sp.p.G
	for {
		total := s.blockCum[len(s.blockCum)-1]
		j := sort.SearchFloat64s(s.blockCum, s.rng.Float64()*total)
		if j >= len(s.blockCum) {
			j = len(s.blockCum) - 1
		}
		members := sp.members[j]
		sc, tc := s.sCum[j], s.tCum[j]

		si := sort.SearchFloat64s(sc, s.rng.Float64()*sc[len(sc)-1])
		if si >= len(members) {
			si = len(members) - 1
		}
		src := members[si]

		rs := tc[si]
		if si > 0 {
			rs -= tc[si-1]
		}
		pos := s.rng.Float64() * (tc[len(tc)-1] - rs)
		var before float64
		if si > 0 {
			before = tc[si-1]
		}
		if pos >= before {
			pos += rs
		}
		ti := sort.SearchFloat64s(tc, pos)
		if ti >= len(members) {
			ti = len(members) - 1
		}
		if ti == si {
			if ti+1 < len(members) {
				ti++
			} else {
				ti--
			}
		}
		dst := members[ti]

		dist, _, ok := s.bfs.Query(g, src, dst)
		if !ok {
			continue
		}
		path := s.bfs.SamplePath(g, s.rng) // allocates, as the seed engine did
		if !sp.disableExact && dist == 2 && sp.aIndex[path[1]] >= 0 {
			continue
		}
		s.hits = s.hits[:0]
		for _, v := range path[1 : len(path)-1] {
			if ai := sp.aIndex[v]; ai >= 0 {
				s.hits = append(s.hits, ai)
			}
		}
		return s.hits
	}
}

// BenchmarkSamplerDrawLegacy measures the seed engine's per-sample cost —
// the baseline the ISSUE's >= 2x acceptance criterion compares against.
func BenchmarkSamplerDrawLegacy(b *testing.B) {
	g := skewedGraph()
	sp := testSpace(b, g, 100, 7)
	s := newLegacySampler(sp, 1)
	hits := make([]int64, sp.NumHypotheses())
	for _, idx := range s.Draw() {
		hits[idx]++
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, idx := range s.Draw() {
			hits[idx]++
		}
	}
}

// BenchmarkSamplerDraw measures the legacy one-BFS-per-sample path.
func BenchmarkSamplerDraw(b *testing.B) {
	g := skewedGraph()
	sp := testSpace(b, g, 100, 7)
	s := sp.NewSampler(1).(*bcSampler)
	hits := make([]int64, sp.NumHypotheses())
	for _, idx := range s.Draw() { // warm scratch
		hits[idx]++
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, idx := range s.Draw() {
			hits[idx]++
		}
	}
}

// BenchmarkSamplerDrawBatch measures the batched source-grouped engine;
// compare samples/sec against BenchmarkSamplerDraw. Allocations per op must
// be 0 in steady state.
func BenchmarkSamplerDrawBatch(b *testing.B) {
	g := skewedGraph()
	sp := testSpace(b, g, 100, 7)
	s := sp.NewSampler(1).(*bcSampler)
	hits := make([]int64, sp.NumHypotheses())
	s.DrawBatch(batchCap, hits) // warm scratch to steady state
	b.ReportAllocs()
	b.ResetTimer()
	s.DrawBatch(int64(b.N), hits)
}
