package main

import "testing"

func TestBuildStandIns(t *testing.T) {
	for _, name := range []string{"flickr-sim", "livejournal-sim", "usaroad-sim", "orkut-sim"} {
		g, err := build(name, 0.02, "", 0, 0, 0, 0, 0, 0, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g.NumNodes() == 0 {
			t.Errorf("%s: empty graph", name)
		}
	}
}

func TestBuildRawGenerators(t *testing.T) {
	cases := []struct {
		gen  string
		n    int
		rows int
	}{
		{"ba", 100, 0}, {"plc", 100, 0}, {"er", 100, 0},
		{"ws", 100, 0}, {"road", 0, 10}, {"grid", 0, 10}, {"tree", 100, 0},
	}
	for _, c := range cases {
		g, err := build("", 1, c.gen, c.n, 0, 3, 0.2, c.rows, c.rows, 2)
		if err != nil {
			t.Fatalf("%s: %v", c.gen, err)
		}
		if g.NumNodes() == 0 {
			t.Errorf("%s: empty graph", c.gen)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := build("", 1, "", 10, 0, 2, 0.1, 5, 5, 1); err == nil {
		t.Error("neither -net nor -gen: want error")
	}
	if _, err := build("", 1, "nope", 10, 0, 2, 0.1, 5, 5, 1); err == nil {
		t.Error("unknown generator: want error")
	}
	if _, err := build("bogus-net", 1, "", 10, 0, 2, 0.1, 5, 5, 1); err == nil {
		t.Error("unknown network: want error")
	}
}

func TestBuildERDefaultEdges(t *testing.T) {
	g, err := build("", 1, "er", 50, 0, 0, 0, 0, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 200 { // m defaults to 4n
		t.Errorf("er default edges = %d, want 200", g.NumEdges())
	}
}
