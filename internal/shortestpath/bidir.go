package shortestpath

import (
	"saphyra/internal/graph"
)

// BiBFS is a reusable balanced bidirectional BFS workspace. Each Query runs
// two level-synchronous BFS waves from s and t, always expanding the side
// whose frontier is cheaper (smaller total degree), stopping as soon as the
// waves touch. On graphs with light-tailed degree distributions this
// explores O(sqrt(n)) nodes per query (Lemma 21 / Theorem 4 of [12]),
// which is what makes path-sampling estimators fast.
//
// State is epoch-stamped so consecutive queries cost O(touched), not O(n).
type BiBFS struct {
	distF, distB   []int32
	sigF, sigB     []float64
	stampF, stampB []uint32
	epoch          uint32
	frontF, frontB []graph.Node
	nextF, nextB   []graph.Node
	meet           []graph.Node

	// Query results
	s, t      graph.Node
	dist      int32
	sigma     float64
	cutSide   int8  // 0: cut on forward side, 1: cut on backward side
	cutLevel  int32 // completed level on the cut side where waves met
	meetTotal float64
	scanned   int64 // directed edges examined by the last Query (cost proxy)
}

// Scanned returns the number of directed edges examined by the last Query —
// the cost proxy batched samplers use to decide between per-pair
// bidirectional BFS and shared truncated source BFS. It is derived from the
// frontier degree sums the balancing rule maintains anyway, so tracking it
// costs nothing in the expansion loop.
func (b *BiBFS) Scanned() int64 { return b.scanned }

// NewBiBFS returns a workspace for graphs of n nodes.
func NewBiBFS(n int) *BiBFS {
	return &BiBFS{
		distF:  make([]int32, n),
		distB:  make([]int32, n),
		sigF:   make([]float64, n),
		sigB:   make([]float64, n),
		stampF: make([]uint32, n),
		stampB: make([]uint32, n),
	}
}

func (b *BiBFS) seenF(u graph.Node) bool { return b.stampF[u] == b.epoch }
func (b *BiBFS) seenB(u graph.Node) bool { return b.stampB[u] == b.epoch }

// Query computes the distance and the number of shortest paths between s and
// t. ok is false when t is unreachable from s (or s == t). After a
// successful Query, SamplePath draws uniform random shortest paths for the
// same pair.
func (b *BiBFS) Query(g *graph.Graph, s, t graph.Node) (dist int32, sigma float64, ok bool) {
	if s == t {
		return 0, 0, false
	}
	b.epoch++
	if b.epoch == 0 { // wrapped: reset stamps
		for i := range b.stampF {
			b.stampF[i] = 0
			b.stampB[i] = 0
		}
		b.epoch = 1
	}
	b.s, b.t = s, t
	b.stampF[s] = b.epoch
	b.distF[s] = 0
	b.sigF[s] = 1
	b.stampB[t] = b.epoch
	b.distB[t] = 0
	b.sigB[t] = 1
	b.frontF = append(b.frontF[:0], s)
	b.frontB = append(b.frontB[:0], t)
	levelF, levelB := int32(0), int32(0)
	b.scanned = 0
	// Frontier expansion costs (total degree) are maintained incrementally
	// while the next frontier is built, instead of being recomputed with an
	// extra pass over both frontiers at every level.
	costF, costB := int64(g.Degree(s)), int64(g.Degree(t))

	for len(b.frontF) > 0 && len(b.frontB) > 0 {
		if costF <= costB {
			b.scanned += costF
			b.nextF = b.nextF[:0]
			newLevel := levelF + 1
			met := false
			best := int32(1 << 30)
			var nextCost int64
			for _, u := range b.frontF {
				su := b.sigF[u]
				for _, v := range g.Neighbors(u) {
					if !b.seenF(v) {
						b.stampF[v] = b.epoch
						b.distF[v] = newLevel
						b.sigF[v] = su
						b.nextF = append(b.nextF, v)
						nextCost += int64(g.Degree(v))
						if b.seenB(v) {
							met = true
							if d := newLevel + b.distB[v]; d < best {
								best = d
							}
						}
					} else if b.distF[v] == newLevel {
						b.sigF[v] += su
					}
				}
			}
			levelF = newLevel
			b.frontF, b.nextF = b.nextF, b.frontF
			costF = nextCost
			if met {
				return b.finish(newLevel, best, 0)
			}
		} else {
			b.scanned += costB
			b.nextB = b.nextB[:0]
			newLevel := levelB + 1
			met := false
			best := int32(1 << 30)
			var nextCost int64
			for _, u := range b.frontB {
				su := b.sigB[u]
				for _, v := range g.Neighbors(u) {
					if !b.seenB(v) {
						b.stampB[v] = b.epoch
						b.distB[v] = newLevel
						b.sigB[v] = su
						b.nextB = append(b.nextB, v)
						nextCost += int64(g.Degree(v))
						if b.seenF(v) {
							met = true
							if d := newLevel + b.distF[v]; d < best {
								best = d
							}
						}
					} else if b.distB[v] == newLevel {
						b.sigB[v] += su
					}
				}
			}
			levelB = newLevel
			b.frontB, b.nextB = b.nextB, b.frontB
			costB = nextCost
			if met {
				return b.finish(newLevel, best, 1)
			}
		}
	}
	return 0, 0, false
}

// finish collects the meeting cut: all nodes at the just-completed level of
// the expanded side whose other-side distance completes a path of length d.
func (b *BiBFS) finish(cutLevel, d int32, side int8) (int32, float64, bool) {
	b.dist = d
	b.cutSide = side
	b.cutLevel = cutLevel
	b.meet = b.meet[:0]
	b.meetTotal = 0
	var front []graph.Node
	if side == 0 {
		front = b.frontF
	} else {
		front = b.frontB
	}
	other := d - cutLevel
	for _, u := range front {
		if side == 0 {
			if b.seenB(u) && b.distB[u] == other {
				b.meet = append(b.meet, u)
				b.meetTotal += b.sigF[u] * b.sigB[u]
			}
		} else {
			if b.seenF(u) && b.distF[u] == other {
				b.meet = append(b.meet, u)
				b.meetTotal += b.sigF[u] * b.sigB[u]
			}
		}
	}
	b.sigma = b.meetTotal
	return b.dist, b.sigma, true
}

// SamplePath draws a uniform random shortest path s..t for the pair of the
// last successful Query. The returned slice is freshly allocated.
func (b *BiBFS) SamplePath(g *graph.Graph, rng Rand) []graph.Node {
	return b.SamplePathAppend(g, rng, nil)
}

// SamplePathAppend is SamplePath writing into buf (overwritten and grown as
// needed), so a caller-owned buffer makes repeated sampling allocation-free.
func (b *BiBFS) SamplePathAppend(g *graph.Graph, rng Rand, buf []graph.Node) []graph.Node {
	if len(b.meet) == 0 {
		return nil
	}
	// pick the meeting node proportionally to sigF * sigB
	target := rng.Float64() * b.meetTotal
	var acc float64
	u := b.meet[len(b.meet)-1]
	for _, v := range b.meet {
		acc += b.sigF[v] * b.sigB[v]
		if acc >= target {
			u = v
			break
		}
	}
	need := int(b.dist) + 1
	if cap(buf) < need {
		buf = make([]graph.Node, need)
	}
	path := buf[:need]
	path[b.distF[u]] = u
	// walk to s through the forward DAG
	x := u
	for b.distF[x] > 0 {
		x = b.stepDown(g, x, rng, true)
		path[b.distF[x]] = x
	}
	// walk to t through the backward DAG
	x = u
	for b.distB[x] > 0 {
		x = b.stepDown(g, x, rng, false)
		path[b.dist-b.distB[x]] = x
	}
	return path
}

// stepDown picks a neighbor one level closer to the respective source,
// weighted by its sigma.
func (b *BiBFS) stepDown(g *graph.Graph, x graph.Node, rng Rand, forward bool) graph.Node {
	var total float64
	if forward {
		want := b.distF[x] - 1
		for _, w := range g.Neighbors(x) {
			if b.seenF(w) && b.distF[w] == want {
				total += b.sigF[w]
			}
		}
		target := rng.Float64() * total
		var acc float64
		var last graph.Node = -1
		for _, w := range g.Neighbors(x) {
			if b.seenF(w) && b.distF[w] == want {
				acc += b.sigF[w]
				last = w
				if acc >= target {
					return w
				}
			}
		}
		return last
	}
	want := b.distB[x] - 1
	for _, w := range g.Neighbors(x) {
		if b.seenB(w) && b.distB[w] == want {
			total += b.sigB[w]
		}
	}
	target := rng.Float64() * total
	var acc float64
	var last graph.Node = -1
	for _, w := range g.Neighbors(x) {
		if b.seenB(w) && b.distB[w] == want {
			acc += b.sigB[w]
			last = w
			if acc >= target {
				return w
			}
		}
	}
	return last
}
