package bicomp

import (
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"saphyra/internal/graph"
)

func mappedHandle(t *testing.T, gen uint64) *Handle {
	t.Helper()
	v := buildView(t, graph.BarabasiAlbert(200, 2, 8))
	path := filepath.Join(t.TempDir(), "h.sbcv")
	if err := v.WriteFile(path, nil); err != nil {
		t.Fatal(err)
	}
	m, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	return NewHandle(m, gen)
}

func TestHandleLifecycle(t *testing.T) {
	h := mappedHandle(t, 3)
	if h.Gen() != 3 {
		t.Fatalf("gen = %d, want 3", h.Gen())
	}
	if !h.Acquire() {
		t.Fatal("fresh handle refused Acquire")
	}
	v := h.View()
	if v == nil || h.m.View == nil {
		t.Fatal("view gone before retire")
	}
	h.Retire()
	if h.Acquire() {
		t.Fatal("retired handle accepted Acquire")
	}
	// The in-flight reference keeps the mapping alive through Retire.
	if h.m.View == nil {
		t.Fatal("mapping released under an in-flight reference")
	}
	if err := v.Validate(); err != nil {
		t.Fatalf("view unusable while held: %v", err)
	}
	h.Release()
	if h.m.View != nil {
		t.Fatal("last Release of a retired handle did not unmap")
	}
}

func TestHandleRetireWithoutRefsUnmapsImmediately(t *testing.T) {
	h := mappedHandle(t, 1)
	h.Retire()
	if h.m.View != nil {
		t.Fatal("retire with zero refs did not unmap")
	}
}

// TestHandleConcurrentAcquireRetire hammers the acquire/release path under
// a concurrent retire (run with -race): every goroutine that wins Acquire
// must observe a live mapping for its whole critical section, and the
// mapping must be released exactly once, after the last holder.
func TestHandleConcurrentAcquireRetire(t *testing.T) {
	for iter := 0; iter < 20; iter++ {
		h := mappedHandle(t, uint64(iter))
		var wg sync.WaitGroup
		var acquired, refused atomic.Int64
		start := make(chan struct{})
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for i := 0; i < 100; i++ {
					if !h.Acquire() {
						refused.Add(1)
						return
					}
					acquired.Add(1)
					if h.View().G.NumNodes() != 200 {
						t.Error("stale view observed while holding a reference")
					}
					h.Release()
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			h.Retire()
		}()
		close(start)
		wg.Wait()
		if h.m.View != nil {
			t.Fatal("mapping still alive after drain")
		}
		if h.Acquire() {
			t.Fatal("post-drain Acquire succeeded")
		}
		_ = acquired.Load()
		_ = refused.Load()
	}
}

func TestMemHandleRetireIsSafe(t *testing.T) {
	v := buildView(t, graph.Path(4))
	h := NewMemHandle(v, nil, 7)
	if !h.Acquire() {
		t.Fatal("mem handle refused Acquire")
	}
	h.Retire()
	h.Release() // must not panic: nothing to unmap
	if h.Acquire() {
		t.Fatal("retired mem handle accepted Acquire")
	}
	if h.View() != v || h.Gen() != 7 {
		t.Fatal("mem handle lost its view")
	}
}
