// Package hist re-exports internal/obs/hist at the path the load-replay
// harness grew up importing. The histogram was promoted to the telemetry
// subsystem (internal/obs) when the serving tier migrated its metrics onto
// a registry with latency distributions; the implementation lives there
// now, and these aliases keep loadgen and its callers compiling — and
// producing byte-identical reports — unchanged. New code should import
// saphyra/internal/obs/hist directly.
package hist

import (
	obshist "saphyra/internal/obs/hist"
)

// Histogram is the wait-free log-bucketed histogram of time.Duration
// values. See internal/obs/hist.
type Histogram = obshist.Histogram

// Recorder couples the latency histogram with per-outcome counters.
type Recorder = obshist.Recorder

// Outcome classifies one load-replay response.
type Outcome = obshist.Outcome

// The response classes, unchanged from the original declaration.
const (
	OK           = obshist.OK
	Degraded     = obshist.Degraded
	Shed         = obshist.Shed
	Deadline     = obshist.Deadline
	ClientClosed = obshist.ClientClosed
	Error        = obshist.Error
)

// RelativeError is the worst-case relative quantile overshoot.
func RelativeError() float64 { return obshist.RelativeError() }

// Outcomes lists every outcome in declaration order.
func Outcomes() []Outcome { return obshist.Outcomes() }
