package closeness

import (
	"context"

	"testing"

	"saphyra/internal/bicomp"
	"saphyra/internal/graph"
)

func benchGraph() *graph.Graph {
	return graph.BarabasiAlbert(2000, 3, 42)
}

func benchTargets(g *graph.Graph, n int) []graph.Node {
	targets := make([]graph.Node, 0, n)
	for i := 0; i < n; i++ {
		targets = append(targets, graph.Node((int64(i)*2_654_435_761+7)%int64(g.NumNodes())))
	}
	return targets
}

// benchOpt caps the sample budget so the row measures the pricing engine,
// not the Bernstein stopping point of one particular graph.
var benchOpt = Options{Epsilon: 0.1, Delta: 0.1, Seed: 7, Workers: 4, MaxSamples: 2000}

// BenchmarkCloseness measures the estimator end to end (virtual-worker BFS
// pricing, deterministic merge) on the raw CSR — the row to compare
// against BENCH_sampling.json history when the engine changes.
func BenchmarkCloseness(b *testing.B) {
	g := benchGraph()
	targets := benchTargets(g, 50)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Estimate(context.Background(), g, targets, benchOpt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClosenessView is BenchmarkCloseness priced over the shared
// BlockCSR view's grouped adjacency (the build-once/serve-many path); the
// view build is outside the timed loop, as it is in a serving process.
func BenchmarkClosenessView(b *testing.B) {
	g := benchGraph()
	d := bicomp.Decompose(g)
	view := bicomp.NewBlockCSR(d, bicomp.NewOutReach(d))
	targets := benchTargets(g, 50)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EstimateView(context.Background(), view, targets, benchOpt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClosenessSampleBatch isolates the pricing hot loop: one stream,
// one BFS per source, all targets priced per source.
func BenchmarkClosenessSampleBatch(b *testing.B) {
	g := benchGraph()
	nodes := graph.DedupSorted(benchTargets(g, 50))
	s := newSourceSampler(g, nodes, 1)
	b.ReportAllocs()
	b.ResetTimer()
	s.sampleBatch(int64(b.N))
}
