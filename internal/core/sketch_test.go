package core

import (
	"context"
	"testing"

	"saphyra/internal/graph"
)

// TestBCSketchBitwiseNeutral: the landmark sketch only short-circuits pairs
// the adjacency scans would route to the BFS list anyway, so a sketched run
// must be bitwise-identical to an unsketched one — on the high-diameter road
// graph where the sketch actually fires on most pairs.
func TestBCSketchBitwiseNeutral(t *testing.T) {
	g := graph.RoadNetwork(18, 18, 0.05, 4)
	a := []graph.Node{0, 9, 40, 123, 200, 301}
	opt := BCOptions{Epsilon: 0.03, Delta: 0.1, Seed: 11, Workers: 2}

	withSketch := PreprocessBC(g)
	if withSketch.distanceSketch() == nil {
		t.Fatal("gate rejected the road graph: the sketch path is untested")
	}
	noSketch := PreprocessBC(g)
	noSketch.sketchOnce.Do(func() {}) // pre-fire the once: sketch stays nil

	want, err := withSketch.EstimateBC(context.Background(), a, opt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := noSketch.EstimateBC(context.Background(), a, opt)
	if err != nil {
		t.Fatal(err)
	}
	if want.Est.Samples != got.Est.Samples || want.Est.Rounds != got.Est.Rounds {
		t.Fatalf("samples/rounds: sketched %d/%d, unsketched %d/%d",
			want.Est.Samples, want.Est.Rounds, got.Est.Samples, got.Est.Rounds)
	}
	for i := range want.BC {
		if want.BC[i] != got.BC[i] {
			t.Fatalf("BC[%d]: sketched %v != unsketched %v", i, want.BC[i], got.BC[i])
		}
	}
}

// TestBCSketchGate: small or shallow graphs get no sketch.
func TestBCSketchGate(t *testing.T) {
	if s := PreprocessBC(graph.Path(20)).distanceSketch(); s != nil {
		t.Fatal("sketch built for a 20-node graph (below one lane mask)")
	}
	// 500-node BA graph: big enough, but eccentricity ~4 from the hub.
	if s := PreprocessBC(graph.BarabasiAlbert(500, 3, 5)).distanceSketch(); s != nil {
		t.Fatal("sketch built for a shallow small-world graph")
	}
	if s := PreprocessBC(graph.RoadNetwork(18, 18, 0.05, 4)).distanceSketch(); s == nil {
		t.Fatal("no sketch for a deep road grid")
	}
}
